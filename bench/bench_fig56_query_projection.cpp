// Reproduces Figures 5 & 6: a query projected onto participants' data
// spaces. Fig. 5 — supporting vs non-supporting clusters of one node.
// Fig. 6 — the data a query actually needs from 3 nodes versus the whole
// data the nodes hold (6a: query over whole node spaces; 6b: the actual
// per-node rows required).

#include <cstdio>

#include "bench_util.h"
#include "qens/common/string_util.h"
#include "qens/data/air_quality_generator.h"
#include "qens/query/selectivity_estimator.h"
#include "qens/selection/ranking.h"

using namespace qens;

int main(int argc, char** argv) {
  bench::BenchJson bjson("bench_fig56_query_projection", &argc, argv);
  bench::PrintHeader(
      "Figures 5 & 6 — query projected onto node data spaces (K = 5)");

  data::AirQualityOptions options;
  options.num_stations = 3;  // Fig. 6 uses 3 nodes.
  options.samples_per_station = 1200;
  options.heterogeneity = data::Heterogeneity::kHeterogeneous;
  options.single_feature = true;
  options.seed = 21;
  data::AirQualityGenerator generator(options);

  clustering::KMeansOptions km;
  km.k = 5;

  std::vector<selection::QuantizedNode> nodes;
  std::vector<data::Dataset> datasets;
  for (size_t s = 0; s < 3; ++s) {
    data::Dataset d =
        bench::ValueOrDie(generator.GenerateStation(s), "generate");
    km.seed = 100 + s;
    nodes.push_back(bench::ValueOrDie(
        selection::QuantizeNode(s, StrFormat("node-%zu", s), d, km),
        "quantize"));
    datasets.push_back(std::move(d));
  }

  // A query spanning the middle of the global TEMP space.
  query::HyperRectangle space =
      bench::ValueOrDie(datasets[0].FeatureSpace(), "space");
  for (size_t s = 1; s < 3; ++s) {
    space = bench::ValueOrDie(
        space.Hull(bench::ValueOrDie(datasets[s].FeatureSpace(), "fs")),
        "hull");
  }
  const double mid = 0.5 * (space.dim(0).lo + space.dim(0).hi);
  const double half = 0.22 * space.dim(0).length();
  query::RangeQuery q;
  q.id = 0;
  q.region = query::HyperRectangle(
      std::vector<query::Interval>{{mid - half, mid + half}});
  std::printf("\nquery region: %s over global TEMP space %s\n",
              q.region.ToString().c_str(), space.ToString().c_str());

  selection::RankingOptions ranking;
  ranking.epsilon = 0.15;

  std::printf(
      "\nFig. 5 — per-cluster projection (cluster bounds, overlap h, "
      "supporting?)\n");
  size_t total_all = 0, total_needed = 0;
  std::vector<size_t> node_needed(3, 0);
  for (size_t s = 0; s < 3; ++s) {
    const selection::NodeRank rank = bench::ValueOrDie(
        selection::RankNode(nodes[s].profile, q, ranking), "rank");
    std::printf("node %zu (%zu samples): ranking r = %.3f, K' = %zu / %zu\n",
                s, nodes[s].profile.total_samples, rank.ranking,
                rank.supporting_clusters, rank.total_clusters);
    for (const auto& score : rank.cluster_scores) {
      const auto& cluster = nodes[s].profile.clusters[score.cluster_id];
      std::printf("  cluster %zu: bounds %-22s size %4zu h = %.3f %s\n",
                  score.cluster_id, cluster.bounds.ToString().c_str(),
                  cluster.size, score.overlap,
                  score.supporting ? "SUPPORTING" : "-");
      if (score.supporting) node_needed[s] += cluster.size;
    }
    total_all += nodes[s].profile.total_samples;
    total_needed += node_needed[s];
  }

  std::printf("\nFig. 6a — whole data per node vs 6b — data the query needs\n");
  std::printf("%-8s %16s %18s %10s\n", "node", "whole data (6a)",
              "needed by query (6b)", "fraction");
  for (size_t s = 0; s < 3; ++s) {
    std::printf("%-8zu %16zu %18zu %9.1f%%\n", s,
                nodes[s].profile.total_samples, node_needed[s],
                100.0 * static_cast<double>(node_needed[s]) /
                    static_cast<double>(nodes[s].profile.total_samples));
  }
  std::printf("%-8s %16zu %18zu %9.1f%%\n", "total", total_all, total_needed,
              100.0 * static_cast<double>(total_needed) /
                  static_cast<double>(total_all));
  std::printf(
      "\nshape check: the query needs a strict subset of the data "
      "(%s)\n",
      total_needed < total_all ? "yes" : "NO");

  // Leader-side row estimates from cluster digests alone (uniform-density
  // assumption) vs the true per-node matching-row counts — what Fig. 6b
  // looks like when the leader must predict it without seeing raw data.
  std::printf(
      "\ndigest-only row estimate vs actual rows inside the query:\n");
  std::printf("%-8s %14s %12s %10s\n", "node", "estimated", "actual",
              "rel err");
  for (size_t s = 0; s < 3; ++s) {
    const query::NodeSelectivityEstimate estimate = bench::ValueOrDie(
        query::EstimateNodeSelectivity(nodes[s].profile.clusters, q),
        "estimate");
    const std::vector<size_t> actual_rows = bench::ValueOrDie(
        q.MatchingRows(datasets[s].features()), "actual rows");
    const double actual = static_cast<double>(actual_rows.size());
    const double rel =
        actual > 0 ? std::abs(estimate.estimated_rows - actual) / actual
                   : estimate.estimated_rows;
    std::printf("%-8zu %14.0f %12.0f %9.1f%%\n", s, estimate.estimated_rows,
                actual, 100.0 * rel);

    bench::BenchRecord record;
    record.name = StrFormat("node_%zu", s);
    record.values["whole_samples"] =
        static_cast<double>(nodes[s].profile.total_samples);
    record.values["needed_samples"] = static_cast<double>(node_needed[s]);
    record.values["estimated_rows"] = estimate.estimated_rows;
    record.values["actual_rows"] = actual;
    bjson.Add(std::move(record));
  }

  bench::BenchRecord totals;
  totals.name = "totals";
  totals.values["whole_samples"] = static_cast<double>(total_all);
  totals.values["needed_samples"] = static_cast<double>(total_needed);
  totals.values["needed_fraction"] =
      static_cast<double>(total_needed) / static_cast<double>(total_all);
  bjson.Add(std::move(totals));
  bjson.WriteOrDie();
  return 0;
}
