// Reproduces Figures 3 & 4: the five per-dimension overlapping cases, with
// a worked value table for each configuration, plus google-benchmark
// micro-timings verifying the O(d) per-cluster cost claim of Section III-C.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "qens/common/rng.h"
#include "qens/common/stopwatch.h"
#include "qens/common/string_util.h"
#include "qens/query/overlap.h"

using namespace qens;
using query::HyperRectangle;
using query::Interval;
using query::OverlapMode;

namespace {

void PrintCaseTable() {
  std::printf(
      "\n=== Figures 3 & 4 — per-dimension overlap cases (faithful mode) "
      "===\n");
  struct Row {
    const char* figure;
    const char* description;
    Interval query;
    Interval cluster;
  };
  const Row rows[] = {
      {"3a", "query inside cluster", {2, 4}, {0, 10}},
      {"3b", "only query min inside cluster", {6, 14}, {0, 10}},
      {"3c", "only query max inside cluster", {-4, 6}, {0, 10}},
      {"4a", "disjoint, query right of cluster", {20, 30}, {0, 10}},
      {"4b", "disjoint, query left of cluster", {-30, -20}, {0, 10}},
      {"--", "cluster inside query (extension)", {0, 10}, {3, 5}},
  };
  std::printf("%-4s %-36s %-12s %-12s %-26s %8s\n", "fig", "configuration",
              "query", "cluster", "case", "h");
  for (const Row& row : rows) {
    const query::DimensionOverlap d = query::ComputeDimensionOverlap(
        row.query, row.cluster, OverlapMode::kFaithful);
    std::printf("%-4s %-36s [%3.0f,%3.0f]   [%3.0f,%3.0f]   %-26s %8.4f\n",
                row.figure, row.description, row.query.lo, row.query.hi,
                row.cluster.lo, row.cluster.hi, OverlapCaseName(d.kase),
                d.value);
  }
  std::printf("\n");
}

/// Random valid d-dimensional box.
HyperRectangle RandomBox(Rng* rng, size_t dims) {
  std::vector<Interval> intervals(dims);
  for (size_t i = 0; i < dims; ++i) {
    const double a = rng->Uniform(-100, 100);
    intervals[i] = Interval(a, a + rng->Uniform(0.1, 50));
  }
  return HyperRectangle(std::move(intervals));
}

/// Micro: Eq. 2 cost as a function of dimensionality (expected O(d)).
void BM_OverlapRate(benchmark::State& state) {
  const size_t dims = static_cast<size_t>(state.range(0));
  Rng rng(42);
  const HyperRectangle q = RandomBox(&rng, dims);
  const HyperRectangle k = RandomBox(&rng, dims);
  for (auto _ : state) {
    auto rate = query::ComputeOverlapRate(q, k);
    benchmark::DoNotOptimize(rate);
  }
  state.SetComplexityN(static_cast<int64_t>(dims));
}
BENCHMARK(BM_OverlapRate)->RangeMultiplier(2)->Range(1, 64)->Complexity();

/// Micro: single-dimension case analysis.
void BM_DimensionOverlap(benchmark::State& state) {
  Rng rng(7);
  const Interval q(rng.Uniform(-10, 0), rng.Uniform(0, 10));
  const Interval k(rng.Uniform(-10, 0), rng.Uniform(0, 10));
  for (auto _ : state) {
    auto d = query::ComputeDimensionOverlap(q, k, OverlapMode::kFaithful);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_DimensionOverlap);

}  // namespace

int main(int argc, char** argv) {
  bench::BenchJson bjson("bench_fig34_overlap_cases", &argc, argv);
  PrintCaseTable();

  // Direct O(d) scaling measurement mirrored into the JSON output (the
  // google-benchmark registrations below report the same to stdout).
  for (size_t dims : {1, 8, 64}) {
    Rng rng(42);
    const HyperRectangle q = RandomBox(&rng, dims);
    const HyperRectangle k = RandomBox(&rng, dims);
    constexpr size_t kIters = 20000;
    Stopwatch watch;
    for (size_t i = 0; i < kIters; ++i) {
      auto rate = query::ComputeOverlapRate(q, k);
      benchmark::DoNotOptimize(rate);
    }
    bench::BenchRecord record;
    record.name = StrFormat("overlap_rate_d%zu", dims);
    record.values["dims"] = static_cast<double>(dims);
    record.values["iterations"] = static_cast<double>(kIters);
    record.values["seconds_per_call"] =
        watch.ElapsedSeconds() / static_cast<double>(kIters);
    bjson.Add(std::move(record));
  }
  bjson.WriteOrDie();

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
