// X8: concurrent query-serving throughput — the QueryServer scheduling
// independent QuerySessions over one shared fleet, sequential vs pooled
// worker counts.
//
// The determinism contract is asserted BEFORE anything is timed: every
// session's outcomes (selections, losses, simulated times, traffic
// counters) must be BITWISE identical at every worker count. Only after
// that equality check passes are the same workloads re-run under the
// clock, so the speedups below are pure scheduling wins, never a change
// of results.
//
// Workload: 8 sessions x 5 queries (40 query executions) over an
// 8-station air-quality fleet, paper-style LR training.
//
// Sections:
//   equality   — per-worker-count bitwise comparison against sequential.
//   throughput — timed serve per worker count; speedup vs sequential.
//
// Sessions share no mutable state, so the wall-clock speedup scales with
// hardware threads; on a single-core host it degenerates to ~1.0 (records
// carry hw_threads so results are interpretable) while the equality
// section still exercises the full concurrent path.

#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "qens/common/stopwatch.h"
#include "qens/fl/query_server.h"

namespace qens::bench {
namespace {

fl::ExperimentConfig ServingConfig() {
  fl::ExperimentConfig config =
      PaperConfig(data::Heterogeneity::kHeterogeneous);
  config.data.num_stations = 8;
  config.workload.num_queries = 40;
  return config;
}

std::vector<fl::SessionSpec> MakeSpecs(
    const std::vector<query::RangeQuery>& pool) {
  constexpr size_t kSessions = 8;
  constexpr size_t kQueriesPerSession = 5;
  std::vector<fl::SessionSpec> specs;
  size_t next = 0;
  for (size_t s = 0; s < kSessions; ++s) {
    fl::SessionSpec spec;
    for (size_t q = 0; q < kQueriesPerSession; ++q) {
      spec.queries.push_back(pool[next++ % pool.size()]);
    }
    specs.push_back(std::move(spec));
  }
  return specs;
}

/// Bitwise comparison of two serve results; aborts the bench on the first
/// divergence (a broken determinism contract invalidates every timing).
void CheckIdentical(const std::vector<fl::SessionResult>& a,
                    const std::vector<fl::SessionResult>& b,
                    size_t workers) {
  auto die = [&](const char* what, size_t session) {
    std::fprintf(stderr,
                 "FATAL: workers=%zu diverges from sequential at session "
                 "%zu: %s\n",
                 workers, session, what);
    std::exit(1);
  };
  if (a.size() != b.size()) die("session count", 0);
  for (size_t s = 0; s < a.size(); ++s) {
    const fl::SessionResult& x = a[s];
    const fl::SessionResult& y = b[s];
    if (x.session_id != y.session_id) die("session_id", s);
    if (x.queries_run != y.queries_run) die("queries_run", s);
    if (x.queries_skipped != y.queries_skipped) die("queries_skipped", s);
    if (x.comm_messages != y.comm_messages) die("comm_messages", s);
    if (x.comm_bytes != y.comm_bytes) die("comm_bytes", s);
    if (x.comm_seconds != y.comm_seconds) die("comm_seconds", s);
    if (x.outcomes.size() != y.outcomes.size()) die("outcome count", s);
    for (size_t q = 0; q < x.outcomes.size(); ++q) {
      const fl::QueryOutcome& ox = x.outcomes[q];
      const fl::QueryOutcome& oy = y.outcomes[q];
      if (ox.skipped != oy.skipped) die("skipped", s);
      if (ox.selected_nodes != oy.selected_nodes) die("selected_nodes", s);
      if (ox.samples_used != oy.samples_used) die("samples_used", s);
      if (ox.skipped) continue;
      // Bitwise, not approximate: the contract is exact.
      if (ox.loss_model_avg != oy.loss_model_avg) die("loss_model_avg", s);
      if (ox.loss_weighted != oy.loss_weighted) die("loss_weighted", s);
      if (ox.loss_fedavg != oy.loss_fedavg) die("loss_fedavg", s);
      if (ox.sim_time_total != oy.sim_time_total) die("sim_time_total", s);
      if (ox.sim_time_parallel != oy.sim_time_parallel) {
        die("sim_time_parallel", s);
      }
      if (ox.sim_time_comm != oy.sim_time_comm) die("sim_time_comm", s);
    }
  }
}

}  // namespace
}  // namespace qens::bench

int main(int argc, char** argv) {
  using namespace qens;
  using namespace qens::bench;

  BenchJson json("bench_x8_query_throughput", &argc, argv);
  PrintHeader(
      "X8: concurrent query serving (8 sessions x 5 queries, shared fleet)");

  fl::ExperimentRunner runner =
      ValueOrDie(fl::ExperimentRunner::Create(ServingConfig()),
                 "build experiment");
  std::shared_ptr<const fl::Fleet> fleet = runner.federation().fleet();
  const std::vector<fl::SessionSpec> specs = MakeSpecs(runner.queries());
  size_t total_queries = 0;
  for (const auto& spec : specs) total_queries += spec.queries.size();

  const size_t hw = std::max<size_t>(std::thread::hardware_concurrency(), 1);
  std::vector<size_t> worker_counts = {2, 4};
  if (hw > 4) worker_counts.push_back(hw);
  std::printf("hardware threads: %zu%s\n", hw,
              hw <= 1 ? " (single core: expect speedup ~1.0; the equality "
                        "contract is still asserted)"
                      : "");

  // Phase 1: the determinism contract, asserted before any timing.
  fl::QueryServer sequential = ValueOrDie(
      fl::QueryServer::Create(fleet, fl::ServingOptions{}), "build server");
  const std::vector<fl::SessionResult> reference =
      ValueOrDie(sequential.Serve(specs), "sequential serve");
  size_t ran = 0;
  for (const auto& session : reference) ran += session.queries_run;
  std::printf("sequential reference: %zu sessions, %zu/%zu queries run\n",
              reference.size(), ran, total_queries);
  for (size_t workers : worker_counts) {
    fl::ServingOptions options;
    options.num_workers = workers;
    fl::QueryServer server =
        ValueOrDie(fl::QueryServer::Create(fleet, options), "build server");
    CheckIdentical(reference, ValueOrDie(server.Serve(specs), "serve"),
                   workers);
    std::printf("workers=%zu: bitwise identical to sequential\n", workers);
    BenchRecord record;
    record.name = "equality_w" + std::to_string(workers);
    record.labels["section"] = "equality";
    record.labels["workers"] = std::to_string(workers);
    record.values["queries"] = static_cast<double>(total_queries);
    record.values["identical"] = 1.0;
    json.Add(std::move(record));
  }

  // Phase 2: timing. The equality runs above double as warmup.
  auto timed_serve = [&](size_t workers) {
    fl::ServingOptions options;
    options.num_workers = workers;
    fl::QueryServer server =
        ValueOrDie(fl::QueryServer::Create(fleet, options), "build server");
    Stopwatch watch;
    auto results = ValueOrDie(server.Serve(specs), "timed serve");
    const double seconds = watch.ElapsedSeconds();
    CheckIdentical(reference, results, workers);
    return seconds;
  };

  const double seq_seconds = timed_serve(0);
  std::printf("\n%-12s %12s %10s\n", "workers", "wall_s", "speedup");
  std::printf("%-12s %12.4f %10.2f\n", "sequential", seq_seconds, 1.0);
  {
    BenchRecord record;
    record.name = "serve_sequential";
    record.labels["section"] = "throughput";
    record.labels["workers"] = "0";
    record.values["queries"] = static_cast<double>(total_queries);
    record.values["wall_seconds"] = seq_seconds;
    record.values["speedup"] = 1.0;
    record.values["hw_threads"] = static_cast<double>(hw);
    json.Add(std::move(record));
  }
  for (size_t workers : worker_counts) {
    const double seconds = timed_serve(workers);
    const double speedup = seconds > 0 ? seq_seconds / seconds : 0.0;
    std::printf("%-12zu %12.4f %10.2f\n", workers, seconds, speedup);
    BenchRecord record;
    record.name = "serve_w" + std::to_string(workers);
    record.labels["section"] = "throughput";
    record.labels["workers"] = std::to_string(workers);
    record.values["queries"] = static_cast<double>(total_queries);
    record.values["wall_seconds"] = seconds;
    record.values["speedup"] = speedup;
    record.values["hw_threads"] = static_cast<double>(hw);
    json.Add(std::move(record));
  }

  json.WriteOrDie();
  return 0;
}
