// X7: hot-path compute microbenchmark — this PR's fused/zero-copy pipeline
// against a faithful in-bench reimplementation of the pre-PR kernels (taken
// verbatim from the repo history: zero-skipping ikj GEMM, materialized
// transposes in backward, per-call input/pre-activation copies, per-batch
// SelectRows allocations, layer-copying Predict, per-node std::async).
//
// Every comparison first asserts the two paths produce BITWISE identical
// numbers, so the speedups below are pure implementation wins, never a
// change of math. Sections:
//
//   kernels   — GEMM shapes from the paper's MLP (batch 32, 13 features,
//               64 hidden units, Table III): forward X*W+b, dW = Xt*dZ,
//               dX = dZ*Wt.
//   step      — one full forward+backward training step of the MLP.
//   kmeans    — Lloyd assignment, sequential vs chunked pool path.
//   round     — one 16-node federated round of local training, pre-PR
//               (std::async per node + naive compute) vs pooled + fused.
//               With 16 jobs on a bounded pool the round is oversubscribed
//               on any machine with fewer than 16 hardware threads.
//
// Speedups on a single core are pure compute-path wins; multi-core machines
// additionally overlap the pooled sections.

#include <cstdio>
#include <future>
#include <numeric>
#include <vector>

#include "bench_util.h"
#include "qens/clustering/kmeans.h"
#include "qens/common/rng.h"
#include "qens/common/stopwatch.h"
#include "qens/common/thread_pool.h"
#include "qens/ml/activation.h"
#include "qens/ml/loss.h"
#include "qens/ml/model_factory.h"
#include "qens/ml/optimizer.h"
#include "qens/ml/trainer.h"
#include "qens/tensor/matrix.h"

namespace qens::bench {
namespace {

// ---------------------------------------------------------------------------
// Pre-PR kernels, reproduced from the repo history.
// ---------------------------------------------------------------------------

// The pre-PR build compiled these loops at -O2 (RelWithDebInfo); pin that
// here so the baseline stays the historical machine code even if the bench
// translation unit is ever built at a different level.
#if defined(__GNUC__) && !defined(__clang__)
#define QENS_BASELINE_OPT __attribute__((optimize("O2")))
#else
#define QENS_BASELINE_OPT
#endif

/// Pre-PR Matrix::MatMul: ikj order WITH the zero-skip branch (the branch
/// this PR removes as a NaN-masking bug; kept here so the baseline is the
/// real historical code, sparsity shortcut and all).
QENS_BASELINE_OPT Matrix NaiveMatMul(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    const double* ar = a.RowPtr(i);
    double* o = out.RowPtr(i);
    for (size_t k = 0; k < a.cols(); ++k) {
      const double aik = ar[k];
      if (aik == 0.0) continue;
      const double* br = b.RowPtr(k);
      for (size_t j = 0; j < b.cols(); ++j) o[j] += aik * br[j];
    }
  }
  return out;
}

/// Pre-PR Matrix::Transposed (element-wise strided store).
QENS_BASELINE_OPT Matrix NaiveTransposed(const Matrix& m) {
  Matrix out(m.cols(), m.rows());
  for (size_t r = 0; r < m.rows(); ++r) {
    const double* src = m.RowPtr(r);
    for (size_t c = 0; c < m.cols(); ++c) out(c, r) = src[c];
  }
  return out;
}

/// Pre-PR DenseLayer forward caches: per layer, a COPY of the input batch
/// and of the pre-activation (this PR replaces both with views/scratch).
struct NaiveCache {
  std::vector<Matrix> inputs;
  std::vector<Matrix> pres;
};

/// Pre-PR model forward: fresh z/y buffers per layer, cache copies.
Matrix NaiveForward(const ml::SequentialModel& model, const Matrix& x,
                    NaiveCache* cache) {
  cache->inputs.clear();
  cache->pres.clear();
  Matrix cur = x;
  for (size_t i = 0; i < model.num_layers(); ++i) {
    const ml::DenseLayer& layer = model.layer(i);
    Matrix z = NaiveMatMul(cur, layer.weights());
    CheckOk(z.AddRowBroadcast(layer.bias()), "naive bias");
    cache->inputs.push_back(cur);
    cache->pres.push_back(z);
    Matrix y;
    ml::ApplyActivation(layer.activation(), z, &y);
    cur = y;
  }
  return cur;
}

/// Pre-PR model backward: materialized transposes for dW = Xt*dZ and
/// dX = dZ*Wt, allocating Hadamard for dZ.
std::vector<ml::DenseGradients> NaiveBackward(const ml::SequentialModel& model,
                                              const Matrix& grad_out,
                                              const NaiveCache& cache) {
  std::vector<ml::DenseGradients> grads(model.num_layers());
  Matrix cur = grad_out;
  for (size_t i = model.num_layers(); i-- > 0;) {
    const ml::DenseLayer& layer = model.layer(i);
    Matrix fprime;
    ml::ApplyActivationGrad(layer.activation(), cache.pres[i], &fprime);
    Matrix dz = ValueOrDie(cur.Hadamard(fprime), "naive hadamard");
    grads[i].d_weights = NaiveMatMul(NaiveTransposed(cache.inputs[i]), dz);
    grads[i].d_bias = dz.ColSums();
    cur = NaiveMatMul(dz, NaiveTransposed(layer.weights()));
  }
  return grads;
}

/// Pre-PR SequentialModel::Predict forwarded through a copied DenseLayer
/// per call ("so inference is const"); the weight/bias copies are
/// reproduced here. (The historical copy also dragged the training caches
/// along; omitting that is conservative for the baseline.)
Matrix NaivePredict(const ml::SequentialModel& model, const Matrix& x) {
  Matrix cur = x;
  for (size_t i = 0; i < model.num_layers(); ++i) {
    const ml::DenseLayer& layer = model.layer(i);
    const Matrix weights_copy = layer.weights();
    const std::vector<double> bias_copy = layer.bias();
    Matrix z = NaiveMatMul(cur, weights_copy);
    CheckOk(z.AddRowBroadcast(bias_copy), "naive predict bias");
    Matrix y;
    ml::ApplyActivation(layer.activation(), z, &y);
    cur = y;
  }
  return cur;
}

/// Pre-PR Trainer::Fit, step for step: same Rng sequence, same shuffles,
/// same batching, same optimizer — but per-batch SelectRows allocations and
/// the naive forward/backward/Predict above. With equal seeds this trains
/// to BITWISE the same parameters as Trainer::Fit, which the bench asserts.
void NaiveFit(ml::SequentialModel* model, ml::Optimizer* optimizer,
              const ml::TrainOptions& options, const Matrix& x,
              const Matrix& y) {
  Rng rng(options.seed);
  std::vector<size_t> order(x.rows());
  std::iota(order.begin(), order.end(), size_t{0});
  if (options.shuffle) rng.Shuffle(&order);

  size_t n_val = static_cast<size_t>(options.validation_split *
                                     static_cast<double>(x.rows()));
  n_val = std::min(n_val, x.rows() - 1);
  const size_t n_train = x.rows() - n_val;
  std::vector<size_t> train_idx(
      order.begin(), order.begin() + static_cast<ptrdiff_t>(n_train));
  const std::vector<size_t> val_idx(
      order.begin() + static_cast<ptrdiff_t>(n_train), order.end());
  const Matrix x_val = ValueOrDie(x.SelectRows(val_idx), "naive x_val");
  const Matrix y_val = ValueOrDie(y.SelectRows(val_idx), "naive y_val");

  NaiveCache cache;
  for (size_t epoch = 0; epoch < options.epochs; ++epoch) {
    if (options.shuffle) rng.Shuffle(&train_idx);
    for (size_t start = 0; start < n_train; start += options.batch_size) {
      const size_t end = std::min(start + options.batch_size, n_train);
      std::vector<size_t> batch(
          train_idx.begin() + static_cast<ptrdiff_t>(start),
          train_idx.begin() + static_cast<ptrdiff_t>(end));
      Matrix xb = ValueOrDie(x.SelectRows(batch), "naive xb");
      Matrix yb = ValueOrDie(y.SelectRows(batch), "naive yb");
      Matrix pred = NaiveForward(*model, xb, &cache);
      Matrix grad =
          ValueOrDie(ml::ComputeLossGrad(options.loss, pred, yb), "naive dL");
      std::vector<ml::DenseGradients> grads =
          NaiveBackward(*model, grad, cache);
      CheckOk(optimizer->Step(model, grads), "naive step");
    }
    if (n_val > 0) {
      Matrix pv = NaivePredict(*model, x_val);
      CheckOk(ml::ComputeLoss(options.loss, pv, y_val).status(), "naive vl");
    }
  }
}

// ---------------------------------------------------------------------------
// Bench scaffolding.
// ---------------------------------------------------------------------------

void Die(const char* what) {
  std::fprintf(stderr, "FATAL: %s\n", what);
  std::exit(1);
}

void RequireBitIdentical(const std::vector<double>& a,
                         const std::vector<double>& b, const char* what) {
  if (a != b) Die(what);
}

/// 32x13 batches against a 13-feature linear target — the paper's MLP input
/// scale (Table III: 64 hidden units, batch 32).
constexpr size_t kBatch = 32;
constexpr size_t kFeatures = 13;
constexpr size_t kHidden = 64;

Matrix RandomMatrix(size_t rows, size_t cols, Rng* rng, double lo = -1.0,
                    double hi = 1.0) {
  Matrix m(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) m(r, c) = rng->Uniform(lo, hi);
  }
  return m;
}

double Seconds(Stopwatch& watch) { return watch.ElapsedSeconds(); }

BenchRecord SpeedupRecord(const std::string& name, const std::string& section,
                          double naive_s, double fused_s, double reps) {
  BenchRecord record;
  record.name = name;
  record.labels["section"] = section;
  record.values["naive_seconds"] = naive_s;
  record.values["fused_seconds"] = fused_s;
  record.values["speedup"] = fused_s > 0 ? naive_s / fused_s : 0.0;
  record.values["reps"] = reps;
  std::printf("  %-28s naive %9.4f ms   fused %9.4f ms   speedup %5.2fx\n",
              name.c_str(), 1e3 * naive_s, 1e3 * fused_s,
              fused_s > 0 ? naive_s / fused_s : 0.0);
  return record;
}

// --- Section: kernels ------------------------------------------------------

void BenchKernels(BenchJson* json) {
  PrintHeader("X7a. GEMM kernels (paper MLP shapes: 32x13 * 13x64)");
  Rng rng(41);
  const Matrix x = RandomMatrix(kBatch, kFeatures, &rng);
  const Matrix w = RandomMatrix(kFeatures, kHidden, &rng, -0.3, 0.3);
  const Matrix dz = RandomMatrix(kBatch, kHidden, &rng);
  std::vector<double> bias(kHidden);
  for (size_t i = 0; i < kHidden; ++i) bias[i] = 0.01 * static_cast<double>(i);
  const double reps = 20000;
  double sink = 0.0;

  {  // Forward: X*W + b.
    Matrix naive_out, fused_out;
    Stopwatch naive_watch;
    for (double r = 0; r < reps; ++r) {
      naive_out = NaiveMatMul(x, w);
      CheckOk(naive_out.AddRowBroadcast(bias), "bias");
      sink += naive_out(0, 0);
    }
    const double naive_s = Seconds(naive_watch);
    Stopwatch fused_watch;
    for (double r = 0; r < reps; ++r) {
      CheckOk(x.MatMulAddBiasInto(w, bias, &fused_out), "fused bias");
      sink += fused_out(0, 0);
    }
    const double fused_s = Seconds(fused_watch);
    RequireBitIdentical(naive_out.data(), fused_out.data(), "forward differs");
    json->Add(SpeedupRecord("forward_xw_bias", "kernels", naive_s, fused_s,
                            reps));
  }
  {  // dW = Xt * dZ.
    Matrix naive_out, fused_out;
    Stopwatch naive_watch;
    for (double r = 0; r < reps; ++r) {
      naive_out = NaiveMatMul(NaiveTransposed(x), dz);
      sink += naive_out(0, 0);
    }
    const double naive_s = Seconds(naive_watch);
    Stopwatch fused_watch;
    for (double r = 0; r < reps; ++r) {
      CheckOk(x.MatMulTransposedAInto(dz, &fused_out), "fused dW");
      sink += fused_out(0, 0);
    }
    const double fused_s = Seconds(fused_watch);
    RequireBitIdentical(naive_out.data(), fused_out.data(), "dW differs");
    json->Add(SpeedupRecord("backward_dw_xt_dz", "kernels", naive_s, fused_s,
                            reps));
  }
  {  // dX = dZ * Wt.
    Matrix naive_out, fused_out;
    Stopwatch naive_watch;
    for (double r = 0; r < reps; ++r) {
      naive_out = NaiveMatMul(dz, NaiveTransposed(w));
      sink += naive_out(0, 0);
    }
    const double naive_s = Seconds(naive_watch);
    Stopwatch fused_watch;
    for (double r = 0; r < reps; ++r) {
      CheckOk(dz.MatMulTransposedBInto(w, &fused_out), "fused dX");
      sink += fused_out(0, 0);
    }
    const double fused_s = Seconds(fused_watch);
    RequireBitIdentical(naive_out.data(), fused_out.data(), "dX differs");
    json->Add(SpeedupRecord("backward_dx_dz_wt", "kernels", naive_s, fused_s,
                            reps));
  }
  if (sink == 12345.6789) std::printf("sink %f\n", sink);  // Defeat DCE.
}

// --- Section: step ---------------------------------------------------------

void BenchTrainStep(BenchJson* json) {
  PrintHeader("X7b. Dense forward+backward step (MLP 13 -> 64 relu -> 1)");
  const ml::HyperParams hp = ml::PaperHyperParams(ml::ModelKind::kNeuralNetwork);
  Rng init_rng(7);
  ml::SequentialModel fused_model =
      ValueOrDie(ml::BuildModel(hp, kFeatures, &init_rng), "model");
  Rng init_rng2(7);
  ml::SequentialModel naive_model =
      ValueOrDie(ml::BuildModel(hp, kFeatures, &init_rng2), "model");

  Rng rng(43);
  const Matrix xb = RandomMatrix(kBatch, kFeatures, &rng);
  const Matrix yb = RandomMatrix(kBatch, 1, &rng);

  // One step each way, then assert every gradient is bitwise identical.
  NaiveCache cache;
  {
    Matrix pred_naive = NaiveForward(naive_model, xb, &cache);
    Matrix grad =
        ValueOrDie(ml::ComputeLossGrad(hp.loss, pred_naive, yb), "dL");
    auto grads_naive = NaiveBackward(naive_model, grad, cache);
    Matrix pred_fused = ValueOrDie(fused_model.Forward(xb), "fwd");
    RequireBitIdentical(pred_naive.data(), pred_fused.data(), "pred differs");
    auto grads_fused = ValueOrDie(fused_model.Backward(grad), "bwd");
    if (grads_naive.size() != grads_fused.size()) Die("grad count");
    for (size_t i = 0; i < grads_naive.size(); ++i) {
      RequireBitIdentical(grads_naive[i].d_weights.data(),
                          grads_fused[i].d_weights.data(), "dW differs");
      RequireBitIdentical(grads_naive[i].d_bias, grads_fused[i].d_bias,
                          "db differs");
    }
  }

  const double reps = 5000;
  double sink = 0.0;
  Stopwatch naive_watch;
  for (double r = 0; r < reps; ++r) {
    Matrix pred = NaiveForward(naive_model, xb, &cache);
    Matrix grad = ValueOrDie(ml::ComputeLossGrad(hp.loss, pred, yb), "dL");
    auto grads = NaiveBackward(naive_model, grad, cache);
    sink += grads[0].d_weights(0, 0);
  }
  const double naive_s = Seconds(naive_watch);
  Stopwatch fused_watch;
  for (double r = 0; r < reps; ++r) {
    Matrix pred = ValueOrDie(fused_model.Forward(xb), "fwd");
    Matrix grad = ValueOrDie(ml::ComputeLossGrad(hp.loss, pred, yb), "dL");
    auto grads = ValueOrDie(fused_model.Backward(grad), "bwd");
    sink += grads[0].d_weights(0, 0);
  }
  const double fused_s = Seconds(fused_watch);
  json->Add(SpeedupRecord("train_step_mlp", "step", naive_s, fused_s, reps));
  if (sink == 12345.6789) std::printf("sink %f\n", sink);
}

// --- Section: kmeans -------------------------------------------------------

void BenchKMeansAssign(BenchJson* json) {
  PrintHeader("X7c. k-means Lloyd loop (6000x3, K = 5)");
  Rng rng(47);
  Matrix data(6000, 3);
  for (size_t r = 0; r < data.rows(); ++r) {
    const double base = 5.0 * static_cast<double>(r % 5);
    for (size_t c = 0; c < data.cols(); ++c) {
      data(r, c) = base + rng.Gaussian(0, 1.0);
    }
  }
  clustering::KMeansOptions options;
  options.k = 5;
  options.max_iterations = 25;
  options.tolerance = 0.0;
  options.seed = 3;

  const double reps = 10;
  Stopwatch seq_watch;
  clustering::KMeansResult seq_result;
  for (double r = 0; r < reps; ++r) {
    seq_result =
        ValueOrDie(clustering::KMeans(options).Fit(data), "kmeans seq");
  }
  const double seq_s = Seconds(seq_watch);

  options.num_threads = common::ThreadPool::DefaultThreadCount() > 1
                            ? common::ThreadPool::DefaultThreadCount()
                            : 2;
  Stopwatch par_watch;
  clustering::KMeansResult par_result;
  for (double r = 0; r < reps; ++r) {
    par_result =
        ValueOrDie(clustering::KMeans(options).Fit(data), "kmeans par");
  }
  const double par_s = Seconds(par_watch);
  if (seq_result.assignment != par_result.assignment) Die("kmeans differs");

  BenchRecord record;
  record.name = "kmeans_lloyd_6000x3";
  record.labels["section"] = "kmeans";
  record.values["sequential_seconds"] = seq_s;
  record.values["parallel_seconds"] = par_s;
  record.values["threads"] = static_cast<double>(options.num_threads);
  record.values["speedup"] = par_s > 0 ? seq_s / par_s : 0.0;
  record.values["reps"] = reps;
  std::printf(
      "  %-28s seq   %9.4f ms   pool  %9.4f ms   speedup %5.2fx (%zu thr)\n",
      record.name.c_str(), 1e3 * seq_s, 1e3 * par_s,
      par_s > 0 ? seq_s / par_s : 0.0, options.num_threads);
  json->Add(std::move(record));
}

// --- Section: round --------------------------------------------------------

/// One node's local-training job for the round bench.
struct NodeData {
  Matrix x;
  Matrix y;
};

void BenchFederationRound(BenchJson* json) {
  PrintHeader("X7d. Federated round: 16 oversubscribed local-training jobs");
  const size_t kNodes = 16;
  const size_t kRows = 320;
  ml::HyperParams hp = ml::PaperHyperParams(ml::ModelKind::kNeuralNetwork);
  hp.epochs = 8;
  ml::TrainOptions train_options;
  train_options.epochs = hp.epochs;
  train_options.batch_size = hp.batch_size;
  train_options.validation_split = hp.validation_split;
  train_options.loss = hp.loss;

  std::vector<NodeData> nodes(kNodes);
  for (size_t n = 0; n < kNodes; ++n) {
    Rng rng(100 + n);
    nodes[n].x = RandomMatrix(kRows, kFeatures, &rng);
    nodes[n].y = Matrix(kRows, 1);
    for (size_t r = 0; r < kRows; ++r) {
      double acc = 0.0;
      for (size_t c = 0; c < kFeatures; ++c) acc += nodes[n].x(r, c);
      nodes[n].y(r, 0) = 0.1 * acc + rng.Gaussian(0, 0.05);
    }
  }

  auto fresh_model = [&](size_t node) {
    Rng rng(500 + node);
    return ValueOrDie(ml::BuildModel(hp, kFeatures, &rng), "model");
  };

  // Pre-PR round: one std::async thread per node, naive compute path.
  auto naive_round = [&]() {
    std::vector<ml::SequentialModel> models;
    models.reserve(kNodes);
    for (size_t n = 0; n < kNodes; ++n) models.push_back(fresh_model(n));
    std::vector<std::future<void>> futures(kNodes);
    for (size_t n = 0; n < kNodes; ++n) {
      ml::SequentialModel* model = &models[n];
      const NodeData* node = &nodes[n];
      ml::TrainOptions opts = train_options;
      opts.seed = 900 + n;
      futures[n] = std::async(std::launch::async, [model, node, opts, &hp] {
        auto optimizer =
            ValueOrDie(ml::MakeOptimizer(hp.optimizer, hp.learning_rate),
                       "optimizer");
        NaiveFit(model, optimizer.get(), opts, node->x, node->y);
      });
    }
    for (size_t n = 0; n < kNodes; ++n) futures[n].get();
    return models;
  };

  // This PR's round: bounded shared pool (jobs queue when oversubscribed),
  // fused compute path via the real Trainer.
  auto pooled_round = [&](common::ThreadPool* pool) {
    std::vector<ml::SequentialModel> models;
    models.reserve(kNodes);
    for (size_t n = 0; n < kNodes; ++n) models.push_back(fresh_model(n));
    std::vector<std::future<void>> futures(kNodes);
    for (size_t n = 0; n < kNodes; ++n) {
      ml::SequentialModel* model = &models[n];
      const NodeData* node = &nodes[n];
      ml::TrainOptions opts = train_options;
      opts.seed = 900 + n;
      futures[n] = pool->Submit([model, node, opts, &hp] {
        auto optimizer =
            ValueOrDie(ml::MakeOptimizer(hp.optimizer, hp.learning_rate),
                       "optimizer");
        ml::Trainer trainer(std::move(optimizer), opts);
        CheckOk(trainer.Fit(model, node->x, node->y).status(), "fit");
      });
    }
    for (size_t n = 0; n < kNodes; ++n) futures[n].get();
    return models;
  };

  common::ThreadPool pool(common::ThreadPool::DefaultThreadCount());

  // Correctness first: both rounds must train to bitwise equal parameters.
  {
    auto naive_models = naive_round();
    auto pooled_models = pooled_round(&pool);
    for (size_t n = 0; n < kNodes; ++n) {
      RequireBitIdentical(naive_models[n].GetParameters(),
                          pooled_models[n].GetParameters(),
                          "round models differ");
    }
  }

  const double reps = 3;
  Stopwatch naive_watch;
  for (double r = 0; r < reps; ++r) naive_round();
  const double naive_s = Seconds(naive_watch);
  Stopwatch pooled_watch;
  for (double r = 0; r < reps; ++r) pooled_round(&pool);
  const double pooled_s = Seconds(pooled_watch);

  BenchRecord record = SpeedupRecord("federation_round_16nodes", "round",
                                     naive_s, pooled_s, reps);
  record.values["nodes"] = static_cast<double>(kNodes);
  record.values["pool_workers"] =
      static_cast<double>(common::ThreadPool::DefaultThreadCount());
  json->Add(std::move(record));
}

}  // namespace
}  // namespace qens::bench

int main(int argc, char** argv) {
  using namespace qens::bench;
  BenchJson json("bench_x7_hotpath", &argc, argv);
  PrintHeader("X7. Hot-path compute overhaul: fused kernels vs pre-PR path");
  std::printf("  hardware threads: %zu\n",
              qens::common::ThreadPool::DefaultThreadCount());
  BenchKernels(&json);
  BenchTrainStep(&json);
  BenchKMeansAssign(&json);
  BenchFederationRound(&json);
  json.WriteOrDie();
  return 0;
}
