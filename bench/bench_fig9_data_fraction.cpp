// Reproduces Figure 9: percentage of data needed to build the model per
// query, with vs without the query-driven mechanism, for a stream of 20
// sequential queries.
//
// "With" = rows of supporting clusters on the selected nodes only.
// "Without" = all rows of all participants (always 100%).
// Expected shape: the query-driven bars are a small percentage of the
// full-data bars on every query.

#include <cstdio>

#include "bench_util.h"

using namespace qens;

int main(int argc, char** argv) {
  bench::BenchJson bjson("bench_fig9_data_fraction", &argc, argv);
  bench::PrintHeader(
      "Figure 9 — % of data needed per query, w/ vs w/o the query-driven "
      "mechanism (20 sequential queries)");

  fl::ExperimentConfig config =
      bench::PaperConfig(data::Heterogeneity::kHeterogeneous);
  config.workload.num_queries = 20;
  fl::ExperimentRunner runner = bench::ValueOrDie(
      fl::ExperimentRunner::Create(config), "build experiment");

  const fl::Mechanism ours{"QueryDriven", selection::PolicyKind::kQueryDriven,
                           /*data_selectivity=*/true,
                           fl::AggregationKind::kWeightedAveraging};
  const fl::Mechanism full{"FullData", selection::PolicyKind::kAllNodes,
                           /*data_selectivity=*/false,
                           fl::AggregationKind::kModelAveraging};

  auto ours_records =
      bench::ValueOrDie(runner.RunPerQuery(ours), "run query-driven");
  auto full_records =
      bench::ValueOrDie(runner.RunPerQuery(full), "run full-data");

  std::printf("\n%-7s %20s %20s %14s\n", "query", "query-driven data %",
              "full data %", "samples used");
  qens::stats::RunningStats fraction;
  size_t compared = 0, below = 0;
  for (size_t i = 0; i < ours_records.size(); ++i) {
    if (ours_records[i].skipped || full_records[i].skipped) {
      std::printf("%-7zu %20s %20s %14s\n", i, "skipped", "skipped", "-");
      continue;
    }
    const double ours_pct = 100.0 * ours_records[i].data_fraction_all;
    const double full_pct = 100.0 * full_records[i].data_fraction_all;
    std::printf("%-7zu %19.1f%% %19.1f%% %14zu\n", i, ours_pct, full_pct,
                ours_records[i].samples_used);
    fraction.Add(ours_records[i].data_fraction_all);
    ++compared;
    if (ours_pct < full_pct) ++below;
  }
  std::printf("\naverage query-driven data use: %.1f%% of all data "
              "(full-data baseline: 100%%)\n",
              100.0 * fraction.mean());
  std::printf("shape check: below the full-data bar on %zu/%zu queries "
              "(paper: all)\n",
              below, compared);

  bench::BenchRecord record;
  record.name = "data_fraction";
  record.values["queries_compared"] = static_cast<double>(compared);
  record.values["avg_data_fraction"] = fraction.mean();
  record.values["below_full_bar"] = static_cast<double>(below);
  bjson.Add(std::move(record));
  bjson.WriteOrDie();
  return 0;
}
