// X10: the binary wire format — quality vs bytes on the air-quality
// workload, swept over the payload codecs (raw f64, 8/4/2-bit quantized,
// top-k sparsified), plus the exact planner-vs-transport byte pinning the
// closed-form sizes make possible.
//
// The correctness contract is asserted BEFORE anything is reported: for
// every wire-enabled codec, the sum of the planner's est_comm_bytes over
// the executed queries must equal the bytes the session's transport
// actually recorded (model-down + model-up tags), EXACTLY — the codec's
// sizes are architecture-determined, so the leader can price a query's
// traffic to the byte before engaging a single node. The bench dies on any
// mismatch. (The historical text format could not pin the up-link at all:
// each trained model's hex-float digits drifted, which is also recorded
// here as the "off" row's est/recorded gap.)
//
// Workload: the Section V-A air-quality deployment (10 stations,
// heterogeneous regime, K = 5) serving range queries with the NN model —
// the 64-unit hidden layer gives the codec real tensors to compress; a
// 2-param LR model is all header and per-tensor scale overhead.
//
// Sections:
//   sweep   — per codec: avg loss (raw PM2.5 units), recorded down/up
//             bytes, reduction_vs_raw, rel_loss_vs_raw.
//   pinning — per wire codec: planned vs recorded bytes (asserted equal);
//             the "off" row shows the text format's up-link drift instead.
//
// Every record carries values["queries"] (tools/check_bench_json.py
// enforces this).

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "qens/fl/planner.h"
#include "qens/ml/model_codec.h"
#include "qens/query/workload_generator.h"

namespace qens::bench {
namespace {

constexpr size_t kQueries = 16;
constexpr uint64_t kSeed = 2023;
constexpr double kTopKFraction = 0.1;

fl::FederationOptions BaseFederation() {
  fl::FederationOptions options;
  options.environment.kmeans.k = 5;
  options.ranking.epsilon = 0.15;
  options.query_driven.top_l = 3;
  options.hyper = ml::PaperHyperParams(ml::ModelKind::kNeuralNetwork);
  options.hyper.epochs = 40;  // Scaled from 100 for bench runtime.
  options.epochs_per_cluster = 5;
  options.test_fraction = 0.2;
  options.seed = kSeed + 1;
  return options;
}

std::vector<data::Dataset> MakeStations() {
  data::AirQualityOptions options;
  options.num_stations = 10;
  options.samples_per_station = 1500;
  options.heterogeneity = data::Heterogeneity::kHeterogeneous;
  options.seed = kSeed;
  options.single_feature = true;
  data::AirQualityGenerator generator(options);
  return ValueOrDie(generator.GenerateAll(), "generate stations");
}

struct CodecRun {
  std::string label;       ///< "off" or the codec name.
  bool wire_on = false;
  ml::WireCodecKind codec = ml::WireCodecKind::kRawF64;
  // Measured:
  size_t queries_run = 0;
  size_t queries_skipped = 0;
  double avg_loss = 0.0;        ///< Raw PM2.5 units, weighted aggregation.
  size_t down_bytes = 0;        ///< Transport "model-down" total.
  size_t up_bytes = 0;          ///< Transport "model-up" total.
  size_t planned_bytes = 0;     ///< Sum of est_comm_bytes over run queries.
};

CodecRun RunCodec(const std::string& label, bool wire_on,
                  ml::WireCodecKind codec,
                  const std::vector<data::Dataset>& stations,
                  const std::vector<query::RangeQuery>& queries) {
  CodecRun run;
  run.label = label;
  run.wire_on = wire_on;
  run.codec = codec;

  fl::FederationOptions fed_options = BaseFederation();
  fed_options.wire.enabled = wire_on;
  fed_options.wire.codec = codec;
  fed_options.wire.top_k_fraction = kTopKFraction;
  auto fleet = ValueOrDie(fl::Fleet::Create(stations, fed_options), "fleet");
  auto session = ValueOrDie(
      fl::QuerySession::Create(fleet, fl::QuerySessionOptions{}), "session");
  const auto profiles =
      ValueOrDie(fleet->environment.Profiles(), "profiles");

  fl::PlannerOptions plan_options;
  plan_options.ranking = fed_options.ranking;
  plan_options.selection = fed_options.query_driven;
  plan_options.epochs_per_cluster = fed_options.epochs_per_cluster;
  plan_options.hyper = fed_options.hyper;
  plan_options.session_seed = session.seed();
  plan_options.wire = fed_options.wire;

  stats::RunningStats losses;
  for (const query::RangeQuery& q : queries) {
    const auto internal = ValueOrDie(fleet->InternalQuery(q), "internal");
    const auto plan =
        ValueOrDie(fl::PlanQuery(profiles, {}, internal, plan_options),
                   "plan");
    auto outcome = ValueOrDie(
        session.RunQuery(q, selection::PolicyKind::kQueryDriven,
                         /*data_selectivity=*/true),
        "run query");
    if (outcome.skipped) {
      ++run.queries_skipped;
      continue;
    }
    ++run.queries_run;
    run.planned_bytes += plan.est_comm_bytes;
    losses.Add(fleet->DenormalizeMse(outcome.loss_weighted));
  }
  run.avg_loss = losses.mean();
  run.down_bytes = session.transport().BytesWithTag("model-down");
  run.up_bytes = session.transport().BytesWithTag("model-up");
  return run;
}

}  // namespace
}  // namespace qens::bench

int main(int argc, char** argv) {
  using namespace qens;
  using namespace qens::bench;

  BenchJson json("bench_x10_wire_format", &argc, argv);
  PrintHeader("X10: binary wire format (quality vs bytes, exact pinning)");

  const std::vector<data::Dataset> stations = MakeStations();

  // Workload over the pooled raw data space (the fleet's raw_space is the
  // same for every codec: the wire layer never touches the data path).
  fl::FederationOptions probe_options = BaseFederation();
  auto probe_fleet =
      ValueOrDie(fl::Fleet::Create(stations, probe_options), "probe fleet");
  query::WorkloadOptions workload_options;
  workload_options.num_queries = kQueries;
  workload_options.min_width_frac = 0.15;
  workload_options.max_width_frac = 0.5;
  workload_options.seed = kSeed + 2;
  query::WorkloadGenerator generator(probe_fleet->raw_space,
                                     workload_options);
  const std::vector<query::RangeQuery> queries =
      ValueOrDie(generator.Generate(), "generate workload");

  std::vector<CodecRun> runs;
  runs.push_back(RunCodec("off", false, ml::WireCodecKind::kRawF64, stations,
                          queries));
  for (ml::WireCodecKind codec :
       {ml::WireCodecKind::kRawF64, ml::WireCodecKind::kQuant8,
        ml::WireCodecKind::kQuant4, ml::WireCodecKind::kQuant2,
        ml::WireCodecKind::kTopK}) {
    runs.push_back(RunCodec(ml::WireCodecKindName(codec), true, codec,
                            stations, queries));
  }

  // Contract: wire-on planned bytes == recorded bytes, to the byte.
  for (const CodecRun& run : runs) {
    if (!run.wire_on) continue;
    const size_t recorded = run.down_bytes + run.up_bytes;
    if (recorded != run.planned_bytes) {
      std::fprintf(stderr,
                   "FATAL: codec %s planned %zu bytes but transport recorded "
                   "%zu\n",
                   run.label.c_str(), run.planned_bytes, recorded);
      return 1;
    }
  }

  const CodecRun* raw = nullptr;
  for (const CodecRun& run : runs) {
    if (run.wire_on && run.codec == ml::WireCodecKind::kRawF64) raw = &run;
  }

  std::printf("\n%-6s %12s %14s %14s %12s %12s\n", "codec", "avg_loss",
              "down_bytes", "up_bytes", "down_x", "rel_loss");
  for (const CodecRun& run : runs) {
    const double down_x =
        run.down_bytes > 0
            ? static_cast<double>(raw->down_bytes) / run.down_bytes
            : 0.0;
    const double rel_loss =
        raw->avg_loss > 0 ? (run.avg_loss - raw->avg_loss) / raw->avg_loss
                          : 0.0;
    std::printf("%-6s %12.4f %14zu %14zu %11.2fx %11.4f%%\n",
                run.label.c_str(), run.avg_loss, run.down_bytes, run.up_bytes,
                down_x, 100.0 * rel_loss);

    BenchRecord sweep;
    sweep.name = "sweep/" + run.label;
    sweep.labels["section"] = "sweep";
    sweep.labels["codec"] = run.label;
    sweep.values["queries"] = static_cast<double>(run.queries_run);
    sweep.values["queries_skipped"] =
        static_cast<double>(run.queries_skipped);
    sweep.values["avg_loss"] = run.avg_loss;
    sweep.values["down_bytes"] = static_cast<double>(run.down_bytes);
    sweep.values["up_bytes"] = static_cast<double>(run.up_bytes);
    sweep.values["reduction_vs_raw"] = down_x;
    sweep.values["rel_loss_vs_raw"] = rel_loss;
    json.Add(std::move(sweep));

    BenchRecord pin;
    pin.name = "pinning/" + run.label;
    pin.labels["section"] = "pinning";
    pin.labels["codec"] = run.label;
    pin.labels["exact"] =
        run.wire_on && run.planned_bytes == run.down_bytes + run.up_bytes
            ? "yes"
            : "no";
    pin.values["queries"] = static_cast<double>(run.queries_run);
    pin.values["planned_bytes"] = static_cast<double>(run.planned_bytes);
    pin.values["recorded_bytes"] =
        static_cast<double>(run.down_bytes + run.up_bytes);
    json.Add(std::move(pin));
  }

  std::printf(
      "\npinning: every wire codec's planned bytes matched the transport "
      "exactly;\nthe text format ('off') planned %zu vs recorded %zu "
      "(up-link drift).\n",
      runs[0].planned_bytes, runs[0].down_bytes + runs[0].up_bytes);

  json.WriteOrDie();
  return 0;
}
