// Micro bench X3: the node-local quantization step (Eq. 1) — k-means cost
// as a function of sample count m, cluster count K and dimensionality d.
// This is the node-side preprocessing the paper's selection protocol
// amortizes across queries.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "qens/clustering/kmeans.h"
#include "qens/common/rng.h"
#include "qens/common/stopwatch.h"
#include "qens/common/string_util.h"

using namespace qens;

namespace {

Matrix RandomData(size_t rows, size_t dims, uint64_t seed) {
  Rng rng(seed);
  Matrix data(rows, dims);
  for (double& v : data.data()) v = rng.Uniform(-50, 50);
  return data;
}

void BM_KMeans_Samples(benchmark::State& state) {
  const size_t m = static_cast<size_t>(state.range(0));
  const Matrix data = RandomData(m, 4, 1);
  clustering::KMeansOptions options;
  options.k = 5;  // Paper's K.
  options.max_iterations = 25;
  const clustering::KMeans kmeans(options);
  for (auto _ : state) {
    auto result = kmeans.Fit(data);
    benchmark::DoNotOptimize(result);
  }
  state.SetComplexityN(static_cast<int64_t>(m));
}
BENCHMARK(BM_KMeans_Samples)
    ->RangeMultiplier(4)
    ->Range(256, 16384)
    ->Complexity()
    ->Unit(benchmark::kMillisecond);

void BM_KMeans_Clusters(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  const Matrix data = RandomData(4096, 4, 2);
  clustering::KMeansOptions options;
  options.k = k;
  options.max_iterations = 25;
  const clustering::KMeans kmeans(options);
  for (auto _ : state) {
    auto result = kmeans.Fit(data);
    benchmark::DoNotOptimize(result);
  }
  state.SetComplexityN(static_cast<int64_t>(k));
}
BENCHMARK(BM_KMeans_Clusters)
    ->RangeMultiplier(2)
    ->Range(2, 32)
    ->Complexity()
    ->Unit(benchmark::kMillisecond);

void BM_KMeans_Dims(benchmark::State& state) {
  const size_t dims = static_cast<size_t>(state.range(0));
  const Matrix data = RandomData(4096, dims, 3);
  clustering::KMeansOptions options;
  options.k = 5;
  options.max_iterations = 25;
  const clustering::KMeans kmeans(options);
  for (auto _ : state) {
    auto result = kmeans.Fit(data);
    benchmark::DoNotOptimize(result);
  }
  state.SetComplexityN(static_cast<int64_t>(dims));
}
BENCHMARK(BM_KMeans_Dims)
    ->RangeMultiplier(2)
    ->Range(1, 16)
    ->Complexity()
    ->Unit(benchmark::kMillisecond);

/// Summaries (bounding boxes + centroids) on top of a fit.
void BM_KMeans_FitSummaries(benchmark::State& state) {
  const Matrix data = RandomData(4096, 4, 4);
  clustering::KMeansOptions options;
  options.k = 5;
  options.max_iterations = 25;
  const clustering::KMeans kmeans(options);
  for (auto _ : state) {
    auto summaries = kmeans.FitSummaries(data);
    benchmark::DoNotOptimize(summaries);
  }
}
BENCHMARK(BM_KMeans_FitSummaries)->Unit(benchmark::kMillisecond);

/// Direct Fit timings mirrored into the JSON output (the google-benchmark
/// sweeps above report the same curves to stdout).
void EmitFitRecords(bench::BenchJson* bjson) {
  if (!bjson->enabled()) return;
  for (size_t m : {256ul, 4096ul}) {
    const Matrix data = RandomData(m, 4, 1);
    clustering::KMeansOptions options;
    options.k = 5;
    options.max_iterations = 25;
    const clustering::KMeans kmeans(options);
    Stopwatch watch;
    const clustering::KMeansResult result =
        bench::ValueOrDie(kmeans.Fit(data), "kmeans fit");
    const double seconds = watch.ElapsedSeconds();
    bench::BenchRecord record;
    record.name = StrFormat("kmeans_fit_m%zu", m);
    record.values["samples"] = static_cast<double>(m);
    record.values["dims"] = 4.0;
    record.values["k"] = 5.0;
    record.values["seconds"] = seconds;
    record.values["iterations"] = static_cast<double>(result.iterations);
    record.values["inertia"] = result.inertia;
    record.values["empty_cluster_repairs"] =
        static_cast<double>(result.empty_cluster_repairs);
    bjson->Add(std::move(record));
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchJson bjson("bench_x3_kmeans", &argc, argv);
  EmitFitRecords(&bjson);
  bjson.WriteOrDie();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
