// Micro bench X3: the node-local quantization step (Eq. 1) — k-means cost
// as a function of sample count m, cluster count K and dimensionality d.
// This is the node-side preprocessing the paper's selection protocol
// amortizes across queries.

#include <benchmark/benchmark.h>

#include "qens/clustering/kmeans.h"
#include "qens/common/rng.h"

using namespace qens;

namespace {

Matrix RandomData(size_t rows, size_t dims, uint64_t seed) {
  Rng rng(seed);
  Matrix data(rows, dims);
  for (double& v : data.data()) v = rng.Uniform(-50, 50);
  return data;
}

void BM_KMeans_Samples(benchmark::State& state) {
  const size_t m = static_cast<size_t>(state.range(0));
  const Matrix data = RandomData(m, 4, 1);
  clustering::KMeansOptions options;
  options.k = 5;  // Paper's K.
  options.max_iterations = 25;
  const clustering::KMeans kmeans(options);
  for (auto _ : state) {
    auto result = kmeans.Fit(data);
    benchmark::DoNotOptimize(result);
  }
  state.SetComplexityN(static_cast<int64_t>(m));
}
BENCHMARK(BM_KMeans_Samples)
    ->RangeMultiplier(4)
    ->Range(256, 16384)
    ->Complexity()
    ->Unit(benchmark::kMillisecond);

void BM_KMeans_Clusters(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  const Matrix data = RandomData(4096, 4, 2);
  clustering::KMeansOptions options;
  options.k = k;
  options.max_iterations = 25;
  const clustering::KMeans kmeans(options);
  for (auto _ : state) {
    auto result = kmeans.Fit(data);
    benchmark::DoNotOptimize(result);
  }
  state.SetComplexityN(static_cast<int64_t>(k));
}
BENCHMARK(BM_KMeans_Clusters)
    ->RangeMultiplier(2)
    ->Range(2, 32)
    ->Complexity()
    ->Unit(benchmark::kMillisecond);

void BM_KMeans_Dims(benchmark::State& state) {
  const size_t dims = static_cast<size_t>(state.range(0));
  const Matrix data = RandomData(4096, dims, 3);
  clustering::KMeansOptions options;
  options.k = 5;
  options.max_iterations = 25;
  const clustering::KMeans kmeans(options);
  for (auto _ : state) {
    auto result = kmeans.Fit(data);
    benchmark::DoNotOptimize(result);
  }
  state.SetComplexityN(static_cast<int64_t>(dims));
}
BENCHMARK(BM_KMeans_Dims)
    ->RangeMultiplier(2)
    ->Range(1, 16)
    ->Complexity()
    ->Unit(benchmark::kMillisecond);

/// Summaries (bounding boxes + centroids) on top of a fit.
void BM_KMeans_FitSummaries(benchmark::State& state) {
  const Matrix data = RandomData(4096, 4, 4);
  clustering::KMeansOptions options;
  options.k = 5;
  options.max_iterations = 25;
  const clustering::KMeans kmeans(options);
  for (auto _ : state) {
    auto summaries = kmeans.FitSummaries(data);
    benchmark::DoNotOptimize(summaries);
  }
}
BENCHMARK(BM_KMeans_FitSummaries)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
