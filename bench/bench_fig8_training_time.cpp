// Reproduces Figure 8: required model-building time with vs without the
// query-driven mechanism, plotted per query for a stream of 20 sequential
// queries (the paper plots 20 for legibility).
//
// "With" = query-driven selection + supporting-cluster data selectivity.
// "Without" = training on the whole datasets of all participants.
// Expected shape: the query-driven line sits far below the full-data line
// on every query.

#include <cstdio>

#include "bench_util.h"

using namespace qens;

int main(int argc, char** argv) {
  bench::BenchJson bjson("bench_fig8_training_time", &argc, argv);
  bench::PrintHeader(
      "Figure 8 — model building time per query, w/ vs w/o the query-driven "
      "mechanism (20 sequential queries)");

  fl::ExperimentConfig config =
      bench::PaperConfig(data::Heterogeneity::kHeterogeneous);
  config.workload.num_queries = 20;
  fl::ExperimentRunner runner = bench::ValueOrDie(
      fl::ExperimentRunner::Create(config), "build experiment");

  const fl::Mechanism ours{"QueryDriven", selection::PolicyKind::kQueryDriven,
                           /*data_selectivity=*/true,
                           fl::AggregationKind::kWeightedAveraging};
  const fl::Mechanism full{"FullData", selection::PolicyKind::kAllNodes,
                           /*data_selectivity=*/false,
                           fl::AggregationKind::kModelAveraging};

  auto ours_records =
      bench::ValueOrDie(runner.RunPerQuery(ours), "run query-driven");
  auto full_records =
      bench::ValueOrDie(runner.RunPerQuery(full), "run full-data");

  std::printf("\n%-7s %22s %22s %12s\n", "query",
              "query-driven time (s)", "full-data time (s)", "speedup");
  double ours_total = 0, full_total = 0;
  size_t wins = 0, compared = 0;
  for (size_t i = 0; i < ours_records.size(); ++i) {
    if (ours_records[i].skipped || full_records[i].skipped) {
      std::printf("%-7zu %22s %22s %12s\n", i, "skipped", "skipped", "-");
      continue;
    }
    const double a = ours_records[i].sim_time;
    const double b = full_records[i].sim_time;
    std::printf("%-7zu %22.4f %22.4f %11.1fx\n", i, a, b, b / a);
    ours_total += a;
    full_total += b;
    ++compared;
    if (a < b) ++wins;
  }
  std::printf("\nTotals over %zu comparable queries: query-driven %.3fs vs "
              "full-data %.3fs (%.1fx faster overall)\n",
              compared, ours_total, full_total, full_total / ours_total);
  std::printf("shape check: query-driven faster on %zu/%zu queries (paper: "
              "all)\n",
              wins, compared);
  std::printf("(times from the deterministic cost model: samples x epochs / "
              "capacity + transfer; wall-clock shape matches)\n");

  bench::BenchRecord record;
  record.name = "training_time";
  record.values["queries_compared"] = static_cast<double>(compared);
  record.values["query_driven_sim_time"] = ours_total;
  record.values["full_data_sim_time"] = full_total;
  record.values["speedup"] = ours_total > 0 ? full_total / ours_total : 0.0;
  record.values["query_driven_wins"] = static_cast<double>(wins);
  bjson.Add(std::move(record));
  bjson.WriteOrDie();
  return 0;
}
