// Extension bench X4: the features beyond the paper's protocol.
//   (a) baseline panorama — the paper's four mechanisms plus the
//       data-centric [8] and fair-stochastic [12] related-work baselines;
//   (b) multi-round federated training — rounds sweep with FedAvg merging
//       between rounds (the paper's protocol is rounds = 1);
//   (c) volatile clients — loss and completion rate under node dropout.

#include <cstdio>

#include "bench_util.h"
#include "qens/common/string_util.h"

using namespace qens;

namespace {

fl::ExperimentConfig BaseConfig() {
  fl::ExperimentConfig config =
      bench::PaperConfig(data::Heterogeneity::kHeterogeneous);
  config.workload.num_queries = 80;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchJson bjson("bench_x4_extensions", &argc, argv);
  bench::PrintHeader("X4 — extensions beyond the paper's protocol");

  // (a) Baseline panorama.
  std::printf("\n(a) six selection mechanisms, 80 queries\n");
  {
    fl::ExperimentRunner runner = bench::ValueOrDie(
        fl::ExperimentRunner::Create(BaseConfig()), "build");
    std::vector<fl::Mechanism> mechanisms = fl::Figure7Mechanisms();
    mechanisms.push_back({"DataCentric", selection::PolicyKind::kDataCentric,
                          false, fl::AggregationKind::kModelAveraging});
    mechanisms.push_back({"Stochastic", selection::PolicyKind::kStochastic,
                          false, fl::AggregationKind::kModelAveraging});
    std::vector<fl::MechanismStats> rows;
    for (const auto& m : mechanisms) {
      rows.push_back(
          bench::ValueOrDie(runner.RunMechanism(m), m.label.c_str()));
      bench::BenchRecord record = bench::MechanismRecord(rows.back());
      record.labels["section"] = "panorama";
      bjson.Add(std::move(record));
    }
    std::printf("%s", fl::FormatMechanismTable(rows).c_str());
    std::printf("(query-agnostic baselines cannot adapt to the query region; "
                "ours should stay lowest)\n");
  }

  // (b) Multi-round sweep.
  std::printf("\n(b) federated rounds sweep (query-driven, 30 queries)\n");
  std::printf("%-8s %12s %14s %14s\n", "rounds", "avg loss", "sim time (s)",
              "queries run");
  for (size_t rounds : {1ul, 2ul, 4ul}) {
    fl::ExperimentConfig config = BaseConfig();
    config.workload.num_queries = 30;
    fl::ExperimentRunner runner =
        bench::ValueOrDie(fl::ExperimentRunner::Create(config), "build");
    stats::RunningStats loss, time;
    size_t run = 0;
    for (const auto& q : runner.queries()) {
      auto outcome = runner.federation().RunQueryMultiRound(
          q, selection::PolicyKind::kQueryDriven, true, rounds);
      bench::CheckOk(outcome.status(), "multi-round query");
      if (outcome->skipped) continue;
      ++run;
      loss.Add(outcome->loss_weighted);
      time.Add(outcome->sim_time_total + outcome->sim_time_comm);
    }
    std::printf("%-8zu %12.2f %14.4f %14zu\n", rounds, loss.mean(),
                time.mean(), run);

    bench::BenchRecord record;
    record.name = StrFormat("rounds_%zu", rounds);
    record.labels["section"] = "multi_round";
    record.values["rounds"] = static_cast<double>(rounds);
    record.values["avg_loss"] = loss.mean();
    record.values["avg_sim_time"] = time.mean();
    record.values["queries_run"] = static_cast<double>(run);
    bjson.Add(std::move(record));
  }
  std::printf("(time grows ~linearly with rounds; loss saturates quickly on "
              "this convex task)\n");

  // (c) Dropout resilience.
  std::printf("\n(c) volatile clients: dropout sweep (query-driven, 40 "
              "queries)\n");
  std::printf("%-10s %12s %14s %12s\n", "dropout", "avg loss",
              "completed", "dropped/query");
  for (double rate : {0.0, 0.2, 0.5}) {
    fl::ExperimentConfig config = BaseConfig();
    config.workload.num_queries = 40;
    config.federation.dropout_rate = rate;
    fl::ExperimentRunner runner =
        bench::ValueOrDie(fl::ExperimentRunner::Create(config), "build");
    stats::RunningStats loss, dropped;
    size_t run = 0, skipped = 0;
    for (const auto& q : runner.queries()) {
      auto outcome = runner.federation().RunQueryDriven(q);
      bench::CheckOk(outcome.status(), "dropout query");
      dropped.Add(static_cast<double>(outcome->dropped_nodes.size()));
      if (outcome->skipped) {
        ++skipped;
        continue;
      }
      ++run;
      loss.Add(outcome->loss_weighted);
    }
    std::printf("%-10.1f %12.2f %10zu/%-3zu %12.2f\n", rate, loss.mean(),
                run, run + skipped, dropped.mean());

    bench::BenchRecord record;
    record.name = StrFormat("dropout_%.1f", rate);
    record.labels["section"] = "volatile_clients";
    record.values["dropout_rate"] = rate;
    record.values["avg_loss"] = loss.mean();
    record.values["queries_run"] = static_cast<double>(run);
    record.values["queries_skipped"] = static_cast<double>(skipped);
    record.values["avg_dropped_per_query"] = dropped.mean();
    bjson.Add(std::move(record));
  }
  std::printf("(losses degrade gracefully; queries only fail when every "
              "selected node is offline)\n");
  bjson.WriteOrDie();
  return 0;
}
