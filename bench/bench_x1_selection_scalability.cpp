// Extension bench X1: the Section III-C complexity claims.
//   - Communication: each node ships O(1) metadata (cluster boundaries),
//     independent of its data size — measured in bytes.
//   - Leader-side ranking: O(d) per cluster, O(N * K * d) per query,
//     independent of the nodes' data sizes — measured with
//     google-benchmark sweeps over N, K and d.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "qens/common/rng.h"
#include "qens/common/stopwatch.h"
#include "qens/common/string_util.h"
#include "qens/selection/ranking.h"

using namespace qens;

namespace {

selection::NodeProfile RandomProfile(Rng* rng, size_t node_id, size_t k,
                                     size_t dims, size_t samples) {
  selection::NodeProfile profile;
  profile.node_id = node_id;
  profile.total_samples = samples;
  for (size_t c = 0; c < k; ++c) {
    clustering::ClusterSummary cluster;
    cluster.size = samples / k + 1;
    std::vector<query::Interval> intervals(dims);
    cluster.centroid.resize(dims);
    for (size_t d = 0; d < dims; ++d) {
      const double lo = rng->Uniform(-100, 100);
      intervals[d] = query::Interval(lo, lo + rng->Uniform(1, 40));
      cluster.centroid[d] = 0.5 * (intervals[d].lo + intervals[d].hi);
    }
    cluster.bounds = query::HyperRectangle(std::move(intervals));
    profile.clusters.push_back(std::move(cluster));
  }
  return profile;
}

query::RangeQuery RandomQuery(Rng* rng, size_t dims) {
  std::vector<query::Interval> intervals(dims);
  for (size_t d = 0; d < dims; ++d) {
    const double lo = rng->Uniform(-100, 100);
    intervals[d] = query::Interval(lo, lo + rng->Uniform(1, 60));
  }
  query::RangeQuery q;
  q.region = query::HyperRectangle(std::move(intervals));
  return q;
}

/// Ranking cost vs number of nodes N (K = 5, d = 4 fixed).
void BM_RankNodes_N(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(1);
  std::vector<selection::NodeProfile> profiles;
  for (size_t i = 0; i < n; ++i) {
    profiles.push_back(RandomProfile(&rng, i, 5, 4, 10'000));
  }
  const query::RangeQuery q = RandomQuery(&rng, 4);
  selection::RankingOptions options;
  for (auto _ : state) {
    auto ranks = selection::RankNodes(profiles, q, options);
    benchmark::DoNotOptimize(ranks);
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_RankNodes_N)->RangeMultiplier(4)->Range(16, 16384)->Complexity();

/// Ranking cost vs dimensionality d (N = 100, K = 5 fixed).
void BM_RankNodes_D(benchmark::State& state) {
  const size_t dims = static_cast<size_t>(state.range(0));
  Rng rng(2);
  std::vector<selection::NodeProfile> profiles;
  for (size_t i = 0; i < 100; ++i) {
    profiles.push_back(RandomProfile(&rng, i, 5, dims, 10'000));
  }
  const query::RangeQuery q = RandomQuery(&rng, dims);
  selection::RankingOptions options;
  for (auto _ : state) {
    auto ranks = selection::RankNodes(profiles, q, options);
    benchmark::DoNotOptimize(ranks);
  }
  state.SetComplexityN(static_cast<int64_t>(dims));
}
BENCHMARK(BM_RankNodes_D)->RangeMultiplier(2)->Range(1, 32)->Complexity();

/// Ranking cost vs clusters per node K (N = 100, d = 4 fixed).
void BM_RankNodes_K(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  Rng rng(3);
  std::vector<selection::NodeProfile> profiles;
  for (size_t i = 0; i < 100; ++i) {
    profiles.push_back(RandomProfile(&rng, i, k, 4, 10'000));
  }
  const query::RangeQuery q = RandomQuery(&rng, 4);
  selection::RankingOptions options;
  for (auto _ : state) {
    auto ranks = selection::RankNodes(profiles, q, options);
    benchmark::DoNotOptimize(ranks);
  }
  state.SetComplexityN(static_cast<int64_t>(k));
}
BENCHMARK(BM_RankNodes_K)->RangeMultiplier(2)->Range(2, 64)->Complexity();

/// Ranking cost MUST NOT depend on node data volume (profiles are O(1)).
void BM_RankNodes_DataVolume(benchmark::State& state) {
  const size_t samples = static_cast<size_t>(state.range(0));
  Rng rng(4);
  std::vector<selection::NodeProfile> profiles;
  for (size_t i = 0; i < 100; ++i) {
    profiles.push_back(RandomProfile(&rng, i, 5, 4, samples));
  }
  const query::RangeQuery q = RandomQuery(&rng, 4);
  selection::RankingOptions options;
  for (auto _ : state) {
    auto ranks = selection::RankNodes(profiles, q, options);
    benchmark::DoNotOptimize(ranks);
  }
}
BENCHMARK(BM_RankNodes_DataVolume)
    ->RangeMultiplier(100)
    ->Range(1000, 10'000'000);

void PrintCommunicationTable(bench::BenchJson* bjson) {
  std::printf(
      "\n=== X1 — O(1) communication: profile bytes vs node data size "
      "(K = 5, d = 4) ===\n");
  std::printf("%-16s %16s\n", "node samples", "profile bytes");
  Rng rng(9);
  for (size_t samples : {1000ul, 100'000ul, 10'000'000ul}) {
    const selection::NodeProfile p = RandomProfile(&rng, 0, 5, 4, samples);
    std::printf("%-16zu %16zu\n", samples, p.WireBytes());

    bench::BenchRecord record;
    record.name = StrFormat("profile_bytes_m%zu", samples);
    record.values["node_samples"] = static_cast<double>(samples);
    record.values["profile_bytes"] = static_cast<double>(p.WireBytes());
    bjson->Add(std::move(record));
  }
  std::printf("(constant: the profile never grows with the data)\n\n");
}

/// Direct O(N) ranking timings mirrored into the JSON output (the
/// google-benchmark sweeps below report the same curves to stdout).
void EmitRankingRecords(bench::BenchJson* bjson) {
  if (!bjson->enabled()) return;
  selection::RankingOptions options;
  for (size_t n : {16ul, 256ul, 4096ul}) {
    Rng rng(1);
    std::vector<selection::NodeProfile> profiles;
    for (size_t i = 0; i < n; ++i) {
      profiles.push_back(RandomProfile(&rng, i, 5, 4, 10'000));
    }
    const query::RangeQuery q = RandomQuery(&rng, 4);
    size_t supporting_nodes = 0;
    constexpr size_t kIters = 50;
    Stopwatch watch;
    for (size_t it = 0; it < kIters; ++it) {
      auto ranks = selection::RankNodes(profiles, q, options);
      benchmark::DoNotOptimize(ranks);
      if (it == 0 && ranks.ok()) {
        for (const auto& r : ranks.value()) {
          if (r.supporting_clusters > 0) ++supporting_nodes;
        }
      }
    }
    bench::BenchRecord record;
    record.name = StrFormat("rank_nodes_n%zu", n);
    record.values["nodes"] = static_cast<double>(n);
    record.values["supporting_nodes"] = static_cast<double>(supporting_nodes);
    record.values["iterations"] = static_cast<double>(kIters);
    record.values["seconds_per_query"] =
        watch.ElapsedSeconds() / static_cast<double>(kIters);
    bjson->Add(std::move(record));
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchJson bjson("bench_x1_selection_scalability", &argc, argv);
  PrintCommunicationTable(&bjson);
  EmitRankingRecords(&bjson);
  bjson.WriteOrDie();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
