#ifndef QENS_BENCH_BENCH_UTIL_H_
#define QENS_BENCH_BENCH_UTIL_H_

/// \file bench_util.h
/// Shared configuration for the experiment benches. One place defines the
/// "paper-scale" environment (Section V-A: N = 10 nodes, K = 5 clusters,
/// 200 queries) so every table/figure bench runs the same deployment.

#include <cstdio>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "qens/common/stopwatch.h"
#include "qens/data/air_quality_generator.h"
#include "qens/data/normalizer.h"
#include "qens/fl/experiment.h"
#include "qens/ml/loss.h"
#include "qens/ml/model_factory.h"
#include "qens/obs/json.h"
#include "qens/tensor/stats.h"

namespace qens::bench {

/// The paper's environment: 10 stations, K = 5, 200 queries, LR model.
/// `heterogeneity` selects the Table I vs Table II/Fig. 7 regime.
inline fl::ExperimentConfig PaperConfig(data::Heterogeneity heterogeneity,
                                        uint64_t seed = 2023) {
  fl::ExperimentConfig config;
  config.data.num_stations = 10;          // Section V-A: N = 10.
  config.data.samples_per_station = 1500;
  config.data.heterogeneity = heterogeneity;
  config.data.seed = seed;
  config.data.single_feature = true;      // "one important feature and labels".

  config.federation.environment.kmeans.k = 5;  // Section V-A: K = 5.
  config.federation.ranking.epsilon = 0.15;
  config.federation.query_driven.top_l = 3;
  config.federation.hyper =
      ml::PaperHyperParams(ml::ModelKind::kLinearRegression);
  config.federation.hyper.epochs = 40;  // Scaled from 100 for bench runtime;
                                        // LR converges well before 40 epochs.
  config.federation.epochs_per_cluster = 15;
  config.federation.random_l = 3;
  config.federation.game_theory.loss_quantile = 0.5;
  config.federation.test_fraction = 0.2;
  config.federation.seed = seed + 1;

  config.workload.num_queries = 200;     // Section V-A: 200 queries.
  config.workload.min_width_frac = 0.15;
  config.workload.max_width_frac = 0.5;
  config.workload.seed = seed + 2;
  return config;
}

/// Abort-with-message helper for bench mains.
inline void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
inline T ValueOrDie(Result<T> result, const char* what) {
  CheckOk(result.status(), what);
  return std::move(result).value();
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==============================================================\n");
}

/// Shared by the Table I and Table II benches: the Section II pre-test.
/// The leader trains an LR model on its own data and tests it against the
/// other participants; "all-node" probes everyone and engages the best
/// match, "random" engages a uniformly random participant (expected loss =
/// the per-node mean). Averaged over every choice of leader; losses are in
/// raw PM2.5 units (training happens at normalized scale).
struct PreTestResult {
  double all_node_loss = 0.0;  ///< Best-matching participant (probed).
  double random_loss = 0.0;    ///< Expected loss of a random participant.
};

inline PreTestResult RunPreTest(const data::AirQualityOptions& options,
                                uint64_t seed) {
  data::AirQualityGenerator generator(options);
  std::vector<data::Dataset> stations =
      ValueOrDie(generator.GenerateAll(), "generate stations");

  // Global min-max scaling (in the protocol, from the shipped bounds).
  data::Dataset pooled = stations[0];
  for (size_t i = 1; i < stations.size(); ++i) {
    pooled = ValueOrDie(pooled.Concat(stations[i]), "pool");
  }
  data::Normalizer fnorm = ValueOrDie(
      data::Normalizer::Fit(pooled.features(), data::ScalingKind::kMinMax),
      "feature norm");
  data::Normalizer tnorm = ValueOrDie(
      data::Normalizer::Fit(pooled.targets(), data::ScalingKind::kMinMax),
      "target norm");
  const double tscale = tnorm.scale()[0];
  const double denorm = tscale > 0 ? 1.0 / (tscale * tscale) : 1.0;

  std::vector<Matrix> xs, ys;
  for (const auto& s : stations) {
    xs.push_back(ValueOrDie(fnorm.Transform(s.features()), "x"));
    ys.push_back(ValueOrDie(tnorm.Transform(s.targets()), "y"));
  }

  stats::RunningStats best_losses, random_losses;
  for (size_t leader = 0; leader < stations.size(); ++leader) {
    Rng rng(seed + leader);
    ml::SequentialModel probe = ValueOrDie(
        ml::BuildModel(ml::ModelKind::kLinearRegression, xs[leader].cols(),
                       &rng),
        "model");
    auto trainer = ValueOrDie(
        ml::BuildTrainer(ml::ModelKind::kLinearRegression, seed + leader),
        "trainer");
    trainer->mutable_options().epochs = 40;
    CheckOk(trainer->Fit(&probe, xs[leader], ys[leader]).status(), "fit");

    double best = 1e300;
    stats::RunningStats per_node;
    for (size_t i = 0; i < stations.size(); ++i) {
      if (i == leader) continue;
      Matrix pred = ValueOrDie(probe.Predict(xs[i]), "predict");
      const double loss =
          ValueOrDie(ml::ComputeLoss(ml::LossKind::kMse, pred, ys[i]),
                     "loss") *
          denorm;
      best = std::min(best, loss);
      per_node.Add(loss);
    }
    best_losses.Add(best);
    random_losses.Add(per_node.mean());
  }
  return PreTestResult{best_losses.mean(), random_losses.mean()};
}

/// One machine-readable result row of a bench run: a name plus flat maps of
/// string labels and numeric values (wall/sim time, losses, selection
/// counts — whatever the bench measures).
struct BenchRecord {
  std::string name;
  std::map<std::string, std::string> labels;
  std::map<std::string, double> values;
};

/// Strip `--json <path>` / `--json=<path>` out of argv (so downstream flag
/// parsers, e.g. google-benchmark, never see it) and return the path; empty
/// when the flag is absent.
inline std::string ExtractJsonPathArg(int* argc, char** argv) {
  std::string path;
  int w = 1;
  for (int r = 1; r < *argc; ++r) {
    const std::string arg = argv[r];
    if (arg == "--json" && r + 1 < *argc) {
      path = argv[++r];
      continue;
    }
    if (arg.rfind("--json=", 0) == 0) {
      path = arg.substr(7);
      continue;
    }
    argv[w++] = argv[r];
  }
  *argc = w;
  return path;
}

/// Collects BenchRecords and, when the bench was invoked with
/// `--json <path>`, writes them as one JSON document on Write():
///   {"bench": ..., "schema_version": 1, "wall_seconds": ...,
///    "records": [{"name", "labels", "values"}, ...]}
/// Schema documented in docs/OBSERVABILITY.md and validated by
/// tools/check_bench_json.py. With no --json flag every call is a no-op, so
/// stdout output is untouched either way.
class BenchJson {
 public:
  BenchJson(std::string bench_name, int* argc, char** argv)
      : bench_(std::move(bench_name)),
        path_(ExtractJsonPathArg(argc, argv)) {}

  bool enabled() const { return !path_.empty(); }

  void Add(BenchRecord record) {
    if (enabled()) records_.push_back(std::move(record));
  }

  Status Write() const {
    if (!enabled()) return Status::OK();
    obs::JsonValue root = obs::JsonValue::Object();
    root.Set("bench", obs::JsonValue::String(bench_));
    root.Set("schema_version", obs::JsonValue::Number(1));
    root.Set("wall_seconds", obs::JsonValue::Number(watch_.ElapsedSeconds()));
    obs::JsonValue records = obs::JsonValue::Array();
    for (const BenchRecord& r : records_) {
      obs::JsonValue rec = obs::JsonValue::Object();
      rec.Set("name", obs::JsonValue::String(r.name));
      obs::JsonValue labels = obs::JsonValue::Object();
      for (const auto& [key, value] : r.labels) {
        labels.Set(key, obs::JsonValue::String(value));
      }
      rec.Set("labels", std::move(labels));
      obs::JsonValue values = obs::JsonValue::Object();
      for (const auto& [key, value] : r.values) {
        values.Set(key, obs::JsonValue::Number(value));
      }
      rec.Set("values", std::move(values));
      records.Append(std::move(rec));
    }
    root.Set("records", std::move(records));
    std::FILE* out = std::fopen(path_.c_str(), "w");
    if (out == nullptr) {
      return Status::IOError("cannot open for write: " + path_);
    }
    const std::string text = root.Dump() + "\n";
    const size_t written = std::fwrite(text.data(), 1, text.size(), out);
    std::fclose(out);
    if (written != text.size()) {
      return Status::IOError("short write: " + path_);
    }
    return Status::OK();
  }

  void WriteOrDie() const { CheckOk(Write(), "write bench json"); }

 private:
  std::string bench_;
  std::string path_;
  Stopwatch watch_;
  std::vector<BenchRecord> records_;
};

/// The MechanismStats fields every experiment bench reports, flattened into
/// a BenchRecord so the per-bench wiring stays a one-liner.
inline BenchRecord MechanismRecord(const fl::MechanismStats& stats) {
  BenchRecord record;
  record.name = stats.label;
  record.values["queries_run"] = static_cast<double>(stats.queries_run);
  record.values["queries_skipped"] =
      static_cast<double>(stats.queries_skipped);
  record.values["avg_loss"] = stats.loss.mean();
  record.values["avg_sim_time"] = stats.sim_time.mean();
  record.values["avg_wall_seconds"] = stats.wall_time.mean();
  record.values["avg_data_fraction"] = stats.data_fraction.mean();
  return record;
}

}  // namespace qens::bench

#endif  // QENS_BENCH_BENCH_UTIL_H_
