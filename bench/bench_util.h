#ifndef QENS_BENCH_BENCH_UTIL_H_
#define QENS_BENCH_BENCH_UTIL_H_

/// \file bench_util.h
/// Shared configuration for the experiment benches. One place defines the
/// "paper-scale" environment (Section V-A: N = 10 nodes, K = 5 clusters,
/// 200 queries) so every table/figure bench runs the same deployment.

#include <cstdio>
#include <string>

#include "qens/data/air_quality_generator.h"
#include "qens/data/normalizer.h"
#include "qens/fl/experiment.h"
#include "qens/ml/loss.h"
#include "qens/ml/model_factory.h"
#include "qens/tensor/stats.h"

namespace qens::bench {

/// The paper's environment: 10 stations, K = 5, 200 queries, LR model.
/// `heterogeneity` selects the Table I vs Table II/Fig. 7 regime.
inline fl::ExperimentConfig PaperConfig(data::Heterogeneity heterogeneity,
                                        uint64_t seed = 2023) {
  fl::ExperimentConfig config;
  config.data.num_stations = 10;          // Section V-A: N = 10.
  config.data.samples_per_station = 1500;
  config.data.heterogeneity = heterogeneity;
  config.data.seed = seed;
  config.data.single_feature = true;      // "one important feature and labels".

  config.federation.environment.kmeans.k = 5;  // Section V-A: K = 5.
  config.federation.ranking.epsilon = 0.15;
  config.federation.query_driven.top_l = 3;
  config.federation.hyper =
      ml::PaperHyperParams(ml::ModelKind::kLinearRegression);
  config.federation.hyper.epochs = 40;  // Scaled from 100 for bench runtime;
                                        // LR converges well before 40 epochs.
  config.federation.epochs_per_cluster = 15;
  config.federation.random_l = 3;
  config.federation.game_theory.loss_quantile = 0.5;
  config.federation.test_fraction = 0.2;
  config.federation.seed = seed + 1;

  config.workload.num_queries = 200;     // Section V-A: 200 queries.
  config.workload.min_width_frac = 0.15;
  config.workload.max_width_frac = 0.5;
  config.workload.seed = seed + 2;
  return config;
}

/// Abort-with-message helper for bench mains.
inline void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
inline T ValueOrDie(Result<T> result, const char* what) {
  CheckOk(result.status(), what);
  return std::move(result).value();
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==============================================================\n");
}

/// Shared by the Table I and Table II benches: the Section II pre-test.
/// The leader trains an LR model on its own data and tests it against the
/// other participants; "all-node" probes everyone and engages the best
/// match, "random" engages a uniformly random participant (expected loss =
/// the per-node mean). Averaged over every choice of leader; losses are in
/// raw PM2.5 units (training happens at normalized scale).
struct PreTestResult {
  double all_node_loss = 0.0;  ///< Best-matching participant (probed).
  double random_loss = 0.0;    ///< Expected loss of a random participant.
};

inline PreTestResult RunPreTest(const data::AirQualityOptions& options,
                                uint64_t seed) {
  data::AirQualityGenerator generator(options);
  std::vector<data::Dataset> stations =
      ValueOrDie(generator.GenerateAll(), "generate stations");

  // Global min-max scaling (in the protocol, from the shipped bounds).
  data::Dataset pooled = stations[0];
  for (size_t i = 1; i < stations.size(); ++i) {
    pooled = ValueOrDie(pooled.Concat(stations[i]), "pool");
  }
  data::Normalizer fnorm = ValueOrDie(
      data::Normalizer::Fit(pooled.features(), data::ScalingKind::kMinMax),
      "feature norm");
  data::Normalizer tnorm = ValueOrDie(
      data::Normalizer::Fit(pooled.targets(), data::ScalingKind::kMinMax),
      "target norm");
  const double tscale = tnorm.scale()[0];
  const double denorm = tscale > 0 ? 1.0 / (tscale * tscale) : 1.0;

  std::vector<Matrix> xs, ys;
  for (const auto& s : stations) {
    xs.push_back(ValueOrDie(fnorm.Transform(s.features()), "x"));
    ys.push_back(ValueOrDie(tnorm.Transform(s.targets()), "y"));
  }

  stats::RunningStats best_losses, random_losses;
  for (size_t leader = 0; leader < stations.size(); ++leader) {
    Rng rng(seed + leader);
    ml::SequentialModel probe = ValueOrDie(
        ml::BuildModel(ml::ModelKind::kLinearRegression, xs[leader].cols(),
                       &rng),
        "model");
    auto trainer = ValueOrDie(
        ml::BuildTrainer(ml::ModelKind::kLinearRegression, seed + leader),
        "trainer");
    trainer->mutable_options().epochs = 40;
    CheckOk(trainer->Fit(&probe, xs[leader], ys[leader]).status(), "fit");

    double best = 1e300;
    stats::RunningStats per_node;
    for (size_t i = 0; i < stations.size(); ++i) {
      if (i == leader) continue;
      Matrix pred = ValueOrDie(probe.Predict(xs[i]), "predict");
      const double loss =
          ValueOrDie(ml::ComputeLoss(ml::LossKind::kMse, pred, ys[i]),
                     "loss") *
          denorm;
      best = std::min(best, loss);
      per_node.Add(loss);
    }
    best_losses.Add(best);
    random_losses.Add(per_node.mean());
  }
  return PreTestResult{best_losses.mean(), random_losses.mean()};
}

}  // namespace qens::bench

#endif  // QENS_BENCH_BENCH_UTIL_H_
