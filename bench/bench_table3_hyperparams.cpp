// Reproduces Table III: the model hyper-parameters, printed from the
// factory and asserted, plus a timing of one Table-III-exact training run
// per model (LR and NN, 100 epochs, validation split 0.2).

#include <cstdio>

#include "bench_util.h"
#include "qens/common/stopwatch.h"
#include "qens/common/string_util.h"
#include "qens/data/air_quality_generator.h"

using namespace qens;

namespace {

void PrintRow(const char* field, const std::string& lr,
              const std::string& nn) {
  std::printf("| %-16s | %-6s | %-6s |\n", field, lr.c_str(), nn.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchJson bjson("bench_table3_hyperparams", &argc, argv);
  bench::PrintHeader("Table III — model hyper-parameters (from the factory)");

  const ml::HyperParams lr = ml::PaperHyperParams(ml::ModelKind::kLinearRegression);
  const ml::HyperParams nn = ml::PaperHyperParams(ml::ModelKind::kNeuralNetwork);

  std::printf("\n| %-16s | %-6s | %-6s |\n", "Model", "LR", "NN");
  std::printf("|------------------|--------|--------|\n");
  PrintRow("Dense", StrFormat("%zu", lr.dense_units),
           StrFormat("%zu", nn.dense_units));
  PrintRow("epochs", StrFormat("%zu", lr.epochs), StrFormat("%zu", nn.epochs));
  PrintRow("validation split", StrFormat("%.1f", lr.validation_split),
           StrFormat("%.1f", nn.validation_split));
  PrintRow("Learning rate", StrFormat("%.2f", lr.learning_rate),
           StrFormat("%.3f", nn.learning_rate));
  PrintRow("activation", ml::ActivationName(lr.hidden_activation),
           ml::ActivationName(nn.hidden_activation));
  PrintRow("Loss", ml::LossName(lr.loss), ml::LossName(nn.loss));
  PrintRow("optimizer", lr.optimizer, nn.optimizer);

  // One Table-III-exact fit per model on one station's (normalized) data.
  data::AirQualityOptions data_options;
  data_options.num_stations = 1;
  data_options.samples_per_station = 1500;
  data_options.heterogeneity = data::Heterogeneity::kHomogeneous;
  data_options.single_feature = true;
  data::AirQualityGenerator generator(data_options);
  data::Dataset station =
      bench::ValueOrDie(generator.GenerateStation(0), "generate data");
  data::Normalizer fnorm = bench::ValueOrDie(
      data::Normalizer::Fit(station.features(), data::ScalingKind::kMinMax),
      "fit feature normalizer");
  data::Normalizer tnorm = bench::ValueOrDie(
      data::Normalizer::Fit(station.targets(), data::ScalingKind::kMinMax),
      "fit target normalizer");
  Matrix x = bench::ValueOrDie(fnorm.Transform(station.features()), "x");
  Matrix y = bench::ValueOrDie(tnorm.Transform(station.targets()), "y");

  std::printf("\nTable-III-exact training runs (one station, %zu samples):\n",
              station.NumSamples());
  for (ml::ModelKind kind :
       {ml::ModelKind::kLinearRegression, ml::ModelKind::kNeuralNetwork}) {
    Rng rng(7);
    ml::SequentialModel model =
        bench::ValueOrDie(ml::BuildModel(kind, x.cols(), &rng), "model");
    auto trainer = bench::ValueOrDie(ml::BuildTrainer(kind, 7), "trainer");
    Stopwatch watch;
    ml::TrainReport report =
        bench::ValueOrDie(trainer->Fit(&model, x, y), "fit");
    std::printf(
        "  %-3s: %zu epochs, final train loss %.5f, final val loss %.5f, "
        "%.2fs wall\n",
        ml::ModelKindName(kind), report.epochs_run,
        report.final_train_loss(), report.final_val_loss(),
        watch.ElapsedSeconds());

    bench::BenchRecord record;
    record.name = ml::ModelKindName(kind);
    record.values["epochs_run"] = static_cast<double>(report.epochs_run);
    record.values["final_train_loss"] = report.final_train_loss();
    record.values["final_val_loss"] = report.final_val_loss();
    record.values["wall_seconds"] = watch.ElapsedSeconds();
    bjson.Add(std::move(record));
  }
  bjson.WriteOrDie();
  return 0;
}
