// Extension bench X11: dynamic-fleet robustness (churn + drift + refresh).
//   (a) a static-fleet anchor (dynamic layer off) for the paper-exact
//       answer quality on this workload;
//   (b) churn fraction in {0%, 10%, 30%} x online cluster refresh
//       {off, on}, with on-device data drift always active: average answer
//       loss, departures/rejoins absorbed by the quorum-gated rounds, and
//       profile refreshes published. With drift shifting data away from
//       the published cluster summaries, refresh-off serves queries from a
//       stale leader view while refresh-on re-quantizes and republishes —
//       at high churn + drift the refreshed fleet must answer better.

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "qens/common/string_util.h"

using namespace qens;

namespace {

constexpr size_t kRounds = 3;
constexpr size_t kQueries = 30;

fl::ExperimentConfig BaseConfig() {
  fl::ExperimentConfig config =
      bench::PaperConfig(data::Heterogeneity::kHeterogeneous);
  config.workload.num_queries = kQueries;
  return config;
}

fl::ExperimentConfig MakeConfig(double churn_rate, bool refresh) {
  fl::ExperimentConfig config = BaseConfig();
  auto& dyn = config.federation.dynamic;
  dyn.enabled = true;
  dyn.churn.seed = 11;
  dyn.churn.churn_rate = churn_rate;
  // Cover every executed round (kQueries x kRounds) so churn never freezes.
  dyn.churn.churn_horizon = kQueries * kRounds + 8;
  dyn.churn.min_down_rounds = 1;
  dyn.churn.max_down_rounds = 3;
  dyn.churn.min_up_rounds = 2;
  dyn.churn.max_up_rounds = 6;
  dyn.drift.seed = 17;
  dyn.drift.rate = 0.25;
  dyn.drift.feature_shift = 0.08;
  dyn.refresh = refresh;
  dyn.refresh_threshold = 0.02;
  return config;
}

struct SweepRow {
  stats::RunningStats loss;
  size_t queries_run = 0;
  size_t queries_skipped = 0;
  size_t nodes_left = 0;
  size_t nodes_joined = 0;
  size_t refreshes = 0;
  uint64_t final_epoch = 0;
};

SweepRow RunSweep(const fl::ExperimentConfig& config) {
  fl::ExperimentRunner runner =
      bench::ValueOrDie(fl::ExperimentRunner::Create(config), "build");
  SweepRow row;
  for (const auto& q : runner.queries()) {
    auto outcome = runner.federation().RunQueryMultiRound(
        q, selection::PolicyKind::kQueryDriven, /*data_selectivity=*/true,
        kRounds);
    bench::CheckOk(outcome.status(), "query");
    row.nodes_left += outcome->nodes_left;
    row.nodes_joined += outcome->nodes_joined;
    row.refreshes += outcome->fleet_refreshes;
    row.final_epoch = outcome->fleet_epoch;
    if (outcome->skipped) {
      ++row.queries_skipped;
      continue;
    }
    if (!std::isfinite(outcome->loss_weighted)) {
      ++row.queries_skipped;
      continue;
    }
    ++row.queries_run;
    row.loss.Add(outcome->loss_weighted);
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchJson bjson("bench_x11_churn_drift", &argc, argv);
  bench::PrintHeader("X11 — Dynamic-fleet robustness (churn + drift)");

  // (a) Static anchor: the same workload with the dynamic layer off.
  const SweepRow anchor = RunSweep(BaseConfig());
  std::printf("\n(a) static fleet (no churn, no drift), %zu rounds/query, "
              "%zu queries\n", kRounds, kQueries);
  std::printf("    avg loss %.3f (%zu run, %zu skipped)\n",
              anchor.loss.mean(), anchor.queries_run, anchor.queries_skipped);
  {
    bench::BenchRecord record;
    record.name = "static_fleet";
    record.labels["section"] = "baseline";
    record.values["avg_loss"] = anchor.loss.mean();
    record.values["queries_run"] = static_cast<double>(anchor.queries_run);
    record.values["queries_skipped"] =
        static_cast<double>(anchor.queries_skipped);
    bjson.Add(std::move(record));
  }

  // (b) Churn x refresh under always-on drift.
  std::printf("\n(b) churn x refresh, drift rate 0.25 shift 0.08/span\n");
  std::printf("%-10s %-8s %12s %10s %8s %8s %10s\n", "churn", "refresh",
              "avg loss", "vs static", "left", "joined", "refreshes");
  for (const bool refresh : {false, true}) {
    for (const double churn : {0.0, 0.1, 0.3}) {
      const SweepRow row = RunSweep(MakeConfig(churn, refresh));
      const double ratio =
          anchor.loss.mean() > 0.0 && row.queries_run > 0
              ? row.loss.mean() / anchor.loss.mean()
              : -1.0;
      const std::string churn_label = StrFormat("%.0f%%", 100.0 * churn);
      std::printf("%-10s %-8s %12.3f %10.3f %8zu %8zu %10zu\n",
                  churn_label.c_str(), refresh ? "on" : "off",
                  row.queries_run > 0 ? row.loss.mean() : -1.0, ratio,
                  row.nodes_left, row.nodes_joined, row.refreshes);

      bench::BenchRecord record;
      record.name = StrFormat("churn%.0f_refresh_%s", 100.0 * churn,
                              refresh ? "on" : "off");
      record.labels["section"] = "sweep";
      record.labels["refresh"] = refresh ? "on" : "off";
      record.values["churn_rate"] = churn;
      record.values["avg_loss"] =
          row.queries_run > 0 ? row.loss.mean() : -1.0;
      record.values["loss_vs_static"] = ratio;
      record.values["queries_run"] = static_cast<double>(row.queries_run);
      record.values["queries_skipped"] =
          static_cast<double>(row.queries_skipped);
      record.values["nodes_left"] = static_cast<double>(row.nodes_left);
      record.values["nodes_joined"] = static_cast<double>(row.nodes_joined);
      record.values["refreshes"] = static_cast<double>(row.refreshes);
      record.values["final_epoch"] = static_cast<double>(row.final_epoch);
      bjson.Add(std::move(record));
    }
  }
  std::printf("(drift shifts on-device data away from the published cluster "
              "summaries;\n refresh-off ranks and trains against the stale "
              "view, refresh-on republishes —\n the refresh-on rows should "
              "hold avg loss below their refresh-off twins)\n");
  bjson.WriteOrDie();
  return 0;
}
