// Reproduces Figures 1 & 2: the scatter structure that motivates node
// selection. Fig. 1 — two homogeneous participants whose data patterns
// coincide (similar regression fits). Fig. 2 — heterogeneous participants
// where one matches the global pattern and another has a very different
// (sign-flipped) pattern.
//
// The bench emits the per-station OLS fits (slope/intercept/R^2) and a
// compact CSV of the (TEMP, PM2.5) series so the scatter plots can be
// redrawn, then checks the similarity/dissimilarity shape.

#include <cstdio>

#include "bench_util.h"
#include "qens/data/air_quality_generator.h"
#include "qens/tensor/stats.h"

using namespace qens;

namespace {

stats::LinearFit FitStation(const data::Dataset& d) {
  return bench::ValueOrDie(
      stats::FitLine(d.features().Col(0), d.TargetVector()), "fit");
}

void EmitSample(const char* tag, const data::Dataset& d, size_t count) {
  std::printf("# scatter series %s (TEMP, PM2.5), first %zu points\n", tag,
              count);
  for (size_t i = 0; i < std::min(count, d.NumSamples()); ++i) {
    std::printf("%s,%.2f,%.2f\n", tag, d.features()(i, 0), d.targets()(i, 0));
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchJson bjson("bench_fig12_participant_similarity", &argc, argv);
  bench::PrintHeader(
      "Figures 1 & 2 — similar vs dissimilar participants (scatter data + "
      "OLS fits)");

  // Fig. 1: homogeneous regime — any two participants look alike.
  data::AirQualityOptions homo;
  homo.num_stations = 10;
  homo.samples_per_station = 800;
  homo.heterogeneity = data::Heterogeneity::kHomogeneous;
  homo.single_feature = true;
  homo.seed = 5;
  data::AirQualityGenerator homo_gen(homo);
  data::Dataset h0 = bench::ValueOrDie(homo_gen.GenerateStation(0), "h0");
  data::Dataset h7 = bench::ValueOrDie(homo_gen.GenerateStation(7), "h7");
  const stats::LinearFit fit_h0 = FitStation(h0);
  const stats::LinearFit fit_h7 = FitStation(h7);

  std::printf("\nFig. 1 (homogeneous): station fits PM2.5 ~ TEMP\n");
  std::printf("  selected   : slope %+.3f intercept %+.2f R2 %.3f\n",
              fit_h0.slope, fit_h0.intercept, fit_h0.r_squared);
  std::printf("  random pick: slope %+.3f intercept %+.2f R2 %.3f\n",
              fit_h7.slope, fit_h7.intercept, fit_h7.r_squared);
  std::printf("  shape check: same slope sign (%s), relative slope gap %.2f\n",
              fit_h0.slope * fit_h7.slope > 0 ? "yes" : "NO",
              std::abs(fit_h0.slope - fit_h7.slope) /
                  std::max(1e-9, std::abs(fit_h0.slope)));

  // Fig. 2: heterogeneous regime — cold-region vs warm-region stations.
  data::AirQualityOptions hetero = homo;
  hetero.heterogeneity = data::Heterogeneity::kHeterogeneous;
  data::AirQualityGenerator hetero_gen(hetero);
  data::Dataset cold = bench::ValueOrDie(hetero_gen.GenerateStation(0), "c");
  data::Dataset warm = bench::ValueOrDie(
      hetero_gen.GenerateStation(hetero.num_stations - 1), "w");
  const stats::LinearFit fit_cold = FitStation(cold);
  const stats::LinearFit fit_warm = FitStation(warm);

  std::printf("\nFig. 2 (heterogeneous): station fits PM2.5 ~ TEMP\n");
  std::printf("  similar node   : slope %+.3f intercept %+.2f R2 %.3f\n",
              fit_warm.slope, fit_warm.intercept, fit_warm.r_squared);
  std::printf("  dissimilar node: slope %+.3f intercept %+.2f R2 %.3f\n",
              fit_cold.slope, fit_cold.intercept, fit_cold.r_squared);
  std::printf("  shape check: opposite slope signs (%s)\n",
              fit_cold.slope * fit_warm.slope < 0 ? "yes" : "NO");

  std::printf("\n");
  EmitSample("fig1_selected", h0, 40);
  EmitSample("fig1_random", h7, 40);
  EmitSample("fig2_similar", warm, 40);
  EmitSample("fig2_dissimilar", cold, 40);

  auto fit_record = [](const char* name, const stats::LinearFit& fit) {
    bench::BenchRecord record;
    record.name = name;
    record.values["slope"] = fit.slope;
    record.values["intercept"] = fit.intercept;
    record.values["r_squared"] = fit.r_squared;
    return record;
  };
  bjson.Add(fit_record("fig1_selected", fit_h0));
  bjson.Add(fit_record("fig1_random", fit_h7));
  bjson.Add(fit_record("fig2_similar", fit_warm));
  bjson.Add(fit_record("fig2_dissimilar", fit_cold));
  bjson.WriteOrDie();
  return 0;
}
