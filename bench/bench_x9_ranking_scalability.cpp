// X9: sublinear leader-side ranking — the cluster-rectangle spatial index
// and the quantized ranking cache against the paper-exact O(N*K) scan,
// swept over fleet sizes N in {100, 1k, 10k, 100k}.
//
// The correctness contract is asserted BEFORE anything is timed: for every
// fleet size and every query, RankNodesIndexed must be BITWISE identical
// to RankNodes (scores, order, tie-breaks — RankingsBitwiseEqual), and a
// cache-enabled leader must return bit-identical rankings on both the miss
// and the hit path. Only then are the same workloads re-run under the
// clock, so the speedups below are pure data-structure wins, never a
// change of results.
//
// Workload: K = 5 clusters/node, d = 3 features, narrow clusters (1-4% of
// each dimension) and narrow queries (1-4% wide), epsilon = 0.5 — the
// selective regime the index is built for. The epsilon-aware prune keeps a
// cluster only when ceil(epsilon*d) = 2+ of its 3 dimensions share grid
// bins with the query (a cluster disjoint in 2+ dims has h <= 1/3 < 0.5),
// so most of the fleet is dismissed without touching Eq. 2. With a low
// epsilon (< 1/d) a single-dimension graze already forces evaluation and
// the index degenerates to ~the scan — measured and documented in
// docs/INDEXING.md, not hidden here.
//
// Sections:
//   equality — per-fleet-size bitwise comparison, all three serving paths.
//   scaling  — timed per-query cost: scan, index, cache hit (leader-level
//              Rank, i.e. including the result copy-out).
//
// Every record carries values["nodes"] so the scaling curve is
// machine-readable (tools/check_bench_json.py enforces this).

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "qens/common/rng.h"
#include "qens/common/stopwatch.h"
#include "qens/fl/leader.h"
#include "qens/query/workload_generator.h"
#include "qens/selection/cluster_index.h"
#include "qens/selection/ranking.h"

namespace qens::bench {
namespace {

constexpr size_t kClustersPerNode = 5;
constexpr size_t kDims = 3;
constexpr double kSpaceLo = 0.0;
constexpr double kSpaceHi = 100.0;
constexpr size_t kQueries = 32;

selection::RankingOptions BaseRanking() {
  selection::RankingOptions options;
  options.epsilon = 0.5;
  return options;
}

/// N synthetic profiles: K narrow clusters per node, uniform centers over
/// the data space, widths 1-4% per dimension.
std::vector<selection::NodeProfile> MakeProfiles(size_t num_nodes,
                                                 uint64_t seed) {
  Rng rng(seed);
  std::vector<selection::NodeProfile> profiles;
  profiles.reserve(num_nodes);
  const double extent = kSpaceHi - kSpaceLo;
  for (size_t i = 0; i < num_nodes; ++i) {
    selection::NodeProfile profile;
    profile.node_id = i;
    for (size_t k = 0; k < kClustersPerNode; ++k) {
      std::vector<query::Interval> intervals;
      intervals.reserve(kDims);
      for (size_t d = 0; d < kDims; ++d) {
        const double half = 0.5 * extent * rng.Uniform(0.01, 0.04);
        const double center = rng.Uniform(kSpaceLo + half, kSpaceHi - half);
        intervals.emplace_back(center - half, center + half);
      }
      clustering::ClusterSummary cluster;
      cluster.bounds = query::HyperRectangle(std::move(intervals));
      cluster.size = 50 + rng.UniformInt(uint64_t{200});
      profile.clusters.push_back(std::move(cluster));
      profile.total_samples += profile.clusters.back().size;
    }
    profiles.push_back(std::move(profile));
  }
  return profiles;
}

std::vector<query::RangeQuery> MakeQueries(uint64_t seed) {
  query::WorkloadOptions options;
  options.num_queries = kQueries;
  options.min_width_frac = 0.01;
  options.max_width_frac = 0.04;
  options.seed = seed;
  query::WorkloadGenerator generator(
      query::HyperRectangle::FromFlatBounds(
          {kSpaceLo, kSpaceHi, kSpaceLo, kSpaceHi, kSpaceLo, kSpaceHi})
          .value(),
      options);
  return ValueOrDie(generator.Generate(), "generate workload");
}

void DieOnDiff(const std::string& what, size_t nodes, const std::string& diff) {
  std::fprintf(stderr, "FATAL: N=%zu %s diverges from the scan: %s\n", nodes,
               what.c_str(), diff.c_str());
  std::exit(1);
}

}  // namespace
}  // namespace qens::bench

int main(int argc, char** argv) {
  using namespace qens;
  using namespace qens::bench;

  BenchJson json("bench_x9_ranking_scalability", &argc, argv);
  PrintHeader(
      "X9: sublinear ranking (spatial index + ranking cache vs exact scan)");

  const selection::RankingOptions ranking = BaseRanking();
  const std::vector<query::RangeQuery> queries = MakeQueries(99);
  std::printf("K=%zu clusters/node, d=%zu, %zu queries, epsilon=%.2f\n\n",
              kClustersPerNode, kDims, queries.size(), ranking.epsilon);

  std::printf("%-8s %14s %14s %14s %10s %10s\n", "nodes", "scan_us/q",
              "index_us/q", "cachehit_us/q", "speedup", "prune%");

  for (const size_t num_nodes :
       {size_t{100}, size_t{1000}, size_t{10000}, size_t{100000}}) {
    const std::vector<selection::NodeProfile> profiles =
        MakeProfiles(num_nodes, 7 + num_nodes);
    selection::ClusterIndexOptions index_options;
    index_options.bins_per_dim = 64;
    auto built = selection::ClusterIndex::Build(profiles, index_options);
    CheckOk(built.status(), "build index");
    auto index =
        std::make_shared<const selection::ClusterIndex>(std::move(*built));
    selection::ClusterIndex::Scratch scratch;

    // ---- Phase 1: the bitwise-equality contract, asserted before timing.
    selection::RankingOptions accel = ranking;
    accel.use_index = true;
    accel.use_cache = true;
    accel.cache_capacity = queries.size();
    fl::Leader cached_leader(profiles, accel, selection::QueryDrivenOptions{},
                             index);
    selection::IndexQueryStats stats_sum;
    for (const query::RangeQuery& q : queries) {
      auto scan = RankNodes(profiles, q, ranking);
      CheckOk(scan.status(), "scan rank");
      selection::IndexQueryStats stats;
      auto indexed =
          RankNodesIndexed(*index, profiles, q, ranking, &scratch, &stats);
      CheckOk(indexed.status(), "indexed rank");
      std::string diff;
      if (!RankingsBitwiseEqual(*scan, *indexed, ranking, &diff)) {
        DieOnDiff("index", num_nodes, diff);
      }
      stats_sum.touched_entries += stats.touched_entries;
      stats_sum.candidate_clusters += stats.candidate_clusters;
      stats_sum.candidate_nodes += stats.candidate_nodes;
      stats_sum.pruned_clusters += stats.pruned_clusters;

      auto miss = cached_leader.Rank(q);  // Cold: miss, computed via index.
      CheckOk(miss.status(), "cached rank (miss)");
      if (!RankingsBitwiseEqual(*scan, *miss, ranking, &diff)) {
        DieOnDiff("cache miss path", num_nodes, diff);
      }
      auto hit = cached_leader.Rank(q);  // Warm: served from the cache.
      CheckOk(hit.status(), "cached rank (hit)");
      if (!RankingsBitwiseEqual(*scan, *hit, ranking, &diff)) {
        DieOnDiff("cache hit path", num_nodes, diff);
      }
    }
    if (cached_leader.ranking_telemetry().cache_hits != queries.size()) {
      std::fprintf(stderr, "FATAL: N=%zu expected %zu cache hits, got %llu\n",
                   num_nodes, queries.size(),
                   static_cast<unsigned long long>(
                       cached_leader.ranking_telemetry().cache_hits));
      return 1;
    }
    const double prune_fraction =
        stats_sum.pruned_clusters + stats_sum.candidate_clusters > 0
            ? static_cast<double>(stats_sum.pruned_clusters) /
                  static_cast<double>(stats_sum.pruned_clusters +
                                      stats_sum.candidate_clusters)
            : 0.0;
    {
      BenchRecord record;
      record.name = "equality_n" + std::to_string(num_nodes);
      record.labels["section"] = "equality";
      record.values["nodes"] = static_cast<double>(num_nodes);
      record.values["queries"] = static_cast<double>(queries.size());
      record.values["identical"] = 1.0;
      record.values["prune_fraction"] = prune_fraction;
      json.Add(std::move(record));
    }

    // ---- Phase 2: timing (the equality runs above double as warmup).
    // Rep counts keep every cell's total around 0.1-1s of work.
    const size_t scan_reps = num_nodes >= 10000 ? 2 : 20;
    const size_t index_reps = num_nodes >= 10000 ? 20 : 200;

    Stopwatch scan_watch;
    for (size_t rep = 0; rep < scan_reps; ++rep) {
      for (const query::RangeQuery& q : queries) {
        auto r = RankNodes(profiles, q, ranking);
        CheckOk(r.status(), "timed scan");
      }
    }
    const double scan_us =
        scan_watch.ElapsedSeconds() * 1e6 /
        static_cast<double>(scan_reps * queries.size());

    Stopwatch index_watch;
    for (size_t rep = 0; rep < index_reps; ++rep) {
      for (const query::RangeQuery& q : queries) {
        auto r = RankNodesIndexed(*index, profiles, q, ranking, &scratch);
        CheckOk(r.status(), "timed index");
      }
    }
    const double index_us =
        index_watch.ElapsedSeconds() * 1e6 /
        static_cast<double>(index_reps * queries.size());

    // Cache hits measured leader-level: includes the result copy-out, the
    // honest cost an application pays per served ranking.
    Stopwatch cache_watch;
    for (size_t rep = 0; rep < index_reps; ++rep) {
      for (const query::RangeQuery& q : queries) {
        auto r = cached_leader.Rank(q);
        CheckOk(r.status(), "timed cache hit");
      }
    }
    const double cache_us =
        cache_watch.ElapsedSeconds() * 1e6 /
        static_cast<double>(index_reps * queries.size());

    const double speedup = index_us > 0 ? scan_us / index_us : 0.0;
    std::printf("%-8zu %14.1f %14.1f %14.1f %9.1fx %9.1f%%\n", num_nodes,
                scan_us, index_us, cache_us, speedup, 100.0 * prune_fraction);

    for (const auto& [path, us] :
         {std::pair<const char*, double>{"scan", scan_us},
          {"index", index_us},
          {"cache_hit", cache_us}}) {
      BenchRecord record;
      record.name = std::string(path) + "_n" + std::to_string(num_nodes);
      record.labels["section"] = "scaling";
      record.labels["path"] = path;
      record.values["nodes"] = static_cast<double>(num_nodes);
      record.values["queries"] = static_cast<double>(queries.size());
      record.values["us_per_query"] = us;
      record.values["speedup_vs_scan"] = us > 0 ? scan_us / us : 0.0;
      record.values["grid_bytes"] = static_cast<double>(index->GridBytes());
      json.Add(std::move(record));
    }
  }

  std::printf("\nAll rankings bitwise identical across scan, index, and "
              "cache at every fleet size.\n");
  json.WriteOrDie();
  return 0;
}
