// Reproduces Table I: expected loss (prediction error) of the Section II
// pre-test mechanism on HOMOGENEOUS participants.
//
// The leader trains a model on its own local data and tests it against the
// other participants:
//   "All-node selection"  — probe ALL participants and engage the best-
//                           matching one; expected loss = loss on it.
//   "Random selection"    — engage a uniformly random participant;
//                           expected loss = mean loss across participants.
// Paper values (LR): 24.45 vs 24.70 — a near-tie, because homogeneous
// participants all look like the leader's data, so probing buys nothing.

#include <cstdio>

#include "bench_util.h"

using namespace qens;

int main(int argc, char** argv) {
  bench::BenchJson bjson("bench_table1_homogeneous", &argc, argv);
  bench::PrintHeader(
      "Table I — pre-test expected loss, homogeneous participants (LR)\n"
      "paper: all-node 24.45 vs random 24.70 (near-tie)");

  data::AirQualityOptions options;
  options.num_stations = 10;
  options.samples_per_station = 1500;
  options.heterogeneity = data::Heterogeneity::kHomogeneous;
  options.single_feature = true;
  options.seed = 2023;

  const bench::PreTestResult result = bench::RunPreTest(options, 99);

  std::printf("\n| Model | All-node selection | Random selection |\n");
  std::printf("|-------|--------------------|------------------|\n");
  std::printf("| LR    | %18.2f | %16.2f |\n", result.all_node_loss,
              result.random_loss);

  const double rel = (result.random_loss - result.all_node_loss) /
                     std::max(1e-9, result.all_node_loss);
  std::printf(
      "\nshape check: (random - all)/all = %.3f (paper: 0.010; expect a "
      "near-tie, << 1)\n",
      rel);

  bench::BenchRecord record;
  record.name = "pretest";
  record.labels["model"] = "LR";
  record.labels["heterogeneity"] = "homogeneous";
  record.values["all_node_loss"] = result.all_node_loss;
  record.values["random_loss"] = result.random_loss;
  record.values["relative_gap"] = rel;
  bjson.Add(std::move(record));
  bjson.WriteOrDie();
  return 0;
}
