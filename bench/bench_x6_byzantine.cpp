// Extension bench X6: Byzantine-robust aggregation.
//   (a) attacker sweep — attacker fraction in {0%, 10%, 30%} (NaN +
//       sign-flip mix) x defense (plain FedAvg without validation, FedAvg /
//       trimmed-mean / coordinate-median / norm-clipped FedAvg behind the
//       UpdateValidator): answer quality relative to each defense's own
//       fault-free run, plus diverged/errored queries and rejection counts;
//   (b) quarantine — with repeat sign-flip offenders, quarantining rejected
//       nodes converts repeated per-round rejections into cheap skips.

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "bench_util.h"
#include "qens/common/string_util.h"

using namespace qens;

namespace {

constexpr size_t kRounds = 3;
constexpr size_t kQueries = 30;

fl::ExperimentConfig BaseConfig() {
  fl::ExperimentConfig config =
      bench::PaperConfig(data::Heterogeneity::kHeterogeneous);
  config.workload.num_queries = kQueries;
  // A wider participant set keeps an honest majority per round under the
  // 30% attacker draw (robust statistics need one).
  config.federation.query_driven.top_l = 5;
  // A single honest survivor may commit a round (validation can reject the
  // rest).
  config.federation.fault_tolerance.min_quorum_frac = 0.2;
  return config;
}

/// One defense configuration under test.
struct Defense {
  const char* name;        ///< Row label / JSON record name.
  bool byzantine;          ///< Validator + robust aggregation on?
  fl::AggregationKind aggregator;
};

const Defense kDefenses[] = {
    {"fedavg-unguarded", false, fl::AggregationKind::kFedAvgParameters},
    {"fedavg+validator", true, fl::AggregationKind::kFedAvgParameters},
    {"trimmed+validator", true, fl::AggregationKind::kTrimmedMean},
    {"median+validator", true, fl::AggregationKind::kCoordinateMedian},
    {"clipped+validator", true, fl::AggregationKind::kNormClippedFedAvg},
};

fl::ExperimentConfig MakeConfig(const Defense& defense, double attacker_frac,
                                size_t quarantine_rounds) {
  fl::ExperimentConfig config = BaseConfig();
  auto& ft = config.federation.fault_tolerance;
  ft.enabled = true;
  ft.faults.seed = 61;
  ft.faults.corruption_rate = attacker_frac;
  if (attacker_frac > 0.0) {
    ft.faults.corruption_kinds = {sim::CorruptionKind::kNanUpdate,
                                  sim::CorruptionKind::kSignFlip};
  }
  if (defense.byzantine) {
    auto& byz = config.federation.byzantine;
    byz.enabled = true;
    byz.aggregator = defense.aggregator;
    byz.trim_beta = 0.4;
    byz.clip_norm = 1.0;
    byz.quarantine_rounds = quarantine_rounds;
    byz.validator.check_finite = true;
    byz.validator.norm_mad_k = 8.0;
    // A sign-flipped model scores ~4x the broadcast reference's holdout
    // loss (predictions mirrored about the reference's), so factor 3
    // separates honest updates (well under the anchor) from flips even in
    // round 0, when the reference is the random init.
    byz.validator.holdout_loss_factor = 3.0;
  }
  return config;
}

struct SweepRow {
  stats::RunningStats loss;
  size_t queries_run = 0;
  size_t queries_failed = 0;  ///< Errored (diverged) or degraded to skip.
  size_t rejected = 0;
  size_t quarantined_skips = 0;
};

SweepRow RunSweep(const fl::ExperimentConfig& config,
                  const char* debug_tag = "") {
  fl::ExperimentRunner runner =
      bench::ValueOrDie(fl::ExperimentRunner::Create(config), "build");
  const bool byz_on = config.federation.byzantine.enabled;
  SweepRow row;
  for (const auto& q : runner.queries()) {
    auto outcome = runner.federation().RunQueryMultiRound(
        q, selection::PolicyKind::kQueryDriven, /*data_selectivity=*/true,
        kRounds);
    if (!outcome.ok()) {
      // Corrupted updates reached an aggregator that (correctly) refuses
      // non-finite input: the unguarded pipeline rejects the query.
      ++row.queries_failed;
      continue;
    }
    if (outcome->skipped) continue;
    row.rejected += outcome->rejected_updates;
    row.quarantined_skips += outcome->quarantined_skips;
    const double loss = byz_on && outcome->has_loss_robust
                            ? outcome->loss_robust
                            : outcome->loss_fedavg;
    if (!std::isfinite(loss)) {
      ++row.queries_failed;  // Numerically diverged answer.
      continue;
    }
    ++row.queries_run;
    row.loss.Add(loss);
    if (std::getenv("X6_DEBUG") != nullptr) {
      std::fprintf(stderr,
                   "%s q%llu loss=%.1f rejected=%zu quarantined=%zu "
                   "degraded=%zu survivors=%zu\n",
                   debug_tag, static_cast<unsigned long long>(q.id), loss,
                   outcome->rejected_updates, outcome->quarantined_skips,
                   outcome->degraded_rounds, outcome->survivor_weights.size());
    }
  }
  return row;
}

double FiniteOr(double value, double fallback) {
  return std::isfinite(value) ? value : fallback;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchJson bjson("bench_x6_byzantine", &argc, argv);
  bench::PrintHeader("X6 — Byzantine-robust aggregation");

  // (a) Attacker fraction x defense.
  std::printf("\n(a) attacker sweep (NaN + sign-flip mix), %zu rounds/query, "
              "%zu queries\n", kRounds, kQueries);
  std::printf("%-20s %-9s %12s %9s %9s %9s %10s\n", "defense", "attackers",
              "avg loss", "vs clean", "run", "diverged", "rejected");
  for (const Defense& defense : kDefenses) {
    double clean_loss = 0.0;
    for (double frac : {0.0, 0.1, 0.3}) {
      const std::string tag =
          StrFormat("%s@%.0f", defense.name, 100.0 * frac);
      const SweepRow row = RunSweep(
          MakeConfig(defense, frac, /*quarantine_rounds=*/0), tag.c_str());
      if (frac == 0.0) clean_loss = row.loss.mean();
      const double ratio = clean_loss > 0.0 && row.queries_run > 0
                               ? row.loss.mean() / clean_loss
                               : -1.0;
      std::printf("%-20s %-9.0f%% %11.2f %9.3f %6zu/%-2zu %9zu %10zu\n",
                  defense.name, 100.0 * frac,
                  row.queries_run > 0 ? row.loss.mean() : -1.0, ratio,
                  row.queries_run, kQueries, row.queries_failed,
                  row.rejected);

      bench::BenchRecord record;
      record.name = StrFormat("%s_attack%.0f", defense.name, 100.0 * frac);
      record.labels["section"] = "attacker_sweep";
      record.labels["defense"] = defense.name;
      record.labels["aggregation"] =
          fl::AggregationKindName(defense.aggregator);
      record.values["attacker_frac"] = frac;
      record.values["avg_loss"] =
          FiniteOr(row.queries_run > 0 ? row.loss.mean() : -1.0, -1.0);
      record.values["loss_ratio_vs_clean"] = FiniteOr(ratio, -1.0);
      record.values["queries_run"] = static_cast<double>(row.queries_run);
      record.values["queries_failed"] =
          static_cast<double>(row.queries_failed);
      record.values["rejected_updates"] = static_cast<double>(row.rejected);
      bjson.Add(std::move(record));
    }
  }
  std::printf("(vs clean = avg loss / the same defense's 0%%-attacker run; "
              "-1 when no query survived.\n"
              " the unguarded pipeline must diverge or reject under NaN "
              "attackers; the robust rows should hold vs clean <= 1.10)\n");

  // (b) Quarantine: repeat offenders are skipped instead of re-screened.
  std::printf("\n(b) quarantine, sign-flip attackers 30%%, %zu rounds/query\n",
              kRounds);
  std::printf("%-18s %10s %10s %12s %12s\n", "quarantine", "avg loss",
              "rejected", "quarantined", "run");
  for (size_t quarantine : {size_t{0}, size_t{2}}) {
    Defense defense{"median+validator", true,
                    fl::AggregationKind::kCoordinateMedian};
    fl::ExperimentConfig config = MakeConfig(defense, 0.3, quarantine);
    config.federation.fault_tolerance.faults.corruption_kinds = {
        sim::CorruptionKind::kSignFlip};
    const SweepRow row = RunSweep(config);
    std::printf("%-18s %10.2f %10zu %12zu %9zu/%zu\n",
                quarantine > 0 ? "2 rounds" : "off",
                row.queries_run > 0 ? row.loss.mean() : -1.0, row.rejected,
                row.quarantined_skips, row.queries_run, kQueries);

    bench::BenchRecord record;
    record.name = StrFormat("quarantine_%zu", quarantine);
    record.labels["section"] = "quarantine";
    record.labels["defense"] = defense.name;
    record.values["quarantine_rounds"] = static_cast<double>(quarantine);
    record.values["avg_loss"] =
        FiniteOr(row.queries_run > 0 ? row.loss.mean() : -1.0, -1.0);
    record.values["rejected_updates"] = static_cast<double>(row.rejected);
    record.values["quarantined_skips"] =
        static_cast<double>(row.quarantined_skips);
    record.values["queries_run"] = static_cast<double>(row.queries_run);
    bjson.Add(std::move(record));
  }
  std::printf("(with quarantine on, each rejection buys quarantined rounds of "
              "cheap skips instead of repeat screenings)\n");
  bjson.WriteOrDie();
  return 0;
}
