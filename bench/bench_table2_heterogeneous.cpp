// Reproduces Table II: expected loss of the Section II pre-test mechanism
// on HETEROGENEOUS participants (very different data patterns and
// distributions — sign-flipped local regressions across regions).
//
//   "All-node selection"  — probe ALL participants, engage the best match:
//                           low loss (a compatible node exists nearby).
//   "Random selection"    — engage a uniformly random participant: the
//                           expected loss explodes, because most nodes hold
//                           other regions with very different patterns.
// Paper values (LR): 9.70 vs 178.10 — random is ~18x worse.

#include <cstdio>

#include "bench_util.h"

using namespace qens;

int main(int argc, char** argv) {
  bench::BenchJson bjson("bench_table2_heterogeneous", &argc, argv);
  bench::PrintHeader(
      "Table II — pre-test expected loss, heterogeneous participants (LR)\n"
      "paper: all-node 9.70 vs random 178.10 (random blows up)");

  data::AirQualityOptions options;
  options.num_stations = 10;
  options.samples_per_station = 1500;
  options.heterogeneity = data::Heterogeneity::kHeterogeneous;
  options.single_feature = true;
  options.seed = 2023;

  const bench::PreTestResult result = bench::RunPreTest(options, 99);

  std::printf("\n| Model | All-node selection | Random selection |\n");
  std::printf("|-------|--------------------|------------------|\n");
  std::printf("| LR    | %18.2f | %16.2f |\n", result.all_node_loss,
              result.random_loss);

  const double ratio =
      result.random_loss / std::max(1e-9, result.all_node_loss);
  std::printf(
      "\nshape check: random / all-node = %.2fx (paper: 18.4x; expect >> "
      "1)\n",
      ratio);

  bench::BenchRecord record;
  record.name = "pretest";
  record.labels["model"] = "LR";
  record.labels["heterogeneity"] = "heterogeneous";
  record.values["all_node_loss"] = result.all_node_loss;
  record.values["random_loss"] = result.random_loss;
  record.values["loss_ratio"] = ratio;
  bjson.Add(std::move(record));
  bjson.WriteOrDie();
  return 0;
}
