// Extension bench X5: fault tolerance of the federated loop.
//   (a) dropout sweep — QENS vs Random under node dropout in {0%, 10%,
//       30%} with a 50% quorum: per-round survivor counts, degraded
//       rounds, and answer quality;
//   (b) the full fault cocktail — crashes + stragglers (with a round
//       deadline) + lossy links, showing retries and deadline cuts;
//   (c) reliability-aware ranking — with crashing nodes, penalizing flaky
//       nodes in the ranking reduces wasted engagements.

#include <cstdio>

#include "bench_util.h"
#include "qens/common/string_util.h"

using namespace qens;

namespace {

constexpr size_t kRounds = 3;
constexpr size_t kQueries = 40;

fl::ExperimentConfig BaseConfig() {
  fl::ExperimentConfig config =
      bench::PaperConfig(data::Heterogeneity::kHeterogeneous);
  config.workload.num_queries = kQueries;
  return config;
}

struct SweepRow {
  stats::RunningStats loss;
  stats::RunningStats survivors[kRounds];
  size_t degraded = 0;
  size_t queries_run = 0;
  size_t messages_lost = 0;
};

SweepRow RunSweep(fl::ExperimentConfig config, selection::PolicyKind policy,
                  bool selectivity) {
  fl::ExperimentRunner runner =
      bench::ValueOrDie(fl::ExperimentRunner::Create(config), "build");
  SweepRow row;
  for (const auto& q : runner.queries()) {
    auto outcome = runner.federation().RunQueryMultiRound(
        q, policy, selectivity, kRounds);
    bench::CheckOk(outcome.status(), "query");
    if (outcome->skipped) continue;
    ++row.queries_run;
    row.loss.Add(outcome->loss_weighted);
    row.degraded += outcome->degraded_rounds;
    row.messages_lost += outcome->messages_lost;
    for (size_t r = 0; r < outcome->round_survivors.size() && r < kRounds;
         ++r) {
      row.survivors[r].Add(static_cast<double>(outcome->round_survivors[r]));
    }
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchJson bjson("bench_x5_fault_tolerance", &argc, argv);
  bench::PrintHeader("X5 — fault injection & straggler simulation");

  // (a) Dropout sweep, QENS vs Random, quorum 50%.
  std::printf("\n(a) dropout sweep, %zu rounds/query, quorum 50%%, %zu "
              "queries\n", kRounds, kQueries);
  std::printf("%-8s %-10s %10s %8s %22s %10s\n", "dropout", "policy",
              "avg loss", "run", "avg survivors r0/r1/r2", "degraded");
  for (double rate : {0.0, 0.1, 0.3}) {
    for (bool qens : {true, false}) {
      fl::ExperimentConfig config = BaseConfig();
      config.federation.fault_tolerance.enabled = true;
      config.federation.fault_tolerance.faults.seed = 91;
      config.federation.fault_tolerance.faults.dropout_rate = rate;
      config.federation.fault_tolerance.min_quorum_frac = 0.5;
      const SweepRow row = RunSweep(
          config,
          qens ? selection::PolicyKind::kQueryDriven
               : selection::PolicyKind::kRandom,
          /*selectivity=*/qens);
      char label[16];
      std::snprintf(label, sizeof(label), "%.0f%%", 100.0 * rate);
      std::printf("%-8s %-10s %10.2f %5zu/%-2zu %8.1f/%.1f/%.1f %13zu\n",
                  label, qens ? "QENS" : "Random", row.loss.mean(),
                  row.queries_run, kQueries, row.survivors[0].mean(),
                  row.survivors[1].mean(), row.survivors[2].mean(),
                  row.degraded);

      bench::BenchRecord record;
      record.name = StrFormat("dropout_%.1f_%s", rate,
                              qens ? "qens" : "random");
      record.labels["section"] = "dropout_sweep";
      record.labels["policy"] = qens ? "QENS" : "Random";
      record.values["dropout_rate"] = rate;
      record.values["avg_loss"] = row.loss.mean();
      record.values["queries_run"] = static_cast<double>(row.queries_run);
      record.values["degraded_rounds"] = static_cast<double>(row.degraded);
      record.values["messages_lost"] = static_cast<double>(row.messages_lost);
      for (size_t r = 0; r < kRounds; ++r) {
        record.values[StrFormat("avg_survivors_r%zu", r)] =
            row.survivors[r].mean();
      }
      bjson.Add(std::move(record));
    }
  }
  std::printf("(every query completes: below-quorum rounds keep the previous "
              "global model instead of failing)\n");

  // (b) The full fault cocktail.
  std::printf("\n(b) crash 20%% + straggler 30%% (4x, deadline) + link loss "
              "10%%\n");
  {
    fl::ExperimentConfig config = BaseConfig();
    auto& ft = config.federation.fault_tolerance;
    ft.enabled = true;
    ft.faults.seed = 92;
    ft.faults.crash_rate = 0.2;
    ft.faults.crash_horizon = kQueries * kRounds;
    ft.faults.straggler_rate = 0.3;
    ft.faults.straggler_slowdown_min = 4.0;
    ft.faults.straggler_slowdown_max = 4.0;
    ft.faults.message_loss_rate = 0.1;
    ft.min_quorum_frac = 0.5;

    // Calibrate the deadline off one fault-free run: generous enough for
    // healthy nodes, tight enough to cut 4x stragglers.
    fl::ExperimentConfig probe_config = BaseConfig();
    probe_config.federation.fault_tolerance.enabled = true;
    fl::ExperimentRunner probe = bench::ValueOrDie(
        fl::ExperimentRunner::Create(probe_config), "probe build");
    stats::RunningStats probe_round;
    for (const auto& q : probe.queries()) {
      auto outcome = probe.federation().RunQueryDriven(q);
      bench::CheckOk(outcome.status(), "probe query");
      if (!outcome->skipped) probe_round.Add(outcome->sim_time_parallel);
    }
    ft.round_deadline_s = 2.0 * probe_round.mean();
    std::printf("round deadline: %.4fs (2x the fault-free mean round)\n",
                ft.round_deadline_s);

    fl::ExperimentRunner runner =
        bench::ValueOrDie(fl::ExperimentRunner::Create(config), "build");
    stats::RunningStats loss, survivors;
    size_t run = 0, degraded = 0, lost = 0, retries = 0, failed = 0,
           deadline_cut = 0;
    for (const auto& q : runner.queries()) {
      auto outcome = runner.federation().RunQueryMultiRound(
          q, selection::PolicyKind::kQueryDriven, true, kRounds);
      bench::CheckOk(outcome.status(), "cocktail query");
      if (outcome->skipped) continue;
      ++run;
      loss.Add(outcome->loss_weighted);
      degraded += outcome->degraded_rounds;
      lost += outcome->messages_lost;
      retries += outcome->send_retries;
      failed += outcome->failed_nodes.size();
      deadline_cut += outcome->deadline_missed_nodes.size();
      for (size_t s : outcome->round_survivors) {
        survivors.Add(static_cast<double>(s));
      }
    }
    std::printf("queries run            %zu/%zu\n", run, kQueries);
    std::printf("avg loss (Eq. 7)       %.2f\n", loss.mean());
    std::printf("avg survivors/round    %.2f\n", survivors.mean());
    std::printf("degraded rounds        %zu\n", degraded);
    std::printf("failed engagements     %zu\n", failed);
    std::printf("deadline cuts          %zu\n", deadline_cut);
    std::printf("messages lost/retried  %zu/%zu\n", lost, retries);

    bench::BenchRecord record;
    record.name = "fault_cocktail";
    record.labels["section"] = "cocktail";
    record.values["queries_run"] = static_cast<double>(run);
    record.values["avg_loss"] = loss.mean();
    record.values["avg_survivors"] = survivors.mean();
    record.values["degraded_rounds"] = static_cast<double>(degraded);
    record.values["failed_engagements"] = static_cast<double>(failed);
    record.values["deadline_cuts"] = static_cast<double>(deadline_cut);
    record.values["messages_lost"] = static_cast<double>(lost);
    record.values["send_retries"] = static_cast<double>(retries);
    bjson.Add(std::move(record));
  }

  // (c) Reliability-aware ranking under crashes.
  std::printf("\n(c) reliability-aware ranking: crash 30%%, reliability "
              "weight 0 vs 2\n");
  std::printf("%-18s %10s %8s %18s\n", "ranking", "avg loss", "run",
              "failed engagements");
  for (double weight : {0.0, 2.0}) {
    fl::ExperimentConfig config = BaseConfig();
    config.federation.ranking.reliability_weight = weight;
    auto& ft = config.federation.fault_tolerance;
    ft.enabled = true;
    ft.faults.seed = 93;
    ft.faults.crash_rate = 0.3;
    ft.faults.crash_horizon = kQueries;  // Crashes spread over the workload.
    ft.min_quorum_frac = 0.25;
    fl::ExperimentRunner runner =
        bench::ValueOrDie(fl::ExperimentRunner::Create(config), "build");
    stats::RunningStats loss;
    size_t run = 0, failed = 0;
    for (const auto& q : runner.queries()) {
      auto outcome = runner.federation().RunQueryDriven(q);
      bench::CheckOk(outcome.status(), "reliability query");
      failed += outcome->failed_nodes.size();
      if (outcome->skipped) continue;
      ++run;
      loss.Add(outcome->loss_weighted);
    }
    std::printf("%-18s %10.2f %5zu/%-2zu %18zu\n",
                weight > 0 ? "penalized (w=2)" : "paper-exact (w=0)",
                loss.mean(), run, kQueries, failed);

    bench::BenchRecord record;
    record.name = StrFormat("reliability_w%.0f", weight);
    record.labels["section"] = "reliability_ranking";
    record.values["reliability_weight"] = weight;
    record.values["avg_loss"] = loss.mean();
    record.values["queries_run"] = static_cast<double>(run);
    record.values["failed_engagements"] = static_cast<double>(failed);
    bjson.Add(std::move(record));
  }
  std::printf("(with the penalty the leader learns to route around crashed "
              "nodes, cutting wasted engagements)\n");
  bjson.WriteOrDie();
  return 0;
}
