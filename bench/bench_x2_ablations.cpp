// Ablation bench X2 — the design choices DESIGN.md calls out:
//   (a) aggregation rule: Eq. 6 (model averaging) vs Eq. 7 (ranking-
//       weighted) vs parameter-space FedAvg (extension);
//   (b) overlap mode: the paper's faithful case formulas vs normalized
//       intersection;
//   (c) epsilon sensitivity: the supporting-cluster threshold.
// All on the heterogeneous 10-node environment with the query-driven
// mechanism.

#include <cstdio>

#include "bench_util.h"
#include "qens/clustering/silhouette.h"
#include "qens/common/string_util.h"

using namespace qens;

namespace {

bench::BenchJson* g_bjson = nullptr;

fl::MechanismStats RunConfigured(fl::ExperimentConfig config,
                                 const fl::Mechanism& mechanism,
                                 const char* section) {
  fl::ExperimentRunner runner = bench::ValueOrDie(
      fl::ExperimentRunner::Create(config), "build experiment");
  fl::MechanismStats stats = bench::ValueOrDie(
      runner.RunMechanism(mechanism), mechanism.label.c_str());
  bench::BenchRecord record = bench::MechanismRecord(stats);
  record.labels["ablation"] = section;
  g_bjson->Add(std::move(record));
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchJson bjson("bench_x2_ablations", &argc, argv);
  g_bjson = &bjson;
  bench::PrintHeader("X2 — ablations of the paper's design choices");

  fl::ExperimentConfig base =
      bench::PaperConfig(data::Heterogeneity::kHeterogeneous);
  base.workload.num_queries = 100;

  // (a) Aggregation rule.
  std::printf("\n(a) aggregation rule (query-driven selection, 100 queries)\n");
  {
    std::vector<fl::MechanismStats> rows;
    for (auto [label, kind] :
         std::initializer_list<std::pair<const char*, fl::AggregationKind>>{
             {"Eq6-Averaging", fl::AggregationKind::kModelAveraging},
             {"Eq7-Weighted", fl::AggregationKind::kWeightedAveraging},
             {"FedAvg-params", fl::AggregationKind::kFedAvgParameters}}) {
      fl::Mechanism m{label, selection::PolicyKind::kQueryDriven, true, kind};
      rows.push_back(RunConfigured(base, m, "aggregation"));
    }
    std::printf("%s", fl::FormatMechanismTable(rows).c_str());
  }

  // (b) Overlap mode.
  std::printf("\n(b) overlap ratio definition\n");
  {
    std::vector<fl::MechanismStats> rows;
    for (auto [label, mode] :
         std::initializer_list<std::pair<const char*, query::OverlapMode>>{
             {"faithful", query::OverlapMode::kFaithful},
             {"normalized", query::OverlapMode::kNormalizedIntersection}}) {
      fl::ExperimentConfig config = base;
      config.federation.ranking.overlap_mode = mode;
      fl::Mechanism m{label, selection::PolicyKind::kQueryDriven, true,
                      fl::AggregationKind::kWeightedAveraging};
      rows.push_back(RunConfigured(config, m, "overlap_mode"));
    }
    std::printf("%s", fl::FormatMechanismTable(rows).c_str());
    std::printf("(expect similar loss: the mechanism is robust to the exact "
                "ratio definition)\n");
  }

  // (d) Top-l vs the Eq. 5 psi-threshold cut.
  std::printf("\n(d) selection cut: top-l vs psi threshold (Eq. 5)\n");
  {
    std::vector<fl::MechanismStats> rows;
    for (size_t l : {2ul, 3ul, 5ul}) {
      fl::ExperimentConfig config = base;
      config.federation.query_driven.use_threshold = false;
      config.federation.query_driven.top_l = l;
      fl::Mechanism m{StrFormat("top-l=%zu", l),
                      selection::PolicyKind::kQueryDriven, true,
                      fl::AggregationKind::kWeightedAveraging};
      rows.push_back(RunConfigured(config, m, "selection_cut"));
    }
    for (double psi : {0.2, 0.5, 1.0}) {
      fl::ExperimentConfig config = base;
      config.federation.query_driven.use_threshold = true;
      config.federation.query_driven.psi = psi;
      fl::Mechanism m{StrFormat("psi=%.1f", psi),
                      selection::PolicyKind::kQueryDriven, true,
                      fl::AggregationKind::kWeightedAveraging};
      rows.push_back(RunConfigured(config, m, "selection_cut"));
    }
    std::printf("%s", fl::FormatMechanismTable(rows).c_str());
    std::printf("(higher psi engages fewer nodes per query; queries with no "
                "node above psi are skipped)\n");
  }

  // (e) Clusters-per-node sweep (paper fixes K = 5) with silhouette
  //     diagnostics on one station.
  std::printf("\n(e) clusters per node K (paper: K = 5)\n");
  {
    std::vector<fl::MechanismStats> rows;
    for (size_t k : {2ul, 5ul, 10ul}) {
      fl::ExperimentConfig config = base;
      config.federation.environment.kmeans.k = k;
      fl::Mechanism m{StrFormat("K=%zu", k),
                      selection::PolicyKind::kQueryDriven, true,
                      fl::AggregationKind::kWeightedAveraging};
      rows.push_back(RunConfigured(config, m, "clusters_per_node"));
    }
    std::printf("%s", fl::FormatMechanismTable(rows).c_str());

    data::AirQualityGenerator generator(base.data);
    data::Dataset station =
        bench::ValueOrDie(generator.GenerateStation(0), "station");
    clustering::KMeansOptions km;
    km.seed = 5;
    auto sweep = bench::ValueOrDie(
        clustering::SweepK(station.features(), 2, 10, km), "sweep");
    std::printf("station-0 quantization diagnostics:\n");
    std::printf("%-4s %14s %12s\n", "K", "inertia", "silhouette");
    for (const auto& q : sweep) {
      std::printf("%-4zu %14.1f %12.3f\n", q.k, q.inertia, q.silhouette);
    }
  }

  // (c) Epsilon sensitivity.
  std::printf("\n(c) supporting-cluster threshold epsilon\n");
  {
    std::vector<fl::MechanismStats> rows;
    for (double epsilon : {0.05, 0.15, 0.3, 0.5}) {
      fl::ExperimentConfig config = base;
      config.federation.ranking.epsilon = epsilon;
      fl::Mechanism m{StrFormat("eps=%.2f", epsilon),
                      selection::PolicyKind::kQueryDriven, true,
                      fl::AggregationKind::kWeightedAveraging};
      rows.push_back(RunConfigured(config, m, "epsilon"));
    }
    std::printf("%s", fl::FormatMechanismTable(rows).c_str());
    std::printf("(expect data use to shrink as epsilon grows; loss degrades "
                "once supporting data gets too thin)\n");
  }
  bjson.WriteOrDie();
  return 0;
}
