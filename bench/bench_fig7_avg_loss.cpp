// Reproduces Figure 7: average loss of the four mechanisms — GT [7],
// Random [6], Averaging (ours, Eq. 6) and Weighted (ours, Eq. 7) — over the
// 200-query dynamic workload on the 10-node heterogeneous environment,
// for both LR and NN models (Table III hyper-parameters).
//
// Expected shape (paper): Weighted <= Averaging < GT < Random.

#include <cstdio>

#include "bench_util.h"

using namespace qens;

namespace {

void RunModel(ml::ModelKind kind, size_t queries, size_t epochs,
              size_t epochs_per_cluster, bench::BenchJson* bjson) {
  fl::ExperimentConfig config =
      bench::PaperConfig(data::Heterogeneity::kHeterogeneous);
  config.federation.hyper = ml::PaperHyperParams(kind);
  config.federation.hyper.epochs = epochs;
  config.federation.epochs_per_cluster = epochs_per_cluster;
  config.workload.num_queries = queries;

  fl::ExperimentRunner runner = bench::ValueOrDie(
      fl::ExperimentRunner::Create(config), "build experiment");

  std::printf("\n--- %s model, %zu queries ---\n",
              kind == ml::ModelKind::kLinearRegression ? "LR" : "NN",
              queries);
  std::vector<fl::MechanismStats> rows;
  for (const fl::Mechanism& mechanism : fl::Figure7Mechanisms()) {
    rows.push_back(bench::ValueOrDie(runner.RunMechanism(mechanism),
                                     mechanism.label.c_str()));
    bench::BenchRecord record = bench::MechanismRecord(rows.back());
    record.labels["model"] =
        kind == ml::ModelKind::kLinearRegression ? "LR" : "NN";
    bjson->Add(std::move(record));
  }
  std::printf("%s", fl::FormatMechanismTable(rows).c_str());

  // Shape checks against the paper's ordering.
  const double gt = rows[0].loss.mean();
  const double random = rows[1].loss.mean();
  const double averaging = rows[2].loss.mean();
  const double weighted = rows[3].loss.mean();
  std::printf(
      "shape checks: ours(Averaging) < Random: %s | ours(Weighted) < Random: "
      "%s | ours(Weighted) <= ours(Averaging): %s | ours < GT: %s\n",
      averaging < random ? "yes" : "NO", weighted < random ? "yes" : "NO",
      weighted <= averaging * 1.05 ? "yes" : "NO",
      weighted < gt ? "yes" : "NO");
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchJson bjson("bench_fig7_avg_loss", &argc, argv);
  bench::PrintHeader(
      "Figure 7 — average loss of GT, Random, Averaging (ours), Weighted "
      "(ours)");
  // LR at the paper's full workload; NN on a reduced stream (the shape is
  // identical and the from-scratch NN keeps the bench runtime in seconds).
  RunModel(ml::ModelKind::kLinearRegression, 200, 40, 15, &bjson);
  RunModel(ml::ModelKind::kNeuralNetwork, 30, 25, 8, &bjson);
  bjson.WriteOrDie();
  return 0;
}
