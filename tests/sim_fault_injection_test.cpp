// Tests for the seeded fault-injection substrate: schedule determinism
// (same seed => identical fault schedule, any query order), crash
// permanence, straggler slowdown bounds, link-loss determinism, and
// option validation.

#include "qens/sim/fault_injection.h"

#include <gtest/gtest.h>

namespace qens::sim {
namespace {

FaultPlanOptions BusyOptions(uint64_t seed = 42) {
  FaultPlanOptions o;
  o.seed = seed;
  o.crash_rate = 0.3;
  o.crash_horizon = 10;
  o.dropout_rate = 0.2;
  o.straggler_rate = 0.4;
  o.straggler_slowdown_min = 2.0;
  o.straggler_slowdown_max = 6.0;
  o.message_loss_rate = 0.25;
  return o;
}

TEST(FaultPlanTest, SameSeedSameSchedule) {
  const FaultPlanOptions options = BusyOptions();
  auto a = FaultPlan::Create(16, options);
  auto b = FaultPlan::Create(16, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->num_nodes(), b->num_nodes());
  for (size_t i = 0; i < a->num_nodes(); ++i) {
    EXPECT_EQ(a->node(i).crashes, b->node(i).crashes) << "node " << i;
    EXPECT_EQ(a->node(i).crash_round, b->node(i).crash_round) << "node " << i;
    EXPECT_EQ(a->node(i).straggler, b->node(i).straggler) << "node " << i;
    EXPECT_DOUBLE_EQ(a->node(i).slowdown, b->node(i).slowdown) << "node " << i;
  }
}

TEST(FaultPlanTest, DifferentSeedsDiverge) {
  auto a = FaultPlan::Create(64, BusyOptions(1));
  auto b = FaultPlan::Create(64, BusyOptions(2));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  size_t differing = 0;
  for (size_t i = 0; i < a->num_nodes(); ++i) {
    if (a->node(i).crashes != b->node(i).crashes ||
        a->node(i).straggler != b->node(i).straggler ||
        a->node(i).slowdown != b->node(i).slowdown) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 0u);
}

TEST(FaultPlanTest, ZeroRatesMeanNoFaults) {
  FaultPlanOptions options;
  options.seed = 7;
  auto plan = FaultPlan::Create(32, options);
  ASSERT_TRUE(plan.ok());
  for (const NodeFaultProfile& p : plan->profiles()) {
    EXPECT_FALSE(p.crashes);
    EXPECT_FALSE(p.straggler);
    EXPECT_DOUBLE_EQ(p.slowdown, 1.0);
  }
  FaultInjector injector(std::move(plan).value());
  for (size_t node = 0; node < 32; ++node) {
    for (size_t round = 0; round < 5; ++round) {
      EXPECT_TRUE(injector.IsAvailable(node, round));
      EXPECT_FALSE(injector.LoseMessage(0, node, round, 0));
    }
  }
}

TEST(FaultPlanTest, CrashRateOneCrashesEveryoneWithinHorizon) {
  FaultPlanOptions options;
  options.seed = 5;
  options.crash_rate = 1.0;
  options.crash_horizon = 8;
  auto plan = FaultPlan::Create(20, options);
  ASSERT_TRUE(plan.ok());
  for (const NodeFaultProfile& p : plan->profiles()) {
    EXPECT_TRUE(p.crashes);
    EXPECT_LT(p.crash_round, 8u);
  }
}

TEST(FaultPlanTest, StragglerSlowdownWithinConfiguredRange) {
  FaultPlanOptions options = BusyOptions();
  options.straggler_rate = 1.0;
  auto plan = FaultPlan::Create(50, options);
  ASSERT_TRUE(plan.ok());
  for (const NodeFaultProfile& p : plan->profiles()) {
    ASSERT_TRUE(p.straggler);
    EXPECT_GE(p.slowdown, options.straggler_slowdown_min);
    EXPECT_LE(p.slowdown, options.straggler_slowdown_max);
  }
}

TEST(FaultPlanTest, DescribeMentionsFaults) {
  FaultPlanOptions options = BusyOptions();
  options.crash_rate = 1.0;
  auto plan = FaultPlan::Create(4, options);
  ASSERT_TRUE(plan.ok());
  const std::string text = plan->Describe();
  EXPECT_NE(text.find("crash"), std::string::npos) << text;
}

TEST(FaultPlanTest, ValidatesOptions) {
  FaultPlanOptions bad;
  bad.crash_rate = -0.1;
  EXPECT_FALSE(FaultPlan::Create(4, bad).ok());
  bad = FaultPlanOptions();
  bad.dropout_rate = 1.5;
  EXPECT_FALSE(FaultPlan::Create(4, bad).ok());
  bad = FaultPlanOptions();
  bad.message_loss_rate = 2.0;
  EXPECT_FALSE(FaultPlan::Create(4, bad).ok());
  bad = FaultPlanOptions();
  bad.straggler_rate = 0.5;
  bad.straggler_slowdown_min = 0.5;  // Below 1: would speed nodes up.
  EXPECT_FALSE(FaultPlan::Create(4, bad).ok());
  bad = FaultPlanOptions();
  bad.straggler_rate = 0.5;
  bad.straggler_slowdown_min = 4.0;
  bad.straggler_slowdown_max = 2.0;  // Inverted range.
  EXPECT_FALSE(FaultPlan::Create(4, bad).ok());
  bad = FaultPlanOptions();
  bad.crash_rate = 0.5;
  bad.crash_horizon = 0;
  EXPECT_FALSE(FaultPlan::Create(4, bad).ok());
}

TEST(FaultInjectorTest, CrashesArePermanent) {
  FaultPlanOptions options;
  options.seed = 11;
  options.crash_rate = 1.0;
  options.crash_horizon = 6;
  auto plan = FaultPlan::Create(10, options);
  ASSERT_TRUE(plan.ok());
  FaultInjector injector(std::move(plan).value());
  for (size_t node = 0; node < 10; ++node) {
    const size_t crash = injector.plan().node(node).crash_round;
    for (size_t round = 0; round < 20; ++round) {
      EXPECT_EQ(injector.IsCrashed(node, round), round >= crash)
          << "node " << node << " round " << round;
    }
  }
}

TEST(FaultInjectorTest, DropoutIsTransient) {
  FaultPlanOptions options;
  options.seed = 13;
  options.dropout_rate = 0.5;
  auto plan = FaultPlan::Create(8, options);
  ASSERT_TRUE(plan.ok());
  FaultInjector injector(std::move(plan).value());
  // With p = 0.5 over 8 nodes x 40 rounds, both outcomes must occur, and a
  // dropped round must not imply the next round is dropped for every node
  // (transience: some node recovers).
  size_t dropped = 0, up = 0, recovered = 0;
  for (size_t node = 0; node < 8; ++node) {
    for (size_t round = 0; round < 40; ++round) {
      if (injector.IsDroppedOut(node, round)) {
        ++dropped;
        if (round + 1 < 40 && !injector.IsDroppedOut(node, round + 1)) {
          ++recovered;
        }
      } else {
        ++up;
      }
    }
  }
  EXPECT_GT(dropped, 0u);
  EXPECT_GT(up, 0u);
  EXPECT_GT(recovered, 0u);
}

TEST(FaultInjectorTest, AnswersAreQueryOrderIndependent) {
  const FaultPlanOptions options = BusyOptions(1234);
  auto plan_a = FaultPlan::Create(6, options);
  auto plan_b = FaultPlan::Create(6, options);
  ASSERT_TRUE(plan_a.ok());
  ASSERT_TRUE(plan_b.ok());
  FaultInjector a(std::move(plan_a).value());
  FaultInjector b(std::move(plan_b).value());
  // Query `a` forward and `b` backward: every answer must agree, because
  // each one is a pure function of its coordinates.
  struct Answer {
    bool available;
    bool lost;
    double slowdown;
  };
  std::vector<Answer> forward, backward;
  for (size_t node = 0; node < 6; ++node) {
    for (size_t round = 0; round < 10; ++round) {
      forward.push_back({a.IsAvailable(node, round),
                         a.LoseMessage(node, 0, round, 1),
                         a.SlowdownFactor(node, round)});
    }
  }
  for (size_t node = 6; node-- > 0;) {
    for (size_t round = 10; round-- > 0;) {
      backward.push_back({b.IsAvailable(node, round),
                          b.LoseMessage(node, 0, round, 1),
                          b.SlowdownFactor(node, round)});
    }
  }
  ASSERT_EQ(forward.size(), backward.size());
  for (size_t i = 0; i < forward.size(); ++i) {
    const Answer& f = forward[i];
    const Answer& r = backward[backward.size() - 1 - i];
    EXPECT_EQ(f.available, r.available);
    EXPECT_EQ(f.lost, r.lost);
    EXPECT_DOUBLE_EQ(f.slowdown, r.slowdown);
  }
}

TEST(FaultInjectorTest, MessageLossIsPerAttemptAndDeterministic) {
  FaultPlanOptions options;
  options.seed = 21;
  options.message_loss_rate = 0.5;
  auto plan = FaultPlan::Create(4, options);
  ASSERT_TRUE(plan.ok());
  FaultInjector injector(std::move(plan).value());
  size_t lost = 0, delivered = 0;
  for (size_t from = 0; from < 4; ++from) {
    for (size_t to = 0; to < 4; ++to) {
      for (size_t round = 0; round < 10; ++round) {
        for (size_t attempt = 0; attempt < 3; ++attempt) {
          const bool l1 = injector.LoseMessage(from, to, round, attempt);
          const bool l2 = injector.LoseMessage(from, to, round, attempt);
          EXPECT_EQ(l1, l2);  // Re-asking never flips the answer.
          l1 ? ++lost : ++delivered;
        }
      }
    }
  }
  EXPECT_GT(lost, 0u);
  EXPECT_GT(delivered, 0u);
}

TEST(FaultInjectorTest, LinkDirectionMatters) {
  FaultPlanOptions options;
  options.seed = 33;
  options.message_loss_rate = 0.5;
  auto plan = FaultPlan::Create(12, options);
  ASSERT_TRUE(plan.ok());
  FaultInjector injector(std::move(plan).value());
  // (from, to) and (to, from) are distinct links: over many samples the
  // two directions must disagree at least once.
  bool any_asymmetry = false;
  for (size_t a = 0; a < 12 && !any_asymmetry; ++a) {
    for (size_t b = a + 1; b < 12 && !any_asymmetry; ++b) {
      for (size_t round = 0; round < 10; ++round) {
        if (injector.LoseMessage(a, b, round, 0) !=
            injector.LoseMessage(b, a, round, 0)) {
          any_asymmetry = true;
          break;
        }
      }
    }
  }
  EXPECT_TRUE(any_asymmetry);
}

TEST(FaultInjectorTest, SlowdownIsAtLeastOne) {
  auto plan = FaultPlan::Create(30, BusyOptions(77));
  ASSERT_TRUE(plan.ok());
  FaultInjector injector(std::move(plan).value());
  for (size_t node = 0; node < 30; ++node) {
    for (size_t round = 0; round < 5; ++round) {
      EXPECT_GE(injector.SlowdownFactor(node, round), 1.0);
    }
  }
}

}  // namespace
}  // namespace qens::sim
