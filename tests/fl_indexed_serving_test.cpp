// End-to-end pin of the opt-in ranking accelerators inside the serving
// engine: a Fleet built with use_index / use_cache must produce outcomes
// bit-identical to the paper-exact scan fleet at every worker count, the
// shared index must actually be consulted (telemetry + RoundRecord
// counters), and the accelerators must stay strictly leader-private
// (per-session caches over one shared immutable index).

#include <gtest/gtest.h>

#include "qens/common/rng.h"
#include "qens/fl/query_server.h"
#include "qens/obs/metrics.h"

namespace qens::fl {
namespace {

data::Dataset MakeNodeData(double offset, double slope, uint64_t seed,
                           size_t n = 220) {
  Rng rng(seed);
  Matrix x(n, 1), y(n, 1);
  for (size_t i = 0; i < n; ++i) {
    x(i, 0) = offset + rng.Uniform(0, 10);
    y(i, 0) = slope * x(i, 0) + rng.Gaussian(0, 0.2);
  }
  return data::Dataset::Create(x, y).value();
}

FederationOptions FastOptions() {
  FederationOptions options;
  options.environment.kmeans.k = 3;
  options.ranking.epsilon = 0.1;
  options.query_driven.top_l = 4;
  options.hyper = ml::PaperHyperParams(ml::ModelKind::kLinearRegression);
  options.hyper.epochs = 15;
  options.epochs_per_cluster = 6;
  options.random_l = 2;
  options.seed = 77;
  return options;
}

FederationOptions AcceleratedOptions() {
  FederationOptions options = FastOptions();
  options.ranking.use_index = true;
  options.ranking.use_cache = true;
  return options;
}

std::vector<data::Dataset> MakeNodes() {
  return {MakeNodeData(0, 2.0, 1), MakeNodeData(0, 2.0, 2),
          MakeNodeData(0, 2.0, 3), MakeNodeData(0, 2.0, 4)};
}

query::RangeQuery QueryOver(double lo, double hi, uint64_t id) {
  query::RangeQuery q;
  q.id = id;
  q.region = query::HyperRectangle::FromFlatBounds({lo, hi}).value();
  return q;
}

/// Several sessions; each repeats its first query so the ranking cache has
/// guaranteed hits.
std::vector<SessionSpec> MakeSpecs() {
  std::vector<SessionSpec> specs;
  for (size_t s = 0; s < 3; ++s) {
    SessionSpec spec;
    spec.queries.push_back(QueryOver(0, 6.0 + static_cast<double>(s), 100 + s));
    spec.queries.push_back(QueryOver(0, 4.0, 200 + s));
    spec.queries.push_back(QueryOver(0, 6.0 + static_cast<double>(s), 100 + s));
    spec.rounds = 1;
    specs.push_back(std::move(spec));
  }
  return specs;
}

void ExpectIdenticalOutcomes(const QueryOutcome& a, const QueryOutcome& b) {
  EXPECT_EQ(a.skipped, b.skipped);
  EXPECT_EQ(a.selected_nodes, b.selected_nodes);
  EXPECT_EQ(a.round_survivors, b.round_survivors);
  EXPECT_EQ(a.samples_used, b.samples_used);
  if (a.skipped || b.skipped) return;
  EXPECT_DOUBLE_EQ(a.loss_model_avg, b.loss_model_avg);
  EXPECT_DOUBLE_EQ(a.loss_weighted, b.loss_weighted);
  EXPECT_DOUBLE_EQ(a.loss_fedavg, b.loss_fedavg);
  EXPECT_DOUBLE_EQ(a.sim_time_total, b.sim_time_total);
  EXPECT_DOUBLE_EQ(a.sim_time_parallel, b.sim_time_parallel);
  EXPECT_DOUBLE_EQ(a.sim_time_comm, b.sim_time_comm);
}

TEST(IndexedServingTest, FleetBuildsIndexOnlyWhenRequested) {
  auto plain = Fleet::Create(MakeNodes(), FastOptions());
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ((*plain)->ranking_index, nullptr);

  auto accel = Fleet::Create(MakeNodes(), AcceleratedOptions());
  ASSERT_TRUE(accel.ok());
  ASSERT_NE((*accel)->ranking_index, nullptr);
  EXPECT_EQ((*accel)->ranking_index->num_nodes(), 4u);

  // Sessions share the fleet's index (no per-session rebuild) and own
  // their cache.
  auto session = QuerySession::Create(*accel, QuerySessionOptions{});
  ASSERT_TRUE(session.ok());
  EXPECT_EQ(session->leader().cluster_index(), (*accel)->ranking_index.get());
  EXPECT_NE(session->leader().ranking_cache(), nullptr);
}

TEST(IndexedServingTest, AcceleratedServingIsBitIdenticalAtEveryWorkerCount) {
  auto baseline_fleet = Fleet::Create(MakeNodes(), FastOptions());
  ASSERT_TRUE(baseline_fleet.ok());
  auto accel_fleet = Fleet::Create(MakeNodes(), AcceleratedOptions());
  ASSERT_TRUE(accel_fleet.ok());
  const std::vector<SessionSpec> specs = MakeSpecs();

  auto baseline_server = QueryServer::Create(*baseline_fleet, ServingOptions{});
  ASSERT_TRUE(baseline_server.ok());
  auto expected = baseline_server->Serve(specs);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  for (size_t workers : {size_t{0}, size_t{2}, size_t{4}}) {
    ServingOptions serving;
    serving.num_workers = workers;
    auto server = QueryServer::Create(*accel_fleet, serving);
    ASSERT_TRUE(server.ok());
    auto results = server->Serve(specs);
    ASSERT_TRUE(results.ok()) << "workers=" << workers;
    ASSERT_EQ(results->size(), expected->size());
    for (size_t s = 0; s < results->size(); ++s) {
      const SessionResult& a = (*expected)[s];
      const SessionResult& b = (*results)[s];
      EXPECT_EQ(a.session_id, b.session_id);
      EXPECT_EQ(a.queries_run, b.queries_run);
      EXPECT_EQ(a.comm_messages, b.comm_messages);
      EXPECT_EQ(a.comm_bytes, b.comm_bytes);
      ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
      for (size_t i = 0; i < a.outcomes.size(); ++i) {
        ExpectIdenticalOutcomes(a.outcomes[i], b.outcomes[i]);
      }
    }
  }
}

TEST(IndexedServingTest, SessionTelemetryShowsIndexAndCacheUse) {
  auto fleet = Fleet::Create(MakeNodes(), AcceleratedOptions());
  ASSERT_TRUE(fleet.ok());
  auto session = QuerySession::Create(*fleet, QuerySessionOptions{});
  ASSERT_TRUE(session.ok());
  const query::RangeQuery q = QueryOver(0, 6, 1);
  ASSERT_TRUE(
      session->RunQuery(q, selection::PolicyKind::kQueryDriven, false).ok());
  ASSERT_TRUE(
      session->RunQuery(q, selection::PolicyKind::kQueryDriven, false).ok());
  const Leader::RankingTelemetry& t = session->leader().ranking_telemetry();
  EXPECT_GT(t.index_rankings, 0u);
  EXPECT_GT(t.cache_hits, 0u);  // Second run of the same query region.
  EXPECT_EQ(t.scan_rankings, 0u);
}

TEST(IndexedServingTest, RoundRecordsCarryAcceleratorCounters) {
  obs::MetricsRegistry::Enable();
  auto fleet = Fleet::Create(MakeNodes(), AcceleratedOptions());
  ASSERT_TRUE(fleet.ok());
  auto server = QueryServer::Create(*fleet, ServingOptions{});
  ASSERT_TRUE(server.ok());
  auto results = server->Serve(MakeSpecs());
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  size_t index_rankings = 0, cache_hits = 0, cache_misses = 0;
  for (const SessionResult& session : *results) {
    for (const QueryOutcome& outcome : session.outcomes) {
      for (size_t r = 0; r < outcome.round_records.size(); ++r) {
        const obs::RoundRecord& record = outcome.round_records[r];
        index_rankings += record.rank_index_rankings;
        cache_hits += record.rank_cache_hits;
        cache_misses += record.rank_cache_misses;
        if (r > 0) {  // Only a query's first record carries the deltas.
          EXPECT_EQ(record.rank_index_rankings, 0u);
        }
      }
    }
  }
  EXPECT_GT(index_rankings, 0u);
  EXPECT_GT(cache_hits, 0u);    // Each session repeats its first query.
  EXPECT_GT(cache_misses, 0u);  // First sighting of every region.
  obs::MetricsRegistry::Disable();
}

TEST(IndexedServingTest, ScanFleetRecordsNoAcceleratorCounters) {
  obs::MetricsRegistry::Enable();
  auto fleet = Fleet::Create(MakeNodes(), FastOptions());
  ASSERT_TRUE(fleet.ok());
  auto server = QueryServer::Create(*fleet, ServingOptions{});
  ASSERT_TRUE(server.ok());
  auto results = server->Serve(MakeSpecs());
  ASSERT_TRUE(results.ok());
  for (const SessionResult& session : *results) {
    for (const QueryOutcome& outcome : session.outcomes) {
      for (const obs::RoundRecord& record : outcome.round_records) {
        EXPECT_EQ(record.rank_index_rankings, 0u);
        EXPECT_EQ(record.rank_cache_hits, 0u);
        EXPECT_EQ(record.rank_cache_misses, 0u);
        EXPECT_EQ(record.rank_candidate_nodes, 0u);
      }
    }
  }
  obs::MetricsRegistry::Disable();
}

}  // namespace
}  // namespace qens::fl
