// Tests for node profiles and the Eq. 3/4 ranking math.

#include "qens/selection/ranking.h"

#include <gtest/gtest.h>

#include "qens/common/rng.h"

namespace qens::selection {
namespace {

using query::HyperRectangle;
using query::RangeQuery;

/// A profile with explicitly placed 1-D cluster boxes.
NodeProfile MakeProfile(size_t id,
                        const std::vector<std::pair<double, double>>& boxes,
                        size_t cluster_size = 10) {
  NodeProfile p;
  p.node_id = id;
  p.name = "test-node";
  for (const auto& [lo, hi] : boxes) {
    clustering::ClusterSummary c;
    c.centroid = {(lo + hi) / 2};
    c.bounds = HyperRectangle::FromFlatBounds({lo, hi}).value();
    c.size = cluster_size;
    p.clusters.push_back(c);
    p.total_samples += cluster_size;
  }
  return p;
}

RangeQuery MakeQuery(double lo, double hi) {
  RangeQuery q;
  q.region = HyperRectangle::FromFlatBounds({lo, hi}).value();
  return q;
}

TEST(RankNodeTest, FullySupportingNode) {
  // Two clusters both fully inside the query -> h = 1 each, K' = K = 2,
  // p = 2, r = 2 * (2/2) = 2.
  NodeProfile p = MakeProfile(0, {{1, 2}, {3, 4}});
  RankingOptions options;
  options.epsilon = 0.3;
  auto rank = RankNode(p, MakeQuery(0, 10), options);
  ASSERT_TRUE(rank.ok());
  EXPECT_EQ(rank->supporting_clusters, 2u);
  EXPECT_DOUBLE_EQ(rank->potential, 2.0);
  EXPECT_DOUBLE_EQ(rank->ranking, 2.0);
  EXPECT_EQ(rank->supporting_samples, 20u);
}

TEST(RankNodeTest, PartialSupportScalesRanking) {
  // One supporting cluster of two: r = p * (1/2).
  NodeProfile p = MakeProfile(1, {{1, 2}, {100, 200}});
  RankingOptions options;
  options.epsilon = 0.3;
  auto rank = RankNode(p, MakeQuery(0, 10), options);
  ASSERT_TRUE(rank.ok());
  EXPECT_EQ(rank->supporting_clusters, 1u);
  EXPECT_DOUBLE_EQ(rank->potential, 1.0);
  EXPECT_DOUBLE_EQ(rank->ranking, 0.5);
  EXPECT_EQ(rank->SupportingClusterIds(), (std::vector<size_t>{0}));
}

TEST(RankNodeTest, NoSupportYieldsZero) {
  NodeProfile p = MakeProfile(2, {{100, 200}, {300, 400}});
  RankingOptions options;
  auto rank = RankNode(p, MakeQuery(0, 10), options);
  ASSERT_TRUE(rank.ok());
  EXPECT_EQ(rank->supporting_clusters, 0u);
  EXPECT_DOUBLE_EQ(rank->ranking, 0.0);
  EXPECT_EQ(rank->supporting_samples, 0u);
}

TEST(RankNodeTest, EpsilonThresholdGates) {
  // Query [0,10] inside cluster [0,100]: h = 10/100 = 0.1.
  NodeProfile p = MakeProfile(3, {{0, 100}});
  RankingOptions strict;
  strict.epsilon = 0.2;
  auto r1 = RankNode(p, MakeQuery(0, 10), strict);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1->supporting_clusters, 0u);

  RankingOptions loose;
  loose.epsilon = 0.05;
  auto r2 = RankNode(p, MakeQuery(0, 10), loose);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->supporting_clusters, 1u);
  EXPECT_DOUBLE_EQ(r2->potential, 0.1);
}

TEST(RankNodeTest, EmptyClustersNeverSupport) {
  NodeProfile p = MakeProfile(4, {{0, 10}});
  p.clusters[0].size = 0;  // Empty cluster (k > m quantization artifact).
  RankingOptions options;
  auto rank = RankNode(p, MakeQuery(0, 10), options);
  ASSERT_TRUE(rank.ok());
  EXPECT_EQ(rank->supporting_clusters, 0u);
}

TEST(RankNodeTest, Errors) {
  NodeProfile p = MakeProfile(5, {{0, 10}});
  RankingOptions bad;
  bad.epsilon = 0.0;
  EXPECT_FALSE(RankNode(p, MakeQuery(0, 1), bad).ok());

  NodeProfile empty;
  empty.node_id = 9;
  RankingOptions options;
  EXPECT_FALSE(RankNode(empty, MakeQuery(0, 1), options).ok());

  // Dimensional mismatch between query and cluster bounds.
  RangeQuery q2;
  q2.region = HyperRectangle::FromFlatBounds({0, 1, 0, 1}).value();
  EXPECT_FALSE(RankNode(p, q2, options).ok());
}

TEST(RankNodesTest, SortsByRankingDescending) {
  std::vector<NodeProfile> profiles = {
      MakeProfile(0, {{100, 200}}),        // No support.
      MakeProfile(1, {{1, 2}, {3, 4}}),    // Full support (r = 2).
      MakeProfile(2, {{1, 2}, {50, 60}}),  // Half support (r = 0.5).
  };
  RankingOptions options;
  auto ranks = RankNodes(profiles, MakeQuery(0, 10), options);
  ASSERT_TRUE(ranks.ok());
  ASSERT_EQ(ranks->size(), 3u);
  EXPECT_EQ((*ranks)[0].node_id, 1u);
  EXPECT_EQ((*ranks)[1].node_id, 2u);
  EXPECT_EQ((*ranks)[2].node_id, 0u);
  EXPECT_GE((*ranks)[0].ranking, (*ranks)[1].ranking);
  EXPECT_GE((*ranks)[1].ranking, (*ranks)[2].ranking);
}

TEST(RankNodesTest, TiesBreakByNodeId) {
  std::vector<NodeProfile> profiles = {
      MakeProfile(7, {{1, 2}}),
      MakeProfile(3, {{1, 2}}),
  };
  RankingOptions options;
  auto ranks = RankNodes(profiles, MakeQuery(0, 10), options);
  ASSERT_TRUE(ranks.ok());
  EXPECT_EQ((*ranks)[0].node_id, 3u);
  EXPECT_EQ((*ranks)[1].node_id, 7u);
}

TEST(RankingPropertyTest, MoreOverlapNeverLowersRanking) {
  // Growing the query over a fixed profile never decreases K' and, with
  // full containment, the ranking reaches its maximum.
  NodeProfile p = MakeProfile(0, {{0, 10}, {20, 30}, {40, 50}});
  RankingOptions options;
  options.epsilon = 0.2;
  double prev_supporting = 0;
  for (double hi : {5.0, 15.0, 35.0, 55.0}) {
    auto rank = RankNode(p, MakeQuery(0, hi), options);
    ASSERT_TRUE(rank.ok());
    EXPECT_GE(rank->supporting_clusters + 0.0, prev_supporting);
    prev_supporting = static_cast<double>(rank->supporting_clusters);
  }
  auto full = RankNode(p, MakeQuery(-1, 100), options);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->supporting_clusters, 3u);
  EXPECT_DOUBLE_EQ(full->ranking, 3.0);
}

TEST(RankingPropertyTest, RankingBoundedByK) {
  // r_i = p_i * K'/K <= K (each h <= 1 so p <= K' <= K).
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::pair<double, double>> boxes;
    const size_t k = 1 + rng.UniformInt(uint64_t{6});
    for (size_t i = 0; i < k; ++i) {
      const double lo = rng.Uniform(-50, 50);
      boxes.emplace_back(lo, lo + rng.Uniform(0.1, 30));
    }
    NodeProfile p = MakeProfile(0, boxes);
    const double qlo = rng.Uniform(-60, 60);
    RankingOptions options;
    options.epsilon = rng.Uniform(0.05, 0.9);
    auto rank = RankNode(p, MakeQuery(qlo, qlo + rng.Uniform(0.1, 50)),
                         options);
    ASSERT_TRUE(rank.ok());
    EXPECT_GE(rank->ranking, 0.0);
    EXPECT_LE(rank->ranking, static_cast<double>(k));
    EXPECT_LE(rank->potential,
              static_cast<double>(rank->supporting_clusters) + 1e-12);
  }
}

TEST(NodeProfileTest, WireBytesGrowWithClusters) {
  NodeProfile one = MakeProfile(0, {{0, 1}});
  NodeProfile five = MakeProfile(0, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}});
  EXPECT_GT(five.WireBytes(), one.WireBytes());
}

}  // namespace
}  // namespace qens::selection
