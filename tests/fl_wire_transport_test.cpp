// Tests for the wire codec running through the serving stack: planner
// estimates pinned exactly against transport counters (single- and
// multi-round), raw-wire runs bit-identical to wire-off runs, the
// no-serialization accounting regression, and the shared seed-derivation
// helper (fl::ModelInitSeed).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "qens/common/rng.h"
#include "qens/fl/federation.h"
#include "qens/fl/planner.h"
#include "qens/fl/seed_derivation.h"
#include "qens/ml/model_codec.h"
#include "qens/ml/model_io.h"

namespace qens::fl {
namespace {

query::RangeQuery MakeQuery(double lo, double hi) {
  query::RangeQuery q;
  q.region = query::HyperRectangle::FromFlatBounds({lo, hi}).value();
  return q;
}

data::Dataset MakeNodeData(double offset, uint64_t seed) {
  Rng r(seed);
  Matrix x(200, 1), y(200, 1);
  for (size_t i = 0; i < 200; ++i) {
    x(i, 0) = offset + r.Uniform(0, 10);
    y(i, 0) = 2 * x(i, 0) + r.Gaussian(0, 0.1);
  }
  return data::Dataset::Create(x, y).value();
}

FederationOptions BaseOptions() {
  FederationOptions fed_options;
  fed_options.environment.kmeans.k = 3;
  fed_options.ranking.epsilon = 0.1;
  fed_options.query_driven.top_l = 2;
  fed_options.hyper = ml::PaperHyperParams(ml::ModelKind::kLinearRegression);
  fed_options.hyper.epochs = 10;
  fed_options.epochs_per_cluster = 5;
  fed_options.seed = 9;
  return fed_options;
}

PlannerOptions MatchingPlanOptions(const FederationOptions& fed_options,
                                   uint64_t session_seed) {
  PlannerOptions plan_options;
  plan_options.ranking = fed_options.ranking;
  plan_options.selection = fed_options.query_driven;
  plan_options.epochs_per_cluster = fed_options.epochs_per_cluster;
  plan_options.hyper = fed_options.hyper;
  plan_options.session_seed = session_seed;
  plan_options.wire = fed_options.wire;
  plan_options.strong_seed_mix = fed_options.strong_seed_mix;
  return plan_options;
}

/// Runs one query-driven query under `fed_options` on a session-private
/// network and returns {outcome, recorded down bytes, recorded up bytes,
/// planner est_comm_bytes, selected-node count}.
struct WireRunResult {
  QueryOutcome outcome;
  size_t down_bytes = 0;
  size_t up_bytes = 0;
  size_t est_comm_bytes = 0;
  size_t nodes = 0;
  size_t messages = 0;
};

WireRunResult RunPinned(const FederationOptions& fed_options, size_t rounds) {
  WireRunResult out;
  auto fleet = Fleet::Create(
      {MakeNodeData(0, 1), MakeNodeData(0, 2), MakeNodeData(50, 3)},
      fed_options);
  EXPECT_TRUE(fleet.ok());
  auto session = QuerySession::Create(*fleet, QuerySessionOptions{});
  EXPECT_TRUE(session.ok());

  query::RangeQuery q = MakeQuery(0, 10);
  auto internal = (*fleet)->InternalQuery(q);
  EXPECT_TRUE(internal.ok());
  auto profiles = (*fleet)->environment.Profiles();
  EXPECT_TRUE(profiles.ok());
  auto plan = PlanQuery(*profiles, {}, *internal,
                        MatchingPlanOptions(fed_options, session->seed()));
  EXPECT_TRUE(plan.ok());
  EXPECT_TRUE(plan->executable);

  auto outcome = session->RunQueryMultiRound(
      q, selection::PolicyKind::kQueryDriven, /*data_selectivity=*/true,
      rounds);
  EXPECT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome->skipped);

  const Transport& transport = session->transport();
  out.outcome = *outcome;
  out.down_bytes = transport.BytesWithTag("model-down");
  out.up_bytes = transport.BytesWithTag("model-up");
  out.est_comm_bytes = plan->est_comm_bytes;
  out.nodes = plan->nodes.size();
  out.messages = transport.total_messages();
  return out;
}

TEST(WireTransportTest, RawWirePinsPlannedBytesExactly) {
  // With the binary codec both directions are architecture-determined, so
  // the planner's est_comm_bytes must equal recorded down + up EXACTLY —
  // including the up-link, which the text format could only remeasure
  // after training.
  FederationOptions fed_options = BaseOptions();
  fed_options.wire.enabled = true;
  fed_options.wire.codec = ml::WireCodecKind::kRawF64;
  WireRunResult r = RunPinned(fed_options, /*rounds=*/1);
  ASSERT_GT(r.nodes, 0u);
  EXPECT_EQ(r.down_bytes + r.up_bytes, r.est_comm_bytes);
  // Raw is symmetric: same header, same 8-byte payload per param.
  EXPECT_EQ(r.down_bytes, r.up_bytes);
  EXPECT_EQ(r.messages, 2 * r.nodes);
}

TEST(WireTransportTest, QuantizedWirePinsPlannedBytesExactly) {
  // The NN model (64-unit hidden layer) gives the codec real tensors to
  // compress; the 2-param LR model is all per-tensor scale overhead.
  FederationOptions fed_options = BaseOptions();
  fed_options.hyper = ml::PaperHyperParams(ml::ModelKind::kNeuralNetwork);
  fed_options.hyper.epochs = 10;
  fed_options.wire.enabled = true;
  fed_options.wire.codec = ml::WireCodecKind::kQuant8;
  WireRunResult r = RunPinned(fed_options, /*rounds=*/1);
  ASSERT_GT(r.nodes, 0u);
  EXPECT_EQ(r.down_bytes + r.up_bytes, r.est_comm_bytes);
  EXPECT_EQ(r.down_bytes, r.up_bytes);  // Same codec both directions.
  // Quantized traffic must be well under raw: 1 byte/param + scales vs 8.
  FederationOptions raw_options = fed_options;
  raw_options.wire.codec = ml::WireCodecKind::kRawF64;
  WireRunResult raw = RunPinned(raw_options, /*rounds=*/1);
  EXPECT_LT(4 * r.down_bytes, raw.down_bytes);
  // And the answer stays usable.
  EXPECT_TRUE(std::isfinite(r.outcome.loss_weighted));
}

TEST(WireTransportTest, MultiRoundRecordedBytesAreRoundsTimesPlan) {
  // The plan prices one round; with architecture-determined sizes every
  // round costs the same, so R rounds record exactly R x est_comm_bytes.
  // (The historical text format broke this: each round's up-link length
  // drifted with the trained weights' hex digits.)
  for (ml::WireCodecKind codec :
       {ml::WireCodecKind::kRawF64, ml::WireCodecKind::kQuant4}) {
    FederationOptions fed_options = BaseOptions();
    fed_options.wire.enabled = true;
    fed_options.wire.codec = codec;
    const size_t rounds = 3;
    WireRunResult r = RunPinned(fed_options, rounds);
    ASSERT_GT(r.nodes, 0u);
    EXPECT_EQ(r.down_bytes + r.up_bytes, rounds * r.est_comm_bytes)
        << ml::WireCodecKindName(codec);
    EXPECT_EQ(r.messages, rounds * 2 * r.nodes);
  }
}

TEST(WireTransportTest, TopKUplinkCheaperAndPinned) {
  FederationOptions fed_options = BaseOptions();
  fed_options.hyper = ml::PaperHyperParams(ml::ModelKind::kNeuralNetwork);
  fed_options.hyper.epochs = 10;
  fed_options.wire.enabled = true;
  fed_options.wire.codec = ml::WireCodecKind::kTopK;
  fed_options.wire.top_k_fraction = 0.25;
  WireRunResult r = RunPinned(fed_options, /*rounds=*/1);
  ASSERT_GT(r.nodes, 0u);
  EXPECT_EQ(r.down_bytes + r.up_bytes, r.est_comm_bytes);
  // Down falls back to raw (absolute broadcast); up is the sparse delta.
  EXPECT_LT(r.up_bytes, r.down_bytes);
  EXPECT_TRUE(std::isfinite(r.outcome.loss_weighted));
}

TEST(WireTransportTest, RawWireRunIsBitIdenticalToWireOff) {
  // kRawF64 skips the lossy decode(encode(.)) round-trips entirely, so a
  // raw-wire run must produce bit-identical losses and training volume to
  // the historical (wire-off) protocol — only byte accounting changes.
  FederationOptions off_options = BaseOptions();
  FederationOptions raw_options = BaseOptions();
  raw_options.wire.enabled = true;
  raw_options.wire.codec = ml::WireCodecKind::kRawF64;
  WireRunResult off = RunPinned(off_options, /*rounds=*/2);
  WireRunResult raw = RunPinned(raw_options, /*rounds=*/2);
  EXPECT_EQ(off.outcome.selected_nodes, raw.outcome.selected_nodes);
  EXPECT_EQ(off.outcome.samples_used, raw.outcome.samples_used);
  EXPECT_EQ(off.outcome.loss_model_avg, raw.outcome.loss_model_avg);
  EXPECT_EQ(off.outcome.loss_weighted, raw.outcome.loss_weighted);
  EXPECT_EQ(off.outcome.loss_fedavg, raw.outcome.loss_fedavg);
  // The byte books differ by format, not by message count.
  EXPECT_EQ(off.messages, raw.messages);
  EXPECT_NE(off.down_bytes, raw.down_bytes);
}

TEST(WireTransportTest, AccountingPathNeverSerializes) {
  // Regression for the O(params) hot path: RunQuery's byte accounting must
  // not build a single text serialization, wire on or off.
  for (const bool wire_on : {false, true}) {
    FederationOptions fed_options = BaseOptions();
    fed_options.wire.enabled = wire_on;
    auto fleet = Fleet::Create(
        {MakeNodeData(0, 1), MakeNodeData(0, 2), MakeNodeData(50, 3)},
        fed_options);
    ASSERT_TRUE(fleet.ok());
    auto session = QuerySession::Create(*fleet, QuerySessionOptions{});
    ASSERT_TRUE(session.ok());
    const size_t before = ml::internal::SerializeCallCountForTest();
    auto outcome = session->RunQuery(MakeQuery(0, 10),
                                     selection::PolicyKind::kQueryDriven,
                                     /*data_selectivity=*/true);
    ASSERT_TRUE(outcome.ok());
    EXPECT_EQ(ml::internal::SerializeCallCountForTest(), before)
        << "wire_on=" << wire_on;
  }
}

TEST(SeedDerivationTest, DefaultMatchesHistoricalFormula) {
  // The default must stay bit-compatible with the formula both callers
  // (query_session, planner) used before it was deduplicated.
  EXPECT_EQ(ModelInitSeed(0, 0), 0u);
  EXPECT_EQ(ModelInitSeed(17, 5), 17ull * 1000003ull + 5ull);
  EXPECT_EQ(ModelInitSeed(9, 123), 9ull * 1000003ull + 123ull);
}

TEST(SeedDerivationTest, HistoricalFormulaCollides) {
  // (s, id) and (s + 1, id - 1000003) alias under the affine formula; the
  // opt-in strong mixer separates them.
  const uint64_t a = ModelInitSeed(7, 1000003);
  const uint64_t b = ModelInitSeed(8, 0);
  EXPECT_EQ(a, b);
  const uint64_t sa = ModelInitSeed(7, 1000003, /*strong_mix=*/true);
  const uint64_t sb = ModelInitSeed(8, 0, /*strong_mix=*/true);
  EXPECT_NE(sa, sb);
  EXPECT_NE(sa, a);  // The mixer is a different stream entirely.
}

TEST(SeedDerivationTest, StrongMixIsDeterministicAndSpreads) {
  EXPECT_EQ(ModelInitSeed(42, 7, true), ModelInitSeed(42, 7, true));
  // Nearby inputs land far apart (avalanche sanity, not a PRNG test).
  const uint64_t x = ModelInitSeed(42, 7, true);
  const uint64_t y = ModelInitSeed(42, 8, true);
  EXPECT_NE(x, y);
  EXPECT_NE(x ^ y, 1u);
}

TEST(WireTransportTest, StrongSeedMixKeepsPlannerAndSessionAgreed) {
  // Planner and session must derive the same init model under the strong
  // mixer too — est bytes stay exact.
  FederationOptions fed_options = BaseOptions();
  fed_options.wire.enabled = true;
  fed_options.wire.codec = ml::WireCodecKind::kQuant8;
  fed_options.strong_seed_mix = true;
  WireRunResult r = RunPinned(fed_options, /*rounds=*/1);
  ASSERT_GT(r.nodes, 0u);
  EXPECT_EQ(r.down_bytes + r.up_bytes, r.est_comm_bytes);
  EXPECT_TRUE(std::isfinite(r.outcome.loss_weighted));
}

}  // namespace
}  // namespace qens::fl
