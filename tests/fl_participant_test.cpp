// Tests for participant-side local training: per-cluster incremental
// fitting (data selectivity) vs full-data training, cost accounting.

#include "qens/fl/participant.h"

#include <gtest/gtest.h>

#include "qens/common/rng.h"

namespace qens::fl {
namespace {

/// Node data in two well-separated x-blobs with one linear relation. Kept
/// at unit scale: the participant API trains on data exactly as given (the
/// Federation layer owns normalization), and Table III's lr = 0.03 is only
/// stable at unit scale.
data::Dataset TwoBlobData(uint64_t seed, size_t per_blob = 150) {
  Rng rng(seed);
  Matrix x(2 * per_blob, 1), y(2 * per_blob, 1);
  for (size_t i = 0; i < per_blob; ++i) {
    x(i, 0) = rng.Uniform(0, 1);
    x(per_blob + i, 0) = rng.Uniform(2, 3);
  }
  for (size_t i = 0; i < 2 * per_blob; ++i) {
    y(i, 0) = 3.0 * x(i, 0) + rng.Gaussian(0, 0.05);
  }
  return data::Dataset::Create(x, y).value();
}

sim::EdgeNode MakeNode(uint64_t seed) {
  sim::EdgeNode node(0, "n0", TwoBlobData(seed), 1.0);
  clustering::KMeansOptions km;
  km.k = 2;
  km.seed = seed;
  EXPECT_TRUE(node.Quantize(km).ok());
  return node;
}

ml::SequentialModel FreshModel(uint64_t seed) {
  Rng rng(seed);
  return ml::BuildModel(ml::ModelKind::kLinearRegression, 1, &rng).value();
}

LocalTrainOptions FastOptions() {
  LocalTrainOptions options;
  options.hyper = ml::PaperHyperParams(ml::ModelKind::kLinearRegression);
  options.hyper.epochs = 30;
  options.epochs_per_cluster = 15;
  options.seed = 3;
  return options;
}

TEST(ParticipantTest, TrainOnSupportingClustersUsesOnlyThoseRows) {
  sim::EdgeNode node = MakeNode(1);
  const sim::CostModel cost;
  auto result = TrainOnSupportingClusters(node, FreshModel(1), {0},
                                          FastOptions(), cost);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->samples_used, node.NumSamples());
  EXPECT_EQ(result->samples_total, node.NumSamples());
  EXPECT_EQ(result->cluster_final_loss.size(), 1u);
  EXPECT_GT(result->sim_train_seconds, 0.0);
}

TEST(ParticipantTest, AllClustersCoverWholeNode) {
  sim::EdgeNode node = MakeNode(2);
  const sim::CostModel cost;
  auto result = TrainOnSupportingClusters(node, FreshModel(2), {0, 1},
                                          FastOptions(), cost);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->samples_used, node.NumSamples());
  EXPECT_EQ(result->cluster_final_loss.size(), 2u);
}

TEST(ParticipantTest, IncrementalTrainingLearnsRelation) {
  sim::EdgeNode node = MakeNode(3);
  const sim::CostModel cost;
  auto result = TrainOnSupportingClusters(node, FreshModel(3), {0, 1},
                                          FastOptions(), cost);
  ASSERT_TRUE(result.ok());
  // The learned model approximates y = 3x on the node's data.
  auto pred = result->model.Predict(node.local_data().features());
  ASSERT_TRUE(pred.ok());
  auto loss = ml::ComputeLoss(ml::LossKind::kMse, *pred,
                              node.local_data().targets());
  ASSERT_TRUE(loss.ok());
  EXPECT_LT(*loss, 0.5);
}

TEST(ParticipantTest, GlobalModelNotMutated) {
  sim::EdgeNode node = MakeNode(4);
  const sim::CostModel cost;
  ml::SequentialModel global = FreshModel(4);
  const std::vector<double> before = global.GetParameters();
  ASSERT_TRUE(
      TrainOnSupportingClusters(node, global, {0}, FastOptions(), cost).ok());
  EXPECT_EQ(global.GetParameters(), before);
}

TEST(ParticipantTest, TrainOnFullDataUsesEverything) {
  sim::EdgeNode node = MakeNode(5);
  const sim::CostModel cost;
  auto result = TrainOnFullData(node, FreshModel(5), FastOptions(), cost);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->samples_used, node.NumSamples());
  EXPECT_GT(result->samples_seen, node.NumSamples());  // epochs > 1.
}

TEST(ParticipantTest, SelectiveTrainingIsCheaperThanFull) {
  sim::EdgeNode node = MakeNode(6);
  const sim::CostModel cost;
  auto selective = TrainOnSupportingClusters(node, FreshModel(6), {0},
                                             FastOptions(), cost);
  auto full = TrainOnFullData(node, FreshModel(6), FastOptions(), cost);
  ASSERT_TRUE(selective.ok());
  ASSERT_TRUE(full.ok());
  // Fig. 8's shape at the single-node level: selectivity trains on fewer
  // samples and costs less simulated time.
  EXPECT_LT(selective->samples_used, full->samples_used);
  EXPECT_LT(selective->sim_train_seconds, full->sim_train_seconds);
}

TEST(ParticipantTest, CapacityScalesSimTime) {
  data::Dataset d = TwoBlobData(7);
  sim::EdgeNode slow(0, "slow", d, 0.5);
  sim::EdgeNode fast(1, "fast", d, 2.0);
  clustering::KMeansOptions km;
  km.k = 2;
  ASSERT_TRUE(slow.Quantize(km).ok());
  ASSERT_TRUE(fast.Quantize(km).ok());
  const sim::CostModel cost;
  auto rs = TrainOnFullData(slow, FreshModel(7), FastOptions(), cost);
  auto rf = TrainOnFullData(fast, FreshModel(7), FastOptions(), cost);
  ASSERT_TRUE(rs.ok());
  ASSERT_TRUE(rf.ok());
  EXPECT_GT(rs->sim_train_seconds, rf->sim_train_seconds);
}

TEST(ParticipantTest, Errors) {
  sim::EdgeNode node = MakeNode(8);
  const sim::CostModel cost;
  EXPECT_FALSE(TrainOnSupportingClusters(node, FreshModel(8), {},
                                         FastOptions(), cost)
                   .ok());
  LocalTrainOptions bad = FastOptions();
  bad.epochs_per_cluster = 0;
  EXPECT_FALSE(
      TrainOnSupportingClusters(node, FreshModel(8), {0}, bad, cost).ok());
  EXPECT_FALSE(TrainOnSupportingClusters(node, FreshModel(8), {99},
                                         FastOptions(), cost)
                   .ok());
}

}  // namespace
}  // namespace qens::fl
