// Pins the RoundEngine consolidation: RunQuery and RunQueryMultiRound are
// both thin drivers over the SAME per-round state machine, so for a
// 1-round configuration they must produce bit-identical outcomes and
// bit-identical per-round telemetry — on the fault-free path and with the
// fault-injection and Byzantine layers active. Also pins that a
// QuerySession seeded with FederationOptions::seed reproduces the
// Federation facade exactly (the facade IS such a session).

#include <gtest/gtest.h>

#include "qens/common/rng.h"
#include "qens/fl/federation.h"
#include "qens/obs/metrics.h"

namespace qens::fl {
namespace {

data::Dataset MakeNodeData(double offset, double slope, uint64_t seed,
                           size_t n = 220) {
  Rng rng(seed);
  Matrix x(n, 1), y(n, 1);
  for (size_t i = 0; i < n; ++i) {
    x(i, 0) = offset + rng.Uniform(0, 10);
    y(i, 0) = slope * x(i, 0) + rng.Gaussian(0, 0.2);
  }
  return data::Dataset::Create(x, y).value();
}

FederationOptions FastOptions() {
  FederationOptions options;
  options.environment.kmeans.k = 3;
  options.ranking.epsilon = 0.1;
  options.query_driven.top_l = 4;
  options.hyper = ml::PaperHyperParams(ml::ModelKind::kLinearRegression);
  options.hyper.epochs = 15;
  options.epochs_per_cluster = 6;
  options.random_l = 2;
  options.seed = 77;
  return options;
}

std::vector<data::Dataset> MakeNodes() {
  return {MakeNodeData(0, 2.0, 1), MakeNodeData(0, 2.0, 2),
          MakeNodeData(0, 2.0, 3), MakeNodeData(0, 2.0, 4)};
}

query::RangeQuery QueryOver(double lo, double hi) {
  query::RangeQuery q;
  q.id = 3;
  q.region = query::HyperRectangle::FromFlatBounds({lo, hi}).value();
  return q;
}

FederationOptions FaultyByzantineOptions() {
  FederationOptions options = FastOptions();
  auto& ft = options.fault_tolerance;
  ft.enabled = true;
  ft.faults.seed = 19;
  ft.faults.dropout_rate = 0.2;
  ft.faults.straggler_rate = 0.4;
  ft.faults.message_loss_rate = 0.15;
  ft.faults.corruption_rate = 0.4;
  ft.faults.corruption_kinds = {sim::CorruptionKind::kNanUpdate};
  ft.min_quorum_frac = 0.25;
  auto& byz = options.byzantine;
  byz.enabled = true;
  byz.aggregator = AggregationKind::kCoordinateMedian;
  byz.quarantine_rounds = 1;
  byz.validator.check_finite = true;
  return options;
}

void ExpectIdenticalOutcomes(const QueryOutcome& a, const QueryOutcome& b) {
  EXPECT_EQ(a.skipped, b.skipped);
  EXPECT_EQ(a.selected_nodes, b.selected_nodes);
  EXPECT_EQ(a.round_survivors, b.round_survivors);
  EXPECT_EQ(a.failed_nodes, b.failed_nodes);
  EXPECT_EQ(a.deadline_missed_nodes, b.deadline_missed_nodes);
  EXPECT_EQ(a.dropped_nodes, b.dropped_nodes);
  EXPECT_EQ(a.degraded_rounds, b.degraded_rounds);
  EXPECT_EQ(a.messages_lost, b.messages_lost);
  EXPECT_EQ(a.send_retries, b.send_retries);
  EXPECT_EQ(a.samples_used, b.samples_used);
  EXPECT_EQ(a.rejected_nodes, b.rejected_nodes);
  EXPECT_EQ(a.quarantined_nodes, b.quarantined_nodes);
  EXPECT_EQ(a.rejected_updates, b.rejected_updates);
  EXPECT_EQ(a.quarantined_skips, b.quarantined_skips);
  EXPECT_EQ(a.has_loss_robust, b.has_loss_robust);
  if (a.skipped || b.skipped) return;
  EXPECT_DOUBLE_EQ(a.loss_model_avg, b.loss_model_avg);
  EXPECT_DOUBLE_EQ(a.loss_weighted, b.loss_weighted);
  EXPECT_DOUBLE_EQ(a.loss_fedavg, b.loss_fedavg);
  if (a.has_loss_robust && b.has_loss_robust) {
    EXPECT_DOUBLE_EQ(a.loss_robust, b.loss_robust);
  }
  EXPECT_DOUBLE_EQ(a.sim_time_total, b.sim_time_total);
  EXPECT_DOUBLE_EQ(a.sim_time_parallel, b.sim_time_parallel);
  EXPECT_DOUBLE_EQ(a.sim_time_comm, b.sim_time_comm);
  ASSERT_EQ(a.survivor_weights.size(), b.survivor_weights.size());
  for (size_t i = 0; i < a.survivor_weights.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.survivor_weights[i], b.survivor_weights[i]);
  }
}

void ExpectIdenticalRoundRecords(const QueryOutcome& a,
                                 const QueryOutcome& b) {
  ASSERT_EQ(a.round_records.size(), b.round_records.size());
  for (size_t r = 0; r < a.round_records.size(); ++r) {
    const obs::RoundRecord& ra = a.round_records[r];
    const obs::RoundRecord& rb = b.round_records[r];
    EXPECT_EQ(ra.session, rb.session);
    EXPECT_EQ(ra.query_id, rb.query_id);
    EXPECT_EQ(ra.round, rb.round);
    EXPECT_EQ(ra.policy, rb.policy);
    EXPECT_EQ(ra.aggregation, rb.aggregation);
    EXPECT_EQ(ra.engaged, rb.engaged);
    EXPECT_EQ(ra.survivors, rb.survivors);
    EXPECT_EQ(ra.rejected, rb.rejected);
    EXPECT_EQ(ra.quarantined, rb.quarantined);
    EXPECT_EQ(ra.quorum_met, rb.quorum_met);
    EXPECT_DOUBLE_EQ(ra.parallel_seconds, rb.parallel_seconds);
    EXPECT_DOUBLE_EQ(ra.total_train_seconds, rb.total_train_seconds);
    EXPECT_DOUBLE_EQ(ra.comm_seconds, rb.comm_seconds);
    EXPECT_EQ(ra.has_loss, rb.has_loss);
    if (ra.has_loss && rb.has_loss) {
      EXPECT_DOUBLE_EQ(ra.loss, rb.loss);
    }
    ASSERT_EQ(ra.nodes.size(), rb.nodes.size());
    for (size_t i = 0; i < ra.nodes.size(); ++i) {
      EXPECT_EQ(ra.nodes[i].node_id, rb.nodes[i].node_id);
      EXPECT_EQ(ra.nodes[i].fate, rb.nodes[i].fate);
      EXPECT_DOUBLE_EQ(ra.nodes[i].train_seconds, rb.nodes[i].train_seconds);
      EXPECT_DOUBLE_EQ(ra.nodes[i].comm_seconds, rb.nodes[i].comm_seconds);
      EXPECT_EQ(ra.nodes[i].samples_used, rb.nodes[i].samples_used);
      EXPECT_EQ(ra.nodes[i].straggler, rb.nodes[i].straggler);
    }
  }
}

// RunQuery and RunQueryMultiRound(..., 1) drive the same RoundEngine, so
// on identically built federations a 1-round config must match bit for
// bit — outcomes AND per-round telemetry.
TEST(RoundEngineTest, RunQueryMatchesOneRoundMultiRound) {
  obs::MetricsRegistry::Enable();
  auto fed_a = Federation::Create(MakeNodes(), FastOptions());
  auto fed_b = Federation::Create(MakeNodes(), FastOptions());
  ASSERT_TRUE(fed_a.ok());
  ASSERT_TRUE(fed_b.ok());
  for (int i = 0; i < 3; ++i) {
    auto a = fed_a->RunQuery(QueryOver(0, 10),
                             selection::PolicyKind::kQueryDriven, true);
    auto b = fed_b->RunQueryMultiRound(
        QueryOver(0, 10), selection::PolicyKind::kQueryDriven, true, 1);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_FALSE(a->skipped);
    EXPECT_EQ(a->rounds, b->rounds);
    ExpectIdenticalOutcomes(*a, *b);
    ASSERT_EQ(a->round_records.size(), 1u);
    EXPECT_EQ(a->round_records[0].session, 0u);  // Sequential facade.
    ExpectIdenticalRoundRecords(*a, *b);
  }
  obs::MetricsRegistry::Disable();
}

// The fault + Byzantine plumbing lives in the engine exactly once: both
// drivers must advance the injector schedule, the quarantine ledger, and
// the validator identically.
TEST(RoundEngineTest, FaultAndByzantinePlumbingIsShared) {
  obs::MetricsRegistry::Enable();
  auto fed_a = Federation::Create(MakeNodes(), FaultyByzantineOptions());
  auto fed_b = Federation::Create(MakeNodes(), FaultyByzantineOptions());
  ASSERT_TRUE(fed_a.ok());
  ASSERT_TRUE(fed_b.ok());
  for (int i = 0; i < 4; ++i) {
    auto a = fed_a->RunQuery(QueryOver(0, 10),
                             selection::PolicyKind::kQueryDriven, true);
    auto b = fed_b->RunQueryMultiRound(
        QueryOver(0, 10), selection::PolicyKind::kQueryDriven, true, 1);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ExpectIdenticalOutcomes(*a, *b);
    ExpectIdenticalRoundRecords(*a, *b);
    EXPECT_EQ(fed_a->fault_round(), fed_b->fault_round());
  }
  obs::MetricsRegistry::Disable();
}

// A QuerySession seeded with the fleet's FederationOptions::seed IS the
// sequential Federation: same selections, same losses, same accounting.
// (The session uses a private network here, so only relative byte deltas
// are comparable, not the profile traffic recorded at fleet build.)
TEST(RoundEngineTest, SessionSeededWithOptionsSeedMatchesFederation) {
  auto fed = Federation::Create(MakeNodes(), FastOptions());
  ASSERT_TRUE(fed.ok());
  auto fleet = Fleet::Create(MakeNodes(), FastOptions());
  ASSERT_TRUE(fleet.ok());
  auto session = QuerySession::Create(*fleet, QuerySessionOptions{});
  ASSERT_TRUE(session.ok());
  EXPECT_EQ(session->seed(), FastOptions().seed);
  for (int i = 0; i < 2; ++i) {
    auto from_fed = fed->RunQueryMultiRound(
        QueryOver(0, 10), selection::PolicyKind::kQueryDriven, true, 2);
    auto from_session = session->RunQueryMultiRound(
        QueryOver(0, 10), selection::PolicyKind::kQueryDriven, true, 2);
    ASSERT_TRUE(from_fed.ok());
    ASSERT_TRUE(from_session.ok());
    ExpectIdenticalOutcomes(*from_fed, *from_session);
  }
}

// The Random policy's per-query stream advance must also be shared: after
// interleaving both drivers, two federations stay in lockstep.
TEST(RoundEngineTest, RandomPolicyStreamAdvanceIsShared) {
  auto fed_a = Federation::Create(MakeNodes(), FastOptions());
  auto fed_b = Federation::Create(MakeNodes(), FastOptions());
  ASSERT_TRUE(fed_a.ok());
  ASSERT_TRUE(fed_b.ok());
  for (int i = 0; i < 3; ++i) {
    auto a = fed_a->RunQuery(QueryOver(0, 10),
                             selection::PolicyKind::kRandom, false);
    auto b = fed_b->RunQueryMultiRound(QueryOver(0, 10),
                                       selection::PolicyKind::kRandom,
                                       false, 1);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->selected_nodes, b->selected_nodes);
    ExpectIdenticalOutcomes(*a, *b);
  }
}

}  // namespace
}  // namespace qens::fl
