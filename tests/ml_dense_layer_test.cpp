// Tests for DenseLayer: forward math, backward vs numerical gradients,
// parameter flattening.

#include "qens/ml/dense_layer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "qens/ml/loss.h"

namespace qens::ml {
namespace {

TEST(DenseLayerTest, ForwardLinearMath) {
  DenseLayer layer(2, 1, Activation::kIdentity);
  layer.weights()(0, 0) = 2.0;
  layer.weights()(1, 0) = -1.0;
  layer.bias()[0] = 0.5;
  Matrix x{{3, 4}};
  auto y = layer.Forward(x, false);
  ASSERT_TRUE(y.ok());
  EXPECT_DOUBLE_EQ((*y)(0, 0), 2.0 * 3 - 1.0 * 4 + 0.5);
}

TEST(DenseLayerTest, ForwardBatch) {
  DenseLayer layer(1, 2, Activation::kIdentity);
  layer.weights()(0, 0) = 1.0;
  layer.weights()(0, 1) = -1.0;
  Matrix x{{1}, {2}, {3}};
  auto y = layer.Forward(x, false);
  ASSERT_TRUE(y.ok());
  EXPECT_EQ(y->rows(), 3u);
  EXPECT_EQ(y->cols(), 2u);
  EXPECT_DOUBLE_EQ((*y)(2, 1), -3.0);
}

TEST(DenseLayerTest, ForwardShapeMismatch) {
  DenseLayer layer(3, 1, Activation::kIdentity);
  Matrix x(2, 2);
  EXPECT_TRUE(layer.Forward(x, false).status().IsInvalidArgument());
}

TEST(DenseLayerTest, ReluClampsNegativePreactivations) {
  DenseLayer layer(1, 1, Activation::kRelu);
  layer.weights()(0, 0) = 1.0;
  Matrix x{{-5.0}};
  auto y = layer.Forward(x, false);
  ASSERT_TRUE(y.ok());
  EXPECT_DOUBLE_EQ((*y)(0, 0), 0.0);
}

TEST(DenseLayerTest, BackwardRequiresCachedForward) {
  DenseLayer layer(1, 1, Activation::kIdentity);
  DenseGradients grads;
  Matrix g{{1.0}};
  EXPECT_TRUE(layer.Backward(g, &grads).status().IsFailedPrecondition());
}

TEST(DenseLayerTest, GlorotInitBounded) {
  DenseLayer layer(10, 10, Activation::kRelu);
  Rng rng(3);
  layer.InitGlorot(&rng);
  const double limit = std::sqrt(6.0 / 20.0);
  bool any_nonzero = false;
  for (double w : layer.weights().data()) {
    EXPECT_LE(std::fabs(w), limit);
    any_nonzero |= w != 0.0;
  }
  EXPECT_TRUE(any_nonzero);
  for (double b : layer.bias()) EXPECT_EQ(b, 0.0);
}

TEST(DenseLayerTest, ParamFlattenRoundTrip) {
  DenseLayer layer(2, 3, Activation::kTanh);
  Rng rng(5);
  layer.InitGlorot(&rng);
  std::vector<double> flat;
  layer.FlattenParams(&flat);
  ASSERT_EQ(flat.size(), layer.ParameterCount());
  ASSERT_EQ(flat.size(), 2u * 3u + 3u);

  DenseLayer other(2, 3, Activation::kTanh);
  size_t offset = 0;
  ASSERT_TRUE(other.UnflattenParams(flat, &offset).ok());
  EXPECT_EQ(offset, flat.size());
  EXPECT_EQ(other.weights(), layer.weights());
  EXPECT_EQ(other.bias(), layer.bias());
}

TEST(DenseLayerTest, UnflattenTruncatedFails) {
  DenseLayer layer(2, 2, Activation::kIdentity);
  std::vector<double> flat(3, 0.0);  // Needs 6.
  size_t offset = 0;
  EXPECT_TRUE(layer.UnflattenParams(flat, &offset).IsInvalidArgument());
}

TEST(DenseLayerTest, ApplyDeltaShiftsParams) {
  DenseLayer layer(1, 1, Activation::kIdentity);
  DenseGradients delta;
  delta.d_weights = Matrix{{2.0}};
  delta.d_bias = {3.0};
  ASSERT_TRUE(layer.ApplyDelta(0.5, delta).ok());
  EXPECT_DOUBLE_EQ(layer.weights()(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(layer.bias()[0], 1.5);
}

// Gradient correctness: analytic backward vs central finite differences of
// the MSE loss, over each activation.
class DenseLayerGradCheck : public ::testing::TestWithParam<Activation> {};

TEST_P(DenseLayerGradCheck, BackwardMatchesNumericalGradient) {
  const Activation act = GetParam();
  const size_t in = 3, out = 2, batch = 4;
  DenseLayer layer(in, out, act);
  Rng rng(11);
  layer.InitGlorot(&rng);
  for (double& b : layer.bias()) b = rng.Uniform(-0.1, 0.1);

  Matrix x(batch, in);
  Matrix target(batch, out);
  for (double& v : x.data()) v = rng.Uniform(-1, 1);
  for (double& v : target.data()) v = rng.Uniform(-1, 1);

  auto loss_of = [&](DenseLayer& l) -> double {
    Matrix y = l.Forward(x, false).value();
    return ComputeLoss(LossKind::kMse, y, target).value();
  };

  // Analytic gradients.
  Matrix y = layer.Forward(x, true).value();
  Matrix dl = ComputeLossGrad(LossKind::kMse, y, target).value();
  DenseGradients grads;
  ASSERT_TRUE(layer.Backward(dl, &grads).ok());

  const double eps = 1e-6;
  // Check a spread of weight entries.
  for (size_t r = 0; r < in; ++r) {
    for (size_t c = 0; c < out; ++c) {
      DenseLayer lo = layer, hi = layer;
      lo.weights()(r, c) -= eps;
      hi.weights()(r, c) += eps;
      const double numeric = (loss_of(hi) - loss_of(lo)) / (2 * eps);
      EXPECT_NEAR(grads.d_weights(r, c), numeric, 1e-5)
          << "w(" << r << "," << c << ") act=" << ActivationName(act);
    }
  }
  // Bias entries.
  for (size_t c = 0; c < out; ++c) {
    DenseLayer lo = layer, hi = layer;
    lo.bias()[c] -= eps;
    hi.bias()[c] += eps;
    const double numeric = (loss_of(hi) - loss_of(lo)) / (2 * eps);
    EXPECT_NEAR(grads.d_bias[c], numeric, 1e-5) << "b(" << c << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(AllActivations, DenseLayerGradCheck,
                         ::testing::Values(Activation::kIdentity,
                                           Activation::kRelu,
                                           Activation::kSigmoid,
                                           Activation::kTanh));

TEST(DenseLayerTest, BackwardInputGradientMatchesNumerical) {
  DenseLayer layer(2, 2, Activation::kSigmoid);
  Rng rng(13);
  layer.InitGlorot(&rng);
  Matrix x{{0.4, -0.3}};
  Matrix target{{0.1, 0.9}};

  Matrix y = layer.Forward(x, true).value();
  Matrix dl = ComputeLossGrad(LossKind::kMse, y, target).value();
  DenseGradients grads;
  Matrix dx = layer.Backward(dl, &grads).value();

  const double eps = 1e-6;
  for (size_t c = 0; c < 2; ++c) {
    Matrix xlo = x, xhi = x;
    xlo(0, c) -= eps;
    xhi(0, c) += eps;
    const double lo =
        ComputeLoss(LossKind::kMse, layer.Forward(xlo, false).value(), target)
            .value();
    const double hi =
        ComputeLoss(LossKind::kMse, layer.Forward(xhi, false).value(), target)
            .value();
    EXPECT_NEAR(dx(0, c), (hi - lo) / (2 * eps), 1e-5);
  }
}

}  // namespace
}  // namespace qens::ml
