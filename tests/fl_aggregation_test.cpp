// Tests for the aggregation rules: Eq. 6 (equal prediction average), Eq. 7
// (ranking-weighted, lambda normalization), FedAvg parameters, ensemble.

#include "qens/fl/aggregation.h"

#include <limits>

#include <gtest/gtest.h>

namespace qens::fl {
namespace {

/// A 1-feature linear model y = w x + b.
ml::SequentialModel Linear(double w, double b) {
  ml::SequentialModel m;
  EXPECT_TRUE(m.AddLayer(1, 1, ml::Activation::kIdentity).ok());
  m.layer(0).weights()(0, 0) = w;
  m.layer(0).bias()[0] = b;
  return m;
}

TEST(AggregationTest, Eq6EqualAverage) {
  // Models y = 2x and y = 4x at x = 1: average 3.
  std::vector<ml::SequentialModel> models = {Linear(2, 0), Linear(4, 0)};
  Matrix x{{1.0}};
  auto pred = AggregatePredictions(models, x);
  ASSERT_TRUE(pred.ok());
  EXPECT_DOUBLE_EQ((*pred)(0, 0), 3.0);
}

TEST(AggregationTest, Eq6SingleModelIsIdentity) {
  std::vector<ml::SequentialModel> models = {Linear(5, 1)};
  Matrix x{{2.0}};
  auto pred = AggregatePredictions(models, x);
  ASSERT_TRUE(pred.ok());
  EXPECT_DOUBLE_EQ((*pred)(0, 0), 11.0);
}

TEST(AggregationTest, Eq7WeightsNormalizeToLambda) {
  // Rankings 1 and 3 -> lambdas 0.25 / 0.75.
  std::vector<ml::SequentialModel> models = {Linear(0, 0), Linear(0, 4)};
  Matrix x{{1.0}};
  auto pred = AggregatePredictionsWeighted(models, {1.0, 3.0}, x);
  ASSERT_TRUE(pred.ok());
  EXPECT_DOUBLE_EQ((*pred)(0, 0), 0.25 * 0.0 + 0.75 * 4.0);
}

TEST(AggregationTest, Eq7EqualWeightsMatchEq6) {
  std::vector<ml::SequentialModel> models = {Linear(1, 1), Linear(3, -1)};
  Matrix x{{0.5}, {2.0}};
  auto a = AggregatePredictions(models, x);
  auto b = AggregatePredictionsWeighted(models, {2.0, 2.0}, x);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_LT(a->MaxAbsDiff(*b), 1e-12);
}

TEST(AggregationTest, Eq7ScaleInvariantInWeights) {
  std::vector<ml::SequentialModel> models = {Linear(1, 0), Linear(2, 0)};
  Matrix x{{1.0}};
  auto a = AggregatePredictionsWeighted(models, {1.0, 4.0}, x);
  auto b = AggregatePredictionsWeighted(models, {10.0, 40.0}, x);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ((*a)(0, 0), (*b)(0, 0));
}

TEST(AggregationTest, WeightErrors) {
  std::vector<ml::SequentialModel> models = {Linear(1, 0), Linear(2, 0)};
  Matrix x{{1.0}};
  EXPECT_FALSE(AggregatePredictionsWeighted(models, {1.0}, x).ok());
  EXPECT_FALSE(AggregatePredictionsWeighted(models, {0.0, 0.0}, x).ok());
  EXPECT_FALSE(AggregatePredictionsWeighted(models, {1.0, -1.0}, x).ok());
  EXPECT_FALSE(AggregatePredictions({}, x).ok());
}

TEST(FedAvgTest, ParameterAverage) {
  std::vector<ml::SequentialModel> models = {Linear(2, 0), Linear(4, 2)};
  auto merged = FedAvgParameters(models, {1.0, 1.0});
  ASSERT_TRUE(merged.ok());
  EXPECT_DOUBLE_EQ(merged->layer(0).weights()(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(merged->layer(0).bias()[0], 1.0);
}

TEST(FedAvgTest, WeightedParameterAverage) {
  std::vector<ml::SequentialModel> models = {Linear(0, 0), Linear(4, 0)};
  auto merged = FedAvgParameters(models, {3.0, 1.0});
  ASSERT_TRUE(merged.ok());
  EXPECT_DOUBLE_EQ(merged->layer(0).weights()(0, 0), 1.0);
}

TEST(FedAvgTest, ForLinearModelsMatchesPredictionAverage) {
  // Parameter averaging and prediction averaging coincide exactly for
  // linear models — a useful sanity identity.
  std::vector<ml::SequentialModel> models = {Linear(2, 1), Linear(-4, 3)};
  Matrix x{{0.7}, {-1.3}};
  auto merged = FedAvgParameters(models, {1.0, 1.0});
  ASSERT_TRUE(merged.ok());
  auto from_params = merged->Predict(x);
  auto from_preds = AggregatePredictions(models, x);
  ASSERT_TRUE(from_params.ok());
  ASSERT_TRUE(from_preds.ok());
  EXPECT_LT(from_params->MaxAbsDiff(*from_preds), 1e-12);
}

TEST(FedAvgTest, ArchitectureMismatchFails) {
  ml::SequentialModel nn;
  ASSERT_TRUE(nn.AddLayer(1, 4, ml::Activation::kRelu).ok());
  ASSERT_TRUE(nn.AddLayer(4, 1, ml::Activation::kIdentity).ok());
  std::vector<ml::SequentialModel> models = {Linear(1, 0), nn};
  EXPECT_FALSE(FedAvgParameters(models, {1.0, 1.0}).ok());
}

TEST(EnsembleTest, PredictAllKinds) {
  auto ensemble =
      EnsembleModel::Create({Linear(2, 0), Linear(4, 0)}, {1.0, 3.0});
  ASSERT_TRUE(ensemble.ok());
  Matrix x{{1.0}};
  EXPECT_DOUBLE_EQ(
      ensemble->Predict(x, AggregationKind::kModelAveraging).value()(0, 0),
      3.0);
  EXPECT_DOUBLE_EQ(
      ensemble->Predict(x, AggregationKind::kWeightedAveraging).value()(0, 0),
      0.25 * 2 + 0.75 * 4);
  EXPECT_DOUBLE_EQ(
      ensemble->Predict(x, AggregationKind::kFedAvgParameters).value()(0, 0),
      0.25 * 2 + 0.75 * 4);  // Linear: coincides with weighted.
}

TEST(EnsembleTest, CreateErrors) {
  EXPECT_FALSE(EnsembleModel::Create({}, {}).ok());
  EXPECT_FALSE(EnsembleModel::Create({Linear(1, 0)}, {1.0, 2.0}).ok());
  EXPECT_FALSE(EnsembleModel::Create({Linear(1, 0)}, {-1.0}).ok());
}

TEST(AggregationKindTest, NamesRoundTrip) {
  for (AggregationKind kind :
       {AggregationKind::kModelAveraging, AggregationKind::kWeightedAveraging,
        AggregationKind::kFedAvgParameters, AggregationKind::kCoordinateMedian,
        AggregationKind::kTrimmedMean,
        AggregationKind::kNormClippedFedAvg}) {
    EXPECT_EQ(ParseAggregationKind(AggregationKindName(kind)).value(), kind);
  }
  EXPECT_EQ(ParseAggregationKind("weighted").value(),
            AggregationKind::kWeightedAveraging);
  EXPECT_EQ(ParseAggregationKind("median").value(),
            AggregationKind::kCoordinateMedian);
  EXPECT_EQ(ParseAggregationKind("trimmed").value(),
            AggregationKind::kTrimmedMean);
  EXPECT_EQ(ParseAggregationKind("clipped").value(),
            AggregationKind::kNormClippedFedAvg);
  EXPECT_FALSE(ParseAggregationKind("krum").ok());
}

TEST(FedAvgTest, NonFiniteParametersRejected) {
  std::vector<ml::SequentialModel> models = {
      Linear(std::numeric_limits<double>::quiet_NaN(), 0), Linear(2, 0)};
  EXPECT_FALSE(FedAvgParameters(models, {1.0, 1.0}).ok());
  Matrix x{{1.0}};
  EXPECT_FALSE(AggregatePredictions(models, x).ok());
  EXPECT_FALSE(AggregatePredictionsWeighted(models, {1.0, 1.0}, x).ok());
}

}  // namespace
}  // namespace qens::fl
