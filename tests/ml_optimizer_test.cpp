// Tests for SGD and Adam: single-step math, convergence on a convex
// problem, state reset, factory.

#include "qens/ml/optimizer.h"

#include <gtest/gtest.h>

#include "qens/ml/loss.h"

namespace qens::ml {
namespace {

SequentialModel ScalarModel(double w, double b) {
  SequentialModel m;
  EXPECT_TRUE(m.AddLayer(1, 1, Activation::kIdentity).ok());
  m.layer(0).weights()(0, 0) = w;
  m.layer(0).bias()[0] = b;
  return m;
}

std::vector<DenseGradients> GradsOf(SequentialModel* m, const Matrix& x,
                                    const Matrix& y) {
  Matrix pred = m->Forward(x).value();
  Matrix dl = ComputeLossGrad(LossKind::kMse, pred, y).value();
  return m->Backward(dl).value();
}

TEST(SgdTest, SingleStepMatchesHandMath) {
  // Model y = w x, data point (x=1, y=0), w=1: dL/dw = 2 w = 2.
  SequentialModel m = ScalarModel(1.0, 0.0);
  Matrix x{{1.0}};
  Matrix y{{0.0}};
  SgdOptimizer sgd(0.1);
  ASSERT_TRUE(sgd.Step(&m, GradsOf(&m, x, y)).ok());
  EXPECT_NEAR(m.layer(0).weights()(0, 0), 1.0 - 0.1 * 2.0, 1e-12);
}

TEST(SgdTest, ConvergesOnLinearProblem) {
  // Fit y = 3x - 1 exactly.
  SequentialModel m = ScalarModel(0.0, 0.0);
  Matrix x{{-1}, {0}, {1}, {2}};
  Matrix y{{-4}, {-1}, {2}, {5}};
  SgdOptimizer sgd(0.05);
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(sgd.Step(&m, GradsOf(&m, x, y)).ok());
  }
  EXPECT_NEAR(m.layer(0).weights()(0, 0), 3.0, 1e-6);
  EXPECT_NEAR(m.layer(0).bias()[0], -1.0, 1e-6);
}

TEST(SgdTest, MomentumAcceleratesDescent) {
  Matrix x{{1}};
  Matrix y{{10}};
  SequentialModel plain = ScalarModel(0.0, 0.0);
  SequentialModel with_mom = ScalarModel(0.0, 0.0);
  SgdOptimizer sgd(0.01);
  SgdOptimizer mom(0.01, 0.9);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(sgd.Step(&plain, GradsOf(&plain, x, y)).ok());
    ASSERT_TRUE(mom.Step(&with_mom, GradsOf(&with_mom, x, y)).ok());
  }
  const double plain_err =
      ComputeLoss(LossKind::kMse, plain.Predict(x).value(), y).value();
  const double mom_err =
      ComputeLoss(LossKind::kMse, with_mom.Predict(x).value(), y).value();
  EXPECT_LT(mom_err, plain_err);
}

TEST(AdamTest, FirstStepIsLearningRateSized) {
  // Adam's bias-corrected first step is ~lr * sign(grad).
  SequentialModel m = ScalarModel(1.0, 0.0);
  Matrix x{{1.0}};
  Matrix y{{0.0}};
  AdamOptimizer adam(0.1);
  ASSERT_TRUE(adam.Step(&m, GradsOf(&m, x, y)).ok());
  EXPECT_NEAR(m.layer(0).weights()(0, 0), 1.0 - 0.1, 1e-6);
}

TEST(AdamTest, ConvergesOnLinearProblem) {
  SequentialModel m = ScalarModel(0.0, 0.0);
  Matrix x{{-1}, {0}, {1}, {2}};
  Matrix y{{-4}, {-1}, {2}, {5}};
  AdamOptimizer adam(0.05);
  for (int i = 0; i < 3000; ++i) {
    ASSERT_TRUE(adam.Step(&m, GradsOf(&m, x, y)).ok());
  }
  EXPECT_NEAR(m.layer(0).weights()(0, 0), 3.0, 1e-3);
  EXPECT_NEAR(m.layer(0).bias()[0], -1.0, 1e-3);
}

TEST(OptimizerTest, GradientShapeValidation) {
  SequentialModel m = ScalarModel(1.0, 0.0);
  SgdOptimizer sgd(0.1);
  std::vector<DenseGradients> bad(2);  // Model has one layer.
  EXPECT_TRUE(sgd.Step(&m, bad).IsInvalidArgument());

  std::vector<DenseGradients> wrong_shape(1);
  wrong_shape[0].d_weights = Matrix(2, 2);
  wrong_shape[0].d_bias = {0.0};
  EXPECT_TRUE(sgd.Step(&m, wrong_shape).IsInvalidArgument());
}

TEST(OptimizerTest, ResetClearsState) {
  SequentialModel m = ScalarModel(0.0, 0.0);
  Matrix x{{1}};
  Matrix y{{5}};
  SgdOptimizer mom(0.01, 0.9);
  ASSERT_TRUE(mom.Step(&m, GradsOf(&m, x, y)).ok());
  const double w_after_one = m.layer(0).weights()(0, 0);

  // Fresh model + reset optimizer should reproduce step one exactly.
  SequentialModel m2 = ScalarModel(0.0, 0.0);
  mom.Reset();
  ASSERT_TRUE(mom.Step(&m2, GradsOf(&m2, x, y)).ok());
  EXPECT_DOUBLE_EQ(m2.layer(0).weights()(0, 0), w_after_one);
}

TEST(OptimizerFactoryTest, MakeByName) {
  EXPECT_EQ(MakeOptimizer("sgd", 0.1).value()->Name(), "sgd");
  EXPECT_EQ(MakeOptimizer("Adam", 0.1).value()->Name(), "adam");
  EXPECT_FALSE(MakeOptimizer("rmsprop", 0.1).ok());
  EXPECT_FALSE(MakeOptimizer("sgd", 0.0).ok());
  EXPECT_FALSE(MakeOptimizer("sgd", -1.0).ok());
}

TEST(OptimizerTest, LearningRateAccessors) {
  SgdOptimizer sgd(0.25);
  EXPECT_DOUBLE_EQ(sgd.learning_rate(), 0.25);
  sgd.set_learning_rate(0.5);
  EXPECT_DOUBLE_EQ(sgd.learning_rate(), 0.5);
}

}  // namespace
}  // namespace qens::ml
