// Integration tests of the NN model family: the 64-unit ReLU network must
// fit the nonlinear V-shaped response the heterogeneous generator uses,
// where the linear model structurally cannot.

#include <gtest/gtest.h>

#include <cmath>

#include "qens/common/rng.h"
#include "qens/ml/metrics.h"
#include "qens/ml/model_factory.h"

namespace qens::ml {
namespace {

/// V-shaped data y = |x| with light noise, x in [-1, 1] (normalized scale).
void MakeVData(size_t n, uint64_t seed, Matrix* x, Matrix* y) {
  Rng rng(seed);
  *x = Matrix(n, 1);
  *y = Matrix(n, 1);
  for (size_t i = 0; i < n; ++i) {
    const double xi = rng.Uniform(-1.0, 1.0);
    (*x)(i, 0) = xi;
    (*y)(i, 0) = std::abs(xi) + rng.Gaussian(0, 0.01);
  }
}

double FitAndScore(ModelKind kind, const Matrix& x, const Matrix& y,
                   size_t epochs) {
  Rng rng(5);
  SequentialModel model = BuildModel(kind, 1, &rng).value();
  auto trainer = BuildTrainer(kind, 5).value();
  trainer->mutable_options().epochs = epochs;
  trainer->mutable_options().validation_split = 0.0;
  EXPECT_TRUE(trainer->Fit(&model, x, y).ok());
  Matrix pred = model.Predict(x).value();
  return EvaluateRegression(pred, y).value().mse;
}

TEST(NnIntegrationTest, NnFitsVShapeLrCannot) {
  Matrix x, y;
  MakeVData(600, 1, &x, &y);
  const double lr_mse = FitAndScore(ModelKind::kLinearRegression, x, y, 60);
  const double nn_mse = FitAndScore(ModelKind::kNeuralNetwork, x, y, 120);
  // LR's best possible on y = |x| over symmetric x is the flat line with
  // residual variance ~var(|x|) ~ 0.083; the NN should get far below.
  EXPECT_GT(lr_mse, 0.05);
  EXPECT_LT(nn_mse, 0.02);
  EXPECT_LT(nn_mse, lr_mse / 2.0);
}

TEST(NnIntegrationTest, NnTrainsStablyWithAdam) {
  Matrix x, y;
  MakeVData(300, 2, &x, &y);
  Rng rng(7);
  SequentialModel model = BuildModel(ModelKind::kNeuralNetwork, 1, &rng).value();
  auto trainer = BuildTrainer(ModelKind::kNeuralNetwork, 7).value();
  trainer->mutable_options().epochs = 40;
  auto report = trainer->Fit(&model, x, y);
  ASSERT_TRUE(report.ok());
  // Monotone-ish improvement: final well below the first epoch.
  EXPECT_LT(report->train_loss.back(), report->train_loss.front() * 0.5);
  for (double loss : report->train_loss) {
    EXPECT_TRUE(std::isfinite(loss));
  }
}

TEST(NnIntegrationTest, NnHandlesMultiFeatureInput) {
  // y = x0^2 + 0.5 x1, 3 features (one irrelevant).
  Rng rng(9);
  const size_t n = 500;
  Matrix x(n, 3), y(n, 1);
  for (size_t i = 0; i < n; ++i) {
    for (size_t d = 0; d < 3; ++d) x(i, d) = rng.Uniform(-1, 1);
    y(i, 0) = x(i, 0) * x(i, 0) + 0.5 * x(i, 1) + rng.Gaussian(0, 0.01);
  }
  Rng init(11);
  SequentialModel model = BuildModel(ModelKind::kNeuralNetwork, 3, &init).value();
  auto trainer = BuildTrainer(ModelKind::kNeuralNetwork, 11).value();
  trainer->mutable_options().epochs = 120;
  trainer->mutable_options().validation_split = 0.0;
  ASSERT_TRUE(trainer->Fit(&model, x, y).ok());
  Matrix pred = model.Predict(x).value();
  const auto metrics = EvaluateRegression(pred, y).value();
  EXPECT_GT(metrics.r_squared, 0.9);
}

}  // namespace
}  // namespace qens::ml
