// Tests for string helpers: split/trim/join/parse/format.

#include "qens/common/string_util.h"

#include <gtest/gtest.h>

namespace qens {
namespace {

TEST(SplitTest, BasicFields) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, PreservesEmptyFields) {
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(SplitTest, NoDelimiterSingleField) {
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(SplitTest, EmptyInputYieldsOneEmptyField) {
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(TrimTest, StripsBothEnds) {
  EXPECT_EQ(Trim("  hi \t\n"), "hi");
  EXPECT_EQ(Trim("hi"), "hi");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(JoinTest, Basic) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(PrefixSuffixTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_FALSE(StartsWith("hello", "lo"));
  EXPECT_TRUE(EndsWith("hello", "lo"));
  EXPECT_FALSE(EndsWith("hello", "he"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_FALSE(StartsWith("", "x"));
}

TEST(ToLowerTest, AsciiOnly) {
  EXPECT_EQ(ToLower("MiXeD 42"), "mixed 42");
}

TEST(ParseDoubleTest, ValidForms) {
  EXPECT_DOUBLE_EQ(ParseDouble("3.25").value(), 3.25);
  EXPECT_DOUBLE_EQ(ParseDouble("  -1e3 ").value(), -1000.0);
  EXPECT_DOUBLE_EQ(ParseDouble("0x1p-1").value(), 0.5);  // Hex float.
}

TEST(ParseDoubleTest, RejectsGarbage) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("1.5x").ok());
  EXPECT_FALSE(ParseDouble("1.5 2.5").ok());
}

TEST(ParseIntTest, ValidForms) {
  EXPECT_EQ(ParseInt("42").value(), 42);
  EXPECT_EQ(ParseInt(" -7 ").value(), -7);
  EXPECT_EQ(ParseInt("0").value(), 0);
}

TEST(ParseIntTest, RejectsGarbage) {
  EXPECT_FALSE(ParseInt("").ok());
  EXPECT_FALSE(ParseInt("4.5").ok());
  EXPECT_FALSE(ParseInt("12a").ok());
}

TEST(ParseIntTest, OutOfRange) {
  EXPECT_TRUE(ParseInt("999999999999999999999999").status().IsOutOfRange());
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d + %d = %d", 1, 2, 3), "1 + 2 = 3");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("%s", "plain"), "plain");
}

TEST(StrFormatTest, LongOutput) {
  const std::string big(500, 'x');
  EXPECT_EQ(StrFormat("%s", big.c_str()).size(), 500u);
}

}  // namespace
}  // namespace qens
