// Tests for the leader-side ranking cache: hit and miss paths are bitwise
// identical to the uncached leader, quantization-boundary queries that share
// a hash key never alias (exact-geometry verification), LRU eviction order
// is pinned, and RecordRoundResult invalidates the cache because
// reliability feeds every NodeRank.

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "qens/fl/leader.h"
#include "qens/selection/cluster_index.h"
#include "qens/selection/ranking.h"
#include "qens/selection/ranking_cache.h"

namespace qens::selection {
namespace {

clustering::ClusterSummary MakeCluster(const std::vector<double>& flat,
                                       size_t size) {
  clustering::ClusterSummary cluster;
  cluster.bounds = query::HyperRectangle::FromFlatBounds(flat).value();
  cluster.size = size;
  return cluster;
}

std::vector<NodeProfile> MakeProfiles() {
  std::vector<NodeProfile> profiles(3);
  profiles[0].node_id = 0;
  profiles[0].clusters = {MakeCluster({0, 2, 0, 2}, 10)};
  profiles[1].node_id = 1;
  profiles[1].clusters = {MakeCluster({1, 3, 1, 3}, 6),
                          MakeCluster({4, 6, 4, 6}, 4)};
  profiles[2].node_id = 2;
  profiles[2].clusters = {MakeCluster({5, 9, 5, 9}, 12)};
  for (auto& p : profiles) {
    for (const auto& c : p.clusters) p.total_samples += c.size;
  }
  return profiles;
}

query::RangeQuery MakeQuery(const std::vector<double>& flat, uint64_t id = 1) {
  query::RangeQuery q;
  q.id = id;
  q.region = query::HyperRectangle::FromFlatBounds(flat).value();
  return q;
}

query::HyperRectangle MakeRegion(const std::vector<double>& flat) {
  return query::HyperRectangle::FromFlatBounds(flat).value();
}

std::vector<NodeRank> MarkerRanks(size_t node_id) {
  NodeRank rank;
  rank.node_id = node_id;
  rank.ranking = static_cast<double>(node_id) + 0.5;
  return {rank};
}

TEST(RankingCacheTest, HitAndMissPathsAreBitwiseIdenticalThroughLeader) {
  RankingOptions cached_options;
  cached_options.use_cache = true;
  fl::Leader cached(MakeProfiles(), cached_options, QueryDrivenOptions{});
  fl::Leader plain(MakeProfiles(), RankingOptions{}, QueryDrivenOptions{});
  ASSERT_NE(cached.ranking_cache(), nullptr);
  ASSERT_EQ(plain.ranking_cache(), nullptr);

  const query::RangeQuery q = MakeQuery({0.5, 2.5, 0.5, 2.5});
  for (int round = 0; round < 3; ++round) {  // Miss, then two hits.
    auto from_cache = cached.Rank(q);
    auto from_scan = plain.Rank(q);
    ASSERT_TRUE(from_cache.ok());
    ASSERT_TRUE(from_scan.ok());
    std::string diff;
    EXPECT_TRUE(RankingsBitwiseEqual(*from_scan, *from_cache,
                                     cached_options, &diff))
        << diff;
  }
  EXPECT_EQ(cached.ranking_telemetry().cache_misses, 1u);
  EXPECT_EQ(cached.ranking_telemetry().cache_hits, 2u);
  EXPECT_EQ(plain.ranking_telemetry().cache_hits, 0u);
}

TEST(RankingCacheTest, QuantizationBoundaryQueriesDoNotAlias) {
  // With quantum 1.0 both regions quantize to identical cell coordinates,
  // so they share a hash key — the exact-geometry check must still keep
  // them apart.
  RankingCacheOptions options;
  options.quantum = 1.0;
  const query::HyperRectangle a = MakeRegion({0.1, 0.9});
  const query::HyperRectangle b = MakeRegion({0.2, 0.8});
  ASSERT_EQ(RankingCache::QuantizedKey(a, options.quantum),
            RankingCache::QuantizedKey(b, options.quantum));

  RankingCache cache(options);
  cache.Insert(a, MarkerRanks(10));
  EXPECT_EQ(cache.Lookup(b), nullptr);  // Same key, different geometry.
  cache.Insert(b, MarkerRanks(20));
  const auto* got_a = cache.Lookup(a);
  const auto* got_b = cache.Lookup(b);
  ASSERT_NE(got_a, nullptr);
  ASSERT_NE(got_b, nullptr);
  EXPECT_EQ((*got_a)[0].node_id, 10u);
  EXPECT_EQ((*got_b)[0].node_id, 20u);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 2u);
}

TEST(RankingCacheTest, EvictionOrderIsPinnedLru) {
  RankingCacheOptions options;
  options.capacity = 2;
  const query::HyperRectangle a = MakeRegion({0, 1});
  const query::HyperRectangle b = MakeRegion({1, 2});
  const query::HyperRectangle c = MakeRegion({2, 3});

  {
    RankingCache cache(options);
    cache.Insert(a, MarkerRanks(1));
    cache.Insert(b, MarkerRanks(2));
    cache.Insert(c, MarkerRanks(3));  // Evicts a (least recently used).
    EXPECT_EQ(cache.Lookup(a), nullptr);
    EXPECT_NE(cache.Lookup(b), nullptr);
    EXPECT_NE(cache.Lookup(c), nullptr);
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_EQ(cache.size(), 2u);
  }
  {
    RankingCache cache(options);
    cache.Insert(a, MarkerRanks(1));
    cache.Insert(b, MarkerRanks(2));
    ASSERT_NE(cache.Lookup(a), nullptr);  // Touch a: now b is LRU.
    cache.Insert(c, MarkerRanks(3));      // Evicts b.
    EXPECT_NE(cache.Lookup(a), nullptr);
    EXPECT_EQ(cache.Lookup(b), nullptr);
    EXPECT_NE(cache.Lookup(c), nullptr);
  }
}

TEST(RankingCacheTest, ReinsertReplacesInPlace) {
  RankingCache cache(RankingCacheOptions{});
  const query::HyperRectangle a = MakeRegion({0, 1});
  cache.Insert(a, MarkerRanks(1));
  cache.Insert(a, MarkerRanks(2));  // Same exact region: replace, not grow.
  EXPECT_EQ(cache.size(), 1u);
  const auto* got = cache.Lookup(a);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ((*got)[0].node_id, 2u);
}

TEST(RankingCacheTest, CapacityZeroNeverStores) {
  RankingCacheOptions options;
  options.capacity = 0;
  RankingCache cache(options);
  const query::HyperRectangle a = MakeRegion({0, 1});
  cache.Insert(a, MarkerRanks(1));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Lookup(a), nullptr);
}

TEST(RankingCacheTest, ClearKeepsStats) {
  RankingCache cache(RankingCacheOptions{});
  const query::HyperRectangle a = MakeRegion({0, 1});
  cache.Insert(a, MarkerRanks(1));
  ASSERT_NE(cache.Lookup(a), nullptr);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Lookup(a), nullptr);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().insertions, 1u);
}

TEST(RankingCacheTest, SetEpochInvalidatesOnlyOnChange) {
  RankingCache cache(RankingCacheOptions{});
  const query::HyperRectangle a = MakeRegion({0, 1});
  const query::HyperRectangle b = MakeRegion({1, 2});
  EXPECT_EQ(cache.epoch(), 0u);
  cache.Insert(a, MarkerRanks(1));
  cache.Insert(b, MarkerRanks(2));

  cache.SetEpoch(0);  // Unchanged epoch: no-op, entries survive.
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_NE(cache.Lookup(a), nullptr);

  cache.SetEpoch(3);  // Online refresh happened: old geometry is invalid.
  EXPECT_EQ(cache.epoch(), 3u);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Lookup(a), nullptr);
  EXPECT_EQ(cache.Lookup(b), nullptr);
  EXPECT_EQ(cache.stats().insertions, 2u);  // Stats survive, like Clear.

  cache.Insert(a, MarkerRanks(7));  // Refills normally at the new epoch.
  cache.SetEpoch(3);
  const auto* got = cache.Lookup(a);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ((*got)[0].node_id, 7u);
}

TEST(RankingCacheTest, RecordRoundResultInvalidatesLeaderCache) {
  RankingOptions options;
  options.use_cache = true;
  options.reliability_weight = 1.0;  // Make reliability bite the ranking.
  fl::Leader leader(MakeProfiles(), options, QueryDrivenOptions{});
  const query::RangeQuery q = MakeQuery({0.5, 2.5, 0.5, 2.5});

  auto before = leader.Rank(q);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(leader.Rank(q).ok());  // Warm hit.
  EXPECT_EQ(leader.ranking_telemetry().cache_hits, 1u);

  // Node 0 fails a round: its SuccessRate drops, so the cached ranking is
  // stale and must not be served again.
  leader.RecordRoundResult(0, fl::Leader::RoundResult::kFailed);
  auto after = leader.Rank(q);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(leader.ranking_telemetry().cache_hits, 1u);  // Miss, recompute.
  EXPECT_EQ(leader.ranking_telemetry().cache_misses, 2u);
  bool reliability_changed = false;
  for (const auto& rank : *after) {
    if (rank.node_id == 0) reliability_changed = rank.reliability < 1.0;
  }
  EXPECT_TRUE(reliability_changed);

  // Unknown node ids are ignored AND still conservatively clear nothing
  // observable: ranking stays self-consistent on the next request.
  ASSERT_TRUE(leader.Rank(q).ok());
  std::string diff;
  auto again = leader.Rank(q);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(RankingsBitwiseEqual(*after, *again, options, &diff)) << diff;
}

TEST(RankingCacheTest, CachedIndexedAndScanAgree) {
  // All three serving paths at once: scan leader vs index+cache leader.
  const std::vector<NodeProfile> profiles = MakeProfiles();
  auto index = ClusterIndex::Build(profiles);
  ASSERT_TRUE(index.ok());
  RankingOptions accel;
  accel.use_index = true;
  accel.use_cache = true;
  fl::Leader fast(profiles, accel, QueryDrivenOptions{},
                  std::make_shared<const ClusterIndex>(std::move(*index)));
  fl::Leader slow(profiles, RankingOptions{}, QueryDrivenOptions{});
  for (const auto& q :
       {MakeQuery({0, 9, 0, 9}), MakeQuery({4, 6, 4, 6}),
        MakeQuery({0, 9, 0, 9}), MakeQuery({20, 30, 20, 30})}) {
    auto a = fast.Rank(q);
    auto b = slow.Rank(q);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    std::string diff;
    EXPECT_TRUE(RankingsBitwiseEqual(*b, *a, accel, &diff)) << diff;
  }
  EXPECT_GT(fast.ranking_telemetry().index_rankings, 0u);
  EXPECT_GT(fast.ranking_telemetry().cache_hits, 0u);  // Repeated region.
}

}  // namespace
}  // namespace qens::selection
