// Tests for the data-centric ([8]-style) baseline: component scoring,
// weight handling, top-l selection, validation.

#include "qens/selection/data_centric.h"

#include <gtest/gtest.h>

namespace qens::selection {
namespace {

NodeProfile MakeProfile(size_t id, size_t samples, size_t clusters,
                        size_t empty_clusters = 0) {
  NodeProfile p;
  p.node_id = id;
  p.total_samples = samples;
  for (size_t c = 0; c < clusters; ++c) {
    clustering::ClusterSummary cluster;
    cluster.size = c < clusters - empty_clusters ? samples / clusters : 0;
    cluster.bounds =
        query::HyperRectangle::FromFlatBounds({0.0, 1.0}).value();
    cluster.centroid = {0.5};
    p.clusters.push_back(cluster);
  }
  return p;
}

TEST(DataCentricTest, BiggerDataScoresHigher) {
  std::vector<NodeProfile> profiles = {MakeProfile(0, 100, 5),
                                       MakeProfile(1, 1000, 5)};
  std::vector<double> caps = {1.0, 1.0};
  std::vector<double> lats = {0.01, 0.01};
  DataCentricOptions options;
  auto scores = ScoreNodesDataCentric(profiles, caps, lats, options);
  ASSERT_TRUE(scores.ok());
  EXPECT_GT((*scores)[1].total, (*scores)[0].total);
  EXPECT_GT((*scores)[1].data_quality, (*scores)[0].data_quality);
}

TEST(DataCentricTest, FasterNodeScoresHigher) {
  std::vector<NodeProfile> profiles = {MakeProfile(0, 500, 5),
                                       MakeProfile(1, 500, 5)};
  std::vector<double> caps = {1.0, 4.0};
  std::vector<double> lats = {0.01, 0.01};
  DataCentricOptions options;
  auto scores = ScoreNodesDataCentric(profiles, caps, lats, options);
  ASSERT_TRUE(scores.ok());
  EXPECT_GT((*scores)[1].total, (*scores)[0].total);
  EXPECT_DOUBLE_EQ((*scores)[1].compute, 1.0);  // Max-normalized.
}

TEST(DataCentricTest, EmptyClustersReduceDiversity) {
  std::vector<NodeProfile> profiles = {
      MakeProfile(0, 500, 5, /*empty_clusters=*/0),
      MakeProfile(1, 500, 5, /*empty_clusters=*/3)};
  std::vector<double> caps = {1.0, 1.0};
  std::vector<double> lats = {0.01, 0.01};
  DataCentricOptions options;
  auto scores = ScoreNodesDataCentric(profiles, caps, lats, options);
  ASSERT_TRUE(scores.ok());
  EXPECT_GT((*scores)[0].data_quality, (*scores)[1].data_quality);
}

TEST(DataCentricTest, LowerLatencyScoresHigher) {
  std::vector<NodeProfile> profiles = {MakeProfile(0, 500, 5),
                                       MakeProfile(1, 500, 5)};
  std::vector<double> caps = {1.0, 1.0};
  std::vector<double> lats = {1.0, 0.0};
  DataCentricOptions options;
  auto scores = ScoreNodesDataCentric(profiles, caps, lats, options);
  ASSERT_TRUE(scores.ok());
  EXPECT_GT((*scores)[1].comm, (*scores)[0].comm);
}

TEST(DataCentricTest, SelectTopL) {
  std::vector<NodeProfile> profiles = {
      MakeProfile(0, 100, 5), MakeProfile(1, 900, 5), MakeProfile(2, 500, 5),
      MakeProfile(3, 800, 5)};
  std::vector<double> caps(4, 1.0);
  std::vector<double> lats(4, 0.01);
  DataCentricOptions options;
  options.top_l = 2;
  auto selected = SelectDataCentric(profiles, caps, lats, options);
  ASSERT_TRUE(selected.ok());
  EXPECT_EQ(*selected, (std::vector<size_t>{1, 3}));
}

TEST(DataCentricTest, SelectionIsQueryAgnostic) {
  // The defining property the paper criticizes: no query enters the API at
  // all, so the same nodes are selected for every query.
  std::vector<NodeProfile> profiles = {MakeProfile(0, 100, 5),
                                       MakeProfile(1, 900, 5)};
  std::vector<double> caps(2, 1.0);
  std::vector<double> lats(2, 0.01);
  DataCentricOptions options;
  options.top_l = 1;
  auto s1 = SelectDataCentric(profiles, caps, lats, options);
  auto s2 = SelectDataCentric(profiles, caps, lats, options);
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(*s1, *s2);
}

TEST(DataCentricTest, Errors) {
  std::vector<NodeProfile> profiles = {MakeProfile(0, 100, 5)};
  DataCentricOptions options;
  EXPECT_FALSE(ScoreNodesDataCentric({}, {}, {}, options).ok());
  EXPECT_FALSE(
      ScoreNodesDataCentric(profiles, {1.0, 2.0}, {0.01}, options).ok());
  EXPECT_FALSE(ScoreNodesDataCentric(profiles, {0.0}, {0.01}, options).ok());
  EXPECT_FALSE(ScoreNodesDataCentric(profiles, {1.0}, {-1.0}, options).ok());

  DataCentricOptions zero_weights;
  zero_weights.w_data = zero_weights.w_compute = zero_weights.w_comm = 0.0;
  EXPECT_FALSE(
      ScoreNodesDataCentric(profiles, {1.0}, {0.01}, zero_weights).ok());

  DataCentricOptions zero_l;
  zero_l.top_l = 0;
  EXPECT_FALSE(SelectDataCentric(profiles, {1.0}, {0.01}, zero_l).ok());
}

}  // namespace
}  // namespace qens::selection
