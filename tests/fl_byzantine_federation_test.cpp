// End-to-end tests of the Byzantine layer inside the federation: validator
// rejections reach the outcome counters, quarantine converts repeat
// offenders into skips, corruption injection is seed-deterministic, and a
// disabled layer leaves the fault-free path untouched.

#include <cmath>

#include <gtest/gtest.h>

#include "qens/fl/experiment.h"

namespace qens::fl {
namespace {

/// A small, fast federation: 4 stations, K = 2, short training.
ExperimentConfig SmallConfig() {
  ExperimentConfig config;
  config.data.num_stations = 4;
  config.data.samples_per_station = 120;
  config.data.heterogeneity = data::Heterogeneity::kHeterogeneous;
  config.data.seed = 11;
  config.data.single_feature = true;
  config.federation.environment.kmeans.k = 2;
  config.federation.query_driven.top_l = 4;
  config.federation.hyper =
      ml::PaperHyperParams(ml::ModelKind::kLinearRegression);
  config.federation.hyper.epochs = 8;
  config.federation.epochs_per_cluster = 4;
  config.federation.test_fraction = 0.25;
  config.federation.seed = 12;
  config.workload.num_queries = 3;
  config.workload.min_width_frac = 0.4;
  config.workload.max_width_frac = 0.8;
  config.workload.seed = 13;
  return config;
}

/// Run every query of `config` once, accumulating the byzantine counters.
struct RunTotals {
  size_t rejected = 0;
  size_t quarantined = 0;
  double loss_sum = 0.0;
  size_t ran = 0;
};

RunTotals RunAll(const ExperimentConfig& config, size_t rounds) {
  auto runner = ExperimentRunner::Create(config);
  EXPECT_TRUE(runner.ok()) << runner.status().ToString();
  RunTotals totals;
  for (const auto& q : runner->queries()) {
    auto outcome = runner->federation().RunQueryMultiRound(
        q, selection::PolicyKind::kQueryDriven, /*data_selectivity=*/true,
        rounds);
    EXPECT_TRUE(outcome.ok()) << outcome.status().ToString();
    if (!outcome.ok() || outcome->skipped) continue;
    totals.rejected += outcome->rejected_updates;
    totals.quarantined += outcome->quarantined_skips;
    if (outcome->has_loss_robust) {
      totals.loss_sum += outcome->loss_robust;
    } else {
      totals.loss_sum += outcome->loss_fedavg;
    }
    ++totals.ran;
  }
  return totals;
}

ExperimentConfig AttackedConfig(sim::CorruptionKind kind,
                                size_t quarantine_rounds) {
  ExperimentConfig config = SmallConfig();
  auto& ft = config.federation.fault_tolerance;
  ft.enabled = true;
  ft.min_quorum_frac = 0.25;
  ft.faults.seed = 17;
  ft.faults.corruption_rate = 0.5;
  ft.faults.corruption_kinds = {kind};
  auto& byz = config.federation.byzantine;
  byz.enabled = true;
  byz.aggregator = AggregationKind::kCoordinateMedian;
  byz.quarantine_rounds = quarantine_rounds;
  byz.validator.check_finite = true;
  return config;
}

TEST(ByzantineFederationTest, NanUpdatesAreRejectedAndLossStaysFinite) {
  const RunTotals totals =
      RunAll(AttackedConfig(sim::CorruptionKind::kNanUpdate,
                            /*quarantine_rounds=*/0),
             /*rounds=*/2);
  ASSERT_GT(totals.ran, 0u);
  EXPECT_GT(totals.rejected, 0u);
  EXPECT_TRUE(std::isfinite(totals.loss_sum));
}

TEST(ByzantineFederationTest, QuarantineSkipsRepeatOffenders) {
  const RunTotals no_quarantine =
      RunAll(AttackedConfig(sim::CorruptionKind::kNanUpdate, 0),
             /*rounds=*/3);
  const RunTotals with_quarantine =
      RunAll(AttackedConfig(sim::CorruptionKind::kNanUpdate, 2),
             /*rounds=*/3);
  EXPECT_EQ(no_quarantine.quarantined, 0u);
  EXPECT_GT(with_quarantine.quarantined, 0u);
  // Every quarantined round is a screening the leader did not repeat.
  EXPECT_LT(with_quarantine.rejected, no_quarantine.rejected);
}

TEST(ByzantineFederationTest, CorruptionInjectionIsSeedDeterministic) {
  const ExperimentConfig config =
      AttackedConfig(sim::CorruptionKind::kSignFlip, /*quarantine_rounds=*/1);
  const RunTotals a = RunAll(config, /*rounds=*/2);
  const RunTotals b = RunAll(config, /*rounds=*/2);
  EXPECT_EQ(a.ran, b.ran);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.quarantined, b.quarantined);
  EXPECT_DOUBLE_EQ(a.loss_sum, b.loss_sum);
}

TEST(ByzantineFederationTest, DisabledLayerMatchesPlainRun) {
  // byzantine.enabled = false must leave the fault-free path bit-identical:
  // same losses, no rejections, no robust loss on the outcome.
  const ExperimentConfig plain = SmallConfig();
  ExperimentConfig with_struct = SmallConfig();
  with_struct.federation.byzantine.validator.norm_mad_k = 5.0;  // Unused.
  auto runner_a = ExperimentRunner::Create(plain);
  auto runner_b = ExperimentRunner::Create(with_struct);
  ASSERT_TRUE(runner_a.ok());
  ASSERT_TRUE(runner_b.ok());
  for (size_t i = 0; i < runner_a->queries().size(); ++i) {
    auto a = runner_a->federation().RunQueryMultiRound(
        runner_a->queries()[i], selection::PolicyKind::kQueryDriven, true, 2);
    auto b = runner_b->federation().RunQueryMultiRound(
        runner_b->queries()[i], selection::PolicyKind::kQueryDriven, true, 2);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a->skipped, b->skipped);
    if (a->skipped) continue;
    EXPECT_DOUBLE_EQ(a->loss_fedavg, b->loss_fedavg);
    EXPECT_DOUBLE_EQ(a->loss_weighted, b->loss_weighted);
    EXPECT_FALSE(a->has_loss_robust);
    EXPECT_FALSE(b->has_loss_robust);
    EXPECT_EQ(a->rejected_updates, 0u);
    EXPECT_EQ(b->rejected_updates, 0u);
  }
}

TEST(ByzantineFederationTest, CreateRejectsPredictionSpaceAggregator) {
  ExperimentConfig config = SmallConfig();
  config.federation.byzantine.enabled = true;
  config.federation.byzantine.aggregator = AggregationKind::kModelAveraging;
  EXPECT_FALSE(ExperimentRunner::Create(config).ok());
}

TEST(ByzantineFederationTest, CreateRejectsBadTrimBeta) {
  ExperimentConfig config = SmallConfig();
  config.federation.byzantine.enabled = true;
  config.federation.byzantine.aggregator = AggregationKind::kTrimmedMean;
  config.federation.byzantine.trim_beta = 0.6;
  EXPECT_FALSE(ExperimentRunner::Create(config).ok());
}

}  // namespace
}  // namespace qens::fl
