// Tests for the Byzantine-robust aggregators: coordinate median, trimmed
// mean, norm-clipped FedAvg, their prediction-space and partial variants,
// and the central robustness property — with at most floor(beta * n)
// corrupted (finite, arbitrary) updates, the trimmed mean and the
// coordinate median stay inside the honest coordinate envelope.

#include "qens/fl/aggregation.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "qens/tensor/vector_ops.h"

namespace qens::fl {
namespace {

/// A 1-feature linear model y = w x + b (2 parameters).
ml::SequentialModel Linear(double w, double b) {
  ml::SequentialModel m;
  EXPECT_TRUE(m.AddLayer(1, 1, ml::Activation::kIdentity).ok());
  m.layer(0).weights()(0, 0) = w;
  m.layer(0).bias()[0] = b;
  return m;
}

/// A small two-layer model with exactly `params` as its flat parameters.
ml::SequentialModel ModelWithParams(const std::vector<double>& params) {
  ml::SequentialModel m;
  EXPECT_TRUE(m.AddLayer(3, 2, ml::Activation::kIdentity).ok());
  EXPECT_TRUE(m.AddLayer(2, 1, ml::Activation::kIdentity).ok());
  EXPECT_TRUE(m.SetParameters(params).ok());
  return m;
}

constexpr size_t kParamCount = 3 * 2 + 2 + 2 * 1 + 1;  // 11

std::vector<double> RandomParams(std::mt19937_64& rng, double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  std::vector<double> params(kParamCount);
  for (double& p : params) p = dist(rng);
  return params;
}

/// The robustness property: aggregate `n` models of which `n_corrupt` carry
/// arbitrary finite parameters; every merged coordinate must lie within
/// [min, max] of the honest models' values at that coordinate.
void CheckWithinHonestEnvelope(size_t n, size_t n_corrupt, double trim_beta,
                               bool use_median, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<ml::SequentialModel> models;
  std::vector<std::vector<double>> honest_params;
  for (size_t i = 0; i < n; ++i) {
    // The first n_corrupt updates are corrupted — position must not matter
    // to an order statistic, and the draw order keeps the test readable.
    const bool corrupt = i < n_corrupt;
    std::vector<double> params = corrupt ? RandomParams(rng, -1e6, 1e6)
                                         : RandomParams(rng, -1.0, 1.0);
    if (!corrupt) honest_params.push_back(params);
    models.push_back(ModelWithParams(params));
  }
  auto merged = use_median ? CoordinateMedianParameters(models)
                           : TrimmedMeanParameters(models, trim_beta);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  const std::vector<double> result = merged->GetParameters();
  ASSERT_EQ(result.size(), kParamCount);
  for (size_t c = 0; c < kParamCount; ++c) {
    double lo = honest_params[0][c], hi = lo;
    for (const auto& h : honest_params) {
      lo = std::min(lo, h[c]);
      hi = std::max(hi, h[c]);
    }
    EXPECT_GE(result[c], lo) << "coordinate " << c << " seed " << seed;
    EXPECT_LE(result[c], hi) << "coordinate " << c << " seed " << seed;
  }
}

TEST(RobustPropertyTest, MedianWithinHonestEnvelope) {
  // Coordinate median tolerates any minority of corrupted updates.
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    CheckWithinHonestEnvelope(/*n=*/7, /*n_corrupt=*/3, /*trim_beta=*/0.0,
                              /*use_median=*/true, seed);
  }
}

TEST(RobustPropertyTest, TrimmedMeanWithinHonestEnvelope) {
  // floor(0.3 * 10) = 3 trimmed from each end covers 3 corrupted updates.
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    CheckWithinHonestEnvelope(/*n=*/10, /*n_corrupt=*/3, /*trim_beta=*/0.3,
                              /*use_median=*/false, seed);
  }
}

TEST(CoordinateMedianTest, ExactForKnownValues) {
  std::vector<ml::SequentialModel> models = {Linear(1, 10), Linear(2, 20),
                                             Linear(1000, -5)};
  auto merged = CoordinateMedianParameters(models);
  ASSERT_TRUE(merged.ok());
  EXPECT_DOUBLE_EQ(merged->layer(0).weights()(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(merged->layer(0).bias()[0], 10.0);
}

TEST(CoordinateMedianTest, EvenCountAveragesMiddlePair) {
  std::vector<ml::SequentialModel> models = {Linear(1, 0), Linear(3, 0),
                                             Linear(5, 0), Linear(100, 0)};
  auto merged = CoordinateMedianParameters(models);
  ASSERT_TRUE(merged.ok());
  EXPECT_DOUBLE_EQ(merged->layer(0).weights()(0, 0), 4.0);
}

TEST(TrimmedMeanTest, TrimsBothEnds) {
  // beta = 0.25, n = 4 -> trim 1 from each end: mean(2, 3) = 2.5.
  std::vector<ml::SequentialModel> models = {Linear(-50, 0), Linear(2, 0),
                                             Linear(3, 0), Linear(90, 0)};
  auto merged = TrimmedMeanParameters(models, 0.25);
  ASSERT_TRUE(merged.ok());
  EXPECT_DOUBLE_EQ(merged->layer(0).weights()(0, 0), 2.5);
}

TEST(TrimmedMeanTest, BetaValidation) {
  std::vector<ml::SequentialModel> models = {Linear(1, 0), Linear(2, 0)};
  EXPECT_FALSE(TrimmedMeanParameters(models, -0.1).ok());
  EXPECT_FALSE(TrimmedMeanParameters(models, 0.5).ok());
  EXPECT_FALSE(TrimmedMeanParameters(models, std::nan("")).ok());
  // n = 2 with beta = 0.49 still trims 0, so it must succeed.
  EXPECT_TRUE(TrimmedMeanParameters(models, 0.49).ok());
}

TEST(NormClippedTest, BoundsDisplacementFromReference) {
  const ml::SequentialModel reference = Linear(1, 1);
  // One honest small update, one wildly scaled one.
  std::vector<ml::SequentialModel> models = {Linear(1.1, 1.0),
                                             Linear(5000, -4000)};
  auto merged =
      FedAvgNormClipped(models, {1.0, 1.0}, reference, /*clip_norm=*/1.0);
  ASSERT_TRUE(merged.ok());
  const double displacement = vec::Norm2(
      vec::Sub(merged->GetParameters(), reference.GetParameters()));
  EXPECT_LE(displacement, 1.0 + 1e-12);
}

TEST(NormClippedTest, SmallUpdatesUnclippedMatchFedAvg) {
  const ml::SequentialModel reference = Linear(0, 0);
  std::vector<ml::SequentialModel> models = {Linear(0.1, 0.0),
                                             Linear(0.0, 0.3)};
  auto clipped = FedAvgNormClipped(models, {1.0, 1.0}, reference, 10.0);
  auto fedavg = FedAvgParameters(models, {1.0, 1.0});
  ASSERT_TRUE(clipped.ok());
  ASSERT_TRUE(fedavg.ok());
  const std::vector<double> a = clipped->GetParameters();
  const std::vector<double> b = fedavg->GetParameters();
  for (size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-12);
}

TEST(NormClippedTest, InvalidClipNorm) {
  const ml::SequentialModel reference = Linear(0, 0);
  std::vector<ml::SequentialModel> models = {Linear(1, 0)};
  EXPECT_FALSE(FedAvgNormClipped(models, {1.0}, reference, 0.0).ok());
  EXPECT_FALSE(FedAvgNormClipped(models, {1.0}, reference,
                                 std::numeric_limits<double>::infinity())
                   .ok());
}

TEST(RobustAggregationTest, NonFiniteParametersRejected) {
  std::vector<ml::SequentialModel> models = {
      Linear(std::numeric_limits<double>::quiet_NaN(), 0), Linear(1, 0)};
  EXPECT_FALSE(CoordinateMedianParameters(models).ok());
  EXPECT_FALSE(TrimmedMeanParameters(models, 0.1).ok());
  EXPECT_FALSE(
      FedAvgNormClipped(models, {1.0, 1.0}, Linear(0, 0), 1.0).ok());
  Matrix x{{1.0}};
  EXPECT_FALSE(AggregatePredictionsMedian(models, x).ok());
  EXPECT_FALSE(AggregatePredictionsTrimmed(models, x, 0.1).ok());
}

TEST(RobustAggregationTest, EmptyInputRejected) {
  EXPECT_FALSE(CoordinateMedianParameters({}).ok());
  EXPECT_FALSE(TrimmedMeanParameters({}, 0.1).ok());
}

TEST(PredictionMedianTest, PerSampleMedian) {
  std::vector<ml::SequentialModel> models = {Linear(1, 0), Linear(2, 0),
                                             Linear(500, 0)};
  Matrix x{{1.0}, {-1.0}};
  auto pred = AggregatePredictionsMedian(models, x);
  ASSERT_TRUE(pred.ok());
  EXPECT_DOUBLE_EQ((*pred)(0, 0), 2.0);     // median(1, 2, 500)
  EXPECT_DOUBLE_EQ((*pred)(1, 0), -2.0);    // median(-1, -2, -500)
}

TEST(PartialRobustTest, DeadModelsNeverRead) {
  // The dead entry carries NaN parameters: any read would error, so a
  // passing aggregate proves it was skipped.
  std::vector<ml::SequentialModel> models = {
      Linear(1, 0), Linear(std::numeric_limits<double>::quiet_NaN(), 0),
      Linear(3, 0)};
  const std::vector<bool> alive = {true, false, true};
  auto median = CoordinateMedianParametersPartial(models, alive);
  ASSERT_TRUE(median.ok());
  EXPECT_DOUBLE_EQ(median->layer(0).weights()(0, 0), 2.0);
  auto trimmed = TrimmedMeanParametersPartial(models, alive, 0.1);
  ASSERT_TRUE(trimmed.ok());
  EXPECT_DOUBLE_EQ(trimmed->layer(0).weights()(0, 0), 2.0);
  auto clipped = FedAvgNormClippedPartial(models, {1.0, 1.0, 1.0}, alive,
                                          Linear(2, 0), 100.0);
  ASSERT_TRUE(clipped.ok());
  EXPECT_DOUBLE_EQ(clipped->layer(0).weights()(0, 0), 2.0);
  Matrix x{{1.0}};
  auto pred = AggregatePredictionsMedianPartial(models, alive, x);
  ASSERT_TRUE(pred.ok());
  EXPECT_DOUBLE_EQ((*pred)(0, 0), 2.0);
  auto pred_trim = AggregatePredictionsTrimmedPartial(models, alive, x, 0.1);
  ASSERT_TRUE(pred_trim.ok());
  EXPECT_DOUBLE_EQ((*pred_trim)(0, 0), 2.0);
}

TEST(PartialRobustTest, NoSurvivorsFails) {
  std::vector<ml::SequentialModel> models = {Linear(1, 0)};
  EXPECT_FALSE(CoordinateMedianParametersPartial(models, {false}).ok());
}

TEST(EnsembleRobustTest, RobustKindsPredict) {
  auto ensemble = EnsembleModel::Create(
      {Linear(1, 0), Linear(2, 0), Linear(900, 0)}, {1.0, 1.0, 1.0});
  ASSERT_TRUE(ensemble.ok());
  Matrix x{{1.0}};
  RobustAggregationOptions robust;
  auto median =
      ensemble->Predict(x, AggregationKind::kCoordinateMedian, robust);
  ASSERT_TRUE(median.ok());
  EXPECT_DOUBLE_EQ((*median)(0, 0), 2.0);
  robust.trim_beta = 0.34;
  auto trimmed = ensemble->Predict(x, AggregationKind::kTrimmedMean, robust);
  ASSERT_TRUE(trimmed.ok());
  EXPECT_DOUBLE_EQ((*trimmed)(0, 0), 2.0);
  // The clipped kind needs a reference model.
  EXPECT_FALSE(
      ensemble->Predict(x, AggregationKind::kNormClippedFedAvg, robust).ok());
  const ml::SequentialModel reference = Linear(2, 0);
  robust.reference = &reference;
  robust.clip_norm = 0.5;
  auto clipped =
      ensemble->Predict(x, AggregationKind::kNormClippedFedAvg, robust);
  ASSERT_TRUE(clipped.ok());
  // Every update is clipped to norm <= 0.5 around w = 2: the merged slope
  // stays within [1.5, 2.5], so the prediction at x = 1 does too.
  EXPECT_GE((*clipped)(0, 0), 1.5);
  EXPECT_LE((*clipped)(0, 0), 2.5);
}

}  // namespace
}  // namespace qens::fl
