// Tests for the opt-in metrics registry: enable/disable lifecycle,
// counters/gauges/histograms, the no-op-when-disabled helpers, and trace
// spans. The registry is process-global, so every test that enables it
// disables it again on exit.

#include "qens/obs/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "qens/obs/trace.h"

namespace qens::obs {
namespace {

/// Enables the registry for one test body and always disables it after.
class MetricsTest : public ::testing::Test {
 protected:
  void TearDown() override { MetricsRegistry::Disable(); }
};

TEST_F(MetricsTest, DisabledByDefault) {
  EXPECT_FALSE(MetricsRegistry::Enabled());
  EXPECT_EQ(MetricsRegistry::Get(), nullptr);
}

TEST_F(MetricsTest, EnableCreatesDisableDestroys) {
  MetricsRegistry::Enable();
  EXPECT_TRUE(MetricsRegistry::Enabled());
  ASSERT_NE(MetricsRegistry::Get(), nullptr);
  MetricsRegistry::Disable();
  EXPECT_FALSE(MetricsRegistry::Enabled());
  EXPECT_EQ(MetricsRegistry::Get(), nullptr);
  // Idempotent both ways.
  MetricsRegistry::Disable();
  MetricsRegistry::Enable();
  MetricsRegistry::Enable();
  EXPECT_TRUE(MetricsRegistry::Enabled());
}

TEST_F(MetricsTest, CountersAccumulate) {
  MetricsRegistry::Enable();
  Count("test.counter");
  Count("test.counter", 4);
  Count("test.other");
  const MetricsSnapshot snap = MetricsRegistry::Get()->Snapshot();
  EXPECT_EQ(snap.counters.at("test.counter"), 5u);
  EXPECT_EQ(snap.counters.at("test.other"), 1u);
}

TEST_F(MetricsTest, GaugeIsLastWriteWins) {
  MetricsRegistry::Enable();
  Gauge("test.gauge", 1.5);
  Gauge("test.gauge", -2.25);
  const MetricsSnapshot snap = MetricsRegistry::Get()->Snapshot();
  EXPECT_DOUBLE_EQ(snap.gauges.at("test.gauge"), -2.25);
}

TEST_F(MetricsTest, HistogramTracksSumMinMaxAndBuckets) {
  MetricsRegistry::Enable();
  Observe("test.hist", 0.5);
  Observe("test.hist", 2.0);
  Observe("test.hist", 0.001);
  const MetricsSnapshot snap = MetricsRegistry::Get()->Snapshot();
  const HistogramSnapshot& h = snap.histograms.at("test.hist");
  EXPECT_EQ(h.total, 3u);
  EXPECT_DOUBLE_EQ(h.sum, 2.501);
  EXPECT_DOUBLE_EQ(h.min, 0.001);
  EXPECT_DOUBLE_EQ(h.max, 2.0);
  ASSERT_EQ(h.counts.size(), h.bounds.size() + 1);
  uint64_t bucket_total = 0;
  for (uint64_t c : h.counts) bucket_total += c;
  EXPECT_EQ(bucket_total, 3u);
  // Bounds are sorted strictly ascending (bucket edges well-formed).
  for (size_t i = 1; i < h.bounds.size(); ++i) {
    EXPECT_LT(h.bounds[i - 1], h.bounds[i]);
  }
}

TEST_F(MetricsTest, HelpersAreNoOpsWhileDisabled) {
  Count("ignored.counter");
  Gauge("ignored.gauge", 3.0);
  Observe("ignored.hist", 1.0);
  EXPECT_EQ(MetricsRegistry::Get(), nullptr);
  // Nothing leaks into a registry enabled afterwards.
  MetricsRegistry::Enable();
  const MetricsSnapshot snap = MetricsRegistry::Get()->Snapshot();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.gauges.empty());
  EXPECT_TRUE(snap.histograms.empty());
}

TEST_F(MetricsTest, ResetClearsButStaysEnabled) {
  MetricsRegistry::Enable();
  Count("test.counter");
  Observe("test.hist", 1.0);
  MetricsRegistry::Get()->Reset();
  EXPECT_TRUE(MetricsRegistry::Enabled());
  const MetricsSnapshot snap = MetricsRegistry::Get()->Snapshot();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.histograms.empty());
}

TEST_F(MetricsTest, ConcurrentCountsAreLossless) {
  MetricsRegistry::Enable();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kPerThread; ++i) Count("test.concurrent");
    });
  }
  for (auto& t : threads) t.join();
  const MetricsSnapshot snap = MetricsRegistry::Get()->Snapshot();
  EXPECT_EQ(snap.counters.at("test.concurrent"),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST_F(MetricsTest, TraceSpanRecordsHistogramAndCallCounter) {
  MetricsRegistry::Enable();
  {
    TraceSpan span("test.span");
    EXPECT_TRUE(span.active());
  }
  {
    TraceSpan span("test.span");
    span.Stop();
    span.Stop();  // Second Stop must not double-record.
  }
  const MetricsSnapshot snap = MetricsRegistry::Get()->Snapshot();
  EXPECT_EQ(snap.counters.at("span.test.span.calls"), 2u);
  const HistogramSnapshot& h = snap.histograms.at("span.test.span.seconds");
  EXPECT_EQ(h.total, 2u);
  EXPECT_GE(h.min, 0.0);
}

TEST_F(MetricsTest, TraceSpanInertWhileDisabled) {
  TraceSpan span("test.disabled.span");
  EXPECT_FALSE(span.active());
  EXPECT_DOUBLE_EQ(span.Stop(), 0.0);
  MetricsRegistry::Enable();
  const MetricsSnapshot snap = MetricsRegistry::Get()->Snapshot();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.histograms.empty());
}

}  // namespace
}  // namespace qens::obs
