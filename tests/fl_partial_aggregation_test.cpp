// Tests for partial-participation aggregation (fault tolerance): survivor
// weight renormalization, quorum edge cases (all fail / exactly-quorum /
// one straggler), survivor-restricted prediction & parameter aggregation,
// and the federation-level deadline/quorum/degradation behavior.

#include <gtest/gtest.h>

#include "qens/common/rng.h"
#include "qens/fl/aggregation.h"
#include "qens/fl/federation.h"

namespace qens::fl {
namespace {

/// A 1-feature linear model y = w x + b.
ml::SequentialModel Linear(double w, double b) {
  ml::SequentialModel m;
  EXPECT_TRUE(m.AddLayer(1, 1, ml::Activation::kIdentity).ok());
  m.layer(0).weights()(0, 0) = w;
  m.layer(0).bias()[0] = b;
  return m;
}

// ----- PartialWeights -----

TEST(PartialWeightsTest, RenormalizesOverSurvivors) {
  auto w = PartialWeights({1.0, 2.0, 3.0, 4.0}, {true, false, true, false});
  ASSERT_TRUE(w.ok());
  EXPECT_DOUBLE_EQ((*w)[0], 0.25);
  EXPECT_DOUBLE_EQ((*w)[1], 0.0);
  EXPECT_DOUBLE_EQ((*w)[2], 0.75);
  EXPECT_DOUBLE_EQ((*w)[3], 0.0);
}

TEST(PartialWeightsTest, SurvivorMassSumsToOne) {
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t n = 1 + rng.UniformInt(8);
    std::vector<double> weights(n);
    std::vector<bool> alive(n);
    bool any = false;
    for (size_t i = 0; i < n; ++i) {
      weights[i] = rng.Uniform(0, 10);
      alive[i] = rng.Bernoulli(0.6);
      any = any || alive[i];
    }
    if (!any) alive[rng.UniformInt(n)] = true;
    auto w = PartialWeights(weights, alive);
    ASSERT_TRUE(w.ok());
    double sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
      if (!alive[i]) {
        EXPECT_DOUBLE_EQ((*w)[i], 0.0);
      }
      sum += (*w)[i];
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(PartialWeightsTest, ZeroMassFallsBackToEqualWeights) {
  auto w = PartialWeights({0.0, 0.0, 0.0}, {true, false, true});
  ASSERT_TRUE(w.ok());
  EXPECT_DOUBLE_EQ((*w)[0], 0.5);
  EXPECT_DOUBLE_EQ((*w)[1], 0.0);
  EXPECT_DOUBLE_EQ((*w)[2], 0.5);
}

TEST(PartialWeightsTest, DenormalMassFallsBackToEqualWeights) {
  // A surviving mass below the smallest normal double (here a denormal)
  // must take the equal-weight fallback, not divide through and return
  // weights that fail to sum to 1 (or overflow to inf).
  auto w = PartialWeights({1e-320, 0.0, 0.0}, {true, true, false});
  ASSERT_TRUE(w.ok());
  EXPECT_DOUBLE_EQ((*w)[0], 0.5);
  EXPECT_DOUBLE_EQ((*w)[1], 0.5);
  EXPECT_DOUBLE_EQ((*w)[2], 0.0);
}

TEST(PartialWeightsTest, AllAliveKeepsProportions) {
  auto w = PartialWeights({1.0, 3.0}, {true, true});
  ASSERT_TRUE(w.ok());
  EXPECT_DOUBLE_EQ((*w)[0], 0.25);
  EXPECT_DOUBLE_EQ((*w)[1], 0.75);
}

TEST(PartialWeightsTest, Errors) {
  EXPECT_FALSE(PartialWeights({1.0, 1.0}, {false, false}).ok());  // Nobody.
  EXPECT_FALSE(PartialWeights({1.0}, {true, true}).ok());     // Size mismatch.
  EXPECT_FALSE(PartialWeights({-1.0, 1.0}, {true, true}).ok());  // Negative.
  EXPECT_FALSE(PartialWeights({}, {}).ok());                     // Empty.
}

// ----- MeetsQuorum -----

TEST(MeetsQuorumTest, AllNodesFailing) {
  EXPECT_FALSE(MeetsQuorum(0, 4, 0.5));
  // Even a zero quorum needs at least one survivor to aggregate anything.
  EXPECT_FALSE(MeetsQuorum(0, 4, 0.0));
}

TEST(MeetsQuorumTest, ExactlyAtQuorum) {
  // ceil(0.5 * 4) = 2: two survivors of four is exactly enough.
  EXPECT_TRUE(MeetsQuorum(2, 4, 0.5));
  EXPECT_FALSE(MeetsQuorum(1, 4, 0.5));
  // Odd planned count rounds up: ceil(0.5 * 5) = 3.
  EXPECT_TRUE(MeetsQuorum(3, 5, 0.5));
  EXPECT_FALSE(MeetsQuorum(2, 5, 0.5));
}

TEST(MeetsQuorumTest, OneStragglerCut) {
  // One of four cut by the deadline leaves 3 >= ceil(0.5 * 4).
  EXPECT_TRUE(MeetsQuorum(3, 4, 0.5));
  // But a full-participation quorum tolerates no straggler at all.
  EXPECT_FALSE(MeetsQuorum(3, 4, 1.0));
  EXPECT_TRUE(MeetsQuorum(4, 4, 1.0));
}

TEST(MeetsQuorumTest, FracIsClamped) {
  EXPECT_TRUE(MeetsQuorum(4, 4, 7.0));    // Clamped to 1.
  EXPECT_TRUE(MeetsQuorum(1, 4, -3.0));   // Clamped to 0.
}

// ----- Survivor-restricted aggregation -----

TEST(PartialAggregationTest, MatchesFullAggregationOverSurvivors) {
  std::vector<ml::SequentialModel> models = {Linear(2, 0), Linear(100, 100),
                                             Linear(4, 0)};
  Matrix x{{1.0}, {2.0}};
  // Middle model dead: expect the plain weighted average of models 0 and 2.
  auto partial = AggregatePredictionsPartial(models, {1.0, 5.0, 3.0},
                                             {true, false, true}, x);
  ASSERT_TRUE(partial.ok());
  std::vector<ml::SequentialModel> survivors;
  survivors.push_back(Linear(2, 0));
  survivors.push_back(Linear(4, 0));
  auto full = AggregatePredictionsWeighted(survivors, {1.0, 3.0}, x);
  ASSERT_TRUE(full.ok());
  EXPECT_LT(partial->MaxAbsDiff(*full), 1e-12);
}

TEST(PartialAggregationTest, FedAvgPartialIgnoresDeadModels) {
  std::vector<ml::SequentialModel> models = {Linear(2, 0), Linear(1000, -7),
                                             Linear(4, 2)};
  auto merged =
      FedAvgParametersPartial(models, {1.0, 1.0, 1.0}, {true, false, true});
  ASSERT_TRUE(merged.ok());
  EXPECT_DOUBLE_EQ(merged->layer(0).weights()(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(merged->layer(0).bias()[0], 1.0);
}

TEST(PartialAggregationTest, NoSurvivorsFails) {
  std::vector<ml::SequentialModel> models = {Linear(1, 0)};
  Matrix x{{1.0}};
  EXPECT_FALSE(
      AggregatePredictionsPartial(models, {1.0}, {false}, x).ok());
  EXPECT_FALSE(FedAvgParametersPartial(models, {1.0}, {false}).ok());
}

// ----- Federation-level behavior under faults -----

data::Dataset MakeNodeData(double offset, double slope, uint64_t seed,
                           size_t n = 220) {
  Rng rng(seed);
  Matrix x(n, 1), y(n, 1);
  for (size_t i = 0; i < n; ++i) {
    x(i, 0) = offset + rng.Uniform(0, 10);
    y(i, 0) = slope * x(i, 0) + rng.Gaussian(0, 0.2);
  }
  return data::Dataset::Create(x, y).value();
}

FederationOptions FastOptions() {
  FederationOptions options;
  options.environment.kmeans.k = 3;
  options.ranking.epsilon = 0.1;
  options.query_driven.top_l = 4;
  options.hyper = ml::PaperHyperParams(ml::ModelKind::kLinearRegression);
  options.hyper.epochs = 15;
  options.epochs_per_cluster = 6;
  options.random_l = 2;
  options.seed = 77;
  return options;
}

Result<Federation> MakeFederation(FederationOptions options = FastOptions()) {
  std::vector<data::Dataset> nodes = {
      MakeNodeData(0, 2.0, 1), MakeNodeData(0, 2.0, 2),
      MakeNodeData(0, 2.0, 3), MakeNodeData(0, 2.0, 4)};
  return Federation::Create(std::move(nodes), options);
}

query::RangeQuery QueryOver(double lo, double hi) {
  query::RangeQuery q;
  q.id = 3;
  q.region = query::HyperRectangle::FromFlatBounds({lo, hi}).value();
  return q;
}

TEST(FaultFederationTest, EnabledWithZeroRatesBehavesLikeFaultFree) {
  FederationOptions plain = FastOptions();
  FederationOptions faulty = FastOptions();
  faulty.fault_tolerance.enabled = true;  // All fault rates stay 0.
  auto a = MakeFederation(plain);
  auto b = MakeFederation(faulty);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto oa = a->RunQueryDriven(QueryOver(0, 10));
  auto ob = b->RunQueryDriven(QueryOver(0, 10));
  ASSERT_TRUE(oa.ok());
  ASSERT_TRUE(ob.ok());
  ASSERT_FALSE(oa->skipped);
  ASSERT_FALSE(ob->skipped);
  // Same selection, same training, same losses; only the accounting of
  // per-round survivor weights is additionally populated.
  EXPECT_EQ(oa->selected_nodes, ob->selected_nodes);
  EXPECT_DOUBLE_EQ(oa->loss_model_avg, ob->loss_model_avg);
  EXPECT_DOUBLE_EQ(oa->loss_weighted, ob->loss_weighted);
  EXPECT_DOUBLE_EQ(oa->loss_fedavg, ob->loss_fedavg);
  EXPECT_EQ(ob->failed_nodes.size(), 0u);
  EXPECT_EQ(ob->deadline_missed_nodes.size(), 0u);
  EXPECT_EQ(ob->degraded_rounds, 0u);
  ASSERT_EQ(ob->round_survivors.size(), 1u);
  EXPECT_EQ(ob->round_survivors[0], ob->selected_nodes.size());
  double sum = 0.0;
  for (double w : ob->survivor_weights) sum += w;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(FaultFederationTest, AllNodesFailingDegradesGracefully) {
  FederationOptions options = FastOptions();
  options.fault_tolerance.enabled = true;
  options.fault_tolerance.faults.seed = 9;
  options.fault_tolerance.faults.dropout_rate = 1.0;  // Everyone offline.
  auto fed = MakeFederation(options);
  ASSERT_TRUE(fed.ok());
  auto outcome = fed->RunQueryMultiRound(
      QueryOver(0, 10), selection::PolicyKind::kQueryDriven, true, 3);
  ASSERT_TRUE(outcome.ok());
  // Not skipped: the leader answers with the initial global model.
  EXPECT_FALSE(outcome->skipped);
  EXPECT_EQ(outcome->degraded_rounds, 3u);
  ASSERT_EQ(outcome->round_survivors.size(), 3u);
  for (size_t s : outcome->round_survivors) EXPECT_EQ(s, 0u);
  EXPECT_FALSE(outcome->failed_nodes.empty());
  EXPECT_TRUE(outcome->survivor_weights.empty());
}

TEST(FaultFederationTest, StragglersCutByDeadline) {
  // Calibrate: run once fault-"enabled" but fault-free to measure a
  // round's critical path, then slow every node 5x with a deadline at 2x.
  FederationOptions calibrate = FastOptions();
  calibrate.fault_tolerance.enabled = true;
  auto cal_fed = MakeFederation(calibrate);
  ASSERT_TRUE(cal_fed.ok());
  auto cal = cal_fed->RunQueryDriven(QueryOver(0, 10));
  ASSERT_TRUE(cal.ok());
  ASSERT_FALSE(cal->skipped);
  const double baseline = cal->sim_time_parallel;
  ASSERT_GT(baseline, 0.0);

  FederationOptions options = FastOptions();
  options.fault_tolerance.enabled = true;
  options.fault_tolerance.faults.seed = 4;
  options.fault_tolerance.faults.straggler_rate = 1.0;
  options.fault_tolerance.faults.straggler_slowdown_min = 5.0;
  options.fault_tolerance.faults.straggler_slowdown_max = 5.0;
  options.fault_tolerance.round_deadline_s = 2.0 * baseline;
  auto fed = MakeFederation(options);
  ASSERT_TRUE(fed.ok());
  auto outcome = fed->RunQueryDriven(QueryOver(0, 10));
  ASSERT_TRUE(outcome.ok());
  // Every node straggles past the deadline: the round degrades, the query
  // still completes, and the leader never waits past the deadline.
  EXPECT_FALSE(outcome->skipped);
  EXPECT_FALSE(outcome->deadline_missed_nodes.empty());
  EXPECT_EQ(outcome->degraded_rounds, 1u);
  EXPECT_LE(outcome->sim_time_parallel,
            options.fault_tolerance.round_deadline_s + 1e-9);
}

TEST(FaultFederationTest, QuorumHoldsWhenEnoughSurvive) {
  FederationOptions options = FastOptions();
  options.fault_tolerance.enabled = true;
  options.fault_tolerance.faults.seed = 11;
  options.fault_tolerance.faults.dropout_rate = 0.3;
  options.fault_tolerance.min_quorum_frac = 0.25;
  auto fed = MakeFederation(options);
  ASSERT_TRUE(fed.ok());
  size_t completed = 0;
  for (int i = 0; i < 8; ++i) {
    auto outcome = fed->RunQueryMultiRound(
        QueryOver(0, 10), selection::PolicyKind::kQueryDriven, true, 2);
    ASSERT_TRUE(outcome.ok());
    ASSERT_EQ(outcome->round_survivors.size(), 2u);
    if (!outcome->skipped) ++completed;
    // Any committed (non-degraded) final round must carry normalized
    // survivor weights.
    if (!outcome->survivor_weights.empty()) {
      double sum = 0.0;
      for (double w : outcome->survivor_weights) sum += w;
      EXPECT_NEAR(sum, 1.0, 1e-12);
    }
  }
  // Dropouts at 30% with quorum 25% should let most queries through.
  EXPECT_GT(completed, 0u);
}

TEST(FaultFederationTest, MessageLossRetriesAndAccounts) {
  FederationOptions options = FastOptions();
  options.fault_tolerance.enabled = true;
  options.fault_tolerance.faults.seed = 2;
  options.fault_tolerance.faults.message_loss_rate = 0.4;
  options.fault_tolerance.max_send_attempts = 3;
  auto fed = MakeFederation(options);
  ASSERT_TRUE(fed.ok());
  size_t lost = 0;
  for (int i = 0; i < 6; ++i) {
    auto outcome = fed->RunQueryDriven(QueryOver(0, 10));
    ASSERT_TRUE(outcome.ok());
    lost += outcome->messages_lost;
    // Every retry follows a loss, but a message can be lost on its final
    // attempt with no retry left -- so retries never exceed losses.
    EXPECT_LE(outcome->send_retries, outcome->messages_lost);
  }
  EXPECT_GT(lost, 0u);
}

TEST(FaultFederationTest, SameSeedSameFaultOutcome) {
  FederationOptions options = FastOptions();
  options.fault_tolerance.enabled = true;
  options.fault_tolerance.faults.seed = 123;
  options.fault_tolerance.faults.dropout_rate = 0.3;
  options.fault_tolerance.faults.straggler_rate = 0.3;
  options.fault_tolerance.faults.message_loss_rate = 0.2;
  auto fed_a = MakeFederation(options);
  auto fed_b = MakeFederation(options);
  ASSERT_TRUE(fed_a.ok());
  ASSERT_TRUE(fed_b.ok());
  for (int i = 0; i < 4; ++i) {
    auto a = fed_a->RunQueryDriven(QueryOver(0, 10));
    auto b = fed_b->RunQueryDriven(QueryOver(0, 10));
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->skipped, b->skipped);
    EXPECT_EQ(a->round_survivors, b->round_survivors);
    EXPECT_EQ(a->failed_nodes, b->failed_nodes);
    EXPECT_EQ(a->deadline_missed_nodes, b->deadline_missed_nodes);
    EXPECT_EQ(a->messages_lost, b->messages_lost);
    if (!a->skipped) {
      EXPECT_DOUBLE_EQ(a->loss_weighted, b->loss_weighted);
    }
  }
}

TEST(FaultFederationTest, CrashedNodesPenalizedInReliability) {
  FederationOptions options = FastOptions();
  options.fault_tolerance.enabled = true;
  options.fault_tolerance.faults.seed = 6;
  options.fault_tolerance.faults.crash_rate = 1.0;
  options.fault_tolerance.faults.crash_horizon = 1;  // Crash at round 0.
  auto fed = MakeFederation(options);
  ASSERT_TRUE(fed.ok());
  auto outcome = fed->RunQueryDriven(QueryOver(0, 10));
  ASSERT_TRUE(outcome.ok());
  // Everyone crashed before round 0: the leader observed only failures.
  bool any_failure_recorded = false;
  for (const auto& profile : fed->leader().profiles()) {
    if (profile.reliability.failures > 0) any_failure_recorded = true;
    EXPECT_EQ(profile.reliability.rounds_completed, 0u);
  }
  EXPECT_TRUE(any_failure_recorded);
}

TEST(FaultFederationTest, InvalidPolicyOptionsRejectedAtCreate) {
  FederationOptions options = FastOptions();
  options.fault_tolerance.enabled = true;
  options.fault_tolerance.max_send_attempts = 0;
  EXPECT_FALSE(MakeFederation(options).ok());
  options = FastOptions();
  options.fault_tolerance.enabled = true;
  options.fault_tolerance.min_quorum_frac = 1.5;
  EXPECT_FALSE(MakeFederation(options).ok());
  options = FastOptions();
  options.fault_tolerance.enabled = true;
  options.fault_tolerance.faults.message_loss_rate = -0.5;
  EXPECT_FALSE(MakeFederation(options).ok());
}

}  // namespace
}  // namespace qens::fl
