// Tests for SequentialModel: layer chaining, predict/forward/backward,
// flat parameter round trips, architecture comparison.

#include "qens/ml/sequential_model.h"

#include <gtest/gtest.h>

#include "qens/ml/loss.h"

namespace qens::ml {
namespace {

SequentialModel TwoLayerNet(Rng* rng) {
  SequentialModel m;
  EXPECT_TRUE(m.AddLayer(2, 4, Activation::kRelu).ok());
  EXPECT_TRUE(m.AddLayer(4, 1, Activation::kIdentity).ok());
  m.InitWeights(rng);
  return m;
}

TEST(SequentialModelTest, LayerChainValidation) {
  SequentialModel m;
  EXPECT_TRUE(m.AddLayer(3, 5, Activation::kRelu).ok());
  EXPECT_TRUE(m.AddLayer(4, 1, Activation::kIdentity).IsInvalidArgument());
  EXPECT_TRUE(m.AddLayer(5, 1, Activation::kIdentity).ok());
  EXPECT_EQ(m.num_layers(), 2u);
  EXPECT_EQ(m.input_features(), 3u);
  EXPECT_EQ(m.output_features(), 1u);
}

TEST(SequentialModelTest, ZeroWidthLayerRejected) {
  SequentialModel m;
  EXPECT_TRUE(m.AddLayer(0, 1, Activation::kRelu).IsInvalidArgument());
  EXPECT_TRUE(m.AddLayer(1, 0, Activation::kRelu).IsInvalidArgument());
}

TEST(SequentialModelTest, EmptyModelFails) {
  SequentialModel m;
  Matrix x(1, 1);
  EXPECT_TRUE(m.Predict(x).status().IsFailedPrecondition());
  EXPECT_TRUE(m.Forward(x).status().IsFailedPrecondition());
  EXPECT_EQ(m.input_features(), 0u);
}

TEST(SequentialModelTest, PredictSingleLinearLayer) {
  SequentialModel m;
  ASSERT_TRUE(m.AddLayer(2, 1, Activation::kIdentity).ok());
  m.layer(0).weights()(0, 0) = 3.0;
  m.layer(0).weights()(1, 0) = -2.0;
  m.layer(0).bias()[0] = 1.0;
  Matrix x{{1, 1}, {2, 0}};
  auto y = m.Predict(x);
  ASSERT_TRUE(y.ok());
  EXPECT_DOUBLE_EQ((*y)(0, 0), 2.0);
  EXPECT_DOUBLE_EQ((*y)(1, 0), 7.0);
}

TEST(SequentialModelTest, PredictIsConstSafe) {
  Rng rng(3);
  const SequentialModel m = TwoLayerNet(&rng);
  Matrix x{{0.5, -0.5}};
  auto y1 = m.Predict(x);
  auto y2 = m.Predict(x);
  ASSERT_TRUE(y1.ok());
  ASSERT_TRUE(y2.ok());
  EXPECT_EQ(*y1, *y2);
}

TEST(SequentialModelTest, ForwardThenBackwardShapes) {
  Rng rng(5);
  SequentialModel m = TwoLayerNet(&rng);
  Matrix x{{0.5, -0.5}, {1.0, 2.0}};
  Matrix target{{0.0}, {1.0}};
  auto y = m.Forward(x);
  ASSERT_TRUE(y.ok());
  auto dl = ComputeLossGrad(LossKind::kMse, *y, target);
  ASSERT_TRUE(dl.ok());
  auto grads = m.Backward(*dl);
  ASSERT_TRUE(grads.ok());
  ASSERT_EQ(grads->size(), 2u);
  EXPECT_TRUE((*grads)[0].d_weights.SameShape(m.layer(0).weights()));
  EXPECT_EQ((*grads)[1].d_bias.size(), 1u);
}

TEST(SequentialModelTest, ParameterCountAndRoundTrip) {
  Rng rng(7);
  SequentialModel m = TwoLayerNet(&rng);
  EXPECT_EQ(m.ParameterCount(), (2u * 4 + 4) + (4u * 1 + 1));
  std::vector<double> params = m.GetParameters();
  ASSERT_EQ(params.size(), m.ParameterCount());

  Rng rng2(999);
  SequentialModel other = TwoLayerNet(&rng2);
  ASSERT_TRUE(other.SetParameters(params).ok());
  Matrix x{{0.3, 0.7}};
  EXPECT_EQ(m.Predict(x).value(), other.Predict(x).value());
}

TEST(SequentialModelTest, SetParametersWrongSizeFails) {
  Rng rng(9);
  SequentialModel m = TwoLayerNet(&rng);
  std::vector<double> bad(m.ParameterCount() + 1, 0.0);
  EXPECT_TRUE(m.SetParameters(bad).IsInvalidArgument());
}

TEST(SequentialModelTest, CloneIsIndependent) {
  Rng rng(11);
  SequentialModel m = TwoLayerNet(&rng);
  SequentialModel clone = m.Clone();
  clone.layer(0).weights()(0, 0) += 100.0;
  Matrix x{{1.0, 1.0}};
  EXPECT_NE(m.Predict(x).value()(0, 0), clone.Predict(x).value()(0, 0));
}

TEST(SequentialModelTest, SameArchitecture) {
  Rng rng(13);
  SequentialModel a = TwoLayerNet(&rng);
  SequentialModel b = TwoLayerNet(&rng);
  EXPECT_TRUE(a.SameArchitecture(b));

  SequentialModel c;
  ASSERT_TRUE(c.AddLayer(2, 4, Activation::kTanh).ok());  // Different act.
  ASSERT_TRUE(c.AddLayer(4, 1, Activation::kIdentity).ok());
  EXPECT_FALSE(a.SameArchitecture(c));

  SequentialModel d;
  ASSERT_TRUE(d.AddLayer(2, 8, Activation::kRelu).ok());  // Different width.
  ASSERT_TRUE(d.AddLayer(8, 1, Activation::kIdentity).ok());
  EXPECT_FALSE(a.SameArchitecture(d));
}

TEST(SequentialModelTest, DeepStackForward) {
  SequentialModel m;
  ASSERT_TRUE(m.AddLayer(1, 3, Activation::kTanh).ok());
  ASSERT_TRUE(m.AddLayer(3, 3, Activation::kTanh).ok());
  ASSERT_TRUE(m.AddLayer(3, 2, Activation::kSigmoid).ok());
  ASSERT_TRUE(m.AddLayer(2, 1, Activation::kIdentity).ok());
  Rng rng(17);
  m.InitWeights(&rng);
  Matrix x{{0.2}, {0.4}, {0.8}};
  auto y = m.Predict(x);
  ASSERT_TRUE(y.ok());
  EXPECT_EQ(y->rows(), 3u);
  EXPECT_EQ(y->cols(), 1u);
}

}  // namespace
}  // namespace qens::ml
