// Tests for the leveled logger and the stopwatch.

#include "qens/common/logging.h"

#include <gtest/gtest.h>

#include <thread>

#include "qens/common/stopwatch.h"

namespace qens {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override { Logging::SetLevel(LogLevel::kInfo); }
};

TEST_F(LoggingTest, LevelRoundTrip) {
  Logging::SetLevel(LogLevel::kWarning);
  EXPECT_EQ(Logging::GetLevel(), LogLevel::kWarning);
  Logging::SetLevel(LogLevel::kDebug);
  EXPECT_EQ(Logging::GetLevel(), LogLevel::kDebug);
}

TEST_F(LoggingTest, LevelNames) {
  EXPECT_STREQ(Logging::LevelName(LogLevel::kDebug), "DEBUG");
  EXPECT_STREQ(Logging::LevelName(LogLevel::kInfo), "INFO");
  EXPECT_STREQ(Logging::LevelName(LogLevel::kWarning), "WARN");
  EXPECT_STREQ(Logging::LevelName(LogLevel::kError), "ERROR");
  EXPECT_STREQ(Logging::LevelName(LogLevel::kOff), "OFF");
}

TEST_F(LoggingTest, EmitBelowThresholdIsNoOp) {
  // No crash and no visible way to assert stderr here; exercise the path.
  Logging::SetLevel(LogLevel::kOff);
  Logging::Emit(LogLevel::kError, "suppressed");
  QENS_LOG(Error) << "also suppressed " << 42;
}

TEST_F(LoggingTest, StreamBuilderFormats) {
  Logging::SetLevel(LogLevel::kOff);  // Silence output; exercise the path.
  QENS_LOG(Info) << "value=" << 3.5 << " text=" << std::string("x");
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double elapsed = watch.ElapsedSeconds();
  EXPECT_GE(elapsed, 0.015);
  EXPECT_LT(elapsed, 5.0);
  EXPECT_NEAR(watch.ElapsedMillis(), watch.ElapsedSeconds() * 1e3,
              watch.ElapsedSeconds() * 100);
}

TEST(StopwatchTest, RestartResetsOrigin) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  watch.Restart();
  EXPECT_LT(watch.ElapsedSeconds(), 0.015);
}

TEST(StopwatchTest, MonotoneNonDecreasing) {
  Stopwatch watch;
  double prev = 0.0;
  for (int i = 0; i < 100; ++i) {
    const double now = watch.ElapsedSeconds();
    EXPECT_GE(now, prev);
    prev = now;
  }
}

}  // namespace
}  // namespace qens
