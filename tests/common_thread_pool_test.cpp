// Tests for the shared worker pool: futures arrive in submission order with
// the right values, chunk grids cover the input exactly once with
// worker-count-independent boundaries, exceptions propagate through
// futures, and destruction drains the queue.

#include "qens/common/thread_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace qens::common {
namespace {

TEST(ThreadPoolTest, WorkerCountClampedToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  ThreadPool pool4(4);
  EXPECT_EQ(pool4.num_threads(), 4u);
}

TEST(ThreadPoolTest, SubmitReturnsResultsInSubmissionOrder) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(futures[static_cast<size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPoolTest, OversubscribedSubmitsAllComplete) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.Submit([&count] { ++count; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPoolTest, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  auto future = pool.Submit(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ParallelChunksCoversEveryIndexOnce) {
  ThreadPool pool(3);
  const size_t n = 10000;
  const size_t chunk_rows = 256;
  std::vector<int> hits(n, 0);
  pool.ParallelChunks(n, chunk_rows, [&](size_t chunk, size_t begin,
                                         size_t end) {
    // Boundaries must come from the fixed grid, never the worker count.
    EXPECT_EQ(begin, chunk * chunk_rows);
    EXPECT_EQ(end, std::min(begin + chunk_rows, n));
    for (size_t i = begin; i < end; ++i) ++hits[i];
  });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0),
            static_cast<int>(n));
  for (size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i], 1) << "index " << i;
}

TEST(ThreadPoolTest, ParallelChunksHandlesShortAndEmptyInputs) {
  ThreadPool pool(4);
  // n smaller than one chunk: exactly one call covering [0, n).
  size_t calls = 0;
  pool.ParallelChunks(5, 2048, [&](size_t chunk, size_t begin, size_t end) {
    ++calls;
    EXPECT_EQ(chunk, 0u);
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 5u);
  });
  EXPECT_EQ(calls, 1u);
  // n == 0: no calls at all.
  pool.ParallelChunks(0, 16, [&](size_t, size_t, size_t) { ++calls; });
  EXPECT_EQ(calls, 1u);
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 32; ++i) {
      pool.Submit([&count] { ++count; });
    }
  }  // Destructor must run every queued task before joining.
  EXPECT_EQ(count.load(), 32);
}

TEST(ThreadPoolTest, ReusableAcrossBatchesOfWork) {
  ThreadPool pool(2);
  for (int batch = 0; batch < 5; ++batch) {
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 10; ++i) {
      futures.push_back(pool.Submit([batch, i] { return batch * 100 + i; }));
    }
    for (int i = 0; i < 10; ++i) {
      EXPECT_EQ(futures[static_cast<size_t>(i)].get(), batch * 100 + i);
    }
  }
}

TEST(ThreadPoolTest, DefaultThreadCountIsPositive) {
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1u);
}

}  // namespace
}  // namespace qens::common
