// Tests for the leader-side query planner: selection consistency, row and
// time estimates, executability, and agreement with actual execution.

#include "qens/fl/planner.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "qens/common/rng.h"
#include "qens/fl/federation.h"

namespace qens::fl {
namespace {

selection::NodeProfile MakeProfile(size_t id, double lo, double hi,
                                   size_t size) {
  selection::NodeProfile p;
  p.node_id = id;
  p.total_samples = size;
  clustering::ClusterSummary c;
  c.centroid = {(lo + hi) / 2};
  c.bounds = query::HyperRectangle::FromFlatBounds({lo, hi}).value();
  c.size = size;
  p.clusters.push_back(c);
  return p;
}

query::RangeQuery MakeQuery(double lo, double hi) {
  query::RangeQuery q;
  q.region = query::HyperRectangle::FromFlatBounds({lo, hi}).value();
  return q;
}

PlannerOptions DefaultOptions() {
  PlannerOptions options;
  options.ranking.epsilon = 0.1;
  options.selection.top_l = 2;
  options.epochs_per_cluster = 10;
  return options;
}

TEST(PlannerTest, SelectsMatchingNodesOnly) {
  std::vector<selection::NodeProfile> profiles = {
      MakeProfile(0, 0, 10, 100), MakeProfile(1, 100, 110, 100),
      MakeProfile(2, 0, 12, 200)};
  auto plan = PlanQuery(profiles, {}, MakeQuery(0, 10), DefaultOptions());
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->executable);
  ASSERT_EQ(plan->nodes.size(), 2u);
  for (const auto& node : plan->nodes) EXPECT_NE(node.node_id, 1u);
  EXPECT_EQ(plan->total_supporting_samples, 300u);
}

TEST(PlannerTest, RowEstimateTracksCoverage) {
  // Query covers half of node 0's box: ~50 of 100 rows.
  std::vector<selection::NodeProfile> profiles = {MakeProfile(0, 0, 10, 100)};
  auto plan = PlanQuery(profiles, {}, MakeQuery(0, 5), DefaultOptions());
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(plan->executable);
  EXPECT_NEAR(plan->nodes[0].estimated_rows, 50.0, 1e-9);
}

TEST(PlannerTest, NotExecutableWhenNothingSupports) {
  std::vector<selection::NodeProfile> profiles = {MakeProfile(0, 0, 10, 100)};
  auto plan =
      PlanQuery(profiles, {}, MakeQuery(500, 510), DefaultOptions());
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(plan->executable);
  EXPECT_TRUE(plan->nodes.empty());
  EXPECT_NE(plan->ToString().find("NOT EXECUTABLE"), std::string::npos);
}

TEST(PlannerTest, FasterNodesPlanShorterTraining) {
  std::vector<selection::NodeProfile> profiles = {
      MakeProfile(0, 0, 10, 100), MakeProfile(1, 0, 10, 100)};
  auto plan = PlanQuery(profiles, {1.0, 4.0}, MakeQuery(0, 10),
                        DefaultOptions());
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->nodes.size(), 2u);
  const auto& n0 = plan->nodes[0].node_id == 0 ? plan->nodes[0]
                                               : plan->nodes[1];
  const auto& n1 = plan->nodes[0].node_id == 1 ? plan->nodes[0]
                                               : plan->nodes[1];
  EXPECT_GT(n0.est_train_seconds, n1.est_train_seconds);
}

TEST(PlannerTest, CommBytesScaleWithNodeCount) {
  std::vector<selection::NodeProfile> one = {MakeProfile(0, 0, 10, 100)};
  std::vector<selection::NodeProfile> two = {MakeProfile(0, 0, 10, 100),
                                             MakeProfile(1, 0, 10, 100)};
  auto plan1 = PlanQuery(one, {}, MakeQuery(0, 10), DefaultOptions());
  auto plan2 = PlanQuery(two, {}, MakeQuery(0, 10), DefaultOptions());
  ASSERT_TRUE(plan1.ok());
  ASSERT_TRUE(plan2.ok());
  EXPECT_GT(plan1->est_comm_bytes, 0u);
  EXPECT_EQ(plan2->est_comm_bytes, 2 * plan1->est_comm_bytes);
}

TEST(PlannerTest, CapacityMismatchRejected) {
  std::vector<selection::NodeProfile> profiles = {MakeProfile(0, 0, 10, 100)};
  EXPECT_FALSE(
      PlanQuery(profiles, {1.0, 2.0}, MakeQuery(0, 10), DefaultOptions())
          .ok());
}

TEST(PlannerTest, PlanAgreesWithFederationExecution) {
  // Build a real federation and check the plan's node choice and sample
  // counts match what RunQueryDriven actually does.
  Rng rng(3);
  auto make_node = [&](double offset, uint64_t seed) {
    Rng r(seed);
    Matrix x(200, 1), y(200, 1);
    for (size_t i = 0; i < 200; ++i) {
      x(i, 0) = offset + r.Uniform(0, 10);
      y(i, 0) = 2 * x(i, 0) + r.Gaussian(0, 0.1);
    }
    return data::Dataset::Create(x, y).value();
  };
  FederationOptions fed_options;
  fed_options.environment.kmeans.k = 3;
  fed_options.ranking.epsilon = 0.1;
  fed_options.query_driven.top_l = 2;
  fed_options.hyper = ml::PaperHyperParams(ml::ModelKind::kLinearRegression);
  fed_options.hyper.epochs = 10;
  fed_options.epochs_per_cluster = 5;
  fed_options.seed = 9;
  auto fed = Federation::Create(
      {make_node(0, 1), make_node(0, 2), make_node(50, 3)}, fed_options);
  ASSERT_TRUE(fed.ok());

  query::RangeQuery q = MakeQuery(0, 10);
  auto internal = fed->InternalQuery(q);
  ASSERT_TRUE(internal.ok());

  PlannerOptions plan_options;
  plan_options.ranking = fed_options.ranking;
  plan_options.selection = fed_options.query_driven;
  plan_options.epochs_per_cluster = fed_options.epochs_per_cluster;
  plan_options.hyper = fed_options.hyper;
  auto profiles = fed->environment().Profiles();
  ASSERT_TRUE(profiles.ok());
  auto plan = PlanQuery(*profiles, {}, *internal, plan_options);
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(plan->executable);

  auto outcome = fed->RunQueryDriven(q);
  ASSERT_TRUE(outcome.ok());
  ASSERT_FALSE(outcome->skipped);
  // Same node set...
  std::vector<size_t> planned;
  for (const auto& n : plan->nodes) planned.push_back(n.node_id);
  std::sort(planned.begin(), planned.end());
  std::vector<size_t> executed = outcome->selected_nodes;
  std::sort(executed.begin(), executed.end());
  EXPECT_EQ(planned, executed);
  // ...and the same training volume.
  EXPECT_EQ(plan->total_supporting_samples, outcome->samples_used);
}

TEST(PlannerTest, PlanBytesMatchTransportAccounting) {
  // The plan's est_comm_bytes must equal the model traffic a fault-free
  // RunQuery actually pushes through the Transport seam. A session-private
  // network isolates the deltas (no profile traffic mixed in).
  auto make_node = [&](double offset, uint64_t seed) {
    Rng r(seed);
    Matrix x(200, 1), y(200, 1);
    for (size_t i = 0; i < 200; ++i) {
      x(i, 0) = offset + r.Uniform(0, 10);
      y(i, 0) = 2 * x(i, 0) + r.Gaussian(0, 0.1);
    }
    return data::Dataset::Create(x, y).value();
  };
  FederationOptions fed_options;
  fed_options.environment.kmeans.k = 3;
  fed_options.ranking.epsilon = 0.1;
  fed_options.query_driven.top_l = 2;
  fed_options.hyper = ml::PaperHyperParams(ml::ModelKind::kLinearRegression);
  fed_options.hyper.epochs = 10;
  fed_options.epochs_per_cluster = 5;
  fed_options.seed = 9;
  auto fleet = Fleet::Create(
      {make_node(0, 1), make_node(0, 2), make_node(50, 3)}, fed_options);
  ASSERT_TRUE(fleet.ok());
  auto session = QuerySession::Create(*fleet, QuerySessionOptions{});
  ASSERT_TRUE(session.ok());

  query::RangeQuery q = MakeQuery(0, 10);
  auto internal = (*fleet)->InternalQuery(q);
  ASSERT_TRUE(internal.ok());
  PlannerOptions plan_options;
  plan_options.ranking = fed_options.ranking;
  plan_options.selection = fed_options.query_driven;
  plan_options.epochs_per_cluster = fed_options.epochs_per_cluster;
  plan_options.hyper = fed_options.hyper;
  plan_options.session_seed = session->seed();  // Price the exact model.
  auto profiles = (*fleet)->environment.Profiles();
  ASSERT_TRUE(profiles.ok());
  auto plan = PlanQuery(*profiles, {}, *internal, plan_options);
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(plan->executable);

  auto outcome = session->RunQuery(
      q, selection::PolicyKind::kQueryDriven, /*data_selectivity=*/true);
  ASSERT_TRUE(outcome.ok());
  ASSERT_FALSE(outcome->skipped);

  // Same node set, same training volume...
  std::vector<size_t> planned;
  for (const auto& n : plan->nodes) planned.push_back(n.node_id);
  std::sort(planned.begin(), planned.end());
  std::vector<size_t> executed = outcome->selected_nodes;
  std::sort(executed.begin(), executed.end());
  EXPECT_EQ(planned, executed);
  EXPECT_EQ(plan->total_supporting_samples, outcome->samples_used);

  // ...and exactly the predicted broadcast bytes on the wire. With
  // session_seed set the plan prices the exact initial model, so the
  // model-down traffic (the predictable half of est_comm_bytes: the text
  // serialization of a TRAINED model — the up-link — depends on the weight
  // digits after training) must match byte-for-byte.
  const Transport& transport = session->transport();
  const size_t down_bytes = transport.BytesWithTag("model-down");
  const size_t up_bytes = transport.BytesWithTag("model-up");
  EXPECT_EQ(down_bytes, plan->est_comm_bytes / 2);
  EXPECT_GT(up_bytes, 0u);
  // One down + one up per selected node, nothing else on the private
  // network (profile traffic was accounted at fleet build, elsewhere).
  EXPECT_EQ(transport.total_messages(), 2 * plan->nodes.size());
  EXPECT_EQ(transport.total_bytes(), down_bytes + up_bytes);
}

}  // namespace
}  // namespace qens::fl
