// Tests for the dense Matrix: construction, access, algebra, shape errors.

#include "qens/tensor/matrix.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>

namespace qens {
namespace {

TEST(MatrixTest, DefaultIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
  EXPECT_TRUE(m.empty());
}

TEST(MatrixTest, ZeroInitialized) {
  Matrix m(2, 3);
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 3; ++c) EXPECT_EQ(m(r, c), 0.0);
  }
}

TEST(MatrixTest, FillConstructor) {
  Matrix m(2, 2, 7.5);
  EXPECT_EQ(m(0, 0), 7.5);
  EXPECT_EQ(m(1, 1), 7.5);
}

TEST(MatrixTest, InitializerList) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m(0, 2), 3.0);
  EXPECT_EQ(m(1, 0), 4.0);
}

TEST(MatrixTest, FromFlatValid) {
  auto m = Matrix::FromFlat(2, 2, {1, 2, 3, 4});
  ASSERT_TRUE(m.ok());
  EXPECT_EQ((*m)(1, 0), 3.0);
}

TEST(MatrixTest, FromFlatSizeMismatch) {
  EXPECT_FALSE(Matrix::FromFlat(2, 2, {1, 2, 3}).ok());
}

TEST(MatrixTest, Identity) {
  Matrix eye = Matrix::Identity(3);
  EXPECT_EQ(eye(0, 0), 1.0);
  EXPECT_EQ(eye(1, 1), 1.0);
  EXPECT_EQ(eye(0, 1), 0.0);
}

TEST(MatrixTest, RowAndColCopies) {
  Matrix m{{1, 2}, {3, 4}};
  EXPECT_EQ(m.Row(1), (std::vector<double>{3, 4}));
  EXPECT_EQ(m.Col(0), (std::vector<double>{1, 3}));
}

TEST(MatrixTest, SetRow) {
  Matrix m(2, 2);
  EXPECT_TRUE(m.SetRow(0, {5, 6}).ok());
  EXPECT_EQ(m(0, 1), 6.0);
  EXPECT_TRUE(m.SetRow(5, {1, 2}).IsOutOfRange());
  EXPECT_TRUE(m.SetRow(0, {1}).IsInvalidArgument());
}

TEST(MatrixTest, SelectRows) {
  Matrix m{{1, 2}, {3, 4}, {5, 6}};
  auto sel = m.SelectRows({2, 0});
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ((*sel)(0, 0), 5.0);
  EXPECT_EQ((*sel)(1, 0), 1.0);
  EXPECT_TRUE(m.SelectRows({7}).status().IsOutOfRange());
}

TEST(MatrixTest, SelectRowsEmptyIndexList) {
  Matrix m{{1, 2}};
  auto sel = m.SelectRows({});
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel->rows(), 0u);
  EXPECT_EQ(sel->cols(), 2u);
}

TEST(MatrixTest, Transposed) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  Matrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_EQ(t(2, 1), 6.0);
  EXPECT_EQ(t.Transposed(), m);
}

TEST(MatrixTest, MatMulCorrectness) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{5, 6}, {7, 8}};
  auto c = a.MatMul(b);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ((*c)(0, 0), 19.0);
  EXPECT_EQ((*c)(0, 1), 22.0);
  EXPECT_EQ((*c)(1, 0), 43.0);
  EXPECT_EQ((*c)(1, 1), 50.0);
}

TEST(MatrixTest, MatMulIdentity) {
  Matrix a{{1, 2}, {3, 4}};
  auto c = a.MatMul(Matrix::Identity(2));
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*c, a);
}

TEST(MatrixTest, MatMulShapeMismatch) {
  Matrix a(2, 3);
  Matrix b(2, 3);
  EXPECT_TRUE(a.MatMul(b).status().IsInvalidArgument());
}

TEST(MatrixTest, MatMulRectangular) {
  Matrix a{{1, 0, 2}};          // 1x3
  Matrix b{{1}, {2}, {3}};      // 3x1
  auto c = a.MatMul(b);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->rows(), 1u);
  EXPECT_EQ(c->cols(), 1u);
  EXPECT_EQ((*c)(0, 0), 7.0);
}

TEST(MatrixTest, AxpyAndArithmetic) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{1, 1}, {1, 1}};
  ASSERT_TRUE(a.Axpy(2.0, b).ok());
  EXPECT_EQ(a(0, 0), 3.0);
  auto sum = a.Add(b);
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ((*sum)(1, 1), 7.0);
  auto diff = a.Sub(b);
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ((*diff)(0, 0), 2.0);
  auto had = a.Hadamard(b);
  ASSERT_TRUE(had.ok());
  EXPECT_EQ((*had)(0, 1), 4.0);
}

TEST(MatrixTest, ArithmeticShapeMismatch) {
  Matrix a(2, 2), b(2, 3);
  EXPECT_FALSE(a.Add(b).ok());
  EXPECT_FALSE(a.Sub(b).ok());
  EXPECT_FALSE(a.Hadamard(b).ok());
  EXPECT_FALSE(a.Axpy(1.0, b).ok());
}

TEST(MatrixTest, ScaleAndFill) {
  Matrix m{{1, -2}};
  m.Scale(-3.0);
  EXPECT_EQ(m(0, 0), -3.0);
  EXPECT_EQ(m(0, 1), 6.0);
  m.Fill(9.0);
  EXPECT_EQ(m(0, 0), 9.0);
}

TEST(MatrixTest, AddRowBroadcast) {
  Matrix m{{1, 2}, {3, 4}};
  ASSERT_TRUE(m.AddRowBroadcast({10, 20}).ok());
  EXPECT_EQ(m(0, 0), 11.0);
  EXPECT_EQ(m(1, 1), 24.0);
  EXPECT_TRUE(m.AddRowBroadcast({1}).IsInvalidArgument());
}

TEST(MatrixTest, ColSumsAndMeans) {
  Matrix m{{1, 2}, {3, 4}, {5, 6}};
  EXPECT_EQ(m.ColSums(), (std::vector<double>{9, 12}));
  EXPECT_EQ(m.ColMeans(), (std::vector<double>{3, 4}));
}

TEST(MatrixTest, ColMeansOfEmpty) {
  Matrix m(0, 3);
  EXPECT_EQ(m.ColMeans(), (std::vector<double>{0, 0, 0}));
}

TEST(MatrixTest, FrobeniusNorm) {
  Matrix m{{3, 4}};
  EXPECT_DOUBLE_EQ(m.FrobeniusNorm(), 5.0);
}

TEST(MatrixTest, MaxAbsDiff) {
  Matrix a{{1, 2}}, b{{1.5, 1}};
  EXPECT_DOUBLE_EQ(a.MaxAbsDiff(b), 1.0);
  Matrix c(2, 2);
  EXPECT_TRUE(std::isinf(a.MaxAbsDiff(c)));
}

TEST(MatrixTest, MatMulAssociativityProperty) {
  // (A B) C == A (B C) on small random-ish integers.
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{0, 1}, {1, 0}};
  Matrix c{{2, 0}, {0, 2}};
  Matrix left = a.MatMul(b).value().MatMul(c).value();
  Matrix right = a.MatMul(b.MatMul(c).value()).value();
  EXPECT_EQ(left, right);
}

// Regression: the GEMM inner loop must not skip zero multiplicands —
// IEEE 754 says 0 * NaN = NaN and 0 * inf = NaN, so a zero-skip silently
// masks non-finite values flowing through a model.
TEST(MatrixTest, MatMulPropagatesNanThroughZeroEntries) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  Matrix a{{0.0, 1.0}};
  Matrix b{{nan, 0.0}, {2.0, 3.0}};
  auto c = a.MatMul(b);
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(std::isnan((*c)(0, 0)));  // 0*NaN + 1*2 must be NaN.
  EXPECT_EQ((*c)(0, 1), 3.0);

  Matrix zero{{0.0}};
  Matrix infm{{inf}};
  auto zi = zero.MatMul(infm);
  ASSERT_TRUE(zi.ok());
  EXPECT_TRUE(std::isnan((*zi)(0, 0)));  // 0 * inf = NaN.
}

/// Deterministic pseudo-random matrix (LCG; no RNG dependency needed).
Matrix PseudoRandom(size_t rows, size_t cols, uint64_t seed) {
  Matrix m(rows, cols);
  uint64_t state = seed * 6364136223846793005ULL + 1442695040888963407ULL;
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      m(r, c) =
          static_cast<double>(state >> 11) / static_cast<double>(1ULL << 53) -
          0.5;
    }
  }
  return m;
}

// The fused transposed kernels must be BITWISE equal to the materialized
// compositions they replace (same per-element accumulation order), on
// shapes matching the paper's MLP (batch 32, 13 features, 64 hidden units).
TEST(MatrixTest, MatMulTransposedAMatchesMaterializedTranspose) {
  Matrix x = PseudoRandom(32, 13, 1);
  Matrix dz = PseudoRandom(32, 64, 2);
  auto fused = x.MatMulTransposedA(dz);
  auto naive = x.Transposed().MatMul(dz);
  ASSERT_TRUE(fused.ok());
  ASSERT_TRUE(naive.ok());
  EXPECT_EQ(fused->data(), naive->data());
  EXPECT_EQ(fused->rows(), 13u);
  EXPECT_EQ(fused->cols(), 64u);
  EXPECT_FALSE(x.MatMulTransposedA(PseudoRandom(31, 4, 3)).ok());
}

TEST(MatrixTest, MatMulTransposedBMatchesMaterializedTranspose) {
  Matrix dz = PseudoRandom(32, 64, 4);
  Matrix w = PseudoRandom(13, 64, 5);
  auto fused = dz.MatMulTransposedB(w);
  auto naive = dz.MatMul(w.Transposed());
  ASSERT_TRUE(fused.ok());
  ASSERT_TRUE(naive.ok());
  EXPECT_EQ(fused->data(), naive->data());
  EXPECT_EQ(fused->rows(), 32u);
  EXPECT_EQ(fused->cols(), 13u);
  EXPECT_FALSE(dz.MatMulTransposedB(PseudoRandom(5, 63, 6)).ok());
}

TEST(MatrixTest, MatMulAddBiasMatchesComposition) {
  Matrix x = PseudoRandom(32, 13, 7);
  Matrix w = PseudoRandom(13, 64, 8);
  std::vector<double> bias(64);
  for (size_t i = 0; i < bias.size(); ++i) {
    bias[i] = 0.01 * static_cast<double>(i) - 0.3;
  }
  Matrix fused;
  ASSERT_TRUE(x.MatMulAddBiasInto(w, bias, &fused).ok());
  Matrix naive = x.MatMul(w).value();
  ASSERT_TRUE(naive.AddRowBroadcast(bias).ok());
  EXPECT_EQ(fused.data(), naive.data());
  // Shape errors: bad bias width, bad inner dimension.
  EXPECT_FALSE(x.MatMulAddBiasInto(w, std::vector<double>(63), &fused).ok());
  EXPECT_FALSE(x.MatMulAddBiasInto(PseudoRandom(12, 4, 9), bias, &fused).ok());
}

TEST(MatrixTest, SelectRowsIntoMatchesSelectRowsAndReusesBuffer) {
  Matrix m = PseudoRandom(10, 4, 10);
  const std::vector<size_t> idx = {7, 0, 3, 3, 9};
  Matrix out;
  ASSERT_TRUE(m.SelectRowsInto(idx, &out).ok());
  EXPECT_EQ(out.data(), m.SelectRows(idx).value().data());
  const double* buffer = out.data().data();
  ASSERT_TRUE(m.SelectRowsInto({1, 2, 4, 5, 6}, &out).ok());
  // Same shape, same capacity: steady-state reuse must not reallocate.
  EXPECT_EQ(out.data().data(), buffer);
  EXPECT_FALSE(m.SelectRowsInto({10}, &out).ok());  // Out-of-range row.
}

TEST(MatrixTest, HadamardInPlaceMatchesHadamard) {
  Matrix a = PseudoRandom(6, 5, 11);
  Matrix b = PseudoRandom(6, 5, 12);
  Matrix expected = a.Hadamard(b).value();
  ASSERT_TRUE(a.HadamardInPlace(b).ok());
  EXPECT_EQ(a.data(), expected.data());
  EXPECT_FALSE(a.HadamardInPlace(PseudoRandom(5, 5, 13)).ok());
}

TEST(MatrixTest, MatMulIntoReusesDestination) {
  Matrix a = PseudoRandom(8, 6, 14);
  Matrix b = PseudoRandom(6, 9, 15);
  Matrix out;
  ASSERT_TRUE(a.MatMulInto(b, &out).ok());
  EXPECT_EQ(out.data(), a.MatMul(b).value().data());
  const double* buffer = out.data().data();
  ASSERT_TRUE(a.MatMulInto(b, &out).ok());
  EXPECT_EQ(out.data().data(), buffer);  // No reallocation on reuse.
}

}  // namespace
}  // namespace qens
