// Tests for model serialization: exact round trips, malformed input
// rejection, file IO, byte accounting.

#include "qens/ml/model_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <limits>

#include "qens/common/rng.h"

namespace qens::ml {
namespace {

SequentialModel RandomNet(uint64_t seed) {
  SequentialModel m;
  EXPECT_TRUE(m.AddLayer(3, 8, Activation::kRelu).ok());
  EXPECT_TRUE(m.AddLayer(8, 1, Activation::kIdentity).ok());
  Rng rng(seed);
  m.InitWeights(&rng);
  return m;
}

TEST(ModelIoTest, RoundTripIsExact) {
  SequentialModel m = RandomNet(1);
  const std::string text = SerializeModel(m);
  auto back = DeserializeModel(text);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->SameArchitecture(m));
  // Hex-float encoding must round-trip bit-exactly.
  EXPECT_EQ(back->GetParameters(), m.GetParameters());
}

TEST(ModelIoTest, RoundTripSingleLayer) {
  SequentialModel m;
  ASSERT_TRUE(m.AddLayer(1, 1, Activation::kIdentity).ok());
  m.layer(0).weights()(0, 0) = -0.123456789012345;
  m.layer(0).bias()[0] = 3.9999999999;
  auto back = DeserializeModel(SerializeModel(m));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->GetParameters(), m.GetParameters());
}

TEST(ModelIoTest, CommentsAndBlankLinesIgnored) {
  SequentialModel m = RandomNet(2);
  std::string text = SerializeModel(m);
  text = "# a comment\n\n" + text;
  EXPECT_TRUE(DeserializeModel(text).ok());
}

TEST(ModelIoTest, RejectsBadMagic) {
  EXPECT_FALSE(DeserializeModel("not-a-model v9\nlayers 0\n").ok());
  EXPECT_FALSE(DeserializeModel("").ok());
}

TEST(ModelIoTest, RejectsMalformedLayerLine) {
  const std::string text =
      "qens-model v1\nlayers 1\nlayer 2 relu\nparams 0\n";
  EXPECT_FALSE(DeserializeModel(text).ok());
}

TEST(ModelIoTest, RejectsNonChainingLayers) {
  const std::string text =
      "qens-model v1\nlayers 2\nlayer 2 4 relu\nlayer 5 1 identity\n"
      "params 0\n";
  EXPECT_FALSE(DeserializeModel(text).ok());
}

TEST(ModelIoTest, RejectsWrongParamCount) {
  SequentialModel m = RandomNet(3);
  std::string text = SerializeModel(m);
  const size_t pos = text.find("params ");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, text.find('\n', pos) - pos, "params 1");
  EXPECT_FALSE(DeserializeModel(text).ok());
}

TEST(ModelIoTest, RejectsTruncatedParams) {
  SequentialModel m = RandomNet(4);
  std::string text = SerializeModel(m);
  text.resize(text.size() / 2);
  EXPECT_FALSE(DeserializeModel(text).ok());
}

TEST(ModelIoTest, RejectsUnknownActivation) {
  const std::string text =
      "qens-model v1\nlayers 1\nlayer 1 1 swish\nparams 2\n0 0\n";
  EXPECT_FALSE(DeserializeModel(text).ok());
}

TEST(ModelIoTest, FileSaveLoad) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "qens_model_io_test.model")
          .string();
  SequentialModel m = RandomNet(5);
  ASSERT_TRUE(SaveModel(m, path).ok());
  auto back = LoadModel(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->GetParameters(), m.GetParameters());
  std::remove(path.c_str());
}

TEST(ModelIoTest, LoadMissingFileFails) {
  EXPECT_TRUE(LoadModel("/nonexistent/dir/model.txt").status().IsIOError());
}

TEST(ModelIoTest, RejectsTrailingGarbage) {
  SequentialModel m = RandomNet(8);
  const std::string text = SerializeModel(m);
  // Any non-whitespace after the parameter block is an error ...
  EXPECT_FALSE(DeserializeModel(text + "extra").ok());
  EXPECT_FALSE(DeserializeModel(text + "\n0.5\n").ok());
  EXPECT_FALSE(DeserializeModel(text + "# comment\n").ok());
  EXPECT_FALSE(DeserializeModel(text + text).ok());
  // ... but trailing whitespace is fine.
  EXPECT_TRUE(DeserializeModel(text + "  \n\t\n").ok());
}

TEST(ModelIoTest, SerializedBytesMatchesTextSize) {
  SequentialModel m = RandomNet(6);
  EXPECT_EQ(SerializedModelBytes(m), SerializeModel(m).size());
  EXPECT_GT(SerializedModelBytes(m), 0u);
}

TEST(ModelIoTest, SerializedBytesMatchesTextSizeOnSpecials) {
  // The byte count is computed without materializing the string; it must
  // stay exact for every hex-float width, specials included.
  SequentialModel m;
  ASSERT_TRUE(m.AddLayer(3, 2, Activation::kTanh).ok());
  ASSERT_TRUE(m
                  .SetParameters({std::numeric_limits<double>::quiet_NaN(),
                                  std::numeric_limits<double>::infinity(),
                                  -std::numeric_limits<double>::infinity(),
                                  std::numeric_limits<double>::denorm_min(),
                                  -0.0, 0.0, 1e308, -1e-308})
                  .ok());
  EXPECT_EQ(SerializedModelBytes(m), SerializeModel(m).size());
  SequentialModel empty;
  EXPECT_EQ(SerializedModelBytes(empty), SerializeModel(empty).size());
}

TEST(ModelIoTest, ByteAccountingDoesNotSerialize) {
  // Regression: SerializedModelBytes used to build the full text just to
  // take .size(), turning the per-node accounting path into O(params)
  // string churn. It must not invoke the serializer at all.
  SequentialModel m = RandomNet(9);
  const size_t before = internal::SerializeCallCountForTest();
  for (int i = 0; i < 16; ++i) (void)SerializedModelBytes(m);
  EXPECT_EQ(internal::SerializeCallCountForTest(), before);
  (void)SerializeModel(m);
  EXPECT_EQ(internal::SerializeCallCountForTest(), before + 1);
}

TEST(ModelIoTest, BiggerModelSerializesBigger) {
  SequentialModel small;
  ASSERT_TRUE(small.AddLayer(1, 1, Activation::kIdentity).ok());
  SequentialModel big = RandomNet(7);
  EXPECT_GT(SerializedModelBytes(big), SerializedModelBytes(small));
}

}  // namespace
}  // namespace qens::ml
