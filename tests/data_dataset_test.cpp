// Tests for the Dataset container.

#include "qens/data/dataset.h"

#include <gtest/gtest.h>

namespace qens::data {
namespace {

Dataset Small() {
  Matrix x{{1, 10}, {2, 20}, {3, 30}};
  Matrix y{{100}, {200}, {300}};
  return Dataset::Create(x, y, {"a", "b"}, "t").value();
}

TEST(DatasetTest, CreateValid) {
  Dataset d = Small();
  EXPECT_EQ(d.NumSamples(), 3u);
  EXPECT_EQ(d.NumFeatures(), 2u);
  EXPECT_FALSE(d.empty());
  EXPECT_EQ(d.target_name(), "t");
  EXPECT_EQ(d.feature_names()[1], "b");
}

TEST(DatasetTest, CreateAutoNames) {
  Matrix x(2, 3);
  Matrix y(2, 1);
  auto d = Dataset::Create(x, y);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->feature_names(), (std::vector<std::string>{"f0", "f1", "f2"}));
  EXPECT_EQ(d->target_name(), "target");
}

TEST(DatasetTest, CreateErrors) {
  Matrix x(3, 2), y(2, 1);
  EXPECT_FALSE(Dataset::Create(x, y).ok());  // Row mismatch.
  Matrix y2(3, 2);
  EXPECT_FALSE(Dataset::Create(x, y2).ok());  // Multi-column target.
  Matrix y3(3, 1);
  EXPECT_FALSE(Dataset::Create(x, y3, {"only-one"}, "t").ok());  // Names.
}

TEST(DatasetTest, TargetVector) {
  EXPECT_EQ(Small().TargetVector(), (std::vector<double>{100, 200, 300}));
}

TEST(DatasetTest, SelectRows) {
  auto sel = Small().SelectRows({2, 0});
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel->NumSamples(), 2u);
  EXPECT_DOUBLE_EQ(sel->features()(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(sel->targets()(1, 0), 100.0);
  EXPECT_EQ(sel->feature_names(), Small().feature_names());
}

TEST(DatasetTest, SelectRowsOutOfRange) {
  EXPECT_FALSE(Small().SelectRows({5}).ok());
}

TEST(DatasetTest, Concat) {
  Dataset a = Small();
  auto both = a.Concat(a);
  ASSERT_TRUE(both.ok());
  EXPECT_EQ(both->NumSamples(), 6u);
  EXPECT_DOUBLE_EQ(both->features()(3, 0), 1.0);
  EXPECT_DOUBLE_EQ(both->targets()(5, 0), 300.0);
}

TEST(DatasetTest, ConcatWidthMismatch) {
  Matrix x(1, 3), y(1, 1);
  Dataset other = Dataset::Create(x, y).value();
  EXPECT_FALSE(Small().Concat(other).ok());
}

TEST(DatasetTest, FeatureSpace) {
  auto space = Small().FeatureSpace();
  ASSERT_TRUE(space.ok());
  EXPECT_DOUBLE_EQ(space->dim(0).lo, 1.0);
  EXPECT_DOUBLE_EQ(space->dim(0).hi, 3.0);
  EXPECT_DOUBLE_EQ(space->dim(1).hi, 30.0);
}

TEST(DatasetTest, FeatureIndex) {
  EXPECT_EQ(Small().FeatureIndex("b").value(), 1u);
  EXPECT_TRUE(Small().FeatureIndex("zzz").status().IsNotFound());
}

TEST(DatasetTest, DefaultIsEmpty) {
  Dataset d;
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(d.NumSamples(), 0u);
}

}  // namespace
}  // namespace qens::data
