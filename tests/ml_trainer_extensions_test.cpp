// Tests for the trainer extensions: weight decay, gradient clipping and
// learning-rate decay.

#include <gtest/gtest.h>

#include <cmath>

#include "qens/common/rng.h"
#include "qens/ml/trainer.h"

namespace qens::ml {
namespace {

void MakeLinearData(size_t n, uint64_t seed, Matrix* x, Matrix* y) {
  Rng rng(seed);
  *x = Matrix(n, 1);
  *y = Matrix(n, 1);
  for (size_t i = 0; i < n; ++i) {
    (*x)(i, 0) = rng.Uniform(-1.0, 1.0);
    (*y)(i, 0) = 2.0 * (*x)(i, 0) + rng.Gaussian(0, 0.02);
  }
}

SequentialModel ScalarModel() {
  SequentialModel m;
  EXPECT_TRUE(m.AddLayer(1, 1, Activation::kIdentity).ok());
  return m;
}

std::unique_ptr<Trainer> MakeTrainer(TrainOptions options, double lr = 0.05) {
  return std::make_unique<Trainer>(std::make_unique<SgdOptimizer>(lr),
                                   options);
}

TEST(WeightDecayTest, ShrinksWeightsTowardZero) {
  Matrix x, y;
  MakeLinearData(200, 1, &x, &y);
  TrainOptions plain;
  plain.epochs = 60;
  plain.validation_split = 0.0;
  TrainOptions decayed = plain;
  decayed.weight_decay = 0.5;  // Strong decay to make the shrinkage clear.

  SequentialModel m_plain = ScalarModel();
  SequentialModel m_decayed = ScalarModel();
  ASSERT_TRUE(MakeTrainer(plain)->Fit(&m_plain, x, y).ok());
  ASSERT_TRUE(MakeTrainer(decayed)->Fit(&m_decayed, x, y).ok());
  EXPECT_LT(std::abs(m_decayed.layer(0).weights()(0, 0)),
            std::abs(m_plain.layer(0).weights()(0, 0)));
  // Plain training recovers the true slope.
  EXPECT_NEAR(m_plain.layer(0).weights()(0, 0), 2.0, 0.1);
}

TEST(WeightDecayTest, BiasIsNotDecayed) {
  // Constant targets: only the bias should grow toward the mean; strong
  // weight decay must not block that.
  Matrix x(50, 1), y(50, 1);
  Rng rng(2);
  for (size_t i = 0; i < 50; ++i) {
    x(i, 0) = rng.Uniform(-1, 1);
    y(i, 0) = 3.0;
  }
  TrainOptions options;
  options.epochs = 100;
  options.validation_split = 0.0;
  options.weight_decay = 1.0;
  SequentialModel m = ScalarModel();
  ASSERT_TRUE(MakeTrainer(options)->Fit(&m, x, y).ok());
  EXPECT_NEAR(m.layer(0).bias()[0], 3.0, 0.1);
  EXPECT_NEAR(m.layer(0).weights()(0, 0), 0.0, 0.1);
}

TEST(ClipNormTest, PreventsDivergenceAtLargeScale) {
  // Raw-scale data that diverges without clipping (see the normalization
  // design note): clipping keeps training finite.
  Rng rng(3);
  Matrix x(100, 1), y(100, 1);
  for (size_t i = 0; i < 100; ++i) {
    x(i, 0) = rng.Uniform(0, 50);
    y(i, 0) = 2.0 * x(i, 0);
  }
  TrainOptions unclipped;
  unclipped.epochs = 30;
  unclipped.validation_split = 0.0;
  TrainOptions clipped = unclipped;
  clipped.clip_norm = 1.0;

  SequentialModel m_unclipped = ScalarModel();
  SequentialModel m_clipped = ScalarModel();
  ASSERT_TRUE(MakeTrainer(unclipped)->Fit(&m_unclipped, x, y).ok());
  auto report = MakeTrainer(clipped)->Fit(&m_clipped, x, y);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(std::isfinite(m_unclipped.layer(0).weights()(0, 0)) &&
               std::abs(m_unclipped.layer(0).weights()(0, 0)) < 100.0)
      << "expected divergence without clipping";
  EXPECT_TRUE(std::isfinite(m_clipped.layer(0).weights()(0, 0)));
  EXPECT_TRUE(std::isfinite(report->final_train_loss()));
}

TEST(ClipNormTest, NoEffectWhenGradientsSmall) {
  Matrix x, y;
  MakeLinearData(100, 4, &x, &y);
  TrainOptions plain;
  plain.epochs = 20;
  plain.validation_split = 0.0;
  plain.shuffle = false;
  TrainOptions clipped = plain;
  clipped.clip_norm = 1e9;  // Never binds.

  SequentialModel m1 = ScalarModel();
  SequentialModel m2 = ScalarModel();
  ASSERT_TRUE(MakeTrainer(plain)->Fit(&m1, x, y).ok());
  ASSERT_TRUE(MakeTrainer(clipped)->Fit(&m2, x, y).ok());
  EXPECT_EQ(m1.GetParameters(), m2.GetParameters());
}

TEST(LrDecayTest, DecayedRunTakesSmallerLateSteps) {
  Matrix x, y;
  MakeLinearData(100, 5, &x, &y);
  TrainOptions options;
  options.epochs = 100;
  options.validation_split = 0.0;
  options.lr_decay = 0.05;  // Mild inverse-time decay.
  SequentialModel m = ScalarModel();
  auto trainer = MakeTrainer(options, 0.05);
  auto report = trainer->Fit(&m, x, y);
  ASSERT_TRUE(report.ok());
  // Still converges (decay slows but does not stop learning).
  EXPECT_NEAR(m.layer(0).weights()(0, 0), 2.0, 0.2);
}

TEST(LrDecayTest, BaseLearningRateRestoredAfterFit) {
  Matrix x, y;
  MakeLinearData(50, 6, &x, &y);
  TrainOptions options;
  options.epochs = 10;
  options.validation_split = 0.0;
  options.lr_decay = 1.0;
  auto optimizer = std::make_unique<SgdOptimizer>(0.05);
  SgdOptimizer* raw = optimizer.get();
  Trainer trainer(std::move(optimizer), options);
  SequentialModel m = ScalarModel();
  ASSERT_TRUE(trainer.Fit(&m, x, y).ok());
  EXPECT_DOUBLE_EQ(raw->learning_rate(), 0.05);
}

}  // namespace
}  // namespace qens::ml
