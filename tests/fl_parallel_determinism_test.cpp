// Regression tests pinning the parallel-training determinism contract:
// `parallel_local_training` true vs false under the same seed must yield
// identical selected-node sets, per-round survivor counts, and losses —
// in the single-round protocol, across multiple FedAvg rounds, and with
// the fault-injection layer active.

#include <gtest/gtest.h>

#include "qens/common/rng.h"
#include "qens/fl/federation.h"
#include "qens/obs/metrics.h"

namespace qens::fl {
namespace {

data::Dataset MakeNodeData(double offset, double slope, uint64_t seed,
                           size_t n = 220) {
  Rng rng(seed);
  Matrix x(n, 1), y(n, 1);
  for (size_t i = 0; i < n; ++i) {
    x(i, 0) = offset + rng.Uniform(0, 10);
    y(i, 0) = slope * x(i, 0) + rng.Gaussian(0, 0.2);
  }
  return data::Dataset::Create(x, y).value();
}

FederationOptions FastOptions() {
  FederationOptions options;
  options.environment.kmeans.k = 3;
  options.ranking.epsilon = 0.1;
  options.query_driven.top_l = 4;
  options.hyper = ml::PaperHyperParams(ml::ModelKind::kLinearRegression);
  options.hyper.epochs = 15;
  options.epochs_per_cluster = 6;
  options.random_l = 2;
  options.seed = 77;
  return options;
}

Result<Federation> MakeFederation(const FederationOptions& options) {
  std::vector<data::Dataset> nodes = {
      MakeNodeData(0, 2.0, 1), MakeNodeData(0, 2.0, 2),
      MakeNodeData(0, 2.0, 3), MakeNodeData(0, 2.0, 4)};
  return Federation::Create(std::move(nodes), options);
}

Result<Federation> MakeFederationN(size_t n, const FederationOptions& options) {
  std::vector<data::Dataset> nodes;
  nodes.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    nodes.push_back(MakeNodeData(0, 2.0, i + 1));
  }
  return Federation::Create(std::move(nodes), options);
}

query::RangeQuery QueryOver(double lo, double hi) {
  query::RangeQuery q;
  q.id = 3;
  q.region = query::HyperRectangle::FromFlatBounds({lo, hi}).value();
  return q;
}

void ExpectIdenticalOutcomes(const QueryOutcome& seq,
                             const QueryOutcome& par) {
  EXPECT_EQ(seq.skipped, par.skipped);
  EXPECT_EQ(seq.selected_nodes, par.selected_nodes);
  EXPECT_EQ(seq.round_survivors, par.round_survivors);
  EXPECT_EQ(seq.failed_nodes, par.failed_nodes);
  EXPECT_EQ(seq.deadline_missed_nodes, par.deadline_missed_nodes);
  EXPECT_EQ(seq.degraded_rounds, par.degraded_rounds);
  EXPECT_EQ(seq.messages_lost, par.messages_lost);
  EXPECT_EQ(seq.samples_used, par.samples_used);
  if (seq.skipped || par.skipped) return;
  EXPECT_DOUBLE_EQ(seq.loss_model_avg, par.loss_model_avg);
  EXPECT_DOUBLE_EQ(seq.loss_weighted, par.loss_weighted);
  EXPECT_DOUBLE_EQ(seq.loss_fedavg, par.loss_fedavg);
  EXPECT_DOUBLE_EQ(seq.sim_time_total, par.sim_time_total);
  EXPECT_DOUBLE_EQ(seq.sim_time_parallel, par.sim_time_parallel);
  ASSERT_EQ(seq.survivor_weights.size(), par.survivor_weights.size());
  for (size_t i = 0; i < seq.survivor_weights.size(); ++i) {
    EXPECT_DOUBLE_EQ(seq.survivor_weights[i], par.survivor_weights[i]);
  }
}

void ExpectIdenticalRoundRecords(const QueryOutcome& seq,
                                 const QueryOutcome& par) {
  ASSERT_EQ(seq.round_records.size(), par.round_records.size());
  for (size_t r = 0; r < seq.round_records.size(); ++r) {
    const obs::RoundRecord& a = seq.round_records[r];
    const obs::RoundRecord& b = par.round_records[r];
    EXPECT_EQ(a.engaged, b.engaged);
    EXPECT_EQ(a.survivors, b.survivors);
    EXPECT_EQ(a.quorum_met, b.quorum_met);
    EXPECT_DOUBLE_EQ(a.parallel_seconds, b.parallel_seconds);
    EXPECT_DOUBLE_EQ(a.total_train_seconds, b.total_train_seconds);
    EXPECT_DOUBLE_EQ(a.comm_seconds, b.comm_seconds);
    ASSERT_EQ(a.nodes.size(), b.nodes.size());
    for (size_t i = 0; i < a.nodes.size(); ++i) {
      EXPECT_EQ(a.nodes[i].node_id, b.nodes[i].node_id);
      EXPECT_EQ(a.nodes[i].fate, b.nodes[i].fate);
      EXPECT_DOUBLE_EQ(a.nodes[i].train_seconds, b.nodes[i].train_seconds);
      EXPECT_DOUBLE_EQ(a.nodes[i].comm_seconds, b.nodes[i].comm_seconds);
      EXPECT_EQ(a.nodes[i].samples_used, b.nodes[i].samples_used);
      EXPECT_EQ(a.nodes[i].straggler, b.nodes[i].straggler);
    }
  }
}

TEST(ParallelDeterminismTest, MultiRoundMatchesSequential) {
  FederationOptions seq_options = FastOptions();
  FederationOptions par_options = FastOptions();
  par_options.parallel_local_training = true;
  auto seq = MakeFederation(seq_options);
  auto par = MakeFederation(par_options);
  ASSERT_TRUE(seq.ok());
  ASSERT_TRUE(par.ok());
  auto o_seq = seq->RunQueryMultiRound(
      QueryOver(0, 10), selection::PolicyKind::kQueryDriven, true, 3);
  auto o_par = par->RunQueryMultiRound(
      QueryOver(0, 10), selection::PolicyKind::kQueryDriven, true, 3);
  ASSERT_TRUE(o_seq.ok());
  ASSERT_TRUE(o_par.ok());
  ASSERT_FALSE(o_seq->skipped);
  ExpectIdenticalOutcomes(*o_seq, *o_par);
}

TEST(ParallelDeterminismTest, HoldsAcrossConsecutiveQueries) {
  FederationOptions seq_options = FastOptions();
  FederationOptions par_options = FastOptions();
  par_options.parallel_local_training = true;
  auto seq = MakeFederation(seq_options);
  auto par = MakeFederation(par_options);
  ASSERT_TRUE(seq.ok());
  ASSERT_TRUE(par.ok());
  for (int i = 0; i < 3; ++i) {
    auto o_seq = seq->RunQueryDriven(QueryOver(0, 10));
    auto o_par = par->RunQueryDriven(QueryOver(0, 10));
    ASSERT_TRUE(o_seq.ok());
    ASSERT_TRUE(o_par.ok());
    ExpectIdenticalOutcomes(*o_seq, *o_par);
  }
}

TEST(ParallelDeterminismTest, HoldsUnderFaultInjection) {
  FederationOptions base = FastOptions();
  base.fault_tolerance.enabled = true;
  base.fault_tolerance.faults.seed = 19;
  base.fault_tolerance.faults.dropout_rate = 0.3;
  base.fault_tolerance.faults.straggler_rate = 0.5;
  base.fault_tolerance.faults.message_loss_rate = 0.2;
  base.fault_tolerance.min_quorum_frac = 0.25;
  FederationOptions par_options = base;
  par_options.parallel_local_training = true;
  auto seq = MakeFederation(base);
  auto par = MakeFederation(par_options);
  ASSERT_TRUE(seq.ok());
  ASSERT_TRUE(par.ok());
  for (int i = 0; i < 4; ++i) {
    auto o_seq = seq->RunQueryMultiRound(
        QueryOver(0, 10), selection::PolicyKind::kQueryDriven, true, 2);
    auto o_par = par->RunQueryMultiRound(
        QueryOver(0, 10), selection::PolicyKind::kQueryDriven, true, 2);
    ASSERT_TRUE(o_seq.ok());
    ASSERT_TRUE(o_par.ok());
    ExpectIdenticalOutcomes(*o_seq, *o_par);
  }
}

TEST(ParallelDeterminismTest, HoldsUnderDeadlineCuts) {
  FederationOptions base = FastOptions();
  base.fault_tolerance.enabled = true;
  base.fault_tolerance.faults.seed = 23;
  base.fault_tolerance.faults.straggler_rate = 0.5;
  base.fault_tolerance.faults.straggler_slowdown_min = 8.0;
  base.fault_tolerance.faults.straggler_slowdown_max = 8.0;
  // A deadline that cuts slowed nodes but admits normal ones: calibrate
  // from one fault-free run.
  FederationOptions calibrate = FastOptions();
  calibrate.fault_tolerance.enabled = true;
  auto cal_fed = MakeFederation(calibrate);
  ASSERT_TRUE(cal_fed.ok());
  auto cal = cal_fed->RunQueryDriven(QueryOver(0, 10));
  ASSERT_TRUE(cal.ok());
  ASSERT_FALSE(cal->skipped);
  base.fault_tolerance.round_deadline_s = 2.0 * cal->sim_time_parallel;

  FederationOptions par_options = base;
  par_options.parallel_local_training = true;
  auto seq = MakeFederation(base);
  auto par = MakeFederation(par_options);
  ASSERT_TRUE(seq.ok());
  ASSERT_TRUE(par.ok());
  auto o_seq = seq->RunQueryDriven(QueryOver(0, 10));
  auto o_par = par->RunQueryDriven(QueryOver(0, 10));
  ASSERT_TRUE(o_seq.ok());
  ASSERT_TRUE(o_par.ok());
  ExpectIdenticalOutcomes(*o_seq, *o_par);
}

// Satellite of the observability work: per-round records must report the
// SAME timing on the sequential and parallel paths — both share one
// deterministic accounting loop over the job results — and the leader's
// critical path must respect the round deadline even when stragglers and
// lost model-down transfers are excluded mid-round.
TEST(ParallelDeterminismTest, RoundRecordTimingMatchesSequential) {
  obs::MetricsRegistry::Enable();
  FederationOptions base = FastOptions();
  base.fault_tolerance.enabled = true;
  base.fault_tolerance.faults.seed = 29;
  base.fault_tolerance.faults.straggler_rate = 0.5;
  base.fault_tolerance.faults.straggler_slowdown_min = 8.0;
  base.fault_tolerance.faults.straggler_slowdown_max = 8.0;
  base.fault_tolerance.faults.message_loss_rate = 0.2;
  base.fault_tolerance.min_quorum_frac = 0.25;

  FederationOptions calibrate = FastOptions();
  calibrate.fault_tolerance.enabled = true;
  auto cal_fed = MakeFederation(calibrate);
  ASSERT_TRUE(cal_fed.ok());
  auto cal = cal_fed->RunQueryDriven(QueryOver(0, 10));
  ASSERT_TRUE(cal.ok());
  ASSERT_FALSE(cal->skipped);
  const double deadline = 2.0 * cal->sim_time_parallel;
  base.fault_tolerance.round_deadline_s = deadline;

  FederationOptions par_options = base;
  par_options.parallel_local_training = true;
  auto seq = MakeFederation(base);
  auto par = MakeFederation(par_options);
  ASSERT_TRUE(seq.ok());
  ASSERT_TRUE(par.ok());
  const size_t rounds = 3;
  for (int i = 0; i < 3; ++i) {
    auto o_seq = seq->RunQueryMultiRound(
        QueryOver(0, 10), selection::PolicyKind::kQueryDriven, true, rounds);
    auto o_par = par->RunQueryMultiRound(
        QueryOver(0, 10), selection::PolicyKind::kQueryDriven, true, rounds);
    ASSERT_TRUE(o_seq.ok());
    ASSERT_TRUE(o_par.ok());
    ExpectIdenticalOutcomes(*o_seq, *o_par);
    ExpectIdenticalRoundRecords(*o_seq, *o_par);
    if (o_seq->skipped) continue;
    // Deadline-excluded work must never stretch the leader's wait: every
    // round's critical path is capped at the deadline, so a query's
    // parallel time is bounded by rounds x deadline.
    ASSERT_EQ(o_seq->round_records.size(), rounds);
    for (const auto& record : o_seq->round_records) {
      EXPECT_LE(record.parallel_seconds, deadline + 1e-12);
    }
    EXPECT_LE(o_seq->sim_time_parallel, rounds * deadline + 1e-12);
  }
  obs::MetricsRegistry::Disable();
}

// The shared pool must leave outcomes invariant under its worker count: a
// 1-worker pool, a small oversubscribed pool (more training jobs than
// workers, so jobs queue), and a wide pool all match the plain sequential
// path bit for bit — with the SAME pool reused across multi-round queries.
TEST(ParallelDeterminismTest, WorkerCountInvariantWithOversubscribedPool) {
  FederationOptions base = FastOptions();
  base.query_driven.top_l = 6;  // Select all six nodes.
  auto seq_fed = MakeFederationN(6, base);
  ASSERT_TRUE(seq_fed.ok());
  std::vector<QueryOutcome> expected;
  for (int i = 0; i < 2; ++i) {
    auto o = seq_fed->RunQueryMultiRound(
        QueryOver(0, 10), selection::PolicyKind::kQueryDriven, true, 2);
    ASSERT_TRUE(o.ok());
    ASSERT_FALSE(o->skipped);
    expected.push_back(*o);
  }

  for (size_t workers : {size_t{1}, size_t{2}, size_t{8}}) {
    FederationOptions par_options = base;
    par_options.parallel_local_training = true;
    par_options.max_parallel_nodes = workers;  // 1 and 2 oversubscribe 6 jobs.
    auto par_fed = MakeFederationN(6, par_options);
    ASSERT_TRUE(par_fed.ok());
    for (int i = 0; i < 2; ++i) {
      auto o = par_fed->RunQueryMultiRound(
          QueryOver(0, 10), selection::PolicyKind::kQueryDriven, true, 2);
      ASSERT_TRUE(o.ok()) << "workers=" << workers;
      ExpectIdenticalOutcomes(expected[static_cast<size_t>(i)], *o);
    }
  }
}

// Pool reuse across queries AND across the fault-injection layer: one
// oversubscribed federation answering several queries must track its
// sequential twin query by query.
TEST(ParallelDeterminismTest, OversubscribedPoolSurvivesFaultInjection) {
  FederationOptions base = FastOptions();
  base.query_driven.top_l = 6;
  base.fault_tolerance.enabled = true;
  base.fault_tolerance.faults.seed = 31;
  base.fault_tolerance.faults.dropout_rate = 0.25;
  base.fault_tolerance.faults.straggler_rate = 0.4;
  base.fault_tolerance.faults.message_loss_rate = 0.15;
  base.fault_tolerance.min_quorum_frac = 0.25;
  FederationOptions par_options = base;
  par_options.parallel_local_training = true;
  par_options.max_parallel_nodes = 2;  // Fewer workers than nodes.
  auto seq = MakeFederationN(6, base);
  auto par = MakeFederationN(6, par_options);
  ASSERT_TRUE(seq.ok());
  ASSERT_TRUE(par.ok());
  for (int i = 0; i < 3; ++i) {
    auto o_seq = seq->RunQueryMultiRound(
        QueryOver(0, 10), selection::PolicyKind::kQueryDriven, true, 2);
    auto o_par = par->RunQueryMultiRound(
        QueryOver(0, 10), selection::PolicyKind::kQueryDriven, true, 2);
    ASSERT_TRUE(o_seq.ok());
    ASSERT_TRUE(o_par.ok());
    ExpectIdenticalOutcomes(*o_seq, *o_par);
  }
}

}  // namespace
}  // namespace qens::fl
