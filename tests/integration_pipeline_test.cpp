// End-to-end integration tests over the full pipeline (generator ->
// federation -> workload -> mechanisms), checking the *shapes* of the
// paper's headline results on small configurations:
//   - Table I regime: homogeneous nodes, all-node vs random near-tie;
//   - Table II regime: heterogeneous nodes, random >> matched selection;
//   - Fig. 8/9 regimes: query-driven uses less data and less time.

#include <gtest/gtest.h>

#include <cstdio>

#include "qens/fl/experiment.h"

namespace qens::fl {
namespace {

ExperimentConfig SmallConfig(data::Heterogeneity heterogeneity) {
  ExperimentConfig config;
  config.data.num_stations = 5;
  config.data.samples_per_station = 400;
  config.data.heterogeneity = heterogeneity;
  config.data.seed = 7;
  config.data.single_feature = true;  // The paper's 1-feature setup.

  config.federation.environment.kmeans.k = 5;
  config.federation.ranking.epsilon = 0.15;
  config.federation.query_driven.top_l = 3;
  config.federation.hyper =
      ml::PaperHyperParams(ml::ModelKind::kLinearRegression);
  config.federation.hyper.epochs = 20;
  config.federation.epochs_per_cluster = 8;
  config.federation.random_l = 3;
  config.federation.seed = 11;

  config.workload.num_queries = 8;
  config.workload.min_width_frac = 0.3;
  config.workload.max_width_frac = 0.6;
  config.workload.seed = 13;
  return config;
}

TEST(IntegrationTest, RunnerBuildsAndGeneratesWorkload) {
  auto runner = ExperimentRunner::Create(
      SmallConfig(data::Heterogeneity::kHeterogeneous));
  ASSERT_TRUE(runner.ok());
  EXPECT_EQ(runner->queries().size(), 8u);
  EXPECT_EQ(runner->federation().environment().num_nodes(), 5u);
}

TEST(IntegrationTest, QueryDrivenMechanismCompletesWorkload) {
  auto runner = ExperimentRunner::Create(
      SmallConfig(data::Heterogeneity::kHeterogeneous));
  ASSERT_TRUE(runner.ok());
  Mechanism ours{"Weighted", selection::PolicyKind::kQueryDriven, true,
                 AggregationKind::kWeightedAveraging};
  auto stats = runner->RunMechanism(ours);
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->queries_run, 0u);
  EXPECT_GE(stats->loss.mean(), 0.0);
}

TEST(IntegrationTest, TableOneShapeHomogeneousNearTie) {
  // Homogeneous nodes: random selection performs about as well as
  // engaging everyone (Table I: 24.45 vs 24.70 — a near-tie).
  auto runner =
      ExperimentRunner::Create(SmallConfig(data::Heterogeneity::kHomogeneous));
  ASSERT_TRUE(runner.ok());
  Mechanism all{"All", selection::PolicyKind::kAllNodes, false,
                AggregationKind::kModelAveraging};
  Mechanism random{"Random", selection::PolicyKind::kRandom, false,
                   AggregationKind::kModelAveraging};
  auto all_stats = runner->RunMechanism(all);
  auto random_stats = runner->RunMechanism(random);
  ASSERT_TRUE(all_stats.ok());
  ASSERT_TRUE(random_stats.ok());
  ASSERT_GT(all_stats->queries_run, 0u);
  // Near-tie: random is within 3x of all-node (in the paper the gap is 1%;
  // we allow slack for the tiny config).
  EXPECT_LT(random_stats->loss.mean(), 3.0 * all_stats->loss.mean() + 10.0);
}

TEST(IntegrationTest, TableTwoShapeHeterogeneousRandomBlowsUp) {
  // Heterogeneous nodes: random selection mixes sign-flipped sites and its
  // loss blows up relative to the query-driven mechanism (Table II: 178.10
  // vs 9.70 — random is an order of magnitude worse).
  auto runner = ExperimentRunner::Create(
      SmallConfig(data::Heterogeneity::kHeterogeneous));
  ASSERT_TRUE(runner.ok());
  Mechanism ours{"Weighted", selection::PolicyKind::kQueryDriven, true,
                 AggregationKind::kWeightedAveraging};
  Mechanism random{"Random", selection::PolicyKind::kRandom, false,
                   AggregationKind::kModelAveraging};
  auto ours_stats = runner->RunMechanism(ours);
  auto random_stats = runner->RunMechanism(random);
  ASSERT_TRUE(ours_stats.ok());
  ASSERT_TRUE(random_stats.ok());
  ASSERT_GT(ours_stats->queries_run, 0u);
  ASSERT_GT(random_stats->queries_run, 0u);
  EXPECT_LT(ours_stats->loss.mean(), random_stats->loss.mean());
}

TEST(IntegrationTest, Fig8ShapeQueryDrivenIsFaster) {
  auto runner = ExperimentRunner::Create(
      SmallConfig(data::Heterogeneity::kHeterogeneous));
  ASSERT_TRUE(runner.ok());
  Mechanism ours{"Averaging", selection::PolicyKind::kQueryDriven, true,
                 AggregationKind::kModelAveraging};
  Mechanism full{"All", selection::PolicyKind::kAllNodes, false,
                 AggregationKind::kModelAveraging};
  auto ours_records = runner->RunPerQuery(ours);
  auto full_records = runner->RunPerQuery(full);
  ASSERT_TRUE(ours_records.ok());
  ASSERT_TRUE(full_records.ok());
  double ours_time = 0, full_time = 0;
  size_t compared = 0;
  for (size_t i = 0; i < ours_records->size(); ++i) {
    if ((*ours_records)[i].skipped || (*full_records)[i].skipped) continue;
    ours_time += (*ours_records)[i].sim_time;
    full_time += (*full_records)[i].sim_time;
    ++compared;
  }
  ASSERT_GT(compared, 0u);
  EXPECT_LT(ours_time, full_time);
}

TEST(IntegrationTest, Fig9ShapeQueryDrivenUsesFractionOfData) {
  auto runner = ExperimentRunner::Create(
      SmallConfig(data::Heterogeneity::kHeterogeneous));
  ASSERT_TRUE(runner.ok());
  Mechanism ours{"Averaging", selection::PolicyKind::kQueryDriven, true,
                 AggregationKind::kModelAveraging};
  auto records = runner->RunPerQuery(ours);
  ASSERT_TRUE(records.ok());
  size_t executed = 0;
  for (const auto& r : *records) {
    if (r.skipped) continue;
    ++executed;
    EXPECT_GT(r.data_fraction_all, 0.0);
    EXPECT_LT(r.data_fraction_all, 1.0);  // Strictly less than everything.
  }
  EXPECT_GT(executed, 0u);
}

TEST(IntegrationTest, Figure7MechanismListMatchesPaper) {
  const std::vector<Mechanism> mechanisms = Figure7Mechanisms();
  ASSERT_EQ(mechanisms.size(), 4u);
  EXPECT_EQ(mechanisms[0].label, "GT");
  EXPECT_EQ(mechanisms[1].label, "Random");
  EXPECT_EQ(mechanisms[2].label, "Averaging");
  EXPECT_EQ(mechanisms[3].label, "Weighted");
  EXPECT_EQ(mechanisms[2].policy, selection::PolicyKind::kQueryDriven);
  EXPECT_TRUE(mechanisms[2].data_selectivity);
  EXPECT_EQ(mechanisms[3].aggregation, AggregationKind::kWeightedAveraging);
}

TEST(IntegrationTest, FormatMechanismTableContainsRows) {
  MechanismStats s;
  s.label = "TestMech";
  s.loss.Add(1.5);
  s.queries_run = 1;
  const std::string table = FormatMechanismTable({s});
  EXPECT_NE(table.find("TestMech"), std::string::npos);
  EXPECT_NE(table.find("avg loss"), std::string::npos);
}

TEST(IntegrationTest, QueryRecordsCsvRoundTrip) {
  auto runner = ExperimentRunner::Create(
      SmallConfig(data::Heterogeneity::kHomogeneous));
  ASSERT_TRUE(runner.ok());
  Mechanism ours{"Averaging", selection::PolicyKind::kQueryDriven, true,
                 AggregationKind::kModelAveraging};
  auto records = runner->RunPerQuery(ours, 4);
  ASSERT_TRUE(records.ok());
  const std::string csv = FormatQueryRecordsCsv(*records);
  // Header + one line per record.
  size_t lines = 0;
  for (char c : csv) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 1u + records->size());
  EXPECT_NE(csv.find("query_id,skipped,loss"), std::string::npos);
  EXPECT_TRUE(
      WriteQueryRecordsCsv(*records, "/tmp/qens_records_test.csv").ok());
  std::remove("/tmp/qens_records_test.csv");
  EXPECT_TRUE(WriteQueryRecordsCsv(*records, "/no/such/dir/x.csv")
                  .IsIOError());
}

TEST(IntegrationTest, PerQueryLimitRespected) {
  auto runner = ExperimentRunner::Create(
      SmallConfig(data::Heterogeneity::kHomogeneous));
  ASSERT_TRUE(runner.ok());
  Mechanism random{"Random", selection::PolicyKind::kRandom, false,
                   AggregationKind::kModelAveraging};
  auto records = runner->RunPerQuery(random, 3);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 3u);
}

}  // namespace
}  // namespace qens::fl
