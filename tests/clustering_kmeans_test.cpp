// Tests for k-means: correctness on separable blobs, Eq. (1) invariants
// (assignment optimality, centroid = member mean), empty-cluster repair,
// determinism, and property sweeps over (k, d).

#include "qens/clustering/kmeans.h"

#include <gtest/gtest.h>

#include <set>

#include "qens/common/rng.h"
#include "qens/tensor/vector_ops.h"

namespace qens::clustering {
namespace {

/// Three well-separated Gaussian blobs in `dims` dimensions.
Matrix MakeBlobs(size_t per_blob, size_t dims, uint64_t seed) {
  Rng rng(seed);
  const double centers[3] = {-10.0, 0.0, 10.0};
  Matrix data(3 * per_blob, dims);
  for (size_t b = 0; b < 3; ++b) {
    for (size_t i = 0; i < per_blob; ++i) {
      for (size_t d = 0; d < dims; ++d) {
        data(b * per_blob + i, d) = rng.Gaussian(centers[b], 0.5);
      }
    }
  }
  return data;
}

TEST(KMeansTest, RecoversSeparatedBlobs) {
  const Matrix data = MakeBlobs(50, 2, 1);
  KMeansOptions options;
  options.k = 3;
  options.seed = 2;
  KMeans kmeans(options);
  auto result = kmeans.Fit(data);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);

  // Every blob's members share one cluster id, and the ids differ.
  std::set<size_t> blob_ids;
  for (size_t b = 0; b < 3; ++b) {
    const size_t id = result->assignment[b * 50];
    for (size_t i = 0; i < 50; ++i) {
      EXPECT_EQ(result->assignment[b * 50 + i], id) << "blob " << b;
    }
    blob_ids.insert(id);
  }
  EXPECT_EQ(blob_ids.size(), 3u);
}

TEST(KMeansTest, AssignmentIsNearestCentroid) {
  const Matrix data = MakeBlobs(30, 3, 3);
  KMeansOptions options;
  options.k = 4;
  KMeans kmeans(options);
  auto result = kmeans.Fit(data);
  ASSERT_TRUE(result.ok());
  for (size_t r = 0; r < data.rows(); ++r) {
    const double assigned = vec::SquaredDistance(
        data.Row(r), result->centroids.Row(result->assignment[r]));
    for (size_t c = 0; c < options.k; ++c) {
      const double other =
          vec::SquaredDistance(data.Row(r), result->centroids.Row(c));
      EXPECT_LE(assigned, other + 1e-9);
    }
  }
}

TEST(KMeansTest, CentroidIsMemberMean) {
  const Matrix data = MakeBlobs(30, 2, 4);
  KMeansOptions options;
  options.k = 3;
  KMeans kmeans(options);
  auto result = kmeans.Fit(data);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->converged);
  for (size_t c = 0; c < options.k; ++c) {
    std::vector<double> mean(data.cols(), 0.0);
    size_t count = 0;
    for (size_t r = 0; r < data.rows(); ++r) {
      if (result->assignment[r] != c) continue;
      ++count;
      for (size_t d = 0; d < data.cols(); ++d) mean[d] += data(r, d);
    }
    ASSERT_GT(count, 0u);
    for (size_t d = 0; d < data.cols(); ++d) {
      EXPECT_NEAR(result->centroids(c, d), mean[d] / count, 1e-6);
    }
  }
}

TEST(KMeansTest, InertiaMatchesObjective) {
  const Matrix data = MakeBlobs(20, 2, 5);
  KMeansOptions options;
  options.k = 3;
  KMeans kmeans(options);
  auto result = kmeans.Fit(data);
  ASSERT_TRUE(result.ok());
  auto recomputed =
      ComputeInertia(data, result->centroids, result->assignment);
  ASSERT_TRUE(recomputed.ok());
  EXPECT_NEAR(result->inertia, *recomputed, 1e-9);
}

TEST(KMeansTest, MoreClustersLowerInertia) {
  const Matrix data = MakeBlobs(40, 2, 6);
  double prev = 1e300;
  for (size_t k : {1u, 2u, 3u, 6u}) {
    KMeansOptions options;
    options.k = k;
    options.seed = 77;
    auto result = KMeans(options).Fit(data);
    ASSERT_TRUE(result.ok());
    EXPECT_LE(result->inertia, prev + 1e-9) << "k=" << k;
    prev = result->inertia;
  }
}

TEST(KMeansTest, DeterministicGivenSeed) {
  const Matrix data = MakeBlobs(25, 2, 7);
  KMeansOptions options;
  options.k = 3;
  options.seed = 42;
  auto r1 = KMeans(options).Fit(data);
  auto r2 = KMeans(options).Fit(data);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->assignment, r2->assignment);
  EXPECT_EQ(r1->centroids, r2->centroids);
}

TEST(KMeansTest, SinglePointSingleCluster) {
  Matrix data{{5.0, 5.0}};
  KMeansOptions options;
  options.k = 1;
  auto result = KMeans(options).Fit(data);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->assignment[0], 0u);
  EXPECT_DOUBLE_EQ(result->centroids(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(result->inertia, 0.0);
}

TEST(KMeansTest, KGreaterThanPoints) {
  Matrix data{{0.0}, {10.0}};
  KMeansOptions options;
  options.k = 5;
  auto result = KMeans(options).Fit(data);
  ASSERT_TRUE(result.ok());
  // Both points perfectly fit: inertia 0.
  EXPECT_NEAR(result->inertia, 0.0, 1e-12);
  auto sizes = result->ClusterSizes(options.k);
  size_t total = 0;
  for (size_t s : sizes) total += s;
  EXPECT_EQ(total, 2u);
}

TEST(KMeansTest, IdenticalPointsAllOneCluster) {
  Matrix data(20, 2, 3.0);  // All rows identical.
  KMeansOptions options;
  options.k = 3;
  auto result = KMeans(options).Fit(data);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->inertia, 0.0, 1e-12);
}

TEST(KMeansTest, ValidationErrors) {
  KMeansOptions options;
  options.k = 0;
  EXPECT_FALSE(KMeans(options).Fit(Matrix{{1.0}}).ok());
  options.k = 2;
  EXPECT_FALSE(KMeans(options).Fit(Matrix()).ok());
  options.max_iterations = 0;
  EXPECT_FALSE(KMeans(options).Fit(Matrix{{1.0}, {2.0}}).ok());
  options = KMeansOptions();
  options.tolerance = -1.0;
  EXPECT_FALSE(KMeans(options).Fit(Matrix{{1.0}, {2.0}}).ok());
}

TEST(KMeansTest, RandomPointsInitAlsoWorks) {
  const Matrix data = MakeBlobs(30, 2, 8);
  KMeansOptions options;
  options.k = 3;
  options.init = KMeansInit::kRandomPoints;
  auto result = KMeans(options).Fit(data);
  ASSERT_TRUE(result.ok());
  // Random init can land in a worse local optimum than k-means++ (e.g. two
  // seeds in one blob); require convergence and a sane objective, not the
  // global optimum.
  EXPECT_GE(result->iterations, 1u);
  EXPECT_LT(result->inertia, 10000.0);
}

TEST(KMeansTest, FitSummariesCoversAllData) {
  const Matrix data = MakeBlobs(20, 2, 9);
  KMeansOptions options;
  options.k = 5;  // The paper's K.
  auto summaries = KMeans(options).FitSummaries(data);
  ASSERT_TRUE(summaries.ok());
  ASSERT_EQ(summaries->size(), 5u);
  size_t total = 0;
  for (const auto& s : *summaries) total += s.size;
  EXPECT_EQ(total, data.rows());
}

// Property sweep: for random data in several (k, d) configurations, the
// fit satisfies all invariants.
struct KmeansParam {
  size_t k;
  size_t dims;
  size_t rows;
};

class KMeansPropertyTest : public ::testing::TestWithParam<KmeansParam> {};

TEST_P(KMeansPropertyTest, InvariantsHold) {
  const KmeansParam p = GetParam();
  Rng rng(p.k * 1000 + p.dims * 10 + p.rows);
  Matrix data(p.rows, p.dims);
  for (double& v : data.data()) v = rng.Uniform(-100, 100);

  KMeansOptions options;
  options.k = p.k;
  options.seed = 5;
  auto result = KMeans(options).Fit(data);
  ASSERT_TRUE(result.ok());

  // 1. Assignments in range; all rows assigned.
  ASSERT_EQ(result->assignment.size(), p.rows);
  for (size_t a : result->assignment) EXPECT_LT(a, p.k);

  // 2. Inertia non-negative and consistent.
  EXPECT_GE(result->inertia, 0.0);
  EXPECT_NEAR(
      result->inertia,
      ComputeInertia(data, result->centroids, result->assignment).value(),
      1e-6);

  // 3. Nearest-centroid optimality of the final assignment.
  for (size_t r = 0; r < p.rows; ++r) {
    const double assigned = vec::SquaredDistance(
        data.Row(r), result->centroids.Row(result->assignment[r]));
    for (size_t c = 0; c < p.k; ++c) {
      EXPECT_LE(assigned,
                vec::SquaredDistance(data.Row(r), result->centroids.Row(c)) +
                    1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KMeansPropertyTest,
    ::testing::Values(KmeansParam{2, 1, 50}, KmeansParam{5, 1, 100},
                      KmeansParam{5, 4, 100}, KmeansParam{8, 2, 64},
                      KmeansParam{3, 8, 40}, KmeansParam{10, 3, 200}));

// Regression: two clusters going empty in the SAME Lloyd iteration. The
// repair scan used to recompute row->assigned-centroid distances after each
// re-seed mutated `assignment`, measuring the just-donated row against the
// repaired cluster's stale old centroid — so the second empty cluster
// picked the same donor row and both centroids collapsed into duplicates.
//
// Setup: rows {0, 0, 0, 10, -6}, k = 3, random-points init with a seed
// whose three picks are all zero rows (verified by the repair count). The
// first assignment step sends every row to cluster 0, leaving clusters 1
// and 2 empty simultaneously. One iteration is enough to expose the bug:
// the fixed repair donates row 3 (d^2 = 100) to cluster 1 and row 4
// (d^2 = 36) to cluster 2; the old code donated row 3 twice.
TEST(KMeansTest, SimultaneousEmptyClustersGetDistinctSeeds) {
  Matrix data{{0.0}, {0.0}, {0.0}, {10.0}, {-6.0}};
  KMeansOptions options;
  options.k = 3;
  options.init = KMeansInit::kRandomPoints;
  options.max_iterations = 1;
  options.seed = 26;  // Initial centroids = the three zero rows.
  auto result = KMeans(options).Fit(data);
  ASSERT_TRUE(result.ok());

  // Precondition of the scenario: both empty clusters were repaired in the
  // single iteration that ran.
  ASSERT_EQ(result->empty_cluster_repairs, 2u);

  // Each empty cluster must get its own donor row: every cluster ends
  // non-empty and the centroids are pairwise distinct. The old code left
  // cluster 2 a duplicate of cluster 1 (both at 10.0) and thus empty.
  const std::vector<size_t> sizes = result->ClusterSizes(3);
  for (size_t c = 0; c < 3; ++c) {
    EXPECT_GT(sizes[c], 0u) << "cluster " << c << " ended empty";
  }
  for (size_t a = 0; a < 3; ++a) {
    for (size_t b = a + 1; b < 3; ++b) {
      EXPECT_NE(result->centroids(a, 0), result->centroids(b, 0))
          << "clusters " << a << " and " << b << " collapsed";
    }
  }
  // The exact repaired state: outliers 10 and -6 seed the two clusters,
  // the zero rows keep cluster 0 (centroid 4/5 after the donated rows
  // leave the mean's numerator but not its count).
  EXPECT_NEAR(result->inertia, 3 * 0.8 * 0.8, 1e-12);

  // And with the iteration cap lifted the same setup reaches the exact
  // solution (one centroid per distinct value).
  options.max_iterations = 50;
  auto converged = KMeans(options).Fit(data);
  ASSERT_TRUE(converged.ok());
  EXPECT_NEAR(converged->inertia, 0.0, 1e-12);
}

TEST(ComputeInertiaTest, Errors) {
  Matrix data{{1.0}, {2.0}};
  Matrix centroids{{1.5}};
  EXPECT_FALSE(ComputeInertia(data, centroids, {0}).ok());       // Size.
  EXPECT_FALSE(ComputeInertia(data, centroids, {0, 5}).ok());    // Range.
  Matrix bad_c{{1.0, 2.0}};
  EXPECT_FALSE(ComputeInertia(data, bad_c, {0, 0}).ok());        // Dims.
}

}  // namespace
}  // namespace qens::clustering
