// Tests for the paper's five-case overlap rate (Eq. 2, Figs. 3-4) plus the
// containment extension, degenerate geometry, both modes, and randomized
// property sweeps.

#include "qens/query/overlap.h"

#include <gtest/gtest.h>

#include "qens/common/rng.h"

namespace qens::query {
namespace {

DimensionOverlap Faithful(double qlo, double qhi, double klo, double khi) {
  return ComputeDimensionOverlap(Interval(qlo, qhi), Interval(klo, khi),
                                 OverlapMode::kFaithful);
}

DimensionOverlap Normalized(double qlo, double qhi, double klo, double khi) {
  return ComputeDimensionOverlap(Interval(qlo, qhi), Interval(klo, khi),
                                 OverlapMode::kNormalizedIntersection);
}

// ----- Case 1 (Fig. 3a): query inside cluster -----

TEST(OverlapCaseTest, QueryInsideCluster) {
  // q = [2, 4] inside k = [0, 10]: h = (4-2)/(10-0) = 0.2.
  const DimensionOverlap d = Faithful(2, 4, 0, 10);
  EXPECT_EQ(d.kase, OverlapCase::kQueryInsideCluster);
  EXPECT_DOUBLE_EQ(d.value, 0.2);
}

TEST(OverlapCaseTest, QueryEqualsClusterIsFullOverlap) {
  const DimensionOverlap d = Faithful(0, 10, 0, 10);
  EXPECT_EQ(d.kase, OverlapCase::kQueryInsideCluster);
  EXPECT_DOUBLE_EQ(d.value, 1.0);
}

// ----- Case 2 (Fig. 3b): only q_min inside cluster -----

TEST(OverlapCaseTest, QueryMinInside) {
  // k = [0, 10], q = [6, 14]: h = (k_max - q_min)/(q_max - k_min)
  //                             = (10-6)/(14-0) = 4/14.
  const DimensionOverlap d = Faithful(6, 14, 0, 10);
  EXPECT_EQ(d.kase, OverlapCase::kQueryMinInside);
  EXPECT_DOUBLE_EQ(d.value, 4.0 / 14.0);
}

TEST(OverlapCaseTest, QueryMinInsideClampsAtOne) {
  // A sliver of query sticking past a wide cluster can push the paper's
  // literal ratio above 1; the implementation clamps.
  // k = [0, 10], q = [9.99, 10.01]: literal = 0.01/10.01 < 1 -- fine;
  // instead use k = [0, 1], q = [0.5, 0.6]? That's case 1. Construct:
  // k = [0, 100], q = [99, 101]: (100-99)/(101-0) ~ 0.0099. Still < 1.
  // The clamp binds when q_max - k_min < k_max - q_min, e.g.
  // k = [0, 10], q = [1, 10.5] -> (10-1)/(10.5-0) = 0.857 < 1. The ratio
  // only exceeds 1 in degenerate near-touch setups; verify the bound holds
  // across a sweep instead.
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    const double klo = rng.Uniform(-10, 10);
    const double khi = klo + rng.Uniform(0, 10);
    const double qlo = rng.Uniform(klo, khi);  // q_min inside.
    const double qhi = khi + rng.Uniform(0.001, 10);  // q_max outside.
    const DimensionOverlap d = Faithful(qlo, qhi, klo, khi);
    EXPECT_GE(d.value, 0.0);
    EXPECT_LE(d.value, 1.0);
  }
}

// ----- Case 3 (Fig. 3c): only q_max inside cluster -----

TEST(OverlapCaseTest, QueryMaxInside) {
  // k = [0, 10], q = [-4, 6]: h = (q_max - k_min)/(k_max - q_min)
  //                             = (6-0)/(10-(-4)) = 6/14.
  const DimensionOverlap d = Faithful(-4, 6, 0, 10);
  EXPECT_EQ(d.kase, OverlapCase::kQueryMaxInside);
  EXPECT_DOUBLE_EQ(d.value, 6.0 / 14.0);
}

TEST(OverlapCaseTest, Cases2And3AreMirrorImages) {
  // Reflecting the geometry swaps case 2 <-> case 3 with the same value.
  const DimensionOverlap right = Faithful(6, 14, 0, 10);
  const DimensionOverlap left = Faithful(-14, -6, -10, 0);
  EXPECT_EQ(right.kase, OverlapCase::kQueryMinInside);
  EXPECT_EQ(left.kase, OverlapCase::kQueryMaxInside);
  EXPECT_DOUBLE_EQ(right.value, left.value);
}

// ----- Cases 4/5 (Fig. 4): disjoint -----

TEST(OverlapCaseTest, DisjointQueryRight) {
  const DimensionOverlap d = Faithful(20, 30, 0, 10);
  EXPECT_EQ(d.kase, OverlapCase::kDisjointQueryRight);
  EXPECT_DOUBLE_EQ(d.value, 0.0);
}

TEST(OverlapCaseTest, DisjointQueryLeft) {
  const DimensionOverlap d = Faithful(-30, -20, 0, 10);
  EXPECT_EQ(d.kase, OverlapCase::kDisjointQueryLeft);
  EXPECT_DOUBLE_EQ(d.value, 0.0);
}

TEST(OverlapCaseTest, TouchingEndpointIsNotDisjoint) {
  // q_min == k_max: strict inequality in the paper's case 4, so this is a
  // (zero-width) partial overlap, not disjoint.
  const DimensionOverlap d = Faithful(10, 20, 0, 10);
  EXPECT_NE(d.kase, OverlapCase::kDisjointQueryRight);
  EXPECT_DOUBLE_EQ(d.value, 0.0);  // (10-10)/(20-0) = 0.
}

// ----- Containment extension -----

TEST(OverlapCaseTest, ClusterInsideQueryIsFullCoverage) {
  const DimensionOverlap d = Faithful(0, 10, 3, 5);
  EXPECT_EQ(d.kase, OverlapCase::kClusterInsideQuery);
  EXPECT_DOUBLE_EQ(d.value, 1.0);
}

// ----- Degenerate intervals -----

TEST(OverlapCaseTest, PointClusterInsideQuery) {
  const DimensionOverlap d = Faithful(0, 10, 5, 5);
  EXPECT_EQ(d.kase, OverlapCase::kClusterInsideQuery);
  EXPECT_DOUBLE_EQ(d.value, 1.0);
}

TEST(OverlapCaseTest, PointQueryInsideCluster) {
  // Zero-width query in a wide cluster: requests measure-zero data.
  const DimensionOverlap d = Faithful(5, 5, 0, 10);
  EXPECT_EQ(d.kase, OverlapCase::kQueryInsideCluster);
  EXPECT_DOUBLE_EQ(d.value, 0.0);
}

TEST(OverlapCaseTest, PointOnPoint) {
  const DimensionOverlap same = Faithful(5, 5, 5, 5);
  EXPECT_DOUBLE_EQ(same.value, 1.0);
  const DimensionOverlap diff = Faithful(5, 5, 7, 7);
  EXPECT_DOUBLE_EQ(diff.value, 0.0);
}

// ----- Normalized-intersection mode -----

TEST(OverlapModeTest, NormalizedQueryInsideCluster) {
  // |q ∩ k| / |k| = 2/10.
  const DimensionOverlap d = Normalized(2, 4, 0, 10);
  EXPECT_DOUBLE_EQ(d.value, 0.2);
}

TEST(OverlapModeTest, NormalizedPartial) {
  // k = [0,10], q = [6,14]: intersection [6,10] -> 4/10.
  const DimensionOverlap d = Normalized(6, 14, 0, 10);
  EXPECT_DOUBLE_EQ(d.value, 0.4);
}

TEST(OverlapModeTest, NormalizedContainment) {
  const DimensionOverlap d = Normalized(0, 10, 3, 5);
  EXPECT_DOUBLE_EQ(d.value, 1.0);
}

// ----- Eq. 2 aggregation -----

TEST(OverlapRateTest, AveragesAcrossDimensions) {
  // Dim 0: case 1 value 0.2; dim 1: disjoint 0.0 -> mean 0.1.
  auto q = HyperRectangle::FromFlatBounds({2, 4, 20, 30}).value();
  auto k = HyperRectangle::FromFlatBounds({0, 10, 0, 10}).value();
  EXPECT_DOUBLE_EQ(ComputeOverlapRate(q, k).value(), 0.1);
}

TEST(OverlapRateTest, BreakdownMatchesRate) {
  auto q = HyperRectangle::FromFlatBounds({2, 4, 6, 14}).value();
  auto k = HyperRectangle::FromFlatBounds({0, 10, 0, 10}).value();
  auto b = ComputeOverlapBreakdown(q, k);
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(b->per_dimension.size(), 2u);
  EXPECT_EQ(b->per_dimension[0].kase, OverlapCase::kQueryInsideCluster);
  EXPECT_EQ(b->per_dimension[1].kase, OverlapCase::kQueryMinInside);
  EXPECT_DOUBLE_EQ(
      b->rate, (b->per_dimension[0].value + b->per_dimension[1].value) / 2.0);
}

TEST(OverlapRateTest, Errors) {
  auto q1 = HyperRectangle::FromFlatBounds({0, 1}).value();
  auto k2 = HyperRectangle::FromFlatBounds({0, 1, 0, 1}).value();
  EXPECT_FALSE(ComputeOverlapRate(q1, k2).ok());
  EXPECT_FALSE(ComputeOverlapRate(HyperRectangle(), k2).ok());
}

// ----- Property sweeps -----

class OverlapPropertyTest : public ::testing::TestWithParam<OverlapMode> {};

TEST_P(OverlapPropertyTest, ValueAlwaysInUnitInterval) {
  const OverlapMode mode = GetParam();
  Rng rng(99);
  for (int i = 0; i < 5000; ++i) {
    double a = rng.Uniform(-100, 100), b = rng.Uniform(-100, 100);
    double c = rng.Uniform(-100, 100), d = rng.Uniform(-100, 100);
    Interval q(std::min(a, b), std::max(a, b));
    Interval k(std::min(c, d), std::max(c, d));
    const DimensionOverlap o = ComputeDimensionOverlap(q, k, mode);
    EXPECT_GE(o.value, 0.0);
    EXPECT_LE(o.value, 1.0);
  }
}

TEST_P(OverlapPropertyTest, ZeroIffStrictlyDisjointOrMeasureZero) {
  const OverlapMode mode = GetParam();
  Rng rng(123);
  for (int i = 0; i < 5000; ++i) {
    double a = rng.Uniform(-50, 50), b = rng.Uniform(-50, 50);
    double c = rng.Uniform(-50, 50), d = rng.Uniform(-50, 50);
    Interval q(std::min(a, b), std::max(a, b));
    Interval k(std::min(c, d), std::max(c, d));
    const DimensionOverlap o = ComputeDimensionOverlap(q, k, mode);
    if (!q.Intersects(k)) {
      EXPECT_DOUBLE_EQ(o.value, 0.0);
    }
    if (o.value > 0.0) {
      // Positive overlap implies a real geometric intersection.
      EXPECT_TRUE(q.Intersects(k));
    }
  }
}

TEST_P(OverlapPropertyTest, GrowingQueryNeverLeavesSupportedCluster) {
  // Widening the query around a fixed cluster can only keep overlap
  // positive once it is positive (monotone support).
  const OverlapMode mode = GetParam();
  Interval k(0, 10);
  double prev_positive = -1.0;
  for (double half = 0.5; half <= 30.0; half += 0.5) {
    Interval q(5 - half, 5 + half);
    const DimensionOverlap o = ComputeDimensionOverlap(q, k, mode);
    if (prev_positive > 0.0) {
      EXPECT_GT(o.value, 0.0);
    }
    prev_positive = o.value;
  }
}

TEST_P(OverlapPropertyTest, CaseClassificationIsExhaustiveAndConsistent) {
  const OverlapMode mode = GetParam();
  Rng rng(321);
  for (int i = 0; i < 5000; ++i) {
    double a = rng.Uniform(-20, 20), b = rng.Uniform(-20, 20);
    double c = rng.Uniform(-20, 20), d = rng.Uniform(-20, 20);
    Interval q(std::min(a, b), std::max(a, b));
    Interval k(std::min(c, d), std::max(c, d));
    const DimensionOverlap o = ComputeDimensionOverlap(q, k, mode);
    switch (o.kase) {
      case OverlapCase::kDisjointQueryRight:
        EXPECT_GT(q.lo, k.hi);
        break;
      case OverlapCase::kDisjointQueryLeft:
        EXPECT_LT(q.hi, k.lo);
        break;
      case OverlapCase::kQueryInsideCluster:
        EXPECT_TRUE(k.ContainsInterval(q));
        break;
      case OverlapCase::kClusterInsideQuery:
        EXPECT_TRUE(q.ContainsInterval(k));
        EXPECT_DOUBLE_EQ(o.value, 1.0);
        break;
      case OverlapCase::kQueryMinInside:
        EXPECT_TRUE(k.Contains(q.lo));
        EXPECT_GT(q.hi, k.hi);
        break;
      case OverlapCase::kQueryMaxInside:
        EXPECT_TRUE(k.Contains(q.hi));
        EXPECT_LT(q.lo, k.lo);
        break;
    }
  }
}

/// Re-derives the case label from the raw inequalities, independently of
/// the implementation's control flow, with the same tie-break precedence.
OverlapCase ClassifyReference(const Interval& q, const Interval& k) {
  if (q.lo > k.hi) return OverlapCase::kDisjointQueryRight;
  if (q.hi < k.lo) return OverlapCase::kDisjointQueryLeft;
  if (k.lo <= q.lo && q.hi <= k.hi) return OverlapCase::kQueryInsideCluster;
  if (q.lo <= k.lo && k.hi <= q.hi) return OverlapCase::kClusterInsideQuery;
  if (q.lo >= k.lo) return OverlapCase::kQueryMinInside;
  return OverlapCase::kQueryMaxInside;
}

TEST_P(OverlapPropertyTest, CaseAnalysisIsAnExhaustivePartition) {
  // Every valid (q, k) pair — including degenerate points and shared
  // endpoints — lands in exactly one case, matching an independent
  // classifier. Integer-grid coordinates force endpoint collisions that a
  // continuous sweep would almost never hit.
  const OverlapMode mode = GetParam();
  Rng rng(777);
  for (int i = 0; i < 8000; ++i) {
    auto draw = [&]() -> double {
      // Half the draws land on a small integer grid, the rest anywhere.
      return rng.Bernoulli(0.5) ? static_cast<double>(rng.UniformInt(
                                      int64_t{-5}, int64_t{5}))
                                : rng.Uniform(-5, 5);
    };
    double a = draw(), b = draw(), c = draw(), d = draw();
    Interval q(std::min(a, b), std::max(a, b));
    Interval k(std::min(c, d), std::max(c, d));
    const DimensionOverlap o = ComputeDimensionOverlap(q, k, mode);
    EXPECT_EQ(o.kase, ClassifyReference(q, k))
        << "q=[" << q.lo << "," << q.hi << "] k=[" << k.lo << "," << k.hi
        << "]";
    EXPECT_GE(o.value, 0.0);
    EXPECT_LE(o.value, 1.0);
  }
}

TEST_P(OverlapPropertyTest, DegenerateIntervalsAreWellDefined) {
  // Zero-length query and/or cluster intervals exercise the Ratio
  // `at_degenerate` guards: every answer must stay in [0, 1] and disjoint
  // geometry must still score 0.
  const OverlapMode mode = GetParam();
  Rng rng(4242);
  for (int i = 0; i < 4000; ++i) {
    double qlo = rng.Uniform(-5, 5);
    double qhi = rng.Bernoulli(0.5) ? qlo : qlo + rng.Uniform(0, 5);
    double klo = rng.Uniform(-5, 5);
    double khi = rng.Bernoulli(0.5) ? klo : klo + rng.Uniform(0, 5);
    Interval q(qlo, qhi), k(klo, khi);
    const DimensionOverlap o = ComputeDimensionOverlap(q, k, mode);
    EXPECT_GE(o.value, 0.0);
    EXPECT_LE(o.value, 1.0);
    if (!q.Intersects(k)) {
      EXPECT_DOUBLE_EQ(o.value, 0.0);
    }
    EXPECT_EQ(o.kase, ClassifyReference(q, k));
  }
}

TEST_P(OverlapPropertyTest, PointOnPointGeometry) {
  const OverlapMode mode = GetParam();
  // Identical points: the only all-degenerate geometry, full overlap via
  // the at_degenerate branch of case 1 in BOTH modes.
  const DimensionOverlap same =
      ComputeDimensionOverlap(Interval(5, 5), Interval(5, 5), mode);
  EXPECT_EQ(same.kase, OverlapCase::kQueryInsideCluster);
  EXPECT_DOUBLE_EQ(same.value, 1.0);
  // Distinct points: strictly disjoint.
  const DimensionOverlap diff =
      ComputeDimensionOverlap(Interval(5, 5), Interval(7, 7), mode);
  EXPECT_DOUBLE_EQ(diff.value, 0.0);
  // A point query at a wide cluster's edge requests measure-zero data.
  const DimensionOverlap edge =
      ComputeDimensionOverlap(Interval(5, 5), Interval(1, 5), mode);
  EXPECT_EQ(edge.kase, OverlapCase::kQueryInsideCluster);
  EXPECT_DOUBLE_EQ(edge.value, 0.0);
  // A point cluster inside a wide query is fully covered.
  const DimensionOverlap contained =
      ComputeDimensionOverlap(Interval(0, 10), Interval(5, 5), mode);
  EXPECT_EQ(contained.kase, OverlapCase::kClusterInsideQuery);
  EXPECT_DOUBLE_EQ(contained.value, 1.0);
}

TEST_P(OverlapPropertyTest, EveryOverlapValueIsAttainable) {
  // h ranges over ALL of [0, 1]: for any target t, q = [0, t] inside
  // k = [0, 1] scores exactly t in both modes (case 1 with |k| = 1).
  const OverlapMode mode = GetParam();
  for (int step = 0; step <= 100; ++step) {
    const double t = static_cast<double>(step) / 100.0;
    const DimensionOverlap o =
        ComputeDimensionOverlap(Interval(0, t), Interval(0, 1), mode);
    EXPECT_EQ(o.kase, OverlapCase::kQueryInsideCluster);
    EXPECT_DOUBLE_EQ(o.value, t);
  }
}

INSTANTIATE_TEST_SUITE_P(BothModes, OverlapPropertyTest,
                         ::testing::Values(
                             OverlapMode::kFaithful,
                             OverlapMode::kNormalizedIntersection));

TEST(OverlapNamesTest, CaseAndModeNames) {
  EXPECT_STREQ(OverlapCaseName(OverlapCase::kQueryInsideCluster),
               "query-inside-cluster");
  EXPECT_STREQ(OverlapModeName(OverlapMode::kFaithful), "faithful");
  EXPECT_STREQ(OverlapModeName(OverlapMode::kNormalizedIntersection),
               "normalized-intersection");
}

}  // namespace
}  // namespace qens::query
