// Differential test pinning the indexed ranking path to the paper-exact
// scan: hundreds of seeded random fleets and workloads, deliberately heavy
// on degenerate geometry (zero-width intervals, exactly-touching edges,
// clusters straddling grid-cell boundaries, epsilon set exactly at an
// observed overlap value), asserting bit-identical rankings — scores,
// order, and tie-breaks — for every (fleet, query, bins, epsilon) combo.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "qens/common/rng.h"
#include "qens/selection/cluster_index.h"
#include "qens/selection/ranking.h"

namespace qens::selection {
namespace {

using qens::Rng;

/// Coordinates snapped to a small integer lattice with high probability so
/// that exactly-touching edges, duplicated bounds, and grid-cell-boundary
/// straddling occur constantly instead of almost never.
double Coord(Rng& rng) {
  if (rng.Bernoulli(0.5)) {
    return static_cast<double>(rng.UniformInt(int64_t{0}, int64_t{10}));
  }
  return rng.Uniform(0.0, 10.0);
}

query::Interval RandomInterval(Rng& rng) {
  double a = Coord(rng);
  if (rng.Bernoulli(0.15)) return query::Interval(a, a);  // Zero width.
  double b = Coord(rng);
  if (b < a) std::swap(a, b);
  return query::Interval(a, b);
}

query::HyperRectangle RandomBox(Rng& rng, size_t dims) {
  std::vector<query::Interval> intervals;
  intervals.reserve(dims);
  for (size_t d = 0; d < dims; ++d) intervals.push_back(RandomInterval(rng));
  return query::HyperRectangle(std::move(intervals));
}

std::vector<NodeProfile> RandomFleet(Rng& rng, size_t dims) {
  const size_t num_nodes = 1 + rng.UniformInt(uint64_t{40});
  std::vector<NodeProfile> profiles;
  profiles.reserve(num_nodes);
  for (size_t i = 0; i < num_nodes; ++i) {
    NodeProfile profile;
    profile.node_id = i;
    const size_t num_clusters = 1 + rng.UniformInt(uint64_t{5});
    for (size_t k = 0; k < num_clusters; ++k) {
      clustering::ClusterSummary cluster;
      if (rng.Bernoulli(0.1)) {
        cluster.size = 0;  // Empty cluster: invalid bounds, skipped by both.
      } else {
        cluster.bounds = RandomBox(rng, dims);
        cluster.size = 1 + rng.UniformInt(uint64_t{100});
      }
      profile.clusters.push_back(cluster);
      profile.total_samples += cluster.size;
    }
    // Occasionally give the node a reliability history so the
    // reliability_weight path is exercised too.
    if (rng.Bernoulli(0.3)) {
      profile.reliability.RecordCompleted();
      if (rng.Bernoulli(0.5)) profile.reliability.RecordFailure();
    }
    // And a staleness age, so the staleness_weight discount is exercised.
    if (rng.Bernoulli(0.3)) {
      profile.stale_rounds = static_cast<size_t>(rng.UniformInt(uint64_t{6}));
    }
    profiles.push_back(std::move(profile));
  }
  return profiles;
}

void CheckQuery(const std::vector<NodeProfile>& profiles,
                const ClusterIndex& index, const query::RangeQuery& q,
                const RankingOptions& options, ClusterIndex::Scratch* scratch,
                uint64_t seed) {
  auto scan = RankNodes(profiles, q, options);
  auto indexed = RankNodesIndexed(index, profiles, q, options, scratch);
  ASSERT_EQ(scan.ok(), indexed.ok())
      << "seed " << seed << ": scan=" << scan.status().ToString()
      << " indexed=" << indexed.status().ToString();
  if (!scan.ok()) {
    EXPECT_EQ(scan.status().code(), indexed.status().code()) << "seed " << seed;
    EXPECT_EQ(scan.status().message(), indexed.status().message())
        << "seed " << seed;
    return;
  }
  std::string diff;
  EXPECT_TRUE(RankingsBitwiseEqual(*scan, *indexed, options, &diff))
      << "seed " << seed << " epsilon " << options.epsilon << ": " << diff;
}

TEST(SelectionIndexDifferentialTest, IndexedRankingIsBitIdenticalToScan) {
  const std::vector<size_t> kBins = {1, 2, 7, 32, 64};
  for (uint64_t seed = 1; seed <= 300; ++seed) {
    Rng rng(seed);
    const size_t dims = 1 + rng.UniformInt(uint64_t{4});
    std::vector<NodeProfile> profiles = RandomFleet(rng, dims);

    ClusterIndexOptions index_options;
    index_options.bins_per_dim = kBins[seed % kBins.size()];
    auto index = ClusterIndex::Build(profiles, index_options);
    ASSERT_TRUE(index.ok()) << "seed " << seed << ": "
                            << index.status().ToString();
    ClusterIndex::Scratch scratch;

    const size_t num_queries = 2 + rng.UniformInt(uint64_t{4});
    for (size_t qi = 0; qi < num_queries; ++qi) {
      query::RangeQuery q;
      q.id = qi;
      q.region = RandomBox(rng, dims);

      RankingOptions options;
      options.epsilon = rng.Uniform(0.05, 0.95);
      if (rng.Bernoulli(0.25)) options.reliability_weight = rng.Uniform(0.5, 2.0);
      if (rng.Bernoulli(0.25)) options.staleness_weight = rng.Uniform(0.5, 2.0);
      if (rng.Bernoulli(0.2)) {
        options.overlap_mode = query::OverlapMode::kNormalizedIntersection;
      }
      CheckQuery(profiles, *index, q, options, &scratch, seed);

      // Re-rank with epsilon set EXACTLY at an overlap value observed in
      // the scan, so the h >= epsilon comparison sits on the boundary and
      // any index-side rounding slack would flip support decisions.
      auto scan = RankNodes(profiles, q, options);
      ASSERT_TRUE(scan.ok());
      double boundary = 0.0;
      for (const auto& rank : *scan) {
        for (const auto& score : rank.cluster_scores) {
          if (score.overlap > 0.0) {
            boundary = score.overlap;
            break;
          }
        }
        if (boundary > 0.0) break;
      }
      if (boundary > 0.0) {
        RankingOptions at_boundary = options;
        at_boundary.epsilon = boundary;
        CheckQuery(profiles, *index, q, at_boundary, &scratch, seed);
      }
    }

    // Mid-sequence online refresh: rewrite a node's geometry (what
    // Leader::PublishRefreshedProfile does to the leader's profiles),
    // rebuild the index at the bumped epoch, and require the differential
    // to keep holding over the new geometry.
    ClusterIndexOptions refresh_options = index_options;
    const size_t refresh_events = 1 + rng.UniformInt(uint64_t{2});
    for (size_t e = 0; e < refresh_events; ++e) {
      const size_t victim = static_cast<size_t>(
          rng.UniformInt(static_cast<uint64_t>(profiles.size())));
      NodeProfile& refreshed = profiles[victim];
      for (auto& cluster : refreshed.clusters) {
        if (cluster.size > 0) cluster.bounds = RandomBox(rng, dims);
      }
      refreshed.stale_rounds = 0;
      ++refresh_options.epoch;
      auto rebuilt = ClusterIndex::Build(profiles, refresh_options);
      ASSERT_TRUE(rebuilt.ok()) << "seed " << seed << ": "
                                << rebuilt.status().ToString();
      EXPECT_EQ(rebuilt->epoch(), refresh_options.epoch);
      for (size_t qi = 0; qi < 2; ++qi) {
        query::RangeQuery q;
        q.id = 1000 + 10 * e + qi;
        q.region = RandomBox(rng, dims);
        RankingOptions options;
        options.epsilon = rng.Uniform(0.05, 0.95);
        if (rng.Bernoulli(0.5)) {
          options.staleness_weight = rng.Uniform(0.5, 2.0);
        }
        if (rng.Bernoulli(0.25)) {
          options.reliability_weight = rng.Uniform(0.5, 2.0);
        }
        CheckQuery(profiles, *rebuilt, q, options, &scratch, seed);
      }
    }

    // Negative paths must error identically through either entry point.
    if (seed % 10 == 0) {
      query::RangeQuery bad;
      bad.id = 999;
      bad.region = RandomBox(rng, dims + 1);  // Dimensional mismatch.
      CheckQuery(profiles, *index, bad, RankingOptions{}, &scratch, seed);
      bad.region = RandomBox(rng, dims);
      bad.region.dim(0) = query::Interval(5.0, 1.0);  // min > max.
      CheckQuery(profiles, *index, bad, RankingOptions{}, &scratch, seed);
      RankingOptions bad_eps;
      bad_eps.epsilon = -1.0;
      query::RangeQuery ok_query;
      ok_query.region = RandomBox(rng, dims);
      CheckQuery(profiles, *index, ok_query, bad_eps, &scratch, seed);
    }
  }
}

}  // namespace
}  // namespace qens::selection
