// Tests for the deterministic RNG: reproducibility, distribution sanity,
// sampling helpers.

#include "qens/common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

namespace qens {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() != b.Next()) ++differing;
  }
  EXPECT_GT(differing, 60);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-3.5, 8.25);
    EXPECT_GE(u, -3.5);
    EXPECT_LT(u, 8.25);
  }
}

TEST(RngTest, UniformMeanApproximatesHalf) {
  Rng rng(11);
  double acc = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) acc += rng.Uniform();
  EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(RngTest, UniformIntCoversDomainWithoutBias) {
  Rng rng(13);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.UniformInt(uint64_t{10})];
  for (int c : counts) {
    EXPECT_GT(c, n / 10 - n / 50);
    EXPECT_LT(c, n / 10 + n / 50);
  }
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(15);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformInt(int64_t{-2}, int64_t{2});
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(17);
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(RngTest, GaussianScaled) {
  Rng rng(19);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(21);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(23);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double e = rng.Exponential(2.0);
    EXPECT_GE(e, 0.0);
    sum += e;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(25);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ShuffleEmptyAndSingleton) {
  Rng rng(27);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{42};
  rng.Shuffle(&one);
  EXPECT_EQ(one[0], 42);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(29);
  for (int trial = 0; trial < 50; ++trial) {
    const std::vector<size_t> sample = rng.SampleWithoutReplacement(20, 8);
    ASSERT_EQ(sample.size(), 8u);
    std::set<size_t> distinct(sample.begin(), sample.end());
    EXPECT_EQ(distinct.size(), 8u);
    for (size_t s : sample) EXPECT_LT(s, 20u);
  }
}

TEST(RngTest, SampleAllElements) {
  Rng rng(31);
  std::vector<size_t> sample = rng.SampleWithoutReplacement(5, 5);
  std::sort(sample.begin(), sample.end());
  EXPECT_EQ(sample, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng(33);
  const std::vector<double> w{0.0, 1.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.WeightedIndex(w)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.25, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.01);
}

TEST(RngTest, WeightedIndexAllZeroFallsBackToUniform) {
  Rng rng(35);
  const std::vector<double> w{0.0, 0.0, 0.0, 0.0};
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 40000; ++i) ++counts[rng.WeightedIndex(w)];
  for (int c : counts) EXPECT_GT(c, 8000);
}

TEST(RngTest, WeightedIndexClampsNegativeWeights) {
  // A negative weight must behave exactly like a zero weight: never picked,
  // and not skewing the other entries' probabilities.
  Rng rng(37);
  const std::vector<double> w{-5.0, 1.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.WeightedIndex(w)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.25, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.01);
}

TEST(RngTest, WeightedIndexClampsNaNWeights) {
  // NaN must not poison the total (NaN total would make every comparison
  // false and always return the last index).
  Rng rng(39);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const std::vector<double> w{nan, 2.0, nan, 2.0};
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.WeightedIndex(w)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.5, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[3]) / n, 0.5, 0.01);
}

TEST(RngTest, WeightedIndexAllNegativeOrNaNFallsBackToUniform) {
  Rng rng(41);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const std::vector<double> w{-1.0, nan, -0.5, nan};
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 40000; ++i) ++counts[rng.WeightedIndex(w)];
  for (int c : counts) EXPECT_GT(c, 8000);
}

TEST(RngTest, WeightedIndexValidWeightsDrawIdenticalToClampedRun) {
  // Clamping must not change the draw sequence for valid inputs: a stream
  // fed {1, 2} and one fed {1, 2} after clamped calls stay in lockstep
  // because invalid entries consume no RNG state beyond the one draw.
  Rng a(43);
  Rng b(43);
  const std::vector<double> valid{1.0, 2.0, 4.0};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.WeightedIndex(valid), b.WeightedIndex(valid));
  }
}

TEST(RngTest, ForkIsDeterministicAndDecorrelated) {
  Rng parent(101);
  Rng f1 = parent.Fork(1);
  Rng f1_again = Rng(101).Fork(1);
  EXPECT_EQ(f1.Next(), f1_again.Next());
  Rng f2 = parent.Fork(2);
  int differing = 0;
  Rng g1 = parent.Fork(1);
  for (int i = 0; i < 32; ++i) {
    if (g1.Next() != f2.Next()) ++differing;
  }
  EXPECT_GT(differing, 30);
}

TEST(RngTest, ForkDoesNotAdvanceParent) {
  Rng a(55), b(55);
  (void)a.Fork(3);
  EXPECT_EQ(a.Next(), b.Next());
}

}  // namespace
}  // namespace qens
