// End-to-end tests in the multi-feature regime (d = 4: TEMP, PRES, DEWP,
// WSPM): multi-dimensional queries, Eq. 2 averaging over several
// dimensions, and the full federation pipeline at d > 1.

#include <gtest/gtest.h>

#include <cmath>

#include "qens/data/air_quality_generator.h"
#include "qens/fl/experiment.h"

namespace qens::fl {
namespace {

ExperimentConfig MultiFeatureConfig() {
  ExperimentConfig config;
  config.data.num_stations = 5;
  config.data.samples_per_station = 500;
  config.data.heterogeneity = data::Heterogeneity::kHeterogeneous;
  config.data.single_feature = false;  // All four features.
  config.data.seed = 23;

  config.federation.environment.kmeans.k = 5;
  config.federation.ranking.epsilon = 0.2;
  config.federation.query_driven.top_l = 3;
  config.federation.hyper =
      ml::PaperHyperParams(ml::ModelKind::kLinearRegression);
  config.federation.hyper.epochs = 15;
  config.federation.epochs_per_cluster = 6;
  config.federation.seed = 29;

  config.workload.num_queries = 6;
  config.workload.min_width_frac = 0.4;
  config.workload.max_width_frac = 0.8;
  config.workload.seed = 31;
  return config;
}

TEST(MultiFeatureTest, GeneratorEmitsFourFeatures) {
  data::AirQualityGenerator generator(MultiFeatureConfig().data);
  auto d = generator.GenerateStation(0);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->NumFeatures(), 4u);
}

TEST(MultiFeatureTest, WorkloadQueriesAreFourDimensional) {
  auto runner = ExperimentRunner::Create(MultiFeatureConfig());
  ASSERT_TRUE(runner.ok());
  for (const auto& q : runner->queries()) {
    EXPECT_EQ(q.dims(), 4u);
    EXPECT_TRUE(q.region.valid());
  }
}

TEST(MultiFeatureTest, QueryDrivenPipelineRuns) {
  auto runner = ExperimentRunner::Create(MultiFeatureConfig());
  ASSERT_TRUE(runner.ok());
  Mechanism ours{"Weighted", selection::PolicyKind::kQueryDriven, true,
                 AggregationKind::kWeightedAveraging};
  auto stats = runner->RunMechanism(ours);
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->queries_run + stats->queries_skipped, 0u);
  // At least some multi-dimensional queries must be executable.
  EXPECT_GT(stats->queries_run, 0u);
  EXPECT_GE(stats->loss.mean(), 0.0);
  EXPECT_TRUE(std::isfinite(stats->loss.mean()));
}

TEST(MultiFeatureTest, RankingsAverageAcrossFourDimensions) {
  auto runner = ExperimentRunner::Create(MultiFeatureConfig());
  ASSERT_TRUE(runner.ok());
  // Per Eq. 2, every node ranking is bounded by K (each h_ik <= 1).
  const auto& fed = runner->federation();
  for (const auto& q : runner->queries()) {
    auto internal = fed.InternalQuery(q);
    ASSERT_TRUE(internal.ok());
    auto ranks = fed.leader().Rank(*internal);
    ASSERT_TRUE(ranks.ok());
    for (const auto& r : *ranks) {
      EXPECT_GE(r.ranking, 0.0);
      EXPECT_LE(r.ranking, static_cast<double>(r.total_clusters));
    }
  }
}

TEST(MultiFeatureTest, BaselinesRunAtFourDimensions) {
  auto runner = ExperimentRunner::Create(MultiFeatureConfig());
  ASSERT_TRUE(runner.ok());
  for (selection::PolicyKind policy :
       {selection::PolicyKind::kRandom, selection::PolicyKind::kAllNodes}) {
    Mechanism m{selection::PolicyKindName(policy), policy, false,
                AggregationKind::kModelAveraging};
    auto stats = runner->RunMechanism(m);
    ASSERT_TRUE(stats.ok()) << selection::PolicyKindName(policy);
    EXPECT_GT(stats->queries_run, 0u);
  }
}

}  // namespace
}  // namespace qens::fl
