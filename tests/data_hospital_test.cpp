// Tests for the multi-hospital generator: schema, determinism, cohort
// specialization, ground-truth coherence, and end-to-end selection shape.

#include "qens/data/hospital_generator.h"

#include <gtest/gtest.h>

#include "qens/fl/federation.h"
#include "qens/tensor/stats.h"

namespace qens::data {
namespace {

HospitalOptions SmallOptions(bool specialized) {
  HospitalOptions options;
  options.num_hospitals = 6;
  options.patients_per_hospital = 400;
  options.specialized = specialized;
  options.seed = 3;
  return options;
}

TEST(HospitalGeneratorTest, SchemaAndShape) {
  HospitalGenerator gen(SmallOptions(true));
  auto d = gen.GenerateHospital(0);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->NumSamples(), 400u);
  EXPECT_EQ(d->NumFeatures(), 3u);
  EXPECT_EQ(d->feature_names(),
            (std::vector<std::string>{"AGE", "BMI", "SBP"}));
  EXPECT_EQ(d->target_name(), "RISK");
}

TEST(HospitalGeneratorTest, Deterministic) {
  HospitalGenerator g1(SmallOptions(true));
  HospitalGenerator g2(SmallOptions(true));
  auto d1 = g1.GenerateHospital(2);
  auto d2 = g2.GenerateHospital(2);
  ASSERT_TRUE(d1.ok());
  ASSERT_TRUE(d2.ok());
  EXPECT_EQ(d1->features().data(), d2->features().data());
}

TEST(HospitalGeneratorTest, PhysiologicalRanges) {
  HospitalGenerator gen(SmallOptions(true));
  auto all = gen.GenerateAll();
  ASSERT_TRUE(all.ok());
  for (const auto& d : *all) {
    for (size_t i = 0; i < d.NumSamples(); ++i) {
      EXPECT_GE(d.features()(i, 0), 0.0);    // AGE.
      EXPECT_LE(d.features()(i, 0), 100.0);
      EXPECT_GE(d.features()(i, 1), 14.0);   // BMI.
      EXPECT_LE(d.features()(i, 1), 50.0);
      EXPECT_GE(d.features()(i, 2), 80.0);   // SBP.
      EXPECT_LE(d.features()(i, 2), 220.0);
      EXPECT_GE(d.targets()(i, 0), 0.0);     // RISK.
    }
  }
}

TEST(HospitalGeneratorTest, SpecializedCohortsSpreadAcrossAges) {
  HospitalGenerator gen(SmallOptions(true));
  double min_center = 200, max_center = -1;
  for (const auto& p : gen.profiles()) {
    min_center = std::min(min_center, p.age_center);
    max_center = std::max(max_center, p.age_center);
  }
  EXPECT_LT(min_center, 20.0);   // A pediatric-ish site exists.
  EXPECT_GT(max_center, 70.0);   // A geriatric-ish site exists.
}

TEST(HospitalGeneratorTest, GeneralPopulationMode) {
  HospitalGenerator gen(SmallOptions(false));
  for (const auto& p : gen.profiles()) {
    EXPECT_DOUBLE_EQ(p.age_center, 45.0);
  }
}

TEST(HospitalGeneratorTest, TrueRiskMonotoneInAge) {
  double prev = -1.0;
  for (double age : {10.0, 30.0, 50.0, 70.0, 90.0}) {
    const double risk = HospitalGenerator::TrueRisk(age, 25.0, 120.0);
    EXPECT_GT(risk, prev);
    prev = risk;
  }
}

TEST(HospitalGeneratorTest, LocalSlopesDifferAcrossCohorts) {
  // The pediatric site's RISK~AGE slope is much flatter than the
  // middle-aged site's (the sigmoid's steep section) — the same
  // regional-pattern heterogeneity as the air-quality V-curve.
  HospitalOptions options = SmallOptions(true);
  options.patients_per_hospital = 1500;
  HospitalGenerator gen(options);
  auto young = gen.GenerateHospital(0);
  ASSERT_TRUE(young.ok());
  auto mid = gen.GenerateHospital(4);  // Centers near the sigmoid knee.
  ASSERT_TRUE(mid.ok());
  auto fit_young = stats::FitLine(young->features().Col(0),
                                  young->TargetVector());
  auto fit_mid = stats::FitLine(mid->features().Col(0), mid->TargetVector());
  ASSERT_TRUE(fit_young.ok());
  ASSERT_TRUE(fit_mid.ok());
  EXPECT_GT(fit_mid->slope, 2.0 * std::max(0.0, fit_young->slope));
}

TEST(HospitalGeneratorTest, OutOfRangeAndZeroPatients) {
  HospitalGenerator gen(SmallOptions(true));
  EXPECT_TRUE(gen.GenerateHospital(99).status().IsOutOfRange());
  HospitalOptions bad = SmallOptions(true);
  bad.patients_per_hospital = 0;
  HospitalGenerator gen2(bad);
  EXPECT_FALSE(gen2.GenerateHospital(0).ok());
}

TEST(HospitalFederationTest, AgeRangeQuerySelectsMatchingHospitals) {
  // End-to-end shape: a geriatric query must not select the pediatric
  // hospital under the query-driven mechanism.
  HospitalOptions options = SmallOptions(true);
  options.num_hospitals = 5;
  HospitalGenerator gen(options);

  fl::FederationOptions fed_options;
  fed_options.environment.kmeans.k = 4;
  fed_options.ranking.epsilon = 0.15;
  fed_options.query_driven.top_l = 2;
  fed_options.hyper = ml::PaperHyperParams(ml::ModelKind::kLinearRegression);
  fed_options.hyper.epochs = 15;
  fed_options.epochs_per_cluster = 6;
  fed_options.seed = 5;
  auto fed = fl::Federation::Create(gen.GenerateAll().value(), fed_options);
  ASSERT_TRUE(fed.ok());

  const query::HyperRectangle space = fed->RawDataSpace();
  query::RangeQuery geriatric;
  geriatric.region = query::HyperRectangle(std::vector<query::Interval>{
      query::Interval(70.0, 95.0), space.dim(1), space.dim(2)});
  auto outcome = fed->RunQueryDriven(geriatric);
  ASSERT_TRUE(outcome.ok());
  if (!outcome->skipped) {
    // Hospital 0 is the youngest cohort (center < 20y): it must not rank
    // into a 70-95y query's top-2.
    for (size_t id : outcome->selected_nodes) EXPECT_NE(id, 0u);
  }
}

}  // namespace
}  // namespace qens::data
