// Pins the QueryServer serving contract: sessions scheduled over a shared
// fleet are bit-identical at EVERY worker count (0 = sequential inline,
// 1, 2, 4, 8 = pooled), because each session's seed derives only from
// (base seed, session id) and every piece of mutable state is private to
// the session. Also pins the session-id tagging of RoundRecords and that
// serving leaves a concurrently used sequential Federation untouched.

#include <gtest/gtest.h>

#include "qens/common/rng.h"
#include "qens/fl/federation.h"
#include "qens/fl/query_server.h"
#include "qens/obs/metrics.h"

namespace qens::fl {
namespace {

data::Dataset MakeNodeData(double offset, double slope, uint64_t seed,
                           size_t n = 220) {
  Rng rng(seed);
  Matrix x(n, 1), y(n, 1);
  for (size_t i = 0; i < n; ++i) {
    x(i, 0) = offset + rng.Uniform(0, 10);
    y(i, 0) = slope * x(i, 0) + rng.Gaussian(0, 0.2);
  }
  return data::Dataset::Create(x, y).value();
}

FederationOptions FastOptions() {
  FederationOptions options;
  options.environment.kmeans.k = 3;
  options.ranking.epsilon = 0.1;
  options.query_driven.top_l = 4;
  options.hyper = ml::PaperHyperParams(ml::ModelKind::kLinearRegression);
  options.hyper.epochs = 15;
  options.epochs_per_cluster = 6;
  options.random_l = 2;
  options.seed = 77;
  return options;
}

std::vector<data::Dataset> MakeNodes() {
  return {MakeNodeData(0, 2.0, 1), MakeNodeData(0, 2.0, 2),
          MakeNodeData(0, 2.0, 3), MakeNodeData(0, 2.0, 4)};
}

query::RangeQuery QueryOver(double lo, double hi, uint64_t id) {
  query::RangeQuery q;
  q.id = id;
  q.region = query::HyperRectangle::FromFlatBounds({lo, hi}).value();
  return q;
}

/// Four sessions with distinct query streams (widths and ids differ so a
/// cross-session state leak cannot cancel out).
std::vector<SessionSpec> MakeSpecs() {
  std::vector<SessionSpec> specs;
  for (size_t s = 0; s < 4; ++s) {
    SessionSpec spec;
    for (uint64_t q = 0; q < 2; ++q) {
      spec.queries.push_back(
          QueryOver(0, 6.0 + static_cast<double>(s), 10 * (s + 1) + q));
    }
    spec.rounds = 1 + s % 2;
    specs.push_back(std::move(spec));
  }
  return specs;
}

void ExpectIdenticalOutcomes(const QueryOutcome& a, const QueryOutcome& b) {
  EXPECT_EQ(a.skipped, b.skipped);
  EXPECT_EQ(a.selected_nodes, b.selected_nodes);
  EXPECT_EQ(a.round_survivors, b.round_survivors);
  EXPECT_EQ(a.samples_used, b.samples_used);
  if (a.skipped || b.skipped) return;
  EXPECT_DOUBLE_EQ(a.loss_model_avg, b.loss_model_avg);
  EXPECT_DOUBLE_EQ(a.loss_weighted, b.loss_weighted);
  EXPECT_DOUBLE_EQ(a.loss_fedavg, b.loss_fedavg);
  EXPECT_DOUBLE_EQ(a.sim_time_total, b.sim_time_total);
  EXPECT_DOUBLE_EQ(a.sim_time_parallel, b.sim_time_parallel);
  EXPECT_DOUBLE_EQ(a.sim_time_comm, b.sim_time_comm);
}

/// Everything except wall_seconds (the one field allowed to vary).
void ExpectIdenticalSessionResults(const SessionResult& a,
                                   const SessionResult& b) {
  EXPECT_EQ(a.session_id, b.session_id);
  EXPECT_EQ(a.status.ok(), b.status.ok());
  EXPECT_EQ(a.queries_run, b.queries_run);
  EXPECT_EQ(a.queries_skipped, b.queries_skipped);
  EXPECT_EQ(a.comm_messages, b.comm_messages);
  EXPECT_EQ(a.comm_bytes, b.comm_bytes);
  EXPECT_DOUBLE_EQ(a.comm_seconds, b.comm_seconds);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (size_t i = 0; i < a.outcomes.size(); ++i) {
    ExpectIdenticalOutcomes(a.outcomes[i], b.outcomes[i]);
  }
}

TEST(QueryServerTest, SessionSeedIndependentOfSchedulingInputs) {
  // Derivation is pure: same (base, id) -> same seed, distinct ids ->
  // distinct streams.
  EXPECT_EQ(QueryServer::SessionSeed(77, 1), QueryServer::SessionSeed(77, 1));
  EXPECT_NE(QueryServer::SessionSeed(77, 1), QueryServer::SessionSeed(77, 2));
  EXPECT_NE(QueryServer::SessionSeed(77, 1), QueryServer::SessionSeed(78, 1));
}

TEST(QueryServerTest, BitIdenticalAtEveryWorkerCount) {
  auto fleet = Fleet::Create(MakeNodes(), FastOptions());
  ASSERT_TRUE(fleet.ok());
  const std::vector<SessionSpec> specs = MakeSpecs();

  auto sequential = QueryServer::Create(*fleet, ServingOptions{});
  ASSERT_TRUE(sequential.ok());
  auto expected = sequential->Serve(specs);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();
  ASSERT_EQ(expected->size(), specs.size());
  for (size_t s = 0; s < specs.size(); ++s) {
    EXPECT_EQ((*expected)[s].session_id, s + 1);
    EXPECT_EQ((*expected)[s].outcomes.size(), specs[s].queries.size());
    EXPECT_GT((*expected)[s].queries_run, 0u);
    EXPECT_GT((*expected)[s].comm_bytes, 0u);
  }

  for (size_t workers : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    ServingOptions options;
    options.num_workers = workers;
    auto server = QueryServer::Create(*fleet, options);
    ASSERT_TRUE(server.ok());
    auto results = server->Serve(specs);
    ASSERT_TRUE(results.ok()) << "workers=" << workers;
    ASSERT_EQ(results->size(), expected->size());
    for (size_t s = 0; s < results->size(); ++s) {
      ExpectIdenticalSessionResults((*expected)[s], (*results)[s]);
    }
  }
}

TEST(QueryServerTest, RoundRecordsCarrySessionIds) {
  obs::MetricsRegistry::Enable();
  auto fleet = Fleet::Create(MakeNodes(), FastOptions());
  ASSERT_TRUE(fleet.ok());
  ServingOptions options;
  options.num_workers = 2;
  auto server = QueryServer::Create(*fleet, options);
  ASSERT_TRUE(server.ok());
  auto results = server->Serve(MakeSpecs());
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  size_t records_seen = 0;
  for (const SessionResult& session : *results) {
    for (const QueryOutcome& outcome : session.outcomes) {
      for (const obs::RoundRecord& record : outcome.round_records) {
        EXPECT_EQ(record.session, session.session_id);
        ++records_seen;
      }
    }
  }
  EXPECT_GT(records_seen, 0u);
  obs::MetricsRegistry::Disable();
}

TEST(QueryServerTest, SessionsAreIsolatedFromEachOther) {
  // Session 2 alone must reproduce session 2 served alongside others:
  // nothing another session does may leak into its stream.
  auto fleet = Fleet::Create(MakeNodes(), FastOptions());
  ASSERT_TRUE(fleet.ok());
  const std::vector<SessionSpec> specs = MakeSpecs();

  ServingOptions options;
  options.num_workers = 4;
  auto server = QueryServer::Create(*fleet, options);
  ASSERT_TRUE(server.ok());
  auto all = server->Serve(specs);
  ASSERT_TRUE(all.ok());

  // Replay session 2's stream on a standalone QuerySession with the same
  // derived seed and id.
  QuerySessionOptions session_options;
  session_options.session_id = 2;
  session_options.seed =
      QueryServer::SessionSeed((*fleet)->options.seed, 2);
  auto session = QuerySession::Create(*fleet, session_options);
  ASSERT_TRUE(session.ok());
  const SessionSpec& spec = specs[1];
  for (size_t q = 0; q < spec.queries.size(); ++q) {
    auto outcome = session->RunQueryMultiRound(
        spec.queries[q], spec.policy, spec.data_selectivity, spec.rounds);
    ASSERT_TRUE(outcome.ok());
    ExpectIdenticalOutcomes((*all)[1].outcomes[q], *outcome);
  }
}

TEST(QueryServerTest, SessionFailureIsIsolatedToItsResult) {
  // One bad spec must not fail the batch: the broken session carries the
  // error in its own SessionResult::status while every other stream runs
  // to completion, at any worker count.
  auto fleet = Fleet::Create(MakeNodes(), FastOptions());
  ASSERT_TRUE(fleet.ok());
  std::vector<SessionSpec> specs = MakeSpecs();
  specs[1].rounds = 0;  // Session 2's first query fails validation.

  for (size_t workers : {size_t{0}, size_t{4}}) {
    ServingOptions options;
    options.num_workers = workers;
    auto server = QueryServer::Create(*fleet, options);
    ASSERT_TRUE(server.ok());
    auto results = server->Serve(specs);
    ASSERT_TRUE(results.ok()) << results.status().ToString();
    ASSERT_EQ(results->size(), specs.size());
    for (size_t s = 0; s < results->size(); ++s) {
      const SessionResult& session = (*results)[s];
      EXPECT_EQ(session.session_id, s + 1);
      if (s == 1) {
        EXPECT_FALSE(session.status.ok());
        EXPECT_NE(session.status.ToString().find("rounds"), std::string::npos)
            << session.status.ToString();
        EXPECT_TRUE(session.outcomes.empty());
        EXPECT_EQ(session.queries_run, 0u);
      } else {
        EXPECT_TRUE(session.status.ok()) << session.status.ToString();
        EXPECT_EQ(session.outcomes.size(), specs[s].queries.size());
        EXPECT_GT(session.queries_run, 0u);
      }
    }
  }
}

TEST(QueryServerTest, ServingLeavesSequentialFederationUntouched) {
  // Twin federations, one interleaved with a serve over its fleet: the
  // interleaved one must stay in lockstep with the undisturbed twin, and
  // its environment-owned network must not record any serving traffic
  // (server sessions account in private networks).
  auto fed = Federation::Create(MakeNodes(), FastOptions());
  auto twin = Federation::Create(MakeNodes(), FastOptions());
  ASSERT_TRUE(fed.ok());
  ASSERT_TRUE(twin.ok());
  auto check_lockstep = [&] {
    auto a = fed->RunQueryDriven(QueryOver(0, 10, 3));
    auto b = twin->RunQueryDriven(QueryOver(0, 10, 3));
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ExpectIdenticalOutcomes(*a, *b);
  };
  check_lockstep();
  const size_t network_bytes = fed->environment().network().total_bytes();

  auto server = QueryServer::Create(fed->fleet(), ServingOptions{});
  ASSERT_TRUE(server.ok());
  auto results = server->Serve(MakeSpecs());
  ASSERT_TRUE(results.ok());

  EXPECT_EQ(fed->environment().network().total_bytes(), network_bytes);
  check_lockstep();
}

}  // namespace
}  // namespace qens::fl
