// Tests for Interval and HyperRectangle geometry.

#include "qens/query/hyper_rectangle.h"

#include <gtest/gtest.h>

namespace qens::query {
namespace {

TEST(IntervalTest, Basics) {
  Interval iv(1.0, 3.0);
  EXPECT_TRUE(iv.valid());
  EXPECT_DOUBLE_EQ(iv.length(), 2.0);
  EXPECT_TRUE(iv.Contains(1.0));
  EXPECT_TRUE(iv.Contains(3.0));
  EXPECT_TRUE(iv.Contains(2.0));
  EXPECT_FALSE(iv.Contains(0.999));
}

TEST(IntervalTest, PointInterval) {
  Interval pt(2.0, 2.0);
  EXPECT_TRUE(pt.valid());
  EXPECT_DOUBLE_EQ(pt.length(), 0.0);
  EXPECT_TRUE(pt.Contains(2.0));
}

TEST(IntervalTest, InvalidWhenReversed) {
  EXPECT_FALSE(Interval(3.0, 1.0).valid());
}

TEST(IntervalTest, ContainsInterval) {
  Interval big(0, 10), small(2, 3);
  EXPECT_TRUE(big.ContainsInterval(small));
  EXPECT_FALSE(small.ContainsInterval(big));
  EXPECT_TRUE(big.ContainsInterval(big));
}

TEST(IntervalTest, IntersectsAndIntersection) {
  Interval a(0, 5), b(3, 8), c(6, 9);
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_TRUE(b.Intersects(c));
  Interval ab = a.Intersection(b);
  EXPECT_DOUBLE_EQ(ab.lo, 3.0);
  EXPECT_DOUBLE_EQ(ab.hi, 5.0);
  EXPECT_FALSE(a.Intersection(c).valid());  // Disjoint -> invalid.
}

TEST(IntervalTest, TouchingEndpointsIntersect) {
  Interval a(0, 5), b(5, 8);
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_DOUBLE_EQ(a.Intersection(b).length(), 0.0);
}

TEST(IntervalTest, Hull) {
  Interval h = Interval(0, 2).Hull(Interval(5, 7));
  EXPECT_DOUBLE_EQ(h.lo, 0.0);
  EXPECT_DOUBLE_EQ(h.hi, 7.0);
}

TEST(HyperRectangleTest, FromFlatBounds) {
  auto box = HyperRectangle::FromFlatBounds({0, 1, -5, 5});
  ASSERT_TRUE(box.ok());
  EXPECT_EQ(box->dims(), 2u);
  EXPECT_DOUBLE_EQ(box->dim(1).lo, -5.0);
  EXPECT_FALSE(HyperRectangle::FromFlatBounds({0, 1, 2}).ok());  // Odd.
  EXPECT_FALSE(HyperRectangle::FromFlatBounds({1, 0}).ok());     // min > max.
}

TEST(HyperRectangleTest, FlatRoundTrip) {
  const std::vector<double> flat{0, 1, -5, 5, 100, 200};
  auto box = HyperRectangle::FromFlatBounds(flat);
  ASSERT_TRUE(box.ok());
  EXPECT_EQ(box->ToFlatBounds(), flat);
}

TEST(HyperRectangleTest, BoundingBoxAllRows) {
  Matrix data{{0, 10}, {5, -2}, {3, 4}};
  auto box = HyperRectangle::BoundingBox(data);
  ASSERT_TRUE(box.ok());
  EXPECT_DOUBLE_EQ(box->dim(0).lo, 0.0);
  EXPECT_DOUBLE_EQ(box->dim(0).hi, 5.0);
  EXPECT_DOUBLE_EQ(box->dim(1).lo, -2.0);
  EXPECT_DOUBLE_EQ(box->dim(1).hi, 10.0);
}

TEST(HyperRectangleTest, BoundingBoxSelectedRows) {
  Matrix data{{0.0}, {100.0}, {5.0}};
  auto box = HyperRectangle::BoundingBox(data, {0, 2});
  ASSERT_TRUE(box.ok());
  EXPECT_DOUBLE_EQ(box->dim(0).hi, 5.0);
}

TEST(HyperRectangleTest, BoundingBoxErrors) {
  EXPECT_FALSE(HyperRectangle::BoundingBox(Matrix()).ok());
  Matrix data{{1.0}};
  EXPECT_TRUE(
      HyperRectangle::BoundingBox(data, {5}).status().IsOutOfRange());
}

TEST(HyperRectangleTest, ContainsPoint) {
  auto box = HyperRectangle::FromFlatBounds({0, 1, 0, 1}).value();
  EXPECT_TRUE(box.ContainsPoint({0.5, 0.5}));
  EXPECT_TRUE(box.ContainsPoint({0.0, 1.0}));  // Boundary closed.
  EXPECT_FALSE(box.ContainsPoint({1.5, 0.5}));
  EXPECT_FALSE(box.ContainsPoint({0.5}));  // Dim mismatch.
}

TEST(HyperRectangleTest, ContainsBoxAndIntersects) {
  auto big = HyperRectangle::FromFlatBounds({0, 10, 0, 10}).value();
  auto small = HyperRectangle::FromFlatBounds({2, 3, 4, 5}).value();
  auto off = HyperRectangle::FromFlatBounds({20, 30, 0, 10}).value();
  EXPECT_TRUE(big.ContainsBox(small));
  EXPECT_FALSE(small.ContainsBox(big));
  EXPECT_TRUE(big.Intersects(small));
  EXPECT_FALSE(big.Intersects(off));
}

TEST(HyperRectangleTest, PartialDimensionOverlapDoesNotIntersect) {
  // Overlaps in x but disjoint in y -> no intersection overall.
  auto a = HyperRectangle::FromFlatBounds({0, 10, 0, 1}).value();
  auto b = HyperRectangle::FromFlatBounds({5, 15, 5, 6}).value();
  EXPECT_FALSE(a.Intersects(b));
}

TEST(HyperRectangleTest, IntersectionAndHull) {
  auto a = HyperRectangle::FromFlatBounds({0, 10, 0, 10}).value();
  auto b = HyperRectangle::FromFlatBounds({5, 15, -5, 5}).value();
  HyperRectangle inter = a.Intersection(b);
  EXPECT_DOUBLE_EQ(inter.dim(0).lo, 5.0);
  EXPECT_DOUBLE_EQ(inter.dim(0).hi, 10.0);
  EXPECT_DOUBLE_EQ(inter.dim(1).lo, 0.0);
  EXPECT_DOUBLE_EQ(inter.dim(1).hi, 5.0);
  auto hull = a.Hull(b);
  ASSERT_TRUE(hull.ok());
  EXPECT_DOUBLE_EQ(hull->dim(0).hi, 15.0);
  EXPECT_DOUBLE_EQ(hull->dim(1).lo, -5.0);
}

TEST(HyperRectangleTest, HullDimMismatch) {
  auto a = HyperRectangle::FromFlatBounds({0, 1}).value();
  auto b = HyperRectangle::FromFlatBounds({0, 1, 0, 1}).value();
  EXPECT_FALSE(a.Hull(b).ok());
}

TEST(HyperRectangleTest, Volume) {
  auto box = HyperRectangle::FromFlatBounds({0, 2, 0, 3}).value();
  EXPECT_DOUBLE_EQ(box.Volume(), 6.0);
  auto flat = HyperRectangle::FromFlatBounds({0, 2, 1, 1}).value();
  EXPECT_DOUBLE_EQ(flat.Volume(), 0.0);
  EXPECT_DOUBLE_EQ(HyperRectangle().Volume(), 0.0);
}

TEST(HyperRectangleTest, ValidChecksEveryDim) {
  std::vector<Interval> ivs{Interval(0, 1), Interval(5, 2)};
  HyperRectangle box(std::move(ivs));
  EXPECT_FALSE(box.valid());
  EXPECT_FALSE(HyperRectangle().valid());  // Empty box invalid.
}

TEST(HyperRectangleTest, WireBytes) {
  auto box = HyperRectangle::FromFlatBounds({0, 1, 0, 1, 0, 1}).value();
  EXPECT_EQ(box.WireBytes(), 3u * 2 * sizeof(double));
}

TEST(HyperRectangleTest, ToStringFormat) {
  auto box = HyperRectangle::FromFlatBounds({0, 1}).value();
  EXPECT_EQ(box.ToString(), "{[0, 1]}");
}

}  // namespace
}  // namespace qens::query
