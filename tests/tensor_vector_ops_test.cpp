// Tests for the free-function vector operations.

#include "qens/tensor/vector_ops.h"

#include <gtest/gtest.h>

#include <cmath>

namespace qens::vec {
namespace {

TEST(VectorOpsTest, Dot) {
  EXPECT_DOUBLE_EQ(Dot({1, 2, 3}, {4, 5, 6}), 32.0);
  EXPECT_DOUBLE_EQ(Dot({}, {}), 0.0);
}

TEST(VectorOpsTest, Norm2) {
  EXPECT_DOUBLE_EQ(Norm2({3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(Norm2({0, 0, 0}), 0.0);
}

TEST(VectorOpsTest, Distances) {
  EXPECT_DOUBLE_EQ(SquaredDistance({0, 0}, {3, 4}), 25.0);
  EXPECT_DOUBLE_EQ(Distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(Distance({1, 1}, {1, 1}), 0.0);
}

TEST(VectorOpsTest, AddSubScale) {
  EXPECT_EQ(Add({1, 2}, {3, 4}), (std::vector<double>{4, 6}));
  EXPECT_EQ(Sub({1, 2}, {3, 4}), (std::vector<double>{-2, -2}));
  EXPECT_EQ(Scale({1, -2}, 3.0), (std::vector<double>{3, -6}));
}

TEST(VectorOpsTest, AxpyInPlace) {
  std::vector<double> a{1, 2};
  AxpyInPlace(&a, 2.0, {10, 20});
  EXPECT_EQ(a, (std::vector<double>{21, 42}));
}

TEST(VectorOpsTest, SumMean) {
  EXPECT_DOUBLE_EQ(Sum({1, 2, 3}), 6.0);
  EXPECT_DOUBLE_EQ(Mean({1, 2, 3}), 2.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
}

TEST(VectorOpsTest, MinMax) {
  EXPECT_DOUBLE_EQ(Min({3, 1, 2}).value(), 1.0);
  EXPECT_DOUBLE_EQ(Max({3, 1, 2}).value(), 3.0);
  EXPECT_FALSE(Min({}).ok());
  EXPECT_FALSE(Max({}).ok());
}

TEST(VectorOpsTest, ArgMinArgMax) {
  EXPECT_EQ(ArgMin({3, 1, 2}).value(), 1u);
  EXPECT_EQ(ArgMax({3, 1, 2}).value(), 0u);
  // Ties break low.
  EXPECT_EQ(ArgMin({1, 1, 1}).value(), 0u);
  EXPECT_FALSE(ArgMin({}).ok());
}

TEST(VectorOpsTest, NormalizeWeightsBasic) {
  auto w = NormalizeWeights({1, 3});
  ASSERT_TRUE(w.ok());
  EXPECT_DOUBLE_EQ((*w)[0], 0.25);
  EXPECT_DOUBLE_EQ((*w)[1], 0.75);
}

TEST(VectorOpsTest, NormalizeWeightsSumsToOne) {
  auto w = NormalizeWeights({0.2, 0.7, 1.9, 0.0});
  ASSERT_TRUE(w.ok());
  double total = 0.0;
  for (double v : *w) total += v;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(VectorOpsTest, NormalizeWeightsErrors) {
  EXPECT_FALSE(NormalizeWeights({}).ok());
  EXPECT_FALSE(NormalizeWeights({1.0, -0.5}).ok());
  EXPECT_FALSE(NormalizeWeights({0.0, 0.0}).ok());
}

}  // namespace
}  // namespace qens::vec
