// Tests for the cluster-digest selectivity estimator: exact cases under
// uniform density, degenerate boxes, and accuracy against actual counts
// on uniformly generated data.

#include "qens/query/selectivity_estimator.h"

#include <gtest/gtest.h>

#include "qens/clustering/kmeans.h"
#include "qens/common/rng.h"

namespace qens::query {
namespace {

clustering::ClusterSummary MakeCluster(double lo, double hi, size_t size) {
  clustering::ClusterSummary c;
  c.centroid = {(lo + hi) / 2};
  c.bounds = HyperRectangle::FromFlatBounds({lo, hi}).value();
  c.size = size;
  return c;
}

RangeQuery MakeQuery(std::vector<double> flat) {
  RangeQuery q;
  q.region = HyperRectangle::FromFlatBounds(flat).value();
  return q;
}

TEST(SelectivityTest, FullCoverage) {
  const auto cluster = MakeCluster(0, 10, 100);
  EXPECT_DOUBLE_EQ(
      EstimateClusterRows(cluster, MakeQuery({-5, 15})).value(), 100.0);
}

TEST(SelectivityTest, HalfCoverage) {
  const auto cluster = MakeCluster(0, 10, 100);
  EXPECT_DOUBLE_EQ(EstimateClusterRows(cluster, MakeQuery({0, 5})).value(),
                   50.0);
}

TEST(SelectivityTest, Disjoint) {
  const auto cluster = MakeCluster(0, 10, 100);
  EXPECT_DOUBLE_EQ(EstimateClusterRows(cluster, MakeQuery({20, 30})).value(),
                   0.0);
}

TEST(SelectivityTest, MultiDimensionalProduct) {
  clustering::ClusterSummary c;
  c.centroid = {5, 5};
  c.bounds = HyperRectangle::FromFlatBounds({0, 10, 0, 10}).value();
  c.size = 100;
  // Query covers half of each dimension: expect a quarter of the rows.
  EXPECT_DOUBLE_EQ(
      EstimateClusterRows(c, MakeQuery({0, 5, 5, 10})).value(), 25.0);
}

TEST(SelectivityTest, EmptyClusterIsZero) {
  auto cluster = MakeCluster(0, 10, 0);
  EXPECT_DOUBLE_EQ(EstimateClusterRows(cluster, MakeQuery({0, 10})).value(),
                   0.0);
}

TEST(SelectivityTest, DegenerateDimensionCoveredCountsFully) {
  // All rows at one coordinate; the query covers it.
  const auto cluster = MakeCluster(5, 5, 40);
  EXPECT_DOUBLE_EQ(EstimateClusterRows(cluster, MakeQuery({0, 10})).value(),
                   40.0);
  // Query misses the point: no intersection, zero.
  EXPECT_DOUBLE_EQ(EstimateClusterRows(cluster, MakeQuery({6, 10})).value(),
                   0.0);
}

TEST(SelectivityTest, DimMismatchFails) {
  const auto cluster = MakeCluster(0, 10, 10);
  EXPECT_FALSE(EstimateClusterRows(cluster, MakeQuery({0, 1, 0, 1})).ok());
}

TEST(SelectivityTest, NodeAggregation) {
  std::vector<clustering::ClusterSummary> clusters = {
      MakeCluster(0, 10, 100),   // Fully inside.
      MakeCluster(10, 20, 100),  // Half inside.
      MakeCluster(40, 50, 100),  // Outside.
  };
  auto estimate = EstimateNodeSelectivity(clusters, MakeQuery({0, 15}));
  ASSERT_TRUE(estimate.ok());
  EXPECT_DOUBLE_EQ(estimate->estimated_rows, 150.0);
  EXPECT_EQ(estimate->total_rows, 300u);
  EXPECT_DOUBLE_EQ(estimate->Fraction(), 0.5);
  ASSERT_EQ(estimate->per_cluster.size(), 3u);
  EXPECT_DOUBLE_EQ(estimate->per_cluster[2], 0.0);
}

TEST(SelectivityTest, EstimateTracksActualOnUniformData) {
  // Uniform 1-D data, k-means digests: the estimate should come close to
  // the true matching-row count.
  Rng rng(3);
  Matrix data(4000, 1);
  for (double& v : data.data()) v = rng.Uniform(0, 100);

  clustering::KMeansOptions km;
  km.k = 8;
  auto summaries = clustering::KMeans(km).FitSummaries(data);
  ASSERT_TRUE(summaries.ok());

  for (double lo : {5.0, 25.0, 60.0}) {
    RangeQuery q = MakeQuery({lo, lo + 20.0});
    auto estimate = EstimateNodeSelectivity(*summaries, q);
    ASSERT_TRUE(estimate.ok());
    auto actual_rows = q.MatchingRows(data);
    ASSERT_TRUE(actual_rows.ok());
    const double actual = static_cast<double>(actual_rows->size());
    // Within 15% relative error on uniform data.
    EXPECT_NEAR(estimate->estimated_rows, actual, 0.15 * actual)
        << "query [" << lo << ", " << lo + 20 << "]";
  }
}

TEST(SelectivityTest, EstimateBoundedByPopulation) {
  Rng rng(9);
  for (int trial = 0; trial < 100; ++trial) {
    const double lo = rng.Uniform(-50, 50);
    const auto cluster =
        MakeCluster(lo, lo + rng.Uniform(0.1, 30),
                    static_cast<size_t>(rng.UniformInt(uint64_t{1000})) + 1);
    const double qlo = rng.Uniform(-60, 60);
    auto rows = EstimateClusterRows(
        cluster, MakeQuery({qlo, qlo + rng.Uniform(0.1, 60)}));
    ASSERT_TRUE(rows.ok());
    EXPECT_GE(*rows, 0.0);
    EXPECT_LE(*rows, static_cast<double>(cluster.size));
  }
}

}  // namespace
}  // namespace qens::query
