// Tests for the Keras-style training loop: convergence, validation split,
// early stopping, incremental (per-cluster) Fit calls, option validation.

#include "qens/ml/trainer.h"

#include <gtest/gtest.h>

#include "qens/common/rng.h"
#include "qens/ml/model_factory.h"

namespace qens::ml {
namespace {

/// y = 2x + 3 with light noise.
void MakeLinearData(size_t n, uint64_t seed, Matrix* x, Matrix* y) {
  Rng rng(seed);
  *x = Matrix(n, 1);
  *y = Matrix(n, 1);
  for (size_t i = 0; i < n; ++i) {
    const double xi = rng.Uniform(-2.0, 2.0);
    (*x)(i, 0) = xi;
    (*y)(i, 0) = 2.0 * xi + 3.0 + rng.Gaussian(0, 0.05);
  }
}

std::unique_ptr<Trainer> MakeSgdTrainer(TrainOptions options) {
  return std::make_unique<Trainer>(std::make_unique<SgdOptimizer>(0.05),
                                   options);
}

TEST(TrainerTest, FitLearnsLinearRelation) {
  Matrix x, y;
  MakeLinearData(200, 1, &x, &y);
  SequentialModel model;
  ASSERT_TRUE(model.AddLayer(1, 1, Activation::kIdentity).ok());
  TrainOptions options;
  options.epochs = 60;
  options.validation_split = 0.2;
  auto trainer = MakeSgdTrainer(options);
  auto report = trainer->Fit(&model, x, y);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->epochs_run, 60u);
  EXPECT_NEAR(model.layer(0).weights()(0, 0), 2.0, 0.1);
  EXPECT_NEAR(model.layer(0).bias()[0], 3.0, 0.1);
  EXPECT_LT(report->final_train_loss(), 0.05);
}

TEST(TrainerTest, LossDecreasesOverEpochs) {
  Matrix x, y;
  MakeLinearData(100, 2, &x, &y);
  SequentialModel model;
  ASSERT_TRUE(model.AddLayer(1, 1, Activation::kIdentity).ok());
  TrainOptions options;
  options.epochs = 30;
  auto trainer = MakeSgdTrainer(options);
  auto report = trainer->Fit(&model, x, y);
  ASSERT_TRUE(report.ok());
  EXPECT_LT(report->train_loss.back(), report->train_loss.front());
}

TEST(TrainerTest, ValidationLossTracked) {
  Matrix x, y;
  MakeLinearData(100, 3, &x, &y);
  SequentialModel model;
  ASSERT_TRUE(model.AddLayer(1, 1, Activation::kIdentity).ok());
  TrainOptions options;
  options.epochs = 10;
  options.validation_split = 0.25;
  auto trainer = MakeSgdTrainer(options);
  auto report = trainer->Fit(&model, x, y);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->val_loss.size(), 10u);
}

TEST(TrainerTest, ZeroValidationSplitNoValLoss) {
  Matrix x, y;
  MakeLinearData(50, 4, &x, &y);
  SequentialModel model;
  ASSERT_TRUE(model.AddLayer(1, 1, Activation::kIdentity).ok());
  TrainOptions options;
  options.epochs = 5;
  options.validation_split = 0.0;
  auto trainer = MakeSgdTrainer(options);
  auto report = trainer->Fit(&model, x, y);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->val_loss.empty());
}

TEST(TrainerTest, EarlyStoppingTriggersOnPlateau) {
  Matrix x, y;
  MakeLinearData(200, 5, &x, &y);
  SequentialModel model;
  ASSERT_TRUE(model.AddLayer(1, 1, Activation::kIdentity).ok());
  TrainOptions options;
  options.epochs = 500;
  options.validation_split = 0.2;
  options.early_stopping_patience = 5;
  options.min_delta = 1e-6;
  auto trainer = MakeSgdTrainer(options);
  auto report = trainer->Fit(&model, x, y);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->early_stopped);
  EXPECT_LT(report->epochs_run, 500u);
}

TEST(TrainerTest, IncrementalFitCarriesWeights) {
  // The paper's per-cluster incremental training: two Fit calls on the same
  // model must continue from the first call's weights.
  Matrix x1, y1, x2, y2;
  MakeLinearData(100, 6, &x1, &y1);
  MakeLinearData(100, 7, &x2, &y2);
  SequentialModel model;
  ASSERT_TRUE(model.AddLayer(1, 1, Activation::kIdentity).ok());
  TrainOptions options;
  options.epochs = 40;
  options.validation_split = 0.0;
  auto trainer = MakeSgdTrainer(options);
  ASSERT_TRUE(trainer->Fit(&model, x1, y1).ok());
  const double w_mid = model.layer(0).weights()(0, 0);
  EXPECT_NEAR(w_mid, 2.0, 0.2);  // Already learned from stage 1.
  auto report2 = trainer->Fit(&model, x2, y2);
  ASSERT_TRUE(report2.ok());
  // Stage 2 starts near the optimum, so its first-epoch loss is small.
  EXPECT_LT(report2->train_loss.front(), 0.5);
}

TEST(TrainerTest, SamplesSeenAccounting) {
  Matrix x, y;
  MakeLinearData(100, 8, &x, &y);
  SequentialModel model;
  ASSERT_TRUE(model.AddLayer(1, 1, Activation::kIdentity).ok());
  TrainOptions options;
  options.epochs = 3;
  options.validation_split = 0.2;
  auto trainer = MakeSgdTrainer(options);
  auto report = trainer->Fit(&model, x, y);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->samples_seen, 3u * 80u);  // 80 train rows x 3 epochs.
}

TEST(TrainerTest, DeterministicGivenSeed) {
  Matrix x, y;
  MakeLinearData(100, 9, &x, &y);
  TrainOptions options;
  options.epochs = 10;
  options.seed = 77;

  SequentialModel m1, m2;
  ASSERT_TRUE(m1.AddLayer(1, 1, Activation::kIdentity).ok());
  ASSERT_TRUE(m2.AddLayer(1, 1, Activation::kIdentity).ok());
  ASSERT_TRUE(MakeSgdTrainer(options)->Fit(&m1, x, y).ok());
  ASSERT_TRUE(MakeSgdTrainer(options)->Fit(&m2, x, y).ok());
  EXPECT_EQ(m1.GetParameters(), m2.GetParameters());
}

TEST(TrainerTest, OptionValidation) {
  Matrix x, y;
  MakeLinearData(10, 10, &x, &y);
  SequentialModel model;
  ASSERT_TRUE(model.AddLayer(1, 1, Activation::kIdentity).ok());

  TrainOptions bad;
  bad.epochs = 0;
  EXPECT_FALSE(MakeSgdTrainer(bad)->Fit(&model, x, y).ok());
  bad = TrainOptions();
  bad.batch_size = 0;
  EXPECT_FALSE(MakeSgdTrainer(bad)->Fit(&model, x, y).ok());
  bad = TrainOptions();
  bad.validation_split = 1.0;
  EXPECT_FALSE(MakeSgdTrainer(bad)->Fit(&model, x, y).ok());
}

TEST(TrainerTest, ShapeErrors) {
  SequentialModel model;
  ASSERT_TRUE(model.AddLayer(2, 1, Activation::kIdentity).ok());
  TrainOptions options;
  auto trainer = MakeSgdTrainer(options);
  Matrix x(5, 1), y(5, 1);  // Model expects 2 features.
  EXPECT_FALSE(trainer->Fit(&model, x, y).ok());
  Matrix x2(5, 2), y2(4, 1);  // Row mismatch.
  EXPECT_FALSE(trainer->Fit(&model, x2, y2).ok());
  Matrix empty_x(0, 2), empty_y(0, 1);
  EXPECT_FALSE(trainer->Fit(&model, empty_x, empty_y).ok());
}

TEST(TrainerTest, TrainBatchReturnsPreUpdateLoss) {
  SequentialModel model;
  ASSERT_TRUE(model.AddLayer(1, 1, Activation::kIdentity).ok());
  model.layer(0).weights()(0, 0) = 0.0;
  Matrix x{{1.0}};
  Matrix y{{2.0}};
  TrainOptions options;
  auto trainer = MakeSgdTrainer(options);
  auto loss = trainer->TrainBatch(&model, x, y);
  ASSERT_TRUE(loss.ok());
  EXPECT_DOUBLE_EQ(*loss, 4.0);  // (0 - 2)^2 before the step.
  EXPECT_NE(model.layer(0).weights()(0, 0), 0.0);  // Step applied.
}

TEST(TrainerTest, TinyDatasetStillTrains) {
  // 2 rows with validation split: split clamps to keep >=1 training row.
  Matrix x{{0.0}, {1.0}};
  Matrix y{{1.0}, {3.0}};
  SequentialModel model;
  ASSERT_TRUE(model.AddLayer(1, 1, Activation::kIdentity).ok());
  TrainOptions options;
  options.epochs = 5;
  options.validation_split = 0.5;
  auto trainer = MakeSgdTrainer(options);
  EXPECT_TRUE(trainer->Fit(&model, x, y).ok());
}

}  // namespace
}  // namespace qens::ml
