// Pins the determinism contract of the parallel Lloyd steps
// (KMeansOptions::num_threads): a dataset that fits one chunk is
// bit-identical to the sequential path for any thread count, multi-chunk
// fits are bit-identical across every thread count >= 2, and the parallel
// objective stays numerically equivalent to the sequential one.

#include "qens/clustering/kmeans.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "qens/common/rng.h"

namespace qens::clustering {
namespace {

/// m rows in d dims around `centers` well-separated Gaussian blobs.
Matrix MakeBlobs(size_t m, size_t d, size_t centers, uint64_t seed) {
  Rng rng(seed);
  Matrix data(m, d);
  for (size_t r = 0; r < m; ++r) {
    const double base = 10.0 * static_cast<double>(r % centers);
    for (size_t c = 0; c < d; ++c) {
      data(r, c) = base + rng.Gaussian(0, 1.0);
    }
  }
  return data;
}

void ExpectBitIdentical(const KMeansResult& a, const KMeansResult& b) {
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.converged, b.converged);
  EXPECT_EQ(a.empty_cluster_repairs, b.empty_cluster_repairs);
  EXPECT_EQ(a.assignment, b.assignment);
  ASSERT_EQ(a.centroids.rows(), b.centroids.rows());
  ASSERT_EQ(a.centroids.cols(), b.centroids.cols());
  // Element-wise == on doubles: this is the bit-identity claim.
  EXPECT_EQ(a.centroids.data(), b.centroids.data());
  EXPECT_EQ(a.inertia, b.inertia);
}

// A dataset smaller than one chunk reproduces the sequential accumulation
// order exactly, so sequential and parallel fits match bit for bit at any
// worker count.
TEST(KMeansParallelTest, SingleChunkMatchesSequentialBitwise) {
  const Matrix data = MakeBlobs(500, 3, 4, 11);  // 500 < 2048: one chunk.
  KMeansOptions options;
  options.k = 4;
  options.seed = 5;
  const KMeans sequential(options);
  auto seq = sequential.Fit(data);
  ASSERT_TRUE(seq.ok());
  for (size_t threads : {2u, 3u, 8u}) {
    options.num_threads = threads;
    auto par = KMeans(options).Fit(data);
    ASSERT_TRUE(par.ok()) << "threads=" << threads;
    ExpectBitIdentical(*seq, *par);
  }
}

// Multi-chunk fits fix the reduction order on the chunk grid, so every
// thread count >= 2 produces the same bits (the grid depends on the row
// count, never the worker count).
TEST(KMeansParallelTest, MultiChunkIdenticalAcrossThreadCounts) {
  const Matrix data = MakeBlobs(5000, 2, 5, 13);  // 3 chunks of <= 2048.
  KMeansOptions options;
  options.k = 5;
  options.seed = 7;
  options.num_threads = 2;
  auto base = KMeans(options).Fit(data);
  ASSERT_TRUE(base.ok());
  for (size_t threads : {3u, 4u, 16u}) {
    options.num_threads = threads;
    auto other = KMeans(options).Fit(data);
    ASSERT_TRUE(other.ok()) << "threads=" << threads;
    ExpectBitIdentical(*base, *other);
  }
}

// The chunked reduction may associate floating-point sums differently from
// the sequential loop, but the clustering itself must agree: identical
// assignments on well-separated data and an objective equal to within
// strict relative tolerance.
TEST(KMeansParallelTest, MultiChunkAssignmentMatchesSequential) {
  const Matrix data = MakeBlobs(5000, 2, 5, 17);
  KMeansOptions options;
  options.k = 5;
  options.seed = 3;
  auto seq = KMeans(options).Fit(data);
  ASSERT_TRUE(seq.ok());
  options.num_threads = 4;
  auto par = KMeans(options).Fit(data);
  ASSERT_TRUE(par.ok());
  EXPECT_EQ(seq->assignment, par->assignment);
  EXPECT_EQ(seq->iterations, par->iterations);
  EXPECT_NEAR(par->inertia, seq->inertia,
              1e-9 * std::abs(seq->inertia) + 1e-12);
}

// One Lloyd iteration from shared k-means++ seeds: the assignment step has
// no cross-row reduction at all, so parallel and sequential assignments are
// equal by construction, independent of chunking.
TEST(KMeansParallelTest, SingleIterationAssignmentIdentity) {
  const Matrix data = MakeBlobs(4500, 3, 4, 19);
  KMeansOptions options;
  options.k = 4;
  options.seed = 23;
  options.max_iterations = 1;
  auto seq = KMeans(options).Fit(data);
  ASSERT_TRUE(seq.ok());
  options.num_threads = 3;
  auto par = KMeans(options).Fit(data);
  ASSERT_TRUE(par.ok());
  EXPECT_EQ(seq->assignment, par->assignment);
}

}  // namespace
}  // namespace qens::clustering
