// Tests for the fair stochastic ([12]-style) selector: draw validity,
// fairness convergence, effectiveness weighting, Jain index.

#include "qens/selection/stochastic.h"

#include <gtest/gtest.h>

#include <set>

namespace qens::selection {
namespace {

std::vector<NodeRank> UniformRanks(size_t n, double value = 1.0) {
  std::vector<NodeRank> ranks(n);
  for (size_t i = 0; i < n; ++i) {
    ranks[i].node_id = i;
    ranks[i].ranking = value;
  }
  return ranks;
}

TEST(StochasticTest, DrawsDistinctValidIds) {
  StochasticOptions options;
  options.draw_l = 3;
  StochasticSelector selector(8, options);
  for (int round = 0; round < 50; ++round) {
    auto sel = selector.Select(UniformRanks(8));
    ASSERT_TRUE(sel.ok());
    ASSERT_EQ(sel->size(), 3u);
    std::set<size_t> distinct(sel->begin(), sel->end());
    EXPECT_EQ(distinct.size(), 3u);
    for (size_t id : *sel) EXPECT_LT(id, 8u);
  }
}

TEST(StochasticTest, DrawLClampedToPopulation) {
  StochasticOptions options;
  options.draw_l = 10;
  StochasticSelector selector(4, options);
  auto sel = selector.Select({});
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(*sel, (std::vector<size_t>{0, 1, 2, 3}));
}

TEST(StochasticTest, ParticipationCountsTrackSelections) {
  StochasticOptions options;
  options.draw_l = 2;
  StochasticSelector selector(5, options);
  size_t total = 0;
  for (int round = 0; round < 20; ++round) {
    ASSERT_TRUE(selector.Select({}).ok());
    total += 2;
  }
  size_t counted = 0;
  for (size_t c : selector.participation_counts()) counted += c;
  EXPECT_EQ(counted, total);
}

TEST(StochasticTest, FairnessEqualizesParticipationOverTime) {
  // Pure fairness (alpha = 0): long-run counts become near-uniform even
  // though the ranks are wildly uneven.
  StochasticOptions options;
  options.alpha = 0.0;
  options.draw_l = 2;
  options.seed = 5;
  StochasticSelector selector(6, options);
  std::vector<NodeRank> skewed = UniformRanks(6, 0.0);
  skewed[0].ranking = 100.0;  // Would dominate an effectiveness-only draw.
  for (int round = 0; round < 600; ++round) {
    ASSERT_TRUE(selector.Select(skewed).ok());
  }
  auto fairness = JainFairnessIndex(selector.participation_counts());
  ASSERT_TRUE(fairness.ok());
  EXPECT_GT(*fairness, 0.98);
}

TEST(StochasticTest, EffectivenessBiasesTowardHighRanks) {
  // Pure effectiveness (alpha = 1): the high-rank node is drawn far more.
  StochasticOptions options;
  options.alpha = 1.0;
  options.draw_l = 1;
  options.seed = 6;
  StochasticSelector selector(4, options);
  std::vector<NodeRank> ranks = UniformRanks(4, 0.1);
  ranks[2].ranking = 5.0;
  for (int round = 0; round < 400; ++round) {
    ASSERT_TRUE(selector.Select(ranks).ok());
  }
  const auto& counts = selector.participation_counts();
  EXPECT_GT(counts[2], counts[0] * 3);
  EXPECT_GT(counts[2], counts[1] * 3);
  EXPECT_GT(counts[2], counts[3] * 3);
}

TEST(StochasticTest, EmptyRanksMeansPureFairnessDraw) {
  StochasticOptions options;
  options.draw_l = 1;
  StochasticSelector selector(3, options);
  auto sel = selector.Select({});
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel->size(), 1u);
}

TEST(StochasticTest, ResetClearsHistory) {
  StochasticOptions options;
  StochasticSelector selector(4, options);
  ASSERT_TRUE(selector.Select({}).ok());
  selector.Reset();
  for (size_t c : selector.participation_counts()) EXPECT_EQ(c, 0u);
}

TEST(StochasticTest, DeterministicGivenSeed) {
  StochasticOptions options;
  options.seed = 99;
  options.draw_l = 2;
  StochasticSelector a(6, options), b(6, options);
  for (int round = 0; round < 10; ++round) {
    auto sa = a.Select(UniformRanks(6));
    auto sb = b.Select(UniformRanks(6));
    ASSERT_TRUE(sa.ok());
    ASSERT_TRUE(sb.ok());
    EXPECT_EQ(*sa, *sb);
  }
}

TEST(StochasticTest, Errors) {
  StochasticOptions bad_alpha;
  bad_alpha.alpha = 1.5;
  StochasticSelector s1(3, bad_alpha);
  EXPECT_FALSE(s1.Select({}).ok());

  StochasticOptions zero_draw;
  zero_draw.draw_l = 0;
  StochasticSelector s2(3, zero_draw);
  EXPECT_FALSE(s2.Select({}).ok());

  StochasticOptions options;
  StochasticSelector s3(3, options);
  // Rank referencing an unknown node.
  std::vector<NodeRank> bad = UniformRanks(3);
  bad[0].node_id = 9;
  EXPECT_FALSE(s3.Select(bad).ok());
  // Ranks not covering every node.
  std::vector<NodeRank> partial = UniformRanks(2);
  EXPECT_FALSE(s3.Select(partial).ok());
}

TEST(JainIndexTest, KnownValues) {
  EXPECT_DOUBLE_EQ(JainFairnessIndex({5, 5, 5, 5}).value(), 1.0);
  EXPECT_DOUBLE_EQ(JainFairnessIndex({4, 0, 0, 0}).value(), 0.25);
  EXPECT_DOUBLE_EQ(JainFairnessIndex({0, 0}).value(), 1.0);
  EXPECT_FALSE(JainFairnessIndex({}).ok());
}

}  // namespace
}  // namespace qens::selection
