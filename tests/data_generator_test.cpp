// Tests for the synthetic Beijing air-quality generator: determinism,
// schema, and — the load-bearing property — the homogeneous vs
// heterogeneous cross-station structure the paper's evaluation depends on.

#include "qens/data/air_quality_generator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "qens/tensor/stats.h"

namespace qens::data {
namespace {

AirQualityOptions SmallOptions(Heterogeneity h) {
  AirQualityOptions options;
  options.num_stations = 6;
  options.samples_per_station = 500;
  options.heterogeneity = h;
  options.seed = 11;
  return options;
}

TEST(AirQualityGeneratorTest, SchemaAndShape) {
  AirQualityGenerator gen(SmallOptions(Heterogeneity::kHeterogeneous));
  auto d = gen.GenerateStation(0);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->NumSamples(), 500u);
  EXPECT_EQ(d->NumFeatures(), 4u);
  EXPECT_EQ(d->feature_names(),
            (std::vector<std::string>{"TEMP", "PRES", "DEWP", "WSPM"}));
  EXPECT_EQ(d->target_name(), "PM2.5");
}

TEST(AirQualityGeneratorTest, SingleFeatureMode) {
  AirQualityOptions options = SmallOptions(Heterogeneity::kHomogeneous);
  options.single_feature = true;
  AirQualityGenerator gen(options);
  auto d = gen.GenerateStation(0);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->NumFeatures(), 1u);
  EXPECT_EQ(d->feature_names()[0], "TEMP");
}

TEST(AirQualityGeneratorTest, GenerateAllCount) {
  AirQualityGenerator gen(SmallOptions(Heterogeneity::kHomogeneous));
  auto all = gen.GenerateAll();
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 6u);
}

TEST(AirQualityGeneratorTest, Deterministic) {
  AirQualityGenerator g1(SmallOptions(Heterogeneity::kHeterogeneous));
  AirQualityGenerator g2(SmallOptions(Heterogeneity::kHeterogeneous));
  auto d1 = g1.GenerateStation(3);
  auto d2 = g2.GenerateStation(3);
  ASSERT_TRUE(d1.ok());
  ASSERT_TRUE(d2.ok());
  EXPECT_EQ(d1->features().data(), d2->features().data());
  EXPECT_EQ(d1->targets().data(), d2->targets().data());
}

TEST(AirQualityGeneratorTest, StationsDiffer) {
  AirQualityGenerator gen(SmallOptions(Heterogeneity::kHomogeneous));
  auto d0 = gen.GenerateStation(0);
  auto d1 = gen.GenerateStation(1);
  ASSERT_TRUE(d0.ok());
  ASSERT_TRUE(d1.ok());
  // Even homogeneous stations get independent noise streams.
  EXPECT_NE(d0->features().data(), d1->features().data());
}

TEST(AirQualityGeneratorTest, OutOfRangeStation) {
  AirQualityGenerator gen(SmallOptions(Heterogeneity::kHomogeneous));
  EXPECT_TRUE(gen.GenerateStation(99).status().IsOutOfRange());
}

TEST(AirQualityGeneratorTest, PhysicalRangesSane) {
  AirQualityGenerator gen(SmallOptions(Heterogeneity::kHeterogeneous));
  auto all = gen.GenerateAll();
  ASSERT_TRUE(all.ok());
  for (const auto& d : *all) {
    for (size_t i = 0; i < d.NumSamples(); ++i) {
      EXPECT_GE(d.targets()(i, 0), 0.0);            // PM2.5 clipped at 0.
      EXPECT_GT(d.features()(i, 0), -60.0);         // TEMP plausible.
      EXPECT_LT(d.features()(i, 0), 70.0);
      EXPECT_GT(d.features()(i, 1), 900.0);         // PRES plausible.
      EXPECT_LT(d.features()(i, 1), 1120.0);
      EXPECT_GE(d.features()(i, 3), 0.0);           // Wind non-negative.
    }
  }
}

TEST(AirQualityGeneratorTest, HomogeneousProfilesIdentical) {
  AirQualityGenerator gen(SmallOptions(Heterogeneity::kHomogeneous));
  for (const auto& p : gen.profiles()) {
    EXPECT_DOUBLE_EQ(p.temp_offset, 0.0);
    EXPECT_DOUBLE_EQ(p.pm_slope, 2.5);
    EXPECT_DOUBLE_EQ(p.pm_base, 60.0);
  }
}

TEST(AirQualityGeneratorTest, HeterogeneousSlopesFlipSign) {
  // The paper's Section II motivation: regression positive at some sites,
  // negative at others. Even stations get +, odd stations get -.
  AirQualityGenerator gen(SmallOptions(Heterogeneity::kHeterogeneous));
  bool saw_positive = false, saw_negative = false;
  for (const auto& p : gen.profiles()) {
    saw_positive |= p.pm_slope > 0;
    saw_negative |= p.pm_slope < 0;
  }
  EXPECT_TRUE(saw_positive);
  EXPECT_TRUE(saw_negative);
}

TEST(AirQualityGeneratorTest, EmpiricalSlopeMatchesProfileSign) {
  // Fit PM2.5 ~ TEMP per station and check the empirical slope sign agrees
  // with the generating profile (the Fig. 1/2 scatter structure).
  AirQualityOptions options = SmallOptions(Heterogeneity::kHeterogeneous);
  options.samples_per_station = 1500;
  AirQualityGenerator gen(options);
  auto all = gen.GenerateAll();
  ASSERT_TRUE(all.ok());
  for (size_t s = 0; s < all->size(); ++s) {
    const auto& d = (*all)[s];
    auto fit = stats::FitLine(d.features().Col(0), d.TargetVector());
    ASSERT_TRUE(fit.ok());
    const double expected = gen.profiles()[s].pm_slope;
    EXPECT_GT(fit->slope * expected, 0.0)
        << "station " << s << " empirical slope " << fit->slope
        << " vs profile slope " << expected;
  }
}

TEST(AirQualityGeneratorTest, HomogeneousStationsShareDataSpace) {
  AirQualityGenerator gen(SmallOptions(Heterogeneity::kHomogeneous));
  auto all = gen.GenerateAll();
  ASSERT_TRUE(all.ok());
  // TEMP ranges across homogeneous stations overlap heavily.
  double max_lo = -1e300, min_hi = 1e300;
  for (const auto& d : *all) {
    auto space = d.FeatureSpace().value();
    max_lo = std::max(max_lo, space.dim(0).lo);
    min_hi = std::min(min_hi, space.dim(0).hi);
  }
  EXPECT_LT(max_lo, min_hi);  // Non-empty common TEMP range.
  EXPECT_GT(min_hi - max_lo, 10.0);  // And a wide one.
}

TEST(AirQualityGeneratorTest, HeterogeneousRangesShift) {
  AirQualityGenerator gen(SmallOptions(Heterogeneity::kHeterogeneous));
  auto all = gen.GenerateAll();
  ASSERT_TRUE(all.ok());
  // Station TEMP midpoints must spread (region offsets in [-8, 8]).
  double min_mid = 1e300, max_mid = -1e300;
  for (const auto& d : *all) {
    auto space = d.FeatureSpace().value();
    const double mid = 0.5 * (space.dim(0).lo + space.dim(0).hi);
    min_mid = std::min(min_mid, mid);
    max_mid = std::max(max_mid, mid);
  }
  EXPECT_GT(max_mid - min_mid, 4.0);
}

TEST(AirQualityGeneratorTest, StationNamesUnique) {
  AirQualityOptions options = SmallOptions(Heterogeneity::kHomogeneous);
  options.num_stations = 15;  // More than the 12 base names: must cycle.
  AirQualityGenerator gen(options);
  std::set<std::string> names;
  for (const auto& p : gen.profiles()) EXPECT_TRUE(names.insert(p.name).second);
}

TEST(AirQualityGeneratorTest, ZeroSamplesRejected) {
  AirQualityOptions options = SmallOptions(Heterogeneity::kHomogeneous);
  options.samples_per_station = 0;
  AirQualityGenerator gen(options);
  EXPECT_FALSE(gen.GenerateStation(0).ok());
}

}  // namespace
}  // namespace qens::data
