// Tests for the simulated edge substrate: cost model, network accounting,
// edge nodes, and the environment builder.

#include <gtest/gtest.h>

#include "qens/common/rng.h"
#include "qens/sim/cost_model.h"
#include "qens/sim/edge_environment.h"
#include "qens/sim/edge_node.h"
#include "qens/sim/network.h"

namespace qens::sim {
namespace {

data::Dataset MakeData(size_t n, double offset, uint64_t seed) {
  Rng rng(seed);
  Matrix x(n, 1), y(n, 1);
  for (size_t i = 0; i < n; ++i) {
    x(i, 0) = offset + rng.Uniform(0, 10);
    y(i, 0) = 2 * x(i, 0) + rng.Gaussian(0, 0.1);
  }
  return data::Dataset::Create(x, y).value();
}

TEST(CostModelTest, TrainingTimeLinearInWork) {
  CostModel model;
  const double t1 = model.TrainingSeconds(1000, 10, 1.0);
  const double t2 = model.TrainingSeconds(2000, 10, 1.0);
  const double t3 = model.TrainingSeconds(1000, 20, 1.0);
  EXPECT_DOUBLE_EQ(t2, 2 * t1);
  EXPECT_DOUBLE_EQ(t3, 2 * t1);
}

TEST(CostModelTest, FasterNodeTrainsFaster) {
  CostModel model;
  EXPECT_LT(model.TrainingSeconds(1000, 10, 2.0),
            model.TrainingSeconds(1000, 10, 1.0));
}

TEST(CostModelTest, TransferIncludesLatency) {
  CostModelOptions options;
  options.link_latency_s = 0.1;
  options.bandwidth_bytes_per_s = 1000.0;
  CostModel model(options);
  EXPECT_DOUBLE_EQ(model.TransferSeconds(0), 0.1);
  EXPECT_DOUBLE_EQ(model.TransferSeconds(1000), 0.1 + 1.0);
  EXPECT_DOUBLE_EQ(model.RoundTripSeconds(1000, 0), 1.1 + 0.1);
}

TEST(NetworkTest, AccountsMessagesAndBytes) {
  Network net{CostModel({0.01, 1000.0, 1.0})};
  const double t = net.Send(0, 1, 500, "model-down");
  EXPECT_DOUBLE_EQ(t, 0.01 + 0.5);
  net.Send(1, 0, 200, "model-up");
  EXPECT_EQ(net.total_messages(), 2u);
  EXPECT_EQ(net.total_bytes(), 700u);
  EXPECT_NEAR(net.total_transfer_seconds(), 0.01 + 0.5 + 0.01 + 0.2, 1e-12);
  EXPECT_EQ(net.BytesWithTag("model-down"), 500u);
  EXPECT_EQ(net.BytesWithTag("nope"), 0u);
  net.Reset();
  EXPECT_EQ(net.total_messages(), 0u);
  EXPECT_EQ(net.total_bytes(), 0u);
}

TEST(NetworkTest, PerTagCountersTrackManyTags) {
  // BytesWithTag is served from running per-tag counters, not a log scan:
  // totals must be exact for every tag after interleaved sends and expose
  // the same numbers through bytes_by_tag().
  Network net{CostModel({0.0, 1000.0, 1.0})};
  const char* tags[] = {"profile", "model-down", "model-up", "model-up-lost"};
  size_t expected[4] = {0, 0, 0, 0};
  for (size_t i = 0; i < 40; ++i) {
    const size_t which = i % 4;
    const size_t bytes = 10 + 7 * i;
    net.Send(0, 1, bytes, tags[which]);
    expected[which] += bytes;
  }
  size_t total = 0;
  for (size_t t = 0; t < 4; ++t) {
    EXPECT_EQ(net.BytesWithTag(tags[t]), expected[t]) << tags[t];
    ASSERT_TRUE(net.bytes_by_tag().count(tags[t])) << tags[t];
    EXPECT_EQ(net.bytes_by_tag().at(tags[t]), expected[t]) << tags[t];
    total += expected[t];
  }
  EXPECT_EQ(net.total_bytes(), total);
  EXPECT_EQ(net.messages().size(), 40u);  // Log on by default.
  net.Reset();
  EXPECT_TRUE(net.bytes_by_tag().empty());
  EXPECT_EQ(net.BytesWithTag("profile"), 0u);
}

TEST(NetworkTest, CountersExactWithMessageLogOff) {
  NetworkOptions options;
  options.record_messages = false;
  Network net{CostModel({0.01, 1000.0, 1.0}), options};
  const double t = net.Send(0, 1, 500, "model-down");
  EXPECT_DOUBLE_EQ(t, 0.01 + 0.5);
  net.Send(1, 0, 200, "model-up");
  net.Send(0, 2, 300, "model-down");
  // The log stays empty...
  EXPECT_TRUE(net.messages().empty());
  // ...but every counter is still exact.
  EXPECT_EQ(net.total_messages(), 3u);
  EXPECT_EQ(net.total_bytes(), 1000u);
  EXPECT_EQ(net.BytesWithTag("model-down"), 800u);
  EXPECT_EQ(net.BytesWithTag("model-up"), 200u);
  EXPECT_NEAR(net.total_transfer_seconds(), 3 * 0.01 + 1.0, 1e-12);
}

TEST(EdgeNodeTest, QuantizeAndProfile) {
  EdgeNode node(3, "n3", MakeData(200, 0.0, 1), 1.5);
  EXPECT_EQ(node.id(), 3u);
  EXPECT_DOUBLE_EQ(node.capacity(), 1.5);
  EXPECT_FALSE(node.quantized());
  EXPECT_TRUE(node.profile().status().IsFailedPrecondition());

  clustering::KMeansOptions km;
  km.k = 5;
  ASSERT_TRUE(node.Quantize(km).ok());
  EXPECT_TRUE(node.quantized());
  auto profile = node.profile();
  ASSERT_TRUE(profile.ok());
  EXPECT_EQ((*profile)->node_id, 3u);
  EXPECT_EQ((*profile)->clusters.size(), 5u);
  EXPECT_EQ((*profile)->total_samples, 200u);
}

TEST(EdgeNodeTest, ClusterDataPartitionsNode) {
  EdgeNode node(0, "n0", MakeData(150, 0.0, 2), 1.0);
  clustering::KMeansOptions km;
  km.k = 3;
  ASSERT_TRUE(node.Quantize(km).ok());
  size_t total = 0;
  for (size_t c = 0; c < 3; ++c) {
    auto data = node.ClusterData(c);
    if (data.ok()) total += data->NumSamples();
  }
  EXPECT_EQ(total, 150u);
}

TEST(EdgeNodeTest, ClustersDataUnion) {
  EdgeNode node(0, "n0", MakeData(100, 0.0, 3), 1.0);
  clustering::KMeansOptions km;
  km.k = 4;
  ASSERT_TRUE(node.Quantize(km).ok());
  auto all = node.ClustersData({0, 1, 2, 3});
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->NumSamples(), 100u);
  EXPECT_TRUE(node.ClusterData(9).status().IsOutOfRange());
}

TEST(EdgeNodeTest, AccessBeforeQuantizeFails) {
  EdgeNode node(0, "n0", MakeData(10, 0.0, 4), 1.0);
  EXPECT_TRUE(node.ClusterData(0).status().IsFailedPrecondition());
  EXPECT_TRUE(node.ClustersData({0}).status().IsFailedPrecondition());
}

EnvironmentOptions SmallEnvOptions() {
  EnvironmentOptions options;
  options.kmeans.k = 3;
  options.leader_index = 0;
  return options;
}

TEST(EdgeEnvironmentTest, CreateQuantizesAndShipsProfiles) {
  std::vector<data::Dataset> shards = {MakeData(100, 0, 1), MakeData(100, 5, 2),
                                       MakeData(100, 10, 3)};
  auto env = EdgeEnvironment::Create(std::move(shards), SmallEnvOptions());
  ASSERT_TRUE(env.ok());
  EXPECT_EQ(env->num_nodes(), 3u);
  EXPECT_EQ(env->TotalSamples(), 300u);
  // Profile uploads recorded from each non-leader node.
  EXPECT_EQ(env->network().total_messages(), 2u);
  EXPECT_GT(env->network().BytesWithTag("profile"), 0u);
  auto profiles = env->Profiles();
  ASSERT_TRUE(profiles.ok());
  EXPECT_EQ(profiles->size(), 3u);
  EXPECT_EQ((*profiles)[1].node_id, 1u);
}

TEST(EdgeEnvironmentTest, GlobalDataSpaceIsHull) {
  std::vector<data::Dataset> shards = {MakeData(200, 0, 1),
                                       MakeData(200, 50, 2)};
  auto env = EdgeEnvironment::Create(std::move(shards), SmallEnvOptions());
  ASSERT_TRUE(env.ok());
  auto space = env->GlobalDataSpace();
  ASSERT_TRUE(space.ok());
  EXPECT_LT(space->dim(0).lo, 10.0);
  EXPECT_GT(space->dim(0).hi, 50.0);
}

TEST(EdgeEnvironmentTest, CapacitiesCycle) {
  EnvironmentOptions options = SmallEnvOptions();
  options.capacities = {1.0, 2.0};
  std::vector<data::Dataset> shards = {MakeData(50, 0, 1), MakeData(50, 0, 2),
                                       MakeData(50, 0, 3)};
  auto env = EdgeEnvironment::Create(std::move(shards), options);
  ASSERT_TRUE(env.ok());
  EXPECT_DOUBLE_EQ(env->node(0).capacity(), 1.0);
  EXPECT_DOUBLE_EQ(env->node(1).capacity(), 2.0);
  EXPECT_DOUBLE_EQ(env->node(2).capacity(), 1.0);  // Cycled.
}

TEST(EdgeEnvironmentTest, Errors) {
  EXPECT_FALSE(EdgeEnvironment::Create({}, SmallEnvOptions()).ok());

  EnvironmentOptions bad_leader = SmallEnvOptions();
  bad_leader.leader_index = 5;
  EXPECT_FALSE(
      EdgeEnvironment::Create({MakeData(10, 0, 1)}, bad_leader).ok());

  EnvironmentOptions bad_cap = SmallEnvOptions();
  bad_cap.capacities = {0.0};
  EXPECT_FALSE(
      EdgeEnvironment::Create({MakeData(10, 0, 1)}, bad_cap).ok());

  std::vector<data::Dataset> with_empty = {MakeData(10, 0, 1),
                                           data::Dataset()};
  EXPECT_FALSE(
      EdgeEnvironment::Create(std::move(with_empty), SmallEnvOptions()).ok());
}

}  // namespace
}  // namespace qens::sim
