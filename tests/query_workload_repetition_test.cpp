// Pins the seed-replay and region-repetition behavior of the workload
// generator that the leader-side ranking cache relies on: the same seed
// must reproduce bit-identical query rectangles (so a replayed workload is
// pure cache hits), distinct seeds must produce distinct regions, and a
// W-query pool replayed against a cached leader must achieve the
// 1 - W/total hit-rate lower bound.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "qens/fl/leader.h"
#include "qens/query/workload_generator.h"
#include "qens/selection/ranking.h"

namespace qens::query {
namespace {

HyperRectangle DataSpace() {
  return HyperRectangle::FromFlatBounds({0, 10, -5, 5, 100, 200}).value();
}

WorkloadOptions BaseOptions() {
  WorkloadOptions options;
  options.num_queries = 50;
  options.seed = 4242;
  return options;
}

std::vector<double> FlatRegions(const std::vector<RangeQuery>& workload) {
  std::vector<double> flat;
  for (const auto& q : workload) {
    for (double v : q.region.ToFlatBounds()) flat.push_back(v);
  }
  return flat;
}

TEST(WorkloadRepetitionTest, SameSeedReplaysBitwiseIdenticalWorkload) {
  WorkloadGenerator a(DataSpace(), BaseOptions());
  WorkloadGenerator b(DataSpace(), BaseOptions());
  auto wa = a.Generate();
  auto wb = b.Generate();
  ASSERT_TRUE(wa.ok());
  ASSERT_TRUE(wb.ok());
  ASSERT_EQ(wa->size(), wb->size());
  for (size_t i = 0; i < wa->size(); ++i) {
    EXPECT_EQ((*wa)[i].id, (*wb)[i].id);
    // Interval equality is exact double ==, i.e. bitwise for these values.
    EXPECT_TRUE((*wa)[i].region == (*wb)[i].region) << "query " << i;
  }
}

TEST(WorkloadRepetitionTest, NextStreamMatchesGenerate) {
  WorkloadGenerator batch(DataSpace(), BaseOptions());
  WorkloadGenerator stream(DataSpace(), BaseOptions());
  auto workload = batch.Generate();
  ASSERT_TRUE(workload.ok());
  for (size_t i = 0; i < workload->size(); ++i) {
    auto q = stream.Next();
    ASSERT_TRUE(q.ok());
    EXPECT_EQ(q->id, (*workload)[i].id);
    EXPECT_TRUE(q->region == (*workload)[i].region) << "query " << i;
  }
}

TEST(WorkloadRepetitionTest, DriftingModeReplaysExactly) {
  WorkloadOptions options = BaseOptions();
  options.drifting_centers = true;
  options.drift_step_frac = 0.2;
  WorkloadGenerator a(DataSpace(), options);
  WorkloadGenerator b(DataSpace(), options);
  auto wa = a.Generate();
  auto wb = b.Generate();
  ASSERT_TRUE(wa.ok());
  ASSERT_TRUE(wb.ok());
  EXPECT_EQ(FlatRegions(*wa), FlatRegions(*wb));
}

TEST(WorkloadRepetitionTest, DistinctSeedsAndQueriesProduceDistinctRegions) {
  WorkloadOptions options = BaseOptions();
  WorkloadGenerator a(DataSpace(), options);
  options.seed = 4243;
  WorkloadGenerator b(DataSpace(), options);
  auto wa = a.Generate();
  auto wb = b.Generate();
  ASSERT_TRUE(wa.ok());
  ASSERT_TRUE(wb.ok());
  EXPECT_NE(FlatRegions(*wa), FlatRegions(*wb));

  // Within one workload, regions are continuous draws: all distinct.
  std::set<std::vector<double>> regions;
  for (const auto& q : *wa) regions.insert(q.region.ToFlatBounds());
  EXPECT_EQ(regions.size(), wa->size());
}

TEST(WorkloadRepetitionTest, PoolReplayHitsTheCacheAtTheExpectedRate) {
  // An application replaying a fixed W-query pool round-robin: every query
  // after the first pass must be a cache hit (the pool fits in capacity),
  // so hits / total >= 1 - W / total.
  constexpr size_t kPool = 8;
  constexpr size_t kTotal = 40;
  WorkloadOptions options = BaseOptions();
  options.num_queries = kPool;
  WorkloadGenerator gen(
      HyperRectangle::FromFlatBounds({0, 10, 0, 10}).value(), options);
  auto pool = gen.Generate();
  ASSERT_TRUE(pool.ok());

  selection::NodeProfile profile;
  profile.node_id = 0;
  clustering::ClusterSummary cluster;
  cluster.bounds = HyperRectangle::FromFlatBounds({0, 10, 0, 10}).value();
  cluster.size = 100;
  profile.clusters.push_back(cluster);
  profile.total_samples = 100;

  selection::RankingOptions ranking;
  ranking.use_cache = true;
  ranking.cache_capacity = kPool;
  fl::Leader leader({profile}, ranking, selection::QueryDrivenOptions{});
  for (size_t i = 0; i < kTotal; ++i) {
    ASSERT_TRUE(leader.Rank((*pool)[i % kPool]).ok());
  }
  EXPECT_EQ(leader.ranking_telemetry().cache_misses, kPool);
  EXPECT_EQ(leader.ranking_telemetry().cache_hits, kTotal - kPool);
}

}  // namespace
}  // namespace qens::query
