// Integration of the obs layer with the federation loop: metrics off must
// change nothing (no registry allocation, no round records, bit-identical
// outcomes), and metrics on must populate consistent per-round records and
// the federation counters.

#include <gtest/gtest.h>

#include "qens/common/rng.h"
#include "qens/fl/federation.h"
#include "qens/obs/metrics.h"

namespace qens::fl {
namespace {

data::Dataset MakeNodeData(double offset, double slope, uint64_t seed,
                           size_t n = 200) {
  Rng rng(seed);
  Matrix x(n, 1), y(n, 1);
  for (size_t i = 0; i < n; ++i) {
    x(i, 0) = offset + rng.Uniform(0, 10);
    y(i, 0) = slope * x(i, 0) + rng.Gaussian(0, 0.2);
  }
  return data::Dataset::Create(x, y).value();
}

FederationOptions FastOptions() {
  FederationOptions options;
  options.environment.kmeans.k = 3;
  options.ranking.epsilon = 0.1;
  options.query_driven.top_l = 4;
  options.hyper = ml::PaperHyperParams(ml::ModelKind::kLinearRegression);
  options.hyper.epochs = 12;
  options.epochs_per_cluster = 5;
  options.random_l = 2;
  options.seed = 77;
  return options;
}

Result<Federation> MakeFederation(const FederationOptions& options) {
  std::vector<data::Dataset> nodes = {
      MakeNodeData(0, 2.0, 1), MakeNodeData(0, 2.0, 2),
      MakeNodeData(0, 2.0, 3), MakeNodeData(0, 2.0, 4)};
  return Federation::Create(std::move(nodes), options);
}

query::RangeQuery QueryOver(double lo, double hi) {
  query::RangeQuery q;
  q.id = 11;
  q.region = query::HyperRectangle::FromFlatBounds({lo, hi}).value();
  return q;
}

class ObsFederationTest : public ::testing::Test {
 protected:
  void TearDown() override { obs::MetricsRegistry::Disable(); }
};

TEST_F(ObsFederationTest, DisabledMeansNoRegistryAndNoRoundRecords) {
  ASSERT_FALSE(obs::MetricsRegistry::Enabled());
  auto fed = MakeFederation(FastOptions());
  ASSERT_TRUE(fed.ok());
  auto outcome = fed->RunQueryMultiRound(
      QueryOver(0, 10), selection::PolicyKind::kQueryDriven, true, 2);
  ASSERT_TRUE(outcome.ok());
  ASSERT_FALSE(outcome->skipped);
  EXPECT_TRUE(outcome->round_records.empty());
  EXPECT_EQ(obs::MetricsRegistry::Get(), nullptr);
}

TEST_F(ObsFederationTest, EnablingMetricsChangesNoOutcome) {
  auto fed_off = MakeFederation(FastOptions());
  ASSERT_TRUE(fed_off.ok());
  auto off = fed_off->RunQueryMultiRound(
      QueryOver(0, 10), selection::PolicyKind::kQueryDriven, true, 3);
  ASSERT_TRUE(off.ok());
  ASSERT_FALSE(off->skipped);

  obs::MetricsRegistry::Enable();
  auto fed_on = MakeFederation(FastOptions());
  ASSERT_TRUE(fed_on.ok());
  auto on = fed_on->RunQueryMultiRound(
      QueryOver(0, 10), selection::PolicyKind::kQueryDriven, true, 3);
  ASSERT_TRUE(on.ok());
  ASSERT_FALSE(on->skipped);

  // Bit-identical simulation results either way: the instrumentation adds
  // no RNG draws and no arithmetic to the simulated quantities.
  EXPECT_EQ(off->selected_nodes, on->selected_nodes);
  EXPECT_EQ(off->round_survivors, on->round_survivors);
  EXPECT_EQ(off->samples_used, on->samples_used);
  EXPECT_DOUBLE_EQ(off->loss_model_avg, on->loss_model_avg);
  EXPECT_DOUBLE_EQ(off->loss_weighted, on->loss_weighted);
  EXPECT_DOUBLE_EQ(off->loss_fedavg, on->loss_fedavg);
  EXPECT_DOUBLE_EQ(off->sim_time_total, on->sim_time_total);
  EXPECT_DOUBLE_EQ(off->sim_time_parallel, on->sim_time_parallel);
  EXPECT_DOUBLE_EQ(off->sim_time_comm, on->sim_time_comm);

  // But the enabled run carries the records the disabled run skipped.
  EXPECT_TRUE(off->round_records.empty());
  EXPECT_EQ(on->round_records.size(), 3u);
}

TEST_F(ObsFederationTest, RoundRecordsAreInternallyConsistent) {
  obs::MetricsRegistry::Enable();
  auto fed = MakeFederation(FastOptions());
  ASSERT_TRUE(fed.ok());
  const size_t rounds = 3;
  auto outcome = fed->RunQueryMultiRound(
      QueryOver(0, 10), selection::PolicyKind::kQueryDriven, true, rounds);
  ASSERT_TRUE(outcome.ok());
  ASSERT_FALSE(outcome->skipped);
  ASSERT_EQ(outcome->round_records.size(), rounds);

  for (size_t r = 0; r < rounds; ++r) {
    const obs::RoundRecord& record = outcome->round_records[r];
    EXPECT_EQ(record.query_id, 11u);
    EXPECT_EQ(record.round, r);
    EXPECT_EQ(record.policy, "query-driven");
    EXPECT_EQ(record.aggregation, r + 1 < rounds ? "fedavg" : "ensemble");
    EXPECT_EQ(record.engaged, record.nodes.size());
    size_t completed = 0;
    double train_total = 0.0, comm_total = 0.0;
    for (const auto& node : record.nodes) {
      completed += (node.fate == obs::NodeFate::kCompleted);
      train_total += node.train_seconds;
      comm_total += node.comm_seconds;
    }
    EXPECT_EQ(record.survivors, completed);
    EXPECT_EQ(record.survivors, outcome->round_survivors[r]);
    EXPECT_NEAR(record.total_train_seconds, train_total, 1e-12);
    EXPECT_NEAR(record.comm_seconds, comm_total, 1e-12);
    // The critical path can never exceed the round's summed work.
    EXPECT_LE(record.parallel_seconds,
              record.total_train_seconds + record.comm_seconds + 1e-12);
    EXPECT_TRUE(record.quorum_met);
    // Only the final round evaluates.
    EXPECT_EQ(record.has_loss, r + 1 == rounds);
  }
  EXPECT_DOUBLE_EQ(outcome->round_records.back().loss,
                   outcome->loss_weighted);

  const obs::MetricsSnapshot snap = obs::MetricsRegistry::Get()->Snapshot();
  EXPECT_EQ(snap.counters.at("federation.queries"), 1u);
  EXPECT_EQ(snap.counters.at("federation.rounds"), rounds);
  EXPECT_GE(snap.counters.at("federation.nodes.completed"), rounds);
  EXPECT_EQ(snap.histograms.at("federation.round.parallel_seconds").total,
            rounds);
  EXPECT_EQ(snap.counters.at("span.federation.round.calls"), rounds);
}

TEST_F(ObsFederationTest, FaultPathsLandInRecordsAndCounters) {
  obs::MetricsRegistry::Enable();
  FederationOptions options = FastOptions();
  options.fault_tolerance.enabled = true;
  options.fault_tolerance.faults.seed = 19;
  options.fault_tolerance.faults.dropout_rate = 0.4;
  options.fault_tolerance.faults.message_loss_rate = 0.3;
  options.fault_tolerance.min_quorum_frac = 0.25;
  auto fed = MakeFederation(options);
  ASSERT_TRUE(fed.ok());

  size_t unavailable = 0, engaged = 0;
  for (int i = 0; i < 6; ++i) {
    auto outcome = fed->RunQueryMultiRound(
        QueryOver(0, 10), selection::PolicyKind::kQueryDriven, true, 2);
    ASSERT_TRUE(outcome.ok());
    for (const auto& record : outcome->round_records) {
      engaged += record.nodes.size();
      for (const auto& node : record.nodes) {
        unavailable += (node.fate == obs::NodeFate::kUnavailable);
      }
    }
  }
  ASSERT_GT(engaged, 0u);
  // With 40% dropout some engagements must have failed and the counters
  // must agree with the per-record fates.
  ASSERT_GT(unavailable, 0u);
  const obs::MetricsSnapshot snap = obs::MetricsRegistry::Get()->Snapshot();
  EXPECT_EQ(snap.counters.at("federation.nodes.unavailable"), unavailable);
}

}  // namespace
}  // namespace qens::fl
