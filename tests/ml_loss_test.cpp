// Tests for training losses: values, gradients vs finite differences.

#include "qens/ml/loss.h"

#include <gtest/gtest.h>

namespace qens::ml {
namespace {

TEST(LossTest, MseValue) {
  Matrix pred{{1, 2}, {3, 4}};
  Matrix target{{1, 2}, {3, 4}};
  EXPECT_DOUBLE_EQ(ComputeLoss(LossKind::kMse, pred, target).value(), 0.0);
  Matrix off{{2, 2}, {3, 4}};
  EXPECT_DOUBLE_EQ(ComputeLoss(LossKind::kMse, off, target).value(), 0.25);
}

TEST(LossTest, MaeValue) {
  Matrix pred{{0, 4}};
  Matrix target{{1, 2}};
  EXPECT_DOUBLE_EQ(ComputeLoss(LossKind::kMae, pred, target).value(), 1.5);
}

TEST(LossTest, HuberQuadraticInsideDelta) {
  Matrix pred{{0.5}};
  Matrix target{{0.0}};
  EXPECT_DOUBLE_EQ(ComputeLoss(LossKind::kHuber, pred, target).value(),
                   0.5 * 0.25);
}

TEST(LossTest, HuberLinearOutsideDelta) {
  Matrix pred{{3.0}};
  Matrix target{{0.0}};
  EXPECT_DOUBLE_EQ(ComputeLoss(LossKind::kHuber, pred, target).value(),
                   1.0 * (3.0 - 0.5));
}

TEST(LossTest, ShapeAndEmptyErrors) {
  Matrix a(1, 2), b(2, 1), empty;
  EXPECT_FALSE(ComputeLoss(LossKind::kMse, a, b).ok());
  EXPECT_FALSE(ComputeLoss(LossKind::kMse, empty, empty).ok());
  EXPECT_FALSE(ComputeLossGrad(LossKind::kMse, a, b).ok());
}

class LossGradCheck : public ::testing::TestWithParam<LossKind> {};

TEST_P(LossGradCheck, GradMatchesFiniteDifference) {
  const LossKind kind = GetParam();
  Matrix pred{{0.7, -1.4}, {2.3, 0.1}};
  Matrix target{{0.5, 0.5}, {0.5, 0.5}};
  Matrix grad = ComputeLossGrad(kind, pred, target).value();
  const double eps = 1e-7;
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 2; ++c) {
      Matrix lo = pred, hi = pred;
      lo(r, c) -= eps;
      hi(r, c) += eps;
      const double numeric = (ComputeLoss(kind, hi, target).value() -
                              ComputeLoss(kind, lo, target).value()) /
                             (2 * eps);
      EXPECT_NEAR(grad(r, c), numeric, 1e-5) << LossName(kind);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllLosses, LossGradCheck,
                         ::testing::Values(LossKind::kMse, LossKind::kMae,
                                           LossKind::kHuber));

TEST(LossNameTest, RoundTrip) {
  for (LossKind k : {LossKind::kMse, LossKind::kMae, LossKind::kHuber}) {
    EXPECT_EQ(ParseLoss(LossName(k)).value(), k);
  }
  EXPECT_EQ(ParseLoss("MSE").value(), LossKind::kMse);
  EXPECT_FALSE(ParseLoss("crossentropy").ok());
}

TEST(LossTest, MseGradZeroAtOptimum) {
  Matrix pred{{2, 3}};
  Matrix target{{2, 3}};
  Matrix grad = ComputeLossGrad(LossKind::kMse, pred, target).value();
  EXPECT_DOUBLE_EQ(grad(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(grad(0, 1), 0.0);
}

}  // namespace
}  // namespace qens::ml
