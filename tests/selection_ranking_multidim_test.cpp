// Hand-computed multi-dimensional ranking vectors (Eqs. 2-4 at d > 1) and
// heterogeneous-K profiles (nodes with different cluster counts).

#include <gtest/gtest.h>

#include "qens/selection/ranking.h"

namespace qens::selection {
namespace {

using query::HyperRectangle;
using query::RangeQuery;

clustering::ClusterSummary Cluster2D(double x_lo, double x_hi, double y_lo,
                                     double y_hi, size_t size = 10) {
  clustering::ClusterSummary c;
  c.centroid = {(x_lo + x_hi) / 2, (y_lo + y_hi) / 2};
  c.bounds =
      HyperRectangle::FromFlatBounds({x_lo, x_hi, y_lo, y_hi}).value();
  c.size = size;
  return c;
}

RangeQuery Query2D(double x_lo, double x_hi, double y_lo, double y_hi) {
  RangeQuery q;
  q.region = HyperRectangle::FromFlatBounds({x_lo, x_hi, y_lo, y_hi}).value();
  return q;
}

TEST(MultiDimRankingTest, HandComputedTwoDimCase) {
  // Cluster [0,10]x[0,10]; query [2,4]x[20,30].
  // dim0: case 1, h = 2/10 = 0.2; dim1: disjoint, h = 0.
  // Eq. 2: h = (0.2 + 0)/2 = 0.1.
  NodeProfile p;
  p.node_id = 0;
  p.total_samples = 10;
  p.clusters = {Cluster2D(0, 10, 0, 10)};
  RankingOptions options;
  options.epsilon = 0.05;
  auto rank = RankNode(p, Query2D(2, 4, 20, 30), options);
  ASSERT_TRUE(rank.ok());
  ASSERT_EQ(rank->cluster_scores.size(), 1u);
  EXPECT_DOUBLE_EQ(rank->cluster_scores[0].overlap, 0.1);
  EXPECT_TRUE(rank->cluster_scores[0].supporting);
  // K' = K = 1 -> r = p * 1 = 0.1.
  EXPECT_DOUBLE_EQ(rank->ranking, 0.1);
}

TEST(MultiDimRankingTest, MixedCasesAverage) {
  // Cluster [0,10]x[0,10]; query [2,4]x[6,14].
  // dim0: case 1, 0.2; dim1: case 2 (q_min inside), (10-6)/(14-0) = 2/7.
  // Eq. 2: (0.2 + 2/7)/2.
  NodeProfile p;
  p.node_id = 0;
  p.total_samples = 10;
  p.clusters = {Cluster2D(0, 10, 0, 10)};
  RankingOptions options;
  options.epsilon = 0.1;
  auto rank = RankNode(p, Query2D(2, 4, 6, 14), options);
  ASSERT_TRUE(rank.ok());
  EXPECT_NEAR(rank->cluster_scores[0].overlap, (0.2 + 2.0 / 7.0) / 2.0,
              1e-12);
}

TEST(MultiDimRankingTest, UnconstrainedDimensionDilutes) {
  // The hospital-example effect: query covers all of dim1 (h = 1), is
  // disjoint in dim0 (h = 0) -> Eq. 2 average 0.5 despite zero usable
  // data in dim0.
  NodeProfile p;
  p.node_id = 0;
  p.total_samples = 10;
  p.clusters = {Cluster2D(0, 10, 0, 10)};
  RankingOptions options;
  options.epsilon = 0.4;
  auto rank = RankNode(p, Query2D(50, 60, -5, 15), options);
  ASSERT_TRUE(rank.ok());
  EXPECT_DOUBLE_EQ(rank->cluster_scores[0].overlap, 0.5);
  // With epsilon below the diluted average, the cluster *supports* the
  // query even though it holds nothing useful — which is why epsilon must
  // be calibrated to the constrained dimensionality.
  EXPECT_TRUE(rank->cluster_scores[0].supporting);
}

TEST(MultiDimRankingTest, NodesWithDifferentKCompareFairly) {
  // Node A: 2 clusters, both fully supporting -> p = 2, K'/K = 1, r = 2.
  // Node B: 4 clusters, two fully supporting -> p = 2, K'/K = 0.5, r = 1.
  // Eq. 4's K'/K factor rewards the node whose data is concentrated in
  // the query region.
  NodeProfile a;
  a.node_id = 0;
  a.total_samples = 20;
  a.clusters = {Cluster2D(0, 1, 0, 1), Cluster2D(1, 2, 1, 2)};
  NodeProfile b;
  b.node_id = 1;
  b.total_samples = 40;
  b.clusters = {Cluster2D(0, 1, 0, 1), Cluster2D(1, 2, 1, 2),
                Cluster2D(50, 60, 50, 60), Cluster2D(70, 80, 70, 80)};
  RankingOptions options;
  options.epsilon = 0.5;
  RangeQuery q = Query2D(-1, 3, -1, 3);
  auto ranks = RankNodes({a, b}, q, options);
  ASSERT_TRUE(ranks.ok());
  EXPECT_EQ((*ranks)[0].node_id, 0u);
  EXPECT_DOUBLE_EQ((*ranks)[0].ranking, 2.0);
  EXPECT_DOUBLE_EQ((*ranks)[1].ranking, 1.0);
}

TEST(MultiDimRankingTest, SupportingSamplesSumSupportingSizesOnly) {
  NodeProfile p;
  p.node_id = 0;
  p.clusters = {Cluster2D(0, 10, 0, 10, 30),
                Cluster2D(100, 110, 100, 110, 70)};
  p.total_samples = 100;
  RankingOptions options;
  options.epsilon = 0.5;
  auto rank = RankNode(p, Query2D(0, 10, 0, 10), options);
  ASSERT_TRUE(rank.ok());
  EXPECT_EQ(rank->supporting_clusters, 1u);
  EXPECT_EQ(rank->supporting_samples, 30u);
  EXPECT_EQ(rank->total_samples, 100u);
}

}  // namespace
}  // namespace qens::selection
