// Tests for qens::Status and qens::Result<T>.

#include "qens/common/status.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace qens {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, ErrorFactoriesCarryCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, EveryCodePredicate) {
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::NotImplemented("x").IsNotImplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument),
               "InvalidArgument");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIOError), "IOError");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status::OK());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_NE(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_NE(Status::NotFound("a"), Status::Internal("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, ValueOrPassesThroughValue) {
  Result<std::string> r(std::string("hello"));
  EXPECT_EQ(r.value_or("fallback"), "hello");
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseMacros(int x, int* out) {
  QENS_ASSIGN_OR_RETURN(int h, Half(x));
  QENS_RETURN_NOT_OK(Status::OK());
  *out = h;
  return Status::OK();
}

TEST(ResultTest, MacrosPropagate) {
  int out = 0;
  EXPECT_TRUE(UseMacros(4, &out).ok());
  EXPECT_EQ(out, 2);
  Status s = UseMacros(3, &out);
  EXPECT_TRUE(s.IsInvalidArgument());
}

}  // namespace
}  // namespace qens
