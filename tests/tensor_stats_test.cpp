// Tests for descriptive statistics: RunningStats, correlation, OLS,
// quantiles.

#include "qens/tensor/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "qens/common/rng.h"

namespace qens::stats {
namespace {

TEST(RunningStatsTest, MeanVarianceMinMax) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, EmptyAndSingle) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  s.Add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.sample_variance(), 0.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  Rng rng(42);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Gaussian(3.0, 2.0);
    all.Add(v);
    (i % 2 == 0 ? a : b).Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a, b;
  a.Add(1.0);
  a.Add(2.0);
  RunningStats a_copy = a;
  a.Merge(b);  // No-op.
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), a_copy.mean());
  b.Merge(a);  // Adopt.
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(PearsonTest, PerfectCorrelation) {
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3}, {2, 4, 6}).value(), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3}, {6, 4, 2}).value(), -1.0, 1e-12);
}

TEST(PearsonTest, Errors) {
  EXPECT_FALSE(PearsonCorrelation({1, 2}, {1}).ok());
  EXPECT_FALSE(PearsonCorrelation({1}, {1}).ok());
  EXPECT_FALSE(PearsonCorrelation({1, 1, 1}, {1, 2, 3}).ok());
}

TEST(FitLineTest, ExactLine) {
  auto fit = FitLine({0, 1, 2, 3}, {1, 3, 5, 7});  // y = 2x + 1.
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->slope, 2.0, 1e-12);
  EXPECT_NEAR(fit->intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit->r_squared, 1.0, 1e-12);
}

TEST(FitLineTest, NoisyLineRecoversSlopeSign) {
  Rng rng(7);
  std::vector<double> x, y;
  for (int i = 0; i < 500; ++i) {
    const double xi = rng.Uniform(-5, 5);
    x.push_back(xi);
    y.push_back(-3.0 * xi + 2.0 + rng.Gaussian(0, 0.5));
  }
  auto fit = FitLine(x, y);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->slope, -3.0, 0.1);
  EXPECT_GT(fit->r_squared, 0.95);
}

TEST(FitLineTest, Errors) {
  EXPECT_FALSE(FitLine({1}, {1}).ok());
  EXPECT_FALSE(FitLine({2, 2, 2}, {1, 2, 3}).ok());  // Constant x.
  EXPECT_FALSE(FitLine({1, 2}, {1}).ok());
}

TEST(FitLineTest, ConstantYHasZeroSlope) {
  auto fit = FitLine({1, 2, 3}, {5, 5, 5});
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->slope, 0.0, 1e-12);
  EXPECT_NEAR(fit->intercept, 5.0, 1e-12);
}

TEST(QuantileTest, MedianAndExtremes) {
  std::vector<double> v{5, 1, 3, 2, 4};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5).value(), 3.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0).value(), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0).value(), 5.0);
}

TEST(QuantileTest, Interpolates) {
  EXPECT_DOUBLE_EQ(Quantile({0, 10}, 0.25).value(), 2.5);
}

TEST(QuantileTest, Errors) {
  EXPECT_FALSE(Quantile({}, 0.5).ok());
  EXPECT_FALSE(Quantile({1.0}, -0.1).ok());
  EXPECT_FALSE(Quantile({1.0}, 1.1).ok());
}

}  // namespace
}  // namespace qens::stats
