// Tests for the INI-style Config parser and typed getters.

#include "qens/common/config.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace qens {
namespace {

TEST(ConfigTest, ParseFlatKeys) {
  auto config = Config::Parse("a = 1\nb = hello\n");
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->size(), 2u);
  EXPECT_TRUE(config->Has("a"));
  EXPECT_EQ(config->GetString("b").value(), "hello");
}

TEST(ConfigTest, SectionsArePrefixed) {
  auto config = Config::Parse("[data]\nstations = 10\n[workload]\nqueries = 200\n");
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->GetInt("data.stations", 0).value(), 10);
  EXPECT_EQ(config->GetInt("workload.queries", 0).value(), 200);
  EXPECT_FALSE(config->Has("stations"));
}

TEST(ConfigTest, CommentsAndBlankLines) {
  auto config = Config::Parse(
      "# full line comment\n"
      "  ; also a comment\n"
      "\n"
      "key = value   # trailing comment\n");
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->GetString("key").value(), "value");
}

TEST(ConfigTest, LaterKeysOverride) {
  auto config = Config::Parse("k = 1\nk = 2\n");
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->GetInt("k", 0).value(), 2);
}

TEST(ConfigTest, WhitespaceTolerant) {
  auto config = Config::Parse("   spaced   =   out value  \n");
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->GetString("spaced").value(), "out value");
}

TEST(ConfigTest, MalformedLinesRejected) {
  EXPECT_FALSE(Config::Parse("no equals sign\n").ok());
  EXPECT_FALSE(Config::Parse("= value\n").ok());
  EXPECT_FALSE(Config::Parse("[unclosed\n").ok());
  EXPECT_FALSE(Config::Parse("[]\nk=v\n").ok());
}

TEST(ConfigTest, TypedGettersWithDefaults) {
  auto config = Config::Parse("i = 42\nd = 2.5\nb = yes\n");
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->GetInt("i", -1).value(), 42);
  EXPECT_EQ(config->GetInt("missing", -1).value(), -1);
  EXPECT_DOUBLE_EQ(config->GetDouble("d", 0).value(), 2.5);
  EXPECT_DOUBLE_EQ(config->GetDouble("missing", 9.0).value(), 9.0);
  EXPECT_TRUE(config->GetBool("b", false).value());
  EXPECT_FALSE(config->GetBool("missing", false).value());
}

TEST(ConfigTest, BoolSpellings) {
  auto config = Config::Parse(
      "t1 = true\nt2 = YES\nt3 = on\nt4 = 1\n"
      "f1 = false\nf2 = No\nf3 = off\nf4 = 0\n");
  ASSERT_TRUE(config.ok());
  for (const char* k : {"t1", "t2", "t3", "t4"}) {
    EXPECT_TRUE(config->GetBool(k, false).value()) << k;
  }
  for (const char* k : {"f1", "f2", "f3", "f4"}) {
    EXPECT_FALSE(config->GetBool(k, true).value()) << k;
  }
}

TEST(ConfigTest, PresentButUnparseableIsError) {
  auto config = Config::Parse("i = not-a-number\nb = maybe\n");
  ASSERT_TRUE(config.ok());
  EXPECT_TRUE(config->GetInt("i", 0).status().IsInvalidArgument());
  EXPECT_TRUE(config->GetDouble("i", 0).status().IsInvalidArgument());
  EXPECT_TRUE(config->GetBool("b", false).status().IsInvalidArgument());
}

TEST(ConfigTest, GetStringMissing) {
  Config config;
  EXPECT_TRUE(config.GetString("x").status().IsNotFound());
  EXPECT_EQ(config.GetString("x", "fb"), "fb");
}

TEST(ConfigTest, SetAndKeys) {
  Config config;
  config.Set("z", "1");
  config.Set("a", "2");
  EXPECT_EQ(config.Keys(), (std::vector<std::string>{"a", "z"}));
}

TEST(ConfigTest, LoadFromFile) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "qens_config_test.ini")
          .string();
  {
    std::ofstream out(path);
    out << "[env]\nnodes = 5\n";
  }
  auto config = Config::Load(path);
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->GetInt("env.nodes", 0).value(), 5);
  std::remove(path.c_str());
  EXPECT_TRUE(Config::Load("/no/such/file.ini").status().IsIOError());
}

}  // namespace
}  // namespace qens
