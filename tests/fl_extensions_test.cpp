// Tests for the federation extensions: multi-round FedAvg training,
// volatile-client dropout (fault injection), and the two extra selection
// policies wired through the federation.

#include <gtest/gtest.h>

#include "qens/common/rng.h"
#include "qens/fl/federation.h"

namespace qens::fl {
namespace {

data::Dataset MakeNodeData(double offset, double slope, uint64_t seed,
                           size_t n = 220) {
  Rng rng(seed);
  Matrix x(n, 1), y(n, 1);
  for (size_t i = 0; i < n; ++i) {
    x(i, 0) = offset + rng.Uniform(0, 10);
    y(i, 0) = slope * x(i, 0) + rng.Gaussian(0, 0.2);
  }
  return data::Dataset::Create(x, y).value();
}

FederationOptions FastOptions() {
  FederationOptions options;
  options.environment.kmeans.k = 3;
  options.ranking.epsilon = 0.1;
  options.query_driven.top_l = 2;
  options.hyper = ml::PaperHyperParams(ml::ModelKind::kLinearRegression);
  options.hyper.epochs = 15;
  options.epochs_per_cluster = 6;
  options.random_l = 2;
  options.seed = 77;
  return options;
}

Result<Federation> MakeFederation(FederationOptions options = FastOptions()) {
  std::vector<data::Dataset> nodes = {
      MakeNodeData(0, 2.0, 1), MakeNodeData(0, 2.0, 2),
      MakeNodeData(20, 2.0, 3), MakeNodeData(20, 2.0, 4)};
  return Federation::Create(std::move(nodes), options);
}

query::RangeQuery QueryOver(double lo, double hi) {
  query::RangeQuery q;
  q.id = 3;
  q.region = query::HyperRectangle::FromFlatBounds({lo, hi}).value();
  return q;
}

TEST(MultiRoundTest, RunsRequestedRounds) {
  auto fed = MakeFederation();
  ASSERT_TRUE(fed.ok());
  auto outcome = fed->RunQueryMultiRound(
      QueryOver(0, 10), selection::PolicyKind::kQueryDriven,
      /*data_selectivity=*/true, /*rounds=*/3);
  ASSERT_TRUE(outcome.ok());
  ASSERT_FALSE(outcome->skipped);
  EXPECT_EQ(outcome->rounds, 3u);
}

TEST(MultiRoundTest, MoreRoundsMoreSimTimeSameDataFootprint) {
  auto fed1 = MakeFederation();
  auto fed3 = MakeFederation();
  ASSERT_TRUE(fed1.ok());
  ASSERT_TRUE(fed3.ok());
  auto one = fed1->RunQueryMultiRound(QueryOver(0, 10),
                                      selection::PolicyKind::kQueryDriven,
                                      true, 1);
  auto three = fed3->RunQueryMultiRound(QueryOver(0, 10),
                                        selection::PolicyKind::kQueryDriven,
                                        true, 3);
  ASSERT_TRUE(one.ok());
  ASSERT_TRUE(three.ok());
  ASSERT_FALSE(one->skipped);
  ASSERT_FALSE(three->skipped);
  EXPECT_GT(three->sim_time_total, 2.5 * one->sim_time_total);
  // samples_used counts DISTINCT rows touched, not rows x rounds.
  EXPECT_EQ(three->samples_used, one->samples_used);
}

TEST(MultiRoundTest, ZeroRoundsRejected) {
  auto fed = MakeFederation();
  ASSERT_TRUE(fed.ok());
  EXPECT_FALSE(fed->RunQueryMultiRound(QueryOver(0, 10),
                                       selection::PolicyKind::kQueryDriven,
                                       true, 0)
                   .ok());
}

TEST(MultiRoundTest, MultiRoundLossStaysReasonable) {
  auto fed = MakeFederation();
  ASSERT_TRUE(fed.ok());
  auto outcome = fed->RunQueryMultiRound(
      QueryOver(0, 10), selection::PolicyKind::kQueryDriven, true, 3);
  ASSERT_TRUE(outcome.ok());
  ASSERT_FALSE(outcome->skipped);
  // Sanity bound: far better than a zero predictor on y = 2x over [0, 10]
  // (whose MSE is E[(2x)^2] ~ 133); short local fits keep this loose.
  EXPECT_LT(outcome->loss_weighted, 130.0);
}

TEST(DropoutTest, FullDropoutSkipsQuery) {
  FederationOptions options = FastOptions();
  options.dropout_rate = 1.0;
  auto fed = MakeFederation(options);
  ASSERT_TRUE(fed.ok());
  auto outcome = fed->RunQueryDriven(QueryOver(0, 10));
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->skipped);
  EXPECT_FALSE(outcome->dropped_nodes.empty());
}

TEST(DropoutTest, ZeroDropoutDropsNobody) {
  auto fed = MakeFederation();
  ASSERT_TRUE(fed.ok());
  auto outcome = fed->RunQueryDriven(QueryOver(0, 10));
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->dropped_nodes.empty());
}

TEST(DropoutTest, PartialDropoutDegradesGracefully) {
  FederationOptions options = FastOptions();
  options.dropout_rate = 0.5;
  options.query_driven.top_l = 4;
  auto fed = MakeFederation(options);
  ASSERT_TRUE(fed.ok());
  // Over several queries some must survive and produce results.
  size_t executed = 0, any_dropped = 0;
  for (int i = 0; i < 12; ++i) {
    auto outcome = fed->RunQueryDriven(QueryOver(0, 30));
    ASSERT_TRUE(outcome.ok());
    if (!outcome->skipped) ++executed;
    if (!outcome->dropped_nodes.empty()) ++any_dropped;
  }
  EXPECT_GT(executed, 0u);
  EXPECT_GT(any_dropped, 0u);
}

TEST(DropoutTest, InvalidRateRejected) {
  FederationOptions options = FastOptions();
  options.dropout_rate = 1.5;
  auto fed = MakeFederation(options);
  ASSERT_TRUE(fed.ok());
  EXPECT_FALSE(fed->RunQueryDriven(QueryOver(0, 10)).ok());
}

TEST(PolicyExtensionTest, DataCentricPolicyRuns) {
  FederationOptions options = FastOptions();
  options.data_centric.top_l = 2;
  auto fed = MakeFederation(options);
  ASSERT_TRUE(fed.ok());
  auto outcome = fed->RunQuery(QueryOver(0, 30),
                               selection::PolicyKind::kDataCentric,
                               /*data_selectivity=*/false);
  ASSERT_TRUE(outcome.ok());
  ASSERT_FALSE(outcome->skipped);
  EXPECT_EQ(outcome->selected_nodes.size(), 2u);
}

TEST(PolicyExtensionTest, DataCentricIsQueryAgnostic) {
  FederationOptions options = FastOptions();
  options.data_centric.top_l = 2;
  auto fed = MakeFederation(options);
  ASSERT_TRUE(fed.ok());
  auto a = fed->RunQuery(QueryOver(0, 10),
                         selection::PolicyKind::kDataCentric, false);
  auto b = fed->RunQuery(QueryOver(20, 30),
                         selection::PolicyKind::kDataCentric, false);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_FALSE(a->skipped);
  ASSERT_FALSE(b->skipped);
  EXPECT_EQ(a->selected_nodes, b->selected_nodes);
}

TEST(PolicyExtensionTest, StochasticPolicyTracksParticipation) {
  FederationOptions options = FastOptions();
  options.stochastic.draw_l = 2;
  options.stochastic.alpha = 0.5;
  auto fed = MakeFederation(options);
  ASSERT_TRUE(fed.ok());
  for (int i = 0; i < 6; ++i) {
    auto outcome = fed->RunQuery(QueryOver(0, 30),
                                 selection::PolicyKind::kStochastic,
                                 /*data_selectivity=*/false);
    ASSERT_TRUE(outcome.ok());
    ASSERT_FALSE(outcome->skipped);
    EXPECT_EQ(outcome->selected_nodes.size(), 2u);
  }
  size_t total = 0;
  for (size_t c : fed->StochasticParticipation()) total += c;
  EXPECT_EQ(total, 12u);
}

TEST(ParallelTrainingTest, MatchesSequentialBitExact) {
  FederationOptions seq_options = FastOptions();
  FederationOptions par_options = FastOptions();
  par_options.parallel_local_training = true;
  auto seq = MakeFederation(seq_options);
  auto par = MakeFederation(par_options);
  ASSERT_TRUE(seq.ok());
  ASSERT_TRUE(par.ok());
  auto o_seq = seq->RunQueryDriven(QueryOver(0, 30));
  auto o_par = par->RunQueryDriven(QueryOver(0, 30));
  ASSERT_TRUE(o_seq.ok());
  ASSERT_TRUE(o_par.ok());
  ASSERT_FALSE(o_seq->skipped);
  ASSERT_FALSE(o_par->skipped);
  EXPECT_EQ(o_seq->selected_nodes, o_par->selected_nodes);
  EXPECT_DOUBLE_EQ(o_seq->loss_model_avg, o_par->loss_model_avg);
  EXPECT_DOUBLE_EQ(o_seq->loss_weighted, o_par->loss_weighted);
  EXPECT_EQ(o_seq->samples_used, o_par->samples_used);
  EXPECT_DOUBLE_EQ(o_seq->sim_time_total, o_par->sim_time_total);
}

TEST(ParallelTrainingTest, WorksWithAllNodesPolicy) {
  FederationOptions options = FastOptions();
  options.parallel_local_training = true;
  auto fed = MakeFederation(options);
  ASSERT_TRUE(fed.ok());
  auto outcome = fed->RunQuery(QueryOver(0, 30),
                               selection::PolicyKind::kAllNodes, false);
  ASSERT_TRUE(outcome.ok());
  ASSERT_FALSE(outcome->skipped);
  EXPECT_EQ(outcome->selected_nodes.size(), 4u);
}

TEST(PolicyExtensionTest, PolicyNamesIncludeExtensions) {
  EXPECT_STREQ(selection::PolicyKindName(selection::PolicyKind::kDataCentric),
               "data-centric");
  EXPECT_STREQ(selection::PolicyKindName(selection::PolicyKind::kStochastic),
               "stochastic");
  EXPECT_EQ(
      selection::ParsePolicyKind("fair").value(),
      selection::PolicyKind::kStochastic);
}

}  // namespace
}  // namespace qens::fl
