// Tests for the streaming quantizer: absorption invariants, drift
// tracking, rebuild behaviour.

#include "qens/clustering/streaming_quantizer.h"

#include <gtest/gtest.h>

#include "qens/common/rng.h"

namespace qens::clustering {
namespace {

Matrix TwoBlobs(size_t per, uint64_t seed) {
  Rng rng(seed);
  Matrix data(2 * per, 1);
  for (size_t i = 0; i < per; ++i) {
    data(i, 0) = rng.Gaussian(0.0, 0.5);
    data(per + i, 0) = rng.Gaussian(20.0, 0.5);
  }
  return data;
}

StreamingQuantizer MakeQuantizer(uint64_t seed = 1) {
  KMeansOptions options;
  options.k = 2;
  options.seed = seed;
  auto q = StreamingQuantizer::Create(TwoBlobs(50, seed), options);
  EXPECT_TRUE(q.ok());
  return std::move(q).value();
}

TEST(StreamingQuantizerTest, InitialStateMatchesKMeans) {
  StreamingQuantizer q = MakeQuantizer();
  EXPECT_EQ(q.total_samples(), 100u);
  EXPECT_EQ(q.absorbed_samples(), 0u);
  EXPECT_DOUBLE_EQ(q.Drift(), 0.0);
  size_t covered = 0;
  for (const auto& s : q.summaries()) covered += s.size;
  EXPECT_EQ(covered, 100u);
}

TEST(StreamingQuantizerTest, AbsorbJoinsNearestCluster) {
  StreamingQuantizer q = MakeQuantizer();
  // Find which cluster sits near 20.
  size_t cluster20 = q.summaries()[0].centroid[0] > 10.0 ? 0 : 1;
  auto joined = q.Absorb({20.3});
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(*joined, cluster20);
  EXPECT_EQ(q.total_samples(), 101u);
  EXPECT_EQ(q.absorbed_samples(), 1u);
}

TEST(StreamingQuantizerTest, AbsorbExpandsBoundsAndMovesCentroid) {
  StreamingQuantizer q = MakeQuantizer();
  const size_t cluster0 = q.summaries()[0].centroid[0] < 10.0 ? 0 : 1;
  const double old_hi = q.summaries()[cluster0].bounds.dim(0).hi;
  const double old_centroid = q.summaries()[cluster0].centroid[0];
  // A point beyond the current box but still nearest to blob 0.
  const double x = old_hi + 1.0;
  auto joined = q.Absorb({x});
  ASSERT_TRUE(joined.ok());
  ASSERT_EQ(*joined, cluster0);
  EXPECT_DOUBLE_EQ(q.summaries()[cluster0].bounds.dim(0).hi, x);
  EXPECT_GT(q.summaries()[cluster0].centroid[0], old_centroid);
}

TEST(StreamingQuantizerTest, CentroidIsRunningMean) {
  // One cluster, known values: centroid must equal the exact mean.
  Matrix data{{0.0}, {2.0}};
  KMeansOptions options;
  options.k = 1;
  auto q = StreamingQuantizer::Create(data, options);
  ASSERT_TRUE(q.ok());
  ASSERT_TRUE(q->Absorb({7.0}).ok());
  EXPECT_NEAR(q->summaries()[0].centroid[0], 3.0, 1e-12);
  ASSERT_TRUE(q->Absorb({-1.0}).ok());
  EXPECT_NEAR(q->summaries()[0].centroid[0], 2.0, 1e-12);
}

TEST(StreamingQuantizerTest, DriftAndRebuild) {
  StreamingQuantizer q = MakeQuantizer();
  Rng rng(9);
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(q.Absorb({rng.Gaussian(10.0, 1.0)}).ok());
  }
  EXPECT_NEAR(q.Drift(), 60.0 / 160.0, 1e-12);
  EXPECT_TRUE(q.NeedsRebuild(0.3));
  EXPECT_FALSE(q.NeedsRebuild(0.5));

  ASSERT_TRUE(q.Rebuild().ok());
  EXPECT_EQ(q.absorbed_samples(), 0u);
  EXPECT_DOUBLE_EQ(q.Drift(), 0.0);
  EXPECT_EQ(q.total_samples(), 160u);
  size_t covered = 0;
  for (const auto& s : q.summaries()) covered += s.size;
  EXPECT_EQ(covered, 160u);
}

TEST(StreamingQuantizerTest, AbsorbRows) {
  StreamingQuantizer q = MakeQuantizer();
  Matrix batch{{0.1}, {19.9}, {0.4}};
  ASSERT_TRUE(q.AbsorbRows(batch).ok());
  EXPECT_EQ(q.total_samples(), 103u);
  EXPECT_EQ(q.absorbed_samples(), 3u);
}

TEST(StreamingQuantizerTest, DimensionMismatchRejected) {
  StreamingQuantizer q = MakeQuantizer();
  EXPECT_FALSE(q.Absorb({1.0, 2.0}).ok());
}

TEST(StreamingQuantizerTest, SummariesStayConsistentUnderLoad) {
  StreamingQuantizer q = MakeQuantizer(5);
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    const double x = rng.Bernoulli(0.5) ? rng.Gaussian(0.0, 1.0)
                                        : rng.Gaussian(20.0, 1.0);
    ASSERT_TRUE(q.Absorb({x}).ok());
  }
  size_t covered = 0;
  for (const auto& s : q.summaries()) {
    covered += s.size;
    if (s.size > 0) {
      EXPECT_TRUE(s.bounds.valid());
      EXPECT_TRUE(s.bounds.ContainsPoint(s.centroid));
    }
  }
  EXPECT_EQ(covered, 300u);
}

}  // namespace
}  // namespace qens::clustering
