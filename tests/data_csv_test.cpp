// Tests for the CSV codec: parsing, column selection, bad-row handling,
// round trips, file IO.

#include "qens/data/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace qens::data {
namespace {

constexpr char kBasicCsv[] =
    "TEMP,PRES,PM2.5\n"
    "10.5,1010,80\n"
    "12.0,1008,75\n"
    "8.25,1015,90\n";

TEST(CsvTest, ParseBasicLastColumnTarget) {
  auto d = ParseCsvDataset(kBasicCsv);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->NumSamples(), 3u);
  EXPECT_EQ(d->NumFeatures(), 2u);
  EXPECT_EQ(d->target_name(), "PM2.5");
  EXPECT_DOUBLE_EQ(d->features()(2, 0), 8.25);
  EXPECT_DOUBLE_EQ(d->targets()(0, 0), 80.0);
}

TEST(CsvTest, NamedTargetColumn) {
  CsvReadOptions options;
  options.target_column = "TEMP";
  auto d = ParseCsvDataset(kBasicCsv, options);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->target_name(), "TEMP");
  EXPECT_EQ(d->NumFeatures(), 2u);  // PRES and PM2.5 become features.
  EXPECT_DOUBLE_EQ(d->targets()(1, 0), 12.0);
}

TEST(CsvTest, ExplicitFeatureColumns) {
  CsvReadOptions options;
  options.target_column = "PM2.5";
  options.feature_columns = {"TEMP"};
  auto d = ParseCsvDataset(kBasicCsv, options);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->NumFeatures(), 1u);
  EXPECT_EQ(d->feature_names()[0], "TEMP");
}

TEST(CsvTest, UnknownColumnFails) {
  CsvReadOptions options;
  options.target_column = "NOPE";
  EXPECT_TRUE(ParseCsvDataset(kBasicCsv, options).status().IsNotFound());
  options = CsvReadOptions();
  options.feature_columns = {"NOPE"};
  EXPECT_FALSE(ParseCsvDataset(kBasicCsv, options).ok());
}

TEST(CsvTest, FeatureEqualsTargetFails) {
  CsvReadOptions options;
  options.target_column = "TEMP";
  options.feature_columns = {"TEMP"};
  EXPECT_FALSE(ParseCsvDataset(kBasicCsv, options).ok());
}

TEST(CsvTest, SkipsBadRowsByDefault) {
  const std::string text =
      "a,b\n1,2\nNA,3\n4,5\nbroken-line\n6,7\n";
  auto d = ParseCsvDataset(text);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->NumSamples(), 3u);  // Rows "1,2", "4,5", "6,7".
}

TEST(CsvTest, StrictModeRejectsBadRows) {
  CsvReadOptions options;
  options.skip_bad_rows = false;
  EXPECT_FALSE(ParseCsvDataset("a,b\n1,2\nNA,3\n", options).ok());
  EXPECT_FALSE(ParseCsvDataset("a,b\n1\n", options).ok());
}

TEST(CsvTest, NoHeaderMode) {
  CsvReadOptions options;
  options.has_header = false;
  auto d = ParseCsvDataset("1,2,3\n4,5,6\n", options);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->NumSamples(), 2u);
  EXPECT_EQ(d->NumFeatures(), 2u);
  EXPECT_EQ(d->feature_names()[0], "c0");
  EXPECT_EQ(d->target_name(), "c2");
}

TEST(CsvTest, AlternateDelimiter) {
  CsvReadOptions options;
  options.delimiter = ';';
  auto d = ParseCsvDataset("a;b\n1;2\n", options);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->NumSamples(), 1u);
}

TEST(CsvTest, EmptyInputFails) {
  EXPECT_FALSE(ParseCsvDataset("").ok());
  EXPECT_FALSE(ParseCsvDataset("a,b\n").ok());  // Header only, no rows.
}

TEST(CsvTest, AllRowsBadFails) {
  EXPECT_FALSE(ParseCsvDataset("a,b\nx,y\np,q\n").ok());
}

TEST(CsvTest, FormatRoundTrip) {
  auto d = ParseCsvDataset(kBasicCsv);
  ASSERT_TRUE(d.ok());
  const std::string text = FormatCsvDataset(*d);
  auto back = ParseCsvDataset(text);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->NumSamples(), d->NumSamples());
  EXPECT_EQ(back->feature_names(), d->feature_names());
  EXPECT_DOUBLE_EQ(back->features()(2, 0), d->features()(2, 0));
}

TEST(CsvTest, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "qens_csv_test.csv").string();
  auto d = ParseCsvDataset(kBasicCsv);
  ASSERT_TRUE(d.ok());
  ASSERT_TRUE(WriteCsvDataset(*d, path).ok());
  auto back = ReadCsvDataset(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->NumSamples(), 3u);
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileFails) {
  EXPECT_TRUE(ReadCsvDataset("/no/such/file.csv").status().IsIOError());
}

}  // namespace
}  // namespace qens::data
