// Tests for the feature Normalizer: min-max and standard scaling, inverse
// transforms, box mapping, degenerate columns.

#include "qens/data/normalizer.h"

#include <gtest/gtest.h>

#include <cmath>

namespace qens::data {
namespace {

Matrix Sample() {
  return Matrix{{0, 100}, {5, 200}, {10, 300}};
}

TEST(NormalizerTest, MinMaxMapsToUnitInterval) {
  auto norm = Normalizer::Fit(Sample(), ScalingKind::kMinMax);
  ASSERT_TRUE(norm.ok());
  auto t = norm->Transform(Sample());
  ASSERT_TRUE(t.ok());
  EXPECT_DOUBLE_EQ((*t)(0, 0), 0.0);
  EXPECT_DOUBLE_EQ((*t)(1, 0), 0.5);
  EXPECT_DOUBLE_EQ((*t)(2, 0), 1.0);
  EXPECT_DOUBLE_EQ((*t)(0, 1), 0.0);
  EXPECT_DOUBLE_EQ((*t)(2, 1), 1.0);
}

TEST(NormalizerTest, StandardHasZeroMeanUnitVar) {
  auto norm = Normalizer::Fit(Sample(), ScalingKind::kStandard);
  ASSERT_TRUE(norm.ok());
  auto t = norm->Transform(Sample());
  ASSERT_TRUE(t.ok());
  for (size_t c = 0; c < 2; ++c) {
    double mean = 0, var = 0;
    for (size_t r = 0; r < 3; ++r) mean += (*t)(r, c);
    mean /= 3;
    for (size_t r = 0; r < 3; ++r) {
      var += ((*t)(r, c) - mean) * ((*t)(r, c) - mean);
    }
    var /= 3;
    EXPECT_NEAR(mean, 0.0, 1e-12);
    EXPECT_NEAR(var, 1.0, 1e-12);
  }
}

TEST(NormalizerTest, InverseTransformRoundTrips) {
  for (ScalingKind kind : {ScalingKind::kMinMax, ScalingKind::kStandard}) {
    auto norm = Normalizer::Fit(Sample(), kind);
    ASSERT_TRUE(norm.ok());
    auto t = norm->Transform(Sample());
    ASSERT_TRUE(t.ok());
    auto back = norm->InverseTransform(*t);
    ASSERT_TRUE(back.ok());
    EXPECT_LT(back->MaxAbsDiff(Sample()), 1e-9);
  }
}

TEST(NormalizerTest, DegenerateColumnMapsToZero) {
  Matrix constant{{5, 1}, {5, 2}, {5, 3}};
  auto norm = Normalizer::Fit(constant, ScalingKind::kMinMax);
  ASSERT_TRUE(norm.ok());
  auto t = norm->Transform(constant);
  ASSERT_TRUE(t.ok());
  EXPECT_DOUBLE_EQ((*t)(0, 0), 0.0);
  EXPECT_DOUBLE_EQ((*t)(2, 0), 0.0);
  // Inverse maps the degenerate column back to its constant value.
  auto back = norm->InverseTransform(*t);
  ASSERT_TRUE(back.ok());
  EXPECT_DOUBLE_EQ((*back)(1, 0), 5.0);
}

TEST(NormalizerTest, TransformBoxFollowsSameAffineMap) {
  auto norm = Normalizer::Fit(Sample(), ScalingKind::kMinMax);
  ASSERT_TRUE(norm.ok());
  auto box = query::HyperRectangle::FromFlatBounds({0, 5, 100, 300}).value();
  auto t = norm->TransformBox(box);
  ASSERT_TRUE(t.ok());
  EXPECT_DOUBLE_EQ(t->dim(0).lo, 0.0);
  EXPECT_DOUBLE_EQ(t->dim(0).hi, 0.5);
  EXPECT_DOUBLE_EQ(t->dim(1).lo, 0.0);
  EXPECT_DOUBLE_EQ(t->dim(1).hi, 1.0);
}

TEST(NormalizerTest, TransformAppliesToNewData) {
  auto norm = Normalizer::Fit(Sample(), ScalingKind::kMinMax);
  ASSERT_TRUE(norm.ok());
  Matrix fresh{{20, 400}};  // Outside the fitted range: extrapolates.
  auto t = norm->Transform(fresh);
  ASSERT_TRUE(t.ok());
  EXPECT_DOUBLE_EQ((*t)(0, 0), 2.0);
  EXPECT_DOUBLE_EQ((*t)(0, 1), 1.5);
}

TEST(NormalizerTest, Errors) {
  EXPECT_FALSE(Normalizer::Fit(Matrix(), ScalingKind::kMinMax).ok());
  auto norm = Normalizer::Fit(Sample(), ScalingKind::kMinMax).value();
  Matrix wrong(1, 3);
  EXPECT_FALSE(norm.Transform(wrong).ok());
  EXPECT_FALSE(norm.InverseTransform(wrong).ok());
  auto bad_box = query::HyperRectangle::FromFlatBounds({0, 1}).value();
  EXPECT_FALSE(norm.TransformBox(bad_box).ok());
}

}  // namespace
}  // namespace qens::data
