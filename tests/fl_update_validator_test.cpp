// Tests for the leader-side UpdateValidator: option validation, the finite
// check, the absolute and median/MAD norm bounds, and the holdout-loss
// screen with its reference-model anchor.

#include "qens/fl/update_validator.h"

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

namespace qens::fl {
namespace {

/// A 1-feature linear model y = w x + b.
ml::SequentialModel Linear(double w, double b) {
  ml::SequentialModel m;
  EXPECT_TRUE(m.AddLayer(1, 1, ml::Activation::kIdentity).ok());
  m.layer(0).weights()(0, 0) = w;
  m.layer(0).bias()[0] = b;
  return m;
}

UpdateValidator MakeValidator(const UpdateValidatorOptions& options) {
  auto validator = UpdateValidator::Create(options);
  EXPECT_TRUE(validator.ok()) << validator.status().ToString();
  return std::move(validator).value();
}

TEST(UpdateValidatorTest, CreateRejectsBadOptions) {
  UpdateValidatorOptions options;
  options.max_update_norm = -1.0;
  EXPECT_FALSE(UpdateValidator::Create(options).ok());
  options = {};
  options.norm_mad_k = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(UpdateValidator::Create(options).ok());
  options = {};
  options.holdout_loss_factor = 0.5;  // Would reject better-than-anchor.
  EXPECT_FALSE(UpdateValidator::Create(options).ok());
  options = {};
  options.min_updates_for_stats = 1;
  EXPECT_FALSE(UpdateValidator::Create(options).ok());
  EXPECT_TRUE(UpdateValidator::Create(UpdateValidatorOptions()).ok());
}

TEST(UpdateValidatorTest, FiniteCheckRejectsNaN) {
  const UpdateValidator validator = MakeValidator(UpdateValidatorOptions());
  const ml::SequentialModel reference = Linear(0, 0);
  std::vector<ml::SequentialModel> updates = {
      Linear(1, 0), Linear(std::numeric_limits<double>::quiet_NaN(), 0),
      Linear(2, 0)};
  auto report = validator.Validate(updates, reference);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->accepted, 2u);
  EXPECT_EQ(report->rejected_non_finite, 1u);
  EXPECT_FALSE(report->verdicts[1].accepted);
  EXPECT_EQ(report->verdicts[1].reason, RejectReason::kNonFinite);
  EXPECT_TRUE(std::isnan(report->verdicts[1].update_norm));
}

TEST(UpdateValidatorTest, AbsoluteNormBound) {
  UpdateValidatorOptions options;
  options.max_update_norm = 5.0;
  const UpdateValidator validator = MakeValidator(options);
  const ml::SequentialModel reference = Linear(0, 0);
  std::vector<ml::SequentialModel> updates = {Linear(1, 0), Linear(100, 0)};
  auto report = validator.Validate(updates, reference);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->verdicts[0].accepted);
  EXPECT_FALSE(report->verdicts[1].accepted);
  EXPECT_EQ(report->verdicts[1].reason, RejectReason::kAbsNormBound);
  EXPECT_NEAR(report->verdicts[0].update_norm, 1.0, 1e-12);
}

TEST(UpdateValidatorTest, MadOutlierRejected) {
  UpdateValidatorOptions options;
  options.norm_mad_k = 6.0;
  const UpdateValidator validator = MakeValidator(options);
  const ml::SequentialModel reference = Linear(0, 0);
  // Five near-identical honest norms and one far outlier.
  std::vector<ml::SequentialModel> updates = {
      Linear(1.00, 0), Linear(1.05, 0), Linear(0.95, 0),
      Linear(1.02, 0), Linear(0.98, 0), Linear(60, 0)};
  auto report = validator.Validate(updates, reference);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->rejected_norm_outlier, 1u);
  EXPECT_FALSE(report->verdicts[5].accepted);
  EXPECT_EQ(report->verdicts[5].reason, RejectReason::kNormOutlier);
  EXPECT_EQ(report->accepted, 5u);
}

TEST(UpdateValidatorTest, MadSkippedBelowMinUpdates) {
  UpdateValidatorOptions options;
  options.norm_mad_k = 6.0;
  options.min_updates_for_stats = 3;
  const UpdateValidator validator = MakeValidator(options);
  const ml::SequentialModel reference = Linear(0, 0);
  // Two updates cannot support a median/MAD test; both must pass.
  std::vector<ml::SequentialModel> updates = {Linear(1, 0), Linear(60, 0)};
  auto report = validator.Validate(updates, reference);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->accepted, 2u);
}

TEST(UpdateValidatorTest, HoldoutReferenceAnchorCatchesSignFlip) {
  UpdateValidatorOptions options;
  options.holdout_loss_factor = 3.0;
  const UpdateValidator validator = MakeValidator(options);
  // Ground truth y = x; the reference is a decent-but-imperfect model, the
  // flip mirrors the honest fit. Only two updates, so the median anchor is
  // unavailable (min_updates_for_stats = 3) and the reference anchors alone.
  const ml::SequentialModel reference = Linear(0.9, 0);
  std::vector<ml::SequentialModel> updates = {Linear(1.0, 0),
                                              Linear(-1.0, 0)};
  Matrix x{{1.0}, {2.0}, {3.0}, {4.0}};
  Matrix y = x;
  auto report = validator.Validate(updates, reference, &x, &y);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->verdicts[0].accepted);
  EXPECT_FALSE(report->verdicts[1].accepted);
  EXPECT_EQ(report->verdicts[1].reason, RejectReason::kHoldoutLoss);
  EXPECT_EQ(report->rejected_holdout, 1u);
  EXPECT_GT(report->verdicts[1].holdout_loss,
            report->verdicts[0].holdout_loss);
}

TEST(UpdateValidatorTest, HoldoutMedianAnchorCatchesOutlierLoss) {
  UpdateValidatorOptions options;
  options.holdout_loss_factor = 3.0;
  const UpdateValidator validator = MakeValidator(options);
  // The reference is terrible (anchor would be loose), but the honest
  // median tightens the bound: min(median, reference) anchors.
  const ml::SequentialModel reference = Linear(10, 0);
  std::vector<ml::SequentialModel> updates = {
      Linear(1.01, 0), Linear(0.99, 0), Linear(1.0, 0), Linear(-1.0, 0)};
  Matrix x{{1.0}, {2.0}, {3.0}, {4.0}};
  Matrix y = x;
  auto report = validator.Validate(updates, reference, &x, &y);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->accepted, 3u);
  EXPECT_FALSE(report->verdicts[3].accepted);
  EXPECT_EQ(report->verdicts[3].reason, RejectReason::kHoldoutLoss);
}

TEST(UpdateValidatorTest, HoldoutSkippedWithoutData) {
  UpdateValidatorOptions options;
  options.holdout_loss_factor = 3.0;
  const UpdateValidator validator = MakeValidator(options);
  EXPECT_TRUE(validator.wants_holdout());
  const ml::SequentialModel reference = Linear(0.9, 0);
  std::vector<ml::SequentialModel> updates = {Linear(1, 0), Linear(-1, 0)};
  auto report = validator.Validate(updates, reference);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->accepted, 2u);  // No holdout data: the check is off.
}

TEST(UpdateValidatorTest, ArchitectureMismatchIsHardError) {
  const UpdateValidator validator = MakeValidator(UpdateValidatorOptions());
  const ml::SequentialModel reference = Linear(0, 0);
  ml::SequentialModel other;
  ASSERT_TRUE(other.AddLayer(1, 2, ml::Activation::kIdentity).ok());
  ASSERT_TRUE(other.AddLayer(2, 1, ml::Activation::kIdentity).ok());
  std::vector<ml::SequentialModel> updates;
  updates.push_back(Linear(1, 0));
  updates.push_back(std::move(other));
  EXPECT_FALSE(validator.Validate(updates, reference).ok());
}

TEST(UpdateValidatorTest, NonFiniteReferenceIsHardError) {
  const UpdateValidator validator = MakeValidator(UpdateValidatorOptions());
  const ml::SequentialModel reference =
      Linear(std::numeric_limits<double>::infinity(), 0);
  std::vector<ml::SequentialModel> updates = {Linear(1, 0)};
  EXPECT_FALSE(validator.Validate(updates, reference).ok());
}

TEST(UpdateValidatorTest, ReportSummaryListsReasons) {
  const UpdateValidator validator = MakeValidator(UpdateValidatorOptions());
  const ml::SequentialModel reference = Linear(0, 0);
  std::vector<ml::SequentialModel> updates = {
      Linear(1, 0), Linear(std::numeric_limits<double>::quiet_NaN(), 0)};
  auto report = validator.Validate(updates, reference);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->rejected(), 1u);
  EXPECT_NE(report->Summary().find("non_finite"), std::string::npos);
}

}  // namespace
}  // namespace qens::fl
