// Tests for the versioned binary wire format (ml::ModelCodec): bit-exact
// raw round-trips over random architectures/params (NaN/Inf/denormals
// included), closed-form size agreement, per-level quantization error
// bounds, top-k delta semantics, and strict decode validation (corruption,
// truncation, trailing bytes).

#include "qens/ml/model_codec.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>

#include "qens/common/rng.h"

namespace qens::ml {
namespace {

uint64_t BitsOf(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

/// Random architecture (1-3 chained dense layers) with params drawn from a
/// wide magnitude range, salted with specials when requested.
SequentialModel RandomModel(Rng* rng, bool with_specials) {
  SequentialModel model;
  const size_t layers = 1 + rng->UniformInt(3);
  size_t in = 1 + rng->UniformInt(6);
  for (size_t l = 0; l < layers; ++l) {
    const size_t out = 1 + rng->UniformInt(6);
    const auto act = static_cast<Activation>(rng->UniformInt(4));
    EXPECT_TRUE(model.AddLayer(in, out, act).ok());
    in = out;
  }
  std::vector<double> params(model.ParameterCount());
  for (double& p : params) {
    const double mag = std::pow(10.0, rng->Uniform(-12, 12));
    p = (rng->Bernoulli(0.5) ? 1 : -1) * rng->Uniform(0, 1) * mag;
  }
  if (with_specials && !params.empty()) {
    params[rng->UniformInt(params.size())] =
        std::numeric_limits<double>::quiet_NaN();
    params[rng->UniformInt(params.size())] =
        std::numeric_limits<double>::infinity();
    params[rng->UniformInt(params.size())] =
        -std::numeric_limits<double>::infinity();
    params[rng->UniformInt(params.size())] =
        std::numeric_limits<double>::denorm_min();
    params[rng->UniformInt(params.size())] = -0.0;
  }
  EXPECT_TRUE(model.SetParameters(params).ok());
  return model;
}

TEST(ModelCodecTest, KindNamesRoundTrip) {
  for (WireCodecKind kind :
       {WireCodecKind::kRawF64, WireCodecKind::kQuant8, WireCodecKind::kQuant4,
        WireCodecKind::kQuant2, WireCodecKind::kTopK}) {
    auto parsed = ParseWireCodecKind(WireCodecKindName(kind));
    ASSERT_TRUE(parsed.ok()) << WireCodecKindName(kind);
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(ParseWireCodecKind("gzip").ok());
  EXPECT_EQ(WireCodecBits(WireCodecKind::kQuant8), 8);
  EXPECT_EQ(WireCodecBits(WireCodecKind::kQuant4), 4);
  EXPECT_EQ(WireCodecBits(WireCodecKind::kQuant2), 2);
  EXPECT_EQ(WireCodecBits(WireCodecKind::kRawF64), 0);
  EXPECT_FALSE(WireCodecIsLossy(WireCodecKind::kRawF64));
  EXPECT_TRUE(WireCodecIsLossy(WireCodecKind::kQuant8));
  EXPECT_TRUE(WireCodecIsLossy(WireCodecKind::kTopK));
}

TEST(ModelCodecTest, RawRoundTripIsBitExact) {
  // Property: encode -> decode reproduces every parameter bit pattern,
  // NaN / +-Inf / denormals / negative zero included, over 50 random
  // architectures.
  Rng rng(101);
  for (int trial = 0; trial < 50; ++trial) {
    SequentialModel model = RandomModel(&rng, /*with_specials=*/true);
    auto encoded = EncodeModel(model, WireCodecKind::kRawF64);
    ASSERT_TRUE(encoded.ok()) << encoded.status().ToString();
    auto decoded = DecodeModel(*encoded);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    ASSERT_TRUE(decoded->SameArchitecture(model));
    const std::vector<double> want = model.GetParameters();
    const std::vector<double> got = decoded->GetParameters();
    ASSERT_EQ(want.size(), got.size());
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(BitsOf(want[i]), BitsOf(got[i])) << "param " << i;
    }
  }
}

TEST(ModelCodecTest, ClosedFormSizeMatchesEncoderExactly) {
  // EncodedModelBytes must equal Encode*(...).size() for every codec and
  // architecture — the planner's exact pinning depends on it.
  Rng rng(202);
  for (int trial = 0; trial < 30; ++trial) {
    SequentialModel model = RandomModel(&rng, trial % 2 == 0);
    SequentialModel reference = model.Clone();
    for (WireCodecKind kind :
         {WireCodecKind::kRawF64, WireCodecKind::kQuant8,
          WireCodecKind::kQuant4, WireCodecKind::kQuant2}) {
      auto absolute = EncodeModel(model, kind);
      ASSERT_TRUE(absolute.ok());
      EXPECT_EQ(absolute->size(), EncodedModelBytes(model, kind))
          << WireCodecKindName(kind);
      auto delta = EncodeModelDelta(model, reference, kind);
      ASSERT_TRUE(delta.ok());
      EXPECT_EQ(delta->size(), EncodedModelBytes(model, kind));
    }
    for (double fraction : {0.01, 0.1, 0.5, 1.0}) {
      auto delta =
          EncodeModelDelta(model, reference, WireCodecKind::kTopK, fraction);
      ASSERT_TRUE(delta.ok());
      EXPECT_EQ(delta->size(),
                EncodedModelBytes(model, WireCodecKind::kTopK, fraction));
    }
  }
}

TEST(ModelCodecTest, QuantizedErrorWithinPerLevelBound) {
  // Per-tensor symmetric quantization: the worst-case absolute error on a
  // finite value is half a step, step = max_abs / (2^(b-1) - 1).
  Rng rng(303);
  for (WireCodecKind kind : {WireCodecKind::kQuant8, WireCodecKind::kQuant4,
                             WireCodecKind::kQuant2}) {
    const int qmax = (1 << (WireCodecBits(kind) - 1)) - 1;
    for (int trial = 0; trial < 20; ++trial) {
      SequentialModel model;
      ASSERT_TRUE(model.AddLayer(4, 3, Activation::kRelu).ok());
      ASSERT_TRUE(model.AddLayer(3, 1, Activation::kIdentity).ok());
      std::vector<double> params(model.ParameterCount());
      for (double& p : params) p = rng.Uniform(-5, 5);
      ASSERT_TRUE(model.SetParameters(params).ok());
      auto decoded = DecodeModel(*EncodeModel(model, kind));
      ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
      // Bound per tensor: weights(0), bias(0), weights(1), bias(1).
      const std::vector<double> got = decoded->GetParameters();
      const size_t tensor_sizes[] = {12, 3, 3, 1};
      size_t offset = 0;
      for (const size_t count : tensor_sizes) {
        double max_abs = 0;
        for (size_t i = 0; i < count; ++i) {
          max_abs = std::max(max_abs, std::fabs(params[offset + i]));
        }
        const double step = max_abs / qmax;
        for (size_t i = 0; i < count; ++i) {
          EXPECT_LE(std::fabs(got[offset + i] - params[offset + i]),
                    step * 0.5000001)
              << WireCodecKindName(kind) << " offset " << offset + i;
        }
        offset += count;
      }
    }
  }
}

TEST(ModelCodecTest, QuantizedDeltaMasksNonFiniteToReference) {
  // A quantized wire cannot transmit NaN/Inf: non-finite delta coordinates
  // encode as slot 0 and decode to the reference value exactly.
  SequentialModel reference;
  ASSERT_TRUE(reference.AddLayer(2, 1, Activation::kIdentity).ok());
  ASSERT_TRUE(reference.SetParameters({1.0, 2.0, 3.0}).ok());
  SequentialModel model = reference.Clone();
  ASSERT_TRUE(model
                  .SetParameters({std::numeric_limits<double>::quiet_NaN(),
                                  std::numeric_limits<double>::infinity(), 3.5})
                  .ok());
  auto encoded = EncodeModelDelta(model, reference, WireCodecKind::kQuant8);
  ASSERT_TRUE(encoded.ok());
  auto decoded = DecodeModelDelta(*encoded, reference);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  const std::vector<double> got = decoded->GetParameters();
  EXPECT_DOUBLE_EQ(got[0], 1.0);  // NaN delta -> reference.
  EXPECT_DOUBLE_EQ(got[1], 2.0);  // Inf delta -> reference.
  EXPECT_NEAR(got[2], 3.5, 0.5 / 127 + 1e-12);
}

TEST(ModelCodecTest, TopKKeepsLargestMagnitudeDeltas) {
  SequentialModel reference;
  ASSERT_TRUE(reference.AddLayer(4, 1, Activation::kIdentity).ok());
  ASSERT_TRUE(reference.SetParameters({0, 0, 0, 0, 0}).ok());
  SequentialModel model = reference.Clone();
  // Deltas: |0.1| < |−3| < |7|; k=2 keeps indices 2 (7) and 4 (−3).
  ASSERT_TRUE(model.SetParameters({0.1, 0.0, 7.0, 0.0, -3.0}).ok());
  auto encoded =
      EncodeModelDelta(model, reference, WireCodecKind::kTopK, 2.0 / 5);
  ASSERT_TRUE(encoded.ok());
  EXPECT_EQ(encoded->size(),
            EncodedModelBytes(model, WireCodecKind::kTopK, 2.0 / 5));
  auto decoded = DecodeModelDelta(*encoded, reference);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  const std::vector<double> got = decoded->GetParameters();
  EXPECT_DOUBLE_EQ(got[0], 0.0);  // Dropped (smallest magnitude).
  EXPECT_DOUBLE_EQ(got[1], 0.0);
  EXPECT_DOUBLE_EQ(got[2], 7.0);
  EXPECT_DOUBLE_EQ(got[3], 0.0);
  EXPECT_DOUBLE_EQ(got[4], -3.0);
}

TEST(ModelCodecTest, TopKCountClampsSanely) {
  EXPECT_EQ(TopKCount(0, 0.1), 0u);
  EXPECT_EQ(TopKCount(100, 0.1), 10u);
  EXPECT_EQ(TopKCount(100, 0.101), 11u);  // ceil.
  EXPECT_EQ(TopKCount(100, 0.0), 1u);     // Floor at one coordinate.
  EXPECT_EQ(TopKCount(100, -3.0), 1u);
  EXPECT_EQ(TopKCount(100, 1.0), 100u);
  EXPECT_EQ(TopKCount(100, 7.0), 100u);   // Ceiling at all coordinates.
}

TEST(ModelCodecTest, AbsoluteTopKRejected) {
  SequentialModel model;
  ASSERT_TRUE(model.AddLayer(2, 1, Activation::kIdentity).ok());
  EXPECT_FALSE(EncodeModel(model, WireCodecKind::kTopK).ok());
}

TEST(ModelCodecTest, DeltaAndAbsoluteDecodersAreNotInterchangeable) {
  SequentialModel model;
  ASSERT_TRUE(model.AddLayer(2, 1, Activation::kIdentity).ok());
  ASSERT_TRUE(model.SetParameters({1, 2, 3}).ok());
  auto absolute = EncodeModel(model, WireCodecKind::kRawF64);
  ASSERT_TRUE(absolute.ok());
  auto delta = EncodeModelDelta(model, model, WireCodecKind::kRawF64);
  ASSERT_TRUE(delta.ok());
  EXPECT_FALSE(DecodeModel(*delta).ok());
  EXPECT_FALSE(DecodeModelDelta(*absolute, model).ok());
  // Wrong-architecture reference is rejected too.
  SequentialModel other;
  ASSERT_TRUE(other.AddLayer(3, 1, Activation::kIdentity).ok());
  EXPECT_FALSE(DecodeModelDelta(*delta, other).ok());
  EXPECT_FALSE(EncodeModelDelta(model, other, WireCodecKind::kRawF64).ok());
}

TEST(ModelCodecTest, StrictDecodeRejectsCorruption) {
  SequentialModel model;
  ASSERT_TRUE(model.AddLayer(3, 2, Activation::kTanh).ok());
  ASSERT_TRUE(model.AddLayer(2, 1, Activation::kIdentity).ok());
  auto encoded = EncodeModel(model, WireCodecKind::kRawF64);
  ASSERT_TRUE(encoded.ok());
  const std::string& good = *encoded;

  EXPECT_TRUE(DecodeModel(good).ok());
  // Empty / truncated at every prefix length.
  EXPECT_FALSE(DecodeModel("").ok());
  for (size_t len : {1u, 4u, 11u, 12u, 20u, 30u}) {
    ASSERT_LT(len, good.size());
    EXPECT_FALSE(DecodeModel(good.substr(0, len)).ok()) << "len " << len;
  }
  EXPECT_FALSE(DecodeModel(good.substr(0, good.size() - 1)).ok());
  // Trailing garbage after a well-formed payload.
  EXPECT_FALSE(DecodeModel(good + std::string(1, '\0')).ok());
  EXPECT_FALSE(DecodeModel(good + "x").ok());
  // Bad magic / version / codec byte / flags.
  std::string bad = good;
  bad[0] = 'X';
  EXPECT_FALSE(DecodeModel(bad).ok());
  bad = good;
  bad[4] = 2;  // version 2
  EXPECT_FALSE(DecodeModel(bad).ok());
  bad = good;
  bad[6] = 9;  // unknown codec
  EXPECT_FALSE(DecodeModel(bad).ok());
  bad = good;
  bad[7] = char(0x80);  // unknown flag bit
  EXPECT_FALSE(DecodeModel(bad).ok());
  // Unknown activation byte (first layer spec at offset 12, act at +8).
  bad = good;
  bad[12 + 8] = 17;
  EXPECT_FALSE(DecodeModel(bad).ok());
  // Zero layer width.
  bad = good;
  bad[12] = bad[13] = bad[14] = bad[15] = 0;
  EXPECT_FALSE(DecodeModel(bad).ok());
  // Broken layer chain (second layer's in != first layer's out).
  bad = good;
  bad[12 + 9] = 5;
  EXPECT_FALSE(DecodeModel(bad).ok());
  // param_count disagreeing with the architecture (u64 after layer specs).
  bad = good;
  bad[12 + 18] = char(bad[12 + 18] + 1);
  EXPECT_FALSE(DecodeModel(bad).ok());
}

TEST(ModelCodecTest, StrictDecodeRejectsQuantPayloadCorruption) {
  SequentialModel model;
  ASSERT_TRUE(model.AddLayer(3, 1, Activation::kIdentity).ok());
  ASSERT_TRUE(model.SetParameters({1.0, -2.0, 0.5, 0.25}).ok());
  auto encoded = EncodeModel(model, WireCodecKind::kQuant2);
  ASSERT_TRUE(encoded.ok());
  const std::string& good = *encoded;
  EXPECT_TRUE(DecodeModel(good).ok());

  // 2-bit slots live in {0,1,2}; force a 3 into the weights tensor.
  // Layout: header(12 + 9 + 8 = 29) + scale(8) + packed weights byte.
  std::string bad = good;
  bad[29 + 8] = char(0xFF);
  EXPECT_FALSE(DecodeModel(bad).ok());
  // Non-finite tensor scale.
  bad = good;
  for (int i = 0; i < 8; ++i) bad[29 + i] = char(0xFF);  // -NaN bit pattern.
  EXPECT_FALSE(DecodeModel(bad).ok());
  // Truncated mid-payload.
  EXPECT_FALSE(DecodeModel(good.substr(0, good.size() - 1)).ok());
  // Trailing byte.
  EXPECT_FALSE(DecodeModel(good + "Z").ok());
}

TEST(ModelCodecTest, StrictDecodeRejectsTopKCorruption) {
  SequentialModel reference;
  ASSERT_TRUE(reference.AddLayer(4, 1, Activation::kIdentity).ok());
  ASSERT_TRUE(reference.SetParameters({0, 0, 0, 0, 0}).ok());
  SequentialModel model = reference.Clone();
  ASSERT_TRUE(model.SetParameters({1, 0, 2, 0, 3}).ok());
  auto encoded =
      EncodeModelDelta(model, reference, WireCodecKind::kTopK, 3.0 / 5);
  ASSERT_TRUE(encoded.ok());
  const std::string& good = *encoded;
  ASSERT_TRUE(DecodeModelDelta(good, reference).ok());

  // Header is 12 + 9 + 8 = 29; k(u64) then (u32 idx, f64 value) entries.
  // Out-of-range k.
  std::string bad = good;
  bad[29] = 99;
  EXPECT_FALSE(DecodeModelDelta(bad, reference).ok());
  // Out-of-range index.
  bad = good;
  bad[29 + 8] = 100;
  EXPECT_FALSE(DecodeModelDelta(bad, reference).ok());
  // Non-increasing indices (duplicate the first index into the second).
  bad = good;
  bad[29 + 8 + 12] = bad[29 + 8];
  EXPECT_FALSE(DecodeModelDelta(bad, reference).ok());
  EXPECT_FALSE(DecodeModelDelta(good.substr(0, good.size() - 3),
                                reference).ok());
  EXPECT_FALSE(DecodeModelDelta(good + "!", reference).ok());
}

TEST(ModelCodecTest, EmptyModelRoundTrips) {
  SequentialModel empty;
  auto encoded = EncodeModel(empty, WireCodecKind::kRawF64);
  ASSERT_TRUE(encoded.ok());
  EXPECT_EQ(encoded->size(), 20u);  // Bare header, no layers, no payload.
  auto decoded = DecodeModel(*encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->num_layers(), 0u);
}

TEST(ModelCodecTest, DownlinkFallsBackToRawForTopK) {
  WireOptions options;
  options.codec = WireCodecKind::kTopK;
  EXPECT_EQ(DownlinkKind(options), WireCodecKind::kRawF64);
  EXPECT_EQ(UplinkKind(options), WireCodecKind::kTopK);
  options.codec = WireCodecKind::kQuant4;
  EXPECT_EQ(DownlinkKind(options), WireCodecKind::kQuant4);
  EXPECT_EQ(UplinkKind(options), WireCodecKind::kQuant4);
}

TEST(ModelCodecTest, QuantizedAbsoluteRoundTripOverRandomModels) {
  // Lossy but never invalid: decode(encode(m)) succeeds and yields finite
  // params for finite inputs, across codecs and random architectures.
  Rng rng(404);
  for (int trial = 0; trial < 20; ++trial) {
    SequentialModel model = RandomModel(&rng, /*with_specials=*/false);
    for (WireCodecKind kind : {WireCodecKind::kQuant8, WireCodecKind::kQuant4,
                               WireCodecKind::kQuant2}) {
      auto decoded = DecodeModel(*EncodeModel(model, kind));
      ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
      ASSERT_TRUE(decoded->SameArchitecture(model));
      for (const double p : decoded->GetParameters()) {
        EXPECT_TRUE(std::isfinite(p));
      }
    }
  }
}

}  // namespace
}  // namespace qens::ml
