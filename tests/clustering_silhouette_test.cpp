// Tests for the silhouette coefficient and the K sweep.

#include "qens/clustering/silhouette.h"

#include <gtest/gtest.h>

#include "qens/common/rng.h"

namespace qens::clustering {
namespace {

/// `blobs` well-separated 1-D blobs of `per` points each.
Matrix MakeBlobs(size_t blobs, size_t per, uint64_t seed) {
  Rng rng(seed);
  Matrix data(blobs * per, 1);
  for (size_t b = 0; b < blobs; ++b) {
    for (size_t i = 0; i < per; ++i) {
      data(b * per + i, 0) = 100.0 * static_cast<double>(b) +
                             rng.Gaussian(0.0, 1.0);
    }
  }
  return data;
}

std::vector<size_t> TrueAssignment(size_t blobs, size_t per) {
  std::vector<size_t> a(blobs * per);
  for (size_t b = 0; b < blobs; ++b) {
    for (size_t i = 0; i < per; ++i) a[b * per + i] = b;
  }
  return a;
}

TEST(SilhouetteTest, WellSeparatedBlobsScoreHigh) {
  const Matrix data = MakeBlobs(3, 30, 1);
  auto s = MeanSilhouette(data, TrueAssignment(3, 30), 3);
  ASSERT_TRUE(s.ok());
  EXPECT_GT(*s, 0.9);
}

TEST(SilhouetteTest, WrongAssignmentScoresLow) {
  const Matrix data = MakeBlobs(2, 20, 2);
  // Alternate labels regardless of geometry: terrible clustering.
  std::vector<size_t> bad(40);
  for (size_t i = 0; i < 40; ++i) bad[i] = i % 2;
  auto good = MeanSilhouette(data, TrueAssignment(2, 20), 2);
  auto scrambled = MeanSilhouette(data, bad, 2);
  ASSERT_TRUE(good.ok());
  ASSERT_TRUE(scrambled.ok());
  EXPECT_GT(*good, *scrambled);
  EXPECT_LT(*scrambled, 0.1);
}

TEST(SilhouetteTest, BoundedInUnitInterval) {
  Rng rng(3);
  Matrix data(60, 2);
  for (double& v : data.data()) v = rng.Uniform(-10, 10);
  std::vector<size_t> assignment(60);
  for (size_t i = 0; i < 60; ++i) {
    assignment[i] = static_cast<size_t>(rng.UniformInt(uint64_t{4}));
  }
  auto s = MeanSilhouette(data, assignment, 4);
  ASSERT_TRUE(s.ok());
  EXPECT_GE(*s, -1.0);
  EXPECT_LE(*s, 1.0);
}

TEST(SilhouetteTest, Errors) {
  Matrix data{{1.0}, {2.0}};
  EXPECT_FALSE(MeanSilhouette(Matrix(), {}, 2).ok());
  EXPECT_FALSE(MeanSilhouette(data, {0}, 2).ok());         // Size mismatch.
  EXPECT_FALSE(MeanSilhouette(data, {0, 5}, 2).ok());      // Out of range.
  EXPECT_FALSE(MeanSilhouette(data, {0, 0}, 2).ok());      // One cluster.
}

TEST(SweepKTest, SilhouettePeaksAtTrueK) {
  const Matrix data = MakeBlobs(4, 25, 5);
  KMeansOptions options;
  options.seed = 11;
  auto sweep = SweepK(data, 2, 8, options);
  ASSERT_TRUE(sweep.ok());
  ASSERT_EQ(sweep->size(), 7u);
  auto best = BestKBySilhouette(*sweep);
  ASSERT_TRUE(best.ok());
  EXPECT_EQ(*best, 4u);
}

TEST(SweepKTest, InertiaMonotoneNonIncreasing) {
  const Matrix data = MakeBlobs(3, 20, 6);
  KMeansOptions options;
  options.seed = 13;
  auto sweep = SweepK(data, 2, 6, options);
  ASSERT_TRUE(sweep.ok());
  for (size_t i = 1; i < sweep->size(); ++i) {
    EXPECT_LE((*sweep)[i].inertia, (*sweep)[i - 1].inertia * 1.05)
        << "k=" << (*sweep)[i].k;
  }
}

TEST(SweepKTest, Errors) {
  Matrix data = MakeBlobs(2, 10, 7);
  KMeansOptions options;
  EXPECT_FALSE(SweepK(data, 1, 4, options).ok());
  EXPECT_FALSE(SweepK(data, 5, 4, options).ok());
  EXPECT_FALSE(BestKBySilhouette({}).ok());
}

}  // namespace
}  // namespace qens::clustering
