// Compile-level test: the umbrella header is self-contained and the major
// public entry points are reachable through it alone.

#include "qens/qens.h"

#include <gtest/gtest.h>

namespace qens {
namespace {

TEST(UmbrellaTest, TouchesEverySubsystem) {
  // common
  EXPECT_TRUE(Status::OK().ok());
  Rng rng(1);
  EXPECT_LT(rng.Uniform(), 1.0);
  // tensor
  Matrix m{{1, 2}, {3, 4}};
  EXPECT_EQ(m.Transposed()(0, 1), 3.0);
  // ml
  auto model = ml::BuildModel(ml::ModelKind::kLinearRegression, 2, &rng);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->ParameterCount(), 3u);
  // clustering
  clustering::KMeansOptions km;
  km.k = 2;
  EXPECT_TRUE(clustering::KMeans(km).Fit(m).ok());
  // query
  auto box = query::HyperRectangle::FromFlatBounds({0, 1});
  ASSERT_TRUE(box.ok());
  EXPECT_DOUBLE_EQ(box->Volume(), 1.0);
  // data
  data::AirQualityOptions aq;
  aq.num_stations = 1;
  aq.samples_per_station = 10;
  EXPECT_TRUE(data::AirQualityGenerator(aq).GenerateStation(0).ok());
  data::HospitalOptions hosp;
  hosp.num_hospitals = 1;
  hosp.patients_per_hospital = 10;
  EXPECT_TRUE(data::HospitalGenerator(hosp).GenerateHospital(0).ok());
  // selection
  EXPECT_STREQ(selection::PolicyKindName(selection::PolicyKind::kQueryDriven),
               "query-driven");
  // sim
  sim::CostModel cost;
  EXPECT_GT(cost.TrainingSeconds(100, 10, 1.0), 0.0);
  // fl
  EXPECT_STREQ(fl::AggregationKindName(fl::AggregationKind::kModelAveraging),
               "model-averaging");
  EXPECT_EQ(fl::Figure7Mechanisms().size(), 4u);
}

}  // namespace
}  // namespace qens
