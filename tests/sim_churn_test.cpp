// Pins the ChurnPlan contract: option validation, determinism (one seed ->
// one trajectory, regardless of query order), the round-0 full-fleet
// guarantee, interval-length bounds, and the post-horizon freeze.

#include <gtest/gtest.h>

#include "qens/sim/churn.h"

namespace qens::sim {
namespace {

ChurnPlanOptions ChurnyOptions(uint64_t seed = 7) {
  ChurnPlanOptions options;
  options.seed = seed;
  options.churn_rate = 0.6;
  options.churn_horizon = 40;
  return options;
}

TEST(ChurnPlanTest, ValidatesOptions) {
  ChurnPlanOptions bad_rate;
  bad_rate.churn_rate = 1.5;
  EXPECT_FALSE(ChurnPlan::Create(4, bad_rate).ok());
  bad_rate.churn_rate = -0.1;
  EXPECT_FALSE(ChurnPlan::Create(4, bad_rate).ok());

  ChurnPlanOptions bad_horizon = ChurnyOptions();
  bad_horizon.churn_horizon = 0;
  EXPECT_FALSE(ChurnPlan::Create(4, bad_horizon).ok());

  ChurnPlanOptions bad_down = ChurnyOptions();
  bad_down.min_down_rounds = 5;
  bad_down.max_down_rounds = 2;
  EXPECT_FALSE(ChurnPlan::Create(4, bad_down).ok());
  bad_down.min_down_rounds = 0;
  EXPECT_FALSE(ChurnPlan::Create(4, bad_down).ok());

  ChurnPlanOptions bad_up = ChurnyOptions();
  bad_up.min_up_rounds = 9;
  bad_up.max_up_rounds = 3;
  EXPECT_FALSE(ChurnPlan::Create(4, bad_up).ok());

  // A zero-rate plan skips the interval checks entirely (nothing is drawn).
  ChurnPlanOptions off;
  off.churn_rate = 0.0;
  off.churn_horizon = 0;
  EXPECT_TRUE(ChurnPlan::Create(4, off).ok());
}

TEST(ChurnPlanTest, ZeroRateMeansStaticFleet) {
  ChurnPlanOptions options;
  options.churn_rate = 0.0;
  auto plan = ChurnPlan::Create(6, options);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->NumChurners(), 0u);
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_FALSE(plan->node(i).churner);
    for (size_t round = 0; round < 100; ++round) {
      EXPECT_TRUE(plan->IsPresent(i, round));
    }
  }
}

TEST(ChurnPlanTest, SameSeedSamePlanDifferentSeedDifferentPlan) {
  auto a = ChurnPlan::Create(12, ChurnyOptions(7));
  auto b = ChurnPlan::Create(12, ChurnyOptions(7));
  auto c = ChurnPlan::Create(12, ChurnyOptions(8));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(c.ok());
  size_t differences = 0;
  for (size_t i = 0; i < 12; ++i) {
    EXPECT_EQ(a->node(i).churner, b->node(i).churner);
    EXPECT_EQ(a->node(i).transitions, b->node(i).transitions);
    if (a->node(i).transitions != c->node(i).transitions) ++differences;
  }
  EXPECT_GT(differences, 0u);
}

TEST(ChurnPlanTest, EveryNodeIsPresentAtRoundZero) {
  ChurnPlanOptions options = ChurnyOptions();
  options.churn_rate = 1.0;  // Every node churns.
  auto plan = ChurnPlan::Create(16, options);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->NumChurners(), 16u);
  for (size_t i = 0; i < 16; ++i) {
    EXPECT_TRUE(plan->IsPresent(i, 0)) << "node " << i;
  }
}

TEST(ChurnPlanTest, IntervalLengthsRespectBounds) {
  ChurnPlanOptions options = ChurnyOptions(21);
  options.churn_rate = 1.0;
  options.min_down_rounds = 2;
  options.max_down_rounds = 3;
  options.min_up_rounds = 4;
  options.max_up_rounds = 5;
  auto plan = ChurnPlan::Create(10, options);
  ASSERT_TRUE(plan.ok());
  for (size_t i = 0; i < 10; ++i) {
    const std::vector<size_t>& t = plan->node(i).transitions;
    ASSERT_FALSE(t.empty());
    // transitions[0] ends the first up interval, which starts at round 0.
    EXPECT_GE(t[0], options.min_up_rounds);
    for (size_t j = 0; j + 1 < t.size(); ++j) {
      ASSERT_LT(t[j], t[j + 1]);
      const size_t len = t[j + 1] - t[j];
      if (j % 2 == 0) {  // Down interval.
        EXPECT_GE(len, options.min_down_rounds);
        EXPECT_LE(len, options.max_down_rounds);
      } else {  // Up interval (the last one may be cut by the horizon).
        EXPECT_GE(len, 1u);
        EXPECT_LE(len, options.max_up_rounds);
      }
    }
  }
}

TEST(ChurnPlanTest, PresenceMatchesTransitionParityAndFreezesPastHorizon) {
  ChurnPlanOptions options = ChurnyOptions(3);
  options.churn_rate = 1.0;
  auto plan = ChurnPlan::Create(8, options);
  ASSERT_TRUE(plan.ok());
  for (size_t i = 0; i < 8; ++i) {
    const std::vector<size_t>& t = plan->node(i).transitions;
    for (size_t round = 0; round < options.churn_horizon + 20; ++round) {
      size_t flips = 0;
      for (size_t flip : t) {
        if (flip <= round) ++flips;
      }
      EXPECT_EQ(plan->IsPresent(i, round), flips % 2 == 0)
          << "node " << i << " round " << round;
    }
    // Far past the horizon the state never changes again.
    const bool frozen = plan->IsPresent(i, options.churn_horizon + 100);
    EXPECT_EQ(plan->IsPresent(i, options.churn_horizon + 1000), frozen);
  }
}

TEST(ChurnPlanTest, DescribeMentionsSchedule) {
  auto off = ChurnPlan::Create(4, ChurnPlanOptions{});
  ASSERT_TRUE(off.ok());
  EXPECT_NE(off->Describe().find("no churners"), std::string::npos);

  ChurnPlanOptions options = ChurnyOptions();
  options.churn_rate = 1.0;
  auto plan = ChurnPlan::Create(4, options);
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->Describe().find("down@"), std::string::npos);
}

}  // namespace
}  // namespace qens::sim
