// Unit tests for the cluster-rectangle spatial index (selection/
// cluster_index.*): build-time validation, the epsilon-aware pruning
// contract (candidates are a provable superset of the supporting set),
// bitwise scan/index ranking equality on hand-built geometry, stale-index
// detection, and the RankingsBitwiseEqual checker itself.

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "qens/selection/cluster_index.h"
#include "qens/selection/ranking.h"

namespace qens::selection {
namespace {

clustering::ClusterSummary MakeCluster(const std::vector<double>& flat,
                                       size_t size) {
  clustering::ClusterSummary cluster;
  if (size > 0) {
    cluster.bounds = query::HyperRectangle::FromFlatBounds(flat).value();
  }
  cluster.size = size;
  return cluster;
}

NodeProfile MakeProfile(size_t node_id,
                        std::vector<clustering::ClusterSummary> clusters) {
  NodeProfile profile;
  profile.node_id = node_id;
  profile.clusters = std::move(clusters);
  for (const auto& c : profile.clusters) profile.total_samples += c.size;
  return profile;
}

query::RangeQuery MakeQuery(const std::vector<double>& flat, uint64_t id = 1) {
  query::RangeQuery q;
  q.id = id;
  q.region = query::HyperRectangle::FromFlatBounds(flat).value();
  return q;
}

/// Two nodes, two dims, assorted geometry (touching edges, containment,
/// disjoint dims).
std::vector<NodeProfile> SmallFleet() {
  std::vector<NodeProfile> profiles;
  profiles.push_back(MakeProfile(
      0, {MakeCluster({0, 2, 0, 2}, 10), MakeCluster({2, 4, 2, 4}, 5)}));
  profiles.push_back(MakeProfile(
      1, {MakeCluster({1, 3, 1, 3}, 8), MakeCluster({8, 9, 8, 9}, 3)}));
  return profiles;
}

void ExpectBitwiseEqualRankings(const std::vector<NodeProfile>& profiles,
                                const query::RangeQuery& q,
                                const RankingOptions& options,
                                const ClusterIndex& index,
                                ClusterIndex::Scratch* scratch = nullptr) {
  auto scan = RankNodes(profiles, q, options);
  auto indexed = RankNodesIndexed(index, profiles, q, options, scratch);
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  ASSERT_TRUE(indexed.ok()) << indexed.status().ToString();
  std::string diff;
  EXPECT_TRUE(RankingsBitwiseEqual(*scan, *indexed, options, &diff)) << diff;
}

TEST(ClusterIndexBuildTest, RejectsNodeWithoutClusters) {
  std::vector<NodeProfile> profiles = {MakeProfile(7, {})};
  auto index = ClusterIndex::Build(profiles);
  ASSERT_FALSE(index.ok());
  EXPECT_TRUE(index.status().IsInvalidArgument());
  EXPECT_EQ(index.status().message(), "ClusterIndex: node 7 has no clusters");
}

TEST(ClusterIndexBuildTest, RejectsZeroDimensionalNonEmptyCluster) {
  clustering::ClusterSummary degenerate;  // 0-dim bounds but size > 0.
  degenerate.size = 4;
  std::vector<NodeProfile> profiles = {MakeProfile(0, {degenerate})};
  auto index = ClusterIndex::Build(profiles);
  ASSERT_FALSE(index.ok());
  EXPECT_TRUE(index.status().IsInvalidArgument());
}

TEST(ClusterIndexBuildTest, RejectsMixedDimensionalities) {
  std::vector<NodeProfile> profiles = {
      MakeProfile(0, {MakeCluster({0, 1, 0, 1}, 2)}),
      MakeProfile(1, {MakeCluster({0, 1}, 2)})};
  auto index = ClusterIndex::Build(profiles);
  ASSERT_FALSE(index.ok());
  EXPECT_TRUE(index.status().IsInvalidArgument());
}

TEST(ClusterIndexBuildTest, RejectsInvalidBoundsBox) {
  clustering::ClusterSummary bad;
  bad.bounds = query::HyperRectangle({query::Interval(3.0, 1.0)});
  bad.size = 2;
  std::vector<NodeProfile> profiles = {MakeProfile(0, {bad})};
  auto index = ClusterIndex::Build(profiles);
  ASSERT_FALSE(index.ok());
  EXPECT_TRUE(index.status().IsInvalidArgument());
}

TEST(ClusterIndexBuildTest, SkipsEmptyClustersAndRecordsShape) {
  std::vector<NodeProfile> profiles = {
      MakeProfile(3, {MakeCluster({0, 1, 0, 1}, 5), MakeCluster({}, 0)}),
      MakeProfile(9, {MakeCluster({1, 2, 1, 2}, 7)})};
  auto index = ClusterIndex::Build(profiles);
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  EXPECT_EQ(index->num_nodes(), 2u);
  EXPECT_EQ(index->num_entries(), 2u);  // The empty cluster is not indexed.
  EXPECT_EQ(index->dims(), 2u);
  EXPECT_EQ(index->node_id_at(0), 3u);
  EXPECT_EQ(index->node_id_at(1), 9u);
  EXPECT_EQ(index->node_cluster_count(0), 2u);
  EXPECT_TRUE(index->node_ids_strictly_increasing());
  EXPECT_GT(index->GridBytes(), 0u);
}

TEST(ClusterIndexTest, CandidatesAreSupersetOfSupporting) {
  const std::vector<NodeProfile> profiles = SmallFleet();
  auto index = ClusterIndex::Build(profiles);
  ASSERT_TRUE(index.ok());
  RankingOptions options;
  options.epsilon = 0.3;
  ClusterIndex::Scratch scratch;
  const std::vector<query::RangeQuery> queries = {
      MakeQuery({0, 1, 0, 1}), MakeQuery({2, 2, 2, 2}),  // Point query.
      MakeQuery({4, 8, 4, 8}),                           // Touching edges.
      MakeQuery({-5, 20, -5, 20}),                       // Everything.
      MakeQuery({50, 60, 50, 60})};                      // Nothing.
  for (const auto& q : queries) {
    auto scan = RankNodes(profiles, q, options);
    ASSERT_TRUE(scan.ok());
    auto candidates = index->Candidates(q.region, options.epsilon, &scratch);
    ASSERT_TRUE(candidates.ok()) << candidates.status().ToString();
    for (const auto& rank : *scan) {
      for (const auto& score : rank.cluster_scores) {
        if (!score.supporting) continue;
        const std::pair<size_t, size_t> want{rank.node_id, score.cluster_id};
        bool found = false;
        for (const auto& c : *candidates) found = found || c == want;
        EXPECT_TRUE(found) << "supporting cluster (" << want.first << ", "
                           << want.second << ") missing from candidates";
      }
    }
  }
}

TEST(ClusterIndexTest, PruningIsEpsilonAware) {
  // Clusters disjoint from the query in dim 1 but (potentially) fully
  // matched in dim 0: Eq. 2 averages to h up to 0.5, so such a cluster can
  // support any epsilon <= 0.5 and a box-disjointness prune would be
  // WRONG. The second cluster widens the dim-1 hull to [0, 9] so the
  // query's dim-1 bins are interior ones nobody occupies.
  std::vector<NodeProfile> profiles = {
      MakeProfile(0, {MakeCluster({0, 1, 0, 1}, 4)}),
      MakeProfile(1, {MakeCluster({0, 1, 8, 9}, 4)})};
  auto index = ClusterIndex::Build(profiles);
  ASSERT_TRUE(index.ok());
  const query::RangeQuery q = MakeQuery({0, 1, 4, 5});
  ClusterIndex::Scratch scratch;

  RankingOptions supporting;
  supporting.epsilon = 0.5;  // h = (1 + 0)/2 = 0.5: both clusters support.
  auto candidates = index->Candidates(q.region, supporting.epsilon, &scratch);
  ASSERT_TRUE(candidates.ok());
  ASSERT_EQ(candidates->size(), 2u);  // Kept despite disjoint boxes.
  ExpectBitwiseEqualRankings(profiles, q, supporting, *index, &scratch);

  RankingOptions pruning;
  pruning.epsilon = 0.6;  // h can be at most 1/2 < 0.6: provably prunable.
  candidates = index->Candidates(q.region, pruning.epsilon, &scratch);
  ASSERT_TRUE(candidates.ok());
  EXPECT_TRUE(candidates->empty());
  ExpectBitwiseEqualRankings(profiles, q, pruning, *index, &scratch);
}

TEST(ClusterIndexTest, IndexedMatchesScanOnFixedFleet) {
  const std::vector<NodeProfile> profiles = SmallFleet();
  for (const size_t bins : {size_t{1}, size_t{2}, size_t{32}}) {
    ClusterIndexOptions index_options;
    index_options.bins_per_dim = bins;
    auto index = ClusterIndex::Build(profiles, index_options);
    ASSERT_TRUE(index.ok());
    ClusterIndex::Scratch scratch;
    for (const double epsilon : {0.05, 0.3, 0.5, 0.99}) {
      RankingOptions options;
      options.epsilon = epsilon;
      for (const auto& q :
           {MakeQuery({0, 2, 0, 2}), MakeQuery({2, 4, 0, 2}),
            MakeQuery({3, 3, 3, 3}), MakeQuery({8, 9, 0, 9}),
            MakeQuery({-1, 10, -1, 10}), MakeQuery({30, 40, 30, 40})}) {
        ExpectBitwiseEqualRankings(profiles, q, options, *index, &scratch);
      }
    }
  }
}

TEST(ClusterIndexTest, AllEmptyClusterFleetRanksLikeScan) {
  // Every cluster empty: the scan never evaluates Eq. 2, so even a
  // dimensionally mismatched query succeeds with all-zero ranks. The
  // indexed path must mirror that exactly.
  std::vector<NodeProfile> profiles = {
      MakeProfile(0, {MakeCluster({}, 0)}),
      MakeProfile(1, {MakeCluster({}, 0), MakeCluster({}, 0)})};
  auto index = ClusterIndex::Build(profiles);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->num_entries(), 0u);
  RankingOptions options;
  for (const auto& q : {MakeQuery({0, 1}), MakeQuery({0, 1, 0, 1, 0, 1})}) {
    ExpectBitwiseEqualRankings(profiles, q, options, *index);
  }
}

TEST(ClusterIndexTest, DuplicateNodeIdsKeepScanOrder) {
  // Duplicate ids force the stable-sort fallback; ties must preserve the
  // scan's profile-order stability bit for bit.
  std::vector<NodeProfile> profiles = {
      MakeProfile(5, {MakeCluster({0, 2, 0, 2}, 4)}),
      MakeProfile(5, {MakeCluster({0, 2, 0, 2}, 6)}),
      MakeProfile(2, {MakeCluster({10, 12, 10, 12}, 3)})};
  auto index = ClusterIndex::Build(profiles);
  ASSERT_TRUE(index.ok());
  EXPECT_FALSE(index->node_ids_strictly_increasing());
  RankingOptions options;
  for (const auto& q : {MakeQuery({0, 2, 0, 2}), MakeQuery({50, 51, 50, 51}),
                        MakeQuery({0, 20, 0, 20})}) {
    ExpectBitwiseEqualRankings(profiles, q, options, *index);
  }
}

TEST(ClusterIndexTest, ErrorPathsIdenticalToScan) {
  const std::vector<NodeProfile> profiles = SmallFleet();
  auto index = ClusterIndex::Build(profiles);
  ASSERT_TRUE(index.ok());

  struct Case {
    query::RangeQuery query;
    RankingOptions options;
  };
  std::vector<Case> cases;
  {
    Case bad_epsilon{MakeQuery({0, 1, 0, 1}), {}};
    bad_epsilon.options.epsilon = 0.0;
    cases.push_back(bad_epsilon);
    Case bad_weight{MakeQuery({0, 1, 0, 1}), {}};
    bad_weight.options.reliability_weight = -1.0;
    cases.push_back(bad_weight);
    cases.push_back(Case{MakeQuery({0, 1}), {}});        // Dim mismatch.
    cases.push_back(Case{MakeQuery({0, 1, 0, 1, 0, 1}), {}});
    Case invalid{MakeQuery({0, 1, 0, 1}), {}};
    invalid.query.region.dim(0) = query::Interval(2.0, 1.0);  // min > max.
    cases.push_back(invalid);
    Case zero_dim{MakeQuery({0, 1, 0, 1}), {}};
    zero_dim.query.region = query::HyperRectangle();
    cases.push_back(zero_dim);
  }
  for (const Case& c : cases) {
    auto scan = RankNodes(profiles, c.query, c.options);
    auto indexed = RankNodesIndexed(*index, profiles, c.query, c.options);
    ASSERT_FALSE(scan.ok());
    ASSERT_FALSE(indexed.ok());
    EXPECT_EQ(scan.status().code(), indexed.status().code());
    EXPECT_EQ(scan.status().message(), indexed.status().message());
  }
}

TEST(ClusterIndexTest, StaleIndexIsAnInternalError) {
  std::vector<NodeProfile> profiles = SmallFleet();
  auto index = ClusterIndex::Build(profiles);
  ASSERT_TRUE(index.ok());
  const query::RangeQuery q = MakeQuery({0, 1, 0, 1});

  std::vector<NodeProfile> fewer = {profiles[0]};
  auto wrong_count = RankNodesIndexed(*index, fewer, q, RankingOptions{});
  ASSERT_FALSE(wrong_count.ok());

  std::vector<NodeProfile> renamed = profiles;
  renamed[1].node_id = 42;
  auto wrong_id = RankNodesIndexed(*index, renamed, q, RankingOptions{});
  ASSERT_FALSE(wrong_id.ok());

  std::vector<NodeProfile> reshaped = profiles;
  reshaped[0].clusters.push_back(MakeCluster({0, 1, 0, 1}, 1));
  auto wrong_shape = RankNodesIndexed(*index, reshaped, q, RankingOptions{});
  ASSERT_FALSE(wrong_shape.ok());
}

TEST(ClusterIndexTest, StatsAccountForEveryIndexedCluster) {
  const std::vector<NodeProfile> profiles = SmallFleet();
  auto index = ClusterIndex::Build(profiles);
  ASSERT_TRUE(index.ok());
  RankingOptions options;
  options.epsilon = 0.3;
  ClusterIndex::Scratch scratch;
  IndexQueryStats stats;
  auto ranks = RankNodesIndexed(*index, profiles, MakeQuery({0, 2, 0, 2}),
                                options, &scratch, &stats);
  ASSERT_TRUE(ranks.ok());
  EXPECT_EQ(stats.candidate_clusters + stats.pruned_clusters,
            index->num_entries());
  EXPECT_GT(stats.candidate_nodes, 0u);
  EXPECT_LE(stats.candidate_clusters, stats.touched_entries + 0u);
}

TEST(RankingsBitwiseEqualTest, FlagsEveryContractViolation) {
  const std::vector<NodeProfile> profiles = SmallFleet();
  RankingOptions options;
  options.epsilon = 0.3;
  auto scan = RankNodes(profiles, MakeQuery({0, 2, 0, 2}), options);
  ASSERT_TRUE(scan.ok());
  std::string diff;
  ASSERT_TRUE(RankingsBitwiseEqual(*scan, *scan, options, &diff)) << diff;

  auto mutate = [&](auto fn) {
    std::vector<NodeRank> copy = *scan;
    fn(&copy);
    EXPECT_FALSE(RankingsBitwiseEqual(*scan, copy, options, &diff));
  };
  mutate([](std::vector<NodeRank>* r) { r->pop_back(); });
  mutate([](std::vector<NodeRank>* r) { (*r)[0].ranking += 1e-16; });
  mutate([](std::vector<NodeRank>* r) { (*r)[0].node_id += 1; });
  mutate([](std::vector<NodeRank>* r) { (*r)[0].supporting_samples += 1; });
  mutate([](std::vector<NodeRank>* r) {
    (*r)[0].cluster_scores[0].supporting =
        !(*r)[0].cluster_scores[0].supporting;
  });
  // Dropping cluster scores is only legal for nodes without support.
  mutate([](std::vector<NodeRank>* r) {
    for (auto& rank : *r) {
      if (rank.supporting_clusters > 0) {
        rank.cluster_scores.clear();
        break;
      }
    }
  });
  // A pruned (zeroed) overlap on a non-supporting cluster IS legal.
  std::vector<NodeRank> pruned = *scan;
  for (auto& rank : pruned) {
    for (auto& score : rank.cluster_scores) {
      if (!score.supporting) score.overlap = 0.0;
    }
  }
  EXPECT_TRUE(RankingsBitwiseEqual(*scan, pruned, options, &diff)) << diff;
}

}  // namespace
}  // namespace qens::selection
