// Randomized round-trip property sweeps for the two wire codecs (models
// and node profiles): any structurally valid payload must serialize and
// deserialize to a bit-identical value.

#include <gtest/gtest.h>

#include "qens/common/rng.h"
#include "qens/ml/model_io.h"
#include "qens/selection/profile_io.h"

namespace qens {
namespace {

struct ModelShape {
  size_t in;
  size_t hidden;  // 0 = single layer.
  ml::Activation act;
};

class ModelIoPropertyTest : public ::testing::TestWithParam<ModelShape> {};

TEST_P(ModelIoPropertyTest, RandomWeightsRoundTripExactly) {
  const ModelShape shape = GetParam();
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    ml::SequentialModel model;
    if (shape.hidden == 0) {
      ASSERT_TRUE(model.AddLayer(shape.in, 1, shape.act).ok());
    } else {
      ASSERT_TRUE(model.AddLayer(shape.in, shape.hidden, shape.act).ok());
      ASSERT_TRUE(
          model.AddLayer(shape.hidden, 1, ml::Activation::kIdentity).ok());
    }
    Rng rng(seed);
    model.InitWeights(&rng);
    // Inject awkward values: negatives, tiny, large, zero.
    auto params = model.GetParameters();
    if (!params.empty()) {
      params[0] = 0.0;
      params[params.size() / 2] = -1.7976931348623157e308 / 1e10;
      params.back() = 4.9406564584124654e-324;  // Denormal min.
      ASSERT_TRUE(model.SetParameters(params).ok());
    }
    auto back = ml::DeserializeModel(ml::SerializeModel(model));
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_TRUE(back->SameArchitecture(model));
    EXPECT_EQ(back->GetParameters(), model.GetParameters()) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ModelIoPropertyTest,
    ::testing::Values(ModelShape{1, 0, ml::Activation::kIdentity},
                      ModelShape{4, 0, ml::Activation::kIdentity},
                      ModelShape{1, 8, ml::Activation::kRelu},
                      ModelShape{6, 16, ml::Activation::kTanh},
                      ModelShape{3, 64, ml::Activation::kSigmoid}));

struct ProfileShape {
  size_t clusters;
  size_t dims;
};

class ProfileIoPropertyTest : public ::testing::TestWithParam<ProfileShape> {};

TEST_P(ProfileIoPropertyTest, RandomProfilesRoundTripExactly) {
  const ProfileShape shape = GetParam();
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed * 13);
    selection::NodeProfile profile;
    profile.node_id = static_cast<size_t>(rng.UniformInt(uint64_t{1000}));
    profile.name = seed % 2 == 0 ? "node-x" : "";
    for (size_t c = 0; c < shape.clusters; ++c) {
      clustering::ClusterSummary cluster;
      cluster.size = static_cast<size_t>(rng.UniformInt(uint64_t{5000}));
      cluster.centroid.resize(shape.dims);
      std::vector<query::Interval> intervals(shape.dims);
      for (size_t d = 0; d < shape.dims; ++d) {
        const double lo = rng.Uniform(-1e6, 1e6);
        intervals[d] = query::Interval(lo, lo + rng.Uniform(0.0, 1e4));
        cluster.centroid[d] = rng.Uniform(intervals[d].lo, intervals[d].hi);
      }
      cluster.bounds = query::HyperRectangle(std::move(intervals));
      profile.total_samples += cluster.size;
      profile.clusters.push_back(std::move(cluster));
    }
    auto back =
        selection::DeserializeProfile(selection::SerializeProfile(profile));
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(back->node_id, profile.node_id);
    EXPECT_EQ(back->total_samples, profile.total_samples);
    ASSERT_EQ(back->clusters.size(), profile.clusters.size());
    for (size_t c = 0; c < profile.clusters.size(); ++c) {
      EXPECT_EQ(back->clusters[c].size, profile.clusters[c].size);
      EXPECT_EQ(back->clusters[c].centroid, profile.clusters[c].centroid);
      EXPECT_EQ(back->clusters[c].bounds, profile.clusters[c].bounds);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, ProfileIoPropertyTest,
                         ::testing::Values(ProfileShape{1, 1},
                                           ProfileShape{5, 1},
                                           ProfileShape{5, 4},
                                           ProfileShape{12, 8},
                                           ProfileShape{3, 16}));

}  // namespace
}  // namespace qens
