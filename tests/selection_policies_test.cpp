// Tests for the selection policies: top-l, Eq. 5 threshold, random, all.

#include "qens/selection/policies.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace qens::selection {
namespace {

std::vector<NodeRank> RankedList(const std::vector<double>& rankings) {
  // Build a DESC-sorted rank list with node ids equal to input order.
  std::vector<NodeRank> out;
  for (size_t i = 0; i < rankings.size(); ++i) {
    NodeRank r;
    r.node_id = i;
    r.ranking = rankings[i];
    out.push_back(r);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const NodeRank& a, const NodeRank& b) {
                     return a.ranking > b.ranking;
                   });
  return out;
}

TEST(SelectTopLTest, TakesHighestRanked) {
  auto ranked = RankedList({0.5, 2.0, 1.0, 0.1});
  auto sel = SelectTopL(ranked, 2);
  ASSERT_TRUE(sel.ok());
  ASSERT_EQ(sel->size(), 2u);
  EXPECT_EQ((*sel)[0].node_id, 1u);
  EXPECT_EQ((*sel)[1].node_id, 2u);
}

TEST(SelectTopLTest, LLargerThanListReturnsAll) {
  auto ranked = RankedList({0.5, 2.0});
  auto sel = SelectTopL(ranked, 10);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel->size(), 2u);
}

TEST(SelectTopLTest, DropsZeroRankByDefault) {
  auto ranked = RankedList({0.0, 2.0, 0.0});
  auto sel = SelectTopL(ranked, 3);
  ASSERT_TRUE(sel.ok());
  ASSERT_EQ(sel->size(), 1u);
  EXPECT_EQ((*sel)[0].node_id, 1u);
}

TEST(SelectTopLTest, KeepZeroRankWhenAsked) {
  auto ranked = RankedList({0.0, 2.0});
  auto sel = SelectTopL(ranked, 2, /*drop_zero_rank=*/false);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel->size(), 2u);
}

TEST(SelectTopLTest, ZeroLFails) {
  EXPECT_FALSE(SelectTopL(RankedList({1.0}), 0).ok());
}

TEST(SelectByThresholdTest, Eq5Semantics) {
  auto ranked = RankedList({0.5, 2.0, 1.0, 0.1});
  auto sel = SelectByThreshold(ranked, 0.75);
  ASSERT_TRUE(sel.ok());
  ASSERT_EQ(sel->size(), 2u);
  for (const auto& r : *sel) EXPECT_GE(r.ranking, 0.75);
}

TEST(SelectByThresholdTest, InclusiveAtPsi) {
  auto ranked = RankedList({0.75});
  auto sel = SelectByThreshold(ranked, 0.75);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel->size(), 1u);
}

TEST(SelectByThresholdTest, EmptyWhenAllBelow) {
  auto sel = SelectByThreshold(RankedList({0.1, 0.2}), 5.0);
  ASSERT_TRUE(sel.ok());
  EXPECT_TRUE(sel->empty());
}

TEST(SelectByThresholdTest, NonPositivePsiFails) {
  EXPECT_FALSE(SelectByThreshold(RankedList({1.0}), 0.0).ok());
  EXPECT_FALSE(SelectByThreshold(RankedList({1.0}), -1.0).ok());
}

TEST(SelectQueryDrivenTest, SwitchesOnOptions) {
  auto ranked = RankedList({0.5, 2.0, 1.0});
  QueryDrivenOptions top;
  top.top_l = 1;
  auto s1 = SelectQueryDriven(ranked, top);
  ASSERT_TRUE(s1.ok());
  EXPECT_EQ(s1->size(), 1u);

  QueryDrivenOptions thresh;
  thresh.use_threshold = true;
  thresh.psi = 0.9;
  auto s2 = SelectQueryDriven(ranked, thresh);
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(s2->size(), 2u);
}

TEST(SelectRandomTest, SizeBoundsAndDistinctness) {
  Rng rng(1);
  for (int trial = 0; trial < 100; ++trial) {
    auto sel = SelectRandom(10, 4, &rng);
    ASSERT_TRUE(sel.ok());
    ASSERT_EQ(sel->size(), 4u);
    std::set<size_t> distinct(sel->begin(), sel->end());
    EXPECT_EQ(distinct.size(), 4u);
    for (size_t id : *sel) EXPECT_LT(id, 10u);
  }
}

TEST(SelectRandomTest, CoversAllNodesOverTrials) {
  Rng rng(2);
  std::set<size_t> seen;
  for (int trial = 0; trial < 200; ++trial) {
    auto sel = SelectRandom(6, 2, &rng);
    ASSERT_TRUE(sel.ok());
    seen.insert(sel->begin(), sel->end());
  }
  EXPECT_EQ(seen.size(), 6u);  // Every node eventually drawn.
}

TEST(SelectRandomTest, Errors) {
  Rng rng(3);
  EXPECT_FALSE(SelectRandom(5, 0, &rng).ok());
  EXPECT_FALSE(SelectRandom(5, 6, &rng).ok());
}

TEST(SelectAllNodesTest, ReturnsEveryId) {
  EXPECT_EQ(SelectAllNodes(4), (std::vector<size_t>{0, 1, 2, 3}));
  EXPECT_TRUE(SelectAllNodes(0).empty());
}

TEST(PolicyKindTest, NamesRoundTrip) {
  for (PolicyKind kind :
       {PolicyKind::kQueryDriven, PolicyKind::kRandom, PolicyKind::kAllNodes,
        PolicyKind::kGameTheory}) {
    EXPECT_EQ(ParsePolicyKind(PolicyKindName(kind)).value(), kind);
  }
  EXPECT_EQ(ParsePolicyKind("GT").value(), PolicyKind::kGameTheory);
  EXPECT_EQ(ParsePolicyKind("all").value(), PolicyKind::kAllNodes);
  EXPECT_FALSE(ParsePolicyKind("best-effort").ok());
}

}  // namespace
}  // namespace qens::selection
