// Tests for the Federation orchestrator: leader decisions, per-policy query
// execution, accounting, skip paths.

#include "qens/fl/federation.h"

#include <gtest/gtest.h>

#include "qens/common/rng.h"

namespace qens::fl {
namespace {

/// Node with x in [offset, offset+10], y = slope x + noise.
data::Dataset MakeNodeData(double offset, double slope, uint64_t seed,
                           size_t n = 250) {
  Rng rng(seed);
  Matrix x(n, 1), y(n, 1);
  for (size_t i = 0; i < n; ++i) {
    x(i, 0) = offset + rng.Uniform(0, 10);
    y(i, 0) = slope * x(i, 0) + rng.Gaussian(0, 0.2);
  }
  return data::Dataset::Create(x, y).value();
}

FederationOptions FastOptions() {
  FederationOptions options;
  options.environment.kmeans.k = 3;
  options.ranking.epsilon = 0.1;
  options.query_driven.top_l = 2;
  options.hyper = ml::PaperHyperParams(ml::ModelKind::kLinearRegression);
  options.hyper.epochs = 25;
  options.epochs_per_cluster = 10;
  options.random_l = 2;
  options.test_fraction = 0.2;
  options.seed = 42;
  return options;
}

/// Four nodes: two in x-region [0, 10] (slope 2), two in [50, 60] (slope 2).
Result<Federation> MakeFederation() {
  std::vector<data::Dataset> nodes = {
      MakeNodeData(0, 2.0, 1), MakeNodeData(0, 2.0, 2),
      MakeNodeData(50, 2.0, 3), MakeNodeData(50, 2.0, 4)};
  return Federation::Create(std::move(nodes), FastOptions());
}

query::RangeQuery QueryOver(double lo, double hi) {
  query::RangeQuery q;
  q.id = 1;
  q.region = query::HyperRectangle::FromFlatBounds({lo, hi}).value();
  return q;
}

TEST(FederationTest, CreateSplitsTrainTest) {
  auto fed = MakeFederation();
  ASSERT_TRUE(fed.ok());
  // 250 rows per node, 20% test -> 200 train per node in the environment.
  EXPECT_EQ(fed->environment().num_nodes(), 4u);
  EXPECT_EQ(fed->environment().TotalSamples(), 4u * 200u);
}

TEST(FederationTest, QueryRegionTestDataPoolsAcrossNodes) {
  // Run without normalization so returned features are in raw units.
  FederationOptions options = FastOptions();
  options.normalize = false;
  std::vector<data::Dataset> nodes = {
      MakeNodeData(0, 2.0, 1), MakeNodeData(0, 2.0, 2),
      MakeNodeData(50, 2.0, 3), MakeNodeData(50, 2.0, 4)};
  auto fed = Federation::Create(std::move(nodes), options);
  ASSERT_TRUE(fed.ok());
  auto test = fed->QueryRegionTestData(QueryOver(0, 10));
  ASSERT_TRUE(test.ok());
  EXPECT_GT(test->NumSamples(), 0u);
  // Everything pooled lies inside the region.
  for (size_t i = 0; i < test->NumSamples(); ++i) {
    EXPECT_GE(test->features()(i, 0), 0.0);
    EXPECT_LE(test->features()(i, 0), 10.0);
  }
  // A region with no data fails.
  EXPECT_TRUE(fed->QueryRegionTestData(QueryOver(1000, 1010))
                  .status()
                  .IsNotFound());
}

TEST(FederationTest, NormalizedFederationHandlesRawQueries) {
  // With normalization on (the default), raw-unit queries still pool the
  // right rows and the internal query maps into the unit cube.
  auto fed = MakeFederation();
  ASSERT_TRUE(fed.ok());
  auto test = fed->QueryRegionTestData(QueryOver(0, 10));
  ASSERT_TRUE(test.ok());
  EXPECT_GT(test->NumSamples(), 0u);
  auto internal = fed->InternalQuery(QueryOver(0, 60));
  ASSERT_TRUE(internal.ok());
  EXPECT_GE(internal->region.dim(0).lo, -0.1);
  EXPECT_LE(internal->region.dim(0).hi, 1.1);
}

TEST(FederationTest, RawDataSpaceStaysInRawUnits) {
  auto fed = MakeFederation();
  ASSERT_TRUE(fed.ok());
  const auto& space = fed->RawDataSpace();
  EXPECT_GT(space.dim(0).hi, 40.0);  // Covers the [50, 60] node region.
  EXPECT_LT(space.dim(0).lo, 10.0);
}

TEST(FederationTest, DenormalizeMseRoundTrips) {
  auto fed = MakeFederation();
  ASSERT_TRUE(fed.ok());
  // The raw target range is ~[0, 120]; a normalized MSE of 1 maps to
  // roughly range^2.
  const double raw = fed->DenormalizeMse(1.0);
  EXPECT_GT(raw, 100.0);
  EXPECT_DOUBLE_EQ(fed->DenormalizeMse(0.0), 0.0);
}

TEST(FederationTest, QueryDrivenSelectsMatchingNodes) {
  auto fed = MakeFederation();
  ASSERT_TRUE(fed.ok());
  auto outcome = fed->RunQueryDriven(QueryOver(0, 10));
  ASSERT_TRUE(outcome.ok());
  ASSERT_FALSE(outcome->skipped);
  // Only nodes 0/1 hold [0, 10] data.
  for (size_t id : outcome->selected_nodes) EXPECT_LT(id, 2u);
  EXPECT_FALSE(outcome->selected_rankings.empty());
  EXPECT_GT(outcome->test_rows, 0u);
  EXPECT_GT(outcome->samples_used, 0u);
  EXPECT_LE(outcome->samples_used, outcome->samples_selected);
  EXPECT_GT(outcome->sim_time_total, 0.0);
  EXPECT_GE(outcome->sim_time_total, outcome->sim_time_parallel);
  EXPECT_GT(outcome->sim_time_comm, 0.0);
}

TEST(FederationTest, QueryDrivenLossIsReasonable) {
  auto fed = MakeFederation();
  ASSERT_TRUE(fed.ok());
  auto outcome = fed->RunQueryDriven(QueryOver(0, 10));
  ASSERT_TRUE(outcome.ok());
  ASSERT_FALSE(outcome->skipped);
  // y = 2x on [0,10]: a fitted model should do far better than predicting
  // the mean (variance of y ~ (2*10)^2/12 ~ 33).
  EXPECT_LT(outcome->loss_model_avg, 10.0);
  EXPECT_LT(outcome->loss_weighted, 10.0);
}

TEST(FederationTest, AllNodesPolicyEngagesEveryone) {
  auto fed = MakeFederation();
  ASSERT_TRUE(fed.ok());
  auto outcome = fed->RunQuery(QueryOver(0, 10),
                               selection::PolicyKind::kAllNodes,
                               /*data_selectivity=*/false);
  ASSERT_TRUE(outcome.ok());
  ASSERT_FALSE(outcome->skipped);
  EXPECT_EQ(outcome->selected_nodes.size(), 4u);
  EXPECT_EQ(outcome->samples_used, fed->environment().TotalSamples());
  EXPECT_DOUBLE_EQ(outcome->DataFractionOfAll(), 1.0);
}

TEST(FederationTest, RandomPolicyRespectsL) {
  auto fed = MakeFederation();
  ASSERT_TRUE(fed.ok());
  auto outcome = fed->RunQuery(QueryOver(0, 60),
                               selection::PolicyKind::kRandom,
                               /*data_selectivity=*/false);
  ASSERT_TRUE(outcome.ok());
  ASSERT_FALSE(outcome->skipped);
  EXPECT_EQ(outcome->selected_nodes.size(), 2u);  // random_l = 2.
  EXPECT_TRUE(outcome->selected_rankings.empty());
}

TEST(FederationTest, GameTheoryPolicyRunsPreRound) {
  auto fed = MakeFederation();
  ASSERT_TRUE(fed.ok());
  auto outcome = fed->RunQuery(QueryOver(0, 60),
                               selection::PolicyKind::kGameTheory,
                               /*data_selectivity=*/false);
  ASSERT_TRUE(outcome.ok());
  ASSERT_FALSE(outcome->skipped);
  EXPECT_GT(outcome->gt_preround_seconds, 0.0);
  EXPECT_FALSE(outcome->selected_nodes.empty());
}

TEST(FederationTest, SelectivityUsesFewerSamplesThanFull) {
  auto fed = MakeFederation();
  ASSERT_TRUE(fed.ok());
  // Narrow query inside node 0/1's space.
  auto selective = fed->RunQueryDriven(QueryOver(2, 6));
  auto full = fed->RunQuery(QueryOver(2, 6), selection::PolicyKind::kAllNodes,
                            /*data_selectivity=*/false);
  ASSERT_TRUE(selective.ok());
  ASSERT_TRUE(full.ok());
  ASSERT_FALSE(selective->skipped);
  ASSERT_FALSE(full->skipped);
  EXPECT_LT(selective->samples_used, full->samples_used);
  EXPECT_LT(selective->sim_time_total, full->sim_time_total);
}

TEST(FederationTest, SkipsQueryOutsideAllData) {
  auto fed = MakeFederation();
  ASSERT_TRUE(fed.ok());
  auto outcome = fed->RunQueryDriven(QueryOver(1000, 1010));
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->skipped);
}

TEST(FederationTest, WeightedAggregationWeightsMatchRankings) {
  auto fed = MakeFederation();
  ASSERT_TRUE(fed.ok());
  auto outcome = fed->RunQueryDriven(QueryOver(0, 10));
  ASSERT_TRUE(outcome.ok());
  ASSERT_FALSE(outcome->skipped);
  ASSERT_EQ(outcome->selected_rankings.size(),
            outcome->selected_nodes.size());
  for (double r : outcome->selected_rankings) EXPECT_GT(r, 0.0);
}

TEST(FederationTest, NetworkTrafficRecorded) {
  auto fed = MakeFederation();
  ASSERT_TRUE(fed.ok());
  const size_t before = fed->environment().network().total_messages();
  ASSERT_TRUE(fed->RunQueryDriven(QueryOver(0, 10)).ok());
  const auto& net = fed->environment().network();
  EXPECT_GT(net.total_messages(), before);
  EXPECT_GT(net.BytesWithTag("model-down"), 0u);
  EXPECT_GT(net.BytesWithTag("model-up"), 0u);
}

TEST(FederationTest, CreateErrors) {
  EXPECT_FALSE(Federation::Create({}, FastOptions()).ok());
  FederationOptions bad = FastOptions();
  bad.test_fraction = 0.0;
  EXPECT_FALSE(
      Federation::Create({MakeNodeData(0, 1, 1)}, bad).ok());
}

}  // namespace
}  // namespace qens::fl
