// Tests for ClusterSummary: centroid/bounds/size digests and the
// multi-cluster summarizer.

#include "qens/clustering/cluster_summary.h"

#include <gtest/gtest.h>

namespace qens::clustering {
namespace {

TEST(ClusterSummaryTest, SingleClusterDigest) {
  Matrix data{{0, 10}, {2, 20}, {4, 30}};
  auto summary = SummarizeCluster(data, {0, 1, 2});
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->size, 3u);
  EXPECT_EQ(summary->dims(), 2u);
  EXPECT_DOUBLE_EQ(summary->centroid[0], 2.0);
  EXPECT_DOUBLE_EQ(summary->centroid[1], 20.0);
  EXPECT_DOUBLE_EQ(summary->bounds.dim(0).lo, 0.0);
  EXPECT_DOUBLE_EQ(summary->bounds.dim(0).hi, 4.0);
  EXPECT_DOUBLE_EQ(summary->bounds.dim(1).lo, 10.0);
  EXPECT_DOUBLE_EQ(summary->bounds.dim(1).hi, 30.0);
}

TEST(ClusterSummaryTest, SubsetOfRows) {
  Matrix data{{0, 0}, {100, 100}, {2, 2}};
  auto summary = SummarizeCluster(data, {0, 2});
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->size, 2u);
  EXPECT_DOUBLE_EQ(summary->centroid[0], 1.0);
  EXPECT_DOUBLE_EQ(summary->bounds.dim(0).hi, 2.0);  // Row 1 excluded.
}

TEST(ClusterSummaryTest, EmptyMembersRejected) {
  Matrix data{{1.0}};
  EXPECT_FALSE(SummarizeCluster(data, {}).ok());
}

TEST(ClusterSummaryTest, OutOfRangeRowRejected) {
  Matrix data{{1.0}};
  EXPECT_TRUE(SummarizeCluster(data, {3}).status().IsOutOfRange());
}

TEST(ClusterSummaryTest, SingletonCluster) {
  Matrix data{{7.0, -3.0}};
  auto summary = SummarizeCluster(data, {0});
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->size, 1u);
  // Degenerate box: lo == hi at the point.
  EXPECT_DOUBLE_EQ(summary->bounds.dim(0).lo, 7.0);
  EXPECT_DOUBLE_EQ(summary->bounds.dim(0).hi, 7.0);
  EXPECT_DOUBLE_EQ(summary->bounds.dim(1).length(), 0.0);
}

TEST(SummarizeClustersTest, PartitionsByAssignment) {
  Matrix data{{0.0}, {1.0}, {10.0}, {11.0}};
  auto summaries = SummarizeClusters(data, {0, 0, 1, 1}, 2);
  ASSERT_TRUE(summaries.ok());
  ASSERT_EQ(summaries->size(), 2u);
  EXPECT_EQ((*summaries)[0].size, 2u);
  EXPECT_DOUBLE_EQ((*summaries)[0].bounds.dim(0).hi, 1.0);
  EXPECT_DOUBLE_EQ((*summaries)[1].bounds.dim(0).lo, 10.0);
}

TEST(SummarizeClustersTest, EmptyClusterYieldsZeroSize) {
  Matrix data{{0.0}, {1.0}};
  auto summaries = SummarizeClusters(data, {0, 0}, 3);
  ASSERT_TRUE(summaries.ok());
  EXPECT_EQ((*summaries)[0].size, 2u);
  EXPECT_EQ((*summaries)[1].size, 0u);
  EXPECT_EQ((*summaries)[2].size, 0u);
}

TEST(SummarizeClustersTest, Errors) {
  Matrix data{{0.0}, {1.0}};
  EXPECT_FALSE(SummarizeClusters(data, {0}, 2).ok());         // Size mismatch.
  EXPECT_TRUE(SummarizeClusters(data, {0, 9}, 2).status().IsOutOfRange());
}

TEST(ClusterSummaryTest, WireBytesScalesWithDims) {
  Matrix d1{{1.0}};
  Matrix d4{{1.0, 2.0, 3.0, 4.0}};
  const auto s1 = SummarizeCluster(d1, {0}).value();
  const auto s4 = SummarizeCluster(d4, {0}).value();
  EXPECT_GT(s4.WireBytes(), s1.WireBytes());
  // 1-D: centroid (8) + bounds (16) + count (8).
  EXPECT_EQ(s1.WireBytes(), 8u + 16u + 8u);
}

TEST(ClusterSummaryTest, ToStringMentionsSize) {
  Matrix data{{1.0}};
  const auto s = SummarizeCluster(data, {0}).value();
  EXPECT_NE(s.ToString().find("size=1"), std::string::npos);
}

}  // namespace
}  // namespace qens::clustering
