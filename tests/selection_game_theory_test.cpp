// Tests for the GT baseline: it must select the nodes whose data is MOST
// dissimilar to the leader's (worst probe loss), after a mandatory
// training pre-round.

#include "qens/selection/game_theory.h"

#include <gtest/gtest.h>

#include "qens/common/rng.h"

namespace qens::selection {
namespace {

/// Node with data y = slope * x + noise over x in [0, 10].
data::Dataset MakeNode(double slope, uint64_t seed, size_t n = 300) {
  Rng rng(seed);
  Matrix x(n, 1), y(n, 1);
  for (size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.Uniform(0, 10);
    y(i, 0) = slope * x(i, 0) + rng.Gaussian(0, 0.2);
  }
  return data::Dataset::Create(x, y).value();
}

GameTheoryOptions FastOptions() {
  GameTheoryOptions options;
  options.model = ml::ModelKind::kLinearRegression;
  options.loss_quantile = 0.5;
  options.seed = 4;
  return options;
}

TEST(GameTheoryTest, SelectsDissimilarNodes) {
  // Leader slope 2; nodes 0-1 match, nodes 2-3 have flipped slope.
  data::Dataset leader = MakeNode(2.0, 1);
  std::vector<data::Dataset> nodes = {
      MakeNode(2.0, 2), MakeNode(2.0, 3), MakeNode(-2.0, 4),
      MakeNode(-2.0, 5)};
  auto sel = RunGameTheorySelection(leader, nodes, FastOptions());
  ASSERT_TRUE(sel.ok());
  // The dissimilar nodes (2, 3) must be selected; similar ones must not.
  EXPECT_EQ(sel->selected, (std::vector<size_t>{2, 3}));
  // Probe losses on dissimilar nodes dominate.
  EXPECT_GT(sel->probe_loss[2], sel->probe_loss[0]);
  EXPECT_GT(sel->probe_loss[3], sel->probe_loss[1]);
}

TEST(GameTheoryTest, PreRoundCostIsAccounted) {
  data::Dataset leader = MakeNode(1.0, 10);
  std::vector<data::Dataset> nodes = {MakeNode(1.0, 11), MakeNode(-1.0, 12)};
  auto sel = RunGameTheorySelection(leader, nodes, FastOptions());
  ASSERT_TRUE(sel.ok());
  EXPECT_GT(sel->leader_samples_trained, 0u);
  EXPECT_GT(sel->pre_round_seconds, 0.0);
}

TEST(GameTheoryTest, MaxSelectedCapsAndKeepsWorst) {
  data::Dataset leader = MakeNode(2.0, 20);
  std::vector<data::Dataset> nodes = {
      MakeNode(2.0, 21), MakeNode(-1.0, 22), MakeNode(-4.0, 23),
      MakeNode(-2.0, 24)};
  GameTheoryOptions options = FastOptions();
  options.loss_quantile = 0.25;
  options.max_selected = 1;
  auto sel = RunGameTheorySelection(leader, nodes, options);
  ASSERT_TRUE(sel.ok());
  ASSERT_EQ(sel->selected.size(), 1u);
  // The single selected node must be the worst-loss node.
  size_t worst = 0;
  for (size_t i = 1; i < sel->probe_loss.size(); ++i) {
    if (sel->probe_loss[i] > sel->probe_loss[worst]) worst = i;
  }
  EXPECT_EQ(sel->selected[0], worst);
}

TEST(GameTheoryTest, DegenerateDistributionFallsBackToWorstNode) {
  // All nodes identical to the leader: quantile rule selects nothing, so
  // GT falls back to the single worst node.
  data::Dataset leader = MakeNode(1.0, 30);
  std::vector<data::Dataset> nodes = {leader, leader, leader};
  auto sel = RunGameTheorySelection(leader, nodes, FastOptions());
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel->selected.size(), 1u);
}

TEST(GameTheoryTest, ProbeLossPerNodeReported) {
  data::Dataset leader = MakeNode(1.0, 40);
  std::vector<data::Dataset> nodes = {MakeNode(1.0, 41), MakeNode(3.0, 42),
                                      MakeNode(-3.0, 43)};
  auto sel = RunGameTheorySelection(leader, nodes, FastOptions());
  ASSERT_TRUE(sel.ok());
  ASSERT_EQ(sel->probe_loss.size(), 3u);
  for (double loss : sel->probe_loss) EXPECT_GE(loss, 0.0);
  // Similar node has the smallest loss.
  EXPECT_LT(sel->probe_loss[0], sel->probe_loss[1]);
  EXPECT_LT(sel->probe_loss[0], sel->probe_loss[2]);
}

TEST(GameTheoryTest, Errors) {
  data::Dataset leader = MakeNode(1.0, 50, 50);
  EXPECT_FALSE(RunGameTheorySelection(leader, {}, FastOptions()).ok());
  EXPECT_FALSE(
      RunGameTheorySelection(data::Dataset(), {leader}, FastOptions()).ok());
  GameTheoryOptions bad = FastOptions();
  bad.loss_quantile = 1.0;
  EXPECT_FALSE(RunGameTheorySelection(leader, {leader}, bad).ok());
  std::vector<data::Dataset> with_empty = {leader, data::Dataset()};
  EXPECT_FALSE(
      RunGameTheorySelection(leader, with_empty, FastOptions()).ok());
}

}  // namespace
}  // namespace qens::selection
