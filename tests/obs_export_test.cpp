// Round-trip tests for the observability exporters: RoundRecord JSONL and
// CSV, and MetricsSnapshot JSON and CSV. Export -> parse must reproduce
// every field exactly (doubles included: the writers emit full precision).

#include <gtest/gtest.h>

#include "qens/obs/export.h"
#include "qens/obs/metrics.h"
#include "qens/obs/round_record.h"

namespace qens::obs {
namespace {

std::vector<RoundRecord> SampleRecords() {
  RoundRecord first;
  first.query_id = 42;
  first.round = 0;
  first.policy = "query_driven";
  first.aggregation = "fedavg";
  first.engaged = 3;
  first.survivors = 2;
  first.quorum_met = true;
  first.parallel_seconds = 0.125;
  first.total_train_seconds = 0.3;
  first.comm_seconds = 0.0421875;
  first.nodes = {
      {0, NodeFate::kCompleted, 0.15, 0.02, 120, false},
      {3, NodeFate::kCompleted, 0.15, 0.0221875, 96, true},
      {5, NodeFate::kUnavailable, 0.0, 0.0, 0, false},
  };

  RoundRecord second;
  second.session = 3;  // Tagged: served by QueryServer session 3.
  second.query_id = 42;
  second.round = 1;
  second.policy = "query_driven";
  second.aggregation = "ensemble";
  second.engaged = 3;
  second.survivors = 1;
  second.rejected = 1;
  second.quarantined = 1;
  second.rank_index_rankings = 2;  // Served through the cluster index.
  second.rank_cache_hits = 1;
  second.rank_cache_misses = 1;
  second.rank_candidate_nodes = 5;
  second.wire_down_bytes = 1024;  // Wire layer on: codec-priced transfers.
  second.wire_up_bytes = 212;
  second.quorum_met = false;
  second.parallel_seconds = 0.5;
  second.total_train_seconds = 0.6;
  second.comm_seconds = 0.01;
  second.has_loss = true;
  second.loss = 123.456789012345;
  second.nodes = {
      {0, NodeFate::kMissedDeadline, 0.45, 0.01, 120, true},
      {3, NodeFate::kRejected, 0.15, 0.0, 96, false},
      {5, NodeFate::kQuarantined, 0.0, 0.0, 0, false},
      {7, NodeFate::kCompleted, 0.0, 0.0, 88, false},
  };
  return {first, second};
}

void ExpectRecordsEqual(const RoundRecord& a, const RoundRecord& b) {
  EXPECT_EQ(a.session, b.session);
  EXPECT_EQ(a.query_id, b.query_id);
  EXPECT_EQ(a.round, b.round);
  EXPECT_EQ(a.policy, b.policy);
  EXPECT_EQ(a.aggregation, b.aggregation);
  EXPECT_EQ(a.engaged, b.engaged);
  EXPECT_EQ(a.survivors, b.survivors);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.quarantined, b.quarantined);
  EXPECT_EQ(a.rank_index_rankings, b.rank_index_rankings);
  EXPECT_EQ(a.rank_cache_hits, b.rank_cache_hits);
  EXPECT_EQ(a.rank_cache_misses, b.rank_cache_misses);
  EXPECT_EQ(a.rank_candidate_nodes, b.rank_candidate_nodes);
  EXPECT_EQ(a.wire_down_bytes, b.wire_down_bytes);
  EXPECT_EQ(a.wire_up_bytes, b.wire_up_bytes);
  EXPECT_EQ(a.quorum_met, b.quorum_met);
  EXPECT_DOUBLE_EQ(a.parallel_seconds, b.parallel_seconds);
  EXPECT_DOUBLE_EQ(a.total_train_seconds, b.total_train_seconds);
  EXPECT_DOUBLE_EQ(a.comm_seconds, b.comm_seconds);
  EXPECT_EQ(a.has_loss, b.has_loss);
  if (a.has_loss && b.has_loss) {
    EXPECT_DOUBLE_EQ(a.loss, b.loss);
  }
  ASSERT_EQ(a.nodes.size(), b.nodes.size());
  for (size_t i = 0; i < a.nodes.size(); ++i) {
    EXPECT_EQ(a.nodes[i].node_id, b.nodes[i].node_id);
    EXPECT_EQ(a.nodes[i].fate, b.nodes[i].fate);
    EXPECT_DOUBLE_EQ(a.nodes[i].train_seconds, b.nodes[i].train_seconds);
    EXPECT_DOUBLE_EQ(a.nodes[i].comm_seconds, b.nodes[i].comm_seconds);
    EXPECT_EQ(a.nodes[i].samples_used, b.nodes[i].samples_used);
    EXPECT_EQ(a.nodes[i].straggler, b.nodes[i].straggler);
  }
}

TEST(NodeFateTest, NamesRoundTrip) {
  for (NodeFate fate :
       {NodeFate::kCompleted, NodeFate::kUnavailable, NodeFate::kSendFailed,
        NodeFate::kMissedDeadline, NodeFate::kRejected,
        NodeFate::kQuarantined}) {
    auto parsed = ParseNodeFate(NodeFateName(fate));
    ASSERT_TRUE(parsed.ok()) << NodeFateName(fate);
    EXPECT_EQ(*parsed, fate);
  }
  EXPECT_FALSE(ParseNodeFate("exploded").ok());
}

TEST(RoundRecordJsonlTest, RoundTripsExactly) {
  const std::vector<RoundRecord> records = SampleRecords();
  const std::string jsonl = RoundRecordsToJsonl(records);
  auto parsed = ParseRoundRecordsJsonl(jsonl);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    ExpectRecordsEqual(records[i], (*parsed)[i]);
  }
}

TEST(RoundRecordJsonlTest, SessionFieldOnlyEmittedWhenTagged) {
  // Untagged (sequential Federation) records must serialize byte-identically
  // to the pre-serving schema; tagged records carry the session id.
  const std::vector<RoundRecord> records = SampleRecords();
  EXPECT_EQ(RoundRecordToJson(records[0]).find("\"session\""),
            std::string::npos);
  EXPECT_NE(RoundRecordToJson(records[1]).find("\"session\":3"),
            std::string::npos);
  // Same nonzero-only rule for the ranking-accelerator counters: scan-only
  // records keep the pre-index schema byte-identical.
  EXPECT_EQ(RoundRecordToJson(records[0]).find("rank_index_rankings"),
            std::string::npos);
  EXPECT_EQ(RoundRecordToJson(records[0]).find("rank_cache_hits"),
            std::string::npos);
  EXPECT_NE(RoundRecordToJson(records[1]).find("\"rank_index_rankings\":2"),
            std::string::npos);
  EXPECT_NE(RoundRecordToJson(records[1]).find("\"rank_candidate_nodes\":5"),
            std::string::npos);
  // And for the wire-layer byte counters (wire off = pre-wire schema).
  EXPECT_EQ(RoundRecordToJson(records[0]).find("wire_down_bytes"),
            std::string::npos);
  EXPECT_NE(RoundRecordToJson(records[1]).find("\"wire_down_bytes\":1024"),
            std::string::npos);
  EXPECT_NE(RoundRecordToJson(records[1]).find("\"wire_up_bytes\":212"),
            std::string::npos);
}

TEST(RoundRecordJsonlTest, OneObjectPerLine) {
  const std::string jsonl = RoundRecordsToJsonl(SampleRecords());
  size_t lines = 0;
  for (char c : jsonl) lines += (c == '\n');
  EXPECT_EQ(lines, 2u);
}

TEST(RoundRecordJsonlTest, EmptyAndMalformedInput) {
  auto empty = ParseRoundRecordsJsonl("");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
  EXPECT_FALSE(ParseRoundRecordJson("not json").ok());
  EXPECT_FALSE(ParseRoundRecordJson("[1,2,3]").ok());
}

TEST(RoundRecordCsvTest, RoundTripsExactly) {
  const std::vector<RoundRecord> records = SampleRecords();
  const std::string csv = RoundRecordsToCsv(records);
  auto parsed = ParseRoundRecordsCsv(csv);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    ExpectRecordsEqual(records[i], (*parsed)[i]);
  }
}

TEST(RoundRecordCsvTest, NoEngagedNodesStillRoundTrips) {
  RoundRecord record;
  record.query_id = 7;
  record.policy = "random";
  record.aggregation = "ensemble";
  const std::string csv = RoundRecordsToCsv({record});
  auto parsed = ParseRoundRecordsCsv(csv);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), 1u);
  ExpectRecordsEqual(record, (*parsed)[0]);
}

MetricsSnapshot SampleSnapshot() {
  MetricsRegistry::Enable();
  MetricsRegistry* registry = MetricsRegistry::Get();
  registry->Reset();
  registry->IncrCounter("federation.rounds", 12);
  registry->IncrCounter("kmeans.fits", 4);
  registry->SetGauge("test.gauge", -1.5);
  registry->Observe("span.kmeans.fit.seconds", 0.002);
  registry->Observe("span.kmeans.fit.seconds", 0.25);
  registry->Observe("span.kmeans.fit.seconds", 4000.0);  // Overflow bucket.
  MetricsSnapshot snapshot = registry->Snapshot();
  MetricsRegistry::Disable();
  return snapshot;
}

void ExpectSnapshotsEqual(const MetricsSnapshot& a, const MetricsSnapshot& b) {
  EXPECT_EQ(a.counters, b.counters);
  ASSERT_EQ(a.gauges.size(), b.gauges.size());
  for (const auto& [name, value] : a.gauges) {
    ASSERT_TRUE(b.gauges.count(name)) << name;
    EXPECT_DOUBLE_EQ(value, b.gauges.at(name));
  }
  ASSERT_EQ(a.histograms.size(), b.histograms.size());
  for (const auto& [name, h] : a.histograms) {
    ASSERT_TRUE(b.histograms.count(name)) << name;
    const HistogramSnapshot& other = b.histograms.at(name);
    EXPECT_EQ(h.counts, other.counts);
    EXPECT_EQ(h.total, other.total);
    EXPECT_DOUBLE_EQ(h.sum, other.sum);
    EXPECT_DOUBLE_EQ(h.min, other.min);
    EXPECT_DOUBLE_EQ(h.max, other.max);
    ASSERT_EQ(h.bounds.size(), other.bounds.size());
    for (size_t i = 0; i < h.bounds.size(); ++i) {
      EXPECT_DOUBLE_EQ(h.bounds[i], other.bounds[i]);
    }
  }
}

TEST(MetricsSnapshotJsonTest, RoundTripsExactly) {
  const MetricsSnapshot snapshot = SampleSnapshot();
  const std::string json = MetricsSnapshotToJson(snapshot);
  auto parsed = ParseMetricsSnapshotJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ExpectSnapshotsEqual(snapshot, *parsed);
}

TEST(MetricsSnapshotJsonTest, EmptySnapshotRoundTrips) {
  const MetricsSnapshot empty;
  auto parsed = ParseMetricsSnapshotJson(MetricsSnapshotToJson(empty));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ExpectSnapshotsEqual(empty, *parsed);
  EXPECT_FALSE(ParseMetricsSnapshotJson("{{{").ok());
}

TEST(MetricsSnapshotCsvTest, RoundTripsExactly) {
  const MetricsSnapshot snapshot = SampleSnapshot();
  const std::string csv = MetricsSnapshotToCsv(snapshot);
  auto parsed = ParseMetricsSnapshotCsv(csv);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ExpectSnapshotsEqual(snapshot, *parsed);
}

}  // namespace
}  // namespace qens::obs
