// Tests for the Table III model factory: LR and NN configurations, trainer
// wiring, metrics helpers.

#include "qens/ml/model_factory.h"

#include <gtest/gtest.h>

#include "qens/ml/metrics.h"

namespace qens::ml {
namespace {

TEST(ModelFactoryTest, PaperHyperParamsLR) {
  const HyperParams hp = PaperHyperParams(ModelKind::kLinearRegression);
  EXPECT_EQ(hp.dense_units, 1u);
  EXPECT_EQ(hp.epochs, 100u);
  EXPECT_DOUBLE_EQ(hp.validation_split, 0.2);
  EXPECT_DOUBLE_EQ(hp.learning_rate, 0.03);
  EXPECT_EQ(hp.loss, LossKind::kMse);
  EXPECT_EQ(hp.optimizer, "sgd");
}

TEST(ModelFactoryTest, PaperHyperParamsNN) {
  const HyperParams hp = PaperHyperParams(ModelKind::kNeuralNetwork);
  EXPECT_EQ(hp.dense_units, 64u);
  EXPECT_EQ(hp.epochs, 100u);
  EXPECT_DOUBLE_EQ(hp.validation_split, 0.2);
  EXPECT_DOUBLE_EQ(hp.learning_rate, 0.001);
  EXPECT_EQ(hp.hidden_activation, Activation::kRelu);
  EXPECT_EQ(hp.loss, LossKind::kMse);
  EXPECT_EQ(hp.optimizer, "adam");
}

TEST(ModelFactoryTest, LrModelIsSingleLinearUnit) {
  Rng rng(1);
  auto model = BuildModel(ModelKind::kLinearRegression, 4, &rng);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->num_layers(), 1u);
  EXPECT_EQ(model->input_features(), 4u);
  EXPECT_EQ(model->output_features(), 1u);
  EXPECT_EQ(model->layer(0).activation(), Activation::kIdentity);
}

TEST(ModelFactoryTest, NnModelIsHiddenReluPlusLinear) {
  Rng rng(2);
  auto model = BuildModel(ModelKind::kNeuralNetwork, 4, &rng);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->num_layers(), 2u);
  EXPECT_EQ(model->layer(0).out_features(), 64u);
  EXPECT_EQ(model->layer(0).activation(), Activation::kRelu);
  EXPECT_EQ(model->layer(1).activation(), Activation::kIdentity);
  EXPECT_EQ(model->output_features(), 1u);
}

TEST(ModelFactoryTest, ZeroFeaturesRejected) {
  Rng rng(3);
  EXPECT_FALSE(BuildModel(ModelKind::kLinearRegression, 0, &rng).ok());
}

TEST(ModelFactoryTest, KindNamesRoundTrip) {
  EXPECT_EQ(ParseModelKind(ModelKindName(ModelKind::kLinearRegression)).value(),
            ModelKind::kLinearRegression);
  EXPECT_EQ(ParseModelKind(ModelKindName(ModelKind::kNeuralNetwork)).value(),
            ModelKind::kNeuralNetwork);
  EXPECT_EQ(ParseModelKind("LR").value(), ModelKind::kLinearRegression);
  EXPECT_EQ(ParseModelKind("mlp").value(), ModelKind::kNeuralNetwork);
  EXPECT_FALSE(ParseModelKind("svm").ok());
}

TEST(ModelFactoryTest, TrainerCarriesTableIIIOptions) {
  auto trainer = BuildTrainer(ModelKind::kLinearRegression, 42);
  ASSERT_TRUE(trainer.ok());
  EXPECT_EQ((*trainer)->options().epochs, 100u);
  EXPECT_DOUBLE_EQ((*trainer)->options().validation_split, 0.2);
  EXPECT_EQ((*trainer)->options().loss, LossKind::kMse);
}

TEST(ModelFactoryTest, LrEndToEndFitsALine) {
  // The LR configuration must recover y = 4x - 2 on clean data.
  Rng rng(5);
  auto model = BuildModel(ModelKind::kLinearRegression, 1, &rng);
  ASSERT_TRUE(model.ok());
  auto trainer = BuildTrainer(ModelKind::kLinearRegression, 5);
  ASSERT_TRUE(trainer.ok());

  const size_t n = 256;
  Matrix x(n, 1), y(n, 1);
  Rng data_rng(6);
  for (size_t i = 0; i < n; ++i) {
    x(i, 0) = data_rng.Uniform(-1, 1);
    y(i, 0) = 4.0 * x(i, 0) - 2.0;
  }
  ASSERT_TRUE((*trainer)->Fit(&model.value(), x, y).ok());
  auto pred = model->Predict(x);
  ASSERT_TRUE(pred.ok());
  auto metrics = EvaluateRegression(*pred, y);
  ASSERT_TRUE(metrics.ok());
  EXPECT_LT(metrics->mse, 0.01);
  EXPECT_GT(metrics->r_squared, 0.99);
}

TEST(MetricsTest, PerfectPrediction) {
  Matrix p{{1}, {2}, {3}};
  auto m = EvaluateRegression(p, p);
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ(m->mse, 0.0);
  EXPECT_DOUBLE_EQ(m->mae, 0.0);
  EXPECT_DOUBLE_EQ(m->r_squared, 1.0);
  EXPECT_EQ(m->count, 3u);
}

TEST(MetricsTest, KnownErrors) {
  Matrix pred{{2}, {4}};
  Matrix target{{1}, {5}};
  auto m = EvaluateRegression(pred, target);
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ(m->mse, 1.0);
  EXPECT_DOUBLE_EQ(m->rmse, 1.0);
  EXPECT_DOUBLE_EQ(m->mae, 1.0);
}

TEST(MetricsTest, ConstantTargetRSquaredZero) {
  Matrix pred{{1}, {2}};
  Matrix target{{3}, {3}};
  auto m = EvaluateRegression(pred, target);
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ(m->r_squared, 0.0);
}

TEST(MetricsTest, VectorOverload) {
  auto m = EvaluateRegression(std::vector<double>{1, 2},
                              std::vector<double>{1, 2});
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ(m->mse, 0.0);
  EXPECT_FALSE(EvaluateRegression(std::vector<double>{1},
                                  std::vector<double>{1, 2})
                   .ok());
}

TEST(MetricsTest, ShapeErrors) {
  Matrix a(2, 1), b(3, 1), empty;
  EXPECT_FALSE(EvaluateRegression(a, b).ok());
  EXPECT_FALSE(EvaluateRegression(empty, empty).ok());
}

}  // namespace
}  // namespace qens::ml
