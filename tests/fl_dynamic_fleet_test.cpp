// End-to-end pin of the dynamic-fleet layer (docs/ROBUSTNESS.md, "Dynamic
// fleets"): with the layer enabled but every rate zero the protocol is
// bit-identical to the layer being off; the full churn + drift + refresh
// trajectory replays bit-identically from its seeds at every worker count;
// churn feeds the quorum-gated failure path; refresh advances the fleet
// epoch; and the accelerated (index + cache) leader stays bitwise-equal to
// the paper-exact scan leader across refreshes (epoch invalidation).

#include <gtest/gtest.h>

#include "qens/common/rng.h"
#include "qens/fl/dynamic_fleet.h"
#include "qens/fl/query_server.h"
#include "qens/obs/metrics.h"
#include "qens/obs/round_record.h"

namespace qens::fl {
namespace {

data::Dataset MakeNodeData(double offset, double slope, uint64_t seed,
                           size_t n = 220) {
  Rng rng(seed);
  Matrix x(n, 1), y(n, 1);
  for (size_t i = 0; i < n; ++i) {
    x(i, 0) = offset + rng.Uniform(0, 10);
    y(i, 0) = slope * x(i, 0) + rng.Gaussian(0, 0.2);
  }
  return data::Dataset::Create(x, y).value();
}

FederationOptions FastOptions() {
  FederationOptions options;
  options.environment.kmeans.k = 3;
  options.ranking.epsilon = 0.1;
  options.query_driven.top_l = 4;
  options.hyper = ml::PaperHyperParams(ml::ModelKind::kLinearRegression);
  options.hyper.epochs = 15;
  options.epochs_per_cluster = 6;
  options.random_l = 2;
  options.seed = 77;
  return options;
}

/// Aggressive dynamics so a short run exercises every path: most nodes
/// churn, drift fires often, and the refresh detector trips on the first
/// unpublished event.
FederationOptions DynamicOptions(bool refresh) {
  FederationOptions options = FastOptions();
  options.dynamic.enabled = true;
  options.dynamic.churn.seed = 11;
  options.dynamic.churn.churn_rate = 0.75;
  options.dynamic.churn.churn_horizon = 32;
  options.dynamic.churn.min_up_rounds = 1;
  options.dynamic.churn.max_up_rounds = 3;
  options.dynamic.churn.min_down_rounds = 1;
  options.dynamic.churn.max_down_rounds = 2;
  options.dynamic.drift.seed = 23;
  options.dynamic.drift.rate = 0.4;
  options.dynamic.drift.feature_shift = 0.05;
  options.dynamic.refresh = refresh;
  options.dynamic.refresh_threshold = 0.001;
  return options;
}

std::vector<data::Dataset> MakeNodes() {
  return {MakeNodeData(0, 2.0, 1), MakeNodeData(0, 2.0, 2),
          MakeNodeData(0, 2.0, 3), MakeNodeData(0, 2.0, 4)};
}

query::RangeQuery QueryOver(double lo, double hi, uint64_t id) {
  query::RangeQuery q;
  q.id = id;
  q.region = query::HyperRectangle::FromFlatBounds({lo, hi}).value();
  return q;
}

std::vector<SessionSpec> MakeSpecs(size_t rounds = 3) {
  std::vector<SessionSpec> specs;
  for (size_t s = 0; s < 3; ++s) {
    SessionSpec spec;
    spec.queries.push_back(QueryOver(0, 6.0 + static_cast<double>(s), 100 + s));
    spec.queries.push_back(QueryOver(0, 4.0, 200 + s));
    spec.queries.push_back(QueryOver(0, 6.0 + static_cast<double>(s), 100 + s));
    spec.rounds = rounds;
    specs.push_back(std::move(spec));
  }
  return specs;
}

void ExpectIdenticalOutcomes(const QueryOutcome& a, const QueryOutcome& b) {
  EXPECT_EQ(a.skipped, b.skipped);
  EXPECT_EQ(a.selected_nodes, b.selected_nodes);
  EXPECT_EQ(a.round_survivors, b.round_survivors);
  EXPECT_EQ(a.samples_used, b.samples_used);
  EXPECT_EQ(a.failed_nodes, b.failed_nodes);
  EXPECT_EQ(a.degraded_rounds, b.degraded_rounds);
  EXPECT_EQ(a.nodes_joined, b.nodes_joined);
  EXPECT_EQ(a.nodes_left, b.nodes_left);
  EXPECT_EQ(a.fleet_refreshes, b.fleet_refreshes);
  EXPECT_EQ(a.fleet_epoch, b.fleet_epoch);
  if (a.skipped || b.skipped) return;
  EXPECT_DOUBLE_EQ(a.loss_model_avg, b.loss_model_avg);
  EXPECT_DOUBLE_EQ(a.loss_weighted, b.loss_weighted);
  EXPECT_DOUBLE_EQ(a.loss_fedavg, b.loss_fedavg);
  EXPECT_DOUBLE_EQ(a.sim_time_total, b.sim_time_total);
  EXPECT_DOUBLE_EQ(a.sim_time_parallel, b.sim_time_parallel);
  EXPECT_DOUBLE_EQ(a.sim_time_comm, b.sim_time_comm);
}

void ExpectIdenticalServes(const std::vector<SessionResult>& a,
                           const std::vector<SessionResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t s = 0; s < a.size(); ++s) {
    EXPECT_EQ(a[s].session_id, b[s].session_id);
    EXPECT_EQ(a[s].status.ok(), b[s].status.ok());
    EXPECT_EQ(a[s].queries_run, b[s].queries_run);
    EXPECT_EQ(a[s].comm_messages, b[s].comm_messages);
    EXPECT_EQ(a[s].comm_bytes, b[s].comm_bytes);
    ASSERT_EQ(a[s].outcomes.size(), b[s].outcomes.size());
    for (size_t i = 0; i < a[s].outcomes.size(); ++i) {
      ExpectIdenticalOutcomes(a[s].outcomes[i], b[s].outcomes[i]);
    }
  }
}

TEST(DynamicFleetTest, CreateValidatesOptions) {
  // Dynamic options are validated where the mutable state is built —
  // QuerySession::Create — matching the fault/byzantine idiom.
  auto session_with = [](void (*tweak)(DynamicFleetOptions&)) {
    FederationOptions options = FastOptions();
    options.dynamic.enabled = true;
    tweak(options.dynamic);
    auto fleet = Fleet::Create(MakeNodes(), options);
    EXPECT_TRUE(fleet.ok());
    return QuerySession::Create(*fleet, QuerySessionOptions{});
  };

  EXPECT_FALSE(
      session_with([](DynamicFleetOptions& d) { d.drift.rate = 1.5; }).ok());
  EXPECT_FALSE(session_with([](DynamicFleetOptions& d) {
                 d.drift.rate = 0.2;
                 d.drift.feature_shift = -0.1;
               }).ok());
  EXPECT_FALSE(session_with([](DynamicFleetOptions& d) {
                 d.refresh = true;
                 d.refresh_threshold = 0.0;
               }).ok());
  EXPECT_FALSE(session_with([](DynamicFleetOptions& d) {
                 d.churn.churn_rate = 2.0;
               }).ok());
}

TEST(DynamicFleetTest, ZeroRatesMatchDisabledLayerExactly) {
  // dynamic.enabled with no churn and no drift routes every round through
  // the dynamic code path but must not change a single outcome bit.
  auto off = Fleet::Create(MakeNodes(), FastOptions());
  ASSERT_TRUE(off.ok());
  FederationOptions zeroed = FastOptions();
  zeroed.dynamic.enabled = true;
  auto on = Fleet::Create(MakeNodes(), zeroed);
  ASSERT_TRUE(on.ok());

  auto off_server = QueryServer::Create(*off, ServingOptions{});
  auto on_server = QueryServer::Create(*on, ServingOptions{});
  ASSERT_TRUE(off_server.ok());
  ASSERT_TRUE(on_server.ok());
  auto expected = off_server->Serve(MakeSpecs());
  auto actual = on_server->Serve(MakeSpecs());
  ASSERT_TRUE(expected.ok());
  ASSERT_TRUE(actual.ok());
  ExpectIdenticalServes(*expected, *actual);
  for (const SessionResult& session : *actual) {
    for (const QueryOutcome& outcome : session.outcomes) {
      EXPECT_EQ(outcome.nodes_joined, 0u);
      EXPECT_EQ(outcome.nodes_left, 0u);
      EXPECT_EQ(outcome.fleet_refreshes, 0u);
      EXPECT_EQ(outcome.fleet_epoch, 0u);
    }
  }
}

TEST(DynamicFleetTest, TrajectoryReplaysBitIdenticallyAtEveryWorkerCount) {
  // The whole churn + drift + refresh trajectory is a pure function of the
  // seeds: a twin fleet serves the same specs bit-identically, sequentially
  // and at 2 and 4 workers.
  auto fleet = Fleet::Create(MakeNodes(), DynamicOptions(/*refresh=*/true));
  ASSERT_TRUE(fleet.ok());
  auto baseline = QueryServer::Create(*fleet, ServingOptions{});
  ASSERT_TRUE(baseline.ok());
  auto expected = baseline->Serve(MakeSpecs());
  ASSERT_TRUE(expected.ok());

  // The dynamics actually fired somewhere in the workload.
  size_t joined = 0, left = 0, refreshes = 0;
  for (const SessionResult& session : *expected) {
    ASSERT_TRUE(session.status.ok()) << session.status.ToString();
    for (const QueryOutcome& outcome : session.outcomes) {
      joined += outcome.nodes_joined;
      left += outcome.nodes_left;
      refreshes += outcome.fleet_refreshes;
    }
  }
  EXPECT_GT(left, 0u);
  EXPECT_GT(joined, 0u);
  EXPECT_GT(refreshes, 0u);

  for (size_t workers : {size_t{0}, size_t{2}, size_t{4}}) {
    auto twin = Fleet::Create(MakeNodes(), DynamicOptions(/*refresh=*/true));
    ASSERT_TRUE(twin.ok());
    ServingOptions serving;
    serving.num_workers = workers;
    auto server = QueryServer::Create(*twin, serving);
    ASSERT_TRUE(server.ok());
    auto results = server->Serve(MakeSpecs());
    ASSERT_TRUE(results.ok()) << "workers=" << workers;
    ExpectIdenticalServes(*expected, *results);
  }
}

TEST(DynamicFleetTest, ChurnFeedsTheQuorumGatedFailurePath) {
  auto fleet = Fleet::Create(MakeNodes(), DynamicOptions(/*refresh=*/false));
  ASSERT_TRUE(fleet.ok());
  auto session = QuerySession::Create(*fleet, QuerySessionOptions{});
  ASSERT_TRUE(session.ok());
  ASSERT_NE(session->dynamic_fleet(), nullptr);

  size_t failed = 0;
  for (uint64_t q = 0; q < 6; ++q) {
    auto outcome = session->RunQueryMultiRound(
        QueryOver(0, 8, q + 1), selection::PolicyKind::kQueryDriven,
        /*data_selectivity=*/true, /*rounds=*/4);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    if (outcome->skipped) continue;
    failed += outcome->failed_nodes.size();
    // Graceful degradation: even a fully-departed round answers with the
    // last committed model rather than erroring.
    EXPECT_FALSE(outcome->round_survivors.empty());
  }
  // With 75% of a 4-node fleet churning on 1-3 round up intervals, some
  // selected node was absent at some point.
  EXPECT_GT(failed, 0u);
  EXPECT_GT(session->dynamic_fleet()->rounds_started(), 0u);
}

TEST(DynamicFleetTest, RefreshAdvancesEpochAndPublishesFreshGeometry) {
  auto fleet = Fleet::Create(MakeNodes(), DynamicOptions(/*refresh=*/true));
  ASSERT_TRUE(fleet.ok());
  auto session = QuerySession::Create(*fleet, QuerySessionOptions{});
  ASSERT_TRUE(session.ok());
  uint64_t last_epoch = 0;
  size_t refreshes = 0;
  for (uint64_t q = 0; q < 4; ++q) {
    auto outcome = session->RunQueryMultiRound(
        QueryOver(0, 8, q + 1), selection::PolicyKind::kQueryDriven,
        /*data_selectivity=*/true, /*rounds=*/4);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    refreshes += outcome->fleet_refreshes;
    EXPECT_GE(outcome->fleet_epoch, last_epoch);  // Monotone.
    last_epoch = outcome->fleet_epoch;
  }
  EXPECT_GT(refreshes, 0u);
  EXPECT_GT(last_epoch, 0u);
  EXPECT_EQ(session->leader().fleet_epoch(), last_epoch);
}

TEST(DynamicFleetTest, WithoutRefreshEpochStaysAtBaseAndStalenessGrows) {
  obs::MetricsRegistry::Enable();
  auto fleet = Fleet::Create(MakeNodes(), DynamicOptions(/*refresh=*/false));
  ASSERT_TRUE(fleet.ok());
  auto session = QuerySession::Create(*fleet, QuerySessionOptions{});
  ASSERT_TRUE(session.ok());
  size_t stale_seen = 0;
  for (uint64_t q = 0; q < 4; ++q) {
    auto outcome = session->RunQueryMultiRound(
        QueryOver(0, 8, q + 1), selection::PolicyKind::kQueryDriven,
        /*data_selectivity=*/true, /*rounds=*/4);
    ASSERT_TRUE(outcome.ok());
    EXPECT_EQ(outcome->fleet_refreshes, 0u);
    EXPECT_EQ(outcome->fleet_epoch, 0u);
    for (const obs::RoundRecord& record : outcome->round_records) {
      stale_seen += record.stale_rounds;
      EXPECT_EQ(record.refreshes, 0u);
    }
  }
  // Drift fires but nothing republishes, so staleness accumulates.
  EXPECT_GT(stale_seen, 0u);
  obs::MetricsRegistry::Disable();
}

TEST(DynamicFleetTest, AcceleratedLeaderMatchesScanLeaderAcrossRefreshes) {
  // The epoch-invalidation differential: with online refreshes rewriting
  // the cluster geometry mid-stream, a leader running the spatial index +
  // ranking cache must stay bitwise-equal to the always-correct scan
  // leader (stale cache entries dropped, index rebuilt in lockstep).
  auto scan_fleet =
      Fleet::Create(MakeNodes(), DynamicOptions(/*refresh=*/true));
  ASSERT_TRUE(scan_fleet.ok());
  FederationOptions accel = DynamicOptions(/*refresh=*/true);
  accel.ranking.use_index = true;
  accel.ranking.use_cache = true;
  auto accel_fleet = Fleet::Create(MakeNodes(), accel);
  ASSERT_TRUE(accel_fleet.ok());

  auto scan_server = QueryServer::Create(*scan_fleet, ServingOptions{});
  auto accel_server = QueryServer::Create(*accel_fleet, ServingOptions{});
  ASSERT_TRUE(scan_server.ok());
  ASSERT_TRUE(accel_server.ok());
  auto expected = scan_server->Serve(MakeSpecs());
  auto actual = accel_server->Serve(MakeSpecs());
  ASSERT_TRUE(expected.ok());
  ASSERT_TRUE(actual.ok());
  ExpectIdenticalServes(*expected, *actual);

  // The accelerated run refreshed (epoch moved) — the equality above was
  // exercised across a geometry change, not on a static fleet.
  size_t refreshes = 0;
  for (const SessionResult& session : *actual) {
    for (const QueryOutcome& outcome : session.outcomes) {
      refreshes += outcome.fleet_refreshes;
    }
  }
  EXPECT_GT(refreshes, 0u);
}

TEST(DynamicFleetTest, DynamicRoundRecordsRoundTripThroughExporters) {
  obs::MetricsRegistry::Enable();
  auto fleet = Fleet::Create(MakeNodes(), DynamicOptions(/*refresh=*/true));
  ASSERT_TRUE(fleet.ok());
  auto session = QuerySession::Create(*fleet, QuerySessionOptions{});
  ASSERT_TRUE(session.ok());
  std::vector<obs::RoundRecord> records;
  for (uint64_t q = 0; q < 3; ++q) {
    auto outcome = session->RunQueryMultiRound(
        QueryOver(0, 8, q + 1), selection::PolicyKind::kQueryDriven,
        /*data_selectivity=*/true, /*rounds=*/4);
    ASSERT_TRUE(outcome.ok());
    for (auto& record : outcome->round_records) {
      records.push_back(std::move(record));
    }
  }
  ASSERT_FALSE(records.empty());
  size_t joined = 0, refreshes = 0, stale = 0;
  for (const obs::RoundRecord& record : records) {
    joined += record.nodes_joined + record.nodes_left;
    refreshes += record.refreshes;
    stale += record.stale_rounds;
  }
  EXPECT_GT(joined, 0u);
  EXPECT_GT(refreshes, 0u);

  auto from_json = obs::ParseRoundRecordsJsonl(obs::RoundRecordsToJsonl(records));
  ASSERT_TRUE(from_json.ok()) << from_json.status().ToString();
  auto from_csv = obs::ParseRoundRecordsCsv(obs::RoundRecordsToCsv(records));
  ASSERT_TRUE(from_csv.ok()) << from_csv.status().ToString();
  ASSERT_EQ(from_json->size(), records.size());
  ASSERT_EQ(from_csv->size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    for (const obs::RoundRecord* parsed :
         {&(*from_json)[i], &(*from_csv)[i]}) {
      EXPECT_EQ(parsed->fleet_epoch, records[i].fleet_epoch);
      EXPECT_EQ(parsed->nodes_joined, records[i].nodes_joined);
      EXPECT_EQ(parsed->nodes_left, records[i].nodes_left);
      EXPECT_EQ(parsed->refreshes, records[i].refreshes);
      EXPECT_EQ(parsed->stale_rounds, records[i].stale_rounds);
    }
  }
  obs::MetricsRegistry::Disable();
}

}  // namespace
}  // namespace qens::fl
