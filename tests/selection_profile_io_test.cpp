// Tests for the NodeProfile wire codec: exact round trips and malformed
// input rejection.

#include "qens/selection/profile_io.h"

#include <gtest/gtest.h>

namespace qens::selection {
namespace {

NodeProfile SampleProfile() {
  NodeProfile p;
  p.node_id = 7;
  p.name = "Dingling-7";
  p.total_samples = 1234;
  for (int c = 0; c < 3; ++c) {
    clustering::ClusterSummary cluster;
    cluster.size = 400 + c;
    cluster.centroid = {1.5 + c, -2.25 * c};
    cluster.bounds =
        query::HyperRectangle::FromFlatBounds(
            {0.1 * c, 1.0 + c, -5.5, 5.5 + 0.125 * c})
            .value();
    p.clusters.push_back(cluster);
  }
  return p;
}

TEST(ProfileIoTest, RoundTripIsExact) {
  const NodeProfile p = SampleProfile();
  auto back = DeserializeProfile(SerializeProfile(p));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->node_id, p.node_id);
  EXPECT_EQ(back->name, p.name);
  EXPECT_EQ(back->total_samples, p.total_samples);
  ASSERT_EQ(back->clusters.size(), p.clusters.size());
  for (size_t c = 0; c < p.clusters.size(); ++c) {
    EXPECT_EQ(back->clusters[c].size, p.clusters[c].size);
    EXPECT_EQ(back->clusters[c].centroid, p.clusters[c].centroid);
    EXPECT_EQ(back->clusters[c].bounds, p.clusters[c].bounds);
  }
}

TEST(ProfileIoTest, EmptyNameRoundTrips) {
  NodeProfile p = SampleProfile();
  p.name.clear();
  auto back = DeserializeProfile(SerializeProfile(p));
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->name.empty());
}

TEST(ProfileIoTest, NoClusters) {
  NodeProfile p;
  p.node_id = 1;
  p.total_samples = 10;
  auto back = DeserializeProfile(SerializeProfile(p));
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->clusters.empty());
}

TEST(ProfileIoTest, RejectsBadMagic) {
  EXPECT_FALSE(DeserializeProfile("wrong v1\n").ok());
  EXPECT_FALSE(DeserializeProfile("").ok());
}

TEST(ProfileIoTest, RejectsMalformedClusterLine) {
  const std::string text =
      "qens-profile v1\nnode 0 n\nsamples 10\nclusters 1\n"
      "cluster 5 2 0x1p0\n";  // Too few fields for d = 2.
  EXPECT_FALSE(DeserializeProfile(text).ok());
}

TEST(ProfileIoTest, RejectsTruncatedClusters) {
  const std::string text =
      "qens-profile v1\nnode 0 n\nsamples 10\nclusters 2\n"
      "cluster 5 1 0x1p0 0x0p0 0x1p0\n";  // Only one of two clusters.
  EXPECT_FALSE(DeserializeProfile(text).ok());
}

TEST(ProfileIoTest, RejectsInvalidBounds) {
  // min > max in the single dimension.
  const std::string text =
      "qens-profile v1\nnode 0 n\nsamples 10\nclusters 1\n"
      "cluster 5 1 0x1p0 0x1p2 0x1p0\n";
  EXPECT_FALSE(DeserializeProfile(text).ok());
}

TEST(ProfileIoTest, CommentsIgnored) {
  NodeProfile p = SampleProfile();
  std::string text = "# header comment\n" + SerializeProfile(p);
  EXPECT_TRUE(DeserializeProfile(text).ok());
}

TEST(ProfileIoTest, SerializedBytesMatchesText) {
  const NodeProfile p = SampleProfile();
  EXPECT_EQ(SerializedProfileBytes(p), SerializeProfile(p).size());
}

}  // namespace
}  // namespace qens::selection
