// Tests for activation functions and their derivatives.

#include "qens/ml/activation.h"

#include <gtest/gtest.h>

#include <cmath>

namespace qens::ml {
namespace {

Matrix Apply(Activation a, const Matrix& z) {
  Matrix out;
  ApplyActivation(a, z, &out);
  return out;
}

Matrix Grad(Activation a, const Matrix& z) {
  Matrix out;
  ApplyActivationGrad(a, z, &out);
  return out;
}

TEST(ActivationTest, Identity) {
  Matrix z{{-2, 0, 3}};
  EXPECT_EQ(Apply(Activation::kIdentity, z), z);
  Matrix g = Grad(Activation::kIdentity, z);
  EXPECT_EQ(g(0, 0), 1.0);
  EXPECT_EQ(g(0, 2), 1.0);
}

TEST(ActivationTest, Relu) {
  Matrix z{{-2, 0, 3}};
  Matrix y = Apply(Activation::kRelu, z);
  EXPECT_EQ(y(0, 0), 0.0);
  EXPECT_EQ(y(0, 1), 0.0);
  EXPECT_EQ(y(0, 2), 3.0);
  Matrix g = Grad(Activation::kRelu, z);
  EXPECT_EQ(g(0, 0), 0.0);
  EXPECT_EQ(g(0, 1), 0.0);  // Subgradient choice at 0.
  EXPECT_EQ(g(0, 2), 1.0);
}

TEST(ActivationTest, Sigmoid) {
  Matrix z{{0.0}};
  EXPECT_DOUBLE_EQ(Apply(Activation::kSigmoid, z)(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(Grad(Activation::kSigmoid, z)(0, 0), 0.25);
  Matrix big{{50.0}};
  EXPECT_NEAR(Apply(Activation::kSigmoid, big)(0, 0), 1.0, 1e-12);
}

TEST(ActivationTest, Tanh) {
  Matrix z{{0.0}};
  EXPECT_DOUBLE_EQ(Apply(Activation::kTanh, z)(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(Grad(Activation::kTanh, z)(0, 0), 1.0);
  Matrix one{{1.0}};
  EXPECT_NEAR(Apply(Activation::kTanh, one)(0, 0), std::tanh(1.0), 1e-15);
}

TEST(ActivationTest, InPlaceAliasedOutput) {
  Matrix z{{-1, 1}};
  ApplyActivation(Activation::kRelu, z, &z);
  EXPECT_EQ(z(0, 0), 0.0);
  EXPECT_EQ(z(0, 1), 1.0);
}

// Numerical derivative check across all activations.
class ActivationGradParamTest : public ::testing::TestWithParam<Activation> {};

TEST_P(ActivationGradParamTest, MatchesFiniteDifference) {
  const Activation act = GetParam();
  const double eps = 1e-6;
  for (double x : {-1.7, -0.5, 0.3, 1.2, 2.8}) {
    Matrix lo{{x - eps}};
    Matrix hi{{x + eps}};
    const double numeric =
        (Apply(act, hi)(0, 0) - Apply(act, lo)(0, 0)) / (2 * eps);
    Matrix z{{x}};
    const double analytic = Grad(act, z)(0, 0);
    EXPECT_NEAR(analytic, numeric, 1e-5) << "activation "
                                         << ActivationName(act) << " at " << x;
  }
}

INSTANTIATE_TEST_SUITE_P(AllActivations, ActivationGradParamTest,
                         ::testing::Values(Activation::kIdentity,
                                           Activation::kRelu,
                                           Activation::kSigmoid,
                                           Activation::kTanh));

TEST(ActivationNameTest, RoundTrip) {
  for (Activation a : {Activation::kIdentity, Activation::kRelu,
                       Activation::kSigmoid, Activation::kTanh}) {
    auto parsed = ParseActivation(ActivationName(a));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, a);
  }
}

TEST(ActivationNameTest, ParseAliasesAndErrors) {
  EXPECT_EQ(ParseActivation("linear").value(), Activation::kIdentity);
  EXPECT_EQ(ParseActivation("  ReLU ").value(), Activation::kRelu);
  EXPECT_FALSE(ParseActivation("swish").ok());
}

}  // namespace
}  // namespace qens::ml
