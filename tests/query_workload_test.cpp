// Tests for RangeQuery row matching and the [18]-style workload generator.

#include "qens/query/workload_generator.h"

#include <gtest/gtest.h>

#include "qens/query/range_query.h"

namespace qens::query {
namespace {

TEST(RangeQueryTest, MatchingRows) {
  Matrix features{{1, 1}, {5, 5}, {3, 9}, {2, 2}};
  RangeQuery q;
  q.region = HyperRectangle::FromFlatBounds({0, 3, 0, 3}).value();
  auto rows = q.MatchingRows(features);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(*rows, (std::vector<size_t>{0, 3}));
}

TEST(RangeQueryTest, BoundaryIsInclusive) {
  Matrix features{{3.0}};
  RangeQuery q;
  q.region = HyperRectangle::FromFlatBounds({0, 3}).value();
  EXPECT_EQ(q.MatchingRows(features)->size(), 1u);
}

TEST(RangeQueryTest, DimMismatchFails) {
  Matrix features{{1, 2}};
  RangeQuery q;
  q.region = HyperRectangle::FromFlatBounds({0, 3}).value();
  EXPECT_FALSE(q.MatchingRows(features).ok());
}

TEST(RangeQueryTest, Selectivity) {
  Matrix features{{0.0}, {1.0}, {2.0}, {3.0}};
  RangeQuery q;
  q.region = HyperRectangle::FromFlatBounds({0.5, 2.5}).value();
  EXPECT_DOUBLE_EQ(q.Selectivity(features).value(), 0.5);
  Matrix empty(0, 1);
  EXPECT_DOUBLE_EQ(q.Selectivity(empty).value(), 0.0);
}

TEST(RangeQueryTest, ToStringContainsId) {
  RangeQuery q;
  q.id = 42;
  q.region = HyperRectangle::FromFlatBounds({0, 1}).value();
  EXPECT_NE(q.ToString().find("q42"), std::string::npos);
}

HyperRectangle UnitSpace2D() {
  return HyperRectangle::FromFlatBounds({0, 100, -50, 50}).value();
}

TEST(WorkloadGeneratorTest, GeneratesRequestedCount) {
  WorkloadOptions options;
  options.num_queries = 200;  // The paper's workload size.
  WorkloadGenerator gen(UnitSpace2D(), options);
  auto queries = gen.Generate();
  ASSERT_TRUE(queries.ok());
  EXPECT_EQ(queries->size(), 200u);
}

TEST(WorkloadGeneratorTest, QueriesStayInsideDataSpace) {
  WorkloadOptions options;
  options.num_queries = 500;
  WorkloadGenerator gen(UnitSpace2D(), options);
  auto queries = gen.Generate();
  ASSERT_TRUE(queries.ok());
  const HyperRectangle space = UnitSpace2D();
  for (const auto& q : *queries) {
    ASSERT_EQ(q.dims(), 2u);
    EXPECT_TRUE(space.ContainsBox(q.region)) << q.ToString();
    EXPECT_TRUE(q.region.valid());
  }
}

TEST(WorkloadGeneratorTest, WidthsRespectFractions) {
  WorkloadOptions options;
  options.num_queries = 300;
  options.min_width_frac = 0.2;
  options.max_width_frac = 0.4;
  WorkloadGenerator gen(UnitSpace2D(), options);
  auto queries = gen.Generate();
  ASSERT_TRUE(queries.ok());
  for (const auto& q : *queries) {
    for (size_t d = 0; d < 2; ++d) {
      const double extent = UnitSpace2D().dim(d).length();
      // Clipping at the space border can shrink but never widen a query.
      EXPECT_LE(q.region.dim(d).length(), 0.4 * extent + 1e-9);
    }
  }
}

TEST(WorkloadGeneratorTest, ConsecutiveIds) {
  WorkloadOptions options;
  options.num_queries = 5;
  options.first_id = 10;
  WorkloadGenerator gen(UnitSpace2D(), options);
  auto queries = gen.Generate();
  ASSERT_TRUE(queries.ok());
  for (size_t i = 0; i < 5; ++i) EXPECT_EQ((*queries)[i].id, 10u + i);
}

TEST(WorkloadGeneratorTest, DeterministicGivenSeed) {
  WorkloadOptions options;
  options.num_queries = 50;
  options.seed = 777;
  auto q1 = WorkloadGenerator(UnitSpace2D(), options).Generate();
  auto q2 = WorkloadGenerator(UnitSpace2D(), options).Generate();
  ASSERT_TRUE(q1.ok());
  ASSERT_TRUE(q2.ok());
  for (size_t i = 0; i < 50; ++i) {
    EXPECT_EQ((*q1)[i].region, (*q2)[i].region);
  }
}

TEST(WorkloadGeneratorTest, DifferentSeedsDiffer) {
  WorkloadOptions a, b;
  a.seed = 1;
  b.seed = 2;
  auto qa = WorkloadGenerator(UnitSpace2D(), a).Generate();
  auto qb = WorkloadGenerator(UnitSpace2D(), b).Generate();
  ASSERT_TRUE(qa.ok());
  ASSERT_TRUE(qb.ok());
  EXPECT_NE((*qa)[0].region, (*qb)[0].region);
}

TEST(WorkloadGeneratorTest, DriftingCentersStayBounded) {
  WorkloadOptions options;
  options.num_queries = 200;
  options.drifting_centers = true;
  options.drift_step_frac = 0.05;
  WorkloadGenerator gen(UnitSpace2D(), options);
  auto queries = gen.Generate();
  ASSERT_TRUE(queries.ok());
  const HyperRectangle space = UnitSpace2D();
  for (const auto& q : *queries) EXPECT_TRUE(space.ContainsBox(q.region));
}

TEST(WorkloadGeneratorTest, DriftingCentersMoveGradually) {
  WorkloadOptions options;
  options.num_queries = 100;
  options.drifting_centers = true;
  options.drift_step_frac = 0.02;
  options.min_width_frac = 0.1;
  options.max_width_frac = 0.1;
  WorkloadGenerator gen(UnitSpace2D(), options);
  auto queries = gen.Generate();
  ASSERT_TRUE(queries.ok());
  // Consecutive query centers must lie within the drift step (+width jitter).
  for (size_t i = 1; i < queries->size(); ++i) {
    for (size_t d = 0; d < 2; ++d) {
      const double extent = UnitSpace2D().dim(d).length();
      const double c_prev = 0.5 * ((*queries)[i - 1].region.dim(d).lo +
                                   (*queries)[i - 1].region.dim(d).hi);
      const double c_cur = 0.5 * ((*queries)[i].region.dim(d).lo +
                                  (*queries)[i].region.dim(d).hi);
      EXPECT_LE(std::abs(c_cur - c_prev), 0.1 * extent + 1e-9);
    }
  }
}

TEST(WorkloadGeneratorTest, ValidationErrors) {
  WorkloadOptions options;
  options.num_queries = 0;
  EXPECT_FALSE(WorkloadGenerator(UnitSpace2D(), options).Generate().ok());

  options = WorkloadOptions();
  options.min_width_frac = 0.0;
  EXPECT_FALSE(WorkloadGenerator(UnitSpace2D(), options).Generate().ok());

  options = WorkloadOptions();
  options.min_width_frac = 0.6;
  options.max_width_frac = 0.5;
  EXPECT_FALSE(WorkloadGenerator(UnitSpace2D(), options).Generate().ok());

  options = WorkloadOptions();
  EXPECT_FALSE(WorkloadGenerator(HyperRectangle(), options).Generate().ok());

  options = WorkloadOptions();
  options.drifting_centers = true;
  options.drift_step_frac = 0.0;
  EXPECT_FALSE(WorkloadGenerator(UnitSpace2D(), options).Generate().ok());
}

TEST(WorkloadGeneratorTest, NextAdvancesStream) {
  WorkloadOptions options;
  WorkloadGenerator gen(UnitSpace2D(), options);
  auto a = gen.Next();
  auto b = gen.Next();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->id + 1, b->id);
  EXPECT_NE(a->region, b->region);
}

}  // namespace
}  // namespace qens::query
