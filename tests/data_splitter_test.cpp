// Tests for train/test splits and node partitioners.

#include "qens/data/splitter.h"

#include <gtest/gtest.h>

#include <set>

#include "qens/common/rng.h"

namespace qens::data {
namespace {

Dataset Sequential(size_t n) {
  Matrix x(n, 1), y(n, 1);
  for (size_t i = 0; i < n; ++i) {
    x(i, 0) = static_cast<double>(i);
    y(i, 0) = static_cast<double>(i) * 10;
  }
  return Dataset::Create(x, y).value();
}

TEST(SplitTrainTestTest, SizesAndDisjointness) {
  Dataset d = Sequential(100);
  auto split = SplitTrainTest(d, 0.2, 42);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->test.NumSamples(), 20u);
  EXPECT_EQ(split->train.NumSamples(), 80u);

  std::set<double> train_xs, test_xs;
  for (size_t i = 0; i < 80; ++i) train_xs.insert(split->train.features()(i, 0));
  for (size_t i = 0; i < 20; ++i) test_xs.insert(split->test.features()(i, 0));
  for (double v : test_xs) EXPECT_EQ(train_xs.count(v), 0u);
  EXPECT_EQ(train_xs.size() + test_xs.size(), 100u);
}

TEST(SplitTrainTestTest, TargetsStayAligned) {
  Dataset d = Sequential(50);
  auto split = SplitTrainTest(d, 0.3, 7);
  ASSERT_TRUE(split.ok());
  for (size_t i = 0; i < split->train.NumSamples(); ++i) {
    EXPECT_DOUBLE_EQ(split->train.targets()(i, 0),
                     split->train.features()(i, 0) * 10);
  }
}

TEST(SplitTrainTestTest, Deterministic) {
  Dataset d = Sequential(30);
  auto s1 = SplitTrainTest(d, 0.25, 5);
  auto s2 = SplitTrainTest(d, 0.25, 5);
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(s1->test.features().data(), s2->test.features().data());
}

TEST(SplitTrainTestTest, Errors) {
  Dataset d = Sequential(10);
  EXPECT_FALSE(SplitTrainTest(d, 0.0, 1).ok());
  EXPECT_FALSE(SplitTrainTest(d, 1.0, 1).ok());
  EXPECT_FALSE(SplitTrainTest(Sequential(1), 0.5, 1).ok());
}

TEST(SplitTrainTestTest, TinyDatasetKeepsBothSidesNonEmpty) {
  auto split = SplitTrainTest(Sequential(2), 0.5, 1);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->train.NumSamples(), 1u);
  EXPECT_EQ(split->test.NumSamples(), 1u);
}

TEST(PartitionIidTest, NearEqualShards) {
  Dataset d = Sequential(103);
  auto shards = PartitionIid(d, 10, 3);
  ASSERT_TRUE(shards.ok());
  ASSERT_EQ(shards->size(), 10u);
  size_t total = 0;
  for (const auto& s : *shards) {
    EXPECT_GE(s.NumSamples(), 10u);
    EXPECT_LE(s.NumSamples(), 11u);
    total += s.NumSamples();
  }
  EXPECT_EQ(total, 103u);
}

TEST(PartitionIidTest, ShardsAreDisjointAndCover) {
  Dataset d = Sequential(40);
  auto shards = PartitionIid(d, 4, 9);
  ASSERT_TRUE(shards.ok());
  std::set<double> seen;
  for (const auto& s : *shards) {
    for (size_t i = 0; i < s.NumSamples(); ++i) {
      EXPECT_TRUE(seen.insert(s.features()(i, 0)).second);
    }
  }
  EXPECT_EQ(seen.size(), 40u);
}

TEST(PartitionIidTest, Errors) {
  Dataset d = Sequential(5);
  EXPECT_FALSE(PartitionIid(d, 0, 1).ok());
  EXPECT_FALSE(PartitionIid(d, 6, 1).ok());
}

TEST(PartitionByFeatureTest, ContiguousDisjointRanges) {
  Dataset d = Sequential(90);
  auto shards = PartitionByFeature(d, 0, 3);
  ASSERT_TRUE(shards.ok());
  ASSERT_EQ(shards->size(), 3u);
  // Each shard's feature range must sit strictly below the next shard's.
  for (size_t s = 0; s + 1 < 3; ++s) {
    double max_here = -1e300, min_next = 1e300;
    for (size_t i = 0; i < (*shards)[s].NumSamples(); ++i) {
      max_here = std::max(max_here, (*shards)[s].features()(i, 0));
    }
    for (size_t i = 0; i < (*shards)[s + 1].NumSamples(); ++i) {
      min_next = std::min(min_next, (*shards)[s + 1].features()(i, 0));
    }
    EXPECT_LT(max_here, min_next);
  }
}

TEST(PartitionByFeatureTest, Errors) {
  Dataset d = Sequential(10);
  EXPECT_FALSE(PartitionByFeature(d, 5, 2).ok());   // Bad feature index.
  EXPECT_FALSE(PartitionByFeature(d, 0, 0).ok());   // n == 0.
  EXPECT_FALSE(PartitionByFeature(d, 0, 11).ok());  // Too many shards.
}

}  // namespace
}  // namespace qens::data
