// Tests for the Leader decision front-end (rank + cut) and federation
// determinism (same seed -> identical outcomes).

#include <gtest/gtest.h>

#include "qens/common/rng.h"
#include "qens/fl/federation.h"
#include "qens/fl/leader.h"

namespace qens::fl {
namespace {

selection::NodeProfile MakeProfile(size_t id, double lo, double hi) {
  selection::NodeProfile p;
  p.node_id = id;
  p.total_samples = 100;
  clustering::ClusterSummary c;
  c.centroid = {(lo + hi) / 2};
  c.bounds = query::HyperRectangle::FromFlatBounds({lo, hi}).value();
  c.size = 100;
  p.clusters.push_back(c);
  return p;
}

query::RangeQuery MakeQuery(double lo, double hi) {
  query::RangeQuery q;
  q.region = query::HyperRectangle::FromFlatBounds({lo, hi}).value();
  return q;
}

TEST(LeaderTest, DecideRanksAndCuts) {
  std::vector<selection::NodeProfile> profiles = {
      MakeProfile(0, 0, 10),    // Fully matches [0, 10].
      MakeProfile(1, 100, 110),  // Irrelevant.
      MakeProfile(2, 0, 40),    // Partial.
  };
  selection::RankingOptions ranking;
  ranking.epsilon = 0.1;
  selection::QueryDrivenOptions cut;
  cut.top_l = 2;
  Leader leader(profiles, ranking, cut);

  auto decision = leader.Decide(MakeQuery(0, 10));
  ASSERT_TRUE(decision.ok());
  ASSERT_EQ(decision->all_ranks.size(), 3u);
  // DESC order with node 0 first (full overlap).
  EXPECT_EQ(decision->all_ranks[0].node_id, 0u);
  ASSERT_EQ(decision->selected.size(), 2u);
  EXPECT_EQ(decision->SelectedNodeIds(),
            (std::vector<size_t>{0, 2}));
  const std::vector<double> weights = decision->SelectedRankings();
  ASSERT_EQ(weights.size(), 2u);
  EXPECT_GT(weights[0], weights[1]);
}

TEST(LeaderTest, ThresholdCut) {
  std::vector<selection::NodeProfile> profiles = {
      MakeProfile(0, 0, 10), MakeProfile(1, 0, 100)};
  selection::RankingOptions ranking;
  ranking.epsilon = 0.05;
  selection::QueryDrivenOptions cut;
  cut.use_threshold = true;
  cut.psi = 0.9;
  Leader leader(profiles, ranking, cut);
  auto decision = leader.Decide(MakeQuery(0, 10));
  ASSERT_TRUE(decision.ok());
  // Only node 0 (h = 1) clears psi = 0.9; node 1 has h = 0.1.
  ASSERT_EQ(decision->selected.size(), 1u);
  EXPECT_EQ(decision->selected[0].node_id, 0u);
}

TEST(LeaderTest, AccessorsExposeConfiguration) {
  std::vector<selection::NodeProfile> profiles = {MakeProfile(0, 0, 1)};
  selection::RankingOptions ranking;
  ranking.epsilon = 0.42;
  selection::QueryDrivenOptions cut;
  cut.top_l = 7;
  Leader leader(profiles, ranking, cut);
  EXPECT_EQ(leader.profiles().size(), 1u);
  EXPECT_DOUBLE_EQ(leader.ranking_options().epsilon, 0.42);
  EXPECT_EQ(leader.selection_options().top_l, 7u);
}

data::Dataset MakeNodeData(double offset, uint64_t seed) {
  Rng rng(seed);
  Matrix x(150, 1), y(150, 1);
  for (size_t i = 0; i < 150; ++i) {
    x(i, 0) = offset + rng.Uniform(0, 10);
    y(i, 0) = 2.0 * x(i, 0) + rng.Gaussian(0, 0.2);
  }
  return data::Dataset::Create(x, y).value();
}

Result<Federation> MakeFederation(uint64_t seed) {
  FederationOptions options;
  options.environment.kmeans.k = 3;
  options.hyper = ml::PaperHyperParams(ml::ModelKind::kLinearRegression);
  options.hyper.epochs = 10;
  options.epochs_per_cluster = 5;
  options.seed = seed;
  std::vector<data::Dataset> nodes = {MakeNodeData(0, 1), MakeNodeData(5, 2),
                                      MakeNodeData(10, 3)};
  return Federation::Create(std::move(nodes), options);
}

TEST(FederationDeterminismTest, SameSeedSameOutcome) {
  auto fed1 = MakeFederation(42);
  auto fed2 = MakeFederation(42);
  ASSERT_TRUE(fed1.ok());
  ASSERT_TRUE(fed2.ok());
  query::RangeQuery q;
  q.id = 9;
  q.region = query::HyperRectangle::FromFlatBounds({2, 12}).value();
  auto o1 = fed1->RunQueryDriven(q);
  auto o2 = fed2->RunQueryDriven(q);
  ASSERT_TRUE(o1.ok());
  ASSERT_TRUE(o2.ok());
  ASSERT_FALSE(o1->skipped);
  EXPECT_EQ(o1->selected_nodes, o2->selected_nodes);
  EXPECT_DOUBLE_EQ(o1->loss_model_avg, o2->loss_model_avg);
  EXPECT_DOUBLE_EQ(o1->loss_weighted, o2->loss_weighted);
  EXPECT_EQ(o1->samples_used, o2->samples_used);
}

TEST(FederationDeterminismTest, DifferentSeedsMayDiffer) {
  auto fed1 = MakeFederation(1);
  auto fed2 = MakeFederation(2);
  ASSERT_TRUE(fed1.ok());
  ASSERT_TRUE(fed2.ok());
  query::RangeQuery q;
  q.region = query::HyperRectangle::FromFlatBounds({2, 12}).value();
  auto o1 = fed1->RunQueryDriven(q);
  auto o2 = fed2->RunQueryDriven(q);
  ASSERT_TRUE(o1.ok());
  ASSERT_TRUE(o2.ok());
  // Different splits/initializations: losses almost surely differ.
  EXPECT_NE(o1->loss_model_avg, o2->loss_model_avg);
}

TEST(FederationDeterminismTest, RandomPolicyStreamAdvances) {
  auto fed = MakeFederation(7);
  ASSERT_TRUE(fed.ok());
  query::RangeQuery q;
  q.region = query::HyperRectangle::FromFlatBounds({0, 20}).value();
  // Two consecutive random-policy queries draw independent node subsets
  // (not necessarily different, but the stream must advance without error).
  auto o1 = fed->RunQuery(q, selection::PolicyKind::kRandom, false);
  auto o2 = fed->RunQuery(q, selection::PolicyKind::kRandom, false);
  ASSERT_TRUE(o1.ok());
  ASSERT_TRUE(o2.ok());
  EXPECT_FALSE(o1->skipped);
  EXPECT_FALSE(o2->skipped);
}

}  // namespace
}  // namespace qens::fl
