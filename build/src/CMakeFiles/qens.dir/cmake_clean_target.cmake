file(REMOVE_RECURSE
  "libqens.a"
)
