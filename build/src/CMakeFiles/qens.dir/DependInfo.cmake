
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qens/clustering/cluster_summary.cpp" "src/CMakeFiles/qens.dir/qens/clustering/cluster_summary.cpp.o" "gcc" "src/CMakeFiles/qens.dir/qens/clustering/cluster_summary.cpp.o.d"
  "/root/repo/src/qens/clustering/kmeans.cpp" "src/CMakeFiles/qens.dir/qens/clustering/kmeans.cpp.o" "gcc" "src/CMakeFiles/qens.dir/qens/clustering/kmeans.cpp.o.d"
  "/root/repo/src/qens/clustering/silhouette.cpp" "src/CMakeFiles/qens.dir/qens/clustering/silhouette.cpp.o" "gcc" "src/CMakeFiles/qens.dir/qens/clustering/silhouette.cpp.o.d"
  "/root/repo/src/qens/clustering/streaming_quantizer.cpp" "src/CMakeFiles/qens.dir/qens/clustering/streaming_quantizer.cpp.o" "gcc" "src/CMakeFiles/qens.dir/qens/clustering/streaming_quantizer.cpp.o.d"
  "/root/repo/src/qens/common/config.cpp" "src/CMakeFiles/qens.dir/qens/common/config.cpp.o" "gcc" "src/CMakeFiles/qens.dir/qens/common/config.cpp.o.d"
  "/root/repo/src/qens/common/logging.cpp" "src/CMakeFiles/qens.dir/qens/common/logging.cpp.o" "gcc" "src/CMakeFiles/qens.dir/qens/common/logging.cpp.o.d"
  "/root/repo/src/qens/common/rng.cpp" "src/CMakeFiles/qens.dir/qens/common/rng.cpp.o" "gcc" "src/CMakeFiles/qens.dir/qens/common/rng.cpp.o.d"
  "/root/repo/src/qens/common/status.cpp" "src/CMakeFiles/qens.dir/qens/common/status.cpp.o" "gcc" "src/CMakeFiles/qens.dir/qens/common/status.cpp.o.d"
  "/root/repo/src/qens/common/stopwatch.cpp" "src/CMakeFiles/qens.dir/qens/common/stopwatch.cpp.o" "gcc" "src/CMakeFiles/qens.dir/qens/common/stopwatch.cpp.o.d"
  "/root/repo/src/qens/common/string_util.cpp" "src/CMakeFiles/qens.dir/qens/common/string_util.cpp.o" "gcc" "src/CMakeFiles/qens.dir/qens/common/string_util.cpp.o.d"
  "/root/repo/src/qens/data/air_quality_generator.cpp" "src/CMakeFiles/qens.dir/qens/data/air_quality_generator.cpp.o" "gcc" "src/CMakeFiles/qens.dir/qens/data/air_quality_generator.cpp.o.d"
  "/root/repo/src/qens/data/csv.cpp" "src/CMakeFiles/qens.dir/qens/data/csv.cpp.o" "gcc" "src/CMakeFiles/qens.dir/qens/data/csv.cpp.o.d"
  "/root/repo/src/qens/data/dataset.cpp" "src/CMakeFiles/qens.dir/qens/data/dataset.cpp.o" "gcc" "src/CMakeFiles/qens.dir/qens/data/dataset.cpp.o.d"
  "/root/repo/src/qens/data/hospital_generator.cpp" "src/CMakeFiles/qens.dir/qens/data/hospital_generator.cpp.o" "gcc" "src/CMakeFiles/qens.dir/qens/data/hospital_generator.cpp.o.d"
  "/root/repo/src/qens/data/normalizer.cpp" "src/CMakeFiles/qens.dir/qens/data/normalizer.cpp.o" "gcc" "src/CMakeFiles/qens.dir/qens/data/normalizer.cpp.o.d"
  "/root/repo/src/qens/data/splitter.cpp" "src/CMakeFiles/qens.dir/qens/data/splitter.cpp.o" "gcc" "src/CMakeFiles/qens.dir/qens/data/splitter.cpp.o.d"
  "/root/repo/src/qens/fl/aggregation.cpp" "src/CMakeFiles/qens.dir/qens/fl/aggregation.cpp.o" "gcc" "src/CMakeFiles/qens.dir/qens/fl/aggregation.cpp.o.d"
  "/root/repo/src/qens/fl/experiment.cpp" "src/CMakeFiles/qens.dir/qens/fl/experiment.cpp.o" "gcc" "src/CMakeFiles/qens.dir/qens/fl/experiment.cpp.o.d"
  "/root/repo/src/qens/fl/federation.cpp" "src/CMakeFiles/qens.dir/qens/fl/federation.cpp.o" "gcc" "src/CMakeFiles/qens.dir/qens/fl/federation.cpp.o.d"
  "/root/repo/src/qens/fl/leader.cpp" "src/CMakeFiles/qens.dir/qens/fl/leader.cpp.o" "gcc" "src/CMakeFiles/qens.dir/qens/fl/leader.cpp.o.d"
  "/root/repo/src/qens/fl/participant.cpp" "src/CMakeFiles/qens.dir/qens/fl/participant.cpp.o" "gcc" "src/CMakeFiles/qens.dir/qens/fl/participant.cpp.o.d"
  "/root/repo/src/qens/fl/planner.cpp" "src/CMakeFiles/qens.dir/qens/fl/planner.cpp.o" "gcc" "src/CMakeFiles/qens.dir/qens/fl/planner.cpp.o.d"
  "/root/repo/src/qens/ml/activation.cpp" "src/CMakeFiles/qens.dir/qens/ml/activation.cpp.o" "gcc" "src/CMakeFiles/qens.dir/qens/ml/activation.cpp.o.d"
  "/root/repo/src/qens/ml/dense_layer.cpp" "src/CMakeFiles/qens.dir/qens/ml/dense_layer.cpp.o" "gcc" "src/CMakeFiles/qens.dir/qens/ml/dense_layer.cpp.o.d"
  "/root/repo/src/qens/ml/loss.cpp" "src/CMakeFiles/qens.dir/qens/ml/loss.cpp.o" "gcc" "src/CMakeFiles/qens.dir/qens/ml/loss.cpp.o.d"
  "/root/repo/src/qens/ml/metrics.cpp" "src/CMakeFiles/qens.dir/qens/ml/metrics.cpp.o" "gcc" "src/CMakeFiles/qens.dir/qens/ml/metrics.cpp.o.d"
  "/root/repo/src/qens/ml/model_factory.cpp" "src/CMakeFiles/qens.dir/qens/ml/model_factory.cpp.o" "gcc" "src/CMakeFiles/qens.dir/qens/ml/model_factory.cpp.o.d"
  "/root/repo/src/qens/ml/model_io.cpp" "src/CMakeFiles/qens.dir/qens/ml/model_io.cpp.o" "gcc" "src/CMakeFiles/qens.dir/qens/ml/model_io.cpp.o.d"
  "/root/repo/src/qens/ml/optimizer.cpp" "src/CMakeFiles/qens.dir/qens/ml/optimizer.cpp.o" "gcc" "src/CMakeFiles/qens.dir/qens/ml/optimizer.cpp.o.d"
  "/root/repo/src/qens/ml/sequential_model.cpp" "src/CMakeFiles/qens.dir/qens/ml/sequential_model.cpp.o" "gcc" "src/CMakeFiles/qens.dir/qens/ml/sequential_model.cpp.o.d"
  "/root/repo/src/qens/ml/trainer.cpp" "src/CMakeFiles/qens.dir/qens/ml/trainer.cpp.o" "gcc" "src/CMakeFiles/qens.dir/qens/ml/trainer.cpp.o.d"
  "/root/repo/src/qens/query/hyper_rectangle.cpp" "src/CMakeFiles/qens.dir/qens/query/hyper_rectangle.cpp.o" "gcc" "src/CMakeFiles/qens.dir/qens/query/hyper_rectangle.cpp.o.d"
  "/root/repo/src/qens/query/overlap.cpp" "src/CMakeFiles/qens.dir/qens/query/overlap.cpp.o" "gcc" "src/CMakeFiles/qens.dir/qens/query/overlap.cpp.o.d"
  "/root/repo/src/qens/query/range_query.cpp" "src/CMakeFiles/qens.dir/qens/query/range_query.cpp.o" "gcc" "src/CMakeFiles/qens.dir/qens/query/range_query.cpp.o.d"
  "/root/repo/src/qens/query/selectivity_estimator.cpp" "src/CMakeFiles/qens.dir/qens/query/selectivity_estimator.cpp.o" "gcc" "src/CMakeFiles/qens.dir/qens/query/selectivity_estimator.cpp.o.d"
  "/root/repo/src/qens/query/workload_generator.cpp" "src/CMakeFiles/qens.dir/qens/query/workload_generator.cpp.o" "gcc" "src/CMakeFiles/qens.dir/qens/query/workload_generator.cpp.o.d"
  "/root/repo/src/qens/selection/data_centric.cpp" "src/CMakeFiles/qens.dir/qens/selection/data_centric.cpp.o" "gcc" "src/CMakeFiles/qens.dir/qens/selection/data_centric.cpp.o.d"
  "/root/repo/src/qens/selection/game_theory.cpp" "src/CMakeFiles/qens.dir/qens/selection/game_theory.cpp.o" "gcc" "src/CMakeFiles/qens.dir/qens/selection/game_theory.cpp.o.d"
  "/root/repo/src/qens/selection/node_profile.cpp" "src/CMakeFiles/qens.dir/qens/selection/node_profile.cpp.o" "gcc" "src/CMakeFiles/qens.dir/qens/selection/node_profile.cpp.o.d"
  "/root/repo/src/qens/selection/policies.cpp" "src/CMakeFiles/qens.dir/qens/selection/policies.cpp.o" "gcc" "src/CMakeFiles/qens.dir/qens/selection/policies.cpp.o.d"
  "/root/repo/src/qens/selection/profile_io.cpp" "src/CMakeFiles/qens.dir/qens/selection/profile_io.cpp.o" "gcc" "src/CMakeFiles/qens.dir/qens/selection/profile_io.cpp.o.d"
  "/root/repo/src/qens/selection/ranking.cpp" "src/CMakeFiles/qens.dir/qens/selection/ranking.cpp.o" "gcc" "src/CMakeFiles/qens.dir/qens/selection/ranking.cpp.o.d"
  "/root/repo/src/qens/selection/stochastic.cpp" "src/CMakeFiles/qens.dir/qens/selection/stochastic.cpp.o" "gcc" "src/CMakeFiles/qens.dir/qens/selection/stochastic.cpp.o.d"
  "/root/repo/src/qens/sim/cost_model.cpp" "src/CMakeFiles/qens.dir/qens/sim/cost_model.cpp.o" "gcc" "src/CMakeFiles/qens.dir/qens/sim/cost_model.cpp.o.d"
  "/root/repo/src/qens/sim/edge_environment.cpp" "src/CMakeFiles/qens.dir/qens/sim/edge_environment.cpp.o" "gcc" "src/CMakeFiles/qens.dir/qens/sim/edge_environment.cpp.o.d"
  "/root/repo/src/qens/sim/edge_node.cpp" "src/CMakeFiles/qens.dir/qens/sim/edge_node.cpp.o" "gcc" "src/CMakeFiles/qens.dir/qens/sim/edge_node.cpp.o.d"
  "/root/repo/src/qens/sim/network.cpp" "src/CMakeFiles/qens.dir/qens/sim/network.cpp.o" "gcc" "src/CMakeFiles/qens.dir/qens/sim/network.cpp.o.d"
  "/root/repo/src/qens/tensor/matrix.cpp" "src/CMakeFiles/qens.dir/qens/tensor/matrix.cpp.o" "gcc" "src/CMakeFiles/qens.dir/qens/tensor/matrix.cpp.o.d"
  "/root/repo/src/qens/tensor/stats.cpp" "src/CMakeFiles/qens.dir/qens/tensor/stats.cpp.o" "gcc" "src/CMakeFiles/qens.dir/qens/tensor/stats.cpp.o.d"
  "/root/repo/src/qens/tensor/vector_ops.cpp" "src/CMakeFiles/qens.dir/qens/tensor/vector_ops.cpp.o" "gcc" "src/CMakeFiles/qens.dir/qens/tensor/vector_ops.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
