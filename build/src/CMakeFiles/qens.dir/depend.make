# Empty dependencies file for qens.
# This may be replaced when dependencies are built.
