file(REMOVE_RECURSE
  "CMakeFiles/clustering_kmeans_test.dir/clustering_kmeans_test.cpp.o"
  "CMakeFiles/clustering_kmeans_test.dir/clustering_kmeans_test.cpp.o.d"
  "clustering_kmeans_test"
  "clustering_kmeans_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clustering_kmeans_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
