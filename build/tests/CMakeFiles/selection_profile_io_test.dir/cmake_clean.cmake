file(REMOVE_RECURSE
  "CMakeFiles/selection_profile_io_test.dir/selection_profile_io_test.cpp.o"
  "CMakeFiles/selection_profile_io_test.dir/selection_profile_io_test.cpp.o.d"
  "selection_profile_io_test"
  "selection_profile_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selection_profile_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
