# Empty dependencies file for selection_profile_io_test.
# This may be replaced when dependencies are built.
