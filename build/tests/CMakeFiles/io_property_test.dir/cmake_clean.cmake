file(REMOVE_RECURSE
  "CMakeFiles/io_property_test.dir/io_property_test.cpp.o"
  "CMakeFiles/io_property_test.dir/io_property_test.cpp.o.d"
  "io_property_test"
  "io_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/io_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
