file(REMOVE_RECURSE
  "CMakeFiles/selection_data_centric_test.dir/selection_data_centric_test.cpp.o"
  "CMakeFiles/selection_data_centric_test.dir/selection_data_centric_test.cpp.o.d"
  "selection_data_centric_test"
  "selection_data_centric_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selection_data_centric_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
