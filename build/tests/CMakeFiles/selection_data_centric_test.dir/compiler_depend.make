# Empty compiler generated dependencies file for selection_data_centric_test.
# This may be replaced when dependencies are built.
