file(REMOVE_RECURSE
  "CMakeFiles/query_overlap_test.dir/query_overlap_test.cpp.o"
  "CMakeFiles/query_overlap_test.dir/query_overlap_test.cpp.o.d"
  "query_overlap_test"
  "query_overlap_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_overlap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
