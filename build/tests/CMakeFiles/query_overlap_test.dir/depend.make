# Empty dependencies file for query_overlap_test.
# This may be replaced when dependencies are built.
