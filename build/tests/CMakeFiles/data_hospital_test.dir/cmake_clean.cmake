file(REMOVE_RECURSE
  "CMakeFiles/data_hospital_test.dir/data_hospital_test.cpp.o"
  "CMakeFiles/data_hospital_test.dir/data_hospital_test.cpp.o.d"
  "data_hospital_test"
  "data_hospital_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_hospital_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
