# Empty compiler generated dependencies file for data_hospital_test.
# This may be replaced when dependencies are built.
