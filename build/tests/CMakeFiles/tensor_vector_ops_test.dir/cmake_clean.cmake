file(REMOVE_RECURSE
  "CMakeFiles/tensor_vector_ops_test.dir/tensor_vector_ops_test.cpp.o"
  "CMakeFiles/tensor_vector_ops_test.dir/tensor_vector_ops_test.cpp.o.d"
  "tensor_vector_ops_test"
  "tensor_vector_ops_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tensor_vector_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
