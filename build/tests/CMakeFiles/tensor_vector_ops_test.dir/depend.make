# Empty dependencies file for tensor_vector_ops_test.
# This may be replaced when dependencies are built.
