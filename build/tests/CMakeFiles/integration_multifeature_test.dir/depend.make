# Empty dependencies file for integration_multifeature_test.
# This may be replaced when dependencies are built.
