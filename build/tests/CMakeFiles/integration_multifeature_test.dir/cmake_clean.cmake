file(REMOVE_RECURSE
  "CMakeFiles/integration_multifeature_test.dir/integration_multifeature_test.cpp.o"
  "CMakeFiles/integration_multifeature_test.dir/integration_multifeature_test.cpp.o.d"
  "integration_multifeature_test"
  "integration_multifeature_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_multifeature_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
