file(REMOVE_RECURSE
  "CMakeFiles/query_hyper_rectangle_test.dir/query_hyper_rectangle_test.cpp.o"
  "CMakeFiles/query_hyper_rectangle_test.dir/query_hyper_rectangle_test.cpp.o.d"
  "query_hyper_rectangle_test"
  "query_hyper_rectangle_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_hyper_rectangle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
