# Empty dependencies file for query_hyper_rectangle_test.
# This may be replaced when dependencies are built.
