file(REMOVE_RECURSE
  "CMakeFiles/fl_aggregation_test.dir/fl_aggregation_test.cpp.o"
  "CMakeFiles/fl_aggregation_test.dir/fl_aggregation_test.cpp.o.d"
  "fl_aggregation_test"
  "fl_aggregation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fl_aggregation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
