# Empty dependencies file for selection_stochastic_test.
# This may be replaced when dependencies are built.
