file(REMOVE_RECURSE
  "CMakeFiles/selection_stochastic_test.dir/selection_stochastic_test.cpp.o"
  "CMakeFiles/selection_stochastic_test.dir/selection_stochastic_test.cpp.o.d"
  "selection_stochastic_test"
  "selection_stochastic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selection_stochastic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
