# Empty compiler generated dependencies file for selection_ranking_multidim_test.
# This may be replaced when dependencies are built.
