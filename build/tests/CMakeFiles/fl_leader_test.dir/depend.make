# Empty dependencies file for fl_leader_test.
# This may be replaced when dependencies are built.
