file(REMOVE_RECURSE
  "CMakeFiles/fl_leader_test.dir/fl_leader_test.cpp.o"
  "CMakeFiles/fl_leader_test.dir/fl_leader_test.cpp.o.d"
  "fl_leader_test"
  "fl_leader_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fl_leader_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
