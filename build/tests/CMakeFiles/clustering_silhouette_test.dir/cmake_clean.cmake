file(REMOVE_RECURSE
  "CMakeFiles/clustering_silhouette_test.dir/clustering_silhouette_test.cpp.o"
  "CMakeFiles/clustering_silhouette_test.dir/clustering_silhouette_test.cpp.o.d"
  "clustering_silhouette_test"
  "clustering_silhouette_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clustering_silhouette_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
