# Empty compiler generated dependencies file for clustering_silhouette_test.
# This may be replaced when dependencies are built.
