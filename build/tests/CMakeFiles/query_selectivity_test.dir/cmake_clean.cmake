file(REMOVE_RECURSE
  "CMakeFiles/query_selectivity_test.dir/query_selectivity_test.cpp.o"
  "CMakeFiles/query_selectivity_test.dir/query_selectivity_test.cpp.o.d"
  "query_selectivity_test"
  "query_selectivity_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_selectivity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
