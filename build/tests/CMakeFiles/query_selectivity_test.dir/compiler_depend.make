# Empty compiler generated dependencies file for query_selectivity_test.
# This may be replaced when dependencies are built.
