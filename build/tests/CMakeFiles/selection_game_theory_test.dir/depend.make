# Empty dependencies file for selection_game_theory_test.
# This may be replaced when dependencies are built.
