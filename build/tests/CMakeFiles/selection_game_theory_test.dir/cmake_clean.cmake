file(REMOVE_RECURSE
  "CMakeFiles/selection_game_theory_test.dir/selection_game_theory_test.cpp.o"
  "CMakeFiles/selection_game_theory_test.dir/selection_game_theory_test.cpp.o.d"
  "selection_game_theory_test"
  "selection_game_theory_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selection_game_theory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
