# Empty dependencies file for clustering_streaming_test.
# This may be replaced when dependencies are built.
