file(REMOVE_RECURSE
  "CMakeFiles/clustering_streaming_test.dir/clustering_streaming_test.cpp.o"
  "CMakeFiles/clustering_streaming_test.dir/clustering_streaming_test.cpp.o.d"
  "clustering_streaming_test"
  "clustering_streaming_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clustering_streaming_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
