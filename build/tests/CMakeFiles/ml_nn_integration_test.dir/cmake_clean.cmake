file(REMOVE_RECURSE
  "CMakeFiles/ml_nn_integration_test.dir/ml_nn_integration_test.cpp.o"
  "CMakeFiles/ml_nn_integration_test.dir/ml_nn_integration_test.cpp.o.d"
  "ml_nn_integration_test"
  "ml_nn_integration_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_nn_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
