# Empty dependencies file for ml_nn_integration_test.
# This may be replaced when dependencies are built.
