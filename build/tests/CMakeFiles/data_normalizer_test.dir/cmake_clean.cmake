file(REMOVE_RECURSE
  "CMakeFiles/data_normalizer_test.dir/data_normalizer_test.cpp.o"
  "CMakeFiles/data_normalizer_test.dir/data_normalizer_test.cpp.o.d"
  "data_normalizer_test"
  "data_normalizer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_normalizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
