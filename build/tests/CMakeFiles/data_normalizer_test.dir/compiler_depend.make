# Empty compiler generated dependencies file for data_normalizer_test.
# This may be replaced when dependencies are built.
