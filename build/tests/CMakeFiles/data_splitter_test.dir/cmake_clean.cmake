file(REMOVE_RECURSE
  "CMakeFiles/data_splitter_test.dir/data_splitter_test.cpp.o"
  "CMakeFiles/data_splitter_test.dir/data_splitter_test.cpp.o.d"
  "data_splitter_test"
  "data_splitter_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_splitter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
