# Empty dependencies file for clustering_summary_test.
# This may be replaced when dependencies are built.
