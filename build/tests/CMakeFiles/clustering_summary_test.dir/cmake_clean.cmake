file(REMOVE_RECURSE
  "CMakeFiles/clustering_summary_test.dir/clustering_summary_test.cpp.o"
  "CMakeFiles/clustering_summary_test.dir/clustering_summary_test.cpp.o.d"
  "clustering_summary_test"
  "clustering_summary_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clustering_summary_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
