file(REMOVE_RECURSE
  "CMakeFiles/fl_participant_test.dir/fl_participant_test.cpp.o"
  "CMakeFiles/fl_participant_test.dir/fl_participant_test.cpp.o.d"
  "fl_participant_test"
  "fl_participant_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fl_participant_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
