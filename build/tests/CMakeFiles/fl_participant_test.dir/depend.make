# Empty dependencies file for fl_participant_test.
# This may be replaced when dependencies are built.
