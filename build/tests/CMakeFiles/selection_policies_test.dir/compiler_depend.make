# Empty compiler generated dependencies file for selection_policies_test.
# This may be replaced when dependencies are built.
