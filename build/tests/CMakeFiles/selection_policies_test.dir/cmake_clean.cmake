file(REMOVE_RECURSE
  "CMakeFiles/selection_policies_test.dir/selection_policies_test.cpp.o"
  "CMakeFiles/selection_policies_test.dir/selection_policies_test.cpp.o.d"
  "selection_policies_test"
  "selection_policies_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selection_policies_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
