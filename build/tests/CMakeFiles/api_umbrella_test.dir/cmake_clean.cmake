file(REMOVE_RECURSE
  "CMakeFiles/api_umbrella_test.dir/api_umbrella_test.cpp.o"
  "CMakeFiles/api_umbrella_test.dir/api_umbrella_test.cpp.o.d"
  "api_umbrella_test"
  "api_umbrella_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/api_umbrella_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
