file(REMOVE_RECURSE
  "CMakeFiles/selection_ranking_test.dir/selection_ranking_test.cpp.o"
  "CMakeFiles/selection_ranking_test.dir/selection_ranking_test.cpp.o.d"
  "selection_ranking_test"
  "selection_ranking_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selection_ranking_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
