# Empty dependencies file for ml_dense_layer_test.
# This may be replaced when dependencies are built.
