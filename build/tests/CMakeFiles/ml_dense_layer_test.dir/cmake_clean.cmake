file(REMOVE_RECURSE
  "CMakeFiles/ml_dense_layer_test.dir/ml_dense_layer_test.cpp.o"
  "CMakeFiles/ml_dense_layer_test.dir/ml_dense_layer_test.cpp.o.d"
  "ml_dense_layer_test"
  "ml_dense_layer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_dense_layer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
