file(REMOVE_RECURSE
  "CMakeFiles/fl_planner_test.dir/fl_planner_test.cpp.o"
  "CMakeFiles/fl_planner_test.dir/fl_planner_test.cpp.o.d"
  "fl_planner_test"
  "fl_planner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fl_planner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
