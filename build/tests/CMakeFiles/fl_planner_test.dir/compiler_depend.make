# Empty compiler generated dependencies file for fl_planner_test.
# This may be replaced when dependencies are built.
