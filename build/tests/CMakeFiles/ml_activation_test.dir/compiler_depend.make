# Empty compiler generated dependencies file for ml_activation_test.
# This may be replaced when dependencies are built.
