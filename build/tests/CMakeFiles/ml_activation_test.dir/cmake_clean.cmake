file(REMOVE_RECURSE
  "CMakeFiles/ml_activation_test.dir/ml_activation_test.cpp.o"
  "CMakeFiles/ml_activation_test.dir/ml_activation_test.cpp.o.d"
  "ml_activation_test"
  "ml_activation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_activation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
