file(REMOVE_RECURSE
  "CMakeFiles/fl_federation_test.dir/fl_federation_test.cpp.o"
  "CMakeFiles/fl_federation_test.dir/fl_federation_test.cpp.o.d"
  "fl_federation_test"
  "fl_federation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fl_federation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
