# Empty dependencies file for fl_federation_test.
# This may be replaced when dependencies are built.
