file(REMOVE_RECURSE
  "CMakeFiles/bench_x4_extensions.dir/bench_x4_extensions.cpp.o"
  "CMakeFiles/bench_x4_extensions.dir/bench_x4_extensions.cpp.o.d"
  "bench_x4_extensions"
  "bench_x4_extensions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_x4_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
