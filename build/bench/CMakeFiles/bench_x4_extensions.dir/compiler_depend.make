# Empty compiler generated dependencies file for bench_x4_extensions.
# This may be replaced when dependencies are built.
