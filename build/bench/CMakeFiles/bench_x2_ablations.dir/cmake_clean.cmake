file(REMOVE_RECURSE
  "CMakeFiles/bench_x2_ablations.dir/bench_x2_ablations.cpp.o"
  "CMakeFiles/bench_x2_ablations.dir/bench_x2_ablations.cpp.o.d"
  "bench_x2_ablations"
  "bench_x2_ablations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_x2_ablations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
