# Empty compiler generated dependencies file for bench_x2_ablations.
# This may be replaced when dependencies are built.
