file(REMOVE_RECURSE
  "CMakeFiles/bench_fig56_query_projection.dir/bench_fig56_query_projection.cpp.o"
  "CMakeFiles/bench_fig56_query_projection.dir/bench_fig56_query_projection.cpp.o.d"
  "bench_fig56_query_projection"
  "bench_fig56_query_projection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig56_query_projection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
