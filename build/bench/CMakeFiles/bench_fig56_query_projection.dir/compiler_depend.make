# Empty compiler generated dependencies file for bench_fig56_query_projection.
# This may be replaced when dependencies are built.
