# Empty compiler generated dependencies file for bench_fig7_avg_loss.
# This may be replaced when dependencies are built.
