file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_homogeneous.dir/bench_table1_homogeneous.cpp.o"
  "CMakeFiles/bench_table1_homogeneous.dir/bench_table1_homogeneous.cpp.o.d"
  "bench_table1_homogeneous"
  "bench_table1_homogeneous.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_homogeneous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
