# Empty dependencies file for bench_table1_homogeneous.
# This may be replaced when dependencies are built.
