file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_heterogeneous.dir/bench_table2_heterogeneous.cpp.o"
  "CMakeFiles/bench_table2_heterogeneous.dir/bench_table2_heterogeneous.cpp.o.d"
  "bench_table2_heterogeneous"
  "bench_table2_heterogeneous.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_heterogeneous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
