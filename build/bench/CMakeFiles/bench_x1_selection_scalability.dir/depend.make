# Empty dependencies file for bench_x1_selection_scalability.
# This may be replaced when dependencies are built.
