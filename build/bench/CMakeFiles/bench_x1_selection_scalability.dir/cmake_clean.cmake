file(REMOVE_RECURSE
  "CMakeFiles/bench_x1_selection_scalability.dir/bench_x1_selection_scalability.cpp.o"
  "CMakeFiles/bench_x1_selection_scalability.dir/bench_x1_selection_scalability.cpp.o.d"
  "bench_x1_selection_scalability"
  "bench_x1_selection_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_x1_selection_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
