# Empty dependencies file for bench_x3_kmeans.
# This may be replaced when dependencies are built.
