file(REMOVE_RECURSE
  "CMakeFiles/bench_x3_kmeans.dir/bench_x3_kmeans.cpp.o"
  "CMakeFiles/bench_x3_kmeans.dir/bench_x3_kmeans.cpp.o.d"
  "bench_x3_kmeans"
  "bench_x3_kmeans.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_x3_kmeans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
