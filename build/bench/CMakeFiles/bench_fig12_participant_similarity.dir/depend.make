# Empty dependencies file for bench_fig12_participant_similarity.
# This may be replaced when dependencies are built.
