# Empty dependencies file for bench_fig34_overlap_cases.
# This may be replaced when dependencies are built.
