file(REMOVE_RECURSE
  "CMakeFiles/bench_fig34_overlap_cases.dir/bench_fig34_overlap_cases.cpp.o"
  "CMakeFiles/bench_fig34_overlap_cases.dir/bench_fig34_overlap_cases.cpp.o.d"
  "bench_fig34_overlap_cases"
  "bench_fig34_overlap_cases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig34_overlap_cases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
