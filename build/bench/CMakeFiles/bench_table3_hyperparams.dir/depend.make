# Empty dependencies file for bench_table3_hyperparams.
# This may be replaced when dependencies are built.
