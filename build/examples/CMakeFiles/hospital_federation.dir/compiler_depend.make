# Empty compiler generated dependencies file for hospital_federation.
# This may be replaced when dependencies are built.
