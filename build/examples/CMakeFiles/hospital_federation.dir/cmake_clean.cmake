file(REMOVE_RECURSE
  "CMakeFiles/hospital_federation.dir/hospital_federation.cpp.o"
  "CMakeFiles/hospital_federation.dir/hospital_federation.cpp.o.d"
  "hospital_federation"
  "hospital_federation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hospital_federation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
