file(REMOVE_RECURSE
  "CMakeFiles/query_workload_explorer.dir/query_workload_explorer.cpp.o"
  "CMakeFiles/query_workload_explorer.dir/query_workload_explorer.cpp.o.d"
  "query_workload_explorer"
  "query_workload_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_workload_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
