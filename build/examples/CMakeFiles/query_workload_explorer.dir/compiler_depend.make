# Empty compiler generated dependencies file for query_workload_explorer.
# This may be replaced when dependencies are built.
