# Empty compiler generated dependencies file for air_quality_federation.
# This may be replaced when dependencies are built.
