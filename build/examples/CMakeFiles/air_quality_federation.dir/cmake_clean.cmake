file(REMOVE_RECURSE
  "CMakeFiles/air_quality_federation.dir/air_quality_federation.cpp.o"
  "CMakeFiles/air_quality_federation.dir/air_quality_federation.cpp.o.d"
  "air_quality_federation"
  "air_quality_federation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/air_quality_federation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
