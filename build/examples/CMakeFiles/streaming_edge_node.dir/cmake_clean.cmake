file(REMOVE_RECURSE
  "CMakeFiles/streaming_edge_node.dir/streaming_edge_node.cpp.o"
  "CMakeFiles/streaming_edge_node.dir/streaming_edge_node.cpp.o.d"
  "streaming_edge_node"
  "streaming_edge_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_edge_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
