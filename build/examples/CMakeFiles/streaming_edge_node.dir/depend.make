# Empty dependencies file for streaming_edge_node.
# This may be replaced when dependencies are built.
