#!/usr/bin/env python3
"""Check that every public header compiles standalone.

A header is self-contained when a translation unit consisting of nothing
but `#include "qens/<module>/<name>.h"` compiles. Headers that silently
lean on what a previous include dragged in break consumers that include
them first — and break refactors that reorder includes. This tool
compiles each header under src/qens/**/ with `-fsyntax-only` and reports
every failure.

Usage:
    tools/check_header_selfcontainment.py [--compiler g++] [--src src]

Exit code 0 when every header passes, 1 otherwise. Registered as the
tier-1 ctest `header_selfcontainment` and run by CI.
"""

import argparse
import pathlib
import subprocess
import sys
import tempfile


def find_headers(src: pathlib.Path) -> list[pathlib.Path]:
    return sorted((src / "qens").rglob("*.h"))


def check_header(compiler: str, src: pathlib.Path, header: pathlib.Path,
                 workdir: pathlib.Path) -> "subprocess.CompletedProcess[str]":
    rel = header.relative_to(src)
    stub = workdir / "stub.cpp"
    stub.write_text(f'#include "{rel.as_posix()}"\n')
    return subprocess.run(
        [compiler, "-std=c++20", "-fsyntax-only", "-I", str(src), str(stub)],
        capture_output=True,
        text=True,
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--compiler", default="g++",
                        help="C++ compiler to syntax-check with")
    parser.add_argument("--src", default="src",
                        help="source root containing qens/")
    args = parser.parse_args()

    src = pathlib.Path(args.src).resolve()
    headers = find_headers(src)
    if not headers:
        print(f"error: no headers found under {src}/qens", file=sys.stderr)
        return 1

    failures = []
    with tempfile.TemporaryDirectory() as tmp:
        workdir = pathlib.Path(tmp)
        for header in headers:
            result = check_header(args.compiler, src, header, workdir)
            if result.returncode != 0:
                failures.append((header.relative_to(src), result.stderr))

    if failures:
        for rel, stderr in failures:
            print(f"NOT SELF-CONTAINED: {rel}", file=sys.stderr)
            print(stderr, file=sys.stderr)
        print(f"{len(failures)}/{len(headers)} headers failed",
              file=sys.stderr)
        return 1
    print(f"all {len(headers)} headers are self-contained")
    return 0


if __name__ == "__main__":
    sys.exit(main())
