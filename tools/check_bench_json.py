#!/usr/bin/env python3
"""Validate a bench --json output file against the BenchJson schema.

Schema (schema_version 1, see docs/OBSERVABILITY.md):

    {"bench": "<binary name>",
     "schema_version": 1,
     "wall_seconds": <non-negative number>,
     "records": [{"name": "<non-empty str>",
                  "labels": {str: str, ...},
                  "values": {str: finite number, ...}}, ...]}

Usage: check_bench_json.py <file.json> [<file.json> ...]
Exits 0 when every file validates, 1 otherwise. Stdlib only.
"""

import json
import math
import sys

# Optional per-bench requirements, applied when the document's "bench" name
# matches: every listed section must appear among the records'
# labels["section"], and every record must carry the listed value keys.
BENCH_REQUIREMENTS = {
    "bench_x6_byzantine": {
        "sections": {"attacker_sweep", "quarantine"},
        "record_values": {"avg_loss"},
    },
    "bench_x7_hotpath": {
        "sections": {"kernels", "step", "kmeans", "round"},
        "record_values": {"speedup", "reps"},
    },
    "bench_x8_query_throughput": {
        "sections": {"equality", "throughput"},
        "record_values": {"queries"},
    },
    "bench_x9_ranking_scalability": {
        "sections": {"equality", "scaling"},
        "record_values": {"nodes"},
    },
    "bench_x10_wire_format": {
        "sections": {"sweep", "pinning"},
        "record_values": {"queries"},
    },
    "bench_x11_churn_drift": {
        "sections": {"baseline", "sweep"},
        "record_values": {"avg_loss", "queries_run"},
    },
}


def fail(path, message):
    print(f"{path}: FAIL: {message}")
    return False


def check_file(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(path, f"unreadable or invalid JSON: {e}")

    if not isinstance(doc, dict):
        return fail(path, "top level must be a JSON object")

    for key in ("bench", "schema_version", "wall_seconds", "records"):
        if key not in doc:
            return fail(path, f"missing required key '{key}'")

    if not isinstance(doc["bench"], str) or not doc["bench"]:
        return fail(path, "'bench' must be a non-empty string")
    if doc["schema_version"] != 1:
        return fail(path, f"unsupported schema_version {doc['schema_version']!r}")
    wall = doc["wall_seconds"]
    if not isinstance(wall, (int, float)) or isinstance(wall, bool):
        return fail(path, "'wall_seconds' must be a number")
    if not math.isfinite(wall) or wall < 0:
        return fail(path, f"'wall_seconds' must be finite and >= 0, got {wall}")
    if not isinstance(doc["records"], list):
        return fail(path, "'records' must be an array")
    if not doc["records"]:
        return fail(path, "'records' must not be empty")

    for i, record in enumerate(doc["records"]):
        where = f"records[{i}]"
        if not isinstance(record, dict):
            return fail(path, f"{where} must be an object")
        for key in ("name", "labels", "values"):
            if key not in record:
                return fail(path, f"{where} missing required key '{key}'")
        if not isinstance(record["name"], str) or not record["name"]:
            return fail(path, f"{where}.name must be a non-empty string")
        if not isinstance(record["labels"], dict):
            return fail(path, f"{where}.labels must be an object")
        for k, v in record["labels"].items():
            if not isinstance(v, str):
                return fail(path, f"{where}.labels[{k!r}] must be a string")
        if not isinstance(record["values"], dict):
            return fail(path, f"{where}.values must be an object")
        if not record["values"]:
            return fail(path, f"{where}.values must not be empty")
        for k, v in record["values"].items():
            if not isinstance(v, (int, float)) or isinstance(v, bool):
                return fail(path, f"{where}.values[{k!r}] must be a number")
            if not math.isfinite(v):
                return fail(path, f"{where}.values[{k!r}] must be finite, got {v}")

    requirements = BENCH_REQUIREMENTS.get(doc["bench"])
    if requirements:
        sections = {r["labels"].get("section") for r in doc["records"]}
        missing = requirements.get("sections", set()) - sections
        if missing:
            return fail(path, f"missing required sections: {sorted(missing)}")
        for i, record in enumerate(doc["records"]):
            absent = requirements.get("record_values", set()) - set(
                record["values"])
            if absent:
                return fail(
                    path,
                    f"records[{i}] missing required values: {sorted(absent)}")

    print(f"{path}: OK ({doc['bench']}, {len(doc['records'])} records)")
    return True


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip())
        return 2
    ok = all([check_file(p) for p in argv[1:]])
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
