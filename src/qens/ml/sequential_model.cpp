#include "qens/ml/sequential_model.h"

#include "qens/common/string_util.h"

namespace qens::ml {

Status SequentialModel::AddLayer(size_t in_features, size_t out_features,
                                 Activation act) {
  if (in_features == 0 || out_features == 0) {
    return Status::InvalidArgument("AddLayer: zero-width layer");
  }
  if (!layers_.empty() && layers_.back().out_features() != in_features) {
    return Status::InvalidArgument(StrFormat(
        "AddLayer: in_features %zu does not chain with previous out %zu",
        in_features, layers_.back().out_features()));
  }
  layers_.emplace_back(in_features, out_features, act);
  return Status::OK();
}

size_t SequentialModel::input_features() const {
  return layers_.empty() ? 0 : layers_.front().in_features();
}

size_t SequentialModel::output_features() const {
  return layers_.empty() ? 0 : layers_.back().out_features();
}

void SequentialModel::InitWeights(Rng* rng) {
  for (auto& layer : layers_) layer.InitGlorot(rng);
}

Result<Matrix> SequentialModel::Predict(const Matrix& x) const {
  if (layers_.empty()) {
    return Status::FailedPrecondition("Predict: model has no layers");
  }
  // Apply is const and cache-free, so inference neither copies layers nor
  // touches training state.
  QENS_ASSIGN_OR_RETURN(Matrix cur, layers_[0].Apply(x));
  for (size_t i = 1; i < layers_.size(); ++i) {
    QENS_ASSIGN_OR_RETURN(cur, layers_[i].Apply(cur));
  }
  return cur;
}

Result<Matrix> SequentialModel::Forward(const Matrix& x) {
  if (layers_.empty()) {
    return Status::FailedPrecondition("Forward: model has no layers");
  }
  // Each layer caches a pointer to its input, so the model must keep every
  // inter-layer activation alive until Backward. The final output is not
  // needed by Backward (layers cache the pre-activation) and is returned.
  if (activations_.size() != layers_.size() - 1) {
    activations_.resize(layers_.size() - 1);
  }
  const Matrix* cur = &x;
  for (size_t i = 0;; ++i) {
    QENS_ASSIGN_OR_RETURN(Matrix y, layers_[i].Forward(*cur, /*cache=*/true));
    if (i + 1 == layers_.size()) return y;
    activations_[i] = std::move(y);
    cur = &activations_[i];
  }
}

Result<std::vector<DenseGradients>> SequentialModel::Backward(
    const Matrix& grad_out) {
  if (layers_.empty()) {
    return Status::FailedPrecondition("Backward: model has no layers");
  }
  std::vector<DenseGradients> grads(layers_.size());
  Matrix cur = grad_out;
  for (size_t i = layers_.size(); i-- > 0;) {
    QENS_ASSIGN_OR_RETURN(cur, layers_[i].Backward(cur, &grads[i]));
  }
  return grads;
}

size_t SequentialModel::ParameterCount() const {
  size_t n = 0;
  for (const auto& layer : layers_) n += layer.ParameterCount();
  return n;
}

std::vector<double> SequentialModel::GetParameters() const {
  std::vector<double> flat;
  flat.reserve(ParameterCount());
  for (const auto& layer : layers_) layer.FlattenParams(&flat);
  return flat;
}

Status SequentialModel::SetParameters(const std::vector<double>& flat) {
  if (flat.size() != ParameterCount()) {
    return Status::InvalidArgument(
        StrFormat("SetParameters: got %zu values, model has %zu parameters",
                  flat.size(), ParameterCount()));
  }
  size_t offset = 0;
  for (auto& layer : layers_) {
    QENS_RETURN_NOT_OK(layer.UnflattenParams(flat, &offset));
  }
  return Status::OK();
}

bool SequentialModel::SameArchitecture(const SequentialModel& other) const {
  if (layers_.size() != other.layers_.size()) return false;
  for (size_t i = 0; i < layers_.size(); ++i) {
    if (layers_[i].in_features() != other.layers_[i].in_features() ||
        layers_[i].out_features() != other.layers_[i].out_features() ||
        layers_[i].activation() != other.layers_[i].activation()) {
      return false;
    }
  }
  return true;
}

}  // namespace qens::ml
