#ifndef QENS_ML_METRICS_H_
#define QENS_ML_METRICS_H_

/// \file metrics.h
/// Regression evaluation metrics reported by the experiment harnesses
/// (the paper reports loss = MSE throughout; RMSE/MAE/R^2 are companions).

#include <vector>

#include "qens/common/status.h"
#include "qens/tensor/matrix.h"

namespace qens::ml {

/// Regression metric bundle for one (predictions, targets) pair.
struct RegressionMetrics {
  double mse = 0.0;
  double rmse = 0.0;
  double mae = 0.0;
  double r_squared = 0.0;  ///< 1 - SS_res/SS_tot; 0 when targets are constant.
  size_t count = 0;
};

/// Compute all metrics. Fails on shape mismatch or empty inputs.
Result<RegressionMetrics> EvaluateRegression(const Matrix& pred,
                                             const Matrix& target);

/// Vector convenience overload (single-output models).
Result<RegressionMetrics> EvaluateRegression(const std::vector<double>& pred,
                                             const std::vector<double>& target);

}  // namespace qens::ml

#endif  // QENS_ML_METRICS_H_
