#ifndef QENS_ML_LOSS_H_
#define QENS_ML_LOSS_H_

/// \file loss.h
/// Training losses. The paper trains both LR and NN with MSE (Table III);
/// MAE and Huber are provided for robustness studies.

#include <string>

#include "qens/common/status.h"
#include "qens/tensor/matrix.h"

namespace qens::ml {

enum class LossKind {
  kMse,    ///< Mean squared error (paper default).
  kMae,    ///< Mean absolute error.
  kHuber,  ///< Huber loss with delta = 1.
};

/// Canonical lowercase name ("mse", "mae", "huber").
const char* LossName(LossKind k);

/// Parse a name produced by LossName (case-insensitive).
Result<LossKind> ParseLoss(const std::string& name);

/// Loss value averaged over all elements of (pred, target).
/// Fails on shape mismatch or empty inputs.
Result<double> ComputeLoss(LossKind kind, const Matrix& pred,
                           const Matrix& target);

/// dL/dpred for the averaged loss, same shape as pred.
/// Fails on shape mismatch or empty inputs.
Result<Matrix> ComputeLossGrad(LossKind kind, const Matrix& pred,
                               const Matrix& target);

}  // namespace qens::ml

#endif  // QENS_ML_LOSS_H_
