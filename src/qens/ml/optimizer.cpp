#include "qens/ml/optimizer.h"

#include <cmath>

#include "qens/common/string_util.h"

namespace qens::ml {
namespace {

/// Flatten one layer's gradients (row-major weights then bias) into `out`.
void FlattenGrads(const DenseGradients& g, std::vector<double>* out) {
  out->clear();
  out->reserve(g.d_weights.size() + g.d_bias.size());
  out->insert(out->end(), g.d_weights.data().begin(), g.d_weights.data().end());
  out->insert(out->end(), g.d_bias.begin(), g.d_bias.end());
}

/// Apply a flat delta (same layout as FlattenGrads) to a layer's parameters.
void ApplyFlatDelta(DenseLayer* layer, const std::vector<double>& delta) {
  auto& w = layer->weights().data();
  for (size_t i = 0; i < w.size(); ++i) w[i] += delta[i];
  auto& b = layer->bias();
  for (size_t i = 0; i < b.size(); ++i) b[i] += delta[w.size() + i];
}

Status CheckGrads(const SequentialModel& model,
                  const std::vector<DenseGradients>& grads) {
  if (grads.size() != model.num_layers()) {
    return Status::InvalidArgument(
        StrFormat("optimizer: %zu gradient sets for %zu layers", grads.size(),
                  model.num_layers()));
  }
  for (size_t i = 0; i < grads.size(); ++i) {
    if (!grads[i].d_weights.SameShape(model.layer(i).weights()) ||
        grads[i].d_bias.size() != model.layer(i).bias().size()) {
      return Status::InvalidArgument(
          StrFormat("optimizer: gradient shape mismatch at layer %zu", i));
    }
  }
  return Status::OK();
}

}  // namespace

SgdOptimizer::SgdOptimizer(double learning_rate, double momentum)
    : Optimizer(learning_rate), momentum_(momentum) {}

Status SgdOptimizer::Step(SequentialModel* model,
                          const std::vector<DenseGradients>& grads) {
  QENS_RETURN_NOT_OK(CheckGrads(*model, grads));
  if (velocity_.size() != grads.size()) {
    velocity_.assign(grads.size(), {});
  }
  std::vector<double> flat;
  for (size_t li = 0; li < grads.size(); ++li) {
    FlattenGrads(grads[li], &flat);
    auto& vel = velocity_[li];
    if (vel.size() != flat.size()) vel.assign(flat.size(), 0.0);
    for (size_t i = 0; i < flat.size(); ++i) {
      vel[i] = momentum_ * vel[i] - learning_rate_ * flat[i];
    }
    ApplyFlatDelta(&model->layer(li), vel);
  }
  return Status::OK();
}

void SgdOptimizer::Reset() { velocity_.clear(); }

AdamOptimizer::AdamOptimizer(double learning_rate, double beta1, double beta2,
                             double epsilon)
    : Optimizer(learning_rate),
      beta1_(beta1),
      beta2_(beta2),
      epsilon_(epsilon) {}

Status AdamOptimizer::Step(SequentialModel* model,
                           const std::vector<DenseGradients>& grads) {
  QENS_RETURN_NOT_OK(CheckGrads(*model, grads));
  if (m_.size() != grads.size()) {
    m_.assign(grads.size(), {});
    v_.assign(grads.size(), {});
    t_ = 0;
  }
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  std::vector<double> flat;
  std::vector<double> delta;
  for (size_t li = 0; li < grads.size(); ++li) {
    FlattenGrads(grads[li], &flat);
    auto& m = m_[li];
    auto& v = v_[li];
    if (m.size() != flat.size()) {
      m.assign(flat.size(), 0.0);
      v.assign(flat.size(), 0.0);
    }
    delta.resize(flat.size());
    for (size_t i = 0; i < flat.size(); ++i) {
      m[i] = beta1_ * m[i] + (1.0 - beta1_) * flat[i];
      v[i] = beta2_ * v[i] + (1.0 - beta2_) * flat[i] * flat[i];
      const double mhat = m[i] / bc1;
      const double vhat = v[i] / bc2;
      delta[i] = -learning_rate_ * mhat / (std::sqrt(vhat) + epsilon_);
    }
    ApplyFlatDelta(&model->layer(li), delta);
  }
  return Status::OK();
}

void AdamOptimizer::Reset() {
  m_.clear();
  v_.clear();
  t_ = 0;
}

Result<std::unique_ptr<Optimizer>> MakeOptimizer(const std::string& name,
                                                 double learning_rate) {
  const std::string n = ToLower(Trim(name));
  if (learning_rate <= 0.0) {
    return Status::InvalidArgument("MakeOptimizer: learning rate must be > 0");
  }
  if (n == "sgd") {
    return std::unique_ptr<Optimizer>(new SgdOptimizer(learning_rate));
  }
  if (n == "adam") {
    return std::unique_ptr<Optimizer>(new AdamOptimizer(learning_rate));
  }
  return Status::InvalidArgument("unknown optimizer: '" + name + "'");
}

}  // namespace qens::ml
