#ifndef QENS_ML_MODEL_IO_H_
#define QENS_ML_MODEL_IO_H_

/// \file model_io.h
/// Text serialization of SequentialModel — the historical wire format
/// exchanged between the leader and the participants in the federation (and
/// used by the network substrate to account transferred bytes when the
/// binary codec is off; see model_codec.h for the opt-in binary format).
///
/// Format (line oriented, '#'-prefixed comments ignored; anything after the
/// parameter block other than whitespace is rejected):
///   qens-model v1
///   layers <n>
///   layer <in> <out> <activation>      (n times)
///   params <count>
///   <count whitespace-separated doubles, hex-float for exactness>

#include <string>

#include "qens/common/status.h"
#include "qens/ml/sequential_model.h"

namespace qens::ml {

/// Serialize a model (architecture + parameters) to the v1 text format.
std::string SerializeModel(const SequentialModel& model);

/// Parse a model from the v1 text format. Fails on any structural error
/// (bad magic, layer chain mismatch, wrong parameter count, parse errors).
Result<SequentialModel> DeserializeModel(const std::string& text);

/// Write SerializeModel output to `path`.
Status SaveModel(const SequentialModel& model, const std::string& path);

/// Read and parse a model from `path`.
Result<SequentialModel> LoadModel(const std::string& path);

/// Size in bytes of the serialized form — the communication cost of sending
/// this model over the (simulated) network when the binary codec is off.
/// Computed by counting formatted lengths, never by building the serialized
/// string; returns exactly SerializeModel(model).size().
size_t SerializedModelBytes(const SequentialModel& model);

namespace internal {

/// Times SerializeModel has fully materialized a serialized string in this
/// process. Test-only: lets regression tests assert that the byte-accounting
/// path (SerializedModelBytes) performs no full serialization.
size_t SerializeCallCountForTest();

}  // namespace internal

}  // namespace qens::ml

#endif  // QENS_ML_MODEL_IO_H_
