#ifndef QENS_ML_MODEL_IO_H_
#define QENS_ML_MODEL_IO_H_

/// \file model_io.h
/// Text serialization of SequentialModel — the wire format exchanged between
/// the leader and the participants in the federation (and used by the
/// network substrate to account transferred bytes).
///
/// Format (line oriented, '#'-prefixed comments ignored):
///   qens-model v1
///   layers <n>
///   layer <in> <out> <activation>      (n times)
///   params <count>
///   <count whitespace-separated doubles, hex-float for exactness>

#include <string>

#include "qens/common/status.h"
#include "qens/ml/sequential_model.h"

namespace qens::ml {

/// Serialize a model (architecture + parameters) to the v1 text format.
std::string SerializeModel(const SequentialModel& model);

/// Parse a model from the v1 text format. Fails on any structural error
/// (bad magic, layer chain mismatch, wrong parameter count, parse errors).
Result<SequentialModel> DeserializeModel(const std::string& text);

/// Write SerializeModel output to `path`.
Status SaveModel(const SequentialModel& model, const std::string& path);

/// Read and parse a model from `path`.
Result<SequentialModel> LoadModel(const std::string& path);

/// Size in bytes of the serialized form — the communication cost of sending
/// this model over the (simulated) network.
size_t SerializedModelBytes(const SequentialModel& model);

}  // namespace qens::ml

#endif  // QENS_ML_MODEL_IO_H_
