#ifndef QENS_ML_OPTIMIZER_H_
#define QENS_ML_OPTIMIZER_H_

/// \file optimizer.h
/// First-order optimizers operating on a model's per-layer gradients.
/// Table III uses learning rate 0.03 for LR (plain SGD) and 0.001 for NN
/// (Adam, the Keras default optimizer).

#include <memory>
#include <string>
#include <vector>

#include "qens/common/status.h"
#include "qens/ml/sequential_model.h"

namespace qens::ml {

/// Abstract optimizer: consumes per-layer gradients, updates the model.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Apply one update step. `grads` must have one entry per model layer with
  /// matching shapes (as produced by SequentialModel::Backward).
  virtual Status Step(SequentialModel* model,
                      const std::vector<DenseGradients>& grads) = 0;

  /// Reset any internal state (momentum buffers, Adam moments, step count).
  virtual void Reset() = 0;

  /// Optimizer name for reports ("sgd", "adam").
  virtual std::string Name() const = 0;

  double learning_rate() const { return learning_rate_; }
  void set_learning_rate(double lr) { learning_rate_ = lr; }

 protected:
  explicit Optimizer(double learning_rate) : learning_rate_(learning_rate) {}
  double learning_rate_;
};

/// Stochastic gradient descent with optional classical momentum.
class SgdOptimizer : public Optimizer {
 public:
  explicit SgdOptimizer(double learning_rate, double momentum = 0.0);

  Status Step(SequentialModel* model,
              const std::vector<DenseGradients>& grads) override;
  void Reset() override;
  std::string Name() const override { return "sgd"; }

 private:
  double momentum_;
  // Velocity buffers, one flat vector per layer (weights then bias), lazily
  // sized on first Step.
  std::vector<std::vector<double>> velocity_;
};

/// Adam (Kingma & Ba, 2015) with the standard bias correction.
class AdamOptimizer : public Optimizer {
 public:
  explicit AdamOptimizer(double learning_rate, double beta1 = 0.9,
                         double beta2 = 0.999, double epsilon = 1e-8);

  Status Step(SequentialModel* model,
              const std::vector<DenseGradients>& grads) override;
  void Reset() override;
  std::string Name() const override { return "adam"; }

 private:
  double beta1_;
  double beta2_;
  double epsilon_;
  size_t t_ = 0;  // Step count for bias correction.
  std::vector<std::vector<double>> m_;  // First moment per layer (flat).
  std::vector<std::vector<double>> v_;  // Second moment per layer (flat).
};

/// Factory: "sgd" or "adam" with the given learning rate.
Result<std::unique_ptr<Optimizer>> MakeOptimizer(const std::string& name,
                                                 double learning_rate);

}  // namespace qens::ml

#endif  // QENS_ML_OPTIMIZER_H_
