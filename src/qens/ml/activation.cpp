#include "qens/ml/activation.h"

#include <cmath>

#include "qens/common/string_util.h"

namespace qens::ml {

const char* ActivationName(Activation a) {
  switch (a) {
    case Activation::kIdentity:
      return "identity";
    case Activation::kRelu:
      return "relu";
    case Activation::kSigmoid:
      return "sigmoid";
    case Activation::kTanh:
      return "tanh";
  }
  return "unknown";
}

Result<Activation> ParseActivation(const std::string& name) {
  const std::string n = ToLower(Trim(name));
  if (n == "identity" || n == "linear") return Activation::kIdentity;
  if (n == "relu") return Activation::kRelu;
  if (n == "sigmoid") return Activation::kSigmoid;
  if (n == "tanh") return Activation::kTanh;
  return Status::InvalidArgument("unknown activation: '" + name + "'");
}

void ApplyActivation(Activation a, const Matrix& z, Matrix* out) {
  if (out != &z) *out = z;
  auto& d = out->data();
  switch (a) {
    case Activation::kIdentity:
      break;
    case Activation::kRelu:
      for (double& v : d) v = v > 0.0 ? v : 0.0;
      break;
    case Activation::kSigmoid:
      for (double& v : d) v = 1.0 / (1.0 + std::exp(-v));
      break;
    case Activation::kTanh:
      for (double& v : d) v = std::tanh(v);
      break;
  }
}

void ApplyActivationGrad(Activation a, const Matrix& z, Matrix* out) {
  if (out != &z) *out = z;
  auto& d = out->data();
  switch (a) {
    case Activation::kIdentity:
      for (double& v : d) v = 1.0;
      break;
    case Activation::kRelu:
      for (double& v : d) v = v > 0.0 ? 1.0 : 0.0;
      break;
    case Activation::kSigmoid:
      for (double& v : d) {
        const double s = 1.0 / (1.0 + std::exp(-v));
        v = s * (1.0 - s);
      }
      break;
    case Activation::kTanh:
      for (double& v : d) {
        const double t = std::tanh(v);
        v = 1.0 - t * t;
      }
      break;
  }
}

}  // namespace qens::ml
