#ifndef QENS_ML_DENSE_LAYER_H_
#define QENS_ML_DENSE_LAYER_H_

/// \file dense_layer.h
/// Fully-connected layer: Y = f(X * W + b).
///
/// Shapes: X is (batch x in), W is (in x out), b is (out), Y is (batch x out).
/// The layer owns its parameters and, after a Forward with caching enabled,
/// the activations needed for Backward.

#include <cstddef>
#include <vector>

#include "qens/common/rng.h"
#include "qens/common/status.h"
#include "qens/ml/activation.h"
#include "qens/tensor/matrix.h"

namespace qens::ml {

/// Gradients produced by one Backward pass through a layer.
struct DenseGradients {
  Matrix d_weights;             ///< Same shape as the layer's weight matrix.
  std::vector<double> d_bias;   ///< Same length as the layer's bias.
};

/// A dense (fully connected) layer with an elementwise activation.
class DenseLayer {
 public:
  /// Construct with zeroed parameters. Use InitGlorot to randomize.
  DenseLayer(size_t in_features, size_t out_features, Activation activation);

  size_t in_features() const { return in_features_; }
  size_t out_features() const { return out_features_; }
  Activation activation() const { return activation_; }

  /// Glorot/Xavier-uniform weight init, zero bias (the Keras Dense default,
  /// matching the paper's setup).
  void InitGlorot(Rng* rng);

  /// Inference-only forward pass: Y = f(X * W + b) with no caching and no
  /// layer mutation. Fails if x.cols() != in_features().
  Result<Matrix> Apply(const Matrix& x) const;

  /// Forward pass. When `cache` is true, stores a VIEW of the input (a
  /// pointer — zero-copy) plus the pre-activation for a subsequent Backward;
  /// the caller must keep `x` alive and unmodified until Backward runs
  /// (SequentialModel owns the inter-layer activations for exactly this).
  /// Fails if x.cols() != in_features().
  Result<Matrix> Forward(const Matrix& x, bool cache);

  /// Backward pass given dL/dY (`grad_out`, batch x out). Returns parameter
  /// gradients via `grads` and dL/dX as the function result. Computes
  /// Xᵀ·dZ and dZ·Wᵀ through the fused transposed-operand kernels — no
  /// transpose is ever materialized.
  /// Requires a prior Forward(x, /*cache=*/true) on the same batch, with
  /// that x still alive.
  Result<Matrix> Backward(const Matrix& grad_out, DenseGradients* grads);

  /// Apply a parameter delta: W += alpha * dW, b += alpha * db.
  Status ApplyDelta(double alpha, const DenseGradients& delta);

  const Matrix& weights() const { return weights_; }
  Matrix& weights() { return weights_; }
  const std::vector<double>& bias() const { return bias_; }
  std::vector<double>& bias() { return bias_; }

  /// Number of scalar parameters (weights + bias).
  size_t ParameterCount() const;

  /// Append all parameters (row-major weights, then bias) to `out`.
  void FlattenParams(std::vector<double>* out) const;

  /// Read ParameterCount() values from flat[offset...]; advances *offset.
  Status UnflattenParams(const std::vector<double>& flat, size_t* offset);

 private:
  size_t in_features_;
  size_t out_features_;
  Activation activation_;
  Matrix weights_;            // (in x out)
  std::vector<double> bias_;  // (out)

  // Cached by Forward(cache=true) for Backward. The input is held by
  // pointer (zero-copy); it is only dereferenced inside Backward, and the
  // Forward/Backward contract guarantees it is still alive there. The
  // pre-activation and the dZ scratch are layer-owned buffers whose
  // allocations are reused across batches.
  bool has_cache_ = false;
  const Matrix* cached_input_ = nullptr;  // (batch x in), caller-owned
  Matrix cached_pre_;                     // (batch x out), pre-activation Z
  Matrix dz_scratch_;                     // (batch x out), f'(Z) then dZ
};

}  // namespace qens::ml

#endif  // QENS_ML_DENSE_LAYER_H_
