#ifndef QENS_ML_MODEL_CODEC_H_
#define QENS_ML_MODEL_CODEC_H_

/// \file model_codec.h
/// Versioned binary wire format for SequentialModel exchange — the payload
/// that crosses the fl::Transport seam when FederationOptions::wire is
/// enabled (see docs/WIRE_FORMAT.md for the byte-level spec).
///
/// Layout (all integers little-endian):
///
///   offset  size  field
///   0       4     magic "QENW"
///   4       2     version (uint16, currently 1)
///   6       1     codec kind (WireCodecKind as uint8)
///   7       1     flags (bit 0: payload is a delta against a reference)
///   8       4     num_layers (uint32)
///   12      9*L   per layer: in_features u32, out_features u32, activation u8
///   ...     8     param_count (uint64; must match the architecture)
///   ...     *     payload (codec-dependent, see below)
///
/// Payloads, in flat GetParameters() order (per layer: row-major weights,
/// then bias):
///   kRawF64   param_count x 8 bytes, IEEE-754 binary64. Bit-exact.
///   kQuantN   per tensor (per layer: weights tensor, then bias tensor):
///             scale f64, then ceil(count*N/8) bytes of N-bit unsigned
///             slots packed LSB-first. value = (slot - qmax) * scale with
///             qmax = 2^(N-1) - 1; non-finite inputs encode as slot qmax
///             (i.e. 0) and are excluded from the scale computation.
///   kTopK     k u64, then k x (index u32, value f64) sorted by strictly
///             increasing index; unlisted entries are 0.
///
/// Decoding is strict: bad magic/version/kind/flags, non-positive layer
/// widths, a broken layer chain, a param_count that disagrees with the
/// architecture, truncation, and trailing bytes are all rejected.
///
/// Every payload size is architecture-determined — EncodedModelBytes() is
/// closed-form and needs no buffer — which is what lets the planner pin
/// its per-tag byte estimates *exactly* against transport counters.

#include <cstddef>
#include <cstdint>
#include <string>

#include "qens/common/status.h"
#include "qens/ml/sequential_model.h"

namespace qens::ml {

/// Payload encodings of wire format v1. Values are the on-wire codec byte.
enum class WireCodecKind : uint8_t {
  kRawF64 = 0,  ///< Lossless IEEE-754 binary64 (8 bytes/param).
  kQuant8 = 1,  ///< 8-bit symmetric quantization, per-tensor scale.
  kQuant4 = 2,  ///< 4-bit symmetric quantization, per-tensor scale.
  kQuant2 = 3,  ///< 2-bit symmetric quantization, per-tensor scale.
  kTopK = 4,    ///< Top-k magnitude sparsification (delta exchange).
};

/// Canonical short name: "raw" / "q8" / "q4" / "q2" / "topk".
const char* WireCodecKindName(WireCodecKind kind);

/// Parse a canonical short name (as accepted in the [wire] INI section).
Result<WireCodecKind> ParseWireCodecKind(const std::string& name);

/// Quantization bit width (8/4/2), or 0 for non-quantized codecs.
int WireCodecBits(WireCodecKind kind);

/// True when decode(encode(m)) may differ from m. kRawF64 is bit-exact;
/// every other codec is lossy.
bool WireCodecIsLossy(WireCodecKind kind);

/// Opt-in wire configuration. Defaults keep the historical behavior: no
/// payload bytes are formed and byte accounting uses the text serializer.
struct WireOptions {
  /// Master switch. When false the codec is never invoked and federation
  /// outputs are byte-identical to the pre-wire protocol.
  bool enabled = false;
  /// Update codec. Down-link broadcasts quantized *absolute* params (top-k
  /// falls back to raw — sparsifying an absolute model zeroes most of it);
  /// up-link sends *deltas* against the round's broadcast model.
  WireCodecKind codec = WireCodecKind::kRawF64;
  /// Fraction of params kept by kTopK, in (0, 1]. k = max(1, ceil(f * P)).
  double top_k_fraction = 0.1;
};

/// Codec actually used for the leader -> participant broadcast.
WireCodecKind DownlinkKind(const WireOptions& options);
/// Codec actually used for the participant -> leader update.
WireCodecKind UplinkKind(const WireOptions& options);

/// Number of values kTopK keeps: max(1, ceil(fraction * param_count)),
/// clamped to param_count. Zero when param_count is zero.
size_t TopKCount(size_t param_count, double fraction);

/// Closed-form encoded size in bytes — exactly Encode*(...).size() for the
/// same model architecture and codec, computed without building a buffer.
/// Architecture-determined: independent of parameter *values*.
size_t EncodedModelBytes(const SequentialModel& model, WireCodecKind kind,
                         double top_k_fraction = 0.1);

/// Encode absolute parameters. kTopK is rejected here (it only makes sense
/// for deltas; use EncodeModelDelta).
Result<std::string> EncodeModel(const SequentialModel& model,
                                WireCodecKind kind,
                                double top_k_fraction = 0.1);

/// Decode an absolute-parameter message (flags delta bit must be clear).
Result<SequentialModel> DecodeModel(const std::string& bytes);

/// Encode (model - reference) as a delta message. The reference must have
/// the same architecture; the delta bit is set in the header.
Result<std::string> EncodeModelDelta(const SequentialModel& model,
                                     const SequentialModel& reference,
                                     WireCodecKind kind,
                                     double top_k_fraction = 0.1);

/// Decode a delta message and apply it to `reference` (same architecture
/// required), returning reference + decoded delta.
Result<SequentialModel> DecodeModelDelta(const std::string& bytes,
                                         const SequentialModel& reference);

}  // namespace qens::ml

#endif  // QENS_ML_MODEL_CODEC_H_
