#include "qens/ml/model_io.h"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "qens/common/string_util.h"

namespace qens::ml {
namespace {

constexpr char kMagic[] = "qens-model v1";

std::atomic<size_t> g_serialize_calls{0};

}  // namespace

namespace internal {

size_t SerializeCallCountForTest() {
  return g_serialize_calls.load(std::memory_order_relaxed);
}

}  // namespace internal

std::string SerializeModel(const SequentialModel& model) {
  g_serialize_calls.fetch_add(1, std::memory_order_relaxed);
  std::ostringstream out;
  out << kMagic << "\n";
  out << "layers " << model.num_layers() << "\n";
  for (size_t i = 0; i < model.num_layers(); ++i) {
    const auto& layer = model.layer(i);
    out << "layer " << layer.in_features() << " " << layer.out_features()
        << " " << ActivationName(layer.activation()) << "\n";
  }
  const std::vector<double> params = model.GetParameters();
  out << "params " << params.size() << "\n";
  // Hex floats round-trip exactly.
  char buf[64];
  for (size_t i = 0; i < params.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%a", params[i]);
    out << buf << (i + 1 == params.size() ? "\n" : " ");
  }
  if (params.empty()) out << "\n";
  return out.str();
}

Result<SequentialModel> DeserializeModel(const std::string& text) {
  std::istringstream in(text);
  std::string line;

  auto next_line = [&](std::string* out) -> bool {
    while (std::getline(in, line)) {
      std::string t = Trim(line);
      if (t.empty() || t[0] == '#') continue;
      *out = t;
      return true;
    }
    return false;
  };

  std::string cur;
  if (!next_line(&cur) || cur != kMagic) {
    return Status::InvalidArgument("model parse: missing magic header");
  }
  if (!next_line(&cur) || !StartsWith(cur, "layers ")) {
    return Status::InvalidArgument("model parse: missing 'layers' line");
  }
  QENS_ASSIGN_OR_RETURN(int64_t n_layers, ParseInt(cur.substr(7)));
  if (n_layers < 0 || n_layers > 1'000'000) {
    return Status::InvalidArgument("model parse: unreasonable layer count");
  }

  SequentialModel model;
  for (int64_t i = 0; i < n_layers; ++i) {
    if (!next_line(&cur) || !StartsWith(cur, "layer ")) {
      return Status::InvalidArgument("model parse: missing 'layer' line");
    }
    const std::vector<std::string> parts = Split(cur, ' ');
    if (parts.size() != 4) {
      return Status::InvalidArgument("model parse: malformed layer line: '" +
                                     cur + "'");
    }
    QENS_ASSIGN_OR_RETURN(int64_t in_f, ParseInt(parts[1]));
    QENS_ASSIGN_OR_RETURN(int64_t out_f, ParseInt(parts[2]));
    if (in_f <= 0 || out_f <= 0) {
      return Status::InvalidArgument("model parse: non-positive layer width");
    }
    QENS_ASSIGN_OR_RETURN(Activation act, ParseActivation(parts[3]));
    QENS_RETURN_NOT_OK(model.AddLayer(static_cast<size_t>(in_f),
                                      static_cast<size_t>(out_f), act));
  }

  if (!next_line(&cur) || !StartsWith(cur, "params ")) {
    return Status::InvalidArgument("model parse: missing 'params' line");
  }
  QENS_ASSIGN_OR_RETURN(int64_t n_params, ParseInt(cur.substr(7)));
  if (n_params < 0 ||
      static_cast<size_t>(n_params) != model.ParameterCount()) {
    return Status::InvalidArgument(
        StrFormat("model parse: params count %lld does not match model (%zu)",
                  static_cast<long long>(n_params), model.ParameterCount()));
  }

  std::vector<double> params;
  params.reserve(static_cast<size_t>(n_params));
  // The remaining stream is whitespace-separated doubles (hex or decimal).
  std::string token;
  while (static_cast<int64_t>(params.size()) < n_params && in >> token) {
    QENS_ASSIGN_OR_RETURN(double v, ParseDouble(token));
    params.push_back(v);
  }
  if (static_cast<int64_t>(params.size()) != n_params) {
    return Status::InvalidArgument("model parse: truncated parameter block");
  }
  // A well-formed document ends after the parameter block; anything else is
  // corruption (a concatenated second model, leftover bytes, ...), not
  // something to silently ignore.
  if (in >> token) {
    return Status::InvalidArgument(
        "model parse: trailing data after parameter block: '" + token + "'");
  }
  QENS_RETURN_NOT_OK(model.SetParameters(params));
  return model;
}

Status SaveModel(const SequentialModel& model, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for write: " + path);
  out << SerializeModel(model);
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<SequentialModel> LoadModel(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for read: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return DeserializeModel(buf.str());
}

size_t SerializedModelBytes(const SequentialModel& model) {
  // Count exactly what SerializeModel would emit without materializing the
  // string: snprintf with a null buffer returns the formatted length. The
  // per-parameter "%a" lengths are value-dependent (that is the text
  // format's nature — the binary codec in model_codec.h is the
  // architecture-determined alternative), but no buffer is ever built.
  size_t bytes = std::strlen(kMagic) + 1;  // magic + '\n'
  bytes += static_cast<size_t>(
      std::snprintf(nullptr, 0, "layers %zu\n", model.num_layers()));
  for (size_t i = 0; i < model.num_layers(); ++i) {
    const auto& layer = model.layer(i);
    bytes += static_cast<size_t>(
        std::snprintf(nullptr, 0, "layer %zu %zu %s\n", layer.in_features(),
                      layer.out_features(), ActivationName(layer.activation())));
  }
  const std::vector<double> params = model.GetParameters();
  bytes += static_cast<size_t>(
      std::snprintf(nullptr, 0, "params %zu\n", params.size()));
  for (const double p : params) {
    // Each parameter is followed by ' ' or the final '\n': length + 1.
    bytes += static_cast<size_t>(std::snprintf(nullptr, 0, "%a", p)) + 1;
  }
  if (params.empty()) bytes += 1;  // The lone '\n' after "params 0".
  return bytes;
}

}  // namespace qens::ml
