#include "qens/ml/model_codec.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <numeric>
#include <vector>

#include "qens/common/string_util.h"

namespace qens::ml {
namespace {

constexpr char kMagic[4] = {'Q', 'E', 'N', 'W'};
constexpr uint16_t kVersion = 1;
constexpr uint8_t kFlagDelta = 0x01;
constexpr uint8_t kMaxCodecByte = static_cast<uint8_t>(WireCodecKind::kTopK);
constexpr uint8_t kMaxActivationByte = static_cast<uint8_t>(Activation::kTanh);
constexpr uint32_t kMaxWireLayers = 1'000'000;

// ---------------------------------------------------------------------------
// Little-endian primitives. memcpy keeps this well-defined on any host; the
// byte order is fixed by the explicit shifts, not by the host endianness.

void AppendU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void AppendU16(std::string* out, uint16_t v) {
  AppendU8(out, static_cast<uint8_t>(v & 0xff));
  AppendU8(out, static_cast<uint8_t>(v >> 8));
}

void AppendU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    AppendU8(out, static_cast<uint8_t>((v >> (8 * i)) & 0xff));
  }
}

void AppendU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    AppendU8(out, static_cast<uint8_t>((v >> (8 * i)) & 0xff));
  }
}

void AppendF64(std::string* out, double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  AppendU64(out, bits);
}

/// Bounds-checked sequential reader over the encoded buffer.
class Reader {
 public:
  explicit Reader(const std::string& bytes) : bytes_(bytes) {}

  size_t remaining() const { return bytes_.size() - pos_; }
  bool exhausted() const { return pos_ == bytes_.size(); }

  Status Need(size_t n, const char* what) {
    if (remaining() < n) {
      return Status::InvalidArgument(
          StrFormat("wire decode: truncated %s (need %zu bytes, have %zu)",
                    what, n, remaining()));
    }
    return Status::OK();
  }

  uint8_t U8() { return static_cast<uint8_t>(bytes_[pos_++]); }

  uint16_t U16() {
    uint16_t v = static_cast<uint16_t>(U8());
    v = static_cast<uint16_t>(v | (static_cast<uint16_t>(U8()) << 8));
    return v;
  }

  uint32_t U32() {
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(U8()) << (8 * i);
    return v;
  }

  uint64_t U64() {
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(U8()) << (8 * i);
    return v;
  }

  double F64() {
    const uint64_t bits = U64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

 private:
  const std::string& bytes_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Architecture helpers.

/// Per-layer tensor sizes in flat GetParameters() order: for each layer the
/// weights tensor (in * out), then the bias tensor (out). Quantized payloads
/// carry one scale per tensor.
std::vector<size_t> TensorSizes(const SequentialModel& model) {
  std::vector<size_t> sizes;
  sizes.reserve(2 * model.num_layers());
  for (size_t i = 0; i < model.num_layers(); ++i) {
    const auto& layer = model.layer(i);
    sizes.push_back(layer.in_features() * layer.out_features());
    sizes.push_back(layer.out_features());
  }
  return sizes;
}

size_t HeaderBytes(size_t num_layers) {
  // magic(4) + version(2) + codec(1) + flags(1) + num_layers(4)
  // + 9 per layer + param_count(8).
  return 12 + 9 * num_layers + 8;
}

size_t QuantPayloadBytes(const std::vector<size_t>& tensor_sizes, int bits) {
  size_t total = 0;
  for (const size_t count : tensor_sizes) {
    total += 8 + (count * static_cast<size_t>(bits) + 7) / 8;
  }
  return total;
}

// ---------------------------------------------------------------------------
// Payload encoders. `values` is the flat absolute-parameter or delta vector.

void EncodeRawPayload(const std::vector<double>& values, std::string* out) {
  for (const double v : values) AppendF64(out, v);
}

void EncodeQuantPayload(const std::vector<double>& values,
                        const std::vector<size_t>& tensor_sizes, int bits,
                        std::string* out) {
  const int qmax = (1 << (bits - 1)) - 1;
  size_t offset = 0;
  for (const size_t count : tensor_sizes) {
    // Per-tensor symmetric scale from the largest finite magnitude.
    double max_abs = 0.0;
    for (size_t i = 0; i < count; ++i) {
      const double v = values[offset + i];
      if (std::isfinite(v)) max_abs = std::max(max_abs, std::fabs(v));
    }
    const double scale = max_abs > 0.0 ? max_abs / qmax : 0.0;
    AppendF64(out, scale);
    uint8_t packed = 0;
    int filled = 0;
    for (size_t i = 0; i < count; ++i) {
      const double v = values[offset + i];
      int q = 0;
      if (scale > 0.0 && std::isfinite(v)) {
        // lround (half away from zero) is rounding-mode independent, so the
        // encoding is deterministic across platforms.
        q = static_cast<int>(std::lround(v / scale));
        q = std::clamp(q, -qmax, qmax);
      }
      const auto slot = static_cast<uint8_t>(q + qmax);
      packed = static_cast<uint8_t>(packed | (slot << filled));
      filled += bits;
      if (filled == 8) {
        AppendU8(out, packed);
        packed = 0;
        filled = 0;
      }
    }
    if (filled != 0) AppendU8(out, packed);  // Pad bits stay zero.
    offset += count;
  }
}

void EncodeTopKPayload(const std::vector<double>& values, size_t k,
                       std::string* out) {
  std::vector<size_t> order(values.size());
  std::iota(order.begin(), order.end(), 0);
  // NaN magnitudes sort as +inf so corrupted coordinates are transmitted
  // verbatim (the leader's validator, not the wire, judges them) and the
  // comparator stays a strict weak ordering.
  auto key = [&](size_t i) {
    const double v = values[i];
    return std::isnan(v) ? std::numeric_limits<double>::infinity()
                         : std::fabs(v);
  };
  auto larger = [&](size_t a, size_t b) {
    const double ka = key(a), kb = key(b);
    if (ka != kb) return ka > kb;
    return a < b;  // Deterministic low-index tie-break.
  };
  if (k < order.size()) {
    std::nth_element(order.begin(), order.begin() + k, order.end(), larger);
    order.resize(k);
  }
  std::sort(order.begin(), order.end());  // Strictly increasing indices.
  AppendU64(out, static_cast<uint64_t>(order.size()));
  for (const size_t i : order) {
    AppendU32(out, static_cast<uint32_t>(i));
    AppendF64(out, values[i]);
  }
}

// ---------------------------------------------------------------------------
// Shared encode / decode cores.

Result<std::string> EncodeValues(const SequentialModel& model,
                                 WireCodecKind kind, double top_k_fraction,
                                 bool is_delta,
                                 const std::vector<double>& values) {
  const size_t param_count = model.ParameterCount();
  if (param_count > std::numeric_limits<uint32_t>::max()) {
    return Status::InvalidArgument(
        "wire encode: parameter count exceeds the u32 index space");
  }
  if (model.num_layers() > kMaxWireLayers) {
    return Status::InvalidArgument("wire encode: unreasonable layer count");
  }
  if (kind == WireCodecKind::kTopK && !is_delta) {
    return Status::InvalidArgument(
        "wire encode: kTopK sparsifies deltas; absolute models must use "
        "kRawF64 or a quantized codec");
  }

  std::string out;
  out.reserve(EncodedModelBytes(model, kind, top_k_fraction));
  out.append(kMagic, sizeof(kMagic));
  AppendU16(&out, kVersion);
  AppendU8(&out, static_cast<uint8_t>(kind));
  AppendU8(&out, is_delta ? kFlagDelta : 0);
  AppendU32(&out, static_cast<uint32_t>(model.num_layers()));
  for (size_t i = 0; i < model.num_layers(); ++i) {
    const auto& layer = model.layer(i);
    AppendU32(&out, static_cast<uint32_t>(layer.in_features()));
    AppendU32(&out, static_cast<uint32_t>(layer.out_features()));
    AppendU8(&out, static_cast<uint8_t>(layer.activation()));
  }
  AppendU64(&out, static_cast<uint64_t>(param_count));

  switch (kind) {
    case WireCodecKind::kRawF64:
      EncodeRawPayload(values, &out);
      break;
    case WireCodecKind::kQuant8:
    case WireCodecKind::kQuant4:
    case WireCodecKind::kQuant2:
      EncodeQuantPayload(values, TensorSizes(model), WireCodecBits(kind),
                         &out);
      break;
    case WireCodecKind::kTopK:
      EncodeTopKPayload(values, TopKCount(param_count, top_k_fraction), &out);
      break;
  }
  return out;
}

struct DecodedMessage {
  SequentialModel architecture;       ///< Header architecture, params unset.
  std::vector<double> values;         ///< Flat absolute params or delta.
  bool is_delta = false;
};

Result<DecodedMessage> DecodeMessage(const std::string& bytes) {
  Reader in(bytes);
  QENS_RETURN_NOT_OK(in.Need(12, "header"));
  char magic[4];
  for (char& c : magic) c = static_cast<char>(in.U8());
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("wire decode: bad magic");
  }
  const uint16_t version = in.U16();
  if (version != kVersion) {
    return Status::InvalidArgument(
        StrFormat("wire decode: unsupported version %u", version));
  }
  const uint8_t codec_byte = in.U8();
  if (codec_byte > kMaxCodecByte) {
    return Status::InvalidArgument(
        StrFormat("wire decode: unknown codec %u", codec_byte));
  }
  const auto kind = static_cast<WireCodecKind>(codec_byte);
  const uint8_t flags = in.U8();
  if ((flags & ~kFlagDelta) != 0) {
    return Status::InvalidArgument(
        StrFormat("wire decode: unknown flags 0x%02x", flags));
  }
  const bool is_delta = (flags & kFlagDelta) != 0;
  if (kind == WireCodecKind::kTopK && !is_delta) {
    return Status::InvalidArgument(
        "wire decode: kTopK payload without the delta flag");
  }
  const uint32_t num_layers = in.U32();
  if (num_layers > kMaxWireLayers) {
    return Status::InvalidArgument("wire decode: unreasonable layer count");
  }
  QENS_RETURN_NOT_OK(in.Need(9 * static_cast<size_t>(num_layers) + 8,
                             "layer specs"));
  DecodedMessage msg;
  msg.is_delta = is_delta;
  for (uint32_t i = 0; i < num_layers; ++i) {
    const uint32_t in_f = in.U32();
    const uint32_t out_f = in.U32();
    const uint8_t act_byte = in.U8();
    if (in_f == 0 || out_f == 0) {
      return Status::InvalidArgument("wire decode: non-positive layer width");
    }
    if (act_byte > kMaxActivationByte) {
      return Status::InvalidArgument(
          StrFormat("wire decode: unknown activation %u", act_byte));
    }
    // AddLayer enforces the in == previous-out chain.
    QENS_RETURN_NOT_OK(msg.architecture.AddLayer(
        in_f, out_f, static_cast<Activation>(act_byte)));
  }
  const uint64_t param_count = in.U64();
  if (param_count != msg.architecture.ParameterCount()) {
    return Status::InvalidArgument(StrFormat(
        "wire decode: param count %llu does not match the architecture (%zu)",
        static_cast<unsigned long long>(param_count),
        msg.architecture.ParameterCount()));
  }

  msg.values.assign(static_cast<size_t>(param_count), 0.0);
  switch (kind) {
    case WireCodecKind::kRawF64: {
      QENS_RETURN_NOT_OK(in.Need(8 * msg.values.size(), "raw payload"));
      for (double& v : msg.values) v = in.F64();
      break;
    }
    case WireCodecKind::kQuant8:
    case WireCodecKind::kQuant4:
    case WireCodecKind::kQuant2: {
      const int bits = WireCodecBits(kind);
      const int qmax = (1 << (bits - 1)) - 1;
      const uint8_t max_slot = static_cast<uint8_t>(2 * qmax);
      size_t offset = 0;
      for (const size_t count : TensorSizes(msg.architecture)) {
        QENS_RETURN_NOT_OK(in.Need(8, "tensor scale"));
        const double scale = in.F64();
        if (!std::isfinite(scale) || scale < 0.0) {
          return Status::InvalidArgument(
              "wire decode: tensor scale must be finite and non-negative");
        }
        const size_t packed_bytes =
            (count * static_cast<size_t>(bits) + 7) / 8;
        QENS_RETURN_NOT_OK(in.Need(packed_bytes, "quantized tensor"));
        uint8_t packed = 0;
        int avail = 0;
        const uint8_t mask = static_cast<uint8_t>((1u << bits) - 1);
        for (size_t i = 0; i < count; ++i) {
          if (avail == 0) {
            packed = in.U8();
            avail = 8;
          }
          const uint8_t slot = packed & mask;
          packed = static_cast<uint8_t>(packed >> bits);
          avail -= bits;
          if (slot > max_slot) {
            return Status::InvalidArgument(
                StrFormat("wire decode: quantization slot %u out of range",
                          slot));
          }
          msg.values[offset + i] = (static_cast<int>(slot) - qmax) * scale;
        }
        if (packed != 0) {
          return Status::InvalidArgument(
              "wire decode: nonzero padding bits in quantized tensor");
        }
        offset += count;
      }
      break;
    }
    case WireCodecKind::kTopK: {
      QENS_RETURN_NOT_OK(in.Need(8, "top-k count"));
      const uint64_t k = in.U64();
      if (k > param_count) {
        return Status::InvalidArgument(
            "wire decode: top-k count exceeds the parameter count");
      }
      QENS_RETURN_NOT_OK(in.Need(12 * static_cast<size_t>(k), "top-k entries"));
      uint64_t prev = 0;
      for (uint64_t i = 0; i < k; ++i) {
        const uint32_t index = in.U32();
        if (index >= param_count || (i > 0 && index <= prev)) {
          return Status::InvalidArgument(
              "wire decode: top-k indices must be strictly increasing and "
              "in range");
        }
        prev = index;
        msg.values[index] = in.F64();
      }
      break;
    }
  }

  if (!in.exhausted()) {
    return Status::InvalidArgument(StrFormat(
        "wire decode: %zu trailing bytes after payload", in.remaining()));
  }
  return msg;
}

}  // namespace

const char* WireCodecKindName(WireCodecKind kind) {
  switch (kind) {
    case WireCodecKind::kRawF64: return "raw";
    case WireCodecKind::kQuant8: return "q8";
    case WireCodecKind::kQuant4: return "q4";
    case WireCodecKind::kQuant2: return "q2";
    case WireCodecKind::kTopK: return "topk";
  }
  return "unknown";
}

Result<WireCodecKind> ParseWireCodecKind(const std::string& name) {
  const std::string t = ToLower(Trim(name));
  if (t == "raw") return WireCodecKind::kRawF64;
  if (t == "q8") return WireCodecKind::kQuant8;
  if (t == "q4") return WireCodecKind::kQuant4;
  if (t == "q2") return WireCodecKind::kQuant2;
  if (t == "topk") return WireCodecKind::kTopK;
  return Status::InvalidArgument(
      "unknown wire codec '" + name + "' (want raw|q8|q4|q2|topk)");
}

int WireCodecBits(WireCodecKind kind) {
  switch (kind) {
    case WireCodecKind::kQuant8: return 8;
    case WireCodecKind::kQuant4: return 4;
    case WireCodecKind::kQuant2: return 2;
    default: return 0;
  }
}

bool WireCodecIsLossy(WireCodecKind kind) {
  return kind != WireCodecKind::kRawF64;
}

WireCodecKind DownlinkKind(const WireOptions& options) {
  // Sparsifying an *absolute* broadcast would zero most of the model;
  // top-k only makes sense for the up-link delta.
  return options.codec == WireCodecKind::kTopK ? WireCodecKind::kRawF64
                                               : options.codec;
}

WireCodecKind UplinkKind(const WireOptions& options) { return options.codec; }

size_t TopKCount(size_t param_count, double fraction) {
  if (param_count == 0) return 0;
  if (!(fraction > 0.0)) return 1;
  if (fraction >= 1.0) return param_count;
  const auto k = static_cast<size_t>(
      std::ceil(fraction * static_cast<double>(param_count)));
  return std::clamp<size_t>(k, 1, param_count);
}

size_t EncodedModelBytes(const SequentialModel& model, WireCodecKind kind,
                         double top_k_fraction) {
  const size_t param_count = model.ParameterCount();
  size_t bytes = HeaderBytes(model.num_layers());
  switch (kind) {
    case WireCodecKind::kRawF64:
      bytes += 8 * param_count;
      break;
    case WireCodecKind::kQuant8:
    case WireCodecKind::kQuant4:
    case WireCodecKind::kQuant2:
      bytes += QuantPayloadBytes(TensorSizes(model), WireCodecBits(kind));
      break;
    case WireCodecKind::kTopK:
      bytes += 8 + 12 * TopKCount(param_count, top_k_fraction);
      break;
  }
  return bytes;
}

Result<std::string> EncodeModel(const SequentialModel& model,
                                WireCodecKind kind, double top_k_fraction) {
  return EncodeValues(model, kind, top_k_fraction, /*is_delta=*/false,
                      model.GetParameters());
}

Result<SequentialModel> DecodeModel(const std::string& bytes) {
  QENS_ASSIGN_OR_RETURN(DecodedMessage msg, DecodeMessage(bytes));
  if (msg.is_delta) {
    return Status::InvalidArgument(
        "wire decode: delta payload passed to the absolute decoder (use "
        "DecodeModelDelta with the reference model)");
  }
  SequentialModel model = std::move(msg.architecture);
  QENS_RETURN_NOT_OK(model.SetParameters(msg.values));
  return model;
}

Result<std::string> EncodeModelDelta(const SequentialModel& model,
                                     const SequentialModel& reference,
                                     WireCodecKind kind,
                                     double top_k_fraction) {
  if (!model.SameArchitecture(reference)) {
    return Status::InvalidArgument(
        "wire encode: delta reference has a different architecture");
  }
  std::vector<double> delta = model.GetParameters();
  const std::vector<double> ref = reference.GetParameters();
  for (size_t i = 0; i < delta.size(); ++i) delta[i] -= ref[i];
  return EncodeValues(model, kind, top_k_fraction, /*is_delta=*/true, delta);
}

Result<SequentialModel> DecodeModelDelta(const std::string& bytes,
                                         const SequentialModel& reference) {
  QENS_ASSIGN_OR_RETURN(DecodedMessage msg, DecodeMessage(bytes));
  if (!msg.is_delta) {
    return Status::InvalidArgument(
        "wire decode: absolute payload passed to the delta decoder");
  }
  if (!msg.architecture.SameArchitecture(reference)) {
    return Status::InvalidArgument(
        "wire decode: delta architecture does not match the reference");
  }
  const std::vector<double> ref = reference.GetParameters();
  for (size_t i = 0; i < msg.values.size(); ++i) msg.values[i] += ref[i];
  SequentialModel model = reference.Clone();
  QENS_RETURN_NOT_OK(model.SetParameters(msg.values));
  return model;
}

}  // namespace qens::ml
