#ifndef QENS_ML_SEQUENTIAL_MODEL_H_
#define QENS_ML_SEQUENTIAL_MODEL_H_

/// \file sequential_model.h
/// A stack of dense layers — the model family the paper evaluates ("LR" is a
/// single 1-unit dense layer; "NN" adds a 64-unit ReLU hidden layer,
/// Table III). Exposes flat parameter access for serialization (the leader /
/// participant exchange) and parameter-space aggregation (FedAvg extension).

#include <memory>
#include <vector>

#include "qens/common/rng.h"
#include "qens/common/status.h"
#include "qens/ml/dense_layer.h"
#include "qens/tensor/matrix.h"

namespace qens::ml {

/// Feed-forward network: layers applied in order.
class SequentialModel {
 public:
  SequentialModel() = default;

  /// Append a layer. The first layer fixes the input width; subsequent
  /// layers must chain (in == previous out).
  Status AddLayer(size_t in_features, size_t out_features, Activation act);

  size_t num_layers() const { return layers_.size(); }
  const DenseLayer& layer(size_t i) const { return layers_[i]; }
  DenseLayer& layer(size_t i) { return layers_[i]; }

  /// Input/output widths; 0 when the model has no layers.
  size_t input_features() const;
  size_t output_features() const;

  /// Randomize all layer parameters (Glorot uniform, zero bias).
  void InitWeights(Rng* rng);

  /// Forward pass without gradient caching (inference). Const and
  /// allocation-light: no layer state is touched.
  Result<Matrix> Predict(const Matrix& x) const;

  /// Forward pass with caching for TrainBatch (internal use). The model
  /// keeps the inter-layer activations alive, and each layer caches a
  /// zero-copy view of its input; `x` itself must stay alive and unmodified
  /// until the matching Backward.
  Result<Matrix> Forward(const Matrix& x);

  /// Backprop dL/dOutput through all layers; fills per-layer gradients.
  Result<std::vector<DenseGradients>> Backward(const Matrix& grad_out);

  /// Total scalar parameter count across layers.
  size_t ParameterCount() const;

  /// All parameters as one flat vector (layer order, weights then bias).
  std::vector<double> GetParameters() const;

  /// Load parameters from a flat vector; fails unless the size matches
  /// ParameterCount() exactly.
  Status SetParameters(const std::vector<double>& flat);

  /// Deep copy.
  SequentialModel Clone() const { return *this; }

  /// True when the two models have identical layer shapes/activations.
  bool SameArchitecture(const SequentialModel& other) const;

 private:
  std::vector<DenseLayer> layers_;
  /// Inter-layer activations from the last caching Forward: activations_[i]
  /// is the output of layer i and the input layer i+1 holds a view of. Kept
  /// alive between Forward and Backward for the zero-copy backward pass;
  /// buffers are reused across batches. A copied model must run its own
  /// Forward before Backward (training always does).
  std::vector<Matrix> activations_;
};

}  // namespace qens::ml

#endif  // QENS_ML_SEQUENTIAL_MODEL_H_
