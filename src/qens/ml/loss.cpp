#include "qens/ml/loss.h"

#include <cmath>

#include "qens/common/string_util.h"

namespace qens::ml {
namespace {

constexpr double kHuberDelta = 1.0;

Status CheckShapes(const Matrix& pred, const Matrix& target) {
  if (!pred.SameShape(target)) {
    return Status::InvalidArgument(
        StrFormat("loss: pred %zux%zu vs target %zux%zu", pred.rows(),
                  pred.cols(), target.rows(), target.cols()));
  }
  if (pred.empty()) return Status::InvalidArgument("loss: empty inputs");
  return Status::OK();
}

}  // namespace

const char* LossName(LossKind k) {
  switch (k) {
    case LossKind::kMse:
      return "mse";
    case LossKind::kMae:
      return "mae";
    case LossKind::kHuber:
      return "huber";
  }
  return "unknown";
}

Result<LossKind> ParseLoss(const std::string& name) {
  const std::string n = ToLower(Trim(name));
  if (n == "mse") return LossKind::kMse;
  if (n == "mae") return LossKind::kMae;
  if (n == "huber") return LossKind::kHuber;
  return Status::InvalidArgument("unknown loss: '" + name + "'");
}

Result<double> ComputeLoss(LossKind kind, const Matrix& pred,
                           const Matrix& target) {
  QENS_RETURN_NOT_OK(CheckShapes(pred, target));
  const auto& p = pred.data();
  const auto& t = target.data();
  double acc = 0.0;
  switch (kind) {
    case LossKind::kMse:
      for (size_t i = 0; i < p.size(); ++i) {
        const double d = p[i] - t[i];
        acc += d * d;
      }
      break;
    case LossKind::kMae:
      for (size_t i = 0; i < p.size(); ++i) acc += std::fabs(p[i] - t[i]);
      break;
    case LossKind::kHuber:
      for (size_t i = 0; i < p.size(); ++i) {
        const double d = std::fabs(p[i] - t[i]);
        acc += d <= kHuberDelta ? 0.5 * d * d
                                : kHuberDelta * (d - 0.5 * kHuberDelta);
      }
      break;
  }
  return acc / static_cast<double>(p.size());
}

Result<Matrix> ComputeLossGrad(LossKind kind, const Matrix& pred,
                               const Matrix& target) {
  QENS_RETURN_NOT_OK(CheckShapes(pred, target));
  Matrix grad(pred.rows(), pred.cols());
  const auto& p = pred.data();
  const auto& t = target.data();
  auto& g = grad.data();
  const double inv_n = 1.0 / static_cast<double>(p.size());
  switch (kind) {
    case LossKind::kMse:
      for (size_t i = 0; i < p.size(); ++i) g[i] = 2.0 * (p[i] - t[i]) * inv_n;
      break;
    case LossKind::kMae:
      for (size_t i = 0; i < p.size(); ++i) {
        const double d = p[i] - t[i];
        g[i] = (d > 0.0 ? 1.0 : (d < 0.0 ? -1.0 : 0.0)) * inv_n;
      }
      break;
    case LossKind::kHuber:
      for (size_t i = 0; i < p.size(); ++i) {
        const double d = p[i] - t[i];
        if (std::fabs(d) <= kHuberDelta) {
          g[i] = d * inv_n;
        } else {
          g[i] = (d > 0.0 ? kHuberDelta : -kHuberDelta) * inv_n;
        }
      }
      break;
  }
  return grad;
}

}  // namespace qens::ml
