#include "qens/ml/trainer.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "qens/common/rng.h"
#include "qens/common/string_util.h"
#include "qens/obs/metrics.h"
#include "qens/obs/trace.h"

namespace qens::ml {

Trainer::Trainer(std::unique_ptr<Optimizer> optimizer, TrainOptions options)
    : optimizer_(std::move(optimizer)), options_(options) {
  assert(optimizer_ != nullptr);
}

Result<double> Trainer::TrainBatch(SequentialModel* model, const Matrix& x,
                                   const Matrix& y) {
  QENS_ASSIGN_OR_RETURN(Matrix pred, model->Forward(x));
  QENS_ASSIGN_OR_RETURN(double loss, ComputeLoss(options_.loss, pred, y));
  QENS_ASSIGN_OR_RETURN(Matrix grad, ComputeLossGrad(options_.loss, pred, y));
  QENS_ASSIGN_OR_RETURN(std::vector<DenseGradients> grads,
                        model->Backward(grad));

  // L2 weight decay on weights (not biases).
  if (options_.weight_decay > 0.0) {
    for (size_t li = 0; li < grads.size(); ++li) {
      QENS_RETURN_NOT_OK(
          grads[li].d_weights.Axpy(options_.weight_decay,
                                   model->layer(li).weights()));
    }
  }

  // Global gradient-norm clipping across all layers.
  if (options_.clip_norm > 0.0) {
    double norm_sq = 0.0;
    for (const auto& g : grads) {
      for (double v : g.d_weights.data()) norm_sq += v * v;
      for (double v : g.d_bias) norm_sq += v * v;
    }
    const double norm = std::sqrt(norm_sq);
    if (norm > options_.clip_norm) {
      const double scale = options_.clip_norm / norm;
      for (auto& g : grads) {
        g.d_weights.Scale(scale);
        for (double& v : g.d_bias) v *= scale;
      }
    }
  }

  QENS_RETURN_NOT_OK(optimizer_->Step(model, grads));
  return loss;
}

Result<TrainReport> Trainer::Fit(SequentialModel* model, const Matrix& x,
                                 const Matrix& y) {
  obs::TraceSpan span("trainer.fit");
  if (x.rows() == 0) return Status::InvalidArgument("Fit: empty dataset");
  if (x.rows() != y.rows()) {
    return Status::InvalidArgument(StrFormat(
        "Fit: %zu feature rows vs %zu target rows", x.rows(), y.rows()));
  }
  if (model->input_features() != x.cols()) {
    return Status::InvalidArgument(
        StrFormat("Fit: model expects %zu features, data has %zu",
                  model->input_features(), x.cols()));
  }
  if (model->output_features() != y.cols()) {
    return Status::InvalidArgument(
        StrFormat("Fit: model outputs %zu values, targets have %zu",
                  model->output_features(), y.cols()));
  }
  if (options_.validation_split < 0.0 || options_.validation_split >= 1.0) {
    return Status::InvalidArgument("Fit: validation_split outside [0,1)");
  }
  if (options_.batch_size == 0) {
    return Status::InvalidArgument("Fit: batch_size must be > 0");
  }
  if (options_.epochs == 0) {
    return Status::InvalidArgument("Fit: epochs must be > 0");
  }

  Rng rng(options_.seed);

  // Initial shuffle, then hold out the tail as the validation set
  // (Keras semantics: validation_split takes the last fraction).
  std::vector<size_t> order(x.rows());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  if (options_.shuffle) rng.Shuffle(&order);

  size_t n_val = static_cast<size_t>(
      options_.validation_split * static_cast<double>(x.rows()));
  // Keep at least one training row.
  n_val = std::min(n_val, x.rows() - 1);
  const size_t n_train = x.rows() - n_val;

  std::vector<size_t> train_idx(order.begin(),
                                order.begin() + static_cast<ptrdiff_t>(n_train));
  std::vector<size_t> val_idx(order.begin() + static_cast<ptrdiff_t>(n_train),
                              order.end());

  QENS_ASSIGN_OR_RETURN(Matrix x_val, x.SelectRows(val_idx));
  QENS_ASSIGN_OR_RETURN(Matrix y_val, y.SelectRows(val_idx));

  TrainReport report;
  double best_val = 0.0;
  size_t bad_epochs = 0;
  const double base_lr = optimizer_->learning_rate();

  // Batch scratch hoisted out of the epoch loop: the index buffer and the
  // (xb, yb) slices keep their allocations across every batch of every
  // epoch (batch shapes repeat, so SelectRowsInto never reallocates in
  // steady state). TrainBatch caches a view of xb, which stays alive here.
  std::vector<size_t> batch;
  batch.reserve(options_.batch_size);
  Matrix xb, yb;

  for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    if (options_.lr_decay > 0.0) {
      optimizer_->set_learning_rate(
          base_lr / (1.0 + options_.lr_decay * static_cast<double>(epoch)));
    }
    if (options_.shuffle) rng.Shuffle(&train_idx);

    double epoch_loss = 0.0;
    size_t batches = 0;
    for (size_t start = 0; start < n_train; start += options_.batch_size) {
      const size_t end = std::min(start + options_.batch_size, n_train);
      batch.assign(train_idx.begin() + static_cast<ptrdiff_t>(start),
                   train_idx.begin() + static_cast<ptrdiff_t>(end));
      QENS_RETURN_NOT_OK(x.SelectRowsInto(batch, &xb));
      QENS_RETURN_NOT_OK(y.SelectRowsInto(batch, &yb));
      QENS_ASSIGN_OR_RETURN(double loss, TrainBatch(model, xb, yb));
      epoch_loss += loss;
      ++batches;
      report.samples_seen += batch.size();
    }
    report.train_loss.push_back(batches > 0 ? epoch_loss / batches : 0.0);
    ++report.epochs_run;

    if (n_val > 0) {
      QENS_ASSIGN_OR_RETURN(Matrix pv, model->Predict(x_val));
      QENS_ASSIGN_OR_RETURN(double vl, ComputeLoss(options_.loss, pv, y_val));
      report.val_loss.push_back(vl);

      if (options_.early_stopping_patience > 0) {
        if (report.val_loss.size() == 1 || vl < best_val - options_.min_delta) {
          best_val = vl;
          bad_epochs = 0;
        } else {
          ++bad_epochs;
          if (bad_epochs >= options_.early_stopping_patience) {
            report.early_stopped = true;
            break;
          }
        }
      }
    }
  }
  // Restore the base learning rate so successive Fit calls (per-cluster
  // incremental training) all start from the configured rate.
  optimizer_->set_learning_rate(base_lr);
  obs::Count("trainer.fits");
  obs::Count("trainer.epochs", report.epochs_run);
  obs::Count("trainer.samples_seen", report.samples_seen);
  if (report.early_stopped) obs::Count("trainer.early_stops");
  return report;
}

}  // namespace qens::ml
