#include "qens/ml/metrics.h"

#include <cmath>

namespace qens::ml {

Result<RegressionMetrics> EvaluateRegression(const Matrix& pred,
                                             const Matrix& target) {
  if (!pred.SameShape(target)) {
    return Status::InvalidArgument("EvaluateRegression: shape mismatch");
  }
  if (pred.empty()) {
    return Status::InvalidArgument("EvaluateRegression: empty inputs");
  }
  const auto& p = pred.data();
  const auto& t = target.data();
  const double n = static_cast<double>(p.size());

  double mean_t = 0.0;
  for (double v : t) mean_t += v;
  mean_t /= n;

  double ss_res = 0.0, ss_tot = 0.0, abs_sum = 0.0;
  for (size_t i = 0; i < p.size(); ++i) {
    const double e = p[i] - t[i];
    ss_res += e * e;
    abs_sum += std::fabs(e);
    const double d = t[i] - mean_t;
    ss_tot += d * d;
  }

  RegressionMetrics m;
  m.count = p.size();
  m.mse = ss_res / n;
  m.rmse = std::sqrt(m.mse);
  m.mae = abs_sum / n;
  m.r_squared = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 0.0;
  return m;
}

Result<RegressionMetrics> EvaluateRegression(
    const std::vector<double>& pred, const std::vector<double>& target) {
  if (pred.size() != target.size()) {
    return Status::InvalidArgument("EvaluateRegression: size mismatch");
  }
  QENS_ASSIGN_OR_RETURN(Matrix mp, Matrix::FromFlat(pred.size(), 1, pred));
  QENS_ASSIGN_OR_RETURN(Matrix mt, Matrix::FromFlat(target.size(), 1, target));
  return EvaluateRegression(mp, mt);
}

}  // namespace qens::ml
