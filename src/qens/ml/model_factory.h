#ifndef QENS_ML_MODEL_FACTORY_H_
#define QENS_ML_MODEL_FACTORY_H_

/// \file model_factory.h
/// The paper's two model configurations (Table III) plus a generic spec.
///
/// Table III, verbatim:
///   | Model            | LR   | NN    |
///   | Dense            | 1    | 64    |
///   | epochs           | 100  | 100   |
///   | validation split | 0.2  | 0.2   |
///   | Learning rate    | 0.03 | 0.001 |
///   | activation       | relu | relu  |
///   | Loss             | MSE  | MSE   |
///
/// "LR" is a Keras-style linear regression: one dense unit. Its output is
/// linear (a ReLU output head cannot regress negative targets; the paper's
/// "relu" row refers to the hidden/dense activation, which for a 1-unit
/// regression head degenerates to the identity on the output). "NN" is a
/// 64-unit ReLU hidden layer followed by a 1-unit linear output.

#include <memory>
#include <string>

#include "qens/common/rng.h"
#include "qens/common/status.h"
#include "qens/ml/optimizer.h"
#include "qens/ml/sequential_model.h"
#include "qens/ml/trainer.h"

namespace qens::ml {

/// The two model families evaluated in the paper.
enum class ModelKind {
  kLinearRegression,  ///< "LR": Dense(1), lr = 0.03, SGD.
  kNeuralNetwork,     ///< "NN": Dense(64, relu) + Dense(1), lr = 0.001, Adam.
};

/// "lr" / "nn" canonical names.
const char* ModelKindName(ModelKind kind);
Result<ModelKind> ParseModelKind(const std::string& name);

/// Full per-model hyper-parameter record (Table III).
struct HyperParams {
  ModelKind kind = ModelKind::kLinearRegression;
  size_t dense_units = 1;
  size_t epochs = 100;
  double validation_split = 0.2;
  double learning_rate = 0.03;
  Activation hidden_activation = Activation::kRelu;
  LossKind loss = LossKind::kMse;
  std::string optimizer = "sgd";
  size_t batch_size = 32;
};

/// The paper's hyper-parameters for `kind` (Table III values).
HyperParams PaperHyperParams(ModelKind kind);

/// Build an untrained (but weight-initialized) model of `kind` for
/// `input_features` inputs and one regression output.
Result<SequentialModel> BuildModel(ModelKind kind, size_t input_features,
                                   Rng* rng);

/// Build a model from an explicit hyper-parameter record.
Result<SequentialModel> BuildModel(const HyperParams& hp,
                                   size_t input_features, Rng* rng);

/// A Trainer configured per Table III for `kind` (optimizer + options).
Result<std::unique_ptr<Trainer>> BuildTrainer(ModelKind kind, uint64_t seed);

/// A Trainer from an explicit hyper-parameter record.
Result<std::unique_ptr<Trainer>> BuildTrainer(const HyperParams& hp,
                                              uint64_t seed);

}  // namespace qens::ml

#endif  // QENS_ML_MODEL_FACTORY_H_
