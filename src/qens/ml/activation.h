#ifndef QENS_ML_ACTIVATION_H_
#define QENS_ML_ACTIVATION_H_

/// \file activation.h
/// Elementwise activation functions for dense layers. The paper's models use
/// ReLU hidden activations and linear outputs (Table III).

#include <string>

#include "qens/common/status.h"
#include "qens/tensor/matrix.h"

namespace qens::ml {

enum class Activation {
  kIdentity,  ///< f(x) = x (linear output layer)
  kRelu,      ///< f(x) = max(0, x)
  kSigmoid,   ///< f(x) = 1 / (1 + e^-x)
  kTanh,      ///< f(x) = tanh(x)
};

/// Canonical lowercase name ("identity", "relu", ...).
const char* ActivationName(Activation a);

/// Parse a name produced by ActivationName; case-insensitive; "linear" is
/// accepted as an alias of "identity".
Result<Activation> ParseActivation(const std::string& name);

/// f applied elementwise to `z`, written into `out` (same shape; may alias).
void ApplyActivation(Activation a, const Matrix& z, Matrix* out);

/// f'(z) applied elementwise, written into `out` (same shape; may alias).
///
/// The ReLU derivative at exactly 0 is taken as 0 (the common subgradient
/// choice, matching Keras/TensorFlow behaviour).
void ApplyActivationGrad(Activation a, const Matrix& z, Matrix* out);

}  // namespace qens::ml

#endif  // QENS_ML_ACTIVATION_H_
