#include "qens/ml/dense_layer.h"

#include <cmath>

#include "qens/common/string_util.h"

namespace qens::ml {

DenseLayer::DenseLayer(size_t in_features, size_t out_features,
                       Activation activation)
    : in_features_(in_features),
      out_features_(out_features),
      activation_(activation),
      weights_(in_features, out_features),
      bias_(out_features, 0.0) {}

void DenseLayer::InitGlorot(Rng* rng) {
  const double limit =
      std::sqrt(6.0 / static_cast<double>(in_features_ + out_features_));
  for (double& w : weights_.data()) w = rng->Uniform(-limit, limit);
  std::fill(bias_.begin(), bias_.end(), 0.0);
}

Result<Matrix> DenseLayer::Forward(const Matrix& x, bool cache) {
  if (x.cols() != in_features_) {
    return Status::InvalidArgument(
        StrFormat("DenseLayer::Forward: input has %zu features, expected %zu",
                  x.cols(), in_features_));
  }
  QENS_ASSIGN_OR_RETURN(Matrix z, x.MatMul(weights_));
  QENS_RETURN_NOT_OK(z.AddRowBroadcast(bias_));
  if (cache) {
    cached_input_ = x;
    cached_pre_ = z;
    has_cache_ = true;
  }
  Matrix y;
  ApplyActivation(activation_, z, &y);
  return y;
}

Result<Matrix> DenseLayer::Backward(const Matrix& grad_out,
                                    DenseGradients* grads) {
  if (!has_cache_) {
    return Status::FailedPrecondition(
        "DenseLayer::Backward called without a cached Forward");
  }
  if (grad_out.rows() != cached_pre_.rows() ||
      grad_out.cols() != out_features_) {
    return Status::InvalidArgument("DenseLayer::Backward: grad shape mismatch");
  }
  // dZ = dY (.) f'(Z)
  Matrix fprime;
  ApplyActivationGrad(activation_, cached_pre_, &fprime);
  QENS_ASSIGN_OR_RETURN(Matrix dz, grad_out.Hadamard(fprime));
  // dW = X^T dZ ; db = column sums of dZ ; dX = dZ W^T
  QENS_ASSIGN_OR_RETURN(grads->d_weights, cached_input_.Transposed().MatMul(dz));
  grads->d_bias = dz.ColSums();
  QENS_ASSIGN_OR_RETURN(Matrix dx, dz.MatMul(weights_.Transposed()));
  return dx;
}

Status DenseLayer::ApplyDelta(double alpha, const DenseGradients& delta) {
  QENS_RETURN_NOT_OK(weights_.Axpy(alpha, delta.d_weights));
  if (delta.d_bias.size() != bias_.size()) {
    return Status::InvalidArgument("ApplyDelta: bias size mismatch");
  }
  for (size_t i = 0; i < bias_.size(); ++i) bias_[i] += alpha * delta.d_bias[i];
  return Status::OK();
}

size_t DenseLayer::ParameterCount() const {
  return weights_.size() + bias_.size();
}

void DenseLayer::FlattenParams(std::vector<double>* out) const {
  out->insert(out->end(), weights_.data().begin(), weights_.data().end());
  out->insert(out->end(), bias_.begin(), bias_.end());
}

Status DenseLayer::UnflattenParams(const std::vector<double>& flat,
                                   size_t* offset) {
  const size_t need = ParameterCount();
  if (*offset + need > flat.size()) {
    return Status::InvalidArgument(
        StrFormat("UnflattenParams: need %zu values at offset %zu but flat "
                  "buffer has %zu",
                  need, *offset, flat.size()));
  }
  std::copy(flat.begin() + static_cast<ptrdiff_t>(*offset),
            flat.begin() + static_cast<ptrdiff_t>(*offset + weights_.size()),
            weights_.data().begin());
  *offset += weights_.size();
  std::copy(flat.begin() + static_cast<ptrdiff_t>(*offset),
            flat.begin() + static_cast<ptrdiff_t>(*offset + bias_.size()),
            bias_.begin());
  *offset += bias_.size();
  return Status::OK();
}

}  // namespace qens::ml
