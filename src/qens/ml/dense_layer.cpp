#include "qens/ml/dense_layer.h"

#include <cmath>

#include "qens/common/string_util.h"

namespace qens::ml {

DenseLayer::DenseLayer(size_t in_features, size_t out_features,
                       Activation activation)
    : in_features_(in_features),
      out_features_(out_features),
      activation_(activation),
      weights_(in_features, out_features),
      bias_(out_features, 0.0) {}

void DenseLayer::InitGlorot(Rng* rng) {
  const double limit =
      std::sqrt(6.0 / static_cast<double>(in_features_ + out_features_));
  for (double& w : weights_.data()) w = rng->Uniform(-limit, limit);
  std::fill(bias_.begin(), bias_.end(), 0.0);
}

Result<Matrix> DenseLayer::Apply(const Matrix& x) const {
  if (x.cols() != in_features_) {
    return Status::InvalidArgument(
        StrFormat("DenseLayer::Apply: input has %zu features, expected %zu",
                  x.cols(), in_features_));
  }
  Matrix z;
  QENS_RETURN_NOT_OK(x.MatMulAddBiasInto(weights_, bias_, &z));
  ApplyActivation(activation_, z, &z);  // In place: one buffer end to end.
  return z;
}

Result<Matrix> DenseLayer::Forward(const Matrix& x, bool cache) {
  if (!cache) return Apply(x);
  if (x.cols() != in_features_) {
    return Status::InvalidArgument(
        StrFormat("DenseLayer::Forward: input has %zu features, expected %zu",
                  x.cols(), in_features_));
  }
  QENS_RETURN_NOT_OK(x.MatMulAddBiasInto(weights_, bias_, &cached_pre_));
  cached_input_ = &x;  // Zero-copy: the caller keeps x alive for Backward.
  has_cache_ = true;
  Matrix y;
  ApplyActivation(activation_, cached_pre_, &y);
  return y;
}

Result<Matrix> DenseLayer::Backward(const Matrix& grad_out,
                                    DenseGradients* grads) {
  if (!has_cache_ || cached_input_ == nullptr) {
    return Status::FailedPrecondition(
        "DenseLayer::Backward called without a cached Forward");
  }
  if (grad_out.rows() != cached_pre_.rows() ||
      grad_out.cols() != out_features_) {
    return Status::InvalidArgument("DenseLayer::Backward: grad shape mismatch");
  }
  // dZ = dY (.) f'(Z), built in the layer-owned scratch buffer.
  ApplyActivationGrad(activation_, cached_pre_, &dz_scratch_);
  QENS_RETURN_NOT_OK(dz_scratch_.HadamardInPlace(grad_out));
  // dW = Xᵀ dZ ; db = column sums of dZ ; dX = dZ Wᵀ — both GEMMs via the
  // fused kernels, so no transposed copy of X or W is ever built.
  QENS_RETURN_NOT_OK(
      cached_input_->MatMulTransposedAInto(dz_scratch_, &grads->d_weights));
  grads->d_bias = dz_scratch_.ColSums();
  Matrix dx;
  QENS_RETURN_NOT_OK(dz_scratch_.MatMulTransposedBInto(weights_, &dx));
  return dx;
}

Status DenseLayer::ApplyDelta(double alpha, const DenseGradients& delta) {
  QENS_RETURN_NOT_OK(weights_.Axpy(alpha, delta.d_weights));
  if (delta.d_bias.size() != bias_.size()) {
    return Status::InvalidArgument("ApplyDelta: bias size mismatch");
  }
  for (size_t i = 0; i < bias_.size(); ++i) bias_[i] += alpha * delta.d_bias[i];
  return Status::OK();
}

size_t DenseLayer::ParameterCount() const {
  return weights_.size() + bias_.size();
}

void DenseLayer::FlattenParams(std::vector<double>* out) const {
  out->insert(out->end(), weights_.data().begin(), weights_.data().end());
  out->insert(out->end(), bias_.begin(), bias_.end());
}

Status DenseLayer::UnflattenParams(const std::vector<double>& flat,
                                   size_t* offset) {
  const size_t need = ParameterCount();
  if (*offset + need > flat.size()) {
    return Status::InvalidArgument(
        StrFormat("UnflattenParams: need %zu values at offset %zu but flat "
                  "buffer has %zu",
                  need, *offset, flat.size()));
  }
  std::copy(flat.begin() + static_cast<ptrdiff_t>(*offset),
            flat.begin() + static_cast<ptrdiff_t>(*offset + weights_.size()),
            weights_.data().begin());
  *offset += weights_.size();
  std::copy(flat.begin() + static_cast<ptrdiff_t>(*offset),
            flat.begin() + static_cast<ptrdiff_t>(*offset + bias_.size()),
            bias_.begin());
  *offset += bias_.size();
  return Status::OK();
}

}  // namespace qens::ml
