#include "qens/ml/model_factory.h"

#include "qens/common/string_util.h"

namespace qens::ml {

const char* ModelKindName(ModelKind kind) {
  switch (kind) {
    case ModelKind::kLinearRegression:
      return "lr";
    case ModelKind::kNeuralNetwork:
      return "nn";
  }
  return "unknown";
}

Result<ModelKind> ParseModelKind(const std::string& name) {
  const std::string n = ToLower(Trim(name));
  if (n == "lr" || n == "linear" || n == "linear_regression") {
    return ModelKind::kLinearRegression;
  }
  if (n == "nn" || n == "neural_network" || n == "mlp") {
    return ModelKind::kNeuralNetwork;
  }
  return Status::InvalidArgument("unknown model kind: '" + name + "'");
}

HyperParams PaperHyperParams(ModelKind kind) {
  HyperParams hp;
  hp.kind = kind;
  hp.epochs = 100;
  hp.validation_split = 0.2;
  hp.hidden_activation = Activation::kRelu;
  hp.loss = LossKind::kMse;
  hp.batch_size = 32;
  switch (kind) {
    case ModelKind::kLinearRegression:
      hp.dense_units = 1;
      hp.learning_rate = 0.03;
      hp.optimizer = "sgd";
      break;
    case ModelKind::kNeuralNetwork:
      hp.dense_units = 64;
      hp.learning_rate = 0.001;
      hp.optimizer = "adam";
      break;
  }
  return hp;
}

Result<SequentialModel> BuildModel(const HyperParams& hp,
                                   size_t input_features, Rng* rng) {
  if (input_features == 0) {
    return Status::InvalidArgument("BuildModel: zero input features");
  }
  SequentialModel model;
  if (hp.kind == ModelKind::kLinearRegression || hp.dense_units <= 1) {
    // Single dense unit, linear output: exactly "y = w.x + b".
    QENS_RETURN_NOT_OK(
        model.AddLayer(input_features, 1, Activation::kIdentity));
  } else {
    QENS_RETURN_NOT_OK(
        model.AddLayer(input_features, hp.dense_units, hp.hidden_activation));
    QENS_RETURN_NOT_OK(model.AddLayer(hp.dense_units, 1, Activation::kIdentity));
  }
  model.InitWeights(rng);
  return model;
}

Result<SequentialModel> BuildModel(ModelKind kind, size_t input_features,
                                   Rng* rng) {
  return BuildModel(PaperHyperParams(kind), input_features, rng);
}

Result<std::unique_ptr<Trainer>> BuildTrainer(const HyperParams& hp,
                                              uint64_t seed) {
  QENS_ASSIGN_OR_RETURN(std::unique_ptr<Optimizer> opt,
                        MakeOptimizer(hp.optimizer, hp.learning_rate));
  TrainOptions options;
  options.epochs = hp.epochs;
  options.batch_size = hp.batch_size;
  options.validation_split = hp.validation_split;
  options.loss = hp.loss;
  options.seed = seed;
  return std::make_unique<Trainer>(std::move(opt), options);
}

Result<std::unique_ptr<Trainer>> BuildTrainer(ModelKind kind, uint64_t seed) {
  return BuildTrainer(PaperHyperParams(kind), seed);
}

}  // namespace qens::ml
