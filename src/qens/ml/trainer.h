#ifndef QENS_ML_TRAINER_H_
#define QENS_ML_TRAINER_H_

/// \file trainer.h
/// Keras-style training loop: epochs, mini-batches, shuffling and a
/// validation split (Table III uses validation split = 0.2, 100 epochs).
///
/// `Trainer::Fit` can be invoked repeatedly on the same model with different
/// data — this is exactly the paper's incremental per-cluster training
/// (Section IV-A "each cluster represents a mini-batch"): the federation
/// layer calls Fit once per supporting cluster, in sequence.

#include <cstdint>
#include <memory>
#include <vector>

#include "qens/common/status.h"
#include "qens/ml/loss.h"
#include "qens/ml/optimizer.h"
#include "qens/ml/sequential_model.h"
#include "qens/tensor/matrix.h"

namespace qens::ml {

/// Knobs for one Fit invocation.
struct TrainOptions {
  size_t epochs = 100;            ///< Paper default (Table III).
  size_t batch_size = 32;         ///< Keras default.
  double validation_split = 0.2;  ///< Fraction held out from the END of the
                                  ///< (shuffled) data, Keras-style.
  bool shuffle = true;            ///< Shuffle once before splitting and then
                                  ///< every epoch (training part only).
  uint64_t seed = 42;             ///< Shuffling seed.
  LossKind loss = LossKind::kMse;
  /// Stop early when validation loss fails to improve by more than
  /// `min_delta` for `patience` consecutive epochs (0 disables).
  size_t early_stopping_patience = 0;
  double min_delta = 0.0;
  /// L2 weight decay coefficient: adds `weight_decay * W` to the weight
  /// gradients (biases excluded, the standard convention). 0 disables.
  double weight_decay = 0.0;
  /// Global gradient-norm clipping: when the L2 norm of all gradients
  /// exceeds this, they are rescaled to it. 0 disables.
  double clip_norm = 0.0;
  /// Inverse-time learning-rate decay: epoch e trains at
  /// lr0 / (1 + lr_decay * e). 0 disables.
  double lr_decay = 0.0;
};

/// Per-fit training history and counters.
struct TrainReport {
  std::vector<double> train_loss;  ///< One entry per completed epoch.
  std::vector<double> val_loss;    ///< Empty when validation_split == 0.
  size_t samples_seen = 0;         ///< Rows * epochs actually consumed.
  size_t epochs_run = 0;
  bool early_stopped = false;

  double final_train_loss() const {
    return train_loss.empty() ? 0.0 : train_loss.back();
  }
  double final_val_loss() const {
    return val_loss.empty() ? 0.0 : val_loss.back();
  }
};

/// Owns an optimizer and runs Fit passes over a caller-owned model.
class Trainer {
 public:
  /// Takes ownership of `optimizer` (must be non-null).
  Trainer(std::unique_ptr<Optimizer> optimizer, TrainOptions options);

  const TrainOptions& options() const { return options_; }
  TrainOptions& mutable_options() { return options_; }

  /// Train `model` on (x, y). x is (m x d); y is (m x out) or (m x 1).
  /// Fails on shape mismatch, empty data, or a model/feature width clash.
  Result<TrainReport> Fit(SequentialModel* model, const Matrix& x,
                          const Matrix& y);

  /// One gradient step on a single batch (no split/shuffle). Returns the
  /// batch loss before the update.
  Result<double> TrainBatch(SequentialModel* model, const Matrix& x,
                            const Matrix& y);

 private:
  std::unique_ptr<Optimizer> optimizer_;
  TrainOptions options_;
};

}  // namespace qens::ml

#endif  // QENS_ML_TRAINER_H_
