#include "qens/sim/fault_injection.h"

#include <cmath>

#include "qens/common/rng.h"
#include "qens/common/string_util.h"
#include "qens/obs/metrics.h"

namespace qens::sim {
namespace {

// Fork streams for the independent fault dimensions. Each per-event draw
// chains Fork(seed-stream) -> Fork(node) -> Fork(round) [-> Fork(extra)],
// so every answer is a pure function of its coordinates.
constexpr uint64_t kCrashStream = 0xc4a5;
constexpr uint64_t kStragglerStream = 0x57a6;
constexpr uint64_t kDropoutStream = 0xd409;
constexpr uint64_t kLossStream = 0x1055;
constexpr uint64_t kCorruptStream = 0xbad0;
constexpr uint64_t kCorruptActiveStream = 0xbad1;

Status ValidateRate(double rate, const char* what) {
  if (rate < 0.0 || rate > 1.0) {
    return Status::InvalidArgument(
        StrFormat("fault plan: %s must be in [0, 1], got %g", what, rate));
  }
  return Status::OK();
}

}  // namespace

const char* CorruptionKindName(CorruptionKind kind) {
  switch (kind) {
    case CorruptionKind::kNone:
      return "none";
    case CorruptionKind::kNanUpdate:
      return "nan";
    case CorruptionKind::kInfUpdate:
      return "inf";
    case CorruptionKind::kScaledUpdate:
      return "scale";
    case CorruptionKind::kSignFlip:
      return "sign_flip";
    case CorruptionKind::kLabelFlipPoisoning:
      return "label_flip";
  }
  return "none";
}

Result<CorruptionKind> ParseCorruptionKind(const std::string& name) {
  const std::string n = ToLower(Trim(name));
  if (n == "none") return CorruptionKind::kNone;
  if (n == "nan") return CorruptionKind::kNanUpdate;
  if (n == "inf") return CorruptionKind::kInfUpdate;
  if (n == "scale" || n == "scaled") return CorruptionKind::kScaledUpdate;
  if (n == "sign_flip" || n == "sign-flip") return CorruptionKind::kSignFlip;
  if (n == "label_flip" || n == "label-flip") {
    return CorruptionKind::kLabelFlipPoisoning;
  }
  return Status::InvalidArgument("unknown corruption kind: '" + name + "'");
}

Result<std::vector<CorruptionKind>> ParseCorruptionKinds(
    const std::string& csv) {
  std::vector<CorruptionKind> kinds;
  if (Trim(csv).empty()) return kinds;
  for (const std::string& part : Split(csv, ',')) {
    QENS_ASSIGN_OR_RETURN(CorruptionKind kind, ParseCorruptionKind(part));
    kinds.push_back(kind);
  }
  return kinds;
}

Result<FaultPlan> FaultPlan::Create(size_t num_nodes,
                                    const FaultPlanOptions& options) {
  QENS_RETURN_NOT_OK(ValidateRate(options.crash_rate, "crash_rate"));
  QENS_RETURN_NOT_OK(ValidateRate(options.dropout_rate, "dropout_rate"));
  QENS_RETURN_NOT_OK(ValidateRate(options.straggler_rate, "straggler_rate"));
  QENS_RETURN_NOT_OK(
      ValidateRate(options.message_loss_rate, "message_loss_rate"));
  if (options.straggler_slowdown_min < 1.0 ||
      options.straggler_slowdown_max < options.straggler_slowdown_min) {
    return Status::InvalidArgument(
        "fault plan: slowdown range must satisfy 1 <= min <= max");
  }
  if (options.crash_rate > 0.0 && options.crash_horizon == 0) {
    return Status::InvalidArgument(
        "fault plan: crash_horizon must be > 0 when crash_rate > 0");
  }
  QENS_RETURN_NOT_OK(ValidateRate(options.corruption_rate, "corruption_rate"));
  QENS_RETURN_NOT_OK(
      ValidateRate(options.corruption_active_rate, "corruption_active_rate"));
  if (options.corruption_rate > 0.0) {
    if (options.corruption_kinds.empty()) {
      return Status::InvalidArgument(
          "fault plan: corruption_kinds must be non-empty when "
          "corruption_rate > 0");
    }
    for (CorruptionKind kind : options.corruption_kinds) {
      if (kind == CorruptionKind::kNone) {
        return Status::InvalidArgument(
            "fault plan: corruption_kinds must not contain 'none'");
      }
    }
    if (!std::isfinite(options.corruption_gamma)) {
      return Status::InvalidArgument(
          "fault plan: corruption_gamma must be finite");
    }
  }

  std::vector<NodeFaultProfile> profiles(num_nodes);
  const Rng base(options.seed);
  for (size_t i = 0; i < num_nodes; ++i) {
    NodeFaultProfile& p = profiles[i];
    Rng crash_rng = base.Fork(kCrashStream).Fork(i);
    if (crash_rng.Bernoulli(options.crash_rate)) {
      p.crashes = true;
      p.crash_round =
          static_cast<size_t>(crash_rng.UniformInt(options.crash_horizon));
    }
    Rng straggler_rng = base.Fork(kStragglerStream).Fork(i);
    if (straggler_rng.Bernoulli(options.straggler_rate)) {
      p.straggler = true;
      p.slowdown = straggler_rng.Uniform(options.straggler_slowdown_min,
                                         options.straggler_slowdown_max);
    }
    if (options.corruption_rate > 0.0) {
      Rng corrupt_rng = base.Fork(kCorruptStream).Fork(i);
      if (corrupt_rng.Bernoulli(options.corruption_rate)) {
        p.byzantine = true;
        p.corruption = options.corruption_kinds[static_cast<size_t>(
            corrupt_rng.UniformInt(options.corruption_kinds.size()))];
      }
    }
  }
  return FaultPlan(std::move(profiles), options);
}

std::string FaultPlan::Describe() const {
  std::string out = StrFormat("fault plan (seed %llu, %zu nodes):",
                              static_cast<unsigned long long>(options_.seed),
                              profiles_.size());
  bool any = false;
  for (size_t i = 0; i < profiles_.size(); ++i) {
    const NodeFaultProfile& p = profiles_[i];
    if (p.crashes) {
      out += StrFormat(" node %zu: crash@r%zu;", i, p.crash_round);
      any = true;
    }
    if (p.straggler) {
      out += StrFormat(" node %zu: %.2fx straggler;", i, p.slowdown);
      any = true;
    }
    if (p.byzantine) {
      out += StrFormat(" node %zu: byzantine (%s);", i,
                       CorruptionKindName(p.corruption));
      any = true;
    }
  }
  if (!any) out += " no scheduled node faults;";
  out += StrFormat(" dropout %.0f%%, message loss %.0f%%",
                   options_.dropout_rate * 100.0,
                   options_.message_loss_rate * 100.0);
  return out;
}

bool FaultInjector::IsCrashed(size_t node, size_t round) const {
  const NodeFaultProfile& p = plan_.node(node);
  const bool crashed = p.crashes && round >= p.crash_round;
  if (crashed) obs::Count("faults.crash_hits");
  return crashed;
}

bool FaultInjector::IsDroppedOut(size_t node, size_t round) const {
  const double rate = plan_.options().dropout_rate;
  if (rate <= 0.0) return false;
  Rng rng = Rng(plan_.options().seed)
                .Fork(kDropoutStream)
                .Fork(node)
                .Fork(round);
  const bool dropped = rng.Bernoulli(rate);
  if (dropped) obs::Count("faults.dropouts");
  return dropped;
}

bool FaultInjector::IsAvailable(size_t node, size_t round) const {
  return !IsCrashed(node, round) && !IsDroppedOut(node, round);
}

double FaultInjector::SlowdownFactor(size_t node, size_t round) const {
  (void)round;  // Slowdowns are persistent; round kept for future transients.
  return plan_.node(node).slowdown;
}

bool FaultInjector::LoseMessage(size_t from, size_t to, size_t round,
                                size_t attempt) const {
  const double rate = plan_.options().message_loss_rate;
  if (rate <= 0.0) return false;
  Rng rng = Rng(plan_.options().seed)
                .Fork(kLossStream)
                .Fork(from * 0x10001 + to)
                .Fork(round)
                .Fork(attempt);
  const bool lost = rng.Bernoulli(rate);
  if (lost) obs::Count("faults.messages_lost");
  return lost;
}

CorruptionKind FaultInjector::CorruptionFor(size_t node, size_t round) const {
  const NodeFaultProfile& p = plan_.node(node);
  if (!p.byzantine) return CorruptionKind::kNone;
  const double active = plan_.options().corruption_active_rate;
  if (active < 1.0) {
    Rng rng = Rng(plan_.options().seed)
                  .Fork(kCorruptActiveStream)
                  .Fork(node)
                  .Fork(round);
    if (!rng.Bernoulli(active)) return CorruptionKind::kNone;
  }
  obs::Count("faults.corruptions");
  return p.corruption;
}

}  // namespace qens::sim
