#include "qens/sim/fault_injection.h"

#include "qens/common/rng.h"
#include "qens/common/string_util.h"
#include "qens/obs/metrics.h"

namespace qens::sim {
namespace {

// Fork streams for the independent fault dimensions. Each per-event draw
// chains Fork(seed-stream) -> Fork(node) -> Fork(round) [-> Fork(extra)],
// so every answer is a pure function of its coordinates.
constexpr uint64_t kCrashStream = 0xc4a5;
constexpr uint64_t kStragglerStream = 0x57a6;
constexpr uint64_t kDropoutStream = 0xd409;
constexpr uint64_t kLossStream = 0x1055;

Status ValidateRate(double rate, const char* what) {
  if (rate < 0.0 || rate > 1.0) {
    return Status::InvalidArgument(
        StrFormat("fault plan: %s must be in [0, 1], got %g", what, rate));
  }
  return Status::OK();
}

}  // namespace

Result<FaultPlan> FaultPlan::Create(size_t num_nodes,
                                    const FaultPlanOptions& options) {
  QENS_RETURN_NOT_OK(ValidateRate(options.crash_rate, "crash_rate"));
  QENS_RETURN_NOT_OK(ValidateRate(options.dropout_rate, "dropout_rate"));
  QENS_RETURN_NOT_OK(ValidateRate(options.straggler_rate, "straggler_rate"));
  QENS_RETURN_NOT_OK(
      ValidateRate(options.message_loss_rate, "message_loss_rate"));
  if (options.straggler_slowdown_min < 1.0 ||
      options.straggler_slowdown_max < options.straggler_slowdown_min) {
    return Status::InvalidArgument(
        "fault plan: slowdown range must satisfy 1 <= min <= max");
  }
  if (options.crash_rate > 0.0 && options.crash_horizon == 0) {
    return Status::InvalidArgument(
        "fault plan: crash_horizon must be > 0 when crash_rate > 0");
  }

  std::vector<NodeFaultProfile> profiles(num_nodes);
  const Rng base(options.seed);
  for (size_t i = 0; i < num_nodes; ++i) {
    NodeFaultProfile& p = profiles[i];
    Rng crash_rng = base.Fork(kCrashStream).Fork(i);
    if (crash_rng.Bernoulli(options.crash_rate)) {
      p.crashes = true;
      p.crash_round =
          static_cast<size_t>(crash_rng.UniformInt(options.crash_horizon));
    }
    Rng straggler_rng = base.Fork(kStragglerStream).Fork(i);
    if (straggler_rng.Bernoulli(options.straggler_rate)) {
      p.straggler = true;
      p.slowdown = straggler_rng.Uniform(options.straggler_slowdown_min,
                                         options.straggler_slowdown_max);
    }
  }
  return FaultPlan(std::move(profiles), options);
}

std::string FaultPlan::Describe() const {
  std::string out = StrFormat("fault plan (seed %llu, %zu nodes):",
                              static_cast<unsigned long long>(options_.seed),
                              profiles_.size());
  bool any = false;
  for (size_t i = 0; i < profiles_.size(); ++i) {
    const NodeFaultProfile& p = profiles_[i];
    if (p.crashes) {
      out += StrFormat(" node %zu: crash@r%zu;", i, p.crash_round);
      any = true;
    }
    if (p.straggler) {
      out += StrFormat(" node %zu: %.2fx straggler;", i, p.slowdown);
      any = true;
    }
  }
  if (!any) out += " no scheduled node faults;";
  out += StrFormat(" dropout %.0f%%, message loss %.0f%%",
                   options_.dropout_rate * 100.0,
                   options_.message_loss_rate * 100.0);
  return out;
}

bool FaultInjector::IsCrashed(size_t node, size_t round) const {
  const NodeFaultProfile& p = plan_.node(node);
  const bool crashed = p.crashes && round >= p.crash_round;
  if (crashed) obs::Count("faults.crash_hits");
  return crashed;
}

bool FaultInjector::IsDroppedOut(size_t node, size_t round) const {
  const double rate = plan_.options().dropout_rate;
  if (rate <= 0.0) return false;
  Rng rng = Rng(plan_.options().seed)
                .Fork(kDropoutStream)
                .Fork(node)
                .Fork(round);
  const bool dropped = rng.Bernoulli(rate);
  if (dropped) obs::Count("faults.dropouts");
  return dropped;
}

bool FaultInjector::IsAvailable(size_t node, size_t round) const {
  return !IsCrashed(node, round) && !IsDroppedOut(node, round);
}

double FaultInjector::SlowdownFactor(size_t node, size_t round) const {
  (void)round;  // Slowdowns are persistent; round kept for future transients.
  return plan_.node(node).slowdown;
}

bool FaultInjector::LoseMessage(size_t from, size_t to, size_t round,
                                size_t attempt) const {
  const double rate = plan_.options().message_loss_rate;
  if (rate <= 0.0) return false;
  Rng rng = Rng(plan_.options().seed)
                .Fork(kLossStream)
                .Fork(from * 0x10001 + to)
                .Fork(round)
                .Fork(attempt);
  const bool lost = rng.Bernoulli(rate);
  if (lost) obs::Count("faults.messages_lost");
  return lost;
}

}  // namespace qens::sim
