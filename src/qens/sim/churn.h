#ifndef QENS_SIM_CHURN_H_
#define QENS_SIM_CHURN_H_

/// \file churn.h
/// Seeded node join/leave/rejoin churn for the simulated edge fleet.
///
/// Fault injection (fault_injection.h) models *failures*: crashes are
/// permanent and dropouts are memoryless one-round blips. Real edge fleets
/// additionally churn — devices leave for a stretch (battery, mobility,
/// duty cycling) and come back with their data intact. This module supplies
/// that missing dynamic:
///
///   ChurnPlan — a per-node schedule of presence intervals, drawn once from
///               a single seed exactly like sim::FaultPlan: every answer is
///               a pure function of (seed, node, round), so two plans built
///               from the same options agree on the entire trajectory
///               regardless of query order.
///
/// Each node selected as a "churner" alternates up/down intervals whose
/// lengths are drawn at plan time; the alternation is materialized out to
/// `churn_horizon` rounds and the node keeps its final state afterwards.
/// Every node starts present, so round 0 always sees the full fleet.
///
/// The plan is presence-only: a departed node that was selected for a round
/// simply contributes nothing (the federation's quorum-gated partial
/// aggregation absorbs it); rejoining nodes participate again with the data
/// they held all along.

#include <cstdint>
#include <string>
#include <vector>

#include "qens/common/status.h"

namespace qens::sim {

/// Churn-schedule knobs. The defaults describe a static fleet.
struct ChurnPlanOptions {
  uint64_t seed = 0;
  /// Probability that a node churns at all (alternates up/down intervals).
  /// 0 = static fleet, no schedule is drawn.
  double churn_rate = 0.0;
  /// Rounds over which the alternating schedule is materialized; past the
  /// horizon a node keeps the state it held at the horizon.
  size_t churn_horizon = 64;
  /// Down-interval (absent) length range in rounds, inclusive.
  size_t min_down_rounds = 1;
  size_t max_down_rounds = 4;
  /// Up-interval (present) length range in rounds, inclusive. The first up
  /// interval starts at round 0, so every node is present at round 0.
  size_t min_up_rounds = 2;
  size_t max_up_rounds = 8;
};

/// One node's materialized presence schedule.
struct NodeChurnProfile {
  bool churner = false;
  /// Ascending round indices at which presence flips, starting from
  /// "present". transitions[0] is the first leave round, transitions[1]
  /// the first rejoin round, and so on. Empty for non-churners.
  std::vector<size_t> transitions;
};

/// The per-node presence schedule drawn from one seed.
class ChurnPlan {
 public:
  /// Validate options and draw the per-node schedules. Fails on a rate
  /// outside [0, 1] or, when churn_rate > 0, on a zero horizon or an
  /// interval range violating 1 <= min <= max.
  static Result<ChurnPlan> Create(size_t num_nodes,
                                  const ChurnPlanOptions& options);

  size_t num_nodes() const { return profiles_.size(); }
  const ChurnPlanOptions& options() const { return options_; }
  const NodeChurnProfile& node(size_t i) const { return profiles_[i]; }
  const std::vector<NodeChurnProfile>& profiles() const { return profiles_; }

  /// Node `node` is present (joined) in round `round`. Pure function of the
  /// plan; O(log transitions).
  bool IsPresent(size_t node, size_t round) const;

  /// Churner count in the plan.
  size_t NumChurners() const;

  /// Human-readable schedule summary ("node 3: down@[r5,r7),[r12,r14);
  /// ...") for logging and scenario reproduction.
  std::string Describe() const;

 private:
  ChurnPlan(std::vector<NodeChurnProfile> profiles, ChurnPlanOptions options)
      : profiles_(std::move(profiles)), options_(options) {}

  std::vector<NodeChurnProfile> profiles_;
  ChurnPlanOptions options_;
};

}  // namespace qens::sim

#endif  // QENS_SIM_CHURN_H_
