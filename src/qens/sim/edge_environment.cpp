#include "qens/sim/edge_environment.h"

#include "qens/common/string_util.h"
#include "qens/selection/profile_io.h"

namespace qens::sim {

Result<EdgeEnvironment> EdgeEnvironment::Create(
    std::vector<data::Dataset> node_data, const EnvironmentOptions& options) {
  if (node_data.empty()) {
    return Status::InvalidArgument("environment: no nodes");
  }
  if (options.leader_index >= node_data.size()) {
    return Status::OutOfRange(
        StrFormat("environment: leader index %zu >= %zu",
                  options.leader_index, node_data.size()));
  }

  std::vector<EdgeNode> nodes;
  nodes.reserve(node_data.size());
  for (size_t i = 0; i < node_data.size(); ++i) {
    if (node_data[i].empty()) {
      return Status::InvalidArgument(
          StrFormat("environment: node %zu dataset is empty", i));
    }
    const double capacity =
        options.capacities.empty()
            ? 1.0
            : options.capacities[i % options.capacities.size()];
    if (capacity <= 0.0) {
      return Status::InvalidArgument(
          StrFormat("environment: node %zu capacity must be > 0", i));
    }
    nodes.emplace_back(i, StrFormat("node-%zu", i), std::move(node_data[i]),
                       capacity);
  }

  Network network{CostModel(options.cost), options.network};

  // Quantize every node with a node-specific k-means seed (deterministic,
  // decorrelated) and account the profile upload to the leader.
  for (auto& node : nodes) {
    clustering::KMeansOptions km = options.kmeans;
    km.seed = options.kmeans.seed + 0x9e37 * (node.id() + 1);
    QENS_RETURN_NOT_OK(node.Quantize(km));
    QENS_ASSIGN_OR_RETURN(const selection::NodeProfile* profile,
                          node.profile());
    if (node.id() != options.leader_index) {
      // Ship the actual serialized profile size (the v1 wire codec).
      network.Send(node.id(), options.leader_index,
                   selection::SerializedProfileBytes(*profile), "profile");
    }
  }

  return EdgeEnvironment(std::move(nodes), options.leader_index,
                         std::move(network), options);
}

Result<std::vector<selection::NodeProfile>> EdgeEnvironment::Profiles() const {
  std::vector<selection::NodeProfile> profiles;
  profiles.reserve(nodes_.size());
  for (const auto& node : nodes_) {
    QENS_ASSIGN_OR_RETURN(const selection::NodeProfile* p, node.profile());
    profiles.push_back(*p);
  }
  return profiles;
}

size_t EdgeEnvironment::TotalSamples() const {
  size_t total = 0;
  for (const auto& node : nodes_) total += node.NumSamples();
  return total;
}

Result<query::HyperRectangle> EdgeEnvironment::GlobalDataSpace() const {
  Result<query::HyperRectangle> hull = nodes_[0].local_data().FeatureSpace();
  QENS_RETURN_NOT_OK(hull.status());
  query::HyperRectangle acc = hull.value();
  for (size_t i = 1; i < nodes_.size(); ++i) {
    QENS_ASSIGN_OR_RETURN(query::HyperRectangle space,
                          nodes_[i].local_data().FeatureSpace());
    QENS_ASSIGN_OR_RETURN(acc, acc.Hull(space));
  }
  return acc;
}

}  // namespace qens::sim
