#include "qens/sim/network.h"

namespace qens::sim {

double Network::Send(size_t from, size_t to, size_t bytes, std::string tag) {
  messages_.push_back(Message{from, to, bytes, std::move(tag)});
  total_bytes_ += bytes;
  const double seconds = cost_model_.TransferSeconds(bytes);
  total_seconds_ += seconds;
  return seconds;
}

size_t Network::BytesWithTag(const std::string& tag) const {
  size_t bytes = 0;
  for (const auto& m : messages_) {
    if (m.tag == tag) bytes += m.bytes;
  }
  return bytes;
}

void Network::Reset() {
  messages_.clear();
  total_bytes_ = 0;
  total_seconds_ = 0.0;
}

}  // namespace qens::sim
