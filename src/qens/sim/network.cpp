#include "qens/sim/network.h"

namespace qens::sim {

double Network::Send(size_t from, size_t to, size_t bytes, std::string tag) {
  bytes_by_tag_[tag] += bytes;
  if (options_.record_messages) {
    messages_.push_back(Message{from, to, bytes, std::move(tag)});
  }
  ++total_messages_;
  total_bytes_ += bytes;
  const double seconds = cost_model_.TransferSeconds(bytes);
  total_seconds_ += seconds;
  return seconds;
}

size_t Network::BytesWithTag(const std::string& tag) const {
  const auto it = bytes_by_tag_.find(tag);
  return it == bytes_by_tag_.end() ? 0 : it->second;
}

void Network::Reset() {
  messages_.clear();
  bytes_by_tag_.clear();
  total_messages_ = 0;
  total_bytes_ = 0;
  total_seconds_ = 0.0;
}

}  // namespace qens::sim
