#ifndef QENS_SIM_EDGE_ENVIRONMENT_H_
#define QENS_SIM_EDGE_ENVIRONMENT_H_

/// \file edge_environment.h
/// The full simulated deployment: N edge nodes with local datasets and
/// capacities, a leader index, the network, and the cost model (the paper's
/// system model, Section III-A/B).

#include <cstdint>
#include <memory>
#include <vector>

#include "qens/clustering/kmeans.h"
#include "qens/common/status.h"
#include "qens/data/dataset.h"
#include "qens/sim/cost_model.h"
#include "qens/sim/edge_node.h"
#include "qens/sim/network.h"

namespace qens::sim {

/// Environment construction knobs.
struct EnvironmentOptions {
  /// Per-node k-means quantization (paper: K = 5).
  clustering::KMeansOptions kmeans;
  CostModelOptions cost;
  /// Accounting options for the environment-owned network.
  NetworkOptions network;
  /// Relative capacities; cycled when fewer entries than nodes. Empty means
  /// all nodes at capacity 1.0.
  std::vector<double> capacities;
  /// Index of the leader node (the query organizer).
  size_t leader_index = 0;
};

/// Owns the nodes and the network for one deployment.
class EdgeEnvironment {
 public:
  /// Build from per-node datasets. Every node is quantized immediately and
  /// its profile "shipped" to the leader over the network (so the profile
  /// traffic is visible in the counters). Fails on empty input, an empty
  /// node dataset, or an out-of-range leader index.
  static Result<EdgeEnvironment> Create(std::vector<data::Dataset> node_data,
                                        const EnvironmentOptions& options);

  size_t num_nodes() const { return nodes_.size(); }
  size_t leader_index() const { return leader_index_; }

  const EdgeNode& node(size_t i) const { return nodes_[i]; }
  EdgeNode& node(size_t i) { return nodes_[i]; }
  const std::vector<EdgeNode>& nodes() const { return nodes_; }

  Network& network() { return network_; }
  const Network& network() const { return network_; }
  const CostModel& cost_model() const { return network_.cost_model(); }

  /// All node profiles, ordered by node id (what the leader ranks against).
  Result<std::vector<selection::NodeProfile>> Profiles() const;

  /// Sum of samples across all nodes.
  size_t TotalSamples() const;

  /// Hull of all nodes' feature spaces — the global data space queries are
  /// generated over.
  Result<query::HyperRectangle> GlobalDataSpace() const;

  const EnvironmentOptions& options() const { return options_; }

 private:
  EdgeEnvironment(std::vector<EdgeNode> nodes, size_t leader_index,
                  Network network, EnvironmentOptions options)
      : nodes_(std::move(nodes)),
        leader_index_(leader_index),
        network_(std::move(network)),
        options_(options) {}

  std::vector<EdgeNode> nodes_;
  size_t leader_index_;
  Network network_;
  EnvironmentOptions options_;
};

}  // namespace qens::sim

#endif  // QENS_SIM_EDGE_ENVIRONMENT_H_
