#ifndef QENS_SIM_COST_MODEL_H_
#define QENS_SIM_COST_MODEL_H_

/// \file cost_model.h
/// Deterministic time/cost model of the simulated edge environment.
///
/// The paper runs on physical nodes and reports model-building time
/// (Fig. 8). Our substrate is a simulator, so we model time as
///   training:  samples_trained * epochs / node_capacity
///   transfer:  latency + bytes / bandwidth
/// which preserves the *shape* of Fig. 8 (time proportional to the amount
/// of data trained on) while remaining machine-independent. Wall-clock time
/// of the real C++ training run is reported alongside by the harness.

#include <cstddef>

namespace qens::sim {

/// Tunable constants of the simulated platform.
struct CostModelOptions {
  /// Per-message one-way latency in seconds (e.g. edge LAN RTT/2).
  double link_latency_s = 0.005;
  /// Link bandwidth in bytes/second (default 10 MB/s edge uplink).
  double bandwidth_bytes_per_s = 10.0 * 1024 * 1024;
  /// Baseline node throughput in (sample * epoch)s per second for capacity
  /// 1.0. A node with capacity c trains c * base_throughput samples/s.
  double base_throughput = 50'000.0;
};

/// Computes simulated durations for training and communication.
class CostModel {
 public:
  explicit CostModel(CostModelOptions options = {}) : options_(options) {}

  const CostModelOptions& options() const { return options_; }

  /// Seconds to train `samples` rows for `epochs` passes on a node of
  /// relative compute `capacity` (> 0).
  double TrainingSeconds(size_t samples, size_t epochs,
                         double capacity) const;

  /// Seconds to ship `bytes` over one link.
  double TransferSeconds(size_t bytes) const;

  /// Seconds for a round trip carrying `bytes_out` then `bytes_back`.
  double RoundTripSeconds(size_t bytes_out, size_t bytes_back) const;

 private:
  CostModelOptions options_;
};

}  // namespace qens::sim

#endif  // QENS_SIM_COST_MODEL_H_
