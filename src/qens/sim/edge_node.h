#ifndef QENS_SIM_EDGE_NODE_H_
#define QENS_SIM_EDGE_NODE_H_

/// \file edge_node.h
/// A simulated edge computing node: private local dataset, relative compute
/// capacity c_i (Section III-B's C = {c_1, ..., c_N}), and the node-local
/// quantization state (clusters + private membership). The node exposes only
/// its NodeProfile; raw data never crosses the node boundary.

#include <cstdint>
#include <string>
#include <vector>

#include "qens/clustering/kmeans.h"
#include "qens/common/status.h"
#include "qens/data/dataset.h"
#include "qens/selection/node_profile.h"

namespace qens::sim {

/// A participant edge node.
class EdgeNode {
 public:
  /// `capacity` is the node's relative compute (1.0 = baseline).
  EdgeNode(size_t id, std::string name, data::Dataset local_data,
           double capacity);

  size_t id() const { return id_; }
  const std::string& name() const { return name_; }
  double capacity() const { return capacity_; }
  size_t NumSamples() const { return data_.NumSamples(); }

  /// The node's private data (test-only accessor in production terms; the
  /// federation layer uses the cluster-scoped accessors below).
  const data::Dataset& local_data() const { return data_; }

  /// Run (or re-run) the local quantization (Eq. 1). Must be called before
  /// profile()/ClusterData(). K and seeding come from `options`.
  Status Quantize(const clustering::KMeansOptions& options);

  /// Swap the node's private data in place (models local data drift). The
  /// replacement must keep the same shape (rows × features). The existing
  /// quantized state is deliberately KEPT: the published digest goes stale
  /// until Quantize() is re-run, which is exactly the drift scenario the
  /// dynamic-fleet layer exercises.
  Status ReplaceLocalData(data::Dataset data);

  bool quantized() const { return quantized_; }

  /// The published digest. Fails when Quantize has not run.
  Result<const selection::NodeProfile*> profile() const;

  /// The node-private rows of one cluster as a Dataset (data selectivity:
  /// the model trains per supporting cluster). Fails when not quantized or
  /// the cluster id is out of range / empty.
  Result<data::Dataset> ClusterData(size_t cluster_id) const;

  /// Union of rows of several clusters (order: ascending row index).
  Result<data::Dataset> ClustersData(
      const std::vector<size_t>& cluster_ids) const;

 private:
  size_t id_;
  std::string name_;
  data::Dataset data_;
  double capacity_;
  bool quantized_ = false;
  selection::QuantizedNode quantized_state_;
};

}  // namespace qens::sim

#endif  // QENS_SIM_EDGE_NODE_H_
