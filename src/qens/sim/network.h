#ifndef QENS_SIM_NETWORK_H_
#define QENS_SIM_NETWORK_H_

/// \file network.h
/// Message accounting for the simulated edge network: every leader <->
/// participant exchange is recorded so experiments can report communication
/// volume and simulated transfer time (the paper's O(1)-communication claim
/// for the selection protocol is checked against these counters).
///
/// Aggregate counters (total messages/bytes/seconds and per-tag bytes) are
/// always maintained in O(1) per Send. The per-message log behind
/// `messages()` is optional: high-throughput serving workloads can turn it
/// off via NetworkOptions::record_messages to keep memory bounded while the
/// counters keep working.

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "qens/sim/cost_model.h"

namespace qens::sim {

/// One recorded message.
struct Message {
  size_t from = 0;
  size_t to = 0;
  size_t bytes = 0;
  std::string tag;  ///< e.g. "profile", "model-down", "model-up".
};

/// Network accounting knobs.
struct NetworkOptions {
  /// Keep the full per-message log served by `messages()`. Default on
  /// (the historical behavior). With it off, `messages()` stays empty but
  /// every counter — `total_messages`, `total_bytes`,
  /// `total_transfer_seconds`, `BytesWithTag` — is still exact, so
  /// long-running query-serving workloads don't grow an unbounded log.
  bool record_messages = true;
};

/// Records traffic and accumulates simulated transfer time.
class Network {
 public:
  explicit Network(CostModel cost_model,
                   NetworkOptions options = NetworkOptions())
      : cost_model_(cost_model), options_(options) {}

  /// Record a message and return its simulated transfer seconds.
  double Send(size_t from, size_t to, size_t bytes, std::string tag);

  size_t total_messages() const { return total_messages_; }
  size_t total_bytes() const { return total_bytes_; }
  double total_transfer_seconds() const { return total_seconds_; }

  /// The per-message log. Empty when NetworkOptions::record_messages is
  /// off — use the counters instead.
  const std::vector<Message>& messages() const { return messages_; }

  /// Sum of bytes for messages with the given tag. O(log #tags): served
  /// from a running per-tag counter, not a scan of the message log.
  size_t BytesWithTag(const std::string& tag) const;

  /// Running byte totals keyed by tag (deterministic iteration order).
  const std::map<std::string, size_t>& bytes_by_tag() const {
    return bytes_by_tag_;
  }

  /// Forget all recorded traffic (log and counters).
  void Reset();

  const CostModel& cost_model() const { return cost_model_; }
  const NetworkOptions& options() const { return options_; }

 private:
  CostModel cost_model_;
  NetworkOptions options_;
  std::vector<Message> messages_;
  std::map<std::string, size_t> bytes_by_tag_;
  size_t total_messages_ = 0;
  size_t total_bytes_ = 0;
  double total_seconds_ = 0.0;
};

}  // namespace qens::sim

#endif  // QENS_SIM_NETWORK_H_
