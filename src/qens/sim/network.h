#ifndef QENS_SIM_NETWORK_H_
#define QENS_SIM_NETWORK_H_

/// \file network.h
/// Message accounting for the simulated edge network: every leader <->
/// participant exchange is recorded so experiments can report communication
/// volume and simulated transfer time (the paper's O(1)-communication claim
/// for the selection protocol is checked against these counters).

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "qens/sim/cost_model.h"

namespace qens::sim {

/// One recorded message.
struct Message {
  size_t from = 0;
  size_t to = 0;
  size_t bytes = 0;
  std::string tag;  ///< e.g. "profile", "model-down", "model-up".
};

/// Records traffic and accumulates simulated transfer time.
class Network {
 public:
  explicit Network(CostModel cost_model) : cost_model_(cost_model) {}

  /// Record a message and return its simulated transfer seconds.
  double Send(size_t from, size_t to, size_t bytes, std::string tag);

  size_t total_messages() const { return messages_.size(); }
  size_t total_bytes() const { return total_bytes_; }
  double total_transfer_seconds() const { return total_seconds_; }
  const std::vector<Message>& messages() const { return messages_; }

  /// Sum of bytes for messages with the given tag.
  size_t BytesWithTag(const std::string& tag) const;

  /// Forget all recorded traffic.
  void Reset();

  const CostModel& cost_model() const { return cost_model_; }

 private:
  CostModel cost_model_;
  std::vector<Message> messages_;
  size_t total_bytes_ = 0;
  double total_seconds_ = 0.0;
};

}  // namespace qens::sim

#endif  // QENS_SIM_NETWORK_H_
