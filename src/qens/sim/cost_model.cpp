#include "qens/sim/cost_model.h"

#include <cassert>

namespace qens::sim {

double CostModel::TrainingSeconds(size_t samples, size_t epochs,
                                  double capacity) const {
  assert(capacity > 0.0);
  const double work =
      static_cast<double>(samples) * static_cast<double>(epochs);
  return work / (capacity * options_.base_throughput);
}

double CostModel::TransferSeconds(size_t bytes) const {
  return options_.link_latency_s +
         static_cast<double>(bytes) / options_.bandwidth_bytes_per_s;
}

double CostModel::RoundTripSeconds(size_t bytes_out, size_t bytes_back) const {
  return TransferSeconds(bytes_out) + TransferSeconds(bytes_back);
}

}  // namespace qens::sim
