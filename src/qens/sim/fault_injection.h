#ifndef QENS_SIM_FAULT_INJECTION_H_
#define QENS_SIM_FAULT_INJECTION_H_

/// \file fault_injection.h
/// Seeded fault injection for the simulated edge environment.
///
/// Real edge deployments are unequal and unreliable: nodes crash, go
/// offline for a round, straggle behind their nominal capacity, and links
/// drop messages. The happy-path simulator hides all of that, so the
/// federation loop (and every bench built on it) never exercises its
/// failure handling. This module provides the missing substrate:
///
///   FaultPlan     — a per-node schedule (permanent crash round, straggler
///                   slowdown factor) drawn once from a single seed;
///   FaultInjector — a stateless oracle over a plan answering per-round
///                   questions: is node i up in round t? how slow is it?
///                   was this message transmission lost?
///
/// Every answer is a pure function of (seed, node, round[, link, attempt])
/// via chained Rng::Fork, so two injectors built from the same options
/// agree on the entire schedule regardless of query order — a failure
/// scenario is reproducible from its seed alone.

#include <cstdint>
#include <string>
#include <vector>

#include "qens/common/status.h"

namespace qens::sim {

/// Fault-schedule knobs; all rates are probabilities in [0, 1]. The
/// defaults describe a fault-free environment.
struct FaultPlanOptions {
  uint64_t seed = 0;
  /// Probability that a node permanently crashes at some round drawn
  /// uniformly from [0, crash_horizon).
  double crash_rate = 0.0;
  /// Rounds over which crash times are spread.
  size_t crash_horizon = 20;
  /// Per-node per-round probability of a transient dropout (offline for
  /// that round only).
  double dropout_rate = 0.0;
  /// Probability that a node is a persistent straggler.
  double straggler_rate = 0.0;
  /// Straggler training-time multiplier range (>= 1).
  double straggler_slowdown_min = 2.0;
  double straggler_slowdown_max = 8.0;
  /// Per-transmission probability that a message is lost in flight.
  double message_loss_rate = 0.0;
};

/// One node's precomputed fate under a plan.
struct NodeFaultProfile {
  bool crashes = false;
  size_t crash_round = 0;  ///< Meaningful only when `crashes`.
  bool straggler = false;
  double slowdown = 1.0;   ///< >= 1; 1.0 for non-stragglers.
};

/// The per-node schedule drawn from one seed. Transient events (dropout,
/// message loss) are not materialized here — they are pure functions the
/// injector evaluates on demand.
class FaultPlan {
 public:
  /// Validate options and draw the per-node profiles. Fails on rates
  /// outside [0, 1], a slowdown range below 1, or an inverted range.
  static Result<FaultPlan> Create(size_t num_nodes,
                                  const FaultPlanOptions& options);

  size_t num_nodes() const { return profiles_.size(); }
  const FaultPlanOptions& options() const { return options_; }
  const NodeFaultProfile& node(size_t i) const { return profiles_[i]; }
  const std::vector<NodeFaultProfile>& profiles() const { return profiles_; }

  /// Human-readable schedule summary ("node 3: crash@r5; node 7: 4.2x
  /// straggler; ...") for logging and scenario reproduction.
  std::string Describe() const;

 private:
  FaultPlan(std::vector<NodeFaultProfile> profiles, FaultPlanOptions options)
      : profiles_(std::move(profiles)), options_(options) {}

  std::vector<NodeFaultProfile> profiles_;
  FaultPlanOptions options_;
};

/// Stateless oracle over a FaultPlan. All methods are const and
/// deterministic: equal plans give equal answers in any call order.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

  const FaultPlan& plan() const { return plan_; }

  /// Node crashed at or before `round` (crashes are permanent).
  bool IsCrashed(size_t node, size_t round) const;

  /// Node is transiently offline for exactly this round.
  bool IsDroppedOut(size_t node, size_t round) const;

  /// Up and reachable this round: neither crashed nor dropped out.
  bool IsAvailable(size_t node, size_t round) const;

  /// Training-time multiplier for this node in this round (>= 1).
  double SlowdownFactor(size_t node, size_t round) const;

  /// The `attempt`-th transmission of a message over (from -> to) in
  /// `round` is lost in flight.
  bool LoseMessage(size_t from, size_t to, size_t round,
                   size_t attempt) const;

 private:
  FaultPlan plan_;
};

}  // namespace qens::sim

#endif  // QENS_SIM_FAULT_INJECTION_H_
