#ifndef QENS_SIM_FAULT_INJECTION_H_
#define QENS_SIM_FAULT_INJECTION_H_

/// \file fault_injection.h
/// Seeded fault injection for the simulated edge environment.
///
/// Real edge deployments are unequal and unreliable: nodes crash, go
/// offline for a round, straggle behind their nominal capacity, and links
/// drop messages. The happy-path simulator hides all of that, so the
/// federation loop (and every bench built on it) never exercises its
/// failure handling. This module provides the missing substrate:
///
///   FaultPlan     — a per-node schedule (permanent crash round, straggler
///                   slowdown factor) drawn once from a single seed;
///   FaultInjector — a stateless oracle over a plan answering per-round
///                   questions: is node i up in round t? how slow is it?
///                   was this message transmission lost?
///
/// Every answer is a pure function of (seed, node, round[, link, attempt])
/// via chained Rng::Fork, so two injectors built from the same options
/// agree on the entire schedule regardless of query order — a failure
/// scenario is reproducible from its seed alone.

#include <cstdint>
#include <string>
#include <vector>

#include "qens/common/status.h"

namespace qens::sim {

/// Byzantine corruption modes a misbehaving node can apply. All but
/// kLabelFlipPoisoning corrupt the *returned model parameters* after local
/// training; label poisoning corrupts the participant's local training
/// targets before training (the model itself trains honestly on bad data).
enum class CorruptionKind {
  kNone = 0,            ///< Honest behaviour.
  kNanUpdate,           ///< Every returned parameter is NaN.
  kInfUpdate,           ///< Every returned parameter is +Inf.
  kScaledUpdate,        ///< Returned update (w_i - w) scaled by gamma.
  kSignFlip,            ///< Returned parameters negated.
  kLabelFlipPoisoning,  ///< Local training labels mirrored in-range.
};

/// Stable wire name ("none", "nan", "inf", "scale", "sign_flip",
/// "label_flip").
const char* CorruptionKindName(CorruptionKind kind);

/// Inverse of CorruptionKindName; InvalidArgument on an unknown name.
Result<CorruptionKind> ParseCorruptionKind(const std::string& name);

/// Parse a comma-separated list of corruption kind names ("nan,sign_flip").
/// Empty input yields an empty list.
Result<std::vector<CorruptionKind>> ParseCorruptionKinds(
    const std::string& csv);

/// Fault-schedule knobs; all rates are probabilities in [0, 1]. The
/// defaults describe a fault-free environment.
struct FaultPlanOptions {
  uint64_t seed = 0;
  /// Probability that a node permanently crashes at some round drawn
  /// uniformly from [0, crash_horizon).
  double crash_rate = 0.0;
  /// Rounds over which crash times are spread.
  size_t crash_horizon = 20;
  /// Per-node per-round probability of a transient dropout (offline for
  /// that round only).
  double dropout_rate = 0.0;
  /// Probability that a node is a persistent straggler.
  double straggler_rate = 0.0;
  /// Straggler training-time multiplier range (>= 1).
  double straggler_slowdown_min = 2.0;
  double straggler_slowdown_max = 8.0;
  /// Per-transmission probability that a message is lost in flight.
  double message_loss_rate = 0.0;
  /// Probability that a node is Byzantine (a persistent attacker). Each
  /// attacker is assigned one corruption mode drawn uniformly from
  /// `corruption_kinds` at plan time.
  double corruption_rate = 0.0;
  /// Attack modes to mix across attackers. Must be non-empty and must not
  /// contain kNone when corruption_rate > 0.
  std::vector<CorruptionKind> corruption_kinds;
  /// Per-node per-round probability that an attacker actually corrupts
  /// that round (1 = attacks every round it participates in).
  double corruption_active_rate = 1.0;
  /// Multiplier applied to the update by kScaledUpdate attackers.
  double corruption_gamma = 10.0;
};

/// One node's precomputed fate under a plan.
struct NodeFaultProfile {
  bool crashes = false;
  size_t crash_round = 0;  ///< Meaningful only when `crashes`.
  bool straggler = false;
  double slowdown = 1.0;   ///< >= 1; 1.0 for non-stragglers.
  bool byzantine = false;
  CorruptionKind corruption = CorruptionKind::kNone;  ///< When `byzantine`.
};

/// The per-node schedule drawn from one seed. Transient events (dropout,
/// message loss) are not materialized here — they are pure functions the
/// injector evaluates on demand.
class FaultPlan {
 public:
  /// Validate options and draw the per-node profiles. Fails on rates
  /// outside [0, 1], a slowdown range below 1, or an inverted range.
  static Result<FaultPlan> Create(size_t num_nodes,
                                  const FaultPlanOptions& options);

  size_t num_nodes() const { return profiles_.size(); }
  const FaultPlanOptions& options() const { return options_; }
  const NodeFaultProfile& node(size_t i) const { return profiles_[i]; }
  const std::vector<NodeFaultProfile>& profiles() const { return profiles_; }

  /// Human-readable schedule summary ("node 3: crash@r5; node 7: 4.2x
  /// straggler; ...") for logging and scenario reproduction.
  std::string Describe() const;

 private:
  FaultPlan(std::vector<NodeFaultProfile> profiles, FaultPlanOptions options)
      : profiles_(std::move(profiles)), options_(options) {}

  std::vector<NodeFaultProfile> profiles_;
  FaultPlanOptions options_;
};

/// Stateless oracle over a FaultPlan. All methods are const and
/// deterministic: equal plans give equal answers in any call order.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

  const FaultPlan& plan() const { return plan_; }

  /// Node crashed at or before `round` (crashes are permanent).
  bool IsCrashed(size_t node, size_t round) const;

  /// Node is transiently offline for exactly this round.
  bool IsDroppedOut(size_t node, size_t round) const;

  /// Up and reachable this round: neither crashed nor dropped out.
  bool IsAvailable(size_t node, size_t round) const;

  /// Training-time multiplier for this node in this round (>= 1).
  double SlowdownFactor(size_t node, size_t round) const;

  /// The `attempt`-th transmission of a message over (from -> to) in
  /// `round` is lost in flight.
  bool LoseMessage(size_t from, size_t to, size_t round,
                   size_t attempt) const;

  /// The corruption this node applies in this round: kNone for honest
  /// nodes and for rounds where the attacker lies dormant
  /// (corruption_active_rate < 1).
  CorruptionKind CorruptionFor(size_t node, size_t round) const;

 private:
  FaultPlan plan_;
};

}  // namespace qens::sim

#endif  // QENS_SIM_FAULT_INJECTION_H_
