#include "qens/sim/churn.h"

#include <algorithm>

#include "qens/common/rng.h"
#include "qens/common/string_util.h"

namespace qens::sim {
namespace {

// Fork stream for the churner draw + interval lengths; chained
// Fork(stream) -> Fork(node) like the fault-plan draws, so the schedule is
// a pure function of (seed, node).
constexpr uint64_t kChurnStream = 0xc502;

}  // namespace

Result<ChurnPlan> ChurnPlan::Create(size_t num_nodes,
                                    const ChurnPlanOptions& options) {
  if (options.churn_rate < 0.0 || options.churn_rate > 1.0) {
    return Status::InvalidArgument(
        StrFormat("churn plan: churn_rate must be in [0, 1], got %g",
                  options.churn_rate));
  }
  std::vector<NodeChurnProfile> profiles(num_nodes);
  if (options.churn_rate > 0.0) {
    if (options.churn_horizon == 0) {
      return Status::InvalidArgument(
          "churn plan: churn_horizon must be > 0 when churn_rate > 0");
    }
    if (options.min_down_rounds < 1 ||
        options.max_down_rounds < options.min_down_rounds) {
      return Status::InvalidArgument(
          "churn plan: down-interval range must satisfy 1 <= min <= max");
    }
    if (options.min_up_rounds < 1 ||
        options.max_up_rounds < options.min_up_rounds) {
      return Status::InvalidArgument(
          "churn plan: up-interval range must satisfy 1 <= min <= max");
    }
    const Rng base(options.seed);
    for (size_t i = 0; i < num_nodes; ++i) {
      Rng rng = base.Fork(kChurnStream).Fork(i);
      if (!rng.Bernoulli(options.churn_rate)) continue;
      NodeChurnProfile& p = profiles[i];
      p.churner = true;
      // Alternate up/down intervals from round 0 (starting present) out to
      // the horizon; the node keeps its final state past the horizon.
      size_t cursor = 0;
      bool up = true;
      while (cursor < options.churn_horizon) {
        const size_t len =
            up ? static_cast<size_t>(rng.UniformInt(
                     static_cast<int64_t>(options.min_up_rounds),
                     static_cast<int64_t>(options.max_up_rounds)))
               : static_cast<size_t>(rng.UniformInt(
                     static_cast<int64_t>(options.min_down_rounds),
                     static_cast<int64_t>(options.max_down_rounds)));
        cursor += len;
        up = !up;
        if (cursor >= options.churn_horizon) break;
        p.transitions.push_back(cursor);
      }
    }
  }
  return ChurnPlan(std::move(profiles), options);
}

bool ChurnPlan::IsPresent(size_t node, size_t round) const {
  const NodeChurnProfile& p = profiles_[node];
  if (!p.churner || p.transitions.empty()) return true;
  // Present iff an even number of flips happened at or before `round`.
  const size_t flips = static_cast<size_t>(
      std::upper_bound(p.transitions.begin(), p.transitions.end(), round) -
      p.transitions.begin());
  return (flips % 2) == 0;
}

size_t ChurnPlan::NumChurners() const {
  size_t n = 0;
  for (const NodeChurnProfile& p : profiles_) {
    if (p.churner) ++n;
  }
  return n;
}

std::string ChurnPlan::Describe() const {
  std::string out = StrFormat("churn plan (seed %llu, %zu nodes):",
                              static_cast<unsigned long long>(options_.seed),
                              profiles_.size());
  bool any = false;
  for (size_t i = 0; i < profiles_.size(); ++i) {
    const NodeChurnProfile& p = profiles_[i];
    if (!p.churner || p.transitions.empty()) continue;
    any = true;
    out += StrFormat(" node %zu: down@", i);
    for (size_t t = 0; t < p.transitions.size(); t += 2) {
      if (t > 0) out.push_back(',');
      if (t + 1 < p.transitions.size()) {
        out += StrFormat("[r%zu,r%zu)", p.transitions[t],
                         p.transitions[t + 1]);
      } else {
        out += StrFormat("[r%zu,horizon)", p.transitions[t]);
      }
    }
    out.push_back(';');
  }
  if (!any) out += " no churners;";
  out += StrFormat(" churn %.0f%%, horizon %zu rounds",
                   options_.churn_rate * 100.0, options_.churn_horizon);
  return out;
}

}  // namespace qens::sim
