#include "qens/sim/edge_node.h"

#include "qens/common/string_util.h"

namespace qens::sim {

EdgeNode::EdgeNode(size_t id, std::string name, data::Dataset local_data,
                   double capacity)
    : id_(id),
      name_(std::move(name)),
      data_(std::move(local_data)),
      capacity_(capacity) {}

Status EdgeNode::Quantize(const clustering::KMeansOptions& options) {
  QENS_ASSIGN_OR_RETURN(quantized_state_,
                        selection::QuantizeNode(id_, name_, data_, options));
  quantized_ = true;
  return Status::OK();
}

Status EdgeNode::ReplaceLocalData(data::Dataset data) {
  if (data.NumSamples() != data_.NumSamples() ||
      data.NumFeatures() != data_.NumFeatures()) {
    return Status::InvalidArgument(StrFormat(
        "node %zu: ReplaceLocalData shape mismatch (%zux%zu -> %zux%zu)",
        id_, data_.NumSamples(), data_.NumFeatures(), data.NumSamples(),
        data.NumFeatures()));
  }
  data_ = std::move(data);
  return Status::OK();
}

Result<const selection::NodeProfile*> EdgeNode::profile() const {
  if (!quantized_) {
    return Status::FailedPrecondition(
        StrFormat("node %zu: profile() before Quantize()", id_));
  }
  return &quantized_state_.profile;
}

Result<data::Dataset> EdgeNode::ClusterData(size_t cluster_id) const {
  if (!quantized_) {
    return Status::FailedPrecondition(
        StrFormat("node %zu: ClusterData() before Quantize()", id_));
  }
  if (cluster_id >= quantized_state_.profile.clusters.size()) {
    return Status::OutOfRange(
        StrFormat("node %zu: cluster %zu out of range", id_, cluster_id));
  }
  const std::vector<size_t> rows =
      quantized_state_.RowsOfCluster(cluster_id);
  if (rows.empty()) {
    return Status::NotFound(
        StrFormat("node %zu: cluster %zu is empty", id_, cluster_id));
  }
  return data_.SelectRows(rows);
}

Result<data::Dataset> EdgeNode::ClustersData(
    const std::vector<size_t>& cluster_ids) const {
  if (!quantized_) {
    return Status::FailedPrecondition(
        StrFormat("node %zu: ClustersData() before Quantize()", id_));
  }
  const std::vector<size_t> rows =
      quantized_state_.RowsOfClusters(cluster_ids);
  if (rows.empty()) {
    return Status::NotFound(
        StrFormat("node %zu: no rows in requested clusters", id_));
  }
  return data_.SelectRows(rows);
}

}  // namespace qens::sim
