#ifndef QENS_COMMON_LOGGING_H_
#define QENS_COMMON_LOGGING_H_

/// \file logging.h
/// Minimal leveled logger used across the library and the experiment
/// harnesses. Output goes to stderr; the global threshold is process-wide.

#include <sstream>
#include <string>

namespace qens {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

/// Process-wide logging controls.
class Logging {
 public:
  /// Set the minimum level that will be emitted (default: kInfo).
  static void SetLevel(LogLevel level);
  static LogLevel GetLevel();

  /// Emit one line at `level` (no-op when below the threshold).
  static void Emit(LogLevel level, const std::string& message);

  /// Name of the level ("DEBUG", "INFO", ...).
  static const char* LevelName(LogLevel level);
};

namespace internal {

/// Stream-style log statement builder; emits on destruction.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { Logging::Emit(level_, stream_.str()); }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace qens

#define QENS_LOG(level) \
  ::qens::internal::LogMessage(::qens::LogLevel::k##level)

#endif  // QENS_COMMON_LOGGING_H_
