#ifndef QENS_COMMON_THREAD_POOL_H_
#define QENS_COMMON_THREAD_POOL_H_

/// \file thread_pool.h
/// Fixed-size reusable worker pool — the one concurrency primitive under the
/// parallel hot paths (federated local training, the k-means assignment
/// step, bench harnesses).
///
/// Determinism contract: the pool itself never reorders *results*. Submit
/// returns a future per task; callers that collect futures in submission
/// (index) order observe outputs independent of scheduling, so a pool of 1
/// worker, a pool of N workers, and a plain sequential loop all produce the
/// same result sequence. Every parallel call site in qens follows this
/// index-ordered collection rule — see docs/PERFORMANCE.md.
///
/// Compared to per-task std::async spawning (the pre-pool federation path),
/// the pool bounds concurrency at a fixed worker count, reuses threads
/// across rounds, and queues oversubscribed work instead of oversubscribing
/// the machine.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace qens::common {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1). Workers live until the
  /// pool is destroyed; the destructor drains the queue and joins.
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueue a callable; returns the future of its result. Tasks start in
  /// FIFO order (completion order depends on scheduling — collect futures in
  /// submission order for deterministic output).
  template <typename F>
  std::future<std::invoke_result_t<F&>> Submit(F fn) {
    using R = std::invoke_result_t<F&>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::move(fn));
    std::future<R> future = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.emplace_back([task]() { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

  /// Run `fn(chunk_index, begin, end)` over [0, n) split into contiguous
  /// chunks of `chunk_rows` (the last chunk may be short) and block until
  /// every chunk has finished. Chunk boundaries depend only on n and
  /// chunk_rows — never on the worker count — so any per-chunk partial
  /// results reduced in ascending chunk index are bit-identical across
  /// thread counts.
  void ParallelChunks(size_t n, size_t chunk_rows,
                      const std::function<void(size_t, size_t, size_t)>& fn);

  /// Worker count to use when the caller passes 0: the hardware thread
  /// count, falling back to 1 when unknown.
  static size_t DefaultThreadCount();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace qens::common

#endif  // QENS_COMMON_THREAD_POOL_H_
