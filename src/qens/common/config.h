#ifndef QENS_COMMON_CONFIG_H_
#define QENS_COMMON_CONFIG_H_

/// \file config.h
/// Minimal INI-style configuration: `key = value` lines, optional
/// `[section]` headers (flattened into "section.key"), '#' or ';' comments.
/// Used by the experiment CLI to configure environments without
/// recompiling. Typed getters return defaults when a key is absent and a
/// Status error when a present value fails to parse.

#include <map>
#include <string>
#include <vector>

#include "qens/common/status.h"

namespace qens {

/// Parsed configuration: flat "section.key" -> string value map.
class Config {
 public:
  Config() = default;

  /// Parse from text. Later duplicate keys override earlier ones. Fails on
  /// malformed lines (no '=' outside a section header).
  static Result<Config> Parse(const std::string& text);

  /// Read and parse a file.
  static Result<Config> Load(const std::string& path);

  bool Has(const std::string& key) const;
  size_t size() const { return values_.size(); }

  /// Raw string access; NotFound when absent.
  Result<std::string> GetString(const std::string& key) const;
  std::string GetString(const std::string& key,
                        const std::string& fallback) const;

  /// Typed access with defaults. A present-but-unparseable value is an
  /// error (surfaced as InvalidArgument), never silently defaulted.
  Result<int64_t> GetInt(const std::string& key, int64_t fallback) const;
  Result<double> GetDouble(const std::string& key, double fallback) const;
  /// Accepts true/false, yes/no, on/off, 1/0 (case-insensitive).
  Result<bool> GetBool(const std::string& key, bool fallback) const;

  /// Set/override a value programmatically.
  void Set(const std::string& key, std::string value);

  /// All keys, sorted (for diagnostics).
  std::vector<std::string> Keys() const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace qens

#endif  // QENS_COMMON_CONFIG_H_
