#include "qens/common/stopwatch.h"

// Header-only; this translation unit exists so the target has a symbol for
// every listed source and to keep one-source-per-header symmetry.
