#include "qens/common/config.h"

#include <fstream>
#include <sstream>

#include "qens/common/string_util.h"

namespace qens {

Result<Config> Config::Parse(const std::string& text) {
  Config config;
  std::istringstream in(text);
  std::string line;
  std::string section;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string t = Trim(line);
    // Strip comments ('#' or ';' to end of line).
    for (char marker : {'#', ';'}) {
      const size_t pos = t.find(marker);
      if (pos != std::string::npos) t = Trim(t.substr(0, pos));
    }
    if (t.empty()) continue;
    if (t.front() == '[') {
      if (t.back() != ']' || t.size() < 3) {
        return Status::InvalidArgument(
            StrFormat("config line %zu: malformed section header", line_no));
      }
      section = Trim(t.substr(1, t.size() - 2));
      if (section.empty()) {
        return Status::InvalidArgument(
            StrFormat("config line %zu: empty section name", line_no));
      }
      continue;
    }
    const size_t eq = t.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument(
          StrFormat("config line %zu: expected 'key = value'", line_no));
    }
    std::string key = Trim(t.substr(0, eq));
    const std::string value = Trim(t.substr(eq + 1));
    if (key.empty()) {
      return Status::InvalidArgument(
          StrFormat("config line %zu: empty key", line_no));
    }
    if (!section.empty()) key = section + "." + key;
    config.values_[key] = value;
  }
  return config;
}

Result<Config> Config::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("config: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return Parse(buf.str());
}

bool Config::Has(const std::string& key) const {
  return values_.count(key) > 0;
}

Result<std::string> Config::GetString(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) {
    return Status::NotFound("config: no key '" + key + "'");
  }
  return it->second;
}

std::string Config::GetString(const std::string& key,
                              const std::string& fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

Result<int64_t> Config::GetInt(const std::string& key,
                               int64_t fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  Result<int64_t> parsed = ParseInt(it->second);
  if (!parsed.ok()) {
    return Status::InvalidArgument("config: key '" + key +
                                   "' is not an int: '" + it->second + "'");
  }
  return parsed;
}

Result<double> Config::GetDouble(const std::string& key,
                                 double fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  Result<double> parsed = ParseDouble(it->second);
  if (!parsed.ok()) {
    return Status::InvalidArgument("config: key '" + key +
                                   "' is not a double: '" + it->second + "'");
  }
  return parsed;
}

Result<bool> Config::GetBool(const std::string& key, bool fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string v = ToLower(it->second);
  if (v == "true" || v == "yes" || v == "on" || v == "1") return true;
  if (v == "false" || v == "no" || v == "off" || v == "0") return false;
  return Status::InvalidArgument("config: key '" + key +
                                 "' is not a bool: '" + it->second + "'");
}

void Config::Set(const std::string& key, std::string value) {
  values_[key] = std::move(value);
}

std::vector<std::string> Config::Keys() const {
  std::vector<std::string> keys;
  keys.reserve(values_.size());
  for (const auto& [key, value] : values_) keys.push_back(key);
  return keys;
}

}  // namespace qens
