#ifndef QENS_COMMON_STATUS_H_
#define QENS_COMMON_STATUS_H_

/// \file status.h
/// Error handling primitives for the qens library.
///
/// Following the RocksDB/Arrow convention, no exceptions cross library
/// boundaries: fallible operations return `Status` (or `Result<T>` for
/// value-producing operations). A default-constructed `Status` is OK.

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace qens {

/// Machine-inspectable category of a failure.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kIOError,
  kNotImplemented,
  kInternal,
};

/// Human-readable name of a status code (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// Outcome of a fallible operation: a code plus an optional message.
///
/// Construction is via the named factories (`Status::OK()`,
/// `Status::InvalidArgument(...)`, ...). `Status` is cheap to copy for the
/// OK case and carries its message by value otherwise.
class Status {
 public:
  /// Default construction yields OK.
  Status() : code_(StatusCode::kOk) {}

  /// \name Named constructors
  /// @{
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  /// @}

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const { return code_ == StatusCode::kInvalidArgument; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsNotImplemented() const { return code_ == StatusCode::kNotImplemented; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }
  bool operator!=(const Status& other) const { return !(*this == other); }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// A value or a non-OK Status. The library analog of `absl::StatusOr<T>`.
///
/// Accessing the value of an errored Result is a programming error and
/// asserts in debug builds.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : payload_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK status (failure).
  Result(Status status) : payload_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(payload_).ok() &&
           "Result constructed from OK status without a value");
  }

  bool ok() const { return std::holds_alternative<T>(payload_); }

  /// Status of the operation; OK when a value is held.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(payload_);
  }

  const T& value() const& {
    assert(ok() && "value() called on errored Result");
    return std::get<T>(payload_);
  }
  T& value() & {
    assert(ok() && "value() called on errored Result");
    return std::get<T>(payload_);
  }
  T&& value() && {
    assert(ok() && "value() called on errored Result");
    return std::get<T>(std::move(payload_));
  }

  /// Value if ok, otherwise `fallback`.
  T value_or(T fallback) const {
    return ok() ? std::get<T>(payload_) : std::move(fallback);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> payload_;
};

/// Propagate a non-OK Status from a fallible expression.
#define QENS_RETURN_NOT_OK(expr)            \
  do {                                      \
    ::qens::Status _st = (expr);            \
    if (!_st.ok()) return _st;              \
  } while (false)

/// Assign a Result's value to `lhs`, or propagate its error Status.
#define QENS_ASSIGN_OR_RETURN(lhs, rexpr)   \
  auto QENS_CONCAT_(_res, __LINE__) = (rexpr);            \
  if (!QENS_CONCAT_(_res, __LINE__).ok())                 \
    return QENS_CONCAT_(_res, __LINE__).status();         \
  lhs = std::move(QENS_CONCAT_(_res, __LINE__)).value()

#define QENS_CONCAT_IMPL_(a, b) a##b
#define QENS_CONCAT_(a, b) QENS_CONCAT_IMPL_(a, b)

}  // namespace qens

#endif  // QENS_COMMON_STATUS_H_
