#include "qens/common/string_util.h"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace qens {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

Result<double> ParseDouble(std::string_view s) {
  std::string t = Trim(s);
  if (t.empty()) return Status::InvalidArgument("empty string is not a double");
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(t.c_str(), &end);
  if (errno == ERANGE) {
    return Status::OutOfRange("double out of range: '" + t + "'");
  }
  if (end == t.c_str() || *end != '\0') {
    return Status::InvalidArgument("not a double: '" + t + "'");
  }
  return v;
}

Result<int64_t> ParseInt(std::string_view s) {
  std::string t = Trim(s);
  if (t.empty()) return Status::InvalidArgument("empty string is not an int");
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(t.c_str(), &end, 10);
  if (errno == ERANGE) {
    return Status::OutOfRange("int out of range: '" + t + "'");
  }
  if (end == t.c_str() || *end != '\0') {
    return Status::InvalidArgument("not an int: '" + t + "'");
  }
  return static_cast<int64_t>(v);
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

}  // namespace qens
