#ifndef QENS_COMMON_STRING_UTIL_H_
#define QENS_COMMON_STRING_UTIL_H_

/// \file string_util.h
/// Small string helpers shared by the CSV codec, config parsing, and the
/// experiment report printers.

#include <string>
#include <string_view>
#include <vector>

#include "qens/common/status.h"

namespace qens {

/// Split `s` on `delim`; empty fields are preserved ("a,,b" -> 3 fields).
std::vector<std::string> Split(std::string_view s, char delim);

/// Copy of `s` without leading/trailing ASCII whitespace.
std::string Trim(std::string_view s);

/// Join `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// True if `s` ends with `suffix`.
bool EndsWith(std::string_view s, std::string_view suffix);

/// Lower-cased ASCII copy.
std::string ToLower(std::string_view s);

/// Strict double parse: the whole trimmed token must be consumed.
Result<double> ParseDouble(std::string_view s);

/// Strict int64 parse: the whole trimmed token must be consumed.
Result<int64_t> ParseInt(std::string_view s);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace qens

#endif  // QENS_COMMON_STRING_UTIL_H_
