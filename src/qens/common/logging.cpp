#include "qens/common/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace qens {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_emit_mutex;

}  // namespace

void Logging::SetLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel Logging::GetLevel() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

const char* Logging::LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

void Logging::Emit(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fprintf(stderr, "[qens %s] %s\n", LevelName(level), message.c_str());
}

}  // namespace qens
