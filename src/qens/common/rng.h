#ifndef QENS_COMMON_RNG_H_
#define QENS_COMMON_RNG_H_

/// \file rng.h
/// Deterministic random number generation.
///
/// Every stochastic component in qens (k-means initialization, data
/// generation, query workload, random node selection, weight initialization)
/// takes an explicit seed so that experiments are bit-reproducible. `Rng`
/// wraps a SplitMix64 core (small state, excellent statistical quality for
/// non-cryptographic use) with the distributions the library needs.

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace qens {

/// Deterministic pseudo-random generator with convenience distributions.
///
/// Satisfies the essentials of UniformRandomBitGenerator so it can also be
/// handed to `std::shuffle`-like algorithms.
class Rng {
 public:
  using result_type = uint64_t;

  /// Construct with an explicit seed; equal seeds yield equal streams.
  explicit Rng(uint64_t seed) : state_(seed + kGolden) {}

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  /// Next raw 64-bit output (SplitMix64).
  uint64_t Next();
  result_type operator()() { return Next(); }

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal via Box–Muller (cached second value).
  double Gaussian();

  /// Normal with given mean and standard deviation (stddev >= 0).
  double Gaussian(double mean, double stddev);

  /// Bernoulli draw with success probability p in [0, 1].
  bool Bernoulli(double p);

  /// Exponential with rate lambda > 0.
  double Exponential(double lambda);

  /// In-place Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformInt(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// k distinct indices drawn uniformly from [0, n). Requires k <= n.
  /// The result order is random.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Draw an index in [0, weights.size()) proportionally to non-negative
  /// weights. If all weights are zero, draws uniformly.
  size_t WeightedIndex(const std::vector<double>& weights);

  /// Derive an independent child generator (stable function of this
  /// generator's seed and `stream`); does not advance this generator.
  Rng Fork(uint64_t stream) const;

 private:
  static constexpr uint64_t kGolden = 0x9e3779b97f4a7c15ull;

  uint64_t state_;
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace qens

#endif  // QENS_COMMON_RNG_H_
