#include "qens/common/thread_pool.h"

#include <algorithm>

namespace qens::common {

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = std::max<size_t>(1, num_threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this]() { return stop_ || !queue_.empty(); });
      // Drain remaining tasks even when stopping, so futures handed out
      // before destruction always become ready.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelChunks(
    size_t n, size_t chunk_rows,
    const std::function<void(size_t, size_t, size_t)>& fn) {
  if (n == 0) return;
  chunk_rows = std::max<size_t>(1, chunk_rows);
  std::vector<std::future<void>> futures;
  futures.reserve((n + chunk_rows - 1) / chunk_rows);
  size_t chunk = 0;
  for (size_t begin = 0; begin < n; begin += chunk_rows, ++chunk) {
    const size_t end = std::min(begin + chunk_rows, n);
    const size_t c = chunk;
    futures.push_back(Submit([&fn, c, begin, end]() { fn(c, begin, end); }));
  }
  for (std::future<void>& future : futures) future.get();
}

size_t ThreadPool::DefaultThreadCount() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

}  // namespace qens::common
