#include "qens/common/rng.h"

#include <cassert>
#include <cmath>
#include <numbers>

#include "qens/common/logging.h"

namespace qens {

uint64_t Rng::Next() {
  state_ += kGolden;
  uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

double Rng::Uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  assert(lo <= hi);
  return lo + (hi - lo) * Uniform();
}

uint64_t Rng::UniformInt(uint64_t n) {
  assert(n > 0);
  // Rejection sampling to remove modulo bias.
  const uint64_t limit = max() - max() % n;
  uint64_t x;
  do {
    x = Next();
  } while (x >= limit);
  return x % n;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(UniformInt(span));
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box–Muller; u1 in (0,1] to avoid log(0).
  double u1 = 1.0 - Uniform();
  double u2 = Uniform();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * std::numbers::pi * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::Gaussian(double mean, double stddev) {
  assert(stddev >= 0.0);
  return mean + stddev * Gaussian();
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

double Rng::Exponential(double lambda) {
  assert(lambda > 0.0);
  return -std::log(1.0 - Uniform()) / lambda;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  assert(k <= n);
  // Partial Fisher–Yates over an index vector; O(n) memory, O(n + k) time.
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = i;
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + static_cast<size_t>(UniformInt(n - i));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  assert(!weights.empty());
  // Negative or NaN weights are clamped to zero rather than asserted:
  // `assert` compiles out in Release, where a negative weight would skew the
  // prefix-sum walk (and NaN would poison `total`) silently. Valid inputs
  // take exactly the same draws as before.
  bool clamped = false;
  double total = 0.0;
  for (double w : weights) {
    if (w > 0.0) {
      total += w;
    } else if (w < 0.0 || std::isnan(w)) {
      clamped = true;
    }
  }
  if (clamped) {
    QENS_LOG(Warning) << "Rng::WeightedIndex: negative or NaN weights "
                         "clamped to 0";
  }
  if (total <= 0.0) return static_cast<size_t>(UniformInt(weights.size()));
  double target = Uniform() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i];
    if (w > 0.0) acc += w;
    if (target < acc) return i;
  }
  return weights.size() - 1;  // Numerical edge: target ~= total.
}

Rng Rng::Fork(uint64_t stream) const {
  // Mix the *current* state with the stream id through one SplitMix step so
  // forks are decorrelated from the parent and from each other.
  uint64_t z = state_ ^ (stream * 0xda942042e4dd58b5ull + kGolden);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return Rng(z ^ (z >> 31));
}

}  // namespace qens
