#ifndef QENS_COMMON_STOPWATCH_H_
#define QENS_COMMON_STOPWATCH_H_

/// \file stopwatch.h
/// Wall-clock timing for the experiment harnesses (Fig. 8 measures model
/// building time with and without the query-driven mechanism).

#include <chrono>

namespace qens {

/// Monotonic wall-clock stopwatch. Starts running on construction.
class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  /// Reset the origin to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction/Restart.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction/Restart.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace qens

#endif  // QENS_COMMON_STOPWATCH_H_
