#ifndef QENS_TENSOR_MATRIX_H_
#define QENS_TENSOR_MATRIX_H_

/// \file matrix.h
/// Dense row-major double matrix — the numeric workhorse under the ML and
/// clustering subsystems. Deliberately minimal: shapes are validated with
/// Status on the fallible paths, and the hot paths (GEMM, axpy) are raw
/// pointer loops arranged for cache-friendly traversal, with fused
/// transposed-operand kernels and *Into variants that write caller-owned
/// scratch so steady-state training never touches the allocator.
///
/// Determinism: every kernel accumulates each output element in the same
/// operand order as its naive counterpart (ascending inner index), so the
/// fused and scratch variants are bit-identical to the compositions they
/// replace.

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "qens/common/status.h"

namespace qens {

/// Dense row-major matrix of doubles.
///
/// Rows index samples, columns index features throughout the library.
/// A 0x0 matrix is a valid empty value.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() : rows_(0), cols_(0) {}

  /// rows x cols matrix, zero-initialized.
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// rows x cols matrix filled with `fill`.
  Matrix(size_t rows, size_t cols, double fill)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Construct from nested initializer list; all rows must be equal length.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  /// Adopt a flat row-major buffer. Fails unless data.size() == rows*cols.
  static Result<Matrix> FromFlat(size_t rows, size_t cols,
                                 std::vector<double> data);

  /// Identity matrix of size n x n.
  static Matrix Identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  /// Unchecked element access (asserts in debug builds).
  double& At(size_t r, size_t c);
  double At(size_t r, size_t c) const;
  double& operator()(size_t r, size_t c) { return At(r, c); }
  double operator()(size_t r, size_t c) const { return At(r, c); }

  /// Raw row-major storage.
  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  /// Pointer to the start of row r.
  const double* RowPtr(size_t r) const { return data_.data() + r * cols_; }
  double* RowPtr(size_t r) { return data_.data() + r * cols_; }

  /// Copy of row r as a vector.
  std::vector<double> Row(size_t r) const;

  /// Copy of column c as a vector.
  std::vector<double> Col(size_t c) const;

  /// Resize to rows x cols, reusing the existing allocation when capacity
  /// allows. Element values are unspecified afterwards — callers overwrite.
  void ResizeUninitialized(size_t rows, size_t cols);

  /// Overwrite row r with `values` (size must equal cols()).
  Status SetRow(size_t r, const std::vector<double>& values);

  /// New matrix containing the given rows of this one, in order.
  /// Fails if any index is out of range.
  Result<Matrix> SelectRows(const std::vector<size_t>& indices) const;

  /// SelectRows into caller-owned scratch: `out` is resized (reusing its
  /// allocation) and overwritten. Hot-path variant — a training loop can
  /// slice every mini-batch of every epoch without touching the allocator.
  /// `out` must not alias this matrix.
  Status SelectRowsInto(const std::vector<size_t>& indices, Matrix* out) const;

  /// Transposed copy.
  Matrix Transposed() const;

  /// Matrix product this * rhs. Fails unless cols() == rhs.rows().
  Result<Matrix> MatMul(const Matrix& rhs) const;

  /// MatMul into caller-owned scratch (resized, reusing its allocation).
  /// `out` must alias neither operand.
  Status MatMulInto(const Matrix& rhs, Matrix* out) const;

  /// Fused dense forward kernel: out = this * rhs, then `bias` (length
  /// rhs.cols()) added to every output row while it is still cache-hot.
  /// Bit-identical to MatMul followed by AddRowBroadcast.
  Status MatMulAddBiasInto(const Matrix& rhs, const std::vector<double>& bias,
                           Matrix* out) const;

  /// Fused backward kernel: out = thisᵀ * rhs without materializing the
  /// transpose (this is (m x k), rhs is (m x n), out is (k x n)).
  /// Bit-identical to Transposed().MatMul(rhs).
  Status MatMulTransposedAInto(const Matrix& rhs, Matrix* out) const;
  Result<Matrix> MatMulTransposedA(const Matrix& rhs) const;

  /// Fused backward kernel: out = this * rhsᵀ without materializing the
  /// transpose (this is (m x k), rhs is (n x k), out is (m x n)).
  /// Bit-identical to MatMul(rhs.Transposed()).
  Status MatMulTransposedBInto(const Matrix& rhs, Matrix* out) const;
  Result<Matrix> MatMulTransposedB(const Matrix& rhs) const;

  /// this += alpha * rhs (elementwise). Fails on shape mismatch.
  Status Axpy(double alpha, const Matrix& rhs);

  /// Elementwise sum / difference / Hadamard product. Fail on shape mismatch.
  Result<Matrix> Add(const Matrix& rhs) const;
  Result<Matrix> Sub(const Matrix& rhs) const;
  Result<Matrix> Hadamard(const Matrix& rhs) const;

  /// In-place Hadamard product: this *= rhs elementwise, no allocation.
  Status HadamardInPlace(const Matrix& rhs);

  /// In-place multiply every element by s.
  void Scale(double s);

  /// Set every element to `value`.
  void Fill(double value);

  /// Add `row` (size cols()) to every row — broadcast bias addition.
  Status AddRowBroadcast(const std::vector<double>& row);

  /// Sum over rows: returns a length-cols() vector of column sums.
  std::vector<double> ColSums() const;

  /// Mean over rows: returns a length-cols() vector of column means.
  /// Returns zeros when the matrix has no rows.
  std::vector<double> ColMeans() const;

  /// Frobenius norm.
  double FrobeniusNorm() const;

  /// Elementwise maximum absolute difference; infinity on shape mismatch.
  double MaxAbsDiff(const Matrix& rhs) const;

  bool SameShape(const Matrix& rhs) const {
    return rows_ == rhs.rows_ && cols_ == rhs.cols_;
  }

  bool operator==(const Matrix& rhs) const {
    return SameShape(rhs) && data_ == rhs.data_;
  }

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

}  // namespace qens

#endif  // QENS_TENSOR_MATRIX_H_
