#ifndef QENS_TENSOR_STATS_H_
#define QENS_TENSOR_STATS_H_

/// \file stats.h
/// Descriptive statistics used by the experiment harnesses (average losses
/// across queries, Fig. 7) and by the data generator validation (per-site
/// regression slopes, Fig. 1–2).

#include <cstddef>
#include <vector>

#include "qens/common/status.h"

namespace qens::stats {

/// Running mean/variance accumulator (Welford's algorithm).
class RunningStats {
 public:
  /// Add one observation.
  void Add(double x);

  size_t count() const { return n_; }
  double mean() const { return mean_; }

  /// Population variance (0 when fewer than 1 sample).
  double variance() const;

  /// Sample variance with Bessel's correction (0 when fewer than 2 samples).
  double sample_variance() const;

  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

  /// Merge another accumulator into this one (parallel Welford merge).
  void Merge(const RunningStats& other);

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Pearson correlation coefficient; fails on size mismatch, fewer than two
/// points, or zero variance in either input.
Result<double> PearsonCorrelation(const std::vector<double>& x,
                                  const std::vector<double>& y);

/// Ordinary least squares fit y = slope * x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
};

/// Simple 1-D OLS; fails on size mismatch, <2 points, or constant x.
Result<LinearFit> FitLine(const std::vector<double>& x,
                          const std::vector<double>& y);

/// q-th quantile (linear interpolation, q in [0,1]); fails on empty input.
Result<double> Quantile(std::vector<double> values, double q);

}  // namespace qens::stats

#endif  // QENS_TENSOR_STATS_H_
