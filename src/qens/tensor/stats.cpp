#include "qens/tensor/stats.h"

#include <algorithm>
#include <cmath>

namespace qens::stats {

void RunningStats::Add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return n_ < 1 ? 0.0 : m2_ / static_cast<double>(n_);
}

double RunningStats::sample_variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::Merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const double n_total = static_cast<double>(n_ + other.n_);
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) / n_total;
  mean_ += delta * static_cast<double>(other.n_) / n_total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

Result<double> PearsonCorrelation(const std::vector<double>& x,
                                  const std::vector<double>& y) {
  if (x.size() != y.size()) {
    return Status::InvalidArgument("PearsonCorrelation: size mismatch");
  }
  if (x.size() < 2) {
    return Status::InvalidArgument("PearsonCorrelation: need >= 2 points");
  }
  const double n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    syy += y[i] * y[i];
    sxy += x[i] * y[i];
  }
  const double cov = sxy - sx * sy / n;
  const double vx = sxx - sx * sx / n;
  const double vy = syy - sy * sy / n;
  if (vx <= 0.0 || vy <= 0.0) {
    return Status::InvalidArgument("PearsonCorrelation: zero variance");
  }
  return cov / std::sqrt(vx * vy);
}

Result<LinearFit> FitLine(const std::vector<double>& x,
                          const std::vector<double>& y) {
  if (x.size() != y.size()) {
    return Status::InvalidArgument("FitLine: size mismatch");
  }
  if (x.size() < 2) return Status::InvalidArgument("FitLine: need >= 2 points");
  const double n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  const double vx = sxx - sx * sx / n;
  if (vx <= 0.0) return Status::InvalidArgument("FitLine: constant x");
  LinearFit fit;
  fit.slope = (sxy - sx * sy / n) / vx;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double vy = syy - sy * sy / n;
  if (vy > 0.0) {
    const double cov = sxy - sx * sy / n;
    fit.r_squared = (cov * cov) / (vx * vy);
  } else {
    fit.r_squared = 1.0;  // y constant and perfectly fit by slope ~ 0.
  }
  return fit;
}

Result<double> Quantile(std::vector<double> values, double q) {
  if (values.empty()) return Status::InvalidArgument("Quantile: empty input");
  if (q < 0.0 || q > 1.0) {
    return Status::InvalidArgument("Quantile: q outside [0,1]");
  }
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace qens::stats
