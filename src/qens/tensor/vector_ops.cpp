#include "qens/tensor/vector_ops.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace qens::vec {

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double Norm2(const std::vector<double>& a) { return std::sqrt(Dot(a, a)); }

double SquaredDistance(const std::vector<double>& a,
                       const std::vector<double>& b) {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

double Distance(const std::vector<double>& a, const std::vector<double>& b) {
  return std::sqrt(SquaredDistance(a, b));
}

std::vector<double> Add(const std::vector<double>& a,
                        const std::vector<double>& b) {
  assert(a.size() == b.size());
  std::vector<double> out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

std::vector<double> Sub(const std::vector<double>& a,
                        const std::vector<double>& b) {
  assert(a.size() == b.size());
  std::vector<double> out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

std::vector<double> Scale(const std::vector<double>& a, double s) {
  std::vector<double> out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] * s;
  return out;
}

void AxpyInPlace(std::vector<double>* a, double s,
                 const std::vector<double>& b) {
  assert(a->size() == b.size());
  for (size_t i = 0; i < a->size(); ++i) (*a)[i] += s * b[i];
}

double Sum(const std::vector<double>& a) {
  double acc = 0.0;
  for (double v : a) acc += v;
  return acc;
}

double Mean(const std::vector<double>& a) {
  return a.empty() ? 0.0 : Sum(a) / static_cast<double>(a.size());
}

Result<double> Min(const std::vector<double>& a) {
  if (a.empty()) return Status::InvalidArgument("Min of empty vector");
  return *std::min_element(a.begin(), a.end());
}

Result<double> Max(const std::vector<double>& a) {
  if (a.empty()) return Status::InvalidArgument("Max of empty vector");
  return *std::max_element(a.begin(), a.end());
}

Result<size_t> ArgMin(const std::vector<double>& a) {
  if (a.empty()) return Status::InvalidArgument("ArgMin of empty vector");
  return static_cast<size_t>(
      std::min_element(a.begin(), a.end()) - a.begin());
}

Result<size_t> ArgMax(const std::vector<double>& a) {
  if (a.empty()) return Status::InvalidArgument("ArgMax of empty vector");
  return static_cast<size_t>(
      std::max_element(a.begin(), a.end()) - a.begin());
}

Result<std::vector<double>> NormalizeWeights(const std::vector<double>& w) {
  if (w.empty()) return Status::InvalidArgument("NormalizeWeights: empty");
  double total = 0.0;
  for (double v : w) {
    if (v < 0.0) {
      return Status::InvalidArgument("NormalizeWeights: negative weight");
    }
    total += v;
  }
  if (total <= 0.0) {
    return Status::InvalidArgument("NormalizeWeights: all weights zero");
  }
  return Scale(w, 1.0 / total);
}

}  // namespace qens::vec
