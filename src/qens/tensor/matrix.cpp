#include "qens/tensor/matrix.h"

#include <cassert>
#include <cmath>
#include <limits>

#include "qens/common/string_util.h"

namespace qens {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    assert(row.size() == cols_ && "ragged initializer list");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Result<Matrix> Matrix::FromFlat(size_t rows, size_t cols,
                                std::vector<double> data) {
  if (data.size() != rows * cols) {
    return Status::InvalidArgument(StrFormat(
        "FromFlat: buffer size %zu does not match %zux%zu", data.size(), rows,
        cols));
  }
  Matrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.data_ = std::move(data);
  return m;
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m.At(i, i) = 1.0;
  return m;
}

double& Matrix::At(size_t r, size_t c) {
  assert(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

double Matrix::At(size_t r, size_t c) const {
  assert(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

std::vector<double> Matrix::Row(size_t r) const {
  assert(r < rows_);
  return std::vector<double>(RowPtr(r), RowPtr(r) + cols_);
}

std::vector<double> Matrix::Col(size_t c) const {
  assert(c < cols_);
  std::vector<double> out(rows_);
  for (size_t r = 0; r < rows_; ++r) out[r] = At(r, c);
  return out;
}

Status Matrix::SetRow(size_t r, const std::vector<double>& values) {
  if (r >= rows_) {
    return Status::OutOfRange(StrFormat("SetRow: row %zu >= %zu", r, rows_));
  }
  if (values.size() != cols_) {
    return Status::InvalidArgument(StrFormat(
        "SetRow: value size %zu != cols %zu", values.size(), cols_));
  }
  std::copy(values.begin(), values.end(), RowPtr(r));
  return Status::OK();
}

Result<Matrix> Matrix::SelectRows(const std::vector<size_t>& indices) const {
  Matrix out(indices.size(), cols_);
  for (size_t i = 0; i < indices.size(); ++i) {
    if (indices[i] >= rows_) {
      return Status::OutOfRange(
          StrFormat("SelectRows: index %zu >= %zu", indices[i], rows_));
    }
    std::copy(RowPtr(indices[i]), RowPtr(indices[i]) + cols_, out.RowPtr(i));
  }
  return out;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    const double* src = RowPtr(r);
    for (size_t c = 0; c < cols_; ++c) out.At(c, r) = src[c];
  }
  return out;
}

Result<Matrix> Matrix::MatMul(const Matrix& rhs) const {
  if (cols_ != rhs.rows_) {
    return Status::InvalidArgument(
        StrFormat("MatMul: %zux%zu * %zux%zu shape mismatch", rows_, cols_,
                  rhs.rows_, rhs.cols_));
  }
  Matrix out(rows_, rhs.cols_);
  // ikj loop order: streams over rhs rows and out rows, both contiguous.
  for (size_t i = 0; i < rows_; ++i) {
    const double* a = RowPtr(i);
    double* o = out.RowPtr(i);
    for (size_t k = 0; k < cols_; ++k) {
      const double aik = a[k];
      if (aik == 0.0) continue;
      const double* b = rhs.RowPtr(k);
      for (size_t j = 0; j < rhs.cols_; ++j) o[j] += aik * b[j];
    }
  }
  return out;
}

Status Matrix::Axpy(double alpha, const Matrix& rhs) {
  if (!SameShape(rhs)) {
    return Status::InvalidArgument("Axpy: shape mismatch");
  }
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += alpha * rhs.data_[i];
  return Status::OK();
}

Result<Matrix> Matrix::Add(const Matrix& rhs) const {
  if (!SameShape(rhs)) return Status::InvalidArgument("Add: shape mismatch");
  Matrix out = *this;
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] += rhs.data_[i];
  return out;
}

Result<Matrix> Matrix::Sub(const Matrix& rhs) const {
  if (!SameShape(rhs)) return Status::InvalidArgument("Sub: shape mismatch");
  Matrix out = *this;
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] -= rhs.data_[i];
  return out;
}

Result<Matrix> Matrix::Hadamard(const Matrix& rhs) const {
  if (!SameShape(rhs)) {
    return Status::InvalidArgument("Hadamard: shape mismatch");
  }
  Matrix out = *this;
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] *= rhs.data_[i];
  return out;
}

void Matrix::Scale(double s) {
  for (double& v : data_) v *= s;
}

void Matrix::Fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

Status Matrix::AddRowBroadcast(const std::vector<double>& row) {
  if (row.size() != cols_) {
    return Status::InvalidArgument(StrFormat(
        "AddRowBroadcast: row size %zu != cols %zu", row.size(), cols_));
  }
  for (size_t r = 0; r < rows_; ++r) {
    double* dst = RowPtr(r);
    for (size_t c = 0; c < cols_; ++c) dst[c] += row[c];
  }
  return Status::OK();
}

std::vector<double> Matrix::ColSums() const {
  std::vector<double> sums(cols_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    const double* src = RowPtr(r);
    for (size_t c = 0; c < cols_; ++c) sums[c] += src[c];
  }
  return sums;
}

std::vector<double> Matrix::ColMeans() const {
  std::vector<double> means = ColSums();
  if (rows_ == 0) return means;
  for (double& v : means) v /= static_cast<double>(rows_);
  return means;
}

double Matrix::FrobeniusNorm() const {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return std::sqrt(acc);
}

double Matrix::MaxAbsDiff(const Matrix& rhs) const {
  if (!SameShape(rhs)) return std::numeric_limits<double>::infinity();
  double m = 0.0;
  for (size_t i = 0; i < data_.size(); ++i) {
    m = std::max(m, std::fabs(data_[i] - rhs.data_[i]));
  }
  return m;
}

}  // namespace qens
