#include "qens/tensor/matrix.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "qens/common/string_util.h"

namespace qens {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    assert(row.size() == cols_ && "ragged initializer list");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Result<Matrix> Matrix::FromFlat(size_t rows, size_t cols,
                                std::vector<double> data) {
  if (data.size() != rows * cols) {
    return Status::InvalidArgument(StrFormat(
        "FromFlat: buffer size %zu does not match %zux%zu", data.size(), rows,
        cols));
  }
  Matrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.data_ = std::move(data);
  return m;
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m.At(i, i) = 1.0;
  return m;
}

double& Matrix::At(size_t r, size_t c) {
  assert(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

double Matrix::At(size_t r, size_t c) const {
  assert(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

std::vector<double> Matrix::Row(size_t r) const {
  assert(r < rows_);
  return std::vector<double>(RowPtr(r), RowPtr(r) + cols_);
}

std::vector<double> Matrix::Col(size_t c) const {
  assert(c < cols_);
  std::vector<double> out(rows_);
  // Raw strided walk: one pointer bump per row instead of a checked
  // At(r, c) index computation in the inner loop.
  const double* src = data_.data() + c;
  for (size_t r = 0; r < rows_; ++r, src += cols_) out[r] = *src;
  return out;
}

void Matrix::ResizeUninitialized(size_t rows, size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.resize(rows * cols);
}

Status Matrix::SetRow(size_t r, const std::vector<double>& values) {
  if (r >= rows_) {
    return Status::OutOfRange(StrFormat("SetRow: row %zu >= %zu", r, rows_));
  }
  if (values.size() != cols_) {
    return Status::InvalidArgument(StrFormat(
        "SetRow: value size %zu != cols %zu", values.size(), cols_));
  }
  std::copy(values.begin(), values.end(), RowPtr(r));
  return Status::OK();
}

Result<Matrix> Matrix::SelectRows(const std::vector<size_t>& indices) const {
  Matrix out;
  QENS_RETURN_NOT_OK(SelectRowsInto(indices, &out));
  return out;
}

Status Matrix::SelectRowsInto(const std::vector<size_t>& indices,
                              Matrix* out) const {
  assert(out != this);
  out->ResizeUninitialized(indices.size(), cols_);
  for (size_t i = 0; i < indices.size(); ++i) {
    if (indices[i] >= rows_) {
      return Status::OutOfRange(
          StrFormat("SelectRows: index %zu >= %zu", indices[i], rows_));
    }
    std::copy(RowPtr(indices[i]), RowPtr(indices[i]) + cols_, out->RowPtr(i));
  }
  return Status::OK();
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  double* dst = out.data_.data();
  for (size_t r = 0; r < rows_; ++r) {
    const double* src = RowPtr(r);
    // out(c, r): strided writes, one bump of `cols_out == rows_` per step.
    double* o = dst + r;
    for (size_t c = 0; c < cols_; ++c, o += rows_) *o = src[c];
  }
  return out;
}

namespace {

/// Column-tile width for the GEMM kernels: bounds the slab of `rhs` rows
/// revisited per output row so it stays cache-resident at large widths.
/// Tiling j never reorders the per-element k-accumulation, so tiled output
/// is bit-identical to the untiled loop.
constexpr size_t kGemmColTile = 256;

/// Shared ikj GEMM core: out(i, :) += a(i, :) * b. `out` must be
/// zero-initialized (or hold the values being accumulated into). No skip on
/// zero multiplicands: 0 * NaN and 0 * Inf must propagate per IEEE-754 (a
/// former `aik == 0` fast path silently swallowed non-finite rhs values,
/// defeating the leader-side non-finite screening).
///
/// The k-loop is unrolled 4x with the four updates to each o[j] issued as
/// separate sequential adds (never a reassociated partial-sum tree), so each
/// output element still accumulates in strictly ascending k and the result
/// stays bit-identical to the rolled loop. The unroll amortizes the o[j]
/// load/store over four multiply-adds and leaves the j-direction free for
/// the vectorizer, which carries the k-chain inside one vector lane.
void GemmAccumulate(const double* a_data, size_t a_rows, size_t a_cols,
                    const double* b_data, size_t b_cols, double* out_data) {
  for (size_t j0 = 0; j0 < b_cols; j0 += kGemmColTile) {
    const size_t j1 = std::min(j0 + kGemmColTile, b_cols);
    for (size_t i = 0; i < a_rows; ++i) {
      const double* a = a_data + i * a_cols;
      double* o = out_data + i * b_cols;
      size_t k = 0;
      for (; k + 4 <= a_cols; k += 4) {
        const double a0 = a[k];
        const double a1 = a[k + 1];
        const double a2 = a[k + 2];
        const double a3 = a[k + 3];
        const double* b0 = b_data + k * b_cols;
        const double* b1 = b0 + b_cols;
        const double* b2 = b1 + b_cols;
        const double* b3 = b2 + b_cols;
        for (size_t j = j0; j < j1; ++j) {
          double acc = o[j];
          acc += a0 * b0[j];
          acc += a1 * b1[j];
          acc += a2 * b2[j];
          acc += a3 * b3[j];
          o[j] = acc;
        }
      }
      for (; k < a_cols; ++k) {
        const double aik = a[k];
        const double* b = b_data + k * b_cols;
        for (size_t j = j0; j < j1; ++j) o[j] += aik * b[j];
      }
    }
  }
}

}  // namespace

Result<Matrix> Matrix::MatMul(const Matrix& rhs) const {
  Matrix out;
  QENS_RETURN_NOT_OK(MatMulInto(rhs, &out));
  return out;
}

Status Matrix::MatMulInto(const Matrix& rhs, Matrix* out) const {
  if (cols_ != rhs.rows_) {
    return Status::InvalidArgument(
        StrFormat("MatMul: %zux%zu * %zux%zu shape mismatch", rows_, cols_,
                  rhs.rows_, rhs.cols_));
  }
  out->ResizeUninitialized(rows_, rhs.cols_);
  std::fill(out->data_.begin(), out->data_.end(), 0.0);
  GemmAccumulate(data_.data(), rows_, cols_, rhs.data_.data(), rhs.cols_,
                 out->data_.data());
  return Status::OK();
}

Status Matrix::MatMulAddBiasInto(const Matrix& rhs,
                                 const std::vector<double>& bias,
                                 Matrix* out) const {
  if (cols_ != rhs.rows_) {
    return Status::InvalidArgument(
        StrFormat("MatMulAddBias: %zux%zu * %zux%zu shape mismatch", rows_,
                  cols_, rhs.rows_, rhs.cols_));
  }
  if (bias.size() != rhs.cols_) {
    return Status::InvalidArgument(
        StrFormat("MatMulAddBias: bias size %zu != %zu", bias.size(),
                  rhs.cols_));
  }
  out->ResizeUninitialized(rows_, rhs.cols_);
  std::fill(out->data_.begin(), out->data_.end(), 0.0);
  GemmAccumulate(data_.data(), rows_, cols_, rhs.data_.data(), rhs.cols_,
                 out->data_.data());
  // Bias lands after the full k-accumulation — the same operand order as
  // MatMul + AddRowBroadcast, fused while the output is still hot.
  const double* b = bias.data();
  for (size_t i = 0; i < rows_; ++i) {
    double* o = out->RowPtr(i);
    for (size_t j = 0; j < rhs.cols_; ++j) o[j] += b[j];
  }
  return Status::OK();
}

Status Matrix::MatMulTransposedAInto(const Matrix& rhs, Matrix* out) const {
  // out = thisᵀ * rhs: this is (m x k), rhs is (m x n), out is (k x n).
  if (rows_ != rhs.rows_) {
    return Status::InvalidArgument(
        StrFormat("MatMulTransposedA: %zux%zu vs %zux%zu row mismatch", rows_,
                  cols_, rhs.rows_, rhs.cols_));
  }
  out->ResizeUninitialized(cols_, rhs.cols_);
  std::fill(out->data_.begin(), out->data_.end(), 0.0);
  // Accumulate rank-1 updates row by row: for each sample r, out(i, :) +=
  // this(r, i) * rhs(r, :). Ascending r per output element — the order
  // Transposed().MatMul(rhs) uses, so results are bit-identical to it. Rows
  // are unrolled 4 at a time with the four updates to each out(i, j) issued
  // as sequential adds (same ascending-r chain, never a partial-sum tree),
  // which amortizes the output load/store and keeps j vectorizable.
  const size_t n = rhs.cols_;
  size_t r = 0;
  for (; r + 4 <= rows_; r += 4) {
    const double* a0 = RowPtr(r);
    const double* a1 = RowPtr(r + 1);
    const double* a2 = RowPtr(r + 2);
    const double* a3 = RowPtr(r + 3);
    const double* b0 = rhs.RowPtr(r);
    const double* b1 = rhs.RowPtr(r + 1);
    const double* b2 = rhs.RowPtr(r + 2);
    const double* b3 = rhs.RowPtr(r + 3);
    for (size_t i = 0; i < cols_; ++i) {
      const double c0 = a0[i];
      const double c1 = a1[i];
      const double c2 = a2[i];
      const double c3 = a3[i];
      double* o = out->RowPtr(i);
      for (size_t j = 0; j < n; ++j) {
        double acc = o[j];
        acc += c0 * b0[j];
        acc += c1 * b1[j];
        acc += c2 * b2[j];
        acc += c3 * b3[j];
        o[j] = acc;
      }
    }
  }
  for (; r < rows_; ++r) {
    const double* a = RowPtr(r);
    const double* b = rhs.RowPtr(r);
    for (size_t i = 0; i < cols_; ++i) {
      const double ari = a[i];
      double* o = out->RowPtr(i);
      for (size_t j = 0; j < n; ++j) o[j] += ari * b[j];
    }
  }
  return Status::OK();
}

Result<Matrix> Matrix::MatMulTransposedA(const Matrix& rhs) const {
  Matrix out;
  QENS_RETURN_NOT_OK(MatMulTransposedAInto(rhs, &out));
  return out;
}

Status Matrix::MatMulTransposedBInto(const Matrix& rhs, Matrix* out) const {
  // out = this * rhsᵀ: this is (m x k), rhs is (n x k), out is (m x n).
  if (cols_ != rhs.cols_) {
    return Status::InvalidArgument(
        StrFormat("MatMulTransposedB: %zux%zu vs %zux%zu col mismatch", rows_,
                  cols_, rhs.rows_, rhs.cols_));
  }
  out->ResizeUninitialized(rows_, rhs.rows_);
  // Every output element is a dot product of two contiguous rows,
  // accumulated in ascending k — the order MatMul(rhs.Transposed()) uses.
  // Four output columns are computed per pass so the four independent dot
  // chains overlap in flight; each chain is still its own strictly
  // sequential ascending-k accumulation, so every element is bit-identical
  // to the one-column loop.
  const size_t n = rhs.rows_;
  for (size_t i = 0; i < rows_; ++i) {
    const double* a = RowPtr(i);
    double* o = out->RowPtr(i);
    size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const double* b0 = rhs.RowPtr(j);
      const double* b1 = rhs.RowPtr(j + 1);
      const double* b2 = rhs.RowPtr(j + 2);
      const double* b3 = rhs.RowPtr(j + 3);
      double s0 = 0.0;
      double s1 = 0.0;
      double s2 = 0.0;
      double s3 = 0.0;
      for (size_t k = 0; k < cols_; ++k) {
        const double av = a[k];
        s0 += av * b0[k];
        s1 += av * b1[k];
        s2 += av * b2[k];
        s3 += av * b3[k];
      }
      o[j] = s0;
      o[j + 1] = s1;
      o[j + 2] = s2;
      o[j + 3] = s3;
    }
    for (; j < n; ++j) {
      const double* b = rhs.RowPtr(j);
      double acc = 0.0;
      for (size_t k = 0; k < cols_; ++k) acc += a[k] * b[k];
      o[j] = acc;
    }
  }
  return Status::OK();
}

Result<Matrix> Matrix::MatMulTransposedB(const Matrix& rhs) const {
  Matrix out;
  QENS_RETURN_NOT_OK(MatMulTransposedBInto(rhs, &out));
  return out;
}

Status Matrix::Axpy(double alpha, const Matrix& rhs) {
  if (!SameShape(rhs)) {
    return Status::InvalidArgument("Axpy: shape mismatch");
  }
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += alpha * rhs.data_[i];
  return Status::OK();
}

Result<Matrix> Matrix::Add(const Matrix& rhs) const {
  if (!SameShape(rhs)) return Status::InvalidArgument("Add: shape mismatch");
  Matrix out = *this;
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] += rhs.data_[i];
  return out;
}

Result<Matrix> Matrix::Sub(const Matrix& rhs) const {
  if (!SameShape(rhs)) return Status::InvalidArgument("Sub: shape mismatch");
  Matrix out = *this;
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] -= rhs.data_[i];
  return out;
}

Result<Matrix> Matrix::Hadamard(const Matrix& rhs) const {
  if (!SameShape(rhs)) {
    return Status::InvalidArgument("Hadamard: shape mismatch");
  }
  Matrix out = *this;
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] *= rhs.data_[i];
  return out;
}

Status Matrix::HadamardInPlace(const Matrix& rhs) {
  if (!SameShape(rhs)) {
    return Status::InvalidArgument("HadamardInPlace: shape mismatch");
  }
  for (size_t i = 0; i < data_.size(); ++i) data_[i] *= rhs.data_[i];
  return Status::OK();
}

void Matrix::Scale(double s) {
  for (double& v : data_) v *= s;
}

void Matrix::Fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

Status Matrix::AddRowBroadcast(const std::vector<double>& row) {
  if (row.size() != cols_) {
    return Status::InvalidArgument(StrFormat(
        "AddRowBroadcast: row size %zu != cols %zu", row.size(), cols_));
  }
  for (size_t r = 0; r < rows_; ++r) {
    double* dst = RowPtr(r);
    for (size_t c = 0; c < cols_; ++c) dst[c] += row[c];
  }
  return Status::OK();
}

std::vector<double> Matrix::ColSums() const {
  std::vector<double> sums(cols_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    const double* src = RowPtr(r);
    for (size_t c = 0; c < cols_; ++c) sums[c] += src[c];
  }
  return sums;
}

std::vector<double> Matrix::ColMeans() const {
  std::vector<double> means = ColSums();
  if (rows_ == 0) return means;
  for (double& v : means) v /= static_cast<double>(rows_);
  return means;
}

double Matrix::FrobeniusNorm() const {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return std::sqrt(acc);
}

double Matrix::MaxAbsDiff(const Matrix& rhs) const {
  if (!SameShape(rhs)) return std::numeric_limits<double>::infinity();
  double m = 0.0;
  for (size_t i = 0; i < data_.size(); ++i) {
    m = std::max(m, std::fabs(data_[i] - rhs.data_[i]));
  }
  return m;
}

}  // namespace qens
