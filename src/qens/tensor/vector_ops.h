#ifndef QENS_TENSOR_VECTOR_OPS_H_
#define QENS_TENSOR_VECTOR_OPS_H_

/// \file vector_ops.h
/// Free functions on std::vector<double> used by k-means (distances),
/// ranking (weighted sums), and the optimizers.

#include <vector>

#include "qens/common/status.h"

namespace qens::vec {

/// Dot product; asserts equal sizes.
double Dot(const std::vector<double>& a, const std::vector<double>& b);

/// Euclidean (L2) norm.
double Norm2(const std::vector<double>& a);

/// Squared Euclidean distance between a and b; asserts equal sizes.
double SquaredDistance(const std::vector<double>& a,
                       const std::vector<double>& b);

/// Euclidean distance between a and b.
double Distance(const std::vector<double>& a, const std::vector<double>& b);

/// a + b elementwise; asserts equal sizes.
std::vector<double> Add(const std::vector<double>& a,
                        const std::vector<double>& b);

/// a - b elementwise; asserts equal sizes.
std::vector<double> Sub(const std::vector<double>& a,
                        const std::vector<double>& b);

/// s * a elementwise.
std::vector<double> Scale(const std::vector<double>& a, double s);

/// In-place a += s * b; asserts equal sizes.
void AxpyInPlace(std::vector<double>* a, double s, const std::vector<double>& b);

/// Sum of all elements.
double Sum(const std::vector<double>& a);

/// Arithmetic mean; 0 for an empty vector.
double Mean(const std::vector<double>& a);

/// Minimum / maximum element; fail on an empty vector.
Result<double> Min(const std::vector<double>& a);
Result<double> Max(const std::vector<double>& a);

/// Index of the minimum element; fails on an empty vector. Ties break low.
Result<size_t> ArgMin(const std::vector<double>& a);

/// Index of the maximum element; fails on an empty vector. Ties break low.
Result<size_t> ArgMax(const std::vector<double>& a);

/// Normalize non-negative weights to sum to 1. Fails if any weight is
/// negative or all are zero. (Used for Eq. 7's lambda_i = r_i / sum r_k.)
Result<std::vector<double>> NormalizeWeights(const std::vector<double>& w);

}  // namespace qens::vec

#endif  // QENS_TENSOR_VECTOR_OPS_H_
