#include "qens/data/dataset.h"

#include "qens/common/string_util.h"

namespace qens::data {

Result<Dataset> Dataset::Create(Matrix features, Matrix targets,
                                std::vector<std::string> feature_names,
                                std::string target_name) {
  if (features.rows() != targets.rows()) {
    return Status::InvalidArgument(
        StrFormat("Dataset: %zu feature rows vs %zu target rows",
                  features.rows(), targets.rows()));
  }
  if (targets.cols() != 1) {
    return Status::InvalidArgument(
        StrFormat("Dataset: target must be one column, got %zu",
                  targets.cols()));
  }
  if (feature_names.size() != features.cols()) {
    return Status::InvalidArgument(
        StrFormat("Dataset: %zu names for %zu features", feature_names.size(),
                  features.cols()));
  }
  Dataset d;
  d.features_ = std::move(features);
  d.targets_ = std::move(targets);
  d.feature_names_ = std::move(feature_names);
  d.target_name_ = std::move(target_name);
  return d;
}

Result<Dataset> Dataset::Create(Matrix features, Matrix targets) {
  std::vector<std::string> names(features.cols());
  for (size_t i = 0; i < names.size(); ++i) names[i] = StrFormat("f%zu", i);
  return Create(std::move(features), std::move(targets), std::move(names),
                "target");
}

Result<Dataset> Dataset::SelectRows(const std::vector<size_t>& rows) const {
  QENS_ASSIGN_OR_RETURN(Matrix f, features_.SelectRows(rows));
  QENS_ASSIGN_OR_RETURN(Matrix t, targets_.SelectRows(rows));
  return Create(std::move(f), std::move(t), feature_names_, target_name_);
}

Result<Dataset> Dataset::Concat(const Dataset& other) const {
  if (other.NumFeatures() != NumFeatures()) {
    return Status::InvalidArgument("Concat: feature width mismatch");
  }
  Matrix f(NumSamples() + other.NumSamples(), NumFeatures());
  Matrix t(NumSamples() + other.NumSamples(), 1);
  for (size_t r = 0; r < NumSamples(); ++r) {
    std::copy(features_.RowPtr(r), features_.RowPtr(r) + NumFeatures(),
              f.RowPtr(r));
    t(r, 0) = targets_(r, 0);
  }
  for (size_t r = 0; r < other.NumSamples(); ++r) {
    std::copy(other.features_.RowPtr(r),
              other.features_.RowPtr(r) + NumFeatures(),
              f.RowPtr(NumSamples() + r));
    t(NumSamples() + r, 0) = other.targets_(r, 0);
  }
  return Create(std::move(f), std::move(t), feature_names_, target_name_);
}

Result<query::HyperRectangle> Dataset::FeatureSpace() const {
  return query::HyperRectangle::BoundingBox(features_);
}

Result<size_t> Dataset::FeatureIndex(const std::string& name) const {
  for (size_t i = 0; i < feature_names_.size(); ++i) {
    if (feature_names_[i] == name) return i;
  }
  return Status::NotFound("feature not found: '" + name + "'");
}

}  // namespace qens::data
