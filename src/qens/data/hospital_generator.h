#ifndef QENS_DATA_HOSPITAL_GENERATOR_H_
#define QENS_DATA_HOSPITAL_GENERATOR_H_

/// \file hospital_generator.h
/// Synthetic multi-hospital dataset for the paper's *other* motivating
/// domain (Section I: "medicine records/data in hospitals, electronic
/// health record (EHR)" — data that is "not shareable because of ethical,
/// legal, logistical, and administrative barriers"), and Section IV-A's
/// example query: "learning the relation between age range ... with the
/// chance of getting a specific kind of cancer ... just those with age
/// e.g., between 20 and 50".
///
/// Each hospital holds patient records over a shared schema:
///   AGE    — drawn from the hospital's specialty profile (a pediatric
///            clinic, general hospitals, a geriatric center): different
///            hospitals cover different age ranges — exactly the
///            heterogeneous-regions structure the selection mechanism
///            exploits;
///   BMI    — age-correlated with noise;
///   SBP    — systolic blood pressure, rises with age and BMI;
///   RISK   — the regression target: a smooth nonlinear function of age
///            (low in childhood, rising steeply past middle age) plus BMI
///            and SBP contributions. One global ground truth, different
///            local slopes per hospital — a pediatric model extrapolates
///            badly onto geriatric queries and vice versa.

#include <cstdint>
#include <string>
#include <vector>

#include "qens/common/status.h"
#include "qens/data/dataset.h"

namespace qens::data {

/// Per-hospital cohort parameters.
struct HospitalProfile {
  std::string name;
  double age_center = 45.0;  ///< Mean patient age of the cohort.
  double age_spread = 15.0;  ///< Std-dev of the cohort's age distribution.
  double noise_scale = 1.0;  ///< Site-specific measurement noise.
};

/// Generator configuration.
struct HospitalOptions {
  size_t num_hospitals = 8;
  size_t patients_per_hospital = 1200;
  /// When true, hospitals specialize (pediatric -> geriatric spread);
  /// when false, every hospital sees the same general population.
  bool specialized = true;
  uint64_t seed = 77;
  /// Piecewise-stationary drift: the patient range splits into
  /// `drift_phases` contiguous cohorts; each cohort after the first shifts
  /// the hospital's age center by a fresh ±drift_shift (years) draw, which
  /// cascades into BMI/SBP/RISK through the record model. Drift draws come
  /// from a SEPARATE Rng stream keyed by drift_seed; the default (1 phase /
  /// zero shift) is byte-identical to the legacy output.
  size_t drift_phases = 1;
  double drift_shift = 0.0;
  uint64_t drift_seed = 0;
};

/// Deterministic multi-hospital records generator.
class HospitalGenerator {
 public:
  explicit HospitalGenerator(HospitalOptions options);

  const HospitalOptions& options() const { return options_; }
  const std::vector<HospitalProfile>& profiles() const { return profiles_; }

  /// Generate hospital `index`'s records. Deterministic per (seed, index).
  Result<Dataset> GenerateHospital(size_t index) const;

  /// All hospitals, in index order.
  Result<std::vector<Dataset>> GenerateAll() const;

  /// Feature names: AGE, BMI, SBP. Target: RISK.
  static std::vector<std::string> FeatureNames() {
    return {"AGE", "BMI", "SBP"};
  }
  static const char* TargetName() { return "RISK"; }

  /// The global ground-truth risk response (exposed for tests):
  /// risk(age, bmi, sbp) without noise, in [0, ~100].
  static double TrueRisk(double age, double bmi, double sbp);

 private:
  void BuildProfiles();

  HospitalOptions options_;
  std::vector<HospitalProfile> profiles_;
};

}  // namespace qens::data

#endif  // QENS_DATA_HOSPITAL_GENERATOR_H_
