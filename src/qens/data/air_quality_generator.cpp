#include "qens/data/air_quality_generator.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "qens/common/rng.h"
#include "qens/common/string_util.h"

namespace qens::data {
namespace {

constexpr double kHoursPerDay = 24.0;
constexpr double kHoursPerYear = 24.0 * 365.0;

/// Real Beijing-area station names (the UCI dataset's 12 sites; we use the
/// first options.num_stations of them, cycling if more are requested).
constexpr const char* kStationNames[] = {
    "Aotizhongxin", "Changping", "Dingling",  "Dongsi",
    "Guanyuan",     "Gucheng",   "Huairou",   "Nongzhanguan",
    "Shunyi",       "Tiantan",   "Wanliu",    "Wanshouxigong",
};
constexpr size_t kNumStationNames =
    sizeof(kStationNames) / sizeof(kStationNames[0]);

// Heterogeneous regime: one global V-shaped PM2.5 response to TEMP.
// PM2.5 = kPmVertexLevel + kPmCurvature * (TEMP - kPmVertexTemp)^2.
constexpr double kPmVertexTemp = 10.0;
constexpr double kPmVertexLevel = 40.0;
constexpr double kPmCurvature = 0.12;

// Mean annual temperature of the unshifted seasonal signal.
constexpr double kBaseMeanTemp = 14.0;

}  // namespace

const char* HeterogeneityName(Heterogeneity h) {
  switch (h) {
    case Heterogeneity::kHomogeneous:
      return "homogeneous";
    case Heterogeneity::kHeterogeneous:
      return "heterogeneous";
  }
  return "unknown";
}

AirQualityGenerator::AirQualityGenerator(AirQualityOptions options)
    : options_(options) {
  BuildProfiles();
}

void AirQualityGenerator::BuildProfiles() {
  profiles_.clear();
  profiles_.reserve(options_.num_stations);
  Rng rng(options_.seed);
  for (size_t s = 0; s < options_.num_stations; ++s) {
    StationProfile p;
    p.name = StrFormat("%s-%zu", kStationNames[s % kNumStationNames], s);
    if (options_.heterogeneity == Heterogeneity::kHomogeneous) {
      // Identical process everywhere; only the noise streams differ.
      p.temp_offset = 0.0;
      p.pres_offset = 0.0;
      p.humidity_gap = 6.0;
      p.pm_base = 60.0;
      p.pm_slope = 2.5;
      p.noise_scale = 1.0;
    } else {
      // Region shifts: stations spread evenly from cold mountain sites to
      // warm urban cores (plus jitter), so different sites hold different
      // TEMP ranges. The PM2.5 response is the global V-curve, so each
      // site's LOCAL regression slope differs — negative at cold sites,
      // positive at warm ones (the paper's Section II motivation).
      const double span = options_.num_stations > 1
                              ? static_cast<double>(s) /
                                    static_cast<double>(options_.num_stations - 1)
                              : 0.5;
      p.temp_offset = -25.0 + 50.0 * span + rng.Uniform(-1.5, 1.5);
      double mean_temp = kBaseMeanTemp + p.temp_offset;
      // Keep every station clear of the V vertex so its local slope has an
      // unambiguous sign.
      if (std::fabs(mean_temp - kPmVertexTemp) < 3.0) {
        p.temp_offset += 6.0;
        mean_temp = kBaseMeanTemp + p.temp_offset;
      }
      p.pres_offset = rng.Uniform(-12.0, 12.0);
      p.humidity_gap = rng.Uniform(3.0, 10.0);
      p.pm_slope = 2.0 * kPmCurvature * (mean_temp - kPmVertexTemp);
      p.pm_base = kPmVertexLevel +
                  kPmCurvature * (mean_temp - kPmVertexTemp) *
                      (mean_temp - kPmVertexTemp);
      p.noise_scale = rng.Uniform(0.6, 1.8);
    }
    profiles_.push_back(std::move(p));
  }
}

std::vector<std::string> AirQualityGenerator::FeatureNames() const {
  if (options_.single_feature) return {"TEMP"};
  return {"TEMP", "PRES", "DEWP", "WSPM"};
}

Result<Dataset> AirQualityGenerator::GenerateStation(size_t index) const {
  if (index >= profiles_.size()) {
    return Status::OutOfRange(StrFormat(
        "GenerateStation: index %zu >= %zu", index, profiles_.size()));
  }
  if (options_.samples_per_station == 0) {
    return Status::InvalidArgument(
        "GenerateStation: samples_per_station must be > 0");
  }
  if (options_.drift_phases == 0) {
    return Status::InvalidArgument(
        "GenerateStation: drift_phases must be >= 1");
  }
  const StationProfile& p = profiles_[index];
  // Independent stream per station, derived from the master seed.
  Rng rng = Rng(options_.seed).Fork(index + 1);

  // Piecewise-stationary drift offsets, one per phase, drawn from a
  // separate stream so the legacy (drift-off) byte stream is untouched.
  const bool drift_on =
      options_.drift_phases > 1 && options_.drift_shift != 0.0;
  std::vector<double> phase_offset;
  if (drift_on) {
    Rng drift_rng = Rng(options_.drift_seed).Fork(index + 1);
    phase_offset.resize(options_.drift_phases, 0.0);
    for (size_t ph = 1; ph < options_.drift_phases; ++ph) {
      phase_offset[ph] =
          drift_rng.Uniform(-options_.drift_shift, options_.drift_shift);
    }
  }

  const size_t m = options_.samples_per_station;
  const size_t d = options_.single_feature ? 1 : 4;
  Matrix features(m, d);
  Matrix targets(m, 1);

  // Each station starts at a random phase of the year, and samples stride
  // across a full seasonal cycle regardless of the sample count (the UCI
  // dataset spans four years; every site sees every season).
  const double phase = rng.Uniform(0.0, kHoursPerYear);
  const double stride = kHoursPerYear / static_cast<double>(m);

  for (size_t i = 0; i < m; ++i) {
    const double t = phase + static_cast<double>(i) * stride;
    const double season =
        14.0 + 13.0 * std::sin(2.0 * std::numbers::pi * t / kHoursPerYear);
    const double diurnal =
        4.0 * std::sin(2.0 * std::numbers::pi * t / kHoursPerDay);
    double temp = season + diurnal + p.temp_offset +
                  rng.Gaussian(0.0, 2.0 * p.noise_scale);
    if (drift_on) {
      temp += phase_offset[i * options_.drift_phases / m];
    }
    const double pres = 1013.0 - 0.9 * (temp - 14.0) + p.pres_offset +
                        rng.Gaussian(0.0, 3.0 * p.noise_scale);
    const double dewp =
        temp - p.humidity_gap + rng.Gaussian(0.0, 1.5 * p.noise_scale);
    const double wspm = rng.Exponential(0.7);

    double pm;
    if (options_.heterogeneity == Heterogeneity::kHomogeneous) {
      pm = p.pm_base + p.pm_slope * temp;
    } else {
      const double dt = temp - kPmVertexTemp;
      pm = kPmVertexLevel + kPmCurvature * dt * dt;
    }
    pm += -6.0 * wspm + rng.Gaussian(0.0, 8.0 * p.noise_scale);
    pm = std::max(0.0, pm);

    features(i, 0) = temp;
    if (!options_.single_feature) {
      features(i, 1) = pres;
      features(i, 2) = dewp;
      features(i, 3) = wspm;
    }
    targets(i, 0) = pm;
  }

  return Dataset::Create(std::move(features), std::move(targets),
                         FeatureNames(), TargetName());
}

Result<std::vector<Dataset>> AirQualityGenerator::GenerateAll() const {
  std::vector<Dataset> out;
  out.reserve(profiles_.size());
  for (size_t s = 0; s < profiles_.size(); ++s) {
    QENS_ASSIGN_OR_RETURN(Dataset d, GenerateStation(s));
    out.push_back(std::move(d));
  }
  return out;
}

}  // namespace qens::data
