#ifndef QENS_DATA_CSV_H_
#define QENS_DATA_CSV_H_

/// \file csv.h
/// CSV load/store for Dataset. Lets users drop in the real UCI Beijing
/// Multi-Site Air-Quality files (one file per station/node) in place of the
/// synthetic generator.

#include <string>
#include <vector>

#include "qens/common/status.h"
#include "qens/data/dataset.h"

namespace qens::data {

/// Options for ReadCsvDataset.
struct CsvReadOptions {
  char delimiter = ',';
  bool has_header = true;
  /// Name of the target column; when empty, the LAST column is the target.
  std::string target_column;
  /// Columns to use as features (by name). When empty, every numeric column
  /// except the target is a feature.
  std::vector<std::string> feature_columns;
  /// Rows containing unparseable/missing values in selected columns are
  /// skipped when true; otherwise they are an error.
  bool skip_bad_rows = true;
};

/// Parse a CSV file into a Dataset. Requires a header when column names are
/// referenced. Fails on IO errors, unknown columns, or (when
/// skip_bad_rows == false) malformed cells.
Result<Dataset> ReadCsvDataset(const std::string& path,
                               const CsvReadOptions& options = {});

/// Parse CSV text (same semantics as ReadCsvDataset).
Result<Dataset> ParseCsvDataset(const std::string& text,
                                const CsvReadOptions& options = {});

/// Write a dataset to CSV with a header ("f0,...,target" naming from the
/// dataset's schema).
Status WriteCsvDataset(const Dataset& dataset, const std::string& path,
                       char delimiter = ',');

/// Serialize a dataset to CSV text.
std::string FormatCsvDataset(const Dataset& dataset, char delimiter = ',');

}  // namespace qens::data

#endif  // QENS_DATA_CSV_H_
