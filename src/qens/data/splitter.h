#ifndef QENS_DATA_SPLITTER_H_
#define QENS_DATA_SPLITTER_H_

/// \file splitter.h
/// Train/test splitting and node-partitioning utilities: carving one big
/// dataset into N per-node shards (IID or by feature region) to simulate the
/// paper's distributed setting when starting from a centralized file.

#include <cstdint>
#include <vector>

#include "qens/common/status.h"
#include "qens/data/dataset.h"

namespace qens::data {

/// A train/test pair.
struct TrainTestSplit {
  Dataset train;
  Dataset test;
};

/// Random split with `test_fraction` of rows (rounded down, at least one row
/// left on each side for non-trivial inputs). Deterministic in `seed`.
Result<TrainTestSplit> SplitTrainTest(const Dataset& dataset,
                                      double test_fraction, uint64_t seed);

/// Partition rows uniformly at random into `n` shards of near-equal size
/// (IID shards -> homogeneous nodes). Deterministic in `seed`.
Result<std::vector<Dataset>> PartitionIid(const Dataset& dataset, size_t n,
                                          uint64_t seed);

/// Partition by sorting on one feature and cutting into `n` contiguous
/// blocks (disjoint data spaces -> heterogeneous nodes).
Result<std::vector<Dataset>> PartitionByFeature(const Dataset& dataset,
                                                size_t feature_index,
                                                size_t n);

}  // namespace qens::data

#endif  // QENS_DATA_SPLITTER_H_
