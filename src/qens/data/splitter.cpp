#include "qens/data/splitter.h"

#include <algorithm>
#include <numeric>

#include "qens/common/rng.h"
#include "qens/common/string_util.h"

namespace qens::data {

Result<TrainTestSplit> SplitTrainTest(const Dataset& dataset,
                                      double test_fraction, uint64_t seed) {
  if (dataset.NumSamples() < 2) {
    return Status::InvalidArgument("SplitTrainTest: need >= 2 samples");
  }
  if (test_fraction <= 0.0 || test_fraction >= 1.0) {
    return Status::InvalidArgument(
        "SplitTrainTest: test_fraction must be in (0, 1)");
  }
  Rng rng(seed);
  std::vector<size_t> order(dataset.NumSamples());
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(&order);

  size_t n_test = static_cast<size_t>(
      test_fraction * static_cast<double>(dataset.NumSamples()));
  n_test = std::clamp<size_t>(n_test, 1, dataset.NumSamples() - 1);

  std::vector<size_t> test_idx(order.begin(),
                               order.begin() + static_cast<ptrdiff_t>(n_test));
  std::vector<size_t> train_idx(order.begin() + static_cast<ptrdiff_t>(n_test),
                                order.end());
  TrainTestSplit split;
  QENS_ASSIGN_OR_RETURN(split.test, dataset.SelectRows(test_idx));
  QENS_ASSIGN_OR_RETURN(split.train, dataset.SelectRows(train_idx));
  return split;
}

Result<std::vector<Dataset>> PartitionIid(const Dataset& dataset, size_t n,
                                          uint64_t seed) {
  if (n == 0) return Status::InvalidArgument("PartitionIid: n must be > 0");
  if (dataset.NumSamples() < n) {
    return Status::InvalidArgument(
        StrFormat("PartitionIid: %zu samples for %zu shards",
                  dataset.NumSamples(), n));
  }
  Rng rng(seed);
  std::vector<size_t> order(dataset.NumSamples());
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(&order);

  std::vector<Dataset> shards;
  shards.reserve(n);
  const size_t base = dataset.NumSamples() / n;
  const size_t extra = dataset.NumSamples() % n;
  size_t cursor = 0;
  for (size_t i = 0; i < n; ++i) {
    const size_t take = base + (i < extra ? 1 : 0);
    std::vector<size_t> idx(order.begin() + static_cast<ptrdiff_t>(cursor),
                            order.begin() +
                                static_cast<ptrdiff_t>(cursor + take));
    cursor += take;
    QENS_ASSIGN_OR_RETURN(Dataset shard, dataset.SelectRows(idx));
    shards.push_back(std::move(shard));
  }
  return shards;
}

Result<std::vector<Dataset>> PartitionByFeature(const Dataset& dataset,
                                                size_t feature_index,
                                                size_t n) {
  if (n == 0) {
    return Status::InvalidArgument("PartitionByFeature: n must be > 0");
  }
  if (feature_index >= dataset.NumFeatures()) {
    return Status::OutOfRange(
        StrFormat("PartitionByFeature: feature %zu >= %zu", feature_index,
                  dataset.NumFeatures()));
  }
  if (dataset.NumSamples() < n) {
    return Status::InvalidArgument(
        StrFormat("PartitionByFeature: %zu samples for %zu shards",
                  dataset.NumSamples(), n));
  }
  std::vector<size_t> order(dataset.NumSamples());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return dataset.features()(a, feature_index) <
           dataset.features()(b, feature_index);
  });

  std::vector<Dataset> shards;
  shards.reserve(n);
  const size_t base = dataset.NumSamples() / n;
  const size_t extra = dataset.NumSamples() % n;
  size_t cursor = 0;
  for (size_t i = 0; i < n; ++i) {
    const size_t take = base + (i < extra ? 1 : 0);
    std::vector<size_t> idx(order.begin() + static_cast<ptrdiff_t>(cursor),
                            order.begin() +
                                static_cast<ptrdiff_t>(cursor + take));
    cursor += take;
    QENS_ASSIGN_OR_RETURN(Dataset shard, dataset.SelectRows(idx));
    shards.push_back(std::move(shard));
  }
  return shards;
}

}  // namespace qens::data
