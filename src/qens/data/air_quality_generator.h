#ifndef QENS_DATA_AIR_QUALITY_GENERATOR_H_
#define QENS_DATA_AIR_QUALITY_GENERATOR_H_

/// \file air_quality_generator.h
/// Synthetic stand-in for the UCI "Beijing Multi-Site Air-Quality Data"
/// dataset the paper evaluates on (Section V-A: 10 station files, one file
/// per edge node, one chosen feature plus labels per node).
///
/// What the paper's evaluation actually depends on is the *cross-site
/// structure* of that dataset, not its exact values:
///   - every station shares the same feature schema;
///   - stations differ in feature ranges and distributions (different
///     geographical regions);
///   - the feature-target relationship differs across stations — the paper
///     explicitly motivates heterogeneity with regressions that are
///     "negative in one participant and positive in the other" (Section II).
/// The generator reproduces exactly these properties with a controllable
/// heterogeneity switch:
///   - kHomogeneous: every station draws from the same meteorological
///     process (same ranges, same linear PM2.5 response) — Fig. 1 /
///     Table I regime: any subset of nodes trains an equally good model;
///   - kHeterogeneous: stations are spread across temperature regions
///     (cold mountain sites to warm urban cores) and PM2.5 follows one
///     GLOBAL V-shaped curve in TEMP (high in cold winters from heating,
///     high in hot stagnation episodes, low in between). Each station
///     therefore sees a different LOCAL slope — negative at cold sites,
///     positive at warm ones, exactly the paper's Section II motivation
///     ("the regression ... is negative in one participant and positive in
///     the other") — while the pooled ground truth stays coherent. A model
///     trained on the wrong region extrapolates with the wrong slope and
///     fails badly on a query over another region (Table II / Fig. 7).
///
/// The physical model per station s and hour t:
///   TEMP  = season(t) + diurnal(t) + region_offset_s + noise
///   PRES  = 1013 - 0.9 * (TEMP - 14) + region_pres_s + noise
///   DEWP  = TEMP - humidity_gap_s + noise
///   WSPM  = exponential wind speed
///   PM2.5 (homogeneous)   = 60 + 2.5 * TEMP          - 6 WSPM + noise
///   PM2.5 (heterogeneous) = 40 + 0.12 * (TEMP - 10)^2 - 6 WSPM + noise
///   both clipped at 0.
/// Real UCI files can replace the generator through data/csv.h.

#include <cstdint>
#include <string>
#include <vector>

#include "qens/common/status.h"
#include "qens/data/dataset.h"

namespace qens::data {

/// Cross-station regime.
enum class Heterogeneity {
  kHomogeneous,    ///< Same process at every station (Fig. 1 / Table I).
  kHeterogeneous,  ///< Region shifts + sign-flipped slopes (Fig. 2 / Table II).
};

const char* HeterogeneityName(Heterogeneity h);

/// Per-station generation parameters (derived, but settable for tests).
struct StationProfile {
  std::string name;
  double temp_offset = 0.0;    ///< Region temperature shift (deg C).
  double pres_offset = 0.0;    ///< Region pressure shift (hPa).
  double humidity_gap = 6.0;   ///< TEMP - DEWP average gap.
  double pm_base = 60.0;       ///< PM2.5 level at the station's mean TEMP.
  /// LOCAL PM2.5-vs-TEMP slope at the station's mean temperature: the
  /// homogeneous global slope, or the V-curve's derivative there
  /// (negative at cold sites, positive at warm ones).
  double pm_slope = 2.5;
  double noise_scale = 1.0;    ///< Multiplies all noise terms.
};

/// Generator configuration.
struct AirQualityOptions {
  size_t num_stations = 10;          ///< Paper: N = 10 edge nodes.
  size_t samples_per_station = 2000; ///< Hourly samples per station.
  Heterogeneity heterogeneity = Heterogeneity::kHeterogeneous;
  uint64_t seed = 2023;
  /// When true, emit only TEMP as the feature (the paper "focused on one
  /// important feature and labels"); otherwise TEMP, PRES, DEWP, WSPM.
  bool single_feature = false;
  /// Piecewise-stationary drift: the station's sample range is split into
  /// `drift_phases` contiguous segments; each segment after the first adds a
  /// fresh temperature offset drawn uniformly from ±drift_shift (deg C),
  /// which cascades into PRES/DEWP/PM2.5 through the physical model. Drift
  /// draws come from a SEPARATE Rng stream keyed by drift_seed, so the
  /// default (1 phase / zero shift) is byte-identical to the legacy output.
  size_t drift_phases = 1;
  double drift_shift = 0.0;
  uint64_t drift_seed = 0;
};

/// Deterministic multi-station air-quality data generator.
class AirQualityGenerator {
 public:
  explicit AirQualityGenerator(AirQualityOptions options);

  const AirQualityOptions& options() const { return options_; }

  /// The derived per-station profiles (one per station).
  const std::vector<StationProfile>& profiles() const { return profiles_; }

  /// Generate station `index`'s local dataset. Deterministic per
  /// (options.seed, index). Fails when index is out of range.
  Result<Dataset> GenerateStation(size_t index) const;

  /// Generate all stations' datasets in index order.
  Result<std::vector<Dataset>> GenerateAll() const;

  /// Feature names the generated datasets carry.
  std::vector<std::string> FeatureNames() const;

  /// Target name ("PM2.5").
  static const char* TargetName() { return "PM2.5"; }

 private:
  void BuildProfiles();

  AirQualityOptions options_;
  std::vector<StationProfile> profiles_;
};

}  // namespace qens::data

#endif  // QENS_DATA_AIR_QUALITY_GENERATOR_H_
