#ifndef QENS_DATA_NORMALIZER_H_
#define QENS_DATA_NORMALIZER_H_

/// \file normalizer.h
/// Feature scaling fitted on one dataset and applicable to others (and to
/// query rectangles, so that queries issued in raw units can be mapped into
/// a model's normalized space).

#include <vector>

#include "qens/common/status.h"
#include "qens/query/hyper_rectangle.h"
#include "qens/tensor/matrix.h"

namespace qens::data {

/// How features are scaled.
enum class ScalingKind {
  kMinMax,    ///< x -> (x - min) / (max - min), degenerate dims -> 0.
  kStandard,  ///< x -> (x - mean) / std, zero-std dims -> 0.
};

/// A fitted, invertible column-wise scaler.
class Normalizer {
 public:
  /// Fit on the columns of `data` (m >= 1 rows).
  static Result<Normalizer> Fit(const Matrix& data, ScalingKind kind);

  ScalingKind kind() const { return kind_; }
  size_t dims() const { return offset_.size(); }

  /// Transform rows of `data` (width must match). Returns a new matrix.
  Result<Matrix> Transform(const Matrix& data) const;

  /// Inverse transform (round-trips Transform up to FP error).
  Result<Matrix> InverseTransform(const Matrix& data) const;

  /// Transform a box through the same affine map (per-dimension).
  Result<query::HyperRectangle> TransformBox(
      const query::HyperRectangle& box) const;

  /// Per-column affine parameters: transformed = (x - offset) * scale.
  const std::vector<double>& offset() const { return offset_; }
  const std::vector<double>& scale() const { return scale_; }

 private:
  Normalizer(ScalingKind kind, std::vector<double> offset,
             std::vector<double> scale)
      : kind_(kind), offset_(std::move(offset)), scale_(std::move(scale)) {}

  ScalingKind kind_;
  std::vector<double> offset_;
  std::vector<double> scale_;  ///< 0 marks a degenerate (constant) column.
};

}  // namespace qens::data

#endif  // QENS_DATA_NORMALIZER_H_
