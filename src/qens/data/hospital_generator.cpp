#include "qens/data/hospital_generator.h"

#include <algorithm>
#include <cmath>

#include "qens/common/rng.h"
#include "qens/common/string_util.h"

namespace qens::data {
namespace {

constexpr const char* kHospitalNames[] = {
    "StMary", "CityGeneral", "Riverside", "Northgate",
    "Lakeview", "Hillcrest", "Central", "Westend",
    "Parkside", "Eastbrook",
};
constexpr size_t kNumHospitalNames =
    sizeof(kHospitalNames) / sizeof(kHospitalNames[0]);

}  // namespace

HospitalGenerator::HospitalGenerator(HospitalOptions options)
    : options_(options) {
  BuildProfiles();
}

void HospitalGenerator::BuildProfiles() {
  profiles_.clear();
  profiles_.reserve(options_.num_hospitals);
  Rng rng(options_.seed);
  for (size_t h = 0; h < options_.num_hospitals; ++h) {
    HospitalProfile p;
    p.name = StrFormat("%s-%zu", kHospitalNames[h % kNumHospitalNames], h);
    if (options_.specialized) {
      // Spread cohorts from pediatric (~8y) to geriatric (~82y).
      const double span =
          options_.num_hospitals > 1
              ? static_cast<double>(h) /
                    static_cast<double>(options_.num_hospitals - 1)
              : 0.5;
      p.age_center = 8.0 + 74.0 * span + rng.Uniform(-3.0, 3.0);
      p.age_spread = rng.Uniform(6.0, 12.0);
    } else {
      p.age_center = 45.0;
      p.age_spread = 20.0;
    }
    p.noise_scale = rng.Uniform(0.7, 1.5);
    profiles_.push_back(std::move(p));
  }
}

double HospitalGenerator::TrueRisk(double age, double bmi, double sbp) {
  // Smooth sigmoid in age (inflection ~55y) + metabolic contributions.
  const double age_term = 60.0 / (1.0 + std::exp(-(age - 55.0) / 10.0));
  const double bmi_term = 0.8 * std::max(0.0, bmi - 25.0);
  const double sbp_term = 0.15 * std::max(0.0, sbp - 120.0);
  return age_term + bmi_term + sbp_term;
}

Result<Dataset> HospitalGenerator::GenerateHospital(size_t index) const {
  if (index >= profiles_.size()) {
    return Status::OutOfRange(StrFormat(
        "GenerateHospital: index %zu >= %zu", index, profiles_.size()));
  }
  if (options_.patients_per_hospital == 0) {
    return Status::InvalidArgument(
        "GenerateHospital: patients_per_hospital must be > 0");
  }
  if (options_.drift_phases == 0) {
    return Status::InvalidArgument(
        "GenerateHospital: drift_phases must be >= 1");
  }
  const HospitalProfile& p = profiles_[index];
  Rng rng = Rng(options_.seed).Fork(index + 101);

  // Per-phase age-center shifts from a separate stream so the legacy
  // (drift-off) byte stream is untouched.
  const bool drift_on =
      options_.drift_phases > 1 && options_.drift_shift != 0.0;
  std::vector<double> phase_offset;
  if (drift_on) {
    Rng drift_rng = Rng(options_.drift_seed).Fork(index + 101);
    phase_offset.resize(options_.drift_phases, 0.0);
    for (size_t ph = 1; ph < options_.drift_phases; ++ph) {
      phase_offset[ph] =
          drift_rng.Uniform(-options_.drift_shift, options_.drift_shift);
    }
  }

  const size_t m = options_.patients_per_hospital;
  Matrix features(m, 3);
  Matrix targets(m, 1);
  for (size_t i = 0; i < m; ++i) {
    double center = p.age_center;
    if (drift_on) {
      center += phase_offset[i * options_.drift_phases / m];
    }
    const double age =
        std::clamp(rng.Gaussian(center, p.age_spread), 0.0, 100.0);
    const double bmi = std::clamp(
        18.0 + 0.12 * age + rng.Gaussian(0.0, 3.0 * p.noise_scale), 14.0,
        50.0);
    const double sbp = std::clamp(
        95.0 + 0.5 * age + 0.8 * (bmi - 25.0) +
            rng.Gaussian(0.0, 8.0 * p.noise_scale),
        80.0, 220.0);
    const double risk =
        std::max(0.0, TrueRisk(age, bmi, sbp) +
                          rng.Gaussian(0.0, 3.0 * p.noise_scale));
    features(i, 0) = age;
    features(i, 1) = bmi;
    features(i, 2) = sbp;
    targets(i, 0) = risk;
  }
  return Dataset::Create(std::move(features), std::move(targets),
                         FeatureNames(), TargetName());
}

Result<std::vector<Dataset>> HospitalGenerator::GenerateAll() const {
  std::vector<Dataset> out;
  out.reserve(profiles_.size());
  for (size_t h = 0; h < profiles_.size(); ++h) {
    QENS_ASSIGN_OR_RETURN(Dataset d, GenerateHospital(h));
    out.push_back(std::move(d));
  }
  return out;
}

}  // namespace qens::data
