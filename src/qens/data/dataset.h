#ifndef QENS_DATA_DATASET_H_
#define QENS_DATA_DATASET_H_

/// \file dataset.h
/// A supervised dataset: feature matrix X (m x d), target matrix y (m x 1),
/// and column names. This is what each edge node holds locally (the paper's
/// D_k = {xi_1, ..., xi_m} with xi = (x, y)).

#include <string>
#include <vector>

#include "qens/common/status.h"
#include "qens/query/hyper_rectangle.h"
#include "qens/tensor/matrix.h"

namespace qens::data {

/// Feature/target container with schema metadata.
class Dataset {
 public:
  Dataset() = default;

  /// Construct with validation. Fails when row counts differ, the target is
  /// not a single column, or names do not match the feature width.
  static Result<Dataset> Create(Matrix features, Matrix targets,
                                std::vector<std::string> feature_names,
                                std::string target_name);

  /// Construct with auto-generated names ("f0", "f1", ..., "target").
  static Result<Dataset> Create(Matrix features, Matrix targets);

  size_t NumSamples() const { return features_.rows(); }
  size_t NumFeatures() const { return features_.cols(); }
  bool empty() const { return features_.rows() == 0; }

  const Matrix& features() const { return features_; }
  const Matrix& targets() const { return targets_; }
  const std::vector<std::string>& feature_names() const {
    return feature_names_;
  }
  const std::string& target_name() const { return target_name_; }

  /// Targets as a flat vector (single column).
  std::vector<double> TargetVector() const { return targets_.Col(0); }

  /// Subset by row indices (features and targets in lock-step).
  Result<Dataset> SelectRows(const std::vector<size_t>& rows) const;

  /// Concatenate another dataset with the same schema below this one.
  Result<Dataset> Concat(const Dataset& other) const;

  /// Tight bounding box of the features — the node's "data space".
  Result<query::HyperRectangle> FeatureSpace() const;

  /// Index of a feature by name; NotFound if absent.
  Result<size_t> FeatureIndex(const std::string& name) const;

 private:
  Matrix features_;
  Matrix targets_;
  std::vector<std::string> feature_names_;
  std::string target_name_;
};

}  // namespace qens::data

#endif  // QENS_DATA_DATASET_H_
