#include "qens/data/normalizer.h"

#include <cmath>

#include "qens/common/string_util.h"

namespace qens::data {

Result<Normalizer> Normalizer::Fit(const Matrix& data, ScalingKind kind) {
  if (data.rows() == 0 || data.cols() == 0) {
    return Status::InvalidArgument("Normalizer::Fit: empty data");
  }
  const size_t d = data.cols();
  std::vector<double> offset(d, 0.0);
  std::vector<double> scale(d, 0.0);

  if (kind == ScalingKind::kMinMax) {
    for (size_t c = 0; c < d; ++c) {
      double lo = data(0, c), hi = data(0, c);
      for (size_t r = 1; r < data.rows(); ++r) {
        lo = std::min(lo, data(r, c));
        hi = std::max(hi, data(r, c));
      }
      offset[c] = lo;
      scale[c] = hi > lo ? 1.0 / (hi - lo) : 0.0;
    }
  } else {
    for (size_t c = 0; c < d; ++c) {
      double mean = 0.0;
      for (size_t r = 0; r < data.rows(); ++r) mean += data(r, c);
      mean /= static_cast<double>(data.rows());
      double var = 0.0;
      for (size_t r = 0; r < data.rows(); ++r) {
        const double dv = data(r, c) - mean;
        var += dv * dv;
      }
      var /= static_cast<double>(data.rows());
      offset[c] = mean;
      scale[c] = var > 0.0 ? 1.0 / std::sqrt(var) : 0.0;
    }
  }
  return Normalizer(kind, std::move(offset), std::move(scale));
}

Result<Matrix> Normalizer::Transform(const Matrix& data) const {
  if (data.cols() != dims()) {
    return Status::InvalidArgument(
        StrFormat("Normalizer::Transform: %zu cols, fitted on %zu",
                  data.cols(), dims()));
  }
  Matrix out = data;
  for (size_t r = 0; r < out.rows(); ++r) {
    double* p = out.RowPtr(r);
    for (size_t c = 0; c < dims(); ++c) {
      p[c] = (p[c] - offset_[c]) * scale_[c];
    }
  }
  return out;
}

Result<Matrix> Normalizer::InverseTransform(const Matrix& data) const {
  if (data.cols() != dims()) {
    return Status::InvalidArgument(
        StrFormat("Normalizer::InverseTransform: %zu cols, fitted on %zu",
                  data.cols(), dims()));
  }
  Matrix out = data;
  for (size_t r = 0; r < out.rows(); ++r) {
    double* p = out.RowPtr(r);
    for (size_t c = 0; c < dims(); ++c) {
      // Degenerate columns collapse to the offset (their constant value).
      p[c] = scale_[c] != 0.0 ? p[c] / scale_[c] + offset_[c] : offset_[c];
    }
  }
  return out;
}

Result<query::HyperRectangle> Normalizer::TransformBox(
    const query::HyperRectangle& box) const {
  if (box.dims() != dims()) {
    return Status::InvalidArgument(
        StrFormat("Normalizer::TransformBox: %zu dims, fitted on %zu",
                  box.dims(), dims()));
  }
  std::vector<query::Interval> out(dims());
  for (size_t c = 0; c < dims(); ++c) {
    const double lo = (box.dim(c).lo - offset_[c]) * scale_[c];
    const double hi = (box.dim(c).hi - offset_[c]) * scale_[c];
    out[c] = query::Interval(std::min(lo, hi), std::max(lo, hi));
  }
  return query::HyperRectangle(std::move(out));
}

}  // namespace qens::data
