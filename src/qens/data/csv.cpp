#include "qens/data/csv.h"

#include <fstream>
#include <sstream>

#include "qens/common/string_util.h"

namespace qens::data {
namespace {

/// Split one CSV record; no quoting support (the UCI air-quality files are
/// plain numeric CSV).
std::vector<std::string> SplitRecord(const std::string& line, char delim) {
  return Split(line, delim);
}

}  // namespace

Result<Dataset> ParseCsvDataset(const std::string& text,
                                const CsvReadOptions& options) {
  std::istringstream in(text);
  std::string line;

  // Collect non-empty lines.
  std::vector<std::string> lines;
  while (std::getline(in, line)) {
    if (!Trim(line).empty()) lines.push_back(line);
  }
  if (lines.empty()) return Status::InvalidArgument("csv: empty input");

  std::vector<std::string> header;
  size_t first_data_line = 0;
  if (options.has_header) {
    header = SplitRecord(lines[0], options.delimiter);
    for (auto& h : header) h = Trim(h);
    first_data_line = 1;
  } else {
    const size_t width = SplitRecord(lines[0], options.delimiter).size();
    header.resize(width);
    for (size_t i = 0; i < width; ++i) header[i] = StrFormat("c%zu", i);
  }
  if (header.empty()) return Status::InvalidArgument("csv: empty header");

  auto column_index = [&](const std::string& name) -> Result<size_t> {
    for (size_t i = 0; i < header.size(); ++i) {
      if (header[i] == name) return i;
    }
    return Status::NotFound("csv: no column named '" + name + "'");
  };

  // Resolve the target column.
  size_t target_idx;
  if (options.target_column.empty()) {
    target_idx = header.size() - 1;
  } else {
    QENS_ASSIGN_OR_RETURN(target_idx, column_index(options.target_column));
  }

  // Resolve feature columns.
  std::vector<size_t> feature_idx;
  if (options.feature_columns.empty()) {
    for (size_t i = 0; i < header.size(); ++i) {
      if (i != target_idx) feature_idx.push_back(i);
    }
  } else {
    for (const auto& name : options.feature_columns) {
      QENS_ASSIGN_OR_RETURN(size_t idx, column_index(name));
      if (idx == target_idx) {
        return Status::InvalidArgument(
            "csv: feature column '" + name + "' is also the target");
      }
      feature_idx.push_back(idx);
    }
  }
  if (feature_idx.empty()) {
    return Status::InvalidArgument("csv: no feature columns");
  }

  std::vector<double> feat_flat;
  std::vector<double> targ_flat;
  size_t rows = 0;
  for (size_t li = first_data_line; li < lines.size(); ++li) {
    const std::vector<std::string> cells =
        SplitRecord(lines[li], options.delimiter);
    if (cells.size() != header.size()) {
      if (options.skip_bad_rows) continue;
      return Status::InvalidArgument(
          StrFormat("csv: line %zu has %zu cells, expected %zu", li + 1,
                    cells.size(), header.size()));
    }
    std::vector<double> row(feature_idx.size());
    bool bad = false;
    for (size_t f = 0; f < feature_idx.size(); ++f) {
      Result<double> v = ParseDouble(cells[feature_idx[f]]);
      if (!v.ok()) {
        bad = true;
        break;
      }
      row[f] = v.value();
    }
    Result<double> tv = ParseDouble(cells[target_idx]);
    if (!tv.ok()) bad = true;
    if (bad) {
      if (options.skip_bad_rows) continue;
      return Status::InvalidArgument(
          StrFormat("csv: unparseable cell on line %zu", li + 1));
    }
    feat_flat.insert(feat_flat.end(), row.begin(), row.end());
    targ_flat.push_back(tv.value());
    ++rows;
  }
  if (rows == 0) return Status::InvalidArgument("csv: no valid data rows");

  QENS_ASSIGN_OR_RETURN(
      Matrix features,
      Matrix::FromFlat(rows, feature_idx.size(), std::move(feat_flat)));
  QENS_ASSIGN_OR_RETURN(Matrix targets,
                        Matrix::FromFlat(rows, 1, std::move(targ_flat)));
  std::vector<std::string> names(feature_idx.size());
  for (size_t f = 0; f < feature_idx.size(); ++f) {
    names[f] = header[feature_idx[f]];
  }
  return Dataset::Create(std::move(features), std::move(targets),
                         std::move(names), header[target_idx]);
}

Result<Dataset> ReadCsvDataset(const std::string& path,
                               const CsvReadOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::IOError("csv: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseCsvDataset(buf.str(), options);
}

std::string FormatCsvDataset(const Dataset& dataset, char delimiter) {
  std::ostringstream out;
  for (size_t i = 0; i < dataset.feature_names().size(); ++i) {
    out << dataset.feature_names()[i] << delimiter;
  }
  out << dataset.target_name() << "\n";
  char buf[64];
  for (size_t r = 0; r < dataset.NumSamples(); ++r) {
    for (size_t c = 0; c < dataset.NumFeatures(); ++c) {
      std::snprintf(buf, sizeof(buf), "%.10g", dataset.features()(r, c));
      out << buf << delimiter;
    }
    std::snprintf(buf, sizeof(buf), "%.10g", dataset.targets()(r, 0));
    out << buf << "\n";
  }
  return out.str();
}

Status WriteCsvDataset(const Dataset& dataset, const std::string& path,
                       char delimiter) {
  std::ofstream out(path);
  if (!out) return Status::IOError("csv: cannot open for write " + path);
  out << FormatCsvDataset(dataset, delimiter);
  if (!out) return Status::IOError("csv: write failed " + path);
  return Status::OK();
}

}  // namespace qens::data
