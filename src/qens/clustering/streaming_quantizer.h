#ifndef QENS_CLUSTERING_STREAMING_QUANTIZER_H_
#define QENS_CLUSTERING_STREAMING_QUANTIZER_H_

/// \file streaming_quantizer.h
/// Incremental maintenance of a node's cluster digests as new samples
/// stream in. The paper's edge nodes "collect data locally" continuously
/// (Section III-A); re-running k-means per sample is wasteful, so the
/// quantizer absorbs new points into the existing structure:
///
///   - each new sample joins its nearest centroid's cluster;
///   - the centroid moves by the running-mean update
///       u  <-  u + (x - u) / n
///   - the cluster's bounding box expands to cover the sample.
///
/// Absorption degrades quantization quality over time (boxes only grow),
/// so the quantizer tracks *drift* — the fraction of absorbed samples —
/// and reports when a full re-quantization (Rebuild) is advisable.

#include <cstddef>
#include <vector>

#include "qens/clustering/cluster_summary.h"
#include "qens/clustering/kmeans.h"
#include "qens/common/status.h"
#include "qens/tensor/matrix.h"

namespace qens::clustering {

/// Streaming wrapper over a k-means fit.
class StreamingQuantizer {
 public:
  /// Quantize the initial data with `options`. Fails like KMeans::Fit.
  static Result<StreamingQuantizer> Create(const Matrix& initial_data,
                                           const KMeansOptions& options);

  size_t k() const { return options_.k; }
  size_t total_samples() const { return total_samples_; }
  size_t absorbed_samples() const { return absorbed_samples_; }

  /// Current digests (always consistent with everything absorbed so far).
  const std::vector<ClusterSummary>& summaries() const { return summaries_; }

  /// Absorb one d-dimensional sample. Fails on width mismatch.
  /// Returns the cluster id the sample joined.
  Result<size_t> Absorb(const std::vector<double>& sample);

  /// Absorb every row of `rows`.
  Status AbsorbRows(const Matrix& rows);

  /// Fraction of current samples that were absorbed (vs part of the last
  /// full quantization). High drift means the digests may be stale.
  double Drift() const;

  /// True once Drift() exceeds `threshold` (default 0.3).
  bool NeedsRebuild(double threshold = 0.3) const;

  /// Re-run full k-means over all retained samples and reset drift.
  Status Rebuild();

 private:
  StreamingQuantizer(KMeansOptions options, Matrix data,
                     std::vector<size_t> assignment,
                     std::vector<ClusterSummary> summaries, Matrix centroids);

  KMeansOptions options_;
  Matrix data_;                       ///< All retained samples (row-major).
  std::vector<size_t> assignment_;    ///< Row -> cluster id.
  std::vector<ClusterSummary> summaries_;
  Matrix centroids_;                  ///< (k x d) running means.
  size_t total_samples_ = 0;
  size_t absorbed_samples_ = 0;       ///< Since the last full quantization.
};

}  // namespace qens::clustering

#endif  // QENS_CLUSTERING_STREAMING_QUANTIZER_H_
