#ifndef QENS_CLUSTERING_CLUSTER_SUMMARY_H_
#define QENS_CLUSTERING_CLUSTER_SUMMARY_H_

/// \file cluster_summary.h
/// The compact per-cluster metadata a node shares with the leader: centroid,
/// bounding hyper-rectangle, and population. This is the *only* data-derived
/// information that leaves a node in the paper's protocol (Section III-C:
/// "The nodes just send to the leader the boundaries of their clusters and
/// the number of the clusters per node, yielding O(1) communication").

#include <cstddef>
#include <string>
#include <vector>

#include "qens/common/status.h"
#include "qens/query/hyper_rectangle.h"
#include "qens/tensor/matrix.h"

namespace qens::clustering {

/// Privacy-preserving cluster digest: what a node publishes per cluster.
struct ClusterSummary {
  std::vector<double> centroid;   ///< d-dimensional representative u_k.
  query::HyperRectangle bounds;   ///< Per-dimension [min, max] box.
  size_t size = 0;                ///< Number of member samples.

  size_t dims() const { return centroid.size(); }

  /// Serialized size in bytes (for the network accounting substrate).
  size_t WireBytes() const;

  std::string ToString() const;
};

/// Build the summary of a set of rows of `data` (the members of one
/// cluster). Fails if `member_rows` is empty or any index is out of range.
Result<ClusterSummary> SummarizeCluster(const Matrix& data,
                                        const std::vector<size_t>& member_rows);

/// Build summaries for all clusters of an assignment vector (values in
/// [0, k)). Clusters with no members yield a summary with size == 0 and an
/// empty (invalid) bounds box; callers treat those as non-supporting.
Result<std::vector<ClusterSummary>> SummarizeClusters(
    const Matrix& data, const std::vector<size_t>& assignment, size_t k);

}  // namespace qens::clustering

#endif  // QENS_CLUSTERING_CLUSTER_SUMMARY_H_
