#include "qens/clustering/cluster_summary.h"

#include <sstream>

#include "qens/common/string_util.h"

namespace qens::clustering {

size_t ClusterSummary::WireBytes() const {
  // centroid + bounding box (2 doubles/dim) + population count.
  return centroid.size() * sizeof(double) + bounds.WireBytes() +
         sizeof(uint64_t);
}

std::string ClusterSummary::ToString() const {
  std::ostringstream out;
  out << "cluster{size=" << size << ", bounds=" << bounds.ToString() << "}";
  return out.str();
}

Result<ClusterSummary> SummarizeCluster(const Matrix& data,
                                        const std::vector<size_t>& member_rows) {
  if (member_rows.empty()) {
    return Status::InvalidArgument("SummarizeCluster: no member rows");
  }
  ClusterSummary summary;
  summary.size = member_rows.size();
  summary.centroid.assign(data.cols(), 0.0);
  for (size_t r : member_rows) {
    if (r >= data.rows()) {
      return Status::OutOfRange(
          StrFormat("SummarizeCluster: row %zu >= %zu", r, data.rows()));
    }
    const double* p = data.RowPtr(r);
    for (size_t c = 0; c < data.cols(); ++c) summary.centroid[c] += p[c];
  }
  for (double& v : summary.centroid) {
    v /= static_cast<double>(member_rows.size());
  }
  QENS_ASSIGN_OR_RETURN(summary.bounds,
                        query::HyperRectangle::BoundingBox(data, member_rows));
  return summary;
}

Result<std::vector<ClusterSummary>> SummarizeClusters(
    const Matrix& data, const std::vector<size_t>& assignment, size_t k) {
  if (assignment.size() != data.rows()) {
    return Status::InvalidArgument(
        StrFormat("SummarizeClusters: %zu assignments for %zu rows",
                  assignment.size(), data.rows()));
  }
  std::vector<std::vector<size_t>> members(k);
  for (size_t r = 0; r < assignment.size(); ++r) {
    if (assignment[r] >= k) {
      return Status::OutOfRange(
          StrFormat("SummarizeClusters: assignment %zu >= k=%zu",
                    assignment[r], k));
    }
    members[assignment[r]].push_back(r);
  }
  std::vector<ClusterSummary> out(k);
  for (size_t c = 0; c < k; ++c) {
    if (members[c].empty()) {
      // Empty cluster: size 0, no bounds; never supports any query.
      out[c] = ClusterSummary{};
      continue;
    }
    QENS_ASSIGN_OR_RETURN(out[c], SummarizeCluster(data, members[c]));
  }
  return out;
}

}  // namespace qens::clustering
