#include "qens/clustering/silhouette.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "qens/common/string_util.h"

namespace qens::clustering {

Result<double> MeanSilhouette(const Matrix& data,
                              const std::vector<size_t>& assignment,
                              size_t k) {
  const size_t m = data.rows();
  if (m == 0) return Status::InvalidArgument("silhouette: empty data");
  if (assignment.size() != m) {
    return Status::InvalidArgument("silhouette: assignment size mismatch");
  }
  std::vector<size_t> sizes(k, 0);
  for (size_t a : assignment) {
    if (a >= k) return Status::OutOfRange("silhouette: assignment >= k");
    ++sizes[a];
  }
  size_t non_empty = 0;
  for (size_t s : sizes) non_empty += s > 0 ? 1 : 0;
  if (non_empty < 2) {
    return Status::InvalidArgument(
        "silhouette: need at least 2 non-empty clusters");
  }

  // For each sample, mean distance to every cluster.
  double total = 0.0;
  std::vector<double> dist_sum(k);
  for (size_t i = 0; i < m; ++i) {
    std::fill(dist_sum.begin(), dist_sum.end(), 0.0);
    const double* pi = data.RowPtr(i);
    for (size_t j = 0; j < m; ++j) {
      if (i == j) continue;
      const double* pj = data.RowPtr(j);
      double acc = 0.0;
      for (size_t d = 0; d < data.cols(); ++d) {
        const double delta = pi[d] - pj[d];
        acc += delta * delta;
      }
      dist_sum[assignment[j]] += std::sqrt(acc);
    }
    const size_t own = assignment[i];
    if (sizes[own] <= 1) {
      // Singleton: silhouette 0 by convention.
      continue;
    }
    const double a = dist_sum[own] / static_cast<double>(sizes[own] - 1);
    double b = std::numeric_limits<double>::infinity();
    for (size_t c = 0; c < k; ++c) {
      if (c == own || sizes[c] == 0) continue;
      b = std::min(b, dist_sum[c] / static_cast<double>(sizes[c]));
    }
    const double denom = std::max(a, b);
    total += denom > 0.0 ? (b - a) / denom : 0.0;
  }
  return total / static_cast<double>(m);
}

Result<std::vector<KQuality>> SweepK(const Matrix& data, size_t k_min,
                                     size_t k_max,
                                     const KMeansOptions& base_options) {
  if (k_min < 2) return Status::InvalidArgument("SweepK: k_min must be >= 2");
  if (k_min > k_max) {
    return Status::InvalidArgument("SweepK: k_min > k_max");
  }
  std::vector<KQuality> out;
  out.reserve(k_max - k_min + 1);
  for (size_t k = k_min; k <= k_max; ++k) {
    KMeansOptions options = base_options;
    options.k = k;
    KMeans kmeans(options);
    QENS_ASSIGN_OR_RETURN(KMeansResult fit, kmeans.Fit(data));
    KQuality q;
    q.k = k;
    q.inertia = fit.inertia;
    q.converged = fit.converged;
    // Degenerate data can collapse to one cluster; report silhouette 0.
    Result<double> sil = MeanSilhouette(data, fit.assignment, k);
    q.silhouette = sil.ok() ? *sil : 0.0;
    out.push_back(q);
  }
  return out;
}

Result<size_t> BestKBySilhouette(const std::vector<KQuality>& sweep) {
  if (sweep.empty()) {
    return Status::InvalidArgument("BestKBySilhouette: empty sweep");
  }
  size_t best = 0;
  for (size_t i = 1; i < sweep.size(); ++i) {
    if (sweep[i].silhouette > sweep[best].silhouette) best = i;
  }
  return sweep[best].k;
}

}  // namespace qens::clustering
