#include "qens/clustering/streaming_quantizer.h"

#include <algorithm>
#include <limits>

#include "qens/common/string_util.h"

namespace qens::clustering {

StreamingQuantizer::StreamingQuantizer(KMeansOptions options, Matrix data,
                                       std::vector<size_t> assignment,
                                       std::vector<ClusterSummary> summaries,
                                       Matrix centroids)
    : options_(options),
      data_(std::move(data)),
      assignment_(std::move(assignment)),
      summaries_(std::move(summaries)),
      centroids_(std::move(centroids)),
      total_samples_(data_.rows()) {}

Result<StreamingQuantizer> StreamingQuantizer::Create(
    const Matrix& initial_data, const KMeansOptions& options) {
  KMeans kmeans(options);
  QENS_ASSIGN_OR_RETURN(KMeansResult fit, kmeans.Fit(initial_data));
  QENS_ASSIGN_OR_RETURN(
      std::vector<ClusterSummary> summaries,
      SummarizeClusters(initial_data, fit.assignment, options.k));
  return StreamingQuantizer(options, initial_data, std::move(fit.assignment),
                            std::move(summaries), std::move(fit.centroids));
}

Result<size_t> StreamingQuantizer::Absorb(const std::vector<double>& sample) {
  if (sample.size() != data_.cols()) {
    return Status::InvalidArgument(
        StrFormat("Absorb: sample has %zu dims, quantizer has %zu",
                  sample.size(), data_.cols()));
  }
  // Nearest non-empty centroid.
  size_t best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (size_t c = 0; c < centroids_.rows(); ++c) {
    if (summaries_[c].size == 0) continue;
    double acc = 0.0;
    const double* u = centroids_.RowPtr(c);
    for (size_t d = 0; d < sample.size(); ++d) {
      const double delta = sample[d] - u[d];
      acc += delta * delta;
    }
    if (acc < best_d) {
      best_d = acc;
      best = c;
    }
  }

  // Append the sample to the retained data.
  {
    Matrix grown(data_.rows() + 1, data_.cols());
    std::copy(data_.data().begin(), data_.data().end(),
              grown.data().begin());
    std::copy(sample.begin(), sample.end(), grown.RowPtr(data_.rows()));
    data_ = std::move(grown);
  }
  assignment_.push_back(best);
  ++total_samples_;
  ++absorbed_samples_;

  // Running-mean centroid update and box expansion.
  ClusterSummary& summary = summaries_[best];
  const double n = static_cast<double>(summary.size + 1);
  double* u = centroids_.RowPtr(best);
  for (size_t d = 0; d < sample.size(); ++d) {
    u[d] += (sample[d] - u[d]) / n;
    summary.centroid[d] = u[d];
    summary.bounds.dim(d).lo = std::min(summary.bounds.dim(d).lo, sample[d]);
    summary.bounds.dim(d).hi = std::max(summary.bounds.dim(d).hi, sample[d]);
  }
  ++summary.size;
  return best;
}

Status StreamingQuantizer::AbsorbRows(const Matrix& rows) {
  for (size_t r = 0; r < rows.rows(); ++r) {
    QENS_RETURN_NOT_OK(Absorb(rows.Row(r)).status());
  }
  return Status::OK();
}

double StreamingQuantizer::Drift() const {
  return total_samples_ > 0 ? static_cast<double>(absorbed_samples_) /
                                  static_cast<double>(total_samples_)
                            : 0.0;
}

bool StreamingQuantizer::NeedsRebuild(double threshold) const {
  return Drift() > threshold;
}

Status StreamingQuantizer::Rebuild() {
  KMeans kmeans(options_);
  QENS_ASSIGN_OR_RETURN(KMeansResult fit, kmeans.Fit(data_));
  QENS_ASSIGN_OR_RETURN(
      summaries_, SummarizeClusters(data_, fit.assignment, options_.k));
  assignment_ = std::move(fit.assignment);
  centroids_ = std::move(fit.centroids);
  absorbed_samples_ = 0;
  return Status::OK();
}

}  // namespace qens::clustering
