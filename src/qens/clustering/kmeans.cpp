#include "qens/clustering/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>

#include "qens/common/string_util.h"
#include "qens/common/thread_pool.h"
#include "qens/obs/metrics.h"
#include "qens/obs/trace.h"
#include "qens/tensor/vector_ops.h"

namespace qens::clustering {
namespace {

/// Squared distance between data row r and centroid row c.
double RowCentroidDist2(const Matrix& data, size_t r, const Matrix& centroids,
                        size_t c) {
  const double* a = data.RowPtr(r);
  const double* b = centroids.RowPtr(c);
  double acc = 0.0;
  for (size_t i = 0; i < data.cols(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

/// Index of the nearest centroid to data row r (ties break low).
size_t NearestCentroid(const Matrix& data, size_t r, const Matrix& centroids,
                       double* out_dist2) {
  size_t best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (size_t c = 0; c < centroids.rows(); ++c) {
    const double d = RowCentroidDist2(data, r, centroids, c);
    if (d < best_d) {
      best_d = d;
      best = c;
    }
  }
  if (out_dist2 != nullptr) *out_dist2 = best_d;
  return best;
}

/// Fixed chunk height for the parallel Lloyd steps. Chunk boundaries depend
/// only on the row count — never on the worker count — so per-chunk partial
/// sums reduced in ascending chunk order are bit-identical across thread
/// counts, and a dataset that fits one chunk reproduces the sequential
/// accumulation exactly.
constexpr size_t kAssignChunkRows = 2048;

/// Per-chunk scratch for the fused assignment + partial-update step.
struct ChunkPartial {
  std::vector<size_t> counts;  ///< Rows assigned per cluster in this chunk.
  Matrix sums;                 ///< (k x d) per-cluster row sums, this chunk.
};

/// Assign every row in [begin, end) to its nearest centroid, accumulating
/// this chunk's per-cluster counts and coordinate sums.
void AssignChunk(const Matrix& data, size_t begin, size_t end,
                 const Matrix& centroids, std::vector<size_t>* assignment,
                 ChunkPartial* partial) {
  const size_t d = data.cols();
  std::fill(partial->counts.begin(), partial->counts.end(), 0);
  partial->sums.Fill(0.0);
  for (size_t r = begin; r < end; ++r) {
    const size_t c = NearestCentroid(data, r, centroids, nullptr);
    (*assignment)[r] = c;
    ++partial->counts[c];
    const double* src = data.RowPtr(r);
    double* dst = partial->sums.RowPtr(c);
    for (size_t i = 0; i < d; ++i) dst[i] += src[i];
  }
}

}  // namespace

std::vector<size_t> KMeansResult::ClusterSizes(size_t k) const {
  std::vector<size_t> sizes(k, 0);
  for (size_t a : assignment) {
    if (a < k) ++sizes[a];
  }
  return sizes;
}

Status KMeans::Validate(const Matrix& data) const {
  if (data.rows() == 0 || data.cols() == 0) {
    return Status::InvalidArgument("kmeans: empty data");
  }
  if (options_.k == 0) return Status::InvalidArgument("kmeans: k must be > 0");
  if (options_.max_iterations == 0) {
    return Status::InvalidArgument("kmeans: max_iterations must be > 0");
  }
  if (options_.tolerance < 0.0) {
    return Status::InvalidArgument("kmeans: tolerance must be >= 0");
  }
  return Status::OK();
}

void KMeans::Initialize(const Matrix& data, Rng* rng,
                        Matrix* centroids) const {
  const size_t m = data.rows();
  const size_t k = centroids->rows();

  if (options_.init == KMeansInit::kRandomPoints || k >= m) {
    // k distinct points (repeat cyclically if k > m; the duplicates will
    // collapse to empty clusters and be repaired by Lloyd's loop).
    std::vector<size_t> pick =
        rng->SampleWithoutReplacement(m, std::min(k, m));
    for (size_t c = 0; c < k; ++c) {
      const size_t row = pick[c % pick.size()];
      std::copy(data.RowPtr(row), data.RowPtr(row) + data.cols(),
                centroids->RowPtr(c));
    }
    return;
  }

  // k-means++: first centroid uniform, then D^2 weighting.
  std::vector<double> dist2(m, std::numeric_limits<double>::infinity());
  size_t first = static_cast<size_t>(rng->UniformInt(m));
  std::copy(data.RowPtr(first), data.RowPtr(first) + data.cols(),
            centroids->RowPtr(0));
  for (size_t c = 1; c < k; ++c) {
    for (size_t r = 0; r < m; ++r) {
      dist2[r] = std::min(dist2[r], RowCentroidDist2(data, r, *centroids, c - 1));
    }
    const size_t pick = rng->WeightedIndex(dist2);
    std::copy(data.RowPtr(pick), data.RowPtr(pick) + data.cols(),
              centroids->RowPtr(c));
  }
}

Result<KMeansResult> KMeans::Fit(const Matrix& data) const {
  obs::TraceSpan span("kmeans.fit");
  QENS_RETURN_NOT_OK(Validate(data));
  const size_t m = data.rows();
  const size_t d = data.cols();
  const size_t k = options_.k;

  Rng rng(options_.seed);
  KMeansResult result;
  result.centroids = Matrix(k, d);
  Initialize(data, &rng, &result.centroids);
  result.assignment.assign(m, 0);

  Matrix new_centroids(k, d);
  std::vector<size_t> counts(k, 0);

  // Parallel Lloyd steps (opt-in): one pool per Fit invocation, reused
  // across iterations. num_threads <= 1 keeps the exact sequential loops.
  std::unique_ptr<common::ThreadPool> pool;
  std::vector<ChunkPartial> partials;
  if (options_.num_threads > 1 && m > 1) {
    pool = std::make_unique<common::ThreadPool>(options_.num_threads);
    const size_t num_chunks = (m + kAssignChunkRows - 1) / kAssignChunkRows;
    partials.resize(num_chunks);
    for (ChunkPartial& partial : partials) {
      partial.counts.assign(k, 0);
      partial.sums = Matrix(k, d);
    }
  }

  for (size_t iter = 0; iter < options_.max_iterations; ++iter) {
    ++result.iterations;

    if (pool != nullptr) {
      // Fused assignment + partial update: each chunk scans its contiguous
      // row range; partials are then reduced in ascending chunk order
      // (chunk 0 copied, later chunks added), which fixes the floating-
      // point summation order independent of the worker count.
      pool->ParallelChunks(
          m, kAssignChunkRows, [&](size_t chunk, size_t begin, size_t end) {
            AssignChunk(data, begin, end, result.centroids,
                        &result.assignment, &partials[chunk]);
          });
      counts = partials[0].counts;
      new_centroids = partials[0].sums;
      for (size_t c = 1; c < partials.size(); ++c) {
        for (size_t i = 0; i < k; ++i) counts[i] += partials[c].counts[i];
        const std::vector<double>& src = partials[c].sums.data();
        std::vector<double>& dst = new_centroids.data();
        for (size_t i = 0; i < dst.size(); ++i) dst[i] += src[i];
      }
    } else {
      // Assignment step.
      for (size_t r = 0; r < m; ++r) {
        result.assignment[r] =
            NearestCentroid(data, r, result.centroids, nullptr);
      }

      // Update step.
      new_centroids.Fill(0.0);
      std::fill(counts.begin(), counts.end(), 0);
      for (size_t r = 0; r < m; ++r) {
        const size_t c = result.assignment[r];
        ++counts[c];
        const double* src = data.RowPtr(r);
        double* dst = new_centroids.RowPtr(c);
        for (size_t i = 0; i < d; ++i) dst[i] += src[i];
      }
    }
    // Repair distances must be snapshotted before any re-seed mutates
    // `assignment`: scanning against the mutated array re-measures a row
    // just donated to one empty cluster against that cluster's stale old
    // centroid, so a second empty cluster in the same iteration can pick
    // the same row again and the two centroids collapse into duplicates.
    std::vector<double> repair_dist2;
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Empty-cluster repair: re-seed at the point farthest from its
        // assigned centroid (the classic farthest-point heuristic).
        if (repair_dist2.empty()) {
          repair_dist2.resize(m);
          for (size_t r = 0; r < m; ++r) {
            repair_dist2[r] = RowCentroidDist2(data, r, result.centroids,
                                               result.assignment[r]);
          }
        }
        size_t worst_row = 0;
        double worst = -1.0;
        for (size_t r = 0; r < m; ++r) {
          if (repair_dist2[r] > worst) {
            worst = repair_dist2[r];
            worst_row = r;
          }
        }
        std::copy(data.RowPtr(worst_row), data.RowPtr(worst_row) + d,
                  new_centroids.RowPtr(c));
        result.assignment[worst_row] = c;
        // A donated row is consumed for this iteration; it must never seed
        // a second empty cluster.
        repair_dist2[worst_row] = -std::numeric_limits<double>::infinity();
        ++result.empty_cluster_repairs;
      } else {
        double* dst = new_centroids.RowPtr(c);
        const double inv = 1.0 / static_cast<double>(counts[c]);
        for (size_t i = 0; i < d; ++i) dst[i] *= inv;
      }
    }

    // Convergence: maximum centroid displacement.
    double max_shift = 0.0;
    for (size_t c = 0; c < k; ++c) {
      max_shift = std::max(
          max_shift, std::sqrt(RowCentroidDist2(new_centroids, c,
                                                result.centroids, c)));
    }
    result.centroids = new_centroids;
    if (max_shift <= options_.tolerance) {
      result.converged = true;
      break;
    }
  }

  // Final assignment against the last centroids, then the Eq. (1) objective.
  for (size_t r = 0; r < m; ++r) {
    result.assignment[r] = NearestCentroid(data, r, result.centroids, nullptr);
  }
  QENS_ASSIGN_OR_RETURN(
      result.inertia,
      ComputeInertia(data, result.centroids, result.assignment));
  obs::Count("kmeans.fits");
  obs::Count("kmeans.iterations", result.iterations);
  obs::Count("kmeans.empty_cluster_repairs", result.empty_cluster_repairs);
  return result;
}

Result<std::vector<ClusterSummary>> KMeans::FitSummaries(
    const Matrix& data) const {
  QENS_ASSIGN_OR_RETURN(KMeansResult result, Fit(data));
  return SummarizeClusters(data, result.assignment, options_.k);
}

Result<double> ComputeInertia(const Matrix& data, const Matrix& centroids,
                              const std::vector<size_t>& assignment) {
  if (assignment.size() != data.rows()) {
    return Status::InvalidArgument("ComputeInertia: assignment size mismatch");
  }
  if (centroids.cols() != data.cols()) {
    return Status::InvalidArgument("ComputeInertia: dimension mismatch");
  }
  double acc = 0.0;
  for (size_t r = 0; r < data.rows(); ++r) {
    if (assignment[r] >= centroids.rows()) {
      return Status::OutOfRange("ComputeInertia: assignment out of range");
    }
    acc += RowCentroidDist2(data, r, centroids, assignment[r]);
  }
  return acc;
}

}  // namespace qens::clustering
