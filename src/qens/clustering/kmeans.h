#ifndef QENS_CLUSTERING_KMEANS_H_
#define QENS_CLUSTERING_KMEANS_H_

/// \file kmeans.h
/// Lloyd's k-means with k-means++ seeding — the node-local quantization step
/// of Eq. (1): min over centroids of sum_k sum_j ||xi_j - u_k||^2. The paper
/// uses K = 5 clusters per node (Section V-A).

#include <cstdint>
#include <vector>

#include "qens/common/rng.h"
#include "qens/common/status.h"
#include "qens/clustering/cluster_summary.h"
#include "qens/tensor/matrix.h"

namespace qens::clustering {

/// How initial centroids are chosen.
enum class KMeansInit {
  kKMeansPlusPlus,  ///< D^2-weighted seeding (default; fewer bad optima).
  kRandomPoints,    ///< k distinct data points uniformly at random.
};

/// Configuration for one KMeans::Fit call.
struct KMeansOptions {
  size_t k = 5;            ///< Paper default (Section V-A).
  size_t max_iterations = 100;
  double tolerance = 1e-6;  ///< Stop when max centroid shift <= tolerance.
  KMeansInit init = KMeansInit::kKMeansPlusPlus;
  uint64_t seed = 7;
  /// Worker threads for the Lloyd assignment step. <= 1 keeps the exact
  /// sequential path (bit-identical to the pre-threading implementation).
  /// With > 1, rows are split into contiguous fixed-size chunks whose
  /// per-chunk partial sums are reduced in ascending chunk order, so
  /// results are bit-identical across every thread count >= 2 (and
  /// identical to sequential whenever the data fits one chunk). A pool is
  /// created once per Fit invocation.
  size_t num_threads = 1;
};

/// Result of a k-means fit.
struct KMeansResult {
  Matrix centroids;                 ///< (k x d).
  std::vector<size_t> assignment;   ///< Row -> cluster id in [0, k).
  double inertia = 0.0;             ///< Eq. (1) objective at convergence.
  size_t iterations = 0;            ///< Lloyd iterations executed.
  bool converged = false;           ///< True when tolerance reached.
  size_t empty_cluster_repairs = 0; ///< Farthest-point re-seeds performed.

  /// Population of each cluster.
  std::vector<size_t> ClusterSizes(size_t k) const;
};

/// k-means driver. Stateless between Fit calls apart from options.
class KMeans {
 public:
  explicit KMeans(KMeansOptions options) : options_(options) {}

  const KMeansOptions& options() const { return options_; }

  /// Cluster the rows of `data` ((m x d), m >= 1, d >= 1).
  /// When k > m, k is effectively reduced to m (each point its own cluster,
  /// remaining clusters empty); the result still reports k centroid rows.
  Result<KMeansResult> Fit(const Matrix& data) const;

  /// Convenience: fit and summarize in one step (what an edge node runs to
  /// produce the digests it ships to the leader).
  Result<std::vector<ClusterSummary>> FitSummaries(const Matrix& data) const;

 private:
  Status Validate(const Matrix& data) const;

  /// Choose initial centroids into `centroids` (k x d).
  void Initialize(const Matrix& data, Rng* rng, Matrix* centroids) const;

  KMeansOptions options_;
};

/// Eq. (1) objective for a given clustering (sum of squared distances of
/// each row to its assigned centroid). Fails on shape/range errors.
Result<double> ComputeInertia(const Matrix& data, const Matrix& centroids,
                              const std::vector<size_t>& assignment);

}  // namespace qens::clustering

#endif  // QENS_CLUSTERING_KMEANS_H_
