#ifndef QENS_CLUSTERING_SILHOUETTE_H_
#define QENS_CLUSTERING_SILHOUETTE_H_

/// \file silhouette.h
/// Cluster-quality diagnostics for choosing K. The paper fixes K = 5 "to
/// avoid biases" (Section V-A); these utilities let a deployment validate
/// or tune that choice per node: the mean silhouette coefficient
/// (Rousseeuw 1987) and a K-sweep helper combining inertia (for the elbow
/// heuristic) with silhouette.

#include <cstdint>
#include <vector>

#include "qens/clustering/kmeans.h"
#include "qens/common/status.h"
#include "qens/tensor/matrix.h"

namespace qens::clustering {

/// Mean silhouette coefficient over all samples, in [-1, 1]; higher is
/// better-separated. Singleton clusters score 0 (the standard convention).
/// Requires at least 2 non-empty clusters and one row per sample;
/// O(m^2 d) — intended for node-local sample sizes.
Result<double> MeanSilhouette(const Matrix& data,
                              const std::vector<size_t>& assignment,
                              size_t k);

/// One K's quality readings.
struct KQuality {
  size_t k = 0;
  double inertia = 0.0;     ///< Eq. 1 objective (monotone down in k).
  double silhouette = 0.0;  ///< Mean silhouette (peaks near the "true" k).
  bool converged = false;
};

/// Fit k-means for each k in [k_min, k_max] and report both diagnostics.
/// Fails when k_min < 2, k_min > k_max, or the data is degenerate.
Result<std::vector<KQuality>> SweepK(const Matrix& data, size_t k_min,
                                     size_t k_max,
                                     const KMeansOptions& base_options);

/// The k from `sweep` with the highest silhouette (ties break low).
Result<size_t> BestKBySilhouette(const std::vector<KQuality>& sweep);

}  // namespace qens::clustering

#endif  // QENS_CLUSTERING_SILHOUETTE_H_
