#ifndef QENS_OBS_ROUND_RECORD_H_
#define QENS_OBS_ROUND_RECORD_H_

/// \file round_record.h
/// Per-round telemetry emitted by the federation loop.
///
/// One RoundRecord describes one leader -> participants -> leader exchange:
/// which nodes were engaged, what happened to each (completed / crashed or
/// offline / send failed / cut by the deadline), per-node simulated train
/// and transfer seconds and samples trained, the round's critical-path
/// time, and the quorum outcome. The federation fills these only while the
/// metrics layer is enabled (see obs::MetricsRegistry), so the fault-free
/// hot path stays untouched when observability is off.
///
/// The schema (field names, fate strings, CSV columns) is documented in
/// docs/OBSERVABILITY.md; the exporters here and their parsers are the
/// reference implementation and are round-trip tested.

#include <cstdint>
#include <string>
#include <vector>

#include "qens/common/status.h"

namespace qens::obs {

/// What happened to one engaged node during one round.
enum class NodeFate {
  kCompleted = 0,       ///< Model delivered in time and aggregated.
  kUnavailable,         ///< Crashed or transiently offline this round.
  kSendFailed,          ///< Every model-down or model-up transmission lost.
  kMissedDeadline,      ///< Excluded as a straggler at the round deadline.
  kRejected,            ///< Update delivered but rejected by the validator.
  kQuarantined,         ///< Skipped this round: still serving a quarantine.
};

/// Stable wire name ("completed", "unavailable", "send_failed",
/// "missed_deadline", "rejected", "quarantined").
const char* NodeFateName(NodeFate fate);

/// Inverse of NodeFateName; InvalidArgument on an unknown name.
Result<NodeFate> ParseNodeFate(const std::string& name);

/// One engaged node's accounting for one round.
struct NodeRoundStat {
  size_t node_id = 0;
  NodeFate fate = NodeFate::kCompleted;
  /// Simulated local-training seconds, slowdown-adjusted. Recorded in full
  /// even when the node is later cut by the deadline (the node still did
  /// the work); the leader-side wait is capped in RoundRecord::
  /// parallel_seconds instead.
  double train_seconds = 0.0;
  /// Simulated model-down + model-up transfer seconds, retries included.
  double comm_seconds = 0.0;
  size_t samples_used = 0;  ///< Distinct rows trained on.
  bool straggler = false;   ///< Slowdown factor > 1 this round.
};

/// One federation round.
struct RoundRecord {
  /// Owning QuerySession (QueryServer sessions are 1-based; 0 = the
  /// sequential Federation API, omitted from JSON for byte-compatibility).
  uint64_t session = 0;
  uint64_t query_id = 0;
  size_t round = 0;         ///< 0-based within the query.
  std::string policy;       ///< Selection policy name ("query_driven", ...).
  std::string aggregation;  ///< "fedavg" between rounds, "ensemble" final.
  size_t engaged = 0;       ///< Jobs entering the round.
  size_t survivors = 0;     ///< Models aggregated.
  size_t rejected = 0;      ///< Updates rejected by the validator.
  size_t quarantined = 0;   ///< Engaged nodes skipped while quarantined.
  /// \name Leader ranking-accelerator counters (docs/INDEXING.md)
  /// How this query's rankings were served. Only the first record of a
  /// query carries them (ranking happens once, before round 0); all four
  /// are zero — and omitted from JSON for byte-compatibility — when the
  /// index and cache are off.
  /// @{
  size_t rank_index_rankings = 0;   ///< Rankings served via the index.
  size_t rank_cache_hits = 0;       ///< Rankings served from the cache.
  size_t rank_cache_misses = 0;     ///< Cache lookups that had to compute.
  size_t rank_candidate_nodes = 0;  ///< Nodes the index actually scored.
  /// @}
  /// \name Wire-layer byte counters (docs/WIRE_FORMAT.md)
  /// Bytes offered to the transport this round, per direction, retries
  /// included. Populated only when FederationOptions::wire is enabled;
  /// both zero — and omitted from JSON for byte-compatibility — otherwise.
  /// @{
  size_t wire_down_bytes = 0;  ///< Leader -> participants broadcast bytes.
  size_t wire_up_bytes = 0;    ///< Participants -> leader update bytes.
  /// @}
  /// \name Dynamic-fleet counters (docs/ROBUSTNESS.md)
  /// Churn / drift / refresh accounting for this round. Populated only when
  /// FederationOptions::dynamic is enabled; all zero — and omitted from
  /// JSON for byte-compatibility — otherwise.
  /// @{
  uint64_t fleet_epoch = 0;  ///< Leader's epoch after this round's refreshes.
  size_t nodes_joined = 0;   ///< Nodes that rejoined at this round.
  size_t nodes_left = 0;     ///< Nodes that departed at this round.
  size_t refreshes = 0;      ///< Profiles refreshed this round.
  size_t stale_rounds = 0;   ///< Sum of per-node unpublished-drift ages.
  /// @}
  bool quorum_met = true;   ///< False for below-quorum (degraded) rounds.
  /// Leader-side critical path: max over engaged nodes of the capped
  /// per-node wait (never exceeds the round deadline when one is set).
  double parallel_seconds = 0.0;
  double total_train_seconds = 0.0;  ///< Sum of per-node train seconds.
  double comm_seconds = 0.0;         ///< Sum of per-node transfer seconds.
  /// Final-round evaluation loss (Eq. 7 / weighted). Only the last record
  /// of a query carries one; intermediate rounds have has_loss == false.
  bool has_loss = false;
  double loss = 0.0;
  std::vector<NodeRoundStat> nodes;  ///< One entry per engaged node.
};

/// \name JSONL export: one compact JSON object per line
/// @{
std::string RoundRecordToJson(const RoundRecord& record);
std::string RoundRecordsToJsonl(const std::vector<RoundRecord>& records);
Status WriteRoundRecordsJsonl(const std::vector<RoundRecord>& records,
                              const std::string& path);
Result<RoundRecord> ParseRoundRecordJson(const std::string& line);
Result<std::vector<RoundRecord>> ParseRoundRecordsJsonl(
    const std::string& text);
/// @}

/// \name CSV export: header + one row per round
/// Per-node stats are flattened into one cell of
/// `id:fate:train_s:comm_s:samples:straggler` segments joined by ';'.
/// @{
std::string RoundRecordsToCsv(const std::vector<RoundRecord>& records);
Status WriteRoundRecordsCsv(const std::vector<RoundRecord>& records,
                            const std::string& path);
Result<std::vector<RoundRecord>> ParseRoundRecordsCsv(const std::string& text);
/// @}

}  // namespace qens::obs

#endif  // QENS_OBS_ROUND_RECORD_H_
