#include "qens/obs/round_record.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "qens/common/string_util.h"
#include "qens/obs/json.h"

namespace qens::obs {

const char* NodeFateName(NodeFate fate) {
  switch (fate) {
    case NodeFate::kCompleted:
      return "completed";
    case NodeFate::kUnavailable:
      return "unavailable";
    case NodeFate::kSendFailed:
      return "send_failed";
    case NodeFate::kMissedDeadline:
      return "missed_deadline";
    case NodeFate::kRejected:
      return "rejected";
    case NodeFate::kQuarantined:
      return "quarantined";
  }
  return "completed";
}

Result<NodeFate> ParseNodeFate(const std::string& name) {
  if (name == "completed") return NodeFate::kCompleted;
  if (name == "unavailable") return NodeFate::kUnavailable;
  if (name == "send_failed") return NodeFate::kSendFailed;
  if (name == "missed_deadline") return NodeFate::kMissedDeadline;
  if (name == "rejected") return NodeFate::kRejected;
  if (name == "quarantined") return NodeFate::kQuarantined;
  return Status::InvalidArgument("unknown node fate: " + name);
}

namespace {

JsonValue NodeStatToJson(const NodeRoundStat& stat) {
  JsonValue node = JsonValue::Object();
  node.Set("node_id", JsonValue::Number(static_cast<double>(stat.node_id)));
  node.Set("fate", JsonValue::String(NodeFateName(stat.fate)));
  node.Set("train_seconds", JsonValue::Number(stat.train_seconds));
  node.Set("comm_seconds", JsonValue::Number(stat.comm_seconds));
  node.Set("samples_used",
           JsonValue::Number(static_cast<double>(stat.samples_used)));
  node.Set("straggler", JsonValue::Bool(stat.straggler));
  return node;
}

Result<NodeRoundStat> NodeStatFromJson(const JsonValue& node) {
  NodeRoundStat stat;
  QENS_ASSIGN_OR_RETURN(double node_id, node.GetNumber("node_id"));
  stat.node_id = static_cast<size_t>(node_id);
  QENS_ASSIGN_OR_RETURN(std::string fate, node.GetString("fate"));
  QENS_ASSIGN_OR_RETURN(stat.fate, ParseNodeFate(fate));
  QENS_ASSIGN_OR_RETURN(stat.train_seconds, node.GetNumber("train_seconds"));
  QENS_ASSIGN_OR_RETURN(stat.comm_seconds, node.GetNumber("comm_seconds"));
  QENS_ASSIGN_OR_RETURN(double samples, node.GetNumber("samples_used"));
  stat.samples_used = static_cast<size_t>(samples);
  QENS_ASSIGN_OR_RETURN(stat.straggler, node.GetBool("straggler"));
  return stat;
}

Status WriteTextFile(const std::string& content, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for write: " + path);
  out << content;
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

}  // namespace

std::string RoundRecordToJson(const RoundRecord& record) {
  JsonValue root = JsonValue::Object();
  // Emitted only for tagged (QueryServer) sessions so sequential JSONL
  // stays byte-compatible with pre-serving consumers.
  if (record.session > 0) {
    root.Set("session", JsonValue::Number(static_cast<double>(record.session)));
  }
  root.Set("query_id", JsonValue::Number(static_cast<double>(record.query_id)));
  root.Set("round", JsonValue::Number(static_cast<double>(record.round)));
  root.Set("policy", JsonValue::String(record.policy));
  root.Set("aggregation", JsonValue::String(record.aggregation));
  root.Set("engaged", JsonValue::Number(static_cast<double>(record.engaged)));
  root.Set("survivors",
           JsonValue::Number(static_cast<double>(record.survivors)));
  root.Set("quorum_met", JsonValue::Bool(record.quorum_met));
  // Byzantine counters are emitted only when nonzero so fault-free JSONL
  // stays byte-compatible with pre-robustness consumers.
  if (record.rejected > 0) {
    root.Set("rejected",
             JsonValue::Number(static_cast<double>(record.rejected)));
  }
  if (record.quarantined > 0) {
    root.Set("quarantined",
             JsonValue::Number(static_cast<double>(record.quarantined)));
  }
  // Ranking-accelerator counters: nonzero-only, same byte-compatibility
  // contract as the byzantine counters above.
  if (record.rank_index_rankings > 0) {
    root.Set("rank_index_rankings",
             JsonValue::Number(static_cast<double>(record.rank_index_rankings)));
  }
  if (record.rank_cache_hits > 0) {
    root.Set("rank_cache_hits",
             JsonValue::Number(static_cast<double>(record.rank_cache_hits)));
  }
  if (record.rank_cache_misses > 0) {
    root.Set("rank_cache_misses",
             JsonValue::Number(static_cast<double>(record.rank_cache_misses)));
  }
  if (record.rank_candidate_nodes > 0) {
    root.Set("rank_candidate_nodes",
             JsonValue::Number(static_cast<double>(record.rank_candidate_nodes)));
  }
  // Wire-layer byte counters: nonzero-only, same byte-compatibility
  // contract (the wire layer is opt-in; with it off nothing is emitted).
  if (record.wire_down_bytes > 0) {
    root.Set("wire_down_bytes",
             JsonValue::Number(static_cast<double>(record.wire_down_bytes)));
  }
  if (record.wire_up_bytes > 0) {
    root.Set("wire_up_bytes",
             JsonValue::Number(static_cast<double>(record.wire_up_bytes)));
  }
  // Dynamic-fleet counters: nonzero-only, same byte-compatibility contract
  // (with the dynamic layer off every one of these is zero).
  if (record.fleet_epoch > 0) {
    root.Set("fleet_epoch",
             JsonValue::Number(static_cast<double>(record.fleet_epoch)));
  }
  if (record.nodes_joined > 0) {
    root.Set("nodes_joined",
             JsonValue::Number(static_cast<double>(record.nodes_joined)));
  }
  if (record.nodes_left > 0) {
    root.Set("nodes_left",
             JsonValue::Number(static_cast<double>(record.nodes_left)));
  }
  if (record.refreshes > 0) {
    root.Set("refreshes",
             JsonValue::Number(static_cast<double>(record.refreshes)));
  }
  if (record.stale_rounds > 0) {
    root.Set("stale_rounds",
             JsonValue::Number(static_cast<double>(record.stale_rounds)));
  }
  root.Set("parallel_seconds", JsonValue::Number(record.parallel_seconds));
  root.Set("total_train_seconds",
           JsonValue::Number(record.total_train_seconds));
  root.Set("comm_seconds", JsonValue::Number(record.comm_seconds));
  if (record.has_loss) root.Set("loss", JsonValue::Number(record.loss));
  JsonValue nodes = JsonValue::Array();
  for (const NodeRoundStat& stat : record.nodes) {
    nodes.Append(NodeStatToJson(stat));
  }
  root.Set("nodes", std::move(nodes));
  return root.Dump();
}

std::string RoundRecordsToJsonl(const std::vector<RoundRecord>& records) {
  std::string out;
  for (const RoundRecord& record : records) {
    out += RoundRecordToJson(record);
    out.push_back('\n');
  }
  return out;
}

Status WriteRoundRecordsJsonl(const std::vector<RoundRecord>& records,
                              const std::string& path) {
  return WriteTextFile(RoundRecordsToJsonl(records), path);
}

Result<RoundRecord> ParseRoundRecordJson(const std::string& line) {
  QENS_ASSIGN_OR_RETURN(JsonValue root, JsonValue::Parse(line));
  if (!root.is_object()) {
    return Status::InvalidArgument("round record: not a JSON object");
  }
  RoundRecord record;
  if (const JsonValue* session = root.Find("session")) {
    if (!session->is_number()) {
      return Status::InvalidArgument("round record: session is not a number");
    }
    record.session = static_cast<uint64_t>(session->AsNumber());
  }
  QENS_ASSIGN_OR_RETURN(double query_id, root.GetNumber("query_id"));
  record.query_id = static_cast<uint64_t>(query_id);
  QENS_ASSIGN_OR_RETURN(double round, root.GetNumber("round"));
  record.round = static_cast<size_t>(round);
  QENS_ASSIGN_OR_RETURN(record.policy, root.GetString("policy"));
  QENS_ASSIGN_OR_RETURN(record.aggregation, root.GetString("aggregation"));
  QENS_ASSIGN_OR_RETURN(double engaged, root.GetNumber("engaged"));
  record.engaged = static_cast<size_t>(engaged);
  QENS_ASSIGN_OR_RETURN(double survivors, root.GetNumber("survivors"));
  record.survivors = static_cast<size_t>(survivors);
  QENS_ASSIGN_OR_RETURN(record.quorum_met, root.GetBool("quorum_met"));
  if (const JsonValue* rejected = root.Find("rejected")) {
    if (!rejected->is_number()) {
      return Status::InvalidArgument("round record: rejected is not a number");
    }
    record.rejected = static_cast<size_t>(rejected->AsNumber());
  }
  if (const JsonValue* quarantined = root.Find("quarantined")) {
    if (!quarantined->is_number()) {
      return Status::InvalidArgument(
          "round record: quarantined is not a number");
    }
    record.quarantined = static_cast<size_t>(quarantined->AsNumber());
  }
  auto parse_optional_count = [&root](const char* name,
                                      size_t* out) -> Status {
    if (const JsonValue* value = root.Find(name)) {
      if (!value->is_number()) {
        return Status::InvalidArgument(
            StrFormat("round record: %s is not a number", name));
      }
      *out = static_cast<size_t>(value->AsNumber());
    }
    return Status::OK();
  };
  QENS_RETURN_NOT_OK(parse_optional_count("rank_index_rankings",
                                          &record.rank_index_rankings));
  QENS_RETURN_NOT_OK(
      parse_optional_count("rank_cache_hits", &record.rank_cache_hits));
  QENS_RETURN_NOT_OK(
      parse_optional_count("rank_cache_misses", &record.rank_cache_misses));
  QENS_RETURN_NOT_OK(parse_optional_count("rank_candidate_nodes",
                                          &record.rank_candidate_nodes));
  QENS_RETURN_NOT_OK(
      parse_optional_count("wire_down_bytes", &record.wire_down_bytes));
  QENS_RETURN_NOT_OK(
      parse_optional_count("wire_up_bytes", &record.wire_up_bytes));
  if (const JsonValue* epoch = root.Find("fleet_epoch")) {
    if (!epoch->is_number()) {
      return Status::InvalidArgument(
          "round record: fleet_epoch is not a number");
    }
    record.fleet_epoch = static_cast<uint64_t>(epoch->AsNumber());
  }
  QENS_RETURN_NOT_OK(
      parse_optional_count("nodes_joined", &record.nodes_joined));
  QENS_RETURN_NOT_OK(parse_optional_count("nodes_left", &record.nodes_left));
  QENS_RETURN_NOT_OK(parse_optional_count("refreshes", &record.refreshes));
  QENS_RETURN_NOT_OK(
      parse_optional_count("stale_rounds", &record.stale_rounds));
  QENS_ASSIGN_OR_RETURN(record.parallel_seconds,
                        root.GetNumber("parallel_seconds"));
  QENS_ASSIGN_OR_RETURN(record.total_train_seconds,
                        root.GetNumber("total_train_seconds"));
  QENS_ASSIGN_OR_RETURN(record.comm_seconds, root.GetNumber("comm_seconds"));
  if (const JsonValue* loss = root.Find("loss")) {
    if (!loss->is_number()) {
      return Status::InvalidArgument("round record: loss is not a number");
    }
    record.has_loss = true;
    record.loss = loss->AsNumber();
  }
  const JsonValue* nodes = root.Find("nodes");
  if (nodes == nullptr || !nodes->is_array()) {
    return Status::InvalidArgument("round record: missing nodes array");
  }
  for (const JsonValue& node : nodes->AsArray()) {
    QENS_ASSIGN_OR_RETURN(NodeRoundStat stat, NodeStatFromJson(node));
    record.nodes.push_back(std::move(stat));
  }
  return record;
}

Result<std::vector<RoundRecord>> ParseRoundRecordsJsonl(
    const std::string& text) {
  std::vector<RoundRecord> records;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (Trim(line).empty()) continue;
    QENS_ASSIGN_OR_RETURN(RoundRecord record, ParseRoundRecordJson(line));
    records.push_back(std::move(record));
  }
  return records;
}

namespace {

constexpr char kCsvHeader[] =
    "session,query_id,round,policy,aggregation,engaged,survivors,rejected,"
    "quarantined,rank_index_rankings,rank_cache_hits,rank_cache_misses,"
    "rank_candidate_nodes,wire_down_bytes,wire_up_bytes,fleet_epoch,"
    "nodes_joined,nodes_left,refreshes,stale_rounds,quorum_met,"
    "parallel_seconds,total_train_seconds,comm_seconds,has_loss,loss,nodes";

constexpr size_t kCsvColumns = 27;

std::string NodesCell(const std::vector<NodeRoundStat>& nodes) {
  std::string out;
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (i > 0) out.push_back(';');
    out += StrFormat("%zu:%s:%s:%s:%zu:%d", nodes[i].node_id,
                     NodeFateName(nodes[i].fate),
                     JsonNumber(nodes[i].train_seconds).c_str(),
                     JsonNumber(nodes[i].comm_seconds).c_str(),
                     nodes[i].samples_used, nodes[i].straggler ? 1 : 0);
  }
  return out;
}

Result<std::vector<NodeRoundStat>> ParseNodesCell(const std::string& cell) {
  std::vector<NodeRoundStat> nodes;
  if (cell.empty()) return nodes;
  for (const std::string& segment : Split(cell, ';')) {
    const std::vector<std::string> fields = Split(segment, ':');
    if (fields.size() != 6) {
      return Status::InvalidArgument("round csv: bad node segment " + segment);
    }
    NodeRoundStat stat;
    stat.node_id = static_cast<size_t>(std::strtoull(fields[0].c_str(),
                                                     nullptr, 10));
    QENS_ASSIGN_OR_RETURN(stat.fate, ParseNodeFate(fields[1]));
    stat.train_seconds = std::strtod(fields[2].c_str(), nullptr);
    stat.comm_seconds = std::strtod(fields[3].c_str(), nullptr);
    stat.samples_used = static_cast<size_t>(std::strtoull(fields[4].c_str(),
                                                          nullptr, 10));
    stat.straggler = fields[5] == "1";
    nodes.push_back(stat);
  }
  return nodes;
}

}  // namespace

std::string RoundRecordsToCsv(const std::vector<RoundRecord>& records) {
  std::string out = kCsvHeader;
  out.push_back('\n');
  for (const RoundRecord& r : records) {
    out += StrFormat(
        "%llu,%llu,%zu,%s,%s,%zu,%zu,%zu,%zu,%zu,%zu,%zu,%zu,%zu,%zu,%llu,"
        "%zu,%zu,%zu,%zu,%d,%s,%s,%s,%d,%s,%s\n",
        static_cast<unsigned long long>(r.session),
        static_cast<unsigned long long>(r.query_id), r.round,
        r.policy.c_str(), r.aggregation.c_str(), r.engaged, r.survivors,
        r.rejected, r.quarantined, r.rank_index_rankings, r.rank_cache_hits,
        r.rank_cache_misses, r.rank_candidate_nodes, r.wire_down_bytes,
        r.wire_up_bytes, static_cast<unsigned long long>(r.fleet_epoch),
        r.nodes_joined, r.nodes_left, r.refreshes, r.stale_rounds,
        r.quorum_met ? 1 : 0, JsonNumber(r.parallel_seconds).c_str(),
        JsonNumber(r.total_train_seconds).c_str(),
        JsonNumber(r.comm_seconds).c_str(), r.has_loss ? 1 : 0,
        JsonNumber(r.loss).c_str(), NodesCell(r.nodes).c_str());
  }
  return out;
}

Status WriteRoundRecordsCsv(const std::vector<RoundRecord>& records,
                            const std::string& path) {
  return WriteTextFile(RoundRecordsToCsv(records), path);
}

Result<std::vector<RoundRecord>> ParseRoundRecordsCsv(const std::string& text) {
  std::vector<RoundRecord> records;
  std::istringstream in(text);
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (Trim(line).empty()) continue;
    if (first) {
      first = false;
      if (Trim(line) != kCsvHeader) {
        return Status::InvalidArgument("round csv: unexpected header " + line);
      }
      continue;
    }
    const std::vector<std::string> cells = Split(line, ',');
    if (cells.size() != kCsvColumns) {
      return Status::InvalidArgument(
          StrFormat("round csv: expected %zu cells, got %zu", kCsvColumns,
                    cells.size()));
    }
    RoundRecord r;
    r.session = std::strtoull(cells[0].c_str(), nullptr, 10);
    r.query_id = std::strtoull(cells[1].c_str(), nullptr, 10);
    r.round = static_cast<size_t>(std::strtoull(cells[2].c_str(), nullptr, 10));
    r.policy = cells[3];
    r.aggregation = cells[4];
    r.engaged = static_cast<size_t>(std::strtoull(cells[5].c_str(), nullptr, 10));
    r.survivors =
        static_cast<size_t>(std::strtoull(cells[6].c_str(), nullptr, 10));
    r.rejected =
        static_cast<size_t>(std::strtoull(cells[7].c_str(), nullptr, 10));
    r.quarantined =
        static_cast<size_t>(std::strtoull(cells[8].c_str(), nullptr, 10));
    r.rank_index_rankings =
        static_cast<size_t>(std::strtoull(cells[9].c_str(), nullptr, 10));
    r.rank_cache_hits =
        static_cast<size_t>(std::strtoull(cells[10].c_str(), nullptr, 10));
    r.rank_cache_misses =
        static_cast<size_t>(std::strtoull(cells[11].c_str(), nullptr, 10));
    r.rank_candidate_nodes =
        static_cast<size_t>(std::strtoull(cells[12].c_str(), nullptr, 10));
    r.wire_down_bytes =
        static_cast<size_t>(std::strtoull(cells[13].c_str(), nullptr, 10));
    r.wire_up_bytes =
        static_cast<size_t>(std::strtoull(cells[14].c_str(), nullptr, 10));
    r.fleet_epoch = std::strtoull(cells[15].c_str(), nullptr, 10);
    r.nodes_joined =
        static_cast<size_t>(std::strtoull(cells[16].c_str(), nullptr, 10));
    r.nodes_left =
        static_cast<size_t>(std::strtoull(cells[17].c_str(), nullptr, 10));
    r.refreshes =
        static_cast<size_t>(std::strtoull(cells[18].c_str(), nullptr, 10));
    r.stale_rounds =
        static_cast<size_t>(std::strtoull(cells[19].c_str(), nullptr, 10));
    r.quorum_met = cells[20] == "1";
    r.parallel_seconds = std::strtod(cells[21].c_str(), nullptr);
    r.total_train_seconds = std::strtod(cells[22].c_str(), nullptr);
    r.comm_seconds = std::strtod(cells[23].c_str(), nullptr);
    r.has_loss = cells[24] == "1";
    r.loss = std::strtod(cells[25].c_str(), nullptr);
    QENS_ASSIGN_OR_RETURN(r.nodes, ParseNodesCell(cells[26]));
    records.push_back(std::move(r));
  }
  return records;
}

}  // namespace qens::obs
