#include "qens/obs/json.h"

#include <cassert>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "qens/common/string_util.h"

namespace qens::obs {

JsonValue JsonValue::Bool(bool v) {
  JsonValue j;
  j.kind_ = Kind::kBool;
  j.bool_ = v;
  return j;
}

JsonValue JsonValue::Number(double v) {
  JsonValue j;
  j.kind_ = Kind::kNumber;
  j.number_ = v;
  return j;
}

JsonValue JsonValue::String(std::string v) {
  JsonValue j;
  j.kind_ = Kind::kString;
  j.string_ = std::move(v);
  return j;
}

JsonValue JsonValue::Array() {
  JsonValue j;
  j.kind_ = Kind::kArray;
  return j;
}

JsonValue JsonValue::Object() {
  JsonValue j;
  j.kind_ = Kind::kObject;
  return j;
}

void JsonValue::Append(JsonValue v) {
  assert(is_array());
  array_.push_back(std::move(v));
}

void JsonValue::Set(const std::string& key, JsonValue v) {
  assert(is_object());
  object_[key] = std::move(v);
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (!is_object()) return nullptr;
  auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

Result<double> JsonValue::GetNumber(const std::string& key) const {
  const JsonValue* v = Find(key);
  if (v == nullptr) return Status::NotFound("json: missing key " + key);
  if (!v->is_number()) {
    return Status::InvalidArgument("json: key " + key + " is not a number");
  }
  return v->AsNumber();
}

Result<std::string> JsonValue::GetString(const std::string& key) const {
  const JsonValue* v = Find(key);
  if (v == nullptr) return Status::NotFound("json: missing key " + key);
  if (!v->is_string()) {
    return Status::InvalidArgument("json: key " + key + " is not a string");
  }
  return v->AsString();
}

Result<bool> JsonValue::GetBool(const std::string& key) const {
  const JsonValue* v = Find(key);
  if (v == nullptr) return Status::NotFound("json: missing key " + key);
  if (!v->is_bool()) {
    return Status::InvalidArgument("json: key " + key + " is not a bool");
  }
  return v->AsBool();
}

std::string JsonQuote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string JsonNumber(double v) {
  if (std::floor(v) == v && std::abs(v) < 1e15) {
    return StrFormat("%.0f", v);
  }
  // %.17g round-trips any double; trim to the shortest that still does.
  for (int precision = 15; precision <= 17; ++precision) {
    std::string s = StrFormat("%.*g", precision, v);
    if (std::strtod(s.c_str(), nullptr) == v) return s;
  }
  return StrFormat("%.17g", v);
}

std::string JsonValue::Dump() const {
  switch (kind_) {
    case Kind::kNull:
      return "null";
    case Kind::kBool:
      return bool_ ? "true" : "false";
    case Kind::kNumber:
      return JsonNumber(number_);
    case Kind::kString:
      return JsonQuote(string_);
    case Kind::kArray: {
      std::string out = "[";
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out.push_back(',');
        out += array_[i].Dump();
      }
      out.push_back(']');
      return out;
    }
    case Kind::kObject: {
      std::string out = "{";
      bool first = true;
      for (const auto& [key, value] : object_) {
        if (!first) out.push_back(',');
        first = false;
        out += JsonQuote(key);
        out.push_back(':');
        out += value.Dump();
      }
      out.push_back('}');
      return out;
    }
  }
  return "null";
}

namespace {

/// Recursive-descent parser over a bounds-checked cursor.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<JsonValue> ParseDocument() {
    SkipWhitespace();
    QENS_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument(
          StrFormat("json: trailing content at offset %zu", pos_));
    }
    return value;
  }

 private:
  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(char c) {
    if (!Consume(c)) {
      return Status::InvalidArgument(
          StrFormat("json: expected '%c' at offset %zu", c, pos_));
    }
    return Status::OK();
  }

  Result<JsonValue> ParseValue() {
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument("json: unexpected end of input");
    }
    switch (text_[pos_]) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        QENS_ASSIGN_OR_RETURN(std::string s, ParseString());
        return JsonValue::String(std::move(s));
      }
      case 't':
        return ParseLiteral("true", JsonValue::Bool(true));
      case 'f':
        return ParseLiteral("false", JsonValue::Bool(false));
      case 'n':
        return ParseLiteral("null", JsonValue::Null());
      default:
        return ParseNumber();
    }
  }

  Result<JsonValue> ParseLiteral(const char* word, JsonValue value) {
    const size_t len = std::char_traits<char>::length(word);
    if (text_.compare(pos_, len, word) != 0) {
      return Status::InvalidArgument(
          StrFormat("json: bad literal at offset %zu", pos_));
    }
    pos_ += len;
    return value;
  }

  Result<JsonValue> ParseNumber() {
    const size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Status::InvalidArgument(
          StrFormat("json: expected a value at offset %zu", start));
    }
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      return Status::InvalidArgument("json: bad number '" + token + "'");
    }
    return JsonValue::Number(v);
  }

  Result<std::string> ParseString() {
    QENS_RETURN_NOT_OK(Expect('"'));
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Status::InvalidArgument("json: truncated \\u escape");
          }
          const std::string hex = text_.substr(pos_, 4);
          pos_ += 4;
          char* end = nullptr;
          const long code = std::strtol(hex.c_str(), &end, 16);
          if (end == nullptr || *end != '\0' || code < 0) {
            return Status::InvalidArgument("json: bad \\u escape " + hex);
          }
          if (code > 0x7f) {
            return Status::NotImplemented(
                "json: non-ASCII \\u escapes are unsupported");
          }
          out.push_back(static_cast<char>(code));
          break;
        }
        default:
          return Status::InvalidArgument(
              StrFormat("json: bad escape '\\%c'", esc));
      }
    }
    QENS_RETURN_NOT_OK(Expect('"'));
    return out;
  }

  Result<JsonValue> ParseArray() {
    QENS_RETURN_NOT_OK(Expect('['));
    JsonValue out = JsonValue::Array();
    SkipWhitespace();
    if (Consume(']')) return out;
    while (true) {
      SkipWhitespace();
      QENS_ASSIGN_OR_RETURN(JsonValue element, ParseValue());
      out.Append(std::move(element));
      SkipWhitespace();
      if (Consume(']')) return out;
      QENS_RETURN_NOT_OK(Expect(','));
    }
  }

  Result<JsonValue> ParseObject() {
    QENS_RETURN_NOT_OK(Expect('{'));
    JsonValue out = JsonValue::Object();
    SkipWhitespace();
    if (Consume('}')) return out;
    while (true) {
      SkipWhitespace();
      QENS_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      QENS_RETURN_NOT_OK(Expect(':'));
      SkipWhitespace();
      QENS_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
      out.Set(key, std::move(value));
      SkipWhitespace();
      if (Consume('}')) return out;
      QENS_RETURN_NOT_OK(Expect(','));
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> JsonValue::Parse(const std::string& text) {
  Parser parser(text);
  return parser.ParseDocument();
}

}  // namespace qens::obs
