#ifndef QENS_OBS_METRICS_H_
#define QENS_OBS_METRICS_H_

/// \file metrics.h
/// Lightweight process-wide metrics: counters, gauges, and fixed-bucket
/// histograms.
///
/// The registry is strictly opt-in. Until `MetricsRegistry::Enable()` is
/// called nothing is allocated — `MetricsRegistry::Get()` returns nullptr
/// and every free helper (`Count`, `Gauge`, `Observe`) is a branch on a
/// single atomic flag. Instrumented hot paths (federation rounds, leader
/// ranking, k-means, the trainer, fault injection) therefore cost nothing
/// and change no output when metrics are off; enabling the layer only adds
/// bookkeeping, never extra RNG draws, so simulation outcomes stay
/// bit-identical either way.
///
/// All registry methods are thread-safe: local training fans out through
/// std::async and instruments from worker threads.

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace qens::obs {

/// Frozen view of one fixed-bucket histogram. `bounds[i]` is the inclusive
/// upper edge of bucket i; one overflow bucket follows the last bound, so
/// `counts.size() == bounds.size() + 1`.
struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<uint64_t> counts;
  uint64_t total = 0;  ///< Number of observations.
  double sum = 0.0;    ///< Sum of observed values.
  double min = 0.0;    ///< Smallest observation (0 when total == 0).
  double max = 0.0;    ///< Largest observation (0 when total == 0).
};

/// Point-in-time copy of every metric in the registry.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};

/// The process-wide metric store. Created on Enable(), destroyed on
/// Disable(); while disabled no instance (and no metric storage) exists.
class MetricsRegistry {
 public:
  /// True once Enable() has been called (and Disable() has not).
  static bool Enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Create the global registry (idempotent).
  static void Enable();

  /// Drop the global registry and everything it recorded (idempotent).
  static void Disable();

  /// The global registry, or nullptr while disabled.
  static MetricsRegistry* Get();

  /// Monotonic counter `name` += delta.
  void IncrCounter(std::string_view name, uint64_t delta = 1);

  /// Last-write-wins gauge.
  void SetGauge(std::string_view name, double value);

  /// Record `value` into the fixed-bucket histogram `name` (buckets are
  /// exponential decades from 1e-6 to 1e3 — spans in seconds land well).
  void Observe(std::string_view name, double value);

  /// Copy out every metric.
  MetricsSnapshot Snapshot() const;

  /// Clear all recorded values (the registry stays enabled).
  void Reset();

 private:
  MetricsRegistry() = default;

  struct Histogram {
    std::vector<uint64_t> counts;  ///< kBucketCount entries.
    uint64_t total = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
  };

  static const std::vector<double>& BucketBounds();

  static std::atomic<bool> enabled_;

  mutable std::mutex mutex_;
  std::map<std::string, uint64_t, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

/// \name No-op-when-disabled helpers
/// The instrumentation entry points used throughout the library.
/// @{
inline void Count(std::string_view name, uint64_t delta = 1) {
  if (MetricsRegistry::Enabled()) {
    if (auto* r = MetricsRegistry::Get()) r->IncrCounter(name, delta);
  }
}

inline void Gauge(std::string_view name, double value) {
  if (MetricsRegistry::Enabled()) {
    if (auto* r = MetricsRegistry::Get()) r->SetGauge(name, value);
  }
}

inline void Observe(std::string_view name, double value) {
  if (MetricsRegistry::Enabled()) {
    if (auto* r = MetricsRegistry::Get()) r->Observe(name, value);
  }
}
/// @}

}  // namespace qens::obs

#endif  // QENS_OBS_METRICS_H_
