#ifndef QENS_OBS_EXPORT_H_
#define QENS_OBS_EXPORT_H_

/// \file export.h
/// Serialization of metric snapshots (counters, gauges, histograms) to
/// machine-readable JSON and CSV, plus the inverse parsers used by the
/// round-trip tests and downstream tooling. The formats are documented in
/// docs/OBSERVABILITY.md.

#include <string>

#include "qens/common/status.h"
#include "qens/obs/metrics.h"

namespace qens::obs {

/// One JSON object: {"counters": {...}, "gauges": {...},
/// "histograms": {name: {bounds, counts, total, sum, min, max}}}.
std::string MetricsSnapshotToJson(const MetricsSnapshot& snapshot);
Status WriteMetricsSnapshotJson(const MetricsSnapshot& snapshot,
                                const std::string& path);
Result<MetricsSnapshot> ParseMetricsSnapshotJson(const std::string& text);

/// CSV rows `kind,name,value` (counter/gauge) and
/// `histogram,name,total,sum,min,max,bounds...,counts...` flattened with
/// '|'-joined numeric lists.
std::string MetricsSnapshotToCsv(const MetricsSnapshot& snapshot);
Status WriteMetricsSnapshotCsv(const MetricsSnapshot& snapshot,
                               const std::string& path);
Result<MetricsSnapshot> ParseMetricsSnapshotCsv(const std::string& text);

}  // namespace qens::obs

#endif  // QENS_OBS_EXPORT_H_
