#include "qens/obs/export.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "qens/common/string_util.h"
#include "qens/obs/json.h"

namespace qens::obs {
namespace {

Status WriteTextFile(const std::string& content, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for write: " + path);
  out << content;
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

std::string JoinNumbers(const std::vector<double>& values) {
  std::string out;
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out.push_back('|');
    out += JsonNumber(values[i]);
  }
  return out;
}

std::string JoinCounts(const std::vector<uint64_t>& values) {
  std::string out;
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out.push_back('|');
    out += StrFormat("%llu", static_cast<unsigned long long>(values[i]));
  }
  return out;
}

}  // namespace

std::string MetricsSnapshotToJson(const MetricsSnapshot& snapshot) {
  JsonValue root = JsonValue::Object();
  JsonValue counters = JsonValue::Object();
  for (const auto& [name, value] : snapshot.counters) {
    counters.Set(name, JsonValue::Number(static_cast<double>(value)));
  }
  root.Set("counters", std::move(counters));
  JsonValue gauges = JsonValue::Object();
  for (const auto& [name, value] : snapshot.gauges) {
    gauges.Set(name, JsonValue::Number(value));
  }
  root.Set("gauges", std::move(gauges));
  JsonValue histograms = JsonValue::Object();
  for (const auto& [name, h] : snapshot.histograms) {
    JsonValue hist = JsonValue::Object();
    JsonValue bounds = JsonValue::Array();
    for (double b : h.bounds) bounds.Append(JsonValue::Number(b));
    hist.Set("bounds", std::move(bounds));
    JsonValue counts = JsonValue::Array();
    for (uint64_t c : h.counts) {
      counts.Append(JsonValue::Number(static_cast<double>(c)));
    }
    hist.Set("counts", std::move(counts));
    hist.Set("total", JsonValue::Number(static_cast<double>(h.total)));
    hist.Set("sum", JsonValue::Number(h.sum));
    hist.Set("min", JsonValue::Number(h.min));
    hist.Set("max", JsonValue::Number(h.max));
    histograms.Set(name, std::move(hist));
  }
  root.Set("histograms", std::move(histograms));
  return root.Dump();
}

Status WriteMetricsSnapshotJson(const MetricsSnapshot& snapshot,
                                const std::string& path) {
  return WriteTextFile(MetricsSnapshotToJson(snapshot) + "\n", path);
}

Result<MetricsSnapshot> ParseMetricsSnapshotJson(const std::string& text) {
  QENS_ASSIGN_OR_RETURN(JsonValue root, JsonValue::Parse(text));
  if (!root.is_object()) {
    return Status::InvalidArgument("metrics json: not an object");
  }
  MetricsSnapshot snapshot;
  if (const JsonValue* counters = root.Find("counters")) {
    if (!counters->is_object()) {
      return Status::InvalidArgument("metrics json: counters not an object");
    }
    for (const auto& [name, value] : counters->AsObject()) {
      if (!value.is_number()) {
        return Status::InvalidArgument("metrics json: counter " + name);
      }
      snapshot.counters[name] = static_cast<uint64_t>(value.AsNumber());
    }
  }
  if (const JsonValue* gauges = root.Find("gauges")) {
    if (!gauges->is_object()) {
      return Status::InvalidArgument("metrics json: gauges not an object");
    }
    for (const auto& [name, value] : gauges->AsObject()) {
      if (!value.is_number()) {
        return Status::InvalidArgument("metrics json: gauge " + name);
      }
      snapshot.gauges[name] = value.AsNumber();
    }
  }
  if (const JsonValue* histograms = root.Find("histograms")) {
    if (!histograms->is_object()) {
      return Status::InvalidArgument("metrics json: histograms not an object");
    }
    for (const auto& [name, value] : histograms->AsObject()) {
      if (!value.is_object()) {
        return Status::InvalidArgument("metrics json: histogram " + name);
      }
      HistogramSnapshot h;
      const JsonValue* bounds = value.Find("bounds");
      const JsonValue* counts = value.Find("counts");
      if (bounds == nullptr || !bounds->is_array() || counts == nullptr ||
          !counts->is_array()) {
        return Status::InvalidArgument(
            "metrics json: histogram " + name + " missing bounds/counts");
      }
      for (const JsonValue& b : bounds->AsArray()) {
        if (!b.is_number()) {
          return Status::InvalidArgument("metrics json: bad bound in " + name);
        }
        h.bounds.push_back(b.AsNumber());
      }
      for (const JsonValue& c : counts->AsArray()) {
        if (!c.is_number()) {
          return Status::InvalidArgument("metrics json: bad count in " + name);
        }
        h.counts.push_back(static_cast<uint64_t>(c.AsNumber()));
      }
      QENS_ASSIGN_OR_RETURN(double total, value.GetNumber("total"));
      h.total = static_cast<uint64_t>(total);
      QENS_ASSIGN_OR_RETURN(h.sum, value.GetNumber("sum"));
      QENS_ASSIGN_OR_RETURN(h.min, value.GetNumber("min"));
      QENS_ASSIGN_OR_RETURN(h.max, value.GetNumber("max"));
      snapshot.histograms[name] = std::move(h);
    }
  }
  return snapshot;
}

std::string MetricsSnapshotToCsv(const MetricsSnapshot& snapshot) {
  std::string out = "kind,name,value\n";
  for (const auto& [name, value] : snapshot.counters) {
    out += StrFormat("counter,%s,%llu\n", name.c_str(),
                     static_cast<unsigned long long>(value));
  }
  for (const auto& [name, value] : snapshot.gauges) {
    out += StrFormat("gauge,%s,%s\n", name.c_str(), JsonNumber(value).c_str());
  }
  for (const auto& [name, h] : snapshot.histograms) {
    out += StrFormat("histogram,%s,total=%llu|sum=%s|min=%s|max=%s,%s,%s\n",
                     name.c_str(), static_cast<unsigned long long>(h.total),
                     JsonNumber(h.sum).c_str(), JsonNumber(h.min).c_str(),
                     JsonNumber(h.max).c_str(), JoinNumbers(h.bounds).c_str(),
                     JoinCounts(h.counts).c_str());
  }
  return out;
}

Status WriteMetricsSnapshotCsv(const MetricsSnapshot& snapshot,
                               const std::string& path) {
  return WriteTextFile(MetricsSnapshotToCsv(snapshot), path);
}

Result<MetricsSnapshot> ParseMetricsSnapshotCsv(const std::string& text) {
  MetricsSnapshot snapshot;
  std::istringstream in(text);
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (Trim(line).empty()) continue;
    if (first) {
      first = false;
      if (Trim(line) != "kind,name,value") {
        return Status::InvalidArgument("metrics csv: unexpected header " +
                                       line);
      }
      continue;
    }
    const std::vector<std::string> cells = Split(line, ',');
    if (cells.size() < 3) {
      return Status::InvalidArgument("metrics csv: short row " + line);
    }
    if (cells[0] == "counter") {
      snapshot.counters[cells[1]] = std::strtoull(cells[2].c_str(), nullptr, 10);
    } else if (cells[0] == "gauge") {
      snapshot.gauges[cells[1]] = std::strtod(cells[2].c_str(), nullptr);
    } else if (cells[0] == "histogram") {
      if (cells.size() != 5) {
        return Status::InvalidArgument("metrics csv: bad histogram row " +
                                       line);
      }
      HistogramSnapshot h;
      for (const std::string& kv : Split(cells[2], '|')) {
        const std::vector<std::string> parts = Split(kv, '=');
        if (parts.size() != 2) {
          return Status::InvalidArgument("metrics csv: bad stat " + kv);
        }
        if (parts[0] == "total") {
          h.total = std::strtoull(parts[1].c_str(), nullptr, 10);
        } else if (parts[0] == "sum") {
          h.sum = std::strtod(parts[1].c_str(), nullptr);
        } else if (parts[0] == "min") {
          h.min = std::strtod(parts[1].c_str(), nullptr);
        } else if (parts[0] == "max") {
          h.max = std::strtod(parts[1].c_str(), nullptr);
        } else {
          return Status::InvalidArgument("metrics csv: unknown stat " +
                                         parts[0]);
        }
      }
      if (!cells[3].empty()) {
        for (const std::string& b : Split(cells[3], '|')) {
          h.bounds.push_back(std::strtod(b.c_str(), nullptr));
        }
      }
      if (!cells[4].empty()) {
        for (const std::string& c : Split(cells[4], '|')) {
          h.counts.push_back(std::strtoull(c.c_str(), nullptr, 10));
        }
      }
      snapshot.histograms[cells[1]] = std::move(h);
    } else {
      return Status::InvalidArgument("metrics csv: unknown kind " + cells[0]);
    }
  }
  return snapshot;
}

}  // namespace qens::obs
