#include "qens/obs/metrics.h"

#include <memory>

namespace qens::obs {
namespace {

/// Owns the enabled registry. A plain pointer (not a static local) so the
/// disabled state is "no allocation anywhere", which the tests assert.
std::unique_ptr<MetricsRegistry>& GlobalSlot() {
  static std::unique_ptr<MetricsRegistry> slot;
  return slot;
}

std::mutex& GlobalSlotMutex() {
  static std::mutex m;
  return m;
}

}  // namespace

std::atomic<bool> MetricsRegistry::enabled_{false};

void MetricsRegistry::Enable() {
  std::lock_guard<std::mutex> lock(GlobalSlotMutex());
  if (!GlobalSlot()) {
    GlobalSlot() = std::unique_ptr<MetricsRegistry>(new MetricsRegistry());
  }
  enabled_.store(true, std::memory_order_release);
}

void MetricsRegistry::Disable() {
  std::lock_guard<std::mutex> lock(GlobalSlotMutex());
  enabled_.store(false, std::memory_order_release);
  GlobalSlot().reset();
}

MetricsRegistry* MetricsRegistry::Get() {
  if (!Enabled()) return nullptr;
  std::lock_guard<std::mutex> lock(GlobalSlotMutex());
  return GlobalSlot().get();
}

const std::vector<double>& MetricsRegistry::BucketBounds() {
  // Exponential decades: 1e-6 .. 1e3 (plus the implicit overflow bucket).
  static const std::vector<double> bounds = {1e-6, 1e-5, 1e-4, 1e-3, 1e-2,
                                             1e-1, 1.0,  1e1,  1e2,  1e3};
  return bounds;
}

void MetricsRegistry::IncrCounter(std::string_view name, uint64_t delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

void MetricsRegistry::SetGauge(std::string_view name, double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauges_.emplace(std::string(name), value);
  } else {
    it->second = value;
  }
}

void MetricsRegistry::Observe(std::string_view name, double value) {
  const std::vector<double>& bounds = BucketBounds();
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), Histogram{}).first;
    it->second.counts.assign(bounds.size() + 1, 0);
  }
  Histogram& h = it->second;
  size_t bucket = bounds.size();  // Overflow unless a bound admits it.
  for (size_t i = 0; i < bounds.size(); ++i) {
    if (value <= bounds[i]) {
      bucket = i;
      break;
    }
  }
  ++h.counts[bucket];
  ++h.total;
  h.sum += value;
  if (h.total == 1) {
    h.min = h.max = value;
  } else {
    if (value < h.min) h.min = value;
    if (value > h.max) h.max = value;
  }
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, value] : counters_) snapshot.counters[name] = value;
  for (const auto& [name, value] : gauges_) snapshot.gauges[name] = value;
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.bounds = BucketBounds();
    hs.counts = h.counts;
    hs.total = h.total;
    hs.sum = h.sum;
    hs.min = h.min;
    hs.max = h.max;
    snapshot.histograms[name] = std::move(hs);
  }
  return snapshot;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace qens::obs
