#ifndef QENS_OBS_TRACE_H_
#define QENS_OBS_TRACE_H_

/// \file trace.h
/// Scoped wall-clock trace spans on top of Stopwatch.
///
/// A TraceSpan measures the wall time of the enclosing scope and records it
/// into the metrics registry as the histogram `span.<name>.seconds` plus
/// the counter `span.<name>.calls`. When metrics are disabled the span is
/// inert: it never starts the clock and records nothing.
///
///   void Leader::Rank(...) {
///     obs::TraceSpan span("leader.rank");
///     ...
///   }

#include <string>

#include "qens/common/stopwatch.h"
#include "qens/obs/metrics.h"

namespace qens::obs {

/// RAII span: starts on construction (when metrics are enabled), records on
/// destruction or the first Stop() call. `name` is not copied and must
/// outlive the span (span names are string literals in practice).
class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name)
      : name_(name), active_(MetricsRegistry::Enabled()) {
    if (active_) watch_.Restart();
  }

  ~TraceSpan() { Stop(); }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// End the span now and record it; further Stop() calls are no-ops.
  /// Returns the measured seconds (0 when metrics are disabled).
  double Stop();

  bool active() const { return active_; }

 private:
  std::string_view name_;
  Stopwatch watch_;
  bool active_;
};

}  // namespace qens::obs

#endif  // QENS_OBS_TRACE_H_
