#include "qens/obs/trace.h"

namespace qens::obs {

double TraceSpan::Stop() {
  if (!active_) return 0.0;
  active_ = false;
  const double seconds = watch_.ElapsedSeconds();
  const std::string name(name_);
  Observe("span." + name + ".seconds", seconds);
  Count("span." + name + ".calls");
  return seconds;
}

}  // namespace qens::obs
